package faultmem

import (
	"testing"
)

func TestFacadeShuffledMemoryEndToEnd(t *testing.T) {
	faults := GenerateFaultCount(1, Rows16KB, 64)
	m, err := NewShuffledMemory(5, Rows16KB, faults)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 256; a++ {
		v := uint32(a * 2654435761)
		m.Write(a, v)
		got := m.Read(a)
		diff := uint64(v ^ got)
		// nFM=5 bounds single-fault rows to an LSB error; multi-fault
		// rows are rare at 64 faults over 4096 rows but still bounded by
		// the raw fault count per row.
		if diff > 3 {
			t.Fatalf("addr %d: error pattern %#x too large for nFM=5", a, diff)
		}
	}
}

func TestFacadeAllConstructors(t *testing.T) {
	faults := GenerateFaultCount(2, 64, 8)
	mems := []Memory{NewPerfectMemory(64)}
	if m, err := NewRawMemory(64, faults); err == nil {
		mems = append(mems, m)
	} else {
		t.Fatal(err)
	}
	if m, err := NewECCMemory(64, faults); err == nil {
		mems = append(mems, m)
	} else {
		t.Fatal(err)
	}
	if m, err := NewPECCMemory(64, faults); err == nil {
		mems = append(mems, m)
	} else {
		t.Fatal(err)
	}
	if m, err := NewShuffledMemory(3, 64, faults); err == nil {
		mems = append(mems, m)
	} else {
		t.Fatal(err)
	}
	for _, m := range mems {
		if m.Words() != 64 {
			t.Errorf("%T: words %d", m, m.Words())
		}
		m.Write(5, 42)
		_ = m.Read(5)
	}
}

func TestFacadeECCCorrects(t *testing.T) {
	faults := FaultMap{{Row: 0, Col: 31, Kind: Flip}}
	m, err := NewECCMemory(4, faults)
	if err != nil {
		t.Fatal(err)
	}
	m.Write(0, 0xDEADBEEF)
	if got := m.Read(0); got != 0xDEADBEEF {
		t.Errorf("ECC did not correct: %#x", got)
	}
	if m.Stats().Corrected != 1 {
		t.Error("correction not counted")
	}
}

func TestFacadeBISTFlow(t *testing.T) {
	arr := NewBitArray(128, 32)
	faults := GenerateFaultCount(3, 128, 16)
	if err := arr.SetFaults(faults); err != nil {
		t.Fatal(err)
	}
	m, rep, err := RunBISTAndProgram(MarchCMinus(), arr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Detected) != len(faults) {
		t.Fatalf("BIST found %d faults, injected %d", len(rep.Detected), len(faults))
	}
	// Rows with a single fault obey the nFM=5 bound exactly.
	byRow := faults.ByRow()
	for row, cols := range byRow {
		if len(cols) != 1 {
			continue
		}
		m.Write(row, 0xFFFFFFFF)
		got := m.Read(row)
		if diff := uint64(0xFFFFFFFF ^ got); diff > 1 {
			t.Fatalf("row %d: diff %#x exceeds nFM=5 bound", row, diff)
		}
	}
}

func TestFacadeCellModelAndDie(t *testing.T) {
	model := Default28nmCellModel()
	if p := model.Pcell(0.7); p < 1e-4 || p > 1e-2 {
		t.Errorf("Pcell(0.7) = %g outside the calibrated regime", p)
	}
	die := SampleDie(4, 256, model)
	hi := die.AtVDD(0.75, Flip)
	lo := die.AtVDD(0.65, Flip)
	if len(lo) < len(hi) {
		t.Error("fault inclusion violated")
	}
}

func TestFacadeOverheadTable(t *testing.T) {
	rows := OverheadTable(Rows16KB)
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	sh := ShuffleReadOverhead(Rows16KB, 1)
	ec := ECCReadOverhead(Rows16KB)
	if sh.ReadEnergy >= ec.ReadEnergy || sh.ReadDelay >= ec.ReadDelay || sh.Area >= ec.Area {
		t.Error("nFM=1 does not beat ECC in the overhead model")
	}
}

func TestFacadeMSE(t *testing.T) {
	faults := FaultMap{{Row: 0, Col: 31, Kind: Flip}}
	none, err := MSE(faults, 4096, "none")
	if err != nil {
		t.Fatal(err)
	}
	nfm5, err := MSE(faults, 4096, "nfm5")
	if err != nil {
		t.Fatal(err)
	}
	if none <= nfm5 {
		t.Errorf("MSE ordering violated: none %g vs nfm5 %g", none, nfm5)
	}
	eccv, err := MSE(faults, 4096, "ecc")
	if err != nil || eccv != 0 {
		t.Errorf("single-fault ECC MSE = %g, %v", eccv, err)
	}
	if _, err := MSE(faults, 4096, "bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestFacadePartialECCSplits(t *testing.T) {
	// A fault at bit 20 is inside the protected region for top-16/top-24
	// splits and outside it for top-8.
	faults := FaultMap{{Row: 0, Col: 20, Kind: Flip}}
	for _, c := range []struct {
		protected int
		corrected bool
	}{
		{8, false},
		{16, true},
		{24, true},
	} {
		m, err := NewPartialECCMemory(4, c.protected, faults)
		if err != nil {
			t.Fatal(err)
		}
		if m.ProtectedBits() != c.protected {
			t.Errorf("ProtectedBits = %d", m.ProtectedBits())
		}
		m.Write(0, 0)
		got := m.Read(0)
		if c.corrected && got != 0 {
			t.Errorf("top-%d: fault at 20 not corrected: %#x", c.protected, got)
		}
		if !c.corrected && got != 1<<20 {
			t.Errorf("top-%d: expected leak-through, read %#x", c.protected, got)
		}
	}
	if _, err := NewPartialECCMemory(4, 0, faults); err == nil {
		t.Error("0 protected bits accepted")
	}
	if _, err := NewPartialECCMemory(4, 32, faults); err == nil {
		t.Error("32 protected bits accepted (that is full ECC)")
	}
}

func TestFacadeRepairedMemory(t *testing.T) {
	faults := GenerateFaultCount(6, 64, 10)
	m, ok, err := NewRepairedMemory(64, faults, RepairBudget{SpareRows: 8, SpareCols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("repairable die rejected")
	}
	m.Write(5, 0xFEEDFACE)
	if m.Read(5) != 0xFEEDFACE {
		t.Error("repaired memory corrupts data")
	}
	if MinSpareLines(faults) > 10 {
		t.Error("König bound above fault count")
	}
	// Over-budget die: rejected cleanly.
	dense := GenerateFaultCount(7, 64, 60)
	if _, ok, err := NewRepairedMemory(64, dense, RepairBudget{SpareRows: 2, SpareCols: 2}); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("60-fault die repaired with 2+2 spares")
	}
}

func TestFacadeFaultGenerators(t *testing.T) {
	fm := GenerateFaultsPcell(5, Rows16KB, 1e-3)
	// Expect ~131 faults; allow wide slack.
	if len(fm) < 60 || len(fm) > 220 {
		t.Errorf("Pcell generator drew %d faults, expected ~131", len(fm))
	}
	if err := fm.Validate(Rows16KB, 32); err != nil {
		t.Fatal(err)
	}
}
