module faultmem

go 1.24
