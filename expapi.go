package faultmem

import (
	"context"

	"faultmem/internal/exp"
	"faultmem/internal/workload"
	"faultmem/internal/yield"
)

// This file is the public face of the experiment layer: every campaign of
// the paper's evaluation (Figs. 2-7, Table 1, and the beyond-the-paper
// studies) behind one registry of named, context-aware, JSON-serializable
// experiments. The registry names, the Runner's knobs, and the Result's
// JSON encoding are the wire contract the multi-host sweep service builds
// on; cmd/faultmem's `run` subcommand is a thin shell over exactly these
// calls.

// Experiment is one registered campaign: a name, a default parameter
// struct, and a context-aware run. Uncancelled runs are bit-identical for
// any worker count; cancelling or deadlining the context returns ctx.Err()
// promptly without leaking goroutines.
type Experiment = exp.Experiment

// Runner carries the shared execution environment of an experiment run:
// worker count, seed override, CDF accumulator policy, the quick-budget
// tier, a progress callback fed by shard completions, and an optional
// params override (the experiment's concrete params type or raw JSON
// unmarshalled over its defaults). A nil *Runner means defaults.
type Runner = exp.Runner

// ExperimentResult is the uniform outcome of one experiment: effective
// parameters plus rendered tables, serializable to JSON and renderable as
// the classic text/CSV exhibits.
type ExperimentResult = exp.Result

// ExperimentTable is one titled exhibit grid of a result.
type ExperimentTable = exp.Table

// ExperimentProgress is one progress event: Done of Total units (engine
// shards, or an experiment's coarser stages) have completed.
type ExperimentProgress = exp.Progress

// AccumMode selects the CDF accumulator of CDF-building experiments.
type AccumMode = yield.AccumMode

// The accumulator modes.
const (
	// AccumAuto retains exact observations at small budgets and switches
	// to the O(1)-memory log histogram above ~1M planned samples.
	AccumAuto = yield.AccumAuto
	// AccumExact forces the exact observation store.
	AccumExact = yield.AccumExact
	// AccumHist forces the O(1)-memory log histogram.
	AccumHist = yield.AccumHist
)

// ParseAccumMode maps a CLI name ("auto", "exact", "hist") to the
// accumulator mode.
func ParseAccumMode(s string) (AccumMode, error) { return yield.ParseAccumMode(s) }

// Experiments returns the registered experiment names in presentation
// (paper) order — the vocabulary of RunExperiment and `faultmem run`.
func Experiments() []string { return exp.Experiments() }

// WorkloadNames returns the canonical names of the registered resilient
// workloads in registry order — the vocabulary of the "workloads"
// campaign's Workloads parameter.
func WorkloadNames() []string { return workload.Names() }

// LookupWorkload resolves a canonical workload name to its display name
// and quality metric. Unknown names return ok=false.
func LookupWorkload(name string) (display, metric string, ok bool) {
	id, err := workload.Parse(name)
	if err != nil {
		return "", "", false
	}
	return id.Display(), id.Metric(), true
}

// RecoveryPolicyNames returns the canonical names of the trial-level
// detect-and-recover policies in escalation order ("none", "retry",
// "saferestore") — the vocabulary of the "recovery" campaign's Policies
// parameter.
func RecoveryPolicyNames() []string { return workload.PolicyNames() }

// DescribeExperiment returns the one-line description of a registered
// experiment.
func DescribeExperiment(name string) (string, bool) { return exp.Describe(name) }

// LookupExperiment returns a registered experiment by name.
func LookupExperiment(name string) (Experiment, bool) { return exp.Lookup(name) }

// DefaultExperimentParams returns the default parameter struct of a
// registered experiment — marshal it to JSON, tweak fields, and pass the
// bytes back through Runner.Params to override a run.
func DefaultExperimentParams(name string) (any, error) {
	e, ok := exp.Lookup(name)
	if !ok {
		return nil, &exp.ErrUnknownExperiment{Name: name}
	}
	return e.DefaultParams(), nil
}

// RunExperiment executes one registered experiment by name under the
// runner's environment. Unknown names return an error listing the full
// registry. The context cancels or deadlines the campaign mid-flight;
// uncancelled runs are bit-identical to the same experiment at the same
// parameters for any worker count.
func RunExperiment(ctx context.Context, name string, r *Runner) (*ExperimentResult, error) {
	return exp.Run(ctx, name, r)
}

// RunAllExperiments executes every registered experiment in presentation
// order, streaming each result to emit as it completes. A failing
// experiment no longer aborts the sequence: the remaining campaigns still
// run, and the collected failures come back as a *RunAllError. Only a
// dead context (or an emit error) stops the sweep early.
func RunAllExperiments(ctx context.Context, r *Runner, emit func(*ExperimentResult) error) error {
	return exp.RunAll(ctx, r, emit)
}

// ExperimentError is one experiment's failure inside a RunAllExperiments
// sweep, tagged with the registry name that failed.
type ExperimentError = exp.ExperimentError

// RunAllError aggregates the failures of a RunAllExperiments sweep that
// kept going past failing experiments. Failures preserves registry order.
type RunAllError = exp.RunAllError
