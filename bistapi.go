package faultmem

import (
	"faultmem/internal/bist"
	"faultmem/internal/core"
	"faultmem/internal/sram"
)

// BitArray is the raw bit-cell array underlying the protected memories;
// BIST operates on it directly.
type BitArray = sram.Array

// NewBitArray creates a fault-free rows x width bit-cell array. Install
// a fault map with SetFaults.
func NewBitArray(rows, width int) *BitArray { return sram.NewArray(rows, width) }

// MarchAlgorithm is a memory test (a sequence of March elements).
type MarchAlgorithm = bist.Algorithm

// BISTReport is the outcome of a BIST run: the detected, classified
// fault map and the access count.
type BISTReport = bist.Report

// March test presets, by increasing cost.
var (
	// ZeroOne is the 4N MSCAN test.
	ZeroOne = bist.ZeroOne
	// MATSPlus is the 5N MATS+ test.
	MATSPlus = bist.MATSPlus
	// MarchCMinus is the 10N March C- test (the default choice).
	MarchCMinus = bist.MarchCMinus
	// MarchB is the 17N March B test.
	MarchB = bist.MarchB
)

// RunBIST executes a March test on the array and returns the detected
// fault map. The array contents are destroyed (BIST runs at power-on /
// test time, §3).
func RunBIST(alg MarchAlgorithm, arr *BitArray) BISTReport {
	return bist.Run(alg, arr)
}

// RunBISTAndProgram runs the full power-on self-test flow of §3 on a
// 32-bit array: BIST-scan, program a fresh FM-LUT for the given nFM, and
// attach the bit-shuffling datapath.
func RunBISTAndProgram(alg MarchAlgorithm, arr *BitArray, nfm int) (*ShuffledMemory, BISTReport, error) {
	cfg := core.Config{Width: 32, NFM: nfm}
	lut, rep, err := bist.ProgramFMLUT(alg, arr, cfg)
	if err != nil {
		return nil, rep, err
	}
	m, err := core.NewShuffledWithLUT(arr, lut)
	return m, rep, err
}
