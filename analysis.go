package faultmem

import (
	"faultmem/internal/core"
	"faultmem/internal/ecc"
	"faultmem/internal/hw"
	"faultmem/internal/yield"
)

// OverheadRow is one scheme of the Fig. 6 comparison, relative to
// H(39,32) SECDED (= 1.0 in every metric).
type OverheadRow = hw.Relative

// OverheadTable evaluates the gate-level hardware model for a 32-bit
// macro with the given row count: bit-shuffling at nFM=1..5, H(22,16)
// P-ECC, and the H(39,32) SECDED reference (Fig. 6).
func OverheadTable(rows int) []OverheadRow {
	return hw.Fig6Table(hw.Lib28nm(), hw.Macro28nm(rows))
}

// ShuffleReadOverhead returns the absolute read-path overhead of the
// bit-shuffling scheme at the given nFM over a rows-deep macro.
func ShuffleReadOverhead(rows, nfm int) hw.Overhead {
	return hw.ShuffleOverhead(hw.Lib28nm(), hw.Macro28nm(rows), core.Config{Width: 32, NFM: nfm})
}

// ECCReadOverhead returns the absolute read-path overhead of H(39,32)
// SECDED over a rows-deep macro.
func ECCReadOverhead(rows int) hw.Overhead {
	return hw.ECCOverhead(hw.Lib28nm(), hw.Macro28nm(rows), ecc.H39_32())
}

// SchemeID identifies a protection scheme by its canonical name. It is
// the typed currency every layer shares — the public analysis helpers,
// both CLIs, and the experiment registry — replacing the stringly-typed
// scheme switches that used to live in each of them.
type SchemeID = yield.SchemeID

// The protection schemes, in the Fig. 5 presentation order.
const (
	// SchemeNone is the unprotected baseline ("none").
	SchemeNone = yield.SchemeNone
	// SchemeNFM1..SchemeNFM5 are the bit-shuffling configurations
	// ("nfm1".."nfm5").
	SchemeNFM1 = yield.SchemeNFM1
	SchemeNFM2 = yield.SchemeNFM2
	SchemeNFM3 = yield.SchemeNFM3
	SchemeNFM4 = yield.SchemeNFM4
	SchemeNFM5 = yield.SchemeNFM5
	// SchemePECC is H(22,16) priority ECC on the 16 MSBs ("pecc").
	SchemePECC = yield.SchemePECC
	// SchemeECC is full-word H(39,32) SECDED ("ecc").
	SchemeECC = yield.SchemeECC
)

// ParseScheme maps a canonical scheme name ("none", "ecc", "pecc",
// "nfm1".."nfm5") to its typed identifier.
func ParseScheme(name string) (SchemeID, error) { return yield.ParseScheme(name) }

// AllSchemes returns every protection scheme in presentation order.
func AllSchemes() []SchemeID { return yield.AllSchemeIDs() }

// MSEOf evaluates the paper's memory-local quality function (Eq. 6) for a
// fault map over rows words under the identified protection: the mean
// over rows of the summed squared residual error magnitudes.
func MSEOf(faults FaultMap, rows int, scheme SchemeID) float64 {
	return yield.MSEFromRowFaults(faults.ByRow(), rows, scheme.Scheme())
}

// MSE is MSEOf with the scheme given by its canonical name — a
// convenience for CLI-adjacent callers that hold a string.
func MSE(faults FaultMap, rows int, scheme string) (float64, error) {
	id, err := yield.ParseScheme(scheme)
	if err != nil {
		return 0, err
	}
	return MSEOf(faults, rows, id), nil
}
