package faultmem

import (
	"faultmem/internal/core"
	"faultmem/internal/ecc"
	"faultmem/internal/hw"
	"faultmem/internal/yield"
)

// OverheadRow is one scheme of the Fig. 6 comparison, relative to
// H(39,32) SECDED (= 1.0 in every metric).
type OverheadRow = hw.Relative

// OverheadTable evaluates the gate-level hardware model for a 32-bit
// macro with the given row count: bit-shuffling at nFM=1..5, H(22,16)
// P-ECC, and the H(39,32) SECDED reference (Fig. 6).
func OverheadTable(rows int) []OverheadRow {
	return hw.Fig6Table(hw.Lib28nm(), hw.Macro28nm(rows))
}

// ShuffleReadOverhead returns the absolute read-path overhead of the
// bit-shuffling scheme at the given nFM over a rows-deep macro.
func ShuffleReadOverhead(rows, nfm int) hw.Overhead {
	return hw.ShuffleOverhead(hw.Lib28nm(), hw.Macro28nm(rows), core.Config{Width: 32, NFM: nfm})
}

// ECCReadOverhead returns the absolute read-path overhead of H(39,32)
// SECDED over a rows-deep macro.
func ECCReadOverhead(rows int) hw.Overhead {
	return hw.ECCOverhead(hw.Lib28nm(), hw.Macro28nm(rows), ecc.H39_32())
}

// MSE evaluates the paper's memory-local quality function (Eq. 6) for a
// fault map over rows words under the named protection: the mean over
// rows of the summed squared residual error magnitudes.
//
// scheme is one of "none", "ecc", "pecc", or "nfm1".."nfm5".
func MSE(faults FaultMap, rows int, scheme string) (float64, error) {
	s, err := yieldScheme(scheme)
	if err != nil {
		return 0, err
	}
	return yield.MSEFromRowFaults(faults.ByRow(), rows, s), nil
}

func yieldScheme(name string) (yield.Scheme, error) {
	switch name {
	case "none":
		return yield.Unprotected{}, nil
	case "ecc":
		return yield.FullECC{}, nil
	case "pecc":
		return yield.PriorityECC{}, nil
	case "nfm1", "nfm2", "nfm3", "nfm4", "nfm5":
		return yield.NewShuffled(int(name[3] - '0')), nil
	default:
		return nil, errUnknownScheme(name)
	}
}

type errUnknownScheme string

func (e errUnknownScheme) Error() string {
	return "faultmem: unknown scheme " + string(e) + " (want none|ecc|pecc|nfm1..nfm5)"
}
