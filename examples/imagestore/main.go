// Imagestore: the multimedia motivation of priority-ECC, reproduced on
// the bit-shuffling scheme — store an image in unreliable memory and
// compare PSNR across protections.
//
// A synthetic grayscale image (smooth gradient plus shapes) is stored
// pixel-per-word in a faulty 16 KB memory under each protection and read
// back; the peak signal-to-noise ratio against the original quantifies
// the damage. Unprotected storage lets single bit faults flip pixel
// values by thousands of gray levels; bit-shuffling bounds each fault's
// damage below one gray level at nFM=5.
//
//	go run ./examples/imagestore
package main

import (
	"fmt"
	"log"
	"math"

	"faultmem"
)

const (
	width  = 64
	height = 64
)

// synthImage renders a deterministic grayscale test card: a diagonal
// gradient, a bright disc, and a dark box.
func synthImage() []float64 {
	img := make([]float64, width*height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			v := 64 + 128*float64(x+y)/float64(width+height)
			dx, dy := float64(x-20), float64(y-24)
			if dx*dx+dy*dy < 120 {
				v = 230
			}
			if x > 40 && x < 56 && y > 40 && y < 56 {
				v = 25
			}
			img[y*width+x] = v
		}
	}
	return img
}

// psnr computes the peak signal-to-noise ratio in dB for 8-bit dynamic
// range.
func psnr(ref, got []float64) float64 {
	mse := 0.0
	for i := range ref {
		d := ref[i] - got[i]
		mse += d * d
	}
	mse /= float64(len(ref))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func main() {
	const seed = 21
	img := synthImage()

	// A heavily degraded die: Pcell = 5e-3 (~655 failing cells) to make
	// the PSNR differences vivid.
	faults := faultmem.GenerateFaultsPcell(seed, faultmem.Rows16KB, 5e-3)
	fmt.Printf("storing a %dx%d grayscale image through a 16KB memory with %d failing cells\n\n",
		width, height, len(faults))

	type arm struct {
		name  string
		build func() (faultmem.Memory, error)
	}
	arms := []arm{
		{"no correction", func() (faultmem.Memory, error) { return faultmem.NewRawMemory(faultmem.Rows16KB, faults) }},
		{"H(22,16) P-ECC", func() (faultmem.Memory, error) { return faultmem.NewPECCMemory(faultmem.Rows16KB, faults) }},
		{"shuffle nFM=1", func() (faultmem.Memory, error) { return faultmem.NewShuffledMemory(1, faultmem.Rows16KB, faults) }},
		{"shuffle nFM=3", func() (faultmem.Memory, error) { return faultmem.NewShuffledMemory(3, faultmem.Rows16KB, faults) }},
		{"shuffle nFM=5", func() (faultmem.Memory, error) { return faultmem.NewShuffledMemory(5, faultmem.Rows16KB, faults) }},
		{"H(39,32) ECC", func() (faultmem.Memory, error) { return faultmem.NewECCMemory(faultmem.Rows16KB, faults) }},
	}

	fmt.Printf("%-16s %-12s %-16s\n", "protection", "PSNR [dB]", "worst pixel err")
	for _, a := range arms {
		m, err := a.build()
		if err != nil {
			log.Fatal(err)
		}
		got := faultmem.RoundTripValues(m, img)
		worst := 0.0
		for i := range img {
			if d := math.Abs(got[i] - img[i]); d > worst {
				worst = d
			}
		}
		p := psnr(img, got)
		ps := fmt.Sprintf("%.1f", p)
		if math.IsInf(p, 1) {
			ps = "inf (exact)"
		}
		fmt.Printf("%-16s %-12s %-16.4f\n", a.name, ps, worst)
	}

	fmt.Println("\npixels are stored one per 32-bit word in Q16.16; an unprotected MSB")
	fmt.Println("fault swings a pixel by +/-32768 gray levels, while nFM=5 shuffling")
	fmt.Println("bounds every single-fault error below 2^-16 of a gray level.")
	fmt.Println()
	fmt.Println("note the density effect: at this Pcell many words hold TWO faulty")
	fmt.Println("cells, which SECDED can only detect, not correct - so even full ECC")
	fmt.Println("collapses, while fine-grained shuffling keeps every fault pinned to")
	fmt.Println("low-significance bits and degrades gracefully.")
}
