// Command serve walks through the campaign-server API end to end: start
// a server on a loopback port, attach a sweep worker to its pool, submit
// two campaigns at different priorities from one client session, stream
// a snapshot or two, prove the served result is byte-identical to a
// local run, exercise status/cancel/list, resume the session from a
// second connection, and drain the server gracefully.
//
//	go run ./examples/serve
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"faultmem"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// 1. The server. One listener serves both populations: sweep
	// workers contributing shard compute and clients submitting
	// campaigns. ":0" picks a free loopback port.
	srv, err := faultmem.ListenServe("127.0.0.1:0", faultmem.ServeConfig{
		SnapshotEvery: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	addr := srv.Addr().String()
	fmt.Println("server listening on", addr)

	// 2. A worker joins the shared pool — same RunSweepWorker as the
	// batch `coordinate` mode, dialing the same port the clients use.
	// This is optional: with an empty pool the server computes shards
	// itself.
	workerDone := make(chan error, 1)
	wctx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	go func() {
		workerDone <- faultmem.RunSweepWorker(wctx, addr, faultmem.SweepWorkerConfig{})
	}()

	// 3. A client session. OnSnapshot receives the periodic
	// partial-state pushes for every job this session owns.
	c, err := faultmem.DialServe(ctx, addr, faultmem.ServeOptions{
		OnSnapshot: func(snap faultmem.ServeJobSnapshot, seq uint64) {
			for _, sp := range snap.Stages {
				fmt.Printf("  snapshot %d: job %d %s %d/%d\n", seq, snap.ID, sp.Stage, sp.Done, sp.Total)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("session token:", c.Token())

	// 4. Two concurrent campaigns over the one pool. The stride
	// scheduler interleaves their shards by priority weight, so the
	// smaller job is not stuck behind the bigger one.
	seed := int64(7)
	bigID, err := c.Submit(ctx, faultmem.ServeCampaign{
		Experiment: "fig7", Label: "big", Priority: 1, Quick: true, Seed: &seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	smallID, err := c.Submit(ctx, faultmem.ServeCampaign{
		Experiment: "fig2", Label: "small", Priority: 4, Quick: true, Seed: &seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted: job %d (fig7, weight 1), job %d (fig2, weight 4)\n", bigID, smallID)

	// 5. The small job's final: the Result JSON is byte-identical to a
	// local run of the same campaign at the same seed.
	small, err := c.Wait(ctx, smallID)
	if err != nil {
		log.Fatal(err)
	}
	if small.Err != "" {
		log.Fatalf("job %d failed: %s", smallID, small.Err)
	}
	local, err := faultmem.RunExperiment(ctx, "fig2", &faultmem.Runner{Quick: true, Seed: &seed})
	if err != nil {
		log.Fatal(err)
	}
	localJSON, _ := local.JSON()
	fmt.Printf("served fig2 == local fig2: %v (%d bytes)\n",
		string(small.Result) == string(localJSON), len(small.Result))

	// 6. Lifecycle verbs: list everything, then cancel the big job
	// mid-run. Its final reports the cancellation.
	jobs, err := c.List(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range jobs {
		fmt.Printf("  job %d %-6s %-9s label=%q\n", st.ID, st.Experiment, st.State, st.Label)
	}
	if _, err := c.Cancel(ctx, bigID); err != nil {
		log.Fatal(err)
	}
	big, err := c.Wait(ctx, bigID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cancelled job %d: final says %q\n", bigID, big.Err)

	// 7. Session resume: drop the connection, dial again with the
	// token. Jobs keep running across the gap (within ClientTTL) and
	// finals buffered while away are redelivered — here we just show
	// the session identity surviving.
	token := c.Token()
	c.Close()
	c2, err := faultmem.DialServe(ctx, addr, faultmem.ServeOptions{Token: token})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("resumed session:", c2.Token() == token)
	c2.Close()

	// 8. Graceful drain: running jobs finish (none left here), new
	// submissions would be rejected, then the server stops.
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	stopWorker()
	<-workerDone
	fmt.Println("server drained")
}
