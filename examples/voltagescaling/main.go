// Voltagescaling: how far can the supply scale before quality collapses?
//
// One die's per-cell critical voltages are sampled from the 28 nm cell
// model; sweeping VDD downward grows the fault map monotonically (the
// fault-inclusion property). At each point the memory-local MSE of
// Eq. (6) is evaluated for the unprotected memory and the bit-shuffling
// configurations, showing how many extra millivolts of scaling each nFM
// buys under a fixed quality target — the paper's motivating trade-off
// between power (VDD) and quality.
//
//	go run ./examples/voltagescaling
package main

import (
	"fmt"
	"log"

	"faultmem"
)

func main() {
	const (
		seed      = 3
		rows      = faultmem.Rows16KB
		mseTarget = 1e6 // the Section 4 quality criterion
	)

	model := faultmem.Default28nmCellModel()
	die := faultmem.SampleDie(seed, rows, model)

	schemes := []string{"none", "nfm1", "nfm2", "nfm3", "nfm4", "nfm5"}
	lowestOK := map[string]float64{}

	fmt.Printf("one 16KB die under VDD scaling (target: MSE < %.0e per Eq. 6)\n\n", mseTarget)
	fmt.Printf("%-6s %-10s %-8s", "VDD", "Pcell", "faults")
	for _, s := range schemes {
		fmt.Printf(" %-10s", s)
	}
	fmt.Println()

	for v := 0.82; v >= 0.60-1e-9; v -= 0.02 {
		faults := die.AtVDD(v, faultmem.Flip)
		fmt.Printf("%-6.2f %-10.2e %-8d", v, model.Pcell(v), len(faults))
		for _, s := range schemes {
			mse, err := faultmem.MSE(faults, rows, s)
			if err != nil {
				log.Fatal(err)
			}
			status := " "
			if mse < mseTarget {
				status = "*"
				if cur, ok := lowestOK[s]; !ok || v < cur {
					lowestOK[s] = v
				}
			}
			fmt.Printf(" %-9.2e%s", mse, status)
		}
		fmt.Println()
	}

	fmt.Println("\n(* = meets the MSE target)")
	fmt.Println("\nlowest VDD meeting the target on this die:")
	for _, s := range schemes {
		if v, ok := lowestOK[s]; ok {
			fmt.Printf("  %-6s %.2f V\n", s, v)
		} else {
			fmt.Printf("  %-6s none in the swept range\n", s)
		}
	}
	fmt.Println("\nlower usable VDD means quadratic dynamic-power savings; the shuffling")
	fmt.Println("scheme keeps the die usable deeper into the failure regime (Section 6).")
}
