// Command recovery walks through the detect-and-recover layer: list the
// trial-level recovery policies, run the "recovery" campaign (one
// workload through all eight protection arms, once per policy, on
// paired random numbers), and read the quality grids and per-policy
// recovery counters. The campaign's point: SECDED detection is already
// paid for — acting on the detected-uncorrectable (DUE) flags with
// bounded re-reads or a small safe-memory restore budget buys back most
// of the quality the dies lose, while the codeless arms (which cannot
// detect) are untouched by every policy.
//
//	go run ./examples/recovery
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"faultmem"
)

func main() {
	// 1. The policy vocabulary, in escalation order. "none" is the plain
	// round trip (the historical engine, bit-identical to the campaigns
	// that predate recovery); "retry" re-reads flagged words a bounded
	// number of times (recovers transient corruption); "saferestore"
	// additionally restores still-flagged words from the safe-memory
	// golden copy, charged against a per-trial budget.
	fmt.Println("recovery policies:", faultmem.RecoveryPolicyNames())

	// 2. Run the campaign: the CG solve at a reduced geometry, all three
	// policies, with soft errors enabled so the retry policy has
	// transient corruption to recover. Every policy sees the identical
	// die and soft-error draws, so a quality delta between columns can
	// only come from recovery itself.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	runner := &faultmem.Runner{
		Params: json.RawMessage(`{
			"Workload": "cgsolve",
			"Trials": 60, "Rows": 1024, "Dim": 32,
			"TransientRate": 1e-4, "Retries": 2, "SafeWords": 256
		}`),
		Progress: func(p faultmem.ExperimentProgress) {
			fmt.Fprintf(os.Stderr, "\r%s %d/%d", p.Experiment, p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	res, err := faultmem.RunExperiment(ctx, "recovery", runner)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The first two tables are the headline grids: mean quality and
	// quality-at-90%-yield per arm (rows) and policy (columns). The
	// remaining tables are per-policy recovery counters — flagged words,
	// retries spent, words recovered by re-read, words restored from the
	// safe copy, and restores denied by the budget.
	fmt.Println()
	if err := res.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 4. Only the detecting arms (H(39,32) ECC, H(22,16) P-ECC) can flag
	// a DUE, so only their columns move; the nFM and unprotected arms
	// carry identical qualities under every policy — the campaign is a
	// controlled experiment, not a re-roll of the dice.
	fmt.Println("\ncompare the ECC row across the none/retry/saferestore columns above;")
	fmt.Println("the counter tables show what each policy actually did per arm.")
}
