// Command workloads walks through the resilient-workload family: list
// the registered workloads, run the quality-vs-yield campaign for the
// two non-ML members (resilient sort and selective-reliability CG) at a
// small Monte-Carlo budget, and read the resulting CDF and summary
// tables. The same campaign covers the paper's three ML applications
// (elastic net, PCA, KNN) — drop the Workloads override to run all five.
//
//	go run ./examples/workloads
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"faultmem"
)

func main() {
	// 1. The workload registry is the campaign's vocabulary: each entry
	// is one application whose working set lives in faulty memory and
	// whose output quality the trial engine scores in [0, 1].
	fmt.Println("registered workloads:")
	for _, name := range faultmem.WorkloadNames() {
		display, metric, _ := faultmem.LookupWorkload(name)
		fmt.Printf("  %-12s %-16s quality metric: %s\n", name, display, metric)
	}

	// 2. The "workloads" experiment runs any subset through all eight
	// protection arms. Override its params over the JSON wire form:
	// here the two algorithm-based fault-tolerance workloads at a
	// reduced trial budget and problem size.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	runner := &faultmem.Runner{
		Params: json.RawMessage(`{
			"Workloads": ["rsort", "cgsolve"],
			"Trials": 40, "Rows": 1024, "Keys": 2048, "Dim": 32
		}`),
		Progress: func(p faultmem.ExperimentProgress) {
			fmt.Fprintf(os.Stderr, "\r%s %d/%d", p.Experiment, p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	res, err := faultmem.RunExperiment(ctx, "workloads", runner)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Each workload contributes a quality-CDF table (the fig7-style
	// exhibit: P(quality <= q) per protection arm) and a summary table
	// (mean/quantile quality per arm).
	fmt.Println()
	if err := res.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 4. Like every campaign in the registry, the run is deterministic:
	// the tables are byte-identical at any worker count.
	runner.Workers = 1
	again, err := faultmem.RunExperiment(ctx, "workloads", runner)
	if err != nil {
		log.Fatal(err)
	}
	t1, _ := json.Marshal(res.Tables)
	t2, _ := json.Marshal(again.Tables)
	fmt.Printf("\nsingle-worker rerun tables identical: %v\n", string(t1) == string(t2))
}
