// Quickstart: store 32-bit values in a faulty memory and watch the
// bit-shuffling scheme bound the damage.
//
// A fault map with one faulty cell per affected word is injected into
// three memories — unprotected, bit-shuffled (nFM=5), and H(39,32) ECC —
// and the same values are written and read back through each. The
// unprotected memory suffers errors as large as 2^31; the shuffled
// memory relocates every fault onto the LSB (error <= 1); ECC corrects
// everything but pays 7 parity columns plus decoder logic for it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"faultmem"
)

func main() {
	const rows = 64
	// One die's fault map: 6 faulty cells, including one at the MSB.
	faults := faultmem.FaultMap{
		{Row: 2, Col: 31, Kind: faultmem.Flip}, // worst case: sign bit
		{Row: 7, Col: 19, Kind: faultmem.Flip},
		{Row: 11, Col: 3, Kind: faultmem.Flip},
		{Row: 23, Col: 27, Kind: faultmem.Flip},
		{Row: 40, Col: 12, Kind: faultmem.Flip},
		{Row: 63, Col: 0, Kind: faultmem.Flip},
	}

	raw, err := faultmem.NewRawMemory(rows, faults)
	if err != nil {
		log.Fatal(err)
	}
	shuffled, err := faultmem.NewShuffledMemory(5, rows, faults)
	if err != nil {
		log.Fatal(err)
	}
	eccm, err := faultmem.NewECCMemory(rows, faults)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("writing value 1000 to every faulty row, reading back:")
	fmt.Printf("%-6s %-10s %-14s %-14s %-14s\n", "row", "fault@bit", "raw", "shuffled nFM=5", "H(39,32) ECC")
	for _, f := range faults {
		const v = 1000
		raw.Write(f.Row, v)
		shuffled.Write(f.Row, v)
		eccm.Write(f.Row, v)
		fmt.Printf("%-6d %-10d %-14d %-14d %-14d\n",
			f.Row, f.Col,
			int32(raw.Read(f.Row)),
			int32(shuffled.Read(f.Row)),
			int32(eccm.Read(f.Row)))
	}

	fmt.Println("\nerror magnitude |readback - 1000|:")
	fmt.Printf("%-6s %-10s %-14s %-14s %-14s\n", "row", "fault@bit", "raw", "shuffled nFM=5", "H(39,32) ECC")
	for _, f := range faults {
		const v = 1000
		mag := func(got uint32) int64 {
			d := int64(int32(got)) - v
			if d < 0 {
				d = -d
			}
			return d
		}
		fmt.Printf("%-6d %-10d %-14d %-14d %-14d\n",
			f.Row, f.Col,
			mag(raw.Read(f.Row)),
			mag(shuffled.Read(f.Row)),
			mag(eccm.Read(f.Row)))
	}

	// What did the protection cost? Ask the hardware model.
	fmt.Println("\nread-path overhead for a 16KB macro (28nm-class model):")
	sh := faultmem.ShuffleReadOverhead(faultmem.Rows16KB, 5)
	ec := faultmem.ECCReadOverhead(faultmem.Rows16KB)
	fmt.Printf("%-16s energy %6.1f fJ   delay %6.1f ps   area %8.0f um^2\n",
		"nFM=5 shuffle", sh.ReadEnergy, sh.ReadDelay, sh.Area)
	fmt.Printf("%-16s energy %6.1f fJ   delay %6.1f ps   area %8.0f um^2\n",
		"H(39,32) ECC", ec.ReadEnergy, ec.ReadDelay, ec.Area)
}
