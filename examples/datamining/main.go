// Datamining: the Fig. 7a experiment in miniature — wine-quality
// regression with the elastic-net training set stored in an unreliable
// 16 KB memory.
//
// The wine dataset is split 80:20; for a handful of simulated dies at
// Pcell = 1e-3, the training features and labels round-trip the faulty
// memory under four protections (none, H(22,16) P-ECC, bit-shuffling
// nFM=1 and nFM=2); the model is trained on whatever came back and its
// R² is measured on the clean test set. Without protection the R²
// collapses to ~0 ("extremely low for virtually all samples", §5.2),
// while a single-bit FM-LUT already recovers most of the quality.
//
//	go run ./examples/datamining
package main

import (
	"fmt"
	"log"

	"faultmem"
)

func main() {
	const (
		seed  = 11
		pcell = 1e-3 // the paper's Fig. 7 operating point
		dies  = 5    // Monte-Carlo die samples per protection
	)

	ds := faultmem.WineDataset(seed)
	train, test := ds.Split(0.8, seed)

	// Fault-free reference.
	clean := faultmem.NewElasticNet()
	if err := clean.Fit(train.X, train.Y); err != nil {
		log.Fatal(err)
	}
	ref := clean.Score(test.X, test.Y)
	fmt.Printf("wine-quality regression: %d train / %d test samples, %d features\n",
		train.Samples(), test.Samples(), train.Features())
	fmt.Printf("fault-free elastic-net R^2: %.4f\n\n", ref)

	type arm struct {
		name  string
		build func(fm faultmem.FaultMap) (faultmem.Memory, error)
	}
	arms := []arm{
		{"no correction", func(fm faultmem.FaultMap) (faultmem.Memory, error) {
			return faultmem.NewRawMemory(faultmem.Rows16KB, fm)
		}},
		{"H(22,16) P-ECC", func(fm faultmem.FaultMap) (faultmem.Memory, error) {
			return faultmem.NewPECCMemory(faultmem.Rows16KB, fm)
		}},
		{"shuffle nFM=1", func(fm faultmem.FaultMap) (faultmem.Memory, error) {
			return faultmem.NewShuffledMemory(1, faultmem.Rows16KB, fm)
		}},
		{"shuffle nFM=2", func(fm faultmem.FaultMap) (faultmem.Memory, error) {
			return faultmem.NewShuffledMemory(2, faultmem.Rows16KB, fm)
		}},
	}

	fmt.Printf("%-16s", "die (faults)")
	for _, a := range arms {
		fmt.Printf(" %-15s", a.name)
	}
	fmt.Println()

	sums := make([]float64, len(arms))
	for die := 0; die < dies; die++ {
		fm := faultmem.GenerateFaultsPcell(seed+int64(die)*101, faultmem.Rows16KB, pcell)
		fmt.Printf("#%d (%3d cells)  ", die, len(fm))
		for i, a := range arms {
			m, err := a.build(fm)
			if err != nil {
				log.Fatal(err)
			}
			x, y := faultmem.RoundTripDataset(m, train.X, train.Y)
			en := faultmem.NewElasticNet()
			if err := en.Fit(x, y); err != nil {
				log.Fatal(err)
			}
			q := en.Score(test.X, test.Y) / ref
			if q < 0 {
				q = 0
			}
			sums[i] += q
			fmt.Printf(" %-15.4f", q)
		}
		fmt.Println()
	}
	fmt.Printf("%-16s", "mean quality")
	for _, s := range sums {
		fmt.Printf(" %-15.4f", s/dies)
	}
	fmt.Println()
	fmt.Println("\nquality = R^2 / fault-free R^2, clamped at 0 (the Fig. 7 normalization);")
	fmt.Println("H(39,32) ECC is the quality-1.0 reference (Section 5.2).")
}
