// Command experiments walks through the public experiment API: list the
// registry, run one campaign with a progress callback and a deadline,
// override its parameters over the JSON wire form, and read the uniform
// Result both as text tables and as JSON.
//
//	go run ./examples/experiments
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"faultmem"
)

func main() {
	// 1. The registry is the experiment vocabulary: every figure and
	// study of the paper's evaluation under one name each.
	fmt.Println("registered experiments:")
	for _, name := range faultmem.Experiments() {
		desc, _ := faultmem.DescribeExperiment(name)
		fmt.Printf("  %-18s %s\n", name, desc)
	}

	// 2. Defaults are plain structs; their JSON form is the override
	// wire format.
	def, err := faultmem.DefaultExperimentParams("fig5")
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := json.MarshalIndent(def, "", "  ")
	fmt.Printf("\nfig5 default params:\n%s\n", raw)

	// 3. Run fig5 at a reduced budget with a progress callback fed by
	// engine shard completions, under a deadline: cancelling the context
	// stops the campaign mid-flight (try dropping the timeout to
	// a few milliseconds).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	seed := int64(1)
	runner := &faultmem.Runner{
		Seed:   &seed,
		Params: json.RawMessage(`{"CDF": {"Trun": 50000}}`),
		Progress: func(p faultmem.ExperimentProgress) {
			fmt.Fprintf(os.Stderr, "\r%s %d/%d shards", p.Experiment, p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	res, err := faultmem.RunExperiment(ctx, "fig5", runner)
	if err != nil {
		log.Fatal(err)
	}

	// 4. One Result, three renderings: aligned text, CSV, JSON.
	fmt.Println()
	if err := res.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	out, err := res.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nJSON result (%d bytes); first table titled %q\n", len(out), res.Tables[0].Title)

	// 5. Results are deterministic: the tables are byte-identical at any
	// worker count (the recorded params echo the worker setting, so
	// compare the data, not the whole Result).
	runner.Workers = 1
	again, err := faultmem.RunExperiment(ctx, "fig5", runner)
	if err != nil {
		log.Fatal(err)
	}
	t1, _ := json.Marshal(res.Tables)
	t2, _ := json.Marshal(again.Tables)
	fmt.Printf("single-worker rerun tables identical: %v\n", string(t1) == string(t2))
}
