// Package faultmem is a Go reproduction of "Mitigating the Impact of
// Faults in Unreliable Memories for Error-Resilient Applications"
// (Ganapathy, Karakonstantis, Teman & Burg, DAC 2015).
//
// Instead of correcting memory faults with error-correcting codes, the
// paper's bit-shuffling scheme rotates each data word on write so that
// its least significant bits land on the row's faulty cells (recorded in
// an nFM-bit-per-row fault-map look-up table programmed by BIST), bounding
// the error magnitude of a single fault to 2^(S-1) for segment size
// S = W/2^nFM. This package is the public facade over the full
// reproduction:
//
//   - protected memories: bit-shuffling (the paper's scheme), H(39,32)
//     SECDED ECC, H(22,16) priority ECC, and an unprotected baseline —
//     all behind the Memory interface;
//   - fault-map generation from failure counts, cell failure
//     probabilities, or supply voltages (with the fault-inclusion
//     property);
//   - the calibrated 28 nm 6T cell-failure model of Fig. 2;
//   - March-test BIST that discovers faults and programs the FM-LUT;
//   - the gate-level hardware overhead model of Fig. 6; and
//   - the quality-aware yield analysis of Fig. 5 (Eqs. 3-6).
//
// The experiment harness regenerating every figure and table of the
// paper lives in cmd/faultmem; runnable walkthroughs live in examples/.
package faultmem

import (
	"faultmem/internal/core"
	"faultmem/internal/fault"
	"faultmem/internal/mem"
	"faultmem/internal/redund"
	"faultmem/internal/sram"
	"faultmem/internal/stats"
)

// Memory is a 32-bit word-addressable memory; every protection scheme in
// this package implements it.
type Memory = mem.Word32

// Fault is one faulty bit-cell at (Row, Col) with a failure mode.
type Fault = fault.Fault

// FaultMap is the set of faulty cells of one memory sample.
type FaultMap = fault.Map

// FaultKind is a bit-cell failure mode.
type FaultKind = fault.Kind

// Bit-cell failure modes.
const (
	// Flip reads back the inverse of the stored bit (the paper's Eq. 6
	// fault model).
	Flip = fault.Flip
	// StuckAt0 forces the cell to 0.
	StuckAt0 = fault.StuckAt0
	// StuckAt1 forces the cell to 1.
	StuckAt1 = fault.StuckAt1
)

// ShuffleConfig selects the word width and FM-LUT entry width of the
// bit-shuffling scheme (Eqs. 1-2).
type ShuffleConfig = core.Config

// ShuffledMemory is a faulty memory protected by the paper's
// bit-shuffling scheme.
type ShuffledMemory = core.Shuffled

// ECCStats counts decode outcomes of the ECC-protected memories.
type ECCStats = mem.Stats

// Rows16KB is the word count of the paper's 16 KB evaluation macro at
// 32-bit words.
const Rows16KB = 4096

// NewShuffledMemory builds a bit-shuffling memory with nFM-bit FM-LUT
// entries over rows 32-bit words carrying the given fault map. The FM-LUT
// is programmed from the map exactly as BIST would; use RunBISTAndProgram
// for the explicit power-on self-test flow.
func NewShuffledMemory(nfm, rows int, faults FaultMap) (*ShuffledMemory, error) {
	return core.NewShuffled(core.Config{Width: 32, NFM: nfm}, rows, faults)
}

// NewECCMemory builds an H(39,32) SECDED-protected memory: the
// conventional full-correction baseline of the paper's comparison.
func NewECCMemory(rows int, faults FaultMap) (*mem.ECC, error) {
	return mem.NewECC(rows, faults, nil)
}

// NewPECCMemory builds an H(22,16) priority-ECC memory protecting only
// the 16 most significant bits of each word [Lee et al.; Emre et al.].
func NewPECCMemory(rows int, faults FaultMap) (*mem.PECC, error) {
	return mem.NewPECC(rows, faults, nil)
}

// NewPartialECCMemory generalizes the priority-ECC split: the
// protectedMSBs most significant bits (1..31) are covered by the
// matching SECDED code, the rest stored raw.
func NewPartialECCMemory(rows, protectedMSBs int, faults FaultMap) (*mem.PECC, error) {
	return mem.NewPartialECC(rows, protectedMSBs, faults, nil)
}

// NewRawMemory builds an unprotected faulty memory (the "No Correction"
// arm).
func NewRawMemory(rows int, faults FaultMap) (*mem.Raw, error) {
	return mem.NewRaw(rows, faults)
}

// NewPerfectMemory builds an ideal fault-free memory.
func NewPerfectMemory(rows int) Memory { return mem.NewPerfect(rows) }

// GenerateFaultCount draws a fault map with exactly n flip-faults placed
// uniformly over a rows x 32 data array (the paper's per-failure-count
// injection).
func GenerateFaultCount(seed int64, rows, n int) FaultMap {
	return fault.GenerateCount(stats.NewRand(seed), rows, 32, n, fault.Flip)
}

// GenerateFaultsPcell draws a fault map where each cell of a rows x 32
// array fails independently with probability pcell (Eq. 4).
func GenerateFaultsPcell(seed int64, rows int, pcell float64) FaultMap {
	return fault.GeneratePcell(stats.NewRand(seed), rows, 32, pcell, fault.Flip)
}

// RepairBudget is the spare-row/spare-column allowance of the
// traditional redundancy-repair baseline (§2).
type RepairBudget = redund.Budget

// NewRepairedMemory builds the traditional redundancy baseline: spare
// lines replace faulty rows/columns. The boolean reports whether the die
// was repairable within the budget (an unrepairable die is rejected, the
// classic yield loss the paper's scheme avoids).
func NewRepairedMemory(rows int, faults FaultMap, budget RepairBudget) (Memory, bool, error) {
	m, ok, err := redund.NewRepaired(rows, faults, budget)
	if err != nil || !ok {
		return nil, ok, err
	}
	return m, true, nil
}

// MinSpareLines returns the König lower bound on the number of spare
// lines (rows + columns) needed to repair the fault map.
func MinSpareLines(faults FaultMap) int { return redund.MinSpares(faults) }

// CellModel is the calibrated 28 nm 6T SRAM failure model of Fig. 2.
type CellModel = sram.CellModel

// Default28nmCellModel returns the calibrated Pcell-vs-VDD model.
func Default28nmCellModel() *CellModel { return sram.Default28nm() }

// CriticalVoltages carries per-cell critical supply voltages realizing
// the fault-inclusion property of voltage scaling.
type CriticalVoltages = fault.CriticalVoltages

// SampleDie draws one die's per-cell critical voltages for a rows x 32
// array from the cell model; AtVDD then yields the fault map at any
// operating voltage (faults at higher VDD persist at all lower VDD).
func SampleDie(seed int64, rows int, model *CellModel) *CriticalVoltages {
	return fault.SampleCriticalVoltages(stats.NewRand(seed), rows, 32, model)
}
