package faultmem

import (
	"context"
	"net"

	"faultmem/internal/serve"
)

// This file is the public face of the long-lived campaign service: a
// server that accepts sweep workers and campaign clients on one shared
// port, schedules every admitted campaign over the one shared pool with
// fair-share tickets at shard granularity, streams snapshots and final
// results to clients, and keeps cross-request caches warm between
// submissions. cmd/faultmem's `serve`, `submit`, `status`, and `cancel`
// subcommands are thin shells over exactly these calls.

// ServeServer is the campaign service. Campaign results are
// bit-identical to a direct RunExperiment of the same runner knobs —
// independent of scheduling, pool size, and worker churn. Stop it with
// Drain (graceful: running jobs finish, new submissions rejected) or
// Close (immediate).
type ServeServer = serve.Server

// ServeConfig tunes the campaign server: auth secret, scheduler
// capacity knobs, snapshot cadence, client resume window, and the
// embedded sweep coordinator's clocks. The zero value selects
// production defaults.
type ServeConfig = serve.Config

// ServeClient is one connection to a campaign server: Submit/Wait for
// campaigns, Status/Cancel/List for lifecycle, Token for session
// resume after a disconnect.
type ServeClient = serve.Client

// ServeOptions configures a client connection (resume token, auth
// secret, snapshot callback).
type ServeOptions = serve.Options

// ServeCampaign is one submission: the experiment name plus the runner
// knobs in exactly the form `faultmem run` accepts, with a fair-share
// priority weight and a free-form label.
type ServeCampaign = serve.Campaign

// ServeFinalResult is one job's terminal outcome: the ExperimentResult
// JSON (byte-identical to a local `faultmem run -json`) or the
// server-side error that ended it.
type ServeFinalResult = serve.FinalResult

// ServeJobStatus is the server's answer to the status/cancel/list
// verbs.
type ServeJobStatus = serve.JobStatus

// ServeJobSnapshot is one periodic partial-state push for a running
// job.
type ServeJobSnapshot = serve.JobSnapshot

// ListenServe starts a campaign server on addr (a TCP listen address
// such as ":7715" or "127.0.0.1:0"). Workers (`faultmem worker`) and
// clients (`faultmem submit`) share the port; the first frame of a
// connection routes it.
func ListenServe(addr string, cfg ServeConfig) (*ServeServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return serve.NewServer(ln, cfg), nil
}

// DialServe connects to a campaign server and opens (or, with
// ServeOptions.Token, resumes) a client session.
func DialServe(ctx context.Context, addr string, opts ServeOptions) (*ServeClient, error) {
	return serve.Dial(ctx, addr, opts)
}
