package faultmem_test

import (
	"fmt"

	"faultmem"
)

// The basic flow: build a bit-shuffling memory over a known fault map
// and observe the bounded error.
func ExampleNewShuffledMemory() {
	// One fault at the sign bit of word 0 — worst case for raw storage.
	faults := faultmem.FaultMap{{Row: 0, Col: 31, Kind: faultmem.Flip}}

	raw, _ := faultmem.NewRawMemory(4, faults)
	shuffled, _ := faultmem.NewShuffledMemory(5, 4, faults)

	raw.Write(0, 1000)
	shuffled.Write(0, 1000)
	fmt.Println("raw:     ", int32(raw.Read(0)))
	fmt.Println("shuffled:", int32(shuffled.Read(0)))
	// Output:
	// raw:      -2147482648
	// shuffled: 1001
}

// The power-on self-test flow of the paper's Section 3: BIST locates the
// faults and programs the FM-LUT.
func ExampleRunBISTAndProgram() {
	arr := faultmem.NewBitArray(64, 32)
	_ = arr.SetFaults(faultmem.FaultMap{
		{Row: 3, Col: 28, Kind: faultmem.StuckAt1},
		{Row: 9, Col: 15, Kind: faultmem.Flip},
	})

	m, report, _ := faultmem.RunBISTAndProgram(faultmem.MarchCMinus(), arr, 5)
	fmt.Println("detected:", len(report.Detected), "faults")

	m.Write(3, 0)
	fmt.Println("worst-case readback error:", m.Read(3))
	// Output:
	// detected: 2 faults
	// worst-case readback error: 1
}

// Eq. (6) of the paper: the memory-local MSE quality function, per
// protection scheme.
func ExampleMSE() {
	faults := faultmem.FaultMap{{Row: 0, Col: 31, Kind: faultmem.Flip}}
	for _, scheme := range []string{"none", "pecc", "nfm1", "nfm5", "ecc"} {
		mse, _ := faultmem.MSE(faults, faultmem.Rows16KB, scheme)
		fmt.Printf("%-5s %.6g\n", scheme, mse)
	}
	// Output:
	// none  1.1259e+15
	// pecc  0
	// nfm1  262144
	// nfm5  0.000244141
	// ecc   0
}

// The calibrated 28 nm cell model behind Fig. 2.
func ExampleDefault28nmCellModel() {
	model := faultmem.Default28nmCellModel()
	fmt.Printf("Pcell(0.80V) ~ %.0e\n", model.Pcell(0.80))
	fmt.Printf("VDD for Pcell=1e-3: %.2f V\n", model.VDDForPcell(1e-3))
	// Output:
	// Pcell(0.80V) ~ 2e-05
	// VDD for Pcell=1e-3: 0.68 V
}
