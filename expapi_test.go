package faultmem_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"faultmem"
)

func TestExperimentRegistryListing(t *testing.T) {
	names := faultmem.Experiments()
	if len(names) < 14 {
		t.Fatalf("only %d experiments registered: %v", len(names), names)
	}
	for _, want := range []string{"fig2", "fig4", "fig5", "fig6", "fig7", "workloads", "table1", "energy",
		"redundancy", "pareto", "bistcov", "width", "ablate-multifault", "ablate-lut", "ablate-transient"} {
		e, ok := faultmem.LookupExperiment(want)
		if !ok {
			t.Fatalf("experiment %q not registered", want)
		}
		if e.Name() != want {
			t.Fatalf("experiment %q reports name %q", want, e.Name())
		}
		if e.DefaultParams() == nil {
			t.Fatalf("experiment %q has nil default params", want)
		}
		if desc, ok := faultmem.DescribeExperiment(want); !ok || desc == "" {
			t.Fatalf("experiment %q has no description", want)
		}
	}
}

// TestRunExperimentPublicAPI drives the facade end to end: default params
// from the registry, a JSON params override, a progress callback, and a
// deterministic JSON result.
func TestRunExperimentPublicAPI(t *testing.T) {
	def, err := faultmem.DefaultExperimentParams("fig5")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(def)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "Trun") {
		t.Fatalf("fig5 default params JSON missing Trun: %s", raw)
	}

	var events int
	r := &faultmem.Runner{
		Params:   json.RawMessage(`{"CDF": {"Trun": 2000}}`),
		Progress: func(p faultmem.ExperimentProgress) { events++ },
	}
	res, err := faultmem.RunExperiment(context.Background(), "fig5", r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "fig5" || len(res.Tables) != 2 {
		t.Fatalf("unexpected result shape: %s with %d tables", res.Experiment, len(res.Tables))
	}
	if events == 0 {
		t.Fatal("no progress events reached the public callback")
	}
	out, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"Trun": 2000`) {
		t.Fatalf("result params do not reflect the JSON override:\n%s", out)
	}

	// Determinism through the public API: same runner, same bytes.
	res2, err := faultmem.RunExperiment(context.Background(), "fig5", r)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := res2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(out2) {
		t.Fatal("public API runs are not deterministic")
	}
}

func TestRunExperimentUnknownName(t *testing.T) {
	_, err := faultmem.RunExperiment(context.Background(), "nope", nil)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "fig5") {
		t.Fatalf("error does not list the registry: %v", err)
	}
	if _, err := faultmem.DefaultExperimentParams("nope"); err == nil {
		t.Fatal("DefaultExperimentParams accepted unknown name")
	}
}

func TestRunExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := faultmem.RunExperiment(ctx, "fig5", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWorkloadFacade(t *testing.T) {
	names := faultmem.WorkloadNames()
	if len(names) != 6 {
		t.Fatalf("%d workload names: %v", len(names), names)
	}
	for _, name := range names {
		display, metric, ok := faultmem.LookupWorkload(name)
		if !ok || display == "" || metric == "" {
			t.Fatalf("LookupWorkload(%q) = %q, %q, %v", name, display, metric, ok)
		}
	}
	if _, _, ok := faultmem.LookupWorkload("bogus"); ok {
		t.Fatal("LookupWorkload accepted unknown name")
	}
	policies := faultmem.RecoveryPolicyNames()
	if len(policies) != 3 || policies[0] != "none" {
		t.Fatalf("recovery policy names: %v", policies)
	}
}

func TestSchemeIDFacade(t *testing.T) {
	ids := faultmem.AllSchemes()
	if len(ids) != 8 {
		t.Fatalf("%d schemes", len(ids))
	}
	id, err := faultmem.ParseScheme("nfm3")
	if err != nil || id != faultmem.SchemeNFM3 {
		t.Fatalf("ParseScheme(nfm3) = %v, %v", id, err)
	}
	if id.String() != "nfm3" || id.NFM() != 3 {
		t.Fatalf("round trip: %q nfm=%d", id.String(), id.NFM())
	}
	if _, err := faultmem.ParseScheme("bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}

	// MSEOf agrees with the string-keyed MSE.
	faults := faultmem.GenerateFaultCount(7, 4096, 40)
	byName, err := faultmem.MSE(faults, 4096, "nfm5")
	if err != nil {
		t.Fatal(err)
	}
	if got := faultmem.MSEOf(faults, 4096, faultmem.SchemeNFM5); got != byName {
		t.Fatalf("MSEOf %g != MSE %g", got, byName)
	}
}
