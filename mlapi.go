package faultmem

import (
	"faultmem/internal/dataset"
	"faultmem/internal/mat"
	"faultmem/internal/memstore"
	"faultmem/internal/ml"
)

// Matrix is the dense row-major float64 matrix used by the data-mining
// benchmarks.
type Matrix = mat.Dense

// Dataset is a feature matrix with a target vector.
type Dataset = dataset.Dataset

// WineDataset generates the wine-quality-like regression set of Table 1
// (1599 samples x 11 features, integer quality target in [3,8]).
func WineDataset(seed int64) *Dataset { return dataset.Wine(seed) }

// MadelonDataset generates the Madelon-like feature-selection set of
// Table 1 (2000 samples x 100 features by default; see
// internal/dataset.PaperMadelon for the original 500-feature geometry).
func MadelonDataset(seed int64) *Dataset { return dataset.Madelon(seed, dataset.DefaultMadelon()) }

// HARDataset generates the accelerometer activity-recognition set of
// Table 1 (1500 windows x 15 features, 5 activity classes).
func HARDataset(seed int64) *Dataset { return dataset.HAR(seed, dataset.DefaultHAR()) }

// ActivityName returns the class name of a HAR label.
func ActivityName(label int) string { return dataset.ActivityName(label) }

// MLWorkspace is a reusable scratch bundle for the workspace-backed
// model-fitting paths (FitIn / ScoreIn / PredictIn /
// ExplainedVarianceOnIn on the three Table 1 models): it carries every
// training buffer — standardized copies, elastic-net residuals,
// coefficients and Gram matrix, PCA covariance and eigensolver scratch
// (Jacobi + top-k subspace blocks), KNN neighbor buffers — so
// Monte-Carlo loops that retrain a model per
// trial reuse one allocation set per goroutine. The zero value is ready
// to use; results are bit-identical to the plain Fit/Score paths. A
// fitted model borrows the workspace and stays valid only until the
// next FitIn on it; it is not safe for concurrent use.
type MLWorkspace = ml.Workspace

// ElasticNet is the coordinate-descent elastic-net regressor (Table 1,
// metric R²).
type ElasticNet = ml.ElasticNet

// NewElasticNet returns an elastic net with the default hyperparameters.
func NewElasticNet() *ElasticNet { return ml.NewElasticNet() }

// PCA is principal component analysis (Table 1, metric explained
// variance).
type PCA = ml.PCA

// NewPCA returns a PCA model retaining k components.
func NewPCA(k int) *PCA { return ml.NewPCA(k) }

// KNN is the k-nearest-neighbors classifier (Table 1, metric score).
type KNN = ml.KNN

// NewKNN returns a KNN classifier with k neighbors.
func NewKNN(k int) *KNN { return ml.NewKNN(k) }

// R2 returns the coefficient of determination.
func R2(yTrue, yPred []float64) float64 { return ml.R2(yTrue, yPred) }

// Accuracy returns the fraction of exact label matches.
func Accuracy(yTrue, yPred []float64) float64 { return ml.Accuracy(yTrue, yPred) }

// FixedPointCodec converts between float64 and Q(31-Frac).Frac words for
// storage in a 32-bit memory.
type FixedPointCodec = memstore.Codec

// DefaultCodec returns the Q16.16 fixed-point codec.
func DefaultCodec() FixedPointCodec { return memstore.DefaultCodec() }

// RoundTripDataset stores a dataset's features and targets in the memory
// (paging through it; faults corrupt the data) and returns the decoded
// read-back — the §5.2 experiment step.
func RoundTripDataset(m Memory, x *Matrix, y []float64) (*Matrix, []float64) {
	return memstore.DefaultCodec().RoundTripDataset(m, x, y)
}

// RoundTripValues stores a float64 slice through the memory and returns
// the decoded read-back.
func RoundTripValues(m Memory, vals []float64) []float64 {
	return memstore.DefaultCodec().RoundTripValues(m, vals)
}
