package faultmem

import "testing"

func TestFacadeDatasets(t *testing.T) {
	wine := WineDataset(1)
	if wine.Samples() != 1599 || wine.Features() != 11 {
		t.Errorf("wine %dx%d", wine.Samples(), wine.Features())
	}
	mad := MadelonDataset(1)
	if mad.Samples() != 2000 || mad.Features() != 100 {
		t.Errorf("madelon %dx%d", mad.Samples(), mad.Features())
	}
	har := HARDataset(1)
	if har.Samples() != 1500 || har.Features() != 15 {
		t.Errorf("har %dx%d", har.Samples(), har.Features())
	}
	if ActivityName(0) == "unknown" {
		t.Error("activity 0 unnamed")
	}
}

func TestFacadeModelsTrainOnCleanData(t *testing.T) {
	wine := WineDataset(2)
	train, test := wine.Split(0.8, 2)
	en := NewElasticNet()
	if err := en.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	if r2 := en.Score(test.X, test.Y); r2 < 0.15 {
		t.Errorf("wine R² = %.3f", r2)
	}

	har := HARDataset(2)
	htrain, htest := har.Split(0.8, 2)
	knn := NewKNN(5)
	if err := knn.Fit(htrain.X, htrain.Y); err != nil {
		t.Fatal(err)
	}
	if acc := knn.Score(htest.X, htest.Y); acc < 0.75 {
		t.Errorf("HAR accuracy = %.3f", acc)
	}

	pca := NewPCA(10)
	if err := pca.Fit(htrain.X); err != nil {
		t.Fatal(err)
	}
	if ev := pca.ExplainedVarianceOn(htest.X); ev <= 0 || ev > 1 {
		t.Errorf("explained variance = %.3f", ev)
	}
}

func TestFacadeRoundTripHelpers(t *testing.T) {
	m := NewPerfectMemory(16)
	vals := []float64{1.5, -2.25, 1000}
	got := RoundTripValues(m, vals)
	for i, v := range vals {
		if got[i] != v {
			t.Errorf("value %d: %g != %g", i, got[i], v)
		}
	}
	codec := DefaultCodec()
	if codec.Decode(codec.Encode(3.75)) != 3.75 {
		t.Error("codec round trip failed")
	}
	if R2([]float64{1, 2}, []float64{1, 2}) != 1 || Accuracy([]float64{1}, []float64{1}) != 1 {
		t.Error("metric helpers wrong")
	}
}
