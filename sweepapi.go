package faultmem

import (
	"context"
	"net"

	"faultmem/internal/sweep"
)

// This file is the public face of the multi-host sweep service: a
// coordinator that fans the Monte-Carlo shards of any registered
// experiment out to remote workers over a checksummed frame protocol,
// and the worker loop that computes them. The transport is built to
// survive churn — worker death, partitions, corrupt frames, reconnects —
// while keeping campaign results bit-identical to a single-host run;
// cmd/faultmem's `coordinate` and `worker` subcommands are thin shells
// over exactly these calls.

// SweepCoordinator owns a distributed sweep: Run/RunAll mirror
// RunExperiment/RunAllExperiments but execute engine shards on the
// connected worker pool, reassigning shards whose workers die (lease
// expiry), deduplicating late results by job ID, rejecting corrupt
// frames without dropping sessions, and finishing locally if the pool
// drains. Close ends the sweep and dismisses the workers.
type SweepCoordinator = sweep.Coordinator

// SweepConfig tunes the coordinator's fault-tolerance clocks (shard
// lease, session resume window, remote retry budget). The zero value
// selects production defaults.
type SweepConfig = sweep.Config

// SweepWorkerConfig tunes a worker's liveness clocks (heartbeat cadence,
// silent-connection timeout, reconnect backoff bounds). The zero value
// selects production defaults.
type SweepWorkerConfig = sweep.WorkerConfig

// SweepStats are the coordinator's cumulative robustness counters:
// where shards ran, how many leases expired, how many corrupt frames and
// duplicate results were absorbed, and how the worker pool churned.
type SweepStats = sweep.Stats

// ListenSweep starts a sweep coordinator listening for workers on addr
// (a TCP listen address such as ":7715" or "127.0.0.1:0").
func ListenSweep(addr string, cfg SweepConfig) (*SweepCoordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return sweep.NewCoordinator(ln, cfg), nil
}

// RunSweepWorker connects to a coordinator at addr and computes assigned
// shards until the coordinator finishes the sweep (returns nil) or ctx
// dies (returns ctx.Err()). Lost connections are survived by reconnecting
// with jittered backoff and resuming the session; results computed while
// disconnected are re-delivered.
func RunSweepWorker(ctx context.Context, addr string, cfg SweepWorkerConfig) error {
	return sweep.RunWorker(ctx, addr, cfg)
}
