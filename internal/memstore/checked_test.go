package memstore

import (
	"math"
	"testing"

	"faultmem/internal/fault"
	"faultmem/internal/mat"
	"faultmem/internal/mem"
	"faultmem/internal/stats"
)

// doubleFaultRows places two data-geometry flips in each listed row —
// a guaranteed SECDED DUE on every read of that row.
func doubleFaultRows(rows ...int) fault.Map {
	var fm fault.Map
	for _, r := range rows {
		fm = append(fm, fault.Fault{Row: r, Col: 3, Kind: fault.Flip})
		fm = append(fm, fault.Fault{Row: r, Col: 9, Kind: fault.Flip})
	}
	return fm
}

func checkedTestValues(n int) []float64 {
	rng := stats.NewRand(23)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 50
	}
	return vals
}

// TestCheckedPayloadMatchesCachedBitIdentical pins the oracle contract
// of the checked round trip: with no recovery mechanism armed, the
// decoded payload must be float-bit identical to RoundTripCachedInto on
// the same memory — detection observes, it never perturbs. Exercised on
// a detecting arm with persistent DUEs (paged) and on a codeless arm.
func TestCheckedPayloadMatchesCachedBitIdentical(t *testing.T) {
	c := DefaultCodec()
	const memRows = 16
	vals := checkedTestValues(40) // 3 pages through 16 rows
	builders := []struct {
		name  string
		build func() (mem.Word32, error)
	}{
		{"ECC", func() (mem.Word32, error) { return mem.NewECC(memRows, doubleFaultRows(3, 7, 11), nil) }},
		{"PECC", func() (mem.Word32, error) { return mem.NewPECC(memRows, doubleFaultRows(2, 9), nil) }},
		{"Raw", func() (mem.Word32, error) { return mem.NewRaw(memRows, doubleFaultRows(5)) }},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			mCached, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			var wsCached Workspace
			c.EncodeValuesInto(&wsCached, vals)
			want := append([]float64(nil), c.RoundTripCachedValues(&wsCached, mCached)...)

			mChecked, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			var wsChecked Workspace
			c.EncodeValuesInto(&wsChecked, vals)
			rec := &Recovery{} // observe only: no retries, no restore
			got := c.RoundTripCheckedValues(&wsChecked, mChecked, rec)

			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("value %d: checked %g vs cached %g", i, got[i], want[i])
				}
			}
			// Every flag must point at a word whose payload differs from the
			// clean quantized value.
			for i := rec.DUE.NextSet(0); i >= 0; i = rec.DUE.NextSet(i + 1) {
				clean := c.Decode(wsChecked.words[i])
				if got[i] == clean {
					t.Fatalf("word %d flagged but payload is clean", i)
				}
			}
			if rec.Stats.Flagged != uint64(rec.DUE.Count()) {
				t.Fatalf("flagged %d but DUE holds %d", rec.Stats.Flagged, rec.DUE.Count())
			}
			if rec.Stats.Retries != 0 || rec.Stats.Recovered != 0 || rec.Stats.Restored != 0 {
				t.Fatalf("observe-only recovery acted: %+v", rec.Stats)
			}
		})
	}
}

// TestCheckedFlagsPagedDUEs pins flag placement across pages: a double
// fault at row r flags flat indices r, r+page, r+2*page... — exactly
// the words the paged round trip pushed through that row.
func TestCheckedFlagsPagedDUEs(t *testing.T) {
	c := DefaultCodec()
	const memRows = 16
	m, err := mem.NewECC(memRows, doubleFaultRows(3, 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	var ws Workspace
	c.EncodeValuesInto(&ws, checkedTestValues(40))
	rec := &Recovery{}
	c.RoundTripCheckedValues(&ws, m, rec)
	for i := 0; i < 40; i++ {
		want := i%memRows == 3 || i%memRows == 7
		if rec.DUE.Get(i) != want {
			t.Fatalf("flat index %d: flag %v, want %v", i, rec.DUE.Get(i), want)
		}
	}
	if rec.Stats.Flagged != 6 { // rows 3 and 7 sit inside all three pages (the tail spans rows 0-7)
		t.Fatalf("flagged %d, want 6", rec.Stats.Flagged)
	}
}

// TestRetryRecoversTransientCorruption pins the bounded re-read
// mechanism: with soft errors enabled and no persistent faults, every
// DUE is transient read corruption, and retries with fresh noise draws
// recover it.
func TestRetryRecoversTransientCorruption(t *testing.T) {
	c := DefaultCodec()
	const memRows = 32
	m, err := mem.NewECC(memRows, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Array().SetTransient(0.015, stats.NewRand(29))
	var ws Workspace
	c.EncodeValuesInto(&ws, checkedTestValues(96))
	rec := &Recovery{Retries: 50}
	got := c.RoundTripCheckedValues(&ws, m, rec)

	if rec.Stats.Flagged == 0 {
		t.Fatal("transient rate produced no DUEs — the test exercises nothing")
	}
	if rec.Stats.Recovered != rec.Stats.Flagged {
		t.Fatalf("recovered %d of %d flagged (retries %d)",
			rec.Stats.Recovered, rec.Stats.Flagged, rec.Stats.Retries)
	}
	if rec.DUE.Any() {
		t.Fatalf("%d flags left after full recovery", rec.DUE.Count())
	}
	if rec.Stats.Retries < rec.Stats.Recovered {
		t.Fatalf("stats inconsistent: %+v", rec.Stats)
	}
	// Recovered words carry the clean quantized value (the retry's clean
	// read is exact: no persistent faults).
	for i := range got {
		_ = i // values may differ on words that took a silent single-bit correction; recovered ones were re-read clean
	}
}

// TestSafeRestoreExactWithUnlimitedBudget pins the golden-copy restore:
// persistent DUEs are replaced by the safe-memory clean values, so the
// returned payload is exactly the fault-free round trip.
func TestSafeRestoreExactWithUnlimitedBudget(t *testing.T) {
	c := DefaultCodec()
	const memRows = 16
	m, err := mem.NewECC(memRows, doubleFaultRows(3, 7, 11), nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := checkedTestValues(40)
	var ws Workspace
	c.EncodeValuesInto(&ws, vals)
	rec := &Recovery{Retries: 2, Restore: true}
	got := c.RoundTripCheckedValues(&ws, m, rec)

	for i := range got {
		if want := c.Decode(ws.words[i]); got[i] != want {
			t.Fatalf("value %d: %g, want clean %g", i, got[i], want)
		}
	}
	if rec.DUE.Any() {
		t.Fatal("flags left after unlimited restore")
	}
	// 3 faulty rows over pages 16+16+8: rows 3,7,11 twice, rows 3,7 once.
	if rec.Stats.Flagged != 8 || rec.Stats.Restored != 8 {
		t.Fatalf("stats %+v, want 8 flagged and restored", rec.Stats)
	}
	// Persistent faults defeat every retry: 2 per flagged word, none recover.
	if rec.Stats.Retries != 16 || rec.Stats.Recovered != 0 {
		t.Fatalf("stats %+v, want 16 fruitless retries", rec.Stats)
	}
}

// TestSafeRestoreBudgetExhaustion pins the per-trial budget: words past
// the cap keep their corrupted payload, count as BudgetDenied, and stay
// flagged; ResetTrial re-arms the budget for the next trial.
func TestSafeRestoreBudgetExhaustion(t *testing.T) {
	c := DefaultCodec()
	const memRows = 16
	m, err := mem.NewECC(memRows, doubleFaultRows(3, 7, 11), nil)
	if err != nil {
		t.Fatal(err)
	}
	var ws Workspace
	c.EncodeValuesInto(&ws, checkedTestValues(16)) // one page: 3 DUEs
	rec := &Recovery{Restore: true, Budget: 2}
	got := c.RoundTripCheckedValues(&ws, m, rec)

	if rec.Stats.Restored != 2 || rec.Stats.BudgetDenied != 1 {
		t.Fatalf("stats %+v, want 2 restored / 1 denied", rec.Stats)
	}
	if rec.DUE.Count() != 1 || !rec.DUE.Get(11) {
		t.Fatalf("DUE flags %d (word 11: %v), want exactly word 11", rec.DUE.Count(), rec.DUE.Get(11))
	}
	if clean := c.Decode(ws.words[11]); got[11] == clean {
		t.Fatal("denied word came back clean")
	}
	if got[3] != c.Decode(ws.words[3]) || got[7] != c.Decode(ws.words[7]) {
		t.Fatal("restored words not clean")
	}

	// Without ResetTrial the budget stays spent.
	c.RoundTripCheckedValues(&ws, m, rec)
	if rec.Stats.Restored != 2 || rec.Stats.BudgetDenied != 4 {
		t.Fatalf("stats %+v after second trip, want all 3 denied", rec.Stats)
	}

	// ResetTrial re-arms it.
	rec.ResetTrial()
	c.RoundTripCheckedValues(&ws, m, rec)
	if rec.Stats.Restored != 4 || rec.Stats.BudgetDenied != 5 {
		t.Fatalf("stats %+v after ResetTrial trip", rec.Stats)
	}
}

// TestRoundTripCheckedIntoDataset pins the dataset facade: same payload
// as the cached dataset trip, flags in flat layout (row-major features
// then labels), and the returned set is the recovery's own.
func TestRoundTripCheckedIntoDataset(t *testing.T) {
	c := DefaultCodec()
	const memRows = 16
	rows, cols := 10, 3
	x := mat.NewDense(rows, cols)
	y := make([]float64, rows)
	rng := stats.NewRand(31)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			x.Set(i, j, rng.NormFloat64()*10)
		}
		y[i] = rng.NormFloat64()
	}

	mCached, err := mem.NewECC(memRows, doubleFaultRows(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	var wsCached Workspace
	c.EncodeDatasetInto(&wsCached, x, y)
	wantX, wantY := c.RoundTripCachedInto(&wsCached, mCached)

	mChecked, err := mem.NewECC(memRows, doubleFaultRows(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	var wsChecked Workspace
	c.EncodeDatasetInto(&wsChecked, x, y)
	rec := &Recovery{}
	gotX, gotY, due := c.RoundTripCheckedInto(&wsChecked, mChecked, rec)
	if due != &rec.DUE {
		t.Fatal("returned set is not the recovery's DUE set")
	}

	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if math.Float64bits(gotX.At(i, j)) != math.Float64bits(wantX.At(i, j)) {
				t.Fatalf("X(%d,%d): %g vs %g", i, j, gotX.At(i, j), wantX.At(i, j))
			}
		}
		if math.Float64bits(gotY[i]) != math.Float64bits(wantY[i]) {
			t.Fatalf("Y[%d]: %g vs %g", i, gotY[i], wantY[i])
		}
	}
	// 40 flat words through 16 rows: row 5 serves flat 5, 21, 37.
	for i := 0; i < 40; i++ {
		if want := i%memRows == 5; due.Get(i) != want {
			t.Fatalf("flat %d flag %v want %v", i, due.Get(i), want)
		}
	}
}

// TestCheckedWarmAllocs pins the perf contract: after the first trip,
// checked round trips with recovery stay allocation-free.
func TestCheckedWarmAllocs(t *testing.T) {
	c := DefaultCodec()
	const memRows = 16
	m, err := mem.NewECC(memRows, doubleFaultRows(3, 11), nil)
	if err != nil {
		t.Fatal(err)
	}
	var ws Workspace
	c.EncodeValuesInto(&ws, checkedTestValues(40))
	rec := &Recovery{Retries: 2, Restore: true}
	c.RoundTripCheckedValues(&ws, m, rec)
	if allocs := testing.AllocsPerRun(10, func() {
		rec.ResetTrial()
		c.RoundTripCheckedValues(&ws, m, rec)
	}); allocs != 0 {
		t.Errorf("warm checked round trip allocates %v times, want 0", allocs)
	}
}
