package memstore

import (
	"faultmem/internal/mat"
	"faultmem/internal/mem"
)

// RecoveryStats counts what a Recovery saw and did across checked round
// trips. All fields are monotone counters so shard-level values merge
// by addition (worker-count determinism: the per-trial increments are
// fixed by the trial's RNG stream, and addition is order-free).
type RecoveryStats struct {
	// Flagged counts words read back with a detected-uncorrectable flag.
	Flagged uint64
	// Retries counts re-read attempts issued by the retry mechanism.
	Retries uint64
	// Recovered counts flagged words whose re-read came back clean
	// (transient read corruption that did not recur).
	Recovered uint64
	// Restored counts flagged words replaced from the safe golden copy.
	Restored uint64
	// BudgetDenied counts flagged words the safe-word budget could not
	// cover ("budget exhausted" events).
	BudgetDenied uint64
}

// Merge adds o's counters into s.
func (s *RecoveryStats) Merge(o RecoveryStats) {
	s.Flagged += o.Flagged
	s.Retries += o.Retries
	s.Recovered += o.Recovered
	s.Restored += o.Restored
	s.BudgetDenied += o.BudgetDenied
}

// Recovery is the detect-and-recover state of the checked round trips:
// the mechanism configuration (bounded re-reads, safe-memory restore
// with a per-trial word budget), the DUE flag set of the last trip, and
// the accumulated counters. One Recovery serves many trips; call
// ResetTrial at each trial boundary to re-arm the budget.
//
// Recovery works per page, while the flagged rows still hold the
// flagged words: the paged round trip reuses the same physical rows for
// every page, so a flagged word must be retried or restored before the
// next page's write overwrites its row.
type Recovery struct {
	// Retries is the bounded re-read count per flagged word (0 disables
	// retrying). A re-read recovers transient read corruption; persistent
	// faults flag again and stay flagged.
	Retries int
	// Restore enables replacing still-flagged words from the workspace's
	// clean word cache — the safe-memory golden copy.
	Restore bool
	// Budget caps restored words per trial (De Stefani & Silvestri's
	// safe-memory budget): 0 means unlimited, > 0 is the cap. Words
	// denied for lack of budget count as BudgetDenied and keep their
	// corrupted read-back.
	Budget int
	// DUE holds the flag set of the last checked trip, indexed by flat
	// word position. Bits recovered or restored during the trip are
	// cleared, so after the trip it flags exactly the words whose
	// returned values are still known-corrupt.
	DUE mem.DUESet
	// Stats accumulates counters across trips until the caller resets it.
	Stats RecoveryStats

	budgetUsed int
}

// ResetTrial re-arms the per-trial safe-word budget.
func (r *Recovery) ResetTrial() { r.budgetUsed = 0 }

// RoundTripCheckedValues is RoundTripCachedValues through the detection
// layer: identical paging, writes, and decoded payload (bit-identical
// when no recovery action fires — non-detecting memories cannot fire
// any), plus per-word DUE flags in rec.DUE and the rec mechanisms
// applied per page. rec must not be nil.
func (c Codec) RoundTripCheckedValues(ws *Workspace, m mem.Word32, rec *Recovery) []float64 {
	if len(ws.words) == 0 {
		panic("memstore: RoundTripCheckedValues before EncodeValuesInto")
	}
	return c.roundTripCheckedWords(ws, m, rec)
}

// RoundTripCheckedInto is RoundTripCachedInto through the detection
// layer (see RoundTripCheckedValues): the decoded dataset plus the DUE
// flag set, whose indices follow the flat layout (row-major features,
// then labels).
func (c Codec) RoundTripCheckedInto(ws *Workspace, m mem.Word32, rec *Recovery) (*mat.Dense, []float64, *mem.DUESet) {
	rows, cols := ws.cachedRows, ws.cachedCols
	if rows == 0 {
		panic("memstore: RoundTripCheckedInto before EncodeDatasetInto")
	}
	flat := c.roundTripCheckedWords(ws, m, rec)

	if ws.x == nil {
		ws.x = mat.NewDense(rows, cols)
	} else if r, cc := ws.x.Dims(); r != rows || cc != cols {
		ws.x = mat.NewDense(rows, cols)
	}
	for i := 0; i < rows; i++ {
		ws.x.SetRow(i, flat[i*cols:(i+1)*cols])
	}
	if cap(ws.y) < rows {
		ws.y = make([]float64, rows)
	}
	yOut := ws.y[:rows]
	copy(yOut, flat[rows*cols:])
	ws.y = yOut
	return ws.x, yOut, &rec.DUE
}

// roundTripCheckedWords is roundTripCachedWords with detection: the
// write dispatch (image / batch / scalar) is byte-for-byte the same, the
// read dispatch swaps in the checked variants on mem.Detector memories,
// and each page ends with the recovery pass over its fresh flags.
func (c Codec) roundTripCheckedWords(ws *Workspace, m mem.Word32, rec *Recovery) []float64 {
	if rec == nil {
		panic("memstore: checked round trip with nil recovery")
	}
	pageWords := m.Words()
	if pageWords == 0 {
		panic("memstore: empty memory")
	}
	n := len(ws.words)
	if cap(ws.flat) < n {
		ws.flat = make([]float64, 0, n)
	}
	flat := ws.flat[:n]
	ws.flat = flat
	scale := c.scale()
	rec.DUE.Reset(n)
	det, detects := m.(mem.Detector)
	bm, batched := m.(mem.BatchMemory)
	var (
		img []uint64
		iw  mem.ImageWriter
	)
	if w, ok := m.(mem.ImageWriter); ok && batched {
		if key := w.ImageKey(); key != "" {
			iw, img = w, ws.imageFor(w, key)
		}
	}
	if pageN := min(pageWords, n); batched && cap(ws.readBuf) < pageN {
		ws.readBuf = make([]uint32, pageN)
	}
	for start := 0; start < n; start += pageWords {
		end := start + pageWords
		if end > n {
			end = n
		}
		switch {
		case img != nil:
			iw.WriteImage(0, img[start:end])
		case batched:
			bm.WriteBatch(0, ws.words[start:end])
		default:
			for i := start; i < end; i++ {
				m.Write(i-start, ws.words[i])
			}
		}
		switch {
		case detects && batched:
			buf := ws.readBuf[:end-start]
			det.ReadBatchChecked(0, buf, &rec.DUE, start)
			for i, w := range buf {
				flat[start+i] = float64(int32(w)) / scale
			}
		case detects:
			for i := start; i < end; i++ {
				v, due := det.ReadChecked(i - start)
				if due {
					rec.DUE.Set(i)
				}
				flat[i] = float64(int32(v)) / scale
			}
		case batched:
			buf := ws.readBuf[:end-start]
			bm.ReadBatch(0, buf)
			for i, w := range buf {
				flat[start+i] = float64(int32(w)) / scale
			}
		default:
			for i := start; i < end; i++ {
				flat[i] = float64(int32(m.Read(i-start))) / scale
			}
		}
		if detects {
			rec.recoverPage(ws, det, flat, start, end, scale)
		}
	}
	return flat
}

// recoverPage runs the recovery mechanisms over the page's flagged
// words while the page still occupies the memory: bounded re-reads
// first (each flagged word gets up to Retries fresh reads; a clean one
// replaces the value and clears the flag), then the safe-memory restore
// for words still flagged, charged against the per-trial budget.
func (rec *Recovery) recoverPage(ws *Workspace, det mem.Detector, flat []float64, start, end int, scale float64) {
	for i := rec.DUE.NextSet(start); i >= 0 && i < end; i = rec.DUE.NextSet(i + 1) {
		rec.Stats.Flagged++
		recovered := false
		for a := 0; a < rec.Retries; a++ {
			rec.Stats.Retries++
			v, due := det.ReadChecked(i - start)
			if !due {
				flat[i] = float64(int32(v)) / scale
				rec.DUE.Clear(i)
				rec.Stats.Recovered++
				recovered = true
				break
			}
		}
		if recovered || !rec.Restore {
			continue
		}
		if rec.Budget > 0 && rec.budgetUsed >= rec.Budget {
			rec.Stats.BudgetDenied++
			continue
		}
		rec.budgetUsed++
		rec.Stats.Restored++
		flat[i] = float64(int32(ws.words[i])) / scale
		rec.DUE.Clear(i)
	}
}
