package memstore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"faultmem/internal/fault"
	"faultmem/internal/mat"
	"faultmem/internal/mem"
	"faultmem/internal/stats"
)

func TestCodecRoundTripExactness(t *testing.T) {
	c := DefaultCodec()
	f := func(raw int32) bool {
		// Any representable fixed-point value round-trips exactly.
		v := float64(raw) / 65536.0
		return c.Decode(c.Encode(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecQuantizationError(t *testing.T) {
	c := DefaultCodec()
	rng := stats.NewRand(3)
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64() * 100
		got := c.Decode(c.Encode(v))
		if math.Abs(got-v) > 1.0/65536.0 {
			t.Fatalf("quantization error %g for %g", got-v, v)
		}
	}
}

func TestCodecSaturation(t *testing.T) {
	c := DefaultCodec()
	if got := c.Decode(c.Encode(1e9)); got != c.Max() {
		t.Errorf("positive saturation -> %g, want %g", got, c.Max())
	}
	if got := c.Decode(c.Encode(-1e9)); got != c.Min() {
		t.Errorf("negative saturation -> %g, want %g", got, c.Min())
	}
	if got := c.Encode(math.NaN()); got != 0 {
		t.Errorf("NaN encodes to %#x", got)
	}
}

func TestCodecSignHandling(t *testing.T) {
	c := DefaultCodec()
	if c.Decode(c.Encode(-1.5)) != -1.5 {
		t.Error("negative value mangled")
	}
	// MSB flip of a small positive number produces a hugely negative one:
	// the error-magnitude mechanism of the paper.
	w := c.Encode(1.0)
	flipped := w ^ (1 << 31)
	if c.Decode(flipped) >= 0 {
		t.Error("MSB flip should produce a negative value")
	}
	if math.Abs(c.Decode(flipped)-c.Decode(w)) < 30000 {
		t.Error("MSB flip error magnitude implausibly small")
	}
}

func TestRoundTripValuesPerfectMemory(t *testing.T) {
	c := DefaultCodec()
	m := mem.NewPerfect(8)
	vals := []float64{0, 1.25, -3.5, 100.0625, -0.0000152587890625}
	got := c.RoundTripValues(m, vals)
	for i, v := range vals {
		if got[i] != v {
			t.Errorf("val %d: %g != %g", i, got[i], v)
		}
	}
}

func TestRoundTripPagesThroughSmallMemory(t *testing.T) {
	// 3-word memory, 10 values: pages reuse the same words and the same
	// fault map. A flip fault at word 1, bit 31 corrupts values at flat
	// indexes 1, 4, 7 (every page's second word).
	c := DefaultCodec()
	fm := fault.Map{{Row: 1, Col: 31, Kind: fault.Flip}}
	raw, err := mem.NewRaw(3, fm)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 10)
	got := c.RoundTripValues(raw, vals)
	for i, v := range got {
		if i%3 == 1 {
			if v == 0 {
				t.Errorf("index %d should be corrupted", i)
			}
		} else if v != 0 {
			t.Errorf("index %d corrupted unexpectedly: %g", i, v)
		}
	}
}

func TestRoundTripMatrix(t *testing.T) {
	c := DefaultCodec()
	x := mat.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	m := mem.NewPerfect(4)
	got := c.RoundTripMatrix(m, x)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != x.At(i, j) {
				t.Errorf("(%d,%d): %g != %g", i, j, got.At(i, j), x.At(i, j))
			}
		}
	}
}

func TestRoundTripDatasetCorruption(t *testing.T) {
	// An MSB fault must visibly corrupt some entries but leave the
	// fraction bounded by the fault geometry.
	c := DefaultCodec()
	fm := fault.Map{{Row: 0, Col: 31, Kind: fault.Flip}}
	raw, err := mem.NewRaw(64, fm)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.NewDense(32, 4)
	y := make([]float64, 32)
	xc, yc := c.RoundTripDataset(raw, x, y)
	corrupted := 0
	for i := 0; i < 32; i++ {
		for j := 0; j < 4; j++ {
			if xc.At(i, j) != 0 {
				corrupted++
			}
		}
		if yc[i] != 0 {
			corrupted++
		}
	}
	// 160 words through a 64-word memory = 3 pages -> 3 corrupted words.
	if corrupted != 3 {
		t.Errorf("%d corrupted entries, want 3", corrupted)
	}
}

func TestRoundTripDatasetIntoMatchesAllocating(t *testing.T) {
	// The workspace path must produce the same corrupted dataset as the
	// allocating path, and reusing the workspace must not allocate.
	c := DefaultCodec()
	fm := fault.Map{{Row: 0, Col: 31, Kind: fault.Flip}, {Row: 5, Col: 12, Kind: fault.Flip}}
	raw, err := mem.NewRaw(64, fm)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(9)
	x := mat.NewDense(32, 4)
	y := make([]float64, 32)
	for i := 0; i < 32; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.NormFloat64()*10)
		}
		y[i] = rng.NormFloat64()
	}

	xa, ya := c.RoundTripDataset(raw, x, y)
	var ws Workspace
	xb, yb := c.RoundTripDatasetInto(&ws, raw, x, y)
	for i := 0; i < 32; i++ {
		for j := 0; j < 4; j++ {
			if xa.At(i, j) != xb.At(i, j) {
				t.Fatalf("(%d,%d): %g != %g", i, j, xb.At(i, j), xa.At(i, j))
			}
		}
		if ya[i] != yb[i] {
			t.Fatalf("y[%d]: %g != %g", i, yb[i], ya[i])
		}
	}

	avg := testing.AllocsPerRun(50, func() {
		c.RoundTripDatasetInto(&ws, raw, x, y)
	})
	if avg != 0 {
		t.Errorf("warm workspace round trip allocates %.1f times", avg)
	}
}

func TestWordsNeeded(t *testing.T) {
	if WordsNeeded(100, 11) != 1200 {
		t.Errorf("WordsNeeded = %d", WordsNeeded(100, 11))
	}
}

func TestRoundTripThroughECCIsClean(t *testing.T) {
	// Single fault per word + full ECC: dataset must round-trip intact.
	c := DefaultCodec()
	rng := stats.NewRand(5)
	var fm fault.Map
	for r := 0; r < 16; r++ {
		fm = append(fm, fault.Fault{Row: r, Col: rng.Intn(32), Kind: fault.Flip})
	}
	eccm, err := mem.NewECC(16, fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 10
	}
	got := c.RoundTripValues(eccm, vals)
	for i := range vals {
		want := c.Decode(c.Encode(vals[i]))
		if got[i] != want {
			t.Errorf("val %d corrupted through ECC: %g vs %g", i, got[i], want)
		}
	}
}

// TestRoundTripCachedMatchesDirect pins the cached-words path: one
// EncodeDatasetInto followed by RoundTripCachedInto must reproduce
// RoundTripDatasetInto bit for bit on the same memory — across
// multiple round trips of one cache and datasets larger than the
// memory (paged).
func TestRoundTripCachedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := DefaultCodec()
	rows, cols := 113, 7
	x := mat.NewDense(rows, cols)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			x.Set(i, j, rng.NormFloat64()*100)
		}
		y[i] = float64(rng.Intn(10))
	}
	memRows := 16 // far smaller than the dataset: exercises paging
	fm := fault.GeneratePcell(rand.New(rand.NewSource(3)), memRows, 32, 0.01, fault.Flip)
	for trip := 0; trip < 3; trip++ {
		mDirect, err := mem.NewRaw(memRows, fm)
		if err != nil {
			t.Fatal(err)
		}
		var wsDirect Workspace
		wantX, wantY := c.RoundTripDatasetInto(&wsDirect, mDirect, x, y)

		mCached, err := mem.NewRaw(memRows, fm)
		if err != nil {
			t.Fatal(err)
		}
		var wsCached Workspace
		c.EncodeDatasetInto(&wsCached, x, y)
		gotX, gotY := c.RoundTripCachedInto(&wsCached, mCached)

		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if math.Float64bits(gotX.At(i, j)) != math.Float64bits(wantX.At(i, j)) {
					t.Fatalf("trip %d: X(%d,%d) %g != %g", trip, i, j, gotX.At(i, j), wantX.At(i, j))
				}
			}
			if math.Float64bits(gotY[i]) != math.Float64bits(wantY[i]) {
				t.Fatalf("trip %d: Y[%d] %g != %g", trip, i, gotY[i], wantY[i])
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("RoundTripCachedInto without a cached dataset did not panic")
		}
	}()
	var empty Workspace
	m2, _ := mem.NewRaw(memRows, fm)
	c.RoundTripCachedInto(&empty, m2)
}
