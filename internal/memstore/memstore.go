// Package memstore bridges the data-mining benchmarks and the protected
// memories: it quantizes floating-point training data to 32-bit
// fixed-point words, streams them through a mem.Word32 (where bit-cell
// faults corrupt them), and decodes the result. This realizes §5.2's
// "functional model of a 16KB memory is used to inject bit-flips" for
// datasets of any size: the data is paged through the memory, so every
// page experiences the same persistent fault map — the behaviour of
// storing a working set in one physical macro.
package memstore

import (
	"fmt"
	"math"

	"faultmem/internal/mat"
	"faultmem/internal/mem"
)

// Codec converts between float64 and Q(31-Frac).Frac signed fixed-point
// words. The paper's benchmarks store 2's-complement integers (§3); the
// default Q16.16 format covers every feature range in the Table 1
// datasets with 2^-16 resolution.
type Codec struct {
	// Frac is the number of fractional bits (0..31).
	Frac int
}

// DefaultCodec returns the Q16.16 codec.
func DefaultCodec() Codec { return Codec{Frac: 16} }

// scale returns 2^Frac.
func (c Codec) scale() float64 {
	return math.Ldexp(1, c.Frac)
}

// Max returns the largest representable value.
func (c Codec) Max() float64 { return float64(math.MaxInt32) / c.scale() }

// Min returns the smallest (most negative) representable value.
func (c Codec) Min() float64 { return float64(math.MinInt32) / c.scale() }

// Encode quantizes f to a fixed-point word, saturating at the format
// limits (NaN encodes as 0).
func (c Codec) Encode(f float64) uint32 {
	if c.Frac < 0 || c.Frac > 31 {
		panic(fmt.Sprintf("memstore: fractional bits %d outside [0,31]", c.Frac))
	}
	return encodeScaled(f, c.scale())
}

// Decode converts a fixed-point word back to float64.
func (c Codec) Decode(w uint32) float64 {
	return float64(int32(w)) / c.scale()
}

// RoundTripValues writes vals through the memory page by page and
// returns the decoded read-back. len(vals) may exceed the memory size;
// every page reuses the same words (and therefore the same fault map).
func (c Codec) RoundTripValues(m mem.Word32, vals []float64) []float64 {
	out := make([]float64, len(vals))
	copy(out, vals)
	c.roundTripInPlace(m, out)
	return out
}

// roundTripInPlace overwrites vals with its faulty read-back, page by
// page, without allocating. The quantization scale is hoisted out of
// the per-word loop (Encode/Decode recompute the Ldexp per call, which
// the profile shows on every dataset round trip).
func (c Codec) roundTripInPlace(m mem.Word32, vals []float64) {
	words := m.Words()
	if words == 0 {
		panic("memstore: empty memory")
	}
	if c.Frac < 0 || c.Frac > 31 {
		panic(fmt.Sprintf("memstore: fractional bits %d outside [0,31]", c.Frac))
	}
	scale := c.scale()
	for start := 0; start < len(vals); start += words {
		end := start + words
		if end > len(vals) {
			end = len(vals)
		}
		for i := start; i < end; i++ {
			m.Write(i-start, encodeScaled(vals[i], scale))
		}
		for i := start; i < end; i++ {
			vals[i] = float64(int32(m.Read(i-start))) / scale
		}
	}
}

// encodeScaled is Encode with the 2^Frac scale precomputed; identical
// result word for word.
func encodeScaled(f, scale float64) uint32 {
	if math.IsNaN(f) {
		return 0
	}
	v := math.Round(f * scale)
	if v > math.MaxInt32 {
		v = math.MaxInt32
	}
	if v < math.MinInt32 {
		v = math.MinInt32
	}
	return uint32(int32(v))
}

// RoundTripMatrix round-trips a matrix (row-major) through the memory.
func (c Codec) RoundTripMatrix(m mem.Word32, x *mat.Dense) *mat.Dense {
	rows, cols := x.Dims()
	flat := make([]float64, 0, rows*cols)
	for i := 0; i < rows; i++ {
		flat = append(flat, x.RawRow(i)...)
	}
	back := c.RoundTripValues(m, flat)
	out := mat.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out.Set(i, j, back[i*cols+j])
		}
	}
	return out
}

// RoundTripDataset round-trips features and targets: the paper stores
// the entire training dataset in the unreliable memory (§5.2), so the
// label vector is corrupted alongside the feature matrix.
func (c Codec) RoundTripDataset(m mem.Word32, x *mat.Dense, y []float64) (*mat.Dense, []float64) {
	var ws Workspace
	return c.RoundTripDatasetInto(&ws, m, x, y)
}

// Workspace holds the scratch buffers of RoundTripDatasetInto so a
// Monte-Carlo worker can reuse them across trials instead of allocating
// a dataset-sized matrix and two flat copies per (trial, arm). The zero
// value is ready to use; it grows to the largest dataset it has seen and
// then performs no further allocations.
type Workspace struct {
	flat []float64
	x    *mat.Dense
	y    []float64

	// Cached quantized dataset (EncodeDatasetInto /
	// RoundTripCachedInto): the clean words and the shape they encode.
	words      []uint32
	cachedRows int
	cachedCols int

	// Codeword-image cache: for each encode transform (mem.ImageWriter
	// key) the physical image of the cached words, computed lazily once
	// and shared by every memory with that key. The clean ECC encode is
	// fault-independent, so images stay valid across Reset/Reprogram of
	// the memories and are invalidated only when the dataset changes
	// (EncodeDatasetInto).
	images map[string][]uint64
	// readBuf stages one page of batch reads.
	readBuf []uint32
}

// RoundTripDatasetInto is RoundTripDataset on reusable buffers: the
// returned matrix and slice alias ws and stay valid only until the next
// call with the same workspace. Consumers that retain the data past one
// model fit/score cycle must copy it (or use RoundTripDataset).
func (c Codec) RoundTripDatasetInto(ws *Workspace, m mem.Word32, x *mat.Dense, y []float64) (*mat.Dense, []float64) {
	rows, cols := x.Dims()
	if rows != len(y) {
		panic("memstore: X/Y length mismatch")
	}
	n := rows*cols + len(y)
	if cap(ws.flat) < n {
		ws.flat = make([]float64, 0, n)
	}
	flat := ws.flat[:0]
	for i := 0; i < rows; i++ {
		flat = append(flat, x.RawRow(i)...)
	}
	flat = append(flat, y...)
	ws.flat = flat
	c.roundTripInPlace(m, flat)

	if ws.x == nil {
		ws.x = mat.NewDense(rows, cols)
	} else if r, cc := ws.x.Dims(); r != rows || cc != cols {
		ws.x = mat.NewDense(rows, cols)
	}
	for i := 0; i < rows; i++ {
		ws.x.SetRow(i, flat[i*cols:(i+1)*cols])
	}
	if cap(ws.y) < len(y) {
		ws.y = make([]float64, len(y))
	}
	yOut := ws.y[:len(y)]
	copy(yOut, flat[rows*cols:])
	ws.y = yOut
	return ws.x, yOut
}

// EncodeDatasetInto quantizes (x, y) once into the workspace's word
// cache. A Monte-Carlo loop that round-trips the same clean dataset
// through many fault maps (the Fig. 7 engine: every arm of every
// trial) pays the float-to-fixed-point conversion and the row
// flattening once per shard instead of once per round trip; the
// per-trial work left in RoundTripCachedInto is exactly the
// fault-dependent part (memory writes, reads, decode).
func (c Codec) EncodeDatasetInto(ws *Workspace, x *mat.Dense, y []float64) {
	rows, cols := x.Dims()
	if rows != len(y) {
		panic("memstore: X/Y length mismatch")
	}
	if c.Frac < 0 || c.Frac > 31 {
		panic(fmt.Sprintf("memstore: fractional bits %d outside [0,31]", c.Frac))
	}
	n := rows*cols + len(y)
	if cap(ws.words) < n {
		ws.words = make([]uint32, n)
	}
	words := ws.words[:n]
	scale := c.scale()
	for i := 0; i < rows; i++ {
		row := x.RawRow(i)
		for j, v := range row {
			words[i*cols+j] = encodeScaled(v, scale)
		}
	}
	for i, v := range y {
		words[rows*cols+i] = encodeScaled(v, scale)
	}
	ws.words = words
	ws.cachedRows, ws.cachedCols = rows, cols
	clear(ws.images) // cached images encode the previous dataset
}

// EncodeValuesInto quantizes a flat value slice once into the
// workspace's word cache — the shapeless sibling of EncodeDatasetInto
// for workloads whose memory-resident data is not a feature matrix
// (sorting keys, solver coefficients). Read the corrupted values back
// per trial with RoundTripCachedValues.
func (c Codec) EncodeValuesInto(ws *Workspace, vals []float64) {
	if len(vals) == 0 {
		panic("memstore: EncodeValuesInto of empty slice")
	}
	if c.Frac < 0 || c.Frac > 31 {
		panic(fmt.Sprintf("memstore: fractional bits %d outside [0,31]", c.Frac))
	}
	if cap(ws.words) < len(vals) {
		ws.words = make([]uint32, len(vals))
	}
	words := ws.words[:len(vals)]
	scale := c.scale()
	for i, v := range vals {
		words[i] = encodeScaled(v, scale)
	}
	ws.words = words
	ws.cachedRows, ws.cachedCols = 0, 0 // no dataset shape cached
	clear(ws.images)                    // cached images encode the previous data
}

// imageFor returns the physical image of the cached words under the
// memory's encode transform, computing and caching it on first use.
func (ws *Workspace) imageFor(iw mem.ImageWriter, key string) []uint64 {
	if img, ok := ws.images[key]; ok {
		return img
	}
	if ws.images == nil {
		ws.images = make(map[string][]uint64)
	}
	img := make([]uint64, len(ws.words))
	iw.EncodeImage(img, ws.words)
	ws.images[key] = img
	return img
}

// RoundTripCachedInto streams the cached words (EncodeDatasetInto)
// through the memory page by page and returns the decoded dataset —
// bit-identical to RoundTripDatasetInto on the same data and memory,
// minus the re-quantization. The returned matrix and slice alias ws
// with the same lifetime rules as RoundTripDatasetInto. It panics if
// no dataset has been cached.
//
// Memories implementing mem.BatchMemory take the bulk write/read paths
// (one call per page instead of one per word); memories additionally
// implementing mem.ImageWriter with a non-empty key skip the clean-word
// encode entirely, writing a cached physical image per page — the warm
// trial's write phase reduces to a masked copy and its read phase to a
// batch decode. Both fast paths produce bit-identical results to the
// word-at-a-time oracle loop, which remains the fallback for plain
// mem.Word32 implementations.
func (c Codec) RoundTripCachedInto(ws *Workspace, m mem.Word32) (*mat.Dense, []float64) {
	rows, cols := ws.cachedRows, ws.cachedCols
	if rows == 0 {
		panic("memstore: RoundTripCachedInto before EncodeDatasetInto")
	}
	flat := c.roundTripCachedWords(ws, m)

	if ws.x == nil {
		ws.x = mat.NewDense(rows, cols)
	} else if r, cc := ws.x.Dims(); r != rows || cc != cols {
		ws.x = mat.NewDense(rows, cols)
	}
	for i := 0; i < rows; i++ {
		ws.x.SetRow(i, flat[i*cols:(i+1)*cols])
	}
	if cap(ws.y) < rows {
		ws.y = make([]float64, rows)
	}
	yOut := ws.y[:rows]
	copy(yOut, flat[rows*cols:])
	ws.y = yOut
	return ws.x, yOut
}

// RoundTripCachedValues streams the cached words (EncodeValuesInto or
// EncodeDatasetInto) through the memory page by page and returns the
// decoded flat values — the shapeless sibling of RoundTripCachedInto
// with the same fast-path dispatch and the same aliasing rules (the
// returned slice is workspace scratch, valid until the next round
// trip). It panics if no values have been cached.
func (c Codec) RoundTripCachedValues(ws *Workspace, m mem.Word32) []float64 {
	if len(ws.words) == 0 {
		panic("memstore: RoundTripCachedValues before EncodeValuesInto")
	}
	return c.roundTripCachedWords(ws, m)
}

// roundTripCachedWords is the shared paging core of the cached round
// trips: it streams ws.words through the memory page by page into
// ws.flat and returns the decoded values.
func (c Codec) roundTripCachedWords(ws *Workspace, m mem.Word32) []float64 {
	pageWords := m.Words()
	if pageWords == 0 {
		panic("memstore: empty memory")
	}
	n := len(ws.words)
	if cap(ws.flat) < n {
		ws.flat = make([]float64, 0, n)
	}
	flat := ws.flat[:n]
	ws.flat = flat
	scale := c.scale()
	bm, batched := m.(mem.BatchMemory)
	var (
		img []uint64
		iw  mem.ImageWriter
	)
	if w, ok := m.(mem.ImageWriter); ok && batched {
		if key := w.ImageKey(); key != "" {
			iw, img = w, ws.imageFor(w, key)
		}
	}
	if pageN := min(pageWords, n); batched && cap(ws.readBuf) < pageN {
		ws.readBuf = make([]uint32, pageN)
	}
	for start := 0; start < n; start += pageWords {
		end := start + pageWords
		if end > n {
			end = n
		}
		switch {
		case img != nil:
			iw.WriteImage(0, img[start:end])
		case batched:
			bm.WriteBatch(0, ws.words[start:end])
		default:
			for i := start; i < end; i++ {
				m.Write(i-start, ws.words[i])
			}
		}
		if batched {
			buf := ws.readBuf[:end-start]
			bm.ReadBatch(0, buf)
			for i, w := range buf {
				flat[start+i] = float64(int32(w)) / scale
			}
			continue
		}
		for i := start; i < end; i++ {
			flat[i] = float64(int32(m.Read(i-start))) / scale
		}
	}
	return flat
}

// WordsNeeded returns the number of 32-bit words a dataset of the given
// shape occupies (features + labels).
func WordsNeeded(rows, cols int) int { return rows*cols + rows }
