package redund

import (
	"fmt"

	"faultmem/internal/fault"
	"faultmem/internal/mem"
	"faultmem/internal/sram"
)

// Repaired is a functional memory with spare-row/spare-column repair: a
// BIST-style allocation replaces faulty lines, after which accesses to
// replaced rows go to spare storage and replaced columns are muxed to
// spare columns. If the fault map exceeds the budget the constructor
// reports failure — exactly the die-reject case of the traditional flow.
type Repaired struct {
	base      *sram.Array
	rowRemap  map[int]int // logical row -> spare row index
	spares    *sram.Array // spare rows (fault-free)
	colRemap  map[int]int // logical col -> spare col index
	spareCols *sram.Array // spare columns stored row-major (fault-free)
}

// NewRepaired builds the repaired memory over rows words with the given
// data-geometry fault map and spare budget. The second return value is
// false when the die is unrepairable within the budget.
//
// Spare lines are modeled fault-free, the customary assumption in
// redundancy analysis (spares are few and can be tested/selected).
func NewRepaired(rows int, faults fault.Map, b Budget) (*Repaired, bool, error) {
	if err := faults.Validate(rows, mem.DataWidth); err != nil {
		return nil, false, fmt.Errorf("redund: bad fault map: %w", err)
	}
	alloc, ok := Allocate(faults, b)
	if !ok {
		return nil, false, nil
	}
	base := sram.NewArray(rows, mem.DataWidth)
	if err := base.SetFaults(faults); err != nil {
		return nil, false, err
	}
	r := &Repaired{
		base:     base,
		rowRemap: map[int]int{},
		colRemap: map[int]int{},
	}
	if len(alloc.Rows) > 0 {
		r.spares = sram.NewArray(len(alloc.Rows), mem.DataWidth)
		for i, row := range alloc.Rows {
			r.rowRemap[row] = i
		}
	}
	if len(alloc.Cols) > 0 {
		r.spareCols = sram.NewArray(rows, len(alloc.Cols))
		for i, col := range alloc.Cols {
			r.colRemap[col] = i
		}
	}
	return r, true, nil
}

// Read returns the word at addr with repairs applied.
func (r *Repaired) Read(addr int) uint32 {
	if s, ok := r.rowRemap[addr]; ok {
		return uint32(r.spares.Read(s))
	}
	v := r.base.Read(addr)
	if len(r.colRemap) > 0 {
		sp := r.spareCols.Read(addr)
		for col, idx := range r.colRemap {
			bit := (sp >> uint(idx)) & 1
			v = (v &^ (uint64(1) << uint(col))) | bit<<uint(col)
		}
	}
	return uint32(v)
}

// Write stores v at addr with repairs applied.
func (r *Repaired) Write(addr int, v uint32) {
	if s, ok := r.rowRemap[addr]; ok {
		r.spares.Write(s, uint64(v))
		return
	}
	r.base.Write(addr, uint64(v))
	if len(r.colRemap) > 0 {
		var sp uint64
		for col, idx := range r.colRemap {
			sp |= ((uint64(v) >> uint(col)) & 1) << uint(idx)
		}
		r.spareCols.Write(addr, sp)
	}
}

// Words returns the address space size.
func (r *Repaired) Words() int { return r.base.Rows() }

// SparesUsed returns how many spare rows and columns the repair consumed.
func (r *Repaired) SparesUsed() (rows, cols int) {
	return len(r.rowRemap), len(r.colRemap)
}

var _ mem.Word32 = (*Repaired)(nil)
