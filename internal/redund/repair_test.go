package redund

import (
	"testing"
	"testing/quick"

	"faultmem/internal/fault"
	"faultmem/internal/stats"
)

func TestAllocateEmptyMap(t *testing.T) {
	alloc, ok := Allocate(nil, Budget{})
	if !ok || len(alloc.Rows) != 0 || len(alloc.Cols) != 0 {
		t.Error("empty map should repair with zero spares")
	}
}

func TestAllocateSingleFault(t *testing.T) {
	fm := fault.Map{{Row: 3, Col: 7, Kind: fault.Flip}}
	if _, ok := Allocate(fm, Budget{SpareRows: 1}); !ok {
		t.Error("one spare row should fix one fault")
	}
	if _, ok := Allocate(fm, Budget{SpareCols: 1}); !ok {
		t.Error("one spare column should fix one fault")
	}
	if _, ok := Allocate(fm, Budget{}); ok {
		t.Error("zero budget repaired a fault")
	}
}

func TestAllocateMustRepair(t *testing.T) {
	// Three faults in one row with only 2 spare columns: the row MUST be
	// replaced by a spare row.
	fm := fault.Map{
		{Row: 5, Col: 1}, {Row: 5, Col: 9}, {Row: 5, Col: 20},
	}
	alloc, ok := Allocate(fm, Budget{SpareRows: 1, SpareCols: 2})
	if !ok {
		t.Fatal("repairable map rejected")
	}
	if len(alloc.Rows) != 1 || alloc.Rows[0] != 5 {
		t.Errorf("must-repair row not chosen: %+v", alloc)
	}
	// Without the spare row it is unrepairable.
	if _, ok := Allocate(fm, Budget{SpareCols: 2}); ok {
		t.Error("3-fault row repaired with 2 column spares")
	}
}

func TestAllocateCrossPattern(t *testing.T) {
	// A 2x2 cross of faults: (1,1),(1,2),(2,1),(2,2). Two lines suffice
	// (both rows, or both cols, or one of each does NOT: one row + one
	// col leaves one fault). Check exact budget behaviour.
	fm := fault.Map{
		{Row: 1, Col: 1}, {Row: 1, Col: 2},
		{Row: 2, Col: 1}, {Row: 2, Col: 2},
	}
	if _, ok := Allocate(fm, Budget{SpareRows: 2}); !ok {
		t.Error("two spare rows should fix the cross")
	}
	if _, ok := Allocate(fm, Budget{SpareCols: 2}); !ok {
		t.Error("two spare cols should fix the cross")
	}
	if _, ok := Allocate(fm, Budget{SpareRows: 1, SpareCols: 1}); ok {
		t.Error("1+1 spares cannot cover a 2x2 cross")
	}
	if MinSpares(fm) != 2 {
		t.Errorf("MinSpares = %d, want 2", MinSpares(fm))
	}
}

func TestAllocationCoversEveryFault(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := stats.NewRand(seed)
		n := int(nRaw)%20 + 1
		fm := fault.GenerateCount(rng, 64, 32, n, fault.Flip)
		alloc, ok := Allocate(fm, Budget{SpareRows: 10, SpareCols: 10})
		if !ok {
			// With 20 spares for <=20 faults a solution always exists
			// (replace each fault's row, capped by distinct rows <= 20...
			// rows may exceed 10; fall back: it may legitimately fail
			// only if distinct rows > 10 AND distinct cols of the
			// residue > 10; accept but verify MinSpares > 20 is false).
			return MinSpares(fm) <= 20
		}
		rows := map[int]bool{}
		cols := map[int]bool{}
		for _, r := range alloc.Rows {
			rows[r] = true
		}
		for _, c := range alloc.Cols {
			cols[c] = true
		}
		if len(alloc.Rows) > 10 || len(alloc.Cols) > 10 {
			return false
		}
		for _, fv := range fm {
			if !rows[fv.Row] && !cols[fv.Col] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinSparesMatchesDistinctLines(t *testing.T) {
	// Faults all in distinct rows and distinct cols: matching = fault
	// count.
	fm := fault.Map{{Row: 0, Col: 0}, {Row: 1, Col: 5}, {Row: 2, Col: 9}}
	if got := MinSpares(fm); got != 3 {
		t.Errorf("MinSpares = %d, want 3", got)
	}
	// All faults in one row: one line covers all.
	fm = fault.Map{{Row: 4, Col: 0}, {Row: 4, Col: 5}, {Row: 4, Col: 9}}
	if got := MinSpares(fm); got != 1 {
		t.Errorf("MinSpares = %d, want 1", got)
	}
	if MinSpares(nil) != 0 {
		t.Error("MinSpares(empty) != 0")
	}
}

func TestAllocateNeverBeatsMinSpares(t *testing.T) {
	// Any feasible allocation uses at least MinSpares lines.
	rng := stats.NewRand(7)
	for trial := 0; trial < 100; trial++ {
		fm := fault.GenerateCount(rng, 32, 32, rng.Intn(15)+1, fault.Flip)
		alloc, ok := Allocate(fm, Budget{SpareRows: 16, SpareCols: 16})
		if !ok {
			t.Fatalf("generous budget failed on %d faults", len(fm))
		}
		if used := len(alloc.Rows) + len(alloc.Cols); used < MinSpares(fm) {
			t.Fatalf("allocation used %d lines, below the König bound %d", used, MinSpares(fm))
		}
	}
}

func TestRepairedMemoryFunctional(t *testing.T) {
	rng := stats.NewRand(9)
	fm := fault.GenerateCount(rng, 64, 32, 12, fault.Flip)
	m, ok, err := NewRepaired(64, fm, Budget{SpareRows: 8, SpareCols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("repairable die rejected")
	}
	// After repair the memory must behave perfectly.
	for a := 0; a < 64; a++ {
		v := uint32(rng.Uint64())
		m.Write(a, v)
		if got := m.Read(a); got != v {
			t.Fatalf("addr %d: %#x != %#x after repair", a, got, v)
		}
	}
	ur, uc := m.SparesUsed()
	if ur+uc == 0 {
		t.Error("no spares used despite faults")
	}
	if ur > 8 || uc > 8 {
		t.Errorf("budget exceeded: %d rows, %d cols", ur, uc)
	}
	if m.Words() != 64 {
		t.Errorf("Words = %d", m.Words())
	}
}

func TestRepairedRejectsOverBudget(t *testing.T) {
	// 20 faults in distinct rows and distinct columns need 20 lines.
	var fm fault.Map
	for i := 0; i < 20; i++ {
		fm = append(fm, fault.Fault{Row: i, Col: i % 32, Kind: fault.Flip})
	}
	_, ok, err := NewRepaired(64, fm, Budget{SpareRows: 5, SpareCols: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unrepairable die accepted")
	}
}

func TestRepairedStuckAtFaults(t *testing.T) {
	// Repair must neutralize stuck-at cells too (the spare line takes
	// over entirely).
	fm := fault.Map{{Row: 2, Col: 9, Kind: fault.StuckAt1}}
	m, ok, err := NewRepaired(8, fm, Budget{SpareRows: 1})
	if err != nil || !ok {
		t.Fatalf("repair failed: %v %v", ok, err)
	}
	m.Write(2, 0)
	if got := m.Read(2); got != 0 {
		t.Errorf("stuck-at leaked through repair: %#x", got)
	}
}

// TestAllocateMatchesBruteForce checks the line-branching solver against
// an exhaustive oracle on small instances: feasibility must agree with
// trying every row/column subset within the budget.
func TestAllocateMatchesBruteForce(t *testing.T) {
	bruteOK := func(fm fault.Map, b Budget) bool {
		var rows, cols []int
		seenR := map[int]bool{}
		seenC := map[int]bool{}
		for _, f := range fm {
			if !seenR[f.Row] {
				seenR[f.Row] = true
				rows = append(rows, f.Row)
			}
			if !seenC[f.Col] {
				seenC[f.Col] = true
				cols = append(cols, f.Col)
			}
		}
		nr, nc := len(rows), len(cols)
		for rm := 0; rm < 1<<nr; rm++ {
			if popcount(rm) > b.SpareRows {
				continue
			}
			for cm := 0; cm < 1<<nc; cm++ {
				if popcount(cm) > b.SpareCols {
					continue
				}
				covered := true
				for _, f := range fm {
					ok := false
					for i, r := range rows {
						if rm&(1<<i) != 0 && f.Row == r {
							ok = true
						}
					}
					for i, c := range cols {
						if cm&(1<<i) != 0 && f.Col == c {
							ok = true
						}
					}
					if !ok {
						covered = false
						break
					}
				}
				if covered {
					return true
				}
			}
		}
		return false
	}

	rng := stats.NewRand(31)
	for trial := 0; trial < 400; trial++ {
		n := rng.Intn(7) + 1
		fm := fault.GenerateCount(rng, 5, 5, n, fault.Flip)
		b := Budget{SpareRows: rng.Intn(3), SpareCols: rng.Intn(3)}
		alloc, got := Allocate(fm, b)
		want := bruteOK(fm, b)
		if got != want {
			t.Fatalf("trial %d: Allocate=%v oracle=%v for %v under %+v", trial, got, want, fm, b)
		}
		if got {
			if len(alloc.Rows) > b.SpareRows || len(alloc.Cols) > b.SpareCols {
				t.Fatalf("trial %d: allocation %+v exceeds budget %+v", trial, alloc, b)
			}
			rows := map[int]bool{}
			cols := map[int]bool{}
			for _, r := range alloc.Rows {
				rows[r] = true
			}
			for _, c := range alloc.Cols {
				cols[c] = true
			}
			for _, f := range fm {
				if !rows[f.Row] && !cols[f.Col] {
					t.Fatalf("trial %d: fault %+v uncovered by %+v", trial, f, alloc)
				}
			}
		}
	}
}

func popcount(v int) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
