// Package redund implements the traditional yield-repair baseline the
// paper argues against in §2: spare rows and columns that replace any
// line containing a faulty cell. It provides the classic repair-allocation
// algorithm (must-repair analysis followed by branch-and-bound cover) and
// a functional repaired memory, so the economics claim — "as the number
// of failures increases, the number of redundant rows/columns required
// ... increases tremendously" [15] — can be measured instead of cited.
package redund

import (
	"fmt"
	"sort"

	"faultmem/internal/fault"
)

// Budget is the available spare lines of a die.
type Budget struct {
	SpareRows int
	SpareCols int
}

// Allocation is a repair solution: which rows and columns are replaced.
type Allocation struct {
	Rows []int
	Cols []int
}

// Allocate decides whether the fault map can be fully repaired within
// the budget and returns one feasible allocation if so. The problem
// (cover every fault by replacing its row or its column, with separate
// row/column budgets) is NP-complete in general; the standard practical
// algorithm is used:
//
//  1. must-repair: a row with more faults than the column budget can
//     only be fixed by a spare row (and symmetrically), iterated to a
//     fixed point;
//  2. the sparse residue is solved exactly by depth-first branch and
//     bound over the remaining faults.
//
// Fault counts in this paper's regime (tens to a few hundred per die)
// resolve in microseconds.
func Allocate(faults fault.Map, b Budget) (Allocation, bool) {
	if b.SpareRows < 0 || b.SpareCols < 0 {
		panic(fmt.Sprintf("redund: negative budget %+v", b))
	}
	type cell struct{ r, c int }
	remaining := make(map[cell]struct{}, len(faults))
	for _, f := range faults {
		remaining[cell{f.Row, f.Col}] = struct{}{}
	}
	usedRows := map[int]bool{}
	usedCols := map[int]bool{}
	rowBudget, colBudget := b.SpareRows, b.SpareCols

	removeLine := func(isRow bool, idx int) {
		for k := range remaining {
			if (isRow && k.r == idx) || (!isRow && k.c == idx) {
				delete(remaining, k)
			}
		}
	}

	// Must-repair iteration.
	for {
		changed := false
		rowCount := map[int]int{}
		colCount := map[int]int{}
		for k := range remaining {
			rowCount[k.r]++
			colCount[k.c]++
		}
		for r, n := range rowCount {
			if n > colBudget {
				if rowBudget == 0 {
					return Allocation{}, false
				}
				usedRows[r] = true
				rowBudget--
				removeLine(true, r)
				changed = true
			}
		}
		colCount = map[int]int{}
		for k := range remaining {
			colCount[k.c]++
		}
		for c, n := range colCount {
			if n > rowBudget {
				if colBudget == 0 {
					return Allocation{}, false
				}
				usedCols[c] = true
				colBudget--
				removeLine(false, c)
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Branch and bound over the sparse residue, pruned by the König
	// bound: the uncovered faults' maximum matching is a lower bound on
	// the lines any completion still needs, so a node whose bound
	// exceeds its remaining budget is dead.
	cells := make([]cell, 0, len(remaining))
	for k := range remaining {
		cells = append(cells, k)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].r != cells[j].r {
			return cells[i].r < cells[j].r
		}
		return cells[i].c < cells[j].c
	})

	bound := func(rows, cols map[int]bool) int {
		var residue fault.Map
		for _, k := range cells {
			if !rows[k.r] && !cols[k.c] {
				residue = append(residue, fault.Fault{Row: k.r, Col: k.c})
			}
		}
		return MinSpares(residue)
	}

	var solve func(idx, rb, cb int, rows, cols map[int]bool) bool
	solve = func(idx, rb, cb int, rows, cols map[int]bool) bool {
		for idx < len(cells) {
			k := cells[idx]
			if rows[k.r] || cols[k.c] {
				idx++
				continue
			}
			break
		}
		if idx == len(cells) {
			for r := range rows {
				usedRows[r] = true
			}
			for c := range cols {
				usedCols[c] = true
			}
			return true
		}
		if rb == 0 && cb == 0 {
			return false
		}
		if bound(rows, cols) > rb+cb {
			return false
		}
		k := cells[idx]
		if rb > 0 {
			rows[k.r] = true
			if solve(idx+1, rb-1, cb, rows, cols) {
				return true
			}
			delete(rows, k.r)
		}
		if cb > 0 {
			cols[k.c] = true
			if solve(idx+1, rb, cb-1, rows, cols) {
				return true
			}
			delete(cols, k.c)
		}
		return false
	}
	if !solve(0, rowBudget, colBudget, map[int]bool{}, map[int]bool{}) {
		return Allocation{}, false
	}

	alloc := Allocation{}
	for r := range usedRows {
		alloc.Rows = append(alloc.Rows, r)
	}
	for c := range usedCols {
		alloc.Cols = append(alloc.Cols, c)
	}
	sort.Ints(alloc.Rows)
	sort.Ints(alloc.Cols)
	return alloc, true
}

// MinSpares returns the minimum total number of spare lines (rows +
// columns, any split) that repairs the fault map. By König's theorem the
// minimum line cover of the fault bipartite graph equals its maximum
// matching, computed here with the standard augmenting-path algorithm.
// This is the information-theoretic floor any budgeted allocation must
// respect.
func MinSpares(faults fault.Map) int {
	// Build adjacency row -> cols.
	adj := map[int][]int{}
	for _, f := range faults {
		adj[f.Row] = append(adj[f.Row], f.Col)
	}
	matchCol := map[int]int{} // col -> row
	var try func(r int, seen map[int]bool) bool
	try = func(r int, seen map[int]bool) bool {
		for _, c := range adj[r] {
			if seen[c] {
				continue
			}
			seen[c] = true
			prev, taken := matchCol[c]
			if !taken || try(prev, seen) {
				matchCol[c] = r
				return true
			}
		}
		return false
	}
	matching := 0
	for r := range adj {
		if try(r, map[int]bool{}) {
			matching++
		}
	}
	return matching
}
