// Package redund implements the traditional yield-repair baseline the
// paper argues against in §2: spare rows and columns that replace any
// line containing a faulty cell. It provides the classic repair-allocation
// algorithm (must-repair analysis followed by branch-and-bound cover) and
// a functional repaired memory, so the economics claim — "as the number
// of failures increases, the number of redundant rows/columns required
// ... increases tremendously" [15] — can be measured instead of cited.
package redund

import (
	"fmt"
	"sort"

	"faultmem/internal/fault"
)

// Budget is the available spare lines of a die.
type Budget struct {
	SpareRows int
	SpareCols int
}

// Allocation is a repair solution: which rows and columns are replaced.
type Allocation struct {
	Rows []int
	Cols []int
}

// Allocate decides whether the fault map can be fully repaired within
// the budget and returns one feasible allocation if so. The problem
// (cover every fault by replacing its row or its column, with separate
// row/column budgets) is NP-complete in general; the standard practical
// algorithm is used:
//
//  1. must-repair: a row with more faults than the column budget can
//     only be fixed by a spare row (and symmetrically), iterated to a
//     fixed point;
//  2. the sparse residue is solved exactly by depth-first branch and
//     bound over the remaining faults.
//
// Fault counts in this paper's regime (tens to a few hundred per die)
// resolve in microseconds.
func Allocate(faults fault.Map, b Budget) (Allocation, bool) {
	if b.SpareRows < 0 || b.SpareCols < 0 {
		panic(fmt.Sprintf("redund: negative budget %+v", b))
	}
	type cell struct{ r, c int }
	remaining := make(map[cell]struct{}, len(faults))
	for _, f := range faults {
		remaining[cell{f.Row, f.Col}] = struct{}{}
	}
	usedRows := map[int]bool{}
	usedCols := map[int]bool{}
	rowBudget, colBudget := b.SpareRows, b.SpareCols

	removeLine := func(isRow bool, idx int) {
		for k := range remaining {
			if (isRow && k.r == idx) || (!isRow && k.c == idx) {
				delete(remaining, k)
			}
		}
	}

	// Must-repair iteration.
	for {
		changed := false
		rowCount := map[int]int{}
		colCount := map[int]int{}
		for k := range remaining {
			rowCount[k.r]++
			colCount[k.c]++
		}
		for r, n := range rowCount {
			if n > colBudget {
				if rowBudget == 0 {
					return Allocation{}, false
				}
				usedRows[r] = true
				rowBudget--
				removeLine(true, r)
				changed = true
			}
		}
		colCount = map[int]int{}
		for k := range remaining {
			colCount[k.c]++
		}
		for c, n := range colCount {
			if n > rowBudget {
				if colBudget == 0 {
					return Allocation{}, false
				}
				usedCols[c] = true
				colBudget--
				removeLine(false, c)
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Branch and bound over the sparse residue. Branching is by whole
	// lines, not individual faults: either the heaviest remaining line is
	// replaced by a spare, or every fault on it must be covered from the
	// other side — the forced assignment that keeps the tree shallow.
	// Two exact cuts close almost every node at memory-scale densities:
	// the König bound (the residue's maximum matching exceeds the
	// remaining budget → dead), and the isolated-fault leaf (every
	// remaining row and column holds one fault, so the faults are
	// interchangeable and feasibility is just a count comparison).
	cells := make([]cell, 0, len(remaining))
	for k := range remaining {
		cells = append(cells, k)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].r != cells[j].r {
			return cells[i].r < cells[j].r
		}
		return cells[i].c < cells[j].c
	})

	minSparesOf := func(cs []cell) int {
		residue := make(fault.Map, len(cs))
		for i, k := range cs {
			residue[i] = fault.Fault{Row: k.r, Col: k.c}
		}
		return MinSpares(residue)
	}
	// without returns cs minus every fault on the given line.
	without := func(cs []cell, isRow bool, idx int) []cell {
		rest := make([]cell, 0, len(cs))
		for _, k := range cs {
			if (isRow && k.r == idx) || (!isRow && k.c == idx) {
				continue
			}
			rest = append(rest, k)
		}
		return rest
	}

	var solve func(cs []cell, rb, cb int) ([]int, []int, bool)
	solve = func(cs []cell, rb, cb int) ([]int, []int, bool) {
		if len(cs) == 0 {
			return nil, nil, true
		}
		// The heaviest row and column, deterministically (count
		// descending, index ascending).
		rowCount := map[int]int{}
		colCount := map[int]int{}
		for _, k := range cs {
			rowCount[k.r]++
			colCount[k.c]++
		}
		bestRow, bestRowN := -1, 0
		for r, n := range rowCount {
			if n > bestRowN || (n == bestRowN && r < bestRow) {
				bestRow, bestRowN = r, n
			}
		}
		bestCol, bestColN := -1, 0
		for c, n := range colCount {
			if n > bestColN || (n == bestColN && c < bestCol) {
				bestCol, bestColN = c, n
			}
		}
		if bestRowN == 1 && bestColN == 1 {
			// Isolated faults: each needs one line of either kind, and any
			// split within the budgets works.
			if len(cs) > rb+cb {
				return nil, nil, false
			}
			var rs, colsOut []int
			for i, k := range cs {
				if i < rb {
					rs = append(rs, k.r)
				} else {
					colsOut = append(colsOut, k.c)
				}
			}
			return rs, colsOut, true
		}
		if minSparesOf(cs) > rb+cb {
			return nil, nil, false
		}
		// Branch on the heavier of the two lines.
		branchRow := bestRowN >= bestColN
		var line int
		if branchRow {
			line = bestRow
		} else {
			line = bestCol
		}
		// Option 1: spend a spare of the line's own kind.
		if branchRow && rb > 0 {
			if rs, colsOut, ok := solve(without(cs, true, line), rb-1, cb); ok {
				return append(rs, line), colsOut, true
			}
		}
		if !branchRow && cb > 0 {
			if rs, colsOut, ok := solve(without(cs, false, line), rb, cb-1); ok {
				return rs, append(colsOut, line), true
			}
		}
		// Option 2: no spare for this line — every fault on it is forced
		// onto the crossing lines.
		forcedSet := map[int]bool{}
		for _, k := range cs {
			if branchRow && k.r == line {
				forcedSet[k.c] = true
			}
			if !branchRow && k.c == line {
				forcedSet[k.r] = true
			}
		}
		forced := make([]int, 0, len(forcedSet))
		for idx := range forcedSet {
			forced = append(forced, idx)
		}
		sort.Ints(forced)
		if branchRow {
			if cb < len(forced) {
				return nil, nil, false
			}
			rest := cs
			for _, c := range forced {
				rest = without(rest, false, c)
			}
			if rs, colsOut, ok := solve(rest, rb, cb-len(forced)); ok {
				return rs, append(colsOut, forced...), true
			}
			return nil, nil, false
		}
		if rb < len(forced) {
			return nil, nil, false
		}
		rest := cs
		for _, r := range forced {
			rest = without(rest, true, r)
		}
		if rs, colsOut, ok := solve(rest, rb-len(forced), cb); ok {
			return append(rs, forced...), colsOut, true
		}
		return nil, nil, false
	}
	rs, cols, ok := solve(cells, rowBudget, colBudget)
	if !ok {
		return Allocation{}, false
	}
	for _, r := range rs {
		usedRows[r] = true
	}
	for _, c := range cols {
		usedCols[c] = true
	}

	alloc := Allocation{}
	for r := range usedRows {
		alloc.Rows = append(alloc.Rows, r)
	}
	for c := range usedCols {
		alloc.Cols = append(alloc.Cols, c)
	}
	sort.Ints(alloc.Rows)
	sort.Ints(alloc.Cols)
	return alloc, true
}

// MinSpares returns the minimum total number of spare lines (rows +
// columns, any split) that repairs the fault map. By König's theorem the
// minimum line cover of the fault bipartite graph equals its maximum
// matching, computed here with the standard augmenting-path algorithm.
// This is the information-theoretic floor any budgeted allocation must
// respect.
func MinSpares(faults fault.Map) int {
	// Build adjacency row -> cols.
	adj := map[int][]int{}
	for _, f := range faults {
		adj[f.Row] = append(adj[f.Row], f.Col)
	}
	matchCol := map[int]int{} // col -> row
	var try func(r int, seen map[int]bool) bool
	try = func(r int, seen map[int]bool) bool {
		for _, c := range adj[r] {
			if seen[c] {
				continue
			}
			seen[c] = true
			prev, taken := matchCol[c]
			if !taken || try(prev, seen) {
				matchCol[c] = r
				return true
			}
		}
		return false
	}
	matching := 0
	for r := range adj {
		if try(r, map[int]bool{}) {
			matching++
		}
	}
	return matching
}
