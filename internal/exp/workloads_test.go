package exp

import (
	"bytes"
	"context"
	"math"
	"runtime"
	"testing"
)

// renderTable renders a table to text for byte-level comparison.
func renderTable(t *testing.T, tbl *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// smokeWorkloadsParams returns a small-budget campaign config covering
// the two non-ML workloads (the ML trio's engine path is pinned by the
// fig7 golden-equivalence test).
func smokeWorkloadsParams() WorkloadsParams {
	p := DefaultWorkloadsParams()
	p.Workloads = []string{"rsort", "cgsolve"}
	p.Trials = 4
	p.Rows = 512
	p.Keys = 1024
	p.Dim = 24
	return p
}

// TestWorkloadsWorkerCountInvariance extends the engine's determinism
// contract to the new workload family: one RNG stream per trial, so
// the quality samples are bit-identical for any worker count.
func TestWorkloadsWorkerCountInvariance(t *testing.T) {
	p := smokeWorkloadsParams()
	run := func(workers int) WorkloadsResult {
		q := p
		q.Workers = workers
		res, err := Workloads(q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if len(ref.Runs) != 2 {
		t.Fatalf("%d runs, want 2", len(ref.Runs))
	}
	for _, w := range []int{3, runtime.GOMAXPROCS(0)} {
		got := run(w)
		for ri := range ref.Runs {
			a, b := ref.Runs[ri], got.Runs[ri]
			if a.Workload != b.Workload || math.Float64bits(a.Clean) != math.Float64bits(b.Clean) {
				t.Fatalf("workers=%d run %d: identity drifted (%s/%g vs %s/%g)",
					w, ri, a.Workload, a.Clean, b.Workload, b.Clean)
			}
			for ai := range a.Arms {
				aq, bq := a.Arms[ai].Qualities, b.Arms[ai].Qualities
				if len(aq) != len(bq) {
					t.Fatalf("workers=%d %s arm %v: %d samples != %d",
						w, a.Workload, a.Arms[ai].Scheme, len(bq), len(aq))
				}
				for qi := range aq {
					if math.Float64bits(aq[qi]) != math.Float64bits(bq[qi]) {
						t.Fatalf("workers=%d %s arm %v sample %d: %v != %v",
							w, a.Workload, a.Arms[ai].Scheme, qi, bq[qi], aq[qi])
					}
				}
			}
		}
	}
}

// TestWorkloadsAllArms pins the campaign's arm coverage: every
// registered protection scheme appears, in AllProtections order, with a
// full quality sample.
func TestWorkloadsAllArms(t *testing.T) {
	p := smokeWorkloadsParams()
	p.Workloads = []string{"rsort"}
	res, err := Workloads(p)
	if err != nil {
		t.Fatal(err)
	}
	want := AllProtections()
	arms := res.Runs[0].Arms
	if len(arms) != len(want) {
		t.Fatalf("%d arms, want %d", len(arms), len(want))
	}
	for i, a := range arms {
		if a.Scheme != want[i] {
			t.Errorf("arm %d is %v, want %v", i, a.Scheme, want[i])
		}
		if len(a.Qualities) != p.Trials {
			t.Errorf("arm %v holds %d samples, want %d", a.Scheme, len(a.Qualities), p.Trials)
		}
		for _, q := range a.Qualities {
			if q < 0 || q > 1 || math.IsNaN(q) {
				t.Errorf("arm %v quality %v outside [0,1]", a.Scheme, q)
			}
		}
	}
}

// TestWorkloadsParamValidation pins the campaign's input contract:
// unknown and duplicate workload names, and degenerate Monte-Carlo
// geometry, fail loudly.
func TestWorkloadsParamValidation(t *testing.T) {
	base := smokeWorkloadsParams()
	bad := base
	bad.Workloads = []string{"bogus"}
	if _, err := Workloads(bad); err == nil {
		t.Error("unknown workload name accepted")
	}
	bad = base
	bad.Workloads = []string{"rsort", "rsort"}
	if _, err := Workloads(bad); err == nil {
		t.Error("duplicate workload name accepted")
	}
	bad = base
	bad.Trials = 0
	if _, err := Workloads(bad); err == nil {
		t.Error("zero trials accepted")
	}
	bad = base
	bad.Pcell = 1
	if _, err := Workloads(bad); err == nil {
		t.Error("Pcell=1 accepted")
	}
}

// TestWorkloadsRegistryMatchesDirect pins the registry adapter against
// the direct entrypoint: same tables, and the -quick clamp lands on
// QuickWorkloadsTrials.
func TestWorkloadsRegistryMatchesDirect(t *testing.T) {
	p := smokeWorkloadsParams()
	direct, err := Workloads(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), "workloads", &Runner{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2*len(direct.Runs) {
		t.Fatalf("%d tables, want %d", len(res.Tables), 2*len(direct.Runs))
	}
	for i, run := range direct.Runs {
		wantCDF := renderTable(t, direct.QualityCDFTable(run))
		wantSum := renderTable(t, direct.SummaryTable(run))
		if got := renderTable(t, res.Tables[2*i]); got != wantCDF {
			t.Errorf("run %d: registry CDF table differs from direct path", i)
		}
		if got := renderTable(t, res.Tables[2*i+1]); got != wantSum {
			t.Errorf("run %d: registry summary table differs from direct path", i)
		}
	}

	quick := p
	quick.Trials = QuickWorkloadsTrials + 100
	res, err = Run(context.Background(), "workloads", &Runner{Params: quick, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Params.(WorkloadsParams).Trials; got != QuickWorkloadsTrials {
		t.Fatalf("quick tier ran %d trials, want %d", got, QuickWorkloadsTrials)
	}
}
