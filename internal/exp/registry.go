package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
)

// Experiment is one campaign of the paper's evaluation behind the uniform
// streaming API: a registry name, a JSON-serializable default parameter
// set, and a context-aware run against a shared execution environment.
// Uncancelled runs are bit-identical to the underlying direct entrypoints
// for any worker count; a cancelled or deadlined context surfaces as
// ctx.Err() with no result and no leaked goroutines.
type Experiment interface {
	// Name is the registry key (the CLI's `faultmem run <name>`).
	Name() string
	// DefaultParams returns the experiment's default parameter struct —
	// the value Run uses when the Runner carries no override, and the
	// template JSON overrides are unmarshalled onto.
	DefaultParams() any
	// Run executes the campaign under the runner's environment and
	// returns the uniform Result.
	Run(ctx context.Context, r *Runner) (*Result, error)
}

// Describer is the optional listing-description facet of an
// Experiment: a one-line summary shown by `faultmem list`. Experiments
// without it list with an empty description — the interface stays
// optional so third-party Experiment implementations predating it keep
// compiling.
type Describer interface {
	// Description is a one-line summary for registry listings.
	Description() string
}

// entry is one registered experiment.
type entry struct {
	exp Experiment
}

// registry holds every experiment in presentation (paper) order. It is
// populated once by init below — a single explicit list, so the order
// never depends on file-level init sequencing.
var registry []entry
var registryIndex = map[string]int{}

// Register adds an experiment to the registry. It panics on a duplicate
// name — registry names are the wire contract of the run API.
func Register(e Experiment) {
	name := e.Name()
	if _, dup := registryIndex[name]; dup {
		panic(fmt.Sprintf("exp: duplicate experiment %q", name))
	}
	registryIndex[name] = len(registry)
	registry = append(registry, entry{exp: e})
}

func init() {
	Register(fig2Experiment{})
	Register(fig4Experiment{})
	Register(table1Experiment{})
	Register(fig5Experiment{})
	Register(fig6Experiment{})
	Register(fig7Experiment{})
	Register(workloadsExperiment{})
	Register(recoveryExperiment{})
	Register(energyExperiment{})
	Register(redundancyExperiment{})
	Register(paretoExperiment{})
	Register(bistcovExperiment{})
	Register(widthExperiment{})
	Register(multiFaultExperiment{})
	Register(lutExperiment{})
	Register(transientExperiment{})
}

// Experiments returns the registered names in presentation order.
func Experiments() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.exp.Name()
	}
	return names
}

// Describe returns the one-line listing description of an experiment
// (empty for experiments that do not implement Describer).
func Describe(name string) (string, bool) {
	i, ok := registryIndex[name]
	if !ok {
		return "", false
	}
	if d, ok := registry[i].exp.(Describer); ok {
		return d.Description(), true
	}
	return "", true
}

// Lookup returns the registered experiment by name.
func Lookup(name string) (Experiment, bool) {
	i, ok := registryIndex[name]
	if !ok {
		return nil, false
	}
	return registry[i].exp, true
}

// ErrUnknownExperiment reports a name missing from the registry; its
// message lists every registered name so callers (and CLI users) see the
// valid vocabulary.
type ErrUnknownExperiment struct{ Name string }

func (e *ErrUnknownExperiment) Error() string {
	return fmt.Sprintf("exp: unknown experiment %q (registered: %s)",
		e.Name, strings.Join(Experiments(), ", "))
}

// Run executes one registered experiment by name under the runner's
// environment.
func Run(ctx context.Context, name string, r *Runner) (*Result, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, &ErrUnknownExperiment{Name: name}
	}
	return e.Run(ctx, r)
}

// ExperimentError is one campaign's failure inside a RunAll sequence.
type ExperimentError struct {
	Name string
	Err  error
}

func (e *ExperimentError) Error() string { return fmt.Sprintf("%s: %v", e.Name, e.Err) }
func (e *ExperimentError) Unwrap() error { return e.Err }

// RunAllError aggregates the failures of a RunAll sequence that kept
// going past failing experiments. Failures preserves registry order.
type RunAllError struct{ Failures []*ExperimentError }

func (e *RunAllError) Error() string {
	names := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		names[i] = f.Name
	}
	return fmt.Sprintf("exp: %d of %d experiments failed (%s); first: %v",
		len(e.Failures), len(registry), strings.Join(names, ", "), e.Failures[0].Err)
}

// RunAll executes every registered experiment in presentation order,
// streaming each Result to emit as it completes. A failing experiment no
// longer aborts the sequence: the remaining campaigns still run, and the
// collected failures come back as a *RunAllError so callers can report
// exactly which campaigns failed. A context cancellation stops the
// iteration immediately (the aggregate then ends with that experiment's
// ctx error), as does an error from emit — if the sink is broken there is
// nowhere left to stream results. The runner's Params override is
// rejected: a single override cannot fit fourteen parameter types.
func RunAll(ctx context.Context, r *Runner, emit func(*Result) error) error {
	if r != nil && r.Params != nil {
		return fmt.Errorf("exp: RunAll does not accept a params override")
	}
	return runAll(ctx, registry, r, emit)
}

// runAll is RunAll over an explicit experiment list — the testable core.
func runAll(ctx context.Context, entries []entry, r *Runner, emit func(*Result) error) error {
	var agg RunAllError
	for _, e := range entries {
		res, err := e.exp.Run(ctx, r)
		if err != nil {
			agg.Failures = append(agg.Failures, &ExperimentError{Name: e.exp.Name(), Err: err})
			if ctx.Err() != nil {
				break
			}
			continue
		}
		if emit != nil {
			if err := emit(res); err != nil {
				return err
			}
		}
	}
	if len(agg.Failures) > 0 {
		return &agg
	}
	return nil
}

// runnerParams resolves the effective parameters of an experiment run:
// the runner's override when present — either the concrete params type or
// raw JSON unmarshalled over the defaults (the wire form of the sweep
// service) — and the experiment's DefaultParams otherwise. JSON overrides
// are strict: an unknown field (a typo like "trails" for "trials") fails
// the run loudly instead of silently running the defaults.
func runnerParams[T any](r *Runner, e Experiment) (T, error) {
	def := e.DefaultParams().(T)
	if r == nil || r.Params == nil {
		return def, nil
	}
	var raw []byte
	switch p := r.Params.(type) {
	case T:
		return p, nil
	case json.RawMessage:
		raw = p
	case []byte:
		raw = p
	default:
		var zero T
		return zero, fmt.Errorf("exp: %s params override is %T, want %T or json.RawMessage",
			e.Name(), r.Params, zero)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&def); err != nil {
		var zero T
		return zero, fmt.Errorf("exp: %s params JSON: %w", e.Name(), err)
	}
	// Reject trailing garbage after the params object ("{...}{...}").
	if dec.More() {
		var zero T
		return zero, fmt.Errorf("exp: %s params JSON: trailing data after object", e.Name())
	}
	return def, nil
}
