package exp

import (
	"context"
	"fmt"

	"faultmem/internal/sram"
	"faultmem/internal/stats"
)

// Fig2Params configures the cell-failure-probability sweep of Fig. 2.
type Fig2Params struct {
	// VMin, VMax, Step define the VDD sweep in volts.
	VMin, VMax, Step float64
	// ISDirections is the sample count of the spherical importance-
	// sampling estimator (0 disables the 6T cross-check columns).
	ISDirections int
	// MemoryBytes sizes the worst-case yield column (16 KB in the paper).
	MemoryBytes int
	// Seed drives the IS estimator.
	Seed int64
}

// DefaultFig2Params matches the published sweep: 0.6-1.0 V for a 16 KB
// memory.
func DefaultFig2Params() Fig2Params {
	return Fig2Params{VMin: 0.60, VMax: 1.00, Step: 0.02, ISDirections: 20000, MemoryBytes: 16 * 1024, Seed: 2}
}

// Fig2Row is one sweep point: the analytic and importance-sampled cell
// failure probabilities and the traditional zero-failure yield of the
// memory.
type Fig2Row struct {
	VDD            float64
	PcellAnalytic  float64
	PcellIS        float64 // -1 when IS disabled
	ZeroFailYield  float64
	ExpectFailures float64
}

// Fig2 runs the sweep.
func Fig2(p Fig2Params) []Fig2Row {
	rows, err := Fig2Ctx(context.Background(), p)
	if err != nil {
		// Unreachable: the background context never cancels.
		panic(err)
	}
	return rows
}

// Fig2Ctx is Fig2 with cooperative cancellation, polled between sweep
// points (each point pays one importance-sampling estimate). Results are
// identical to Fig2 when the context stays live.
func Fig2Ctx(ctx context.Context, p Fig2Params) ([]Fig2Row, error) {
	if p.Step <= 0 || p.VMax < p.VMin {
		panic(fmt.Sprintf("exp: bad Fig2 params %+v", p))
	}
	model := sram.Default28nm()
	sixT := sram.NewSixT()
	rng := stats.NewRand(p.Seed)
	cells := p.MemoryBytes * 8
	var rows []Fig2Row
	for v := p.VMax; v >= p.VMin-1e-9; v -= p.Step {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := Fig2Row{
			VDD:            v,
			PcellAnalytic:  model.Pcell(v),
			PcellIS:        -1,
			ZeroFailYield:  model.Yield(v, cells),
			ExpectFailures: model.ExpectedFailures(v, cells),
		}
		if p.ISDirections > 0 {
			r.PcellIS = sixT.EstimatePcellIS(rng, v, p.ISDirections)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// fig2Experiment adapts the sweep to the registry.
type fig2Experiment struct{}

func (fig2Experiment) Name() string { return "fig2" }
func (fig2Experiment) Description() string {
	return "SRAM cell failure probability under VDD scaling (Fig. 2)"
}
func (fig2Experiment) DefaultParams() any { return DefaultFig2Params() }

func (e fig2Experiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[Fig2Params](r, e)
	if err != nil {
		return nil, err
	}
	p.Seed = r.seedOr(p.Seed)
	if r.quick() && p.ISDirections > 4000 {
		p.ISDirections = 4000
	}
	rows, err := Fig2Ctx(ctx, p)
	if err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: p, Tables: []*Table{Fig2Table(rows)}}, nil
}

// Fig2Table renders the sweep.
func Fig2Table(rows []Fig2Row) *Table {
	t := &Table{
		Title:  "Fig. 2 - SRAM cell failure probability under VDD scaling (28nm, 6T)",
		Header: []string{"VDD [V]", "Pcell (margin model)", "Pcell (6T sphere-IS)", "zero-fail yield 16KB", "E[failures] 16KB"},
		Notes: []string{
			"margin model: Pcell = Phi(-beta(VDD)); sphere-IS: hypersphere importance sampling on the 6T limit states (DESIGN.md substitution for the paper's SPICE framework)",
			"traditional yield criterion Y = (1-Pcell)^M collapses near 0.73 V for the 16KB array (paper Section 2)",
		},
	}
	for _, r := range rows {
		is := "-"
		if r.PcellIS >= 0 {
			is = fmt.Sprintf("%.3e", r.PcellIS)
		}
		t.AddRow(
			fmt.Sprintf("%.2f", r.VDD),
			fmt.Sprintf("%.3e", r.PcellAnalytic),
			is,
			fmt.Sprintf("%.6f", r.ZeroFailYield),
			fmt.Sprintf("%.2f", r.ExpectFailures),
		)
	}
	return t
}
