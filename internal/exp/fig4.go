package exp

import (
	"context"
	"fmt"

	"faultmem/internal/core"
)

// Fig4Params exists for registry uniformity: the error-magnitude profile
// is closed-form and takes no knobs.
type Fig4Params struct{}

// Fig4Row is one faulty bit position of Fig. 4: the log2 error magnitude
// a single fault at that position inflicts on a 32-bit 2's-complement
// word, for no correction and each FM size.
type Fig4Row struct {
	BitPosition  int
	NoCorrection int    // log2 magnitude = the position itself
	Shuffled     [5]int // index i = nFM=i+1
}

// Fig4 computes the error-magnitude profile for every faulty bit
// position and all nFM options (Fig. 4 of the paper).
func Fig4() []Fig4Row {
	rows := make([]Fig4Row, 32)
	for b := 0; b < 32; b++ {
		r := Fig4Row{BitPosition: b, NoCorrection: b}
		for nfm := 1; nfm <= 5; nfm++ {
			cfg := core.Config{Width: 32, NFM: nfm}
			r.Shuffled[nfm-1] = cfg.SingleFaultErrorExponent(b)
		}
		rows[b] = r
	}
	return rows
}

// Fig4Table renders the profile.
func Fig4Table(rows []Fig4Row) *Table {
	t := &Table{
		Title: "Fig. 4 - error magnitude (log2) per faulty bit position, 32-bit 2's complement",
		Header: []string{"bit", "no corr.",
			"nFM=1 (S=16)", "nFM=2 (S=8)", "nFM=3 (S=4)", "nFM=4 (S=2)", "nFM=5 (S=1)"},
		Notes: []string{
			"cell (b, nFM) = log2 of the worst-case output error for a single fault at bit b: b mod S with S = 32/2^nFM (Eq. 1)",
			"worst case per configuration is 2^(S-1), bounding the residual error (Section 3)",
		},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.BitPosition),
			fmt.Sprintf("%d", r.NoCorrection),
			fmt.Sprintf("%d", r.Shuffled[0]),
			fmt.Sprintf("%d", r.Shuffled[1]),
			fmt.Sprintf("%d", r.Shuffled[2]),
			fmt.Sprintf("%d", r.Shuffled[3]),
			fmt.Sprintf("%d", r.Shuffled[4]),
		)
	}
	return t
}

// fig4Experiment adapts the profile to the registry.
type fig4Experiment struct{}

func (fig4Experiment) Name() string { return "fig4" }
func (fig4Experiment) Description() string {
	return "error magnitude per faulty bit position, all nFM options (Fig. 4)"
}
func (fig4Experiment) DefaultParams() any { return Fig4Params{} }

func (e fig4Experiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	if _, err := runnerParams[Fig4Params](r, e); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: Fig4Params{}, Tables: []*Table{Fig4Table(Fig4())}}, nil
}
