package exp

import (
	"bytes"
	"math"
	"testing"

	"faultmem/internal/redund"
)

func TestEnergyStudyOrdering(t *testing.T) {
	p := DefaultEnergyParams()
	p.Dies = 120 // keep the test fast; orderings are robust
	rows := EnergyStudy(p)
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]EnergyRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	none := byName["No Correction"]
	nfm5 := byName["nFM=5-Bit"]
	eccv := byName["H(39,32) ECC"]

	// The central claim: shuffling reaches a lower viable VDD than no
	// protection, and at least matches ECC.
	if math.IsNaN(nfm5.MinVDD) {
		t.Fatal("nFM=5 found no viable VDD")
	}
	if !math.IsNaN(none.MinVDD) && nfm5.MinVDD >= none.MinVDD {
		t.Errorf("nFM=5 min VDD %.2f not below unprotected %.2f", nfm5.MinVDD, none.MinVDD)
	}
	if !math.IsNaN(eccv.MinVDD) && nfm5.MinVDD > eccv.MinVDD {
		t.Errorf("nFM=5 min VDD %.2f above ECC %.2f", nfm5.MinVDD, eccv.MinVDD)
	}
	// And the energy at that point beats ECC (lower VDD and lower
	// overhead compound).
	if !(nfm5.RelativeToECC < 1) {
		t.Errorf("nFM=5 relative energy %.2f, want < 1", nfm5.RelativeToECC)
	}
	var buf bytes.Buffer
	if err := EnergyTable(rows, p).Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyStudyDeterministic(t *testing.T) {
	p := DefaultEnergyParams()
	p.Dies = 60
	a := EnergyStudy(p)
	b := EnergyStudy(p)
	for i := range a {
		if a[i].MinVDD != b[i].MinVDD && !(math.IsNaN(a[i].MinVDD) && math.IsNaN(b[i].MinVDD)) {
			t.Fatalf("arm %d not deterministic: %v vs %v", i, a[i].MinVDD, b[i].MinVDD)
		}
	}
}

func TestRedundancyStudyEconomics(t *testing.T) {
	p := DefaultRedundancyParams()
	p.Dies = 60
	p.VDDs = []float64{0.80, 0.72, 0.66}
	rows := RedundancyStudy(p)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Spares needed must grow as VDD drops; the small budget's repair
	// rate must collapse.
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanMinSpares < rows[i-1].MeanMinSpares {
			t.Errorf("min spares not growing: %.1f -> %.1f",
				rows[i-1].MeanMinSpares, rows[i].MeanMinSpares)
		}
	}
	smallBudget := rows[len(rows)-1].RepairRate[0] // 2+2 at the lowest VDD
	if smallBudget > 0.1 {
		t.Errorf("2+2 spares still repair %.2f of dies at %.2fV", smallBudget, rows[len(rows)-1].VDD)
	}
	bigBudgetHighV := rows[0].RepairRate[len(p.Budgets)-1]
	if bigBudgetHighV < 0.95 {
		t.Errorf("32+32 spares repair only %.2f at %.2fV", bigBudgetHighV, rows[0].VDD)
	}
	var buf bytes.Buffer
	if err := RedundancyTable(rows, p).Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRedundancyStudyMonotoneInBudget(t *testing.T) {
	p := DefaultRedundancyParams()
	p.Dies = 40
	p.VDDs = []float64{0.72}
	p.Budgets = []redund.Budget{
		{SpareRows: 1, SpareCols: 1},
		{SpareRows: 4, SpareCols: 4},
		{SpareRows: 16, SpareCols: 16},
	}
	rows := RedundancyStudy(p)
	r := rows[0].RepairRate
	if !(r[0] <= r[1] && r[1] <= r[2]) {
		t.Errorf("repair rate not monotone in budget: %v", r)
	}
}
