package exp

import (
	"bytes"
	"testing"
)

func TestBISTCoverageHierarchy(t *testing.T) {
	p := DefaultBISTCoverageParams()
	p.Trials = 25
	rows := BISTCoverage(p)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]BISTCoverageRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	// Static faults: always fully located (every algorithm reads both
	// backgrounds at every cell).
	for _, r := range rows {
		if r.StaticCoverage != 1 {
			t.Errorf("%s static coverage %.3f, want 1.0", r.Algorithm, r.StaticCoverage)
		}
	}
	// Coupling faults: the classic March cost/coverage hierarchy.
	zo := byName["Zero-One"].VictimCoverage
	mats := byName["MATS+"].VictimCoverage
	mc := byName["March C-"].VictimCoverage
	mb := byName["March B"].VictimCoverage
	if !(zo < mats && mats < mc) {
		t.Errorf("coverage hierarchy violated: ZeroOne %.3f, MATS+ %.3f, MarchC- %.3f", zo, mats, mc)
	}
	if mc < 0.95 {
		t.Errorf("March C- coupling coverage %.3f, want near 1", mc)
	}
	if mb < mc-0.05 {
		t.Errorf("March B coverage %.3f well below March C- %.3f", mb, mc)
	}
	if zo > 0.6 {
		t.Errorf("Zero-One coverage %.3f implausibly high", zo)
	}
	var buf bytes.Buffer
	if err := BISTCoverageTable(rows, p).Render(&buf); err != nil {
		t.Fatal(err)
	}
}
