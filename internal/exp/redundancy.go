package exp

import (
	"context"
	"fmt"

	"faultmem/internal/fault"
	"faultmem/internal/redund"
	"faultmem/internal/sram"
	"faultmem/internal/stats"
)

// RedundancyParams configures the spare-line economics study of §2: how
// many spare rows/columns a die needs as Pcell grows, and what fraction
// of dies each fixed budget repairs.
type RedundancyParams struct {
	// Rows is the macro depth.
	Rows int
	// VDDs are the operating points swept (Pcell derived from the cell
	// model at each).
	VDDs []float64
	// Budgets are the spare configurations evaluated.
	Budgets []redund.Budget
	// Dies is the Monte-Carlo die count per point.
	Dies int
	// Seed drives the sampling.
	Seed int64
}

// DefaultRedundancyParams sweeps the voltage range of Fig. 2.
func DefaultRedundancyParams() RedundancyParams {
	return RedundancyParams{
		Rows: 4096,
		VDDs: []float64{0.82, 0.78, 0.74, 0.70, 0.66, 0.62},
		Budgets: []redund.Budget{
			{SpareRows: 2, SpareCols: 2},
			{SpareRows: 8, SpareCols: 8},
			{SpareRows: 16, SpareCols: 16},
		},
		Dies: 300,
		Seed: 17,
	}
}

// RedundancyRow is one operating point of the study.
type RedundancyRow struct {
	VDD           float64
	Pcell         float64
	MeanFaults    float64
	MeanMinSpares float64   // König lower bound on lines needed
	RepairRate    []float64 // fraction of dies repairable per budget
}

// RedundancyStudy runs the Monte Carlo.
func RedundancyStudy(p RedundancyParams) []RedundancyRow {
	out, err := RedundancyStudyCtx(context.Background(), p)
	if err != nil {
		// Unreachable: the background context never cancels.
		panic(err)
	}
	return out
}

// RedundancyStudyCtx is RedundancyStudy with cooperative cancellation,
// polled between operating points.
func RedundancyStudyCtx(ctx context.Context, p RedundancyParams) ([]RedundancyRow, error) {
	if p.Dies < 1 {
		panic("exp: non-positive die count")
	}
	model := sram.Default28nm()
	var out []RedundancyRow
	for vi, v := range p.VDDs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rng := stats.Derive(p.Seed, int64(vi))
		pc := model.Pcell(v)
		row := RedundancyRow{VDD: v, Pcell: pc, RepairRate: make([]float64, len(p.Budgets))}
		sumFaults, sumSpares := 0.0, 0.0
		repaired := make([]int, len(p.Budgets))
		for d := 0; d < p.Dies; d++ {
			n := stats.SampleBinomial(rng, p.Rows*32, pc)
			var fm fault.Map
			if n > 0 {
				fm = fault.GenerateCount(rng, p.Rows, 32, n, fault.Flip)
			}
			sumFaults += float64(n)
			sumSpares += float64(redund.MinSpares(fm))
			for bi, b := range p.Budgets {
				if _, ok := redund.Allocate(fm, b); ok {
					repaired[bi]++
				}
			}
		}
		row.MeanFaults = sumFaults / float64(p.Dies)
		row.MeanMinSpares = sumSpares / float64(p.Dies)
		for bi := range p.Budgets {
			row.RepairRate[bi] = float64(repaired[bi]) / float64(p.Dies)
		}
		out = append(out, row)
	}
	return out, nil
}

// redundancyExperiment adapts the spare-line economics study to the
// registry.
type redundancyExperiment struct{}

func (redundancyExperiment) Name() string { return "redundancy" }
func (redundancyExperiment) Description() string {
	return "spare-row/column economics under VDD scaling (Section 2)"
}
func (redundancyExperiment) DefaultParams() any { return DefaultRedundancyParams() }

func (e redundancyExperiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[RedundancyParams](r, e)
	if err != nil {
		return nil, err
	}
	p.Seed = r.seedOr(p.Seed)
	if r.quick() && p.Dies > 100 {
		p.Dies = 100
	}
	rows, err := RedundancyStudyCtx(ctx, p)
	if err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: p, Tables: []*Table{RedundancyTable(rows, p)}}, nil
}

// RedundancyTable renders the study.
func RedundancyTable(rows []RedundancyRow, p RedundancyParams) *Table {
	header := []string{"VDD [V]", "Pcell", "mean faults", "mean min spares"}
	for _, b := range p.Budgets {
		header = append(header, fmt.Sprintf("repair@%d+%d", b.SpareRows, b.SpareCols))
	}
	t := &Table{
		Title:  "Redundancy economics (Section 2) - spare lines needed under VDD scaling",
		Header: header,
		Notes: []string{
			"mean min spares is the Konig lower bound (max matching) on replaced lines per die;",
			"it saturates at 32 because replacing all 32 columns rebuilds the whole array -",
			"the degenerate endpoint of redundancy economics",
			"repair@R+C is the fraction of dies repairable with R spare rows + C spare columns -",
			"the paper's argument: spares scale with the failure count while the bit-shuffling",
			"FM-LUT cost is fixed, so redundancy becomes unviable first",
		},
	}
	for _, r := range rows {
		row := []string{
			fmt.Sprintf("%.2f", r.VDD),
			fmt.Sprintf("%.2e", r.Pcell),
			fmt.Sprintf("%.1f", r.MeanFaults),
			fmt.Sprintf("%.1f", r.MeanMinSpares),
		}
		for _, rr := range r.RepairRate {
			row = append(row, fmt.Sprintf("%.3f", rr))
		}
		t.AddRow(row...)
	}
	return t
}
