package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestParamsRejectUnknownFields locks in the loud-typo fix: a params
// override with a misspelled field ("trails" for trials-like knobs) must
// fail the run instead of silently running the defaults.
func TestParamsRejectUnknownFields(t *testing.T) {
	for _, tc := range []struct{ name, params string }{
		{"fig5", `{"trails": 500}`},
		{"fig5", `{"CDF": {"Truns": 500}}`}, // nested typo
		{"fig7", `[{"Trails": 500}]`},       // fig7 params are a per-app list
		{"width", `{"rows": 10, "Bogus": 1}`},
	} {
		_, err := Run(context.Background(), tc.name, &Runner{Params: json.RawMessage(tc.params)})
		if err == nil {
			t.Fatalf("%s %s: typo'd params accepted", tc.name, tc.params)
		}
		if !strings.Contains(err.Error(), "unknown field") {
			t.Fatalf("%s %s: error does not name the unknown field: %v", tc.name, tc.params, err)
		}
	}
}

// TestParamsRejectTrailingGarbage: two concatenated objects are not a
// valid override.
func TestParamsRejectTrailingGarbage(t *testing.T) {
	_, err := Run(context.Background(), "fig4", &Runner{Params: json.RawMessage(`{}{"x":1}`)})
	if err == nil {
		t.Fatal("trailing JSON garbage accepted")
	}
}

// TestParamsStillMergeKnownFields: the strict decoder must keep accepting
// correct overrides, merged over the defaults.
func TestParamsStillMergeKnownFields(t *testing.T) {
	res, err := Run(context.Background(), "fig5",
		&Runner{Params: json.RawMessage(`{"CDF": {"Trun": 1000}}`)})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := res.Params.(Fig5Params)
	if !ok {
		t.Fatalf("result params are %T", res.Params)
	}
	if p.CDF.Trun != 1000 {
		t.Fatalf("Trun = %g, want 1000", p.CDF.Trun)
	}
	if p.CDF.Rows != DefaultFig5Params().CDF.Rows {
		t.Fatal("unrelated defaults were not preserved")
	}
}

// fakeExperiment is a synthetic registry entry for exercising runAll
// without touching the real (package-global) registry.
type fakeExperiment struct {
	name string
	run  func(ctx context.Context, r *Runner) (*Result, error)
}

func (f fakeExperiment) Name() string       { return f.name }
func (f fakeExperiment) DefaultParams() any { return struct{}{} }
func (f fakeExperiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	return f.run(ctx, r)
}

func okExperiment(name string) entry {
	return entry{exp: fakeExperiment{name: name, run: func(context.Context, *Runner) (*Result, error) {
		return &Result{Experiment: name}, nil
	}}}
}

func failExperiment(name string, err error) entry {
	return entry{exp: fakeExperiment{name: name, run: func(context.Context, *Runner) (*Result, error) {
		return nil, err
	}}}
}

// TestRunAllContinuesPastFailures: a failing experiment must not abort
// the sequence; the remaining campaigns run and the aggregate names every
// failure in order.
func TestRunAllContinuesPastFailures(t *testing.T) {
	boomA, boomB := errors.New("boom-a"), errors.New("boom-b")
	entries := []entry{
		okExperiment("one"),
		failExperiment("bad-a", boomA),
		okExperiment("two"),
		failExperiment("bad-b", boomB),
		okExperiment("three"),
	}
	var seen []string
	err := runAll(context.Background(), entries, nil, func(res *Result) error {
		seen = append(seen, res.Experiment)
		return nil
	})
	if want := []string{"one", "two", "three"}; fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("emitted %v, want %v", seen, want)
	}
	var agg *RunAllError
	if !errors.As(err, &agg) {
		t.Fatalf("err = %v (%T), want *RunAllError", err, err)
	}
	if len(agg.Failures) != 2 || agg.Failures[0].Name != "bad-a" || agg.Failures[1].Name != "bad-b" {
		t.Fatalf("failures = %+v", agg.Failures)
	}
	if !errors.Is(agg.Failures[0], boomA) || !errors.Is(agg.Failures[1], boomB) {
		t.Fatal("aggregate lost the underlying errors")
	}
	if !strings.Contains(err.Error(), "bad-a") || !strings.Contains(err.Error(), "bad-b") {
		t.Fatalf("aggregate message does not name the failures: %v", err)
	}
}

// TestRunAllStopsOnCancellation: once the context is dead, iterating on
// (and failing) every remaining experiment is noise — stop at the first
// cancelled campaign.
func TestRunAllStopsOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	entries := []entry{
		okExperiment("one"),
		{exp: fakeExperiment{name: "canceller", run: func(ctx context.Context, r *Runner) (*Result, error) {
			cancel()
			return nil, ctx.Err()
		}}},
		{exp: fakeExperiment{name: "after", run: func(context.Context, *Runner) (*Result, error) {
			ran++
			return &Result{Experiment: "after"}, nil
		}}},
	}
	err := runAll(ctx, entries, nil, nil)
	var agg *RunAllError
	if !errors.As(err, &agg) || len(agg.Failures) != 1 || agg.Failures[0].Name != "canceller" {
		t.Fatalf("err = %v, want single canceller failure", err)
	}
	if ran != 0 {
		t.Fatal("experiments kept running after the context died")
	}
}

// TestRunAllStopsOnEmitError: a broken sink ends the run with the sink's
// error, not an aggregate.
func TestRunAllStopsOnEmitError(t *testing.T) {
	sink := errors.New("sink broke")
	entries := []entry{okExperiment("one"), okExperiment("two")}
	calls := 0
	err := runAll(context.Background(), entries, nil, func(*Result) error { calls++; return sink })
	if !errors.Is(err, sink) {
		t.Fatalf("err = %v, want sink error", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after failing, want 1", calls)
	}
}
