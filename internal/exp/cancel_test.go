package exp

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"faultmem/internal/mc"
)

// waitGoroutines polls until the goroutine count settles back to the
// baseline (the engine must join every worker before returning).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= base {
			return
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFig5CancelMidCampaign cancels the Fig. 5 Monte Carlo from its own
// progress callback — one shard in — and expects a prompt ctx.Err()
// return with no worker goroutines left behind.
func TestFig5CancelMidCampaign(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := DefaultFig5Params()
	p.CDF.Trun = 2e5
	env := mc.Env{Ctx: ctx, OnShard: func(done, total int) {
		if done == 1 {
			cancel()
		}
	}}
	_, err := Fig5Env(env, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)

	// The same campaign through the registry surfaces the same error.
	if _, err := Run(ctx, "fig5", &Runner{Params: p}); !errors.Is(err, context.Canceled) {
		t.Fatalf("registry err = %v, want context.Canceled", err)
	}
}

// TestFig7DeadlineQuickBudget deadlines the slowest Fig. 7 arm (the PCA
// benchmark) at the -quick trial budget: the campaign must return
// ctx.Err() long before its multi-second serial runtime, through the
// per-trial cancellation polling inside each engine shard.
func TestFig7DeadlineQuickBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 7 Monte Carlo is slow")
	}
	base := runtime.NumGoroutine()
	p := DefaultFig7Params(AppPCA)
	p.Trials = QuickFig7Trials
	p.Workers = 1 // serial: the campaign cannot outrun the deadline
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Fig7Env(mc.Env{Ctx: ctx}, p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The quick PCA budget runs for several seconds serially; a deadlined
	// run must come back within a small multiple of the deadline (one
	// in-flight trial per worker may still drain).
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline return took %v", elapsed)
	}
	waitGoroutines(t, base)
}

// TestExperimentsHonorPreCancelledContext sweeps the registry with an
// already-cancelled context: every experiment must refuse to run.
func TestExperimentsHonorPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Experiments() {
		if _, err := Run(ctx, name, &Runner{Quick: true}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestSweepCancelPropagates cancels the yieldcalc-style VDD sweep through
// its environment and expects ctx.Err() from the outer call.
func TestSweepCancelPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, "energy", &Runner{Quick: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
