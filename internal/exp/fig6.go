package exp

import (
	"context"
	"fmt"

	"faultmem/internal/core"
	"faultmem/internal/ecc"
	"faultmem/internal/hw"
)

// Fig6Params configures the hardware overhead comparison.
type Fig6Params struct {
	// Rows is the macro depth (4096 words = 16 KB of 32-bit words).
	Rows int
}

// DefaultFig6Params matches the paper's 16 KB macro.
func DefaultFig6Params() Fig6Params { return Fig6Params{Rows: 4096} }

// Fig6Result bundles the relative table, the absolute overheads, and the
// §5.1 savings summary.
type Fig6Result struct {
	Relative []hw.Relative
	Absolute []hw.Overhead
	Savings  hw.Savings
	PECCBest [3]float64 // best shuffle reduction vs P-ECC: power, delay, area (%)
}

// Fig6 evaluates the gate-level overhead model.
func Fig6(p Fig6Params) Fig6Result {
	lib := hw.Lib28nm()
	macro := hw.Macro28nm(p.Rows)
	res := Fig6Result{
		Relative: hw.Fig6Table(lib, macro),
		Savings:  hw.ShuffleSavingsVsECC(lib, macro),
	}
	for _, arm := range []Protection{ProtShuffle1, ProtShuffle2, ProtShuffle3, ProtShuffle4, ProtShuffle5} {
		res.Absolute = append(res.Absolute, shuffleOverhead(lib, macro, arm))
	}
	res.Absolute = append(res.Absolute, hw.PECCOverhead(lib, macro))
	res.Absolute = append(res.Absolute, eccOverhead(lib, macro))

	pecc := hw.PECCOverhead(lib, macro)
	best := shuffleOverhead(lib, macro, ProtShuffle1)
	res.PECCBest = [3]float64{
		100 * (1 - best.ReadEnergy/pecc.ReadEnergy),
		100 * (1 - best.ReadDelay/pecc.ReadDelay),
		100 * (1 - best.Area/pecc.Area),
	}
	return res
}

func shuffleOverhead(lib hw.Library, macro hw.Macro, p Protection) hw.Overhead {
	return hw.ShuffleOverhead(lib, macro, core.Config{Width: 32, NFM: p.NFM()})
}

func eccOverhead(lib hw.Library, macro hw.Macro) hw.Overhead {
	return hw.ECCOverhead(lib, macro, ecc.H39_32())
}

// Fig6RelativeTable renders the headline Fig. 6 comparison.
func (r Fig6Result) Fig6RelativeTable() *Table {
	t := &Table{
		Title:  "Fig. 6 - read power / read delay / area overhead relative to H(39,32) SECDED",
		Header: []string{"scheme", "read power", "read delay", "area"},
		Notes: []string{
			fmt.Sprintf("shuffle savings vs SECDED: power %.0f-%.0f%%, delay %.0f-%.0f%%, area %.0f-%.0f%% (paper Section 5.1: 20-83%%, 41-77%%, 32-89%%)",
				r.Savings.PowerMin, r.Savings.PowerMax, r.Savings.DelayMin, r.Savings.DelayMax, r.Savings.AreaMin, r.Savings.AreaMax),
			fmt.Sprintf("best shuffle vs P-ECC: power %.0f%%, delay %.0f%%, area %.0f%% reduction (paper: up to 59%%, 64%%, 57%%)",
				r.PECCBest[0], r.PECCBest[1], r.PECCBest[2]),
		},
	}
	for _, row := range r.Relative {
		t.AddRow(row.Name,
			fmt.Sprintf("%.3f", row.Power),
			fmt.Sprintf("%.3f", row.Delay),
			fmt.Sprintf("%.3f", row.Area))
	}
	return t
}

// AbsoluteTable renders the underlying absolute model outputs.
func (r Fig6Result) AbsoluteTable() *Table {
	t := &Table{
		Title:  "Fig. 6 underlying - absolute read-path overheads (28nm-class model)",
		Header: []string{"scheme", "read energy [fJ]", "read delay [ps]", "area [um^2]", "extra columns", "logic gates"},
	}
	for _, o := range r.Absolute {
		t.AddRow(o.Name,
			fmt.Sprintf("%.1f", o.ReadEnergy),
			fmt.Sprintf("%.1f", o.ReadDelay),
			fmt.Sprintf("%.0f", o.Area),
			fmt.Sprintf("%d", o.Columns),
			fmt.Sprintf("%d", o.LogicGates))
	}
	return t
}

// fig6Experiment adapts the overhead model to the registry.
type fig6Experiment struct{}

func (fig6Experiment) Name() string { return "fig6" }
func (fig6Experiment) Description() string {
	return "read power / delay / area overhead vs H(39,32) SECDED (Fig. 6)"
}
func (fig6Experiment) DefaultParams() any { return DefaultFig6Params() }

func (e fig6Experiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[Fig6Params](r, e)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := Fig6(p)
	return &Result{Experiment: e.Name(), Params: p,
		Tables: []*Table{res.Fig6RelativeTable(), res.AbsoluteTable()}}, nil
}
