package exp

import (
	"context"
	"fmt"

	"faultmem/internal/mc"
	"faultmem/internal/memstore"
	"faultmem/internal/workload"
)

// RecoveryParams configures the detect-and-recover campaign: one
// workload run through all eight protection arms once per recovery
// policy, on common random numbers — the same (seed, trial) stream
// drives every policy's dies and soft errors, so quality deltas between
// policies are paired, not sampled.
type RecoveryParams struct {
	// Workload is the canonical workload name (default "cgsolve").
	Workload string
	// Policies are the recovery policies to compare, in order
	// (workload.PolicyNames()). Empty means all three.
	Policies []string
	// Rows is the memory macro depth (4096 = 16 KB).
	Rows int
	// Pcell is the bit-cell failure probability.
	Pcell float64
	// Trials is the Monte-Carlo budget per policy (each trial runs all
	// eight arms on one die).
	Trials int
	// Seed drives problem generation, fault maps, and soft errors.
	Seed int64
	// Retries is the bounded re-read budget per flagged word (0 = 2).
	Retries int
	// SafeWords is the saferestore per-trial safe-word budget
	// (0 = unlimited).
	SafeWords int
	// TransientRate is the per-read per-bit soft-error rate (0 disables;
	// the default campaign uses 1e-4 so bounded re-reads have transient
	// corruption to recover).
	TransientRate float64
	// Keys, Dim, Iters, Checkpoint, Restarts forward to the workload
	// (0 = the workload default).
	Keys       int
	Dim        int
	Iters      int
	Checkpoint int
	Restarts   int
	// MadelonPaperSize switches the PCA workload to the full 500-feature
	// geometry.
	MadelonPaperSize bool
	// Workers is the goroutine count (0 = GOMAXPROCS); results are
	// identical for every worker count.
	Workers int
}

// DefaultRecoveryParams returns the campaign defaults: the CG solve at
// the fig7 memory geometry with soft errors enabled, comparing all
// three policies with a 2-retry budget and a 256-word restore budget.
func DefaultRecoveryParams() RecoveryParams {
	return RecoveryParams{
		Workload:      "cgsolve",
		Policies:      workload.PolicyNames(),
		Rows:          4096,
		Pcell:         1e-3,
		Trials:        200,
		Seed:          7,
		Retries:       2,
		SafeWords:     256,
		TransientRate: 1e-4,
	}
}

// QuickRecoveryTrials is the reduced -quick budget for CI smokes.
const QuickRecoveryTrials = 8

// RecoveryPolicyRun is one policy's sweep over the protection arms.
type RecoveryPolicyRun struct {
	// Policy is the canonical policy name ("none", "retry",
	// "saferestore").
	Policy string
	// Arms holds one sorted quality sample per protection arm, in
	// AllProtections order.
	Arms []Fig7Arm
	// Stats are the per-arm recovery counters summed over every trial
	// (nil for the "none" policy, which takes the plain cached path).
	Stats []memstore.RecoveryStats
}

// RecoveryResult bundles the campaign run.
type RecoveryResult struct {
	Params RecoveryParams
	// Workload/Display/Metric/Clean describe the single workload every
	// policy ran.
	Workload string
	Display  string
	Metric   string
	Clean    float64
	Runs     []RecoveryPolicyRun
}

// resolvePolicies maps the params' policy-name subset to kinds (all
// three when empty), rejecting unknown names and duplicates.
func (p RecoveryParams) resolvePolicies() ([]workload.PolicyKind, error) {
	if len(p.Policies) == 0 {
		return workload.AllPolicies(), nil
	}
	kinds := make([]workload.PolicyKind, 0, len(p.Policies))
	seen := map[workload.PolicyKind]bool{}
	for _, name := range p.Policies {
		k, err := workload.ParsePolicy(name)
		if err != nil {
			return nil, fmt.Errorf("exp: recovery params: %w", err)
		}
		if seen[k] {
			return nil, fmt.Errorf("exp: recovery params: duplicate policy %q", name)
		}
		seen[k] = true
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// policyFor builds the concrete policy for one kind from the campaign
// budgets.
func (p RecoveryParams) policyFor(k workload.PolicyKind) workload.RecoveryPolicy {
	return workload.RecoveryPolicy{Kind: k, Retries: p.Retries, SafeWords: p.SafeWords}
}

// Recovery runs the campaign on the parallel engine.
func Recovery(p RecoveryParams) (RecoveryResult, error) {
	return RecoveryEnv(mc.Env{}, p)
}

// RecoveryEnv is Recovery under an execution environment: the selected
// workload is prepared once, then the quality engine runs it through
// all eight protection arms once per policy. Every policy sees the
// identical die and soft-error sequence (common random numbers), so a
// policy can only move a trial's quality through recovery itself.
func RecoveryEnv(env mc.Env, p RecoveryParams) (RecoveryResult, error) {
	kinds, err := p.resolvePolicies()
	if err != nil {
		return RecoveryResult{}, err
	}
	res, inst, err := p.prepare()
	if err != nil {
		return RecoveryResult{}, err
	}
	for _, k := range kinds {
		if err := env.Context().Err(); err != nil {
			return RecoveryResult{}, err
		}
		run, err := p.runPolicy(env, inst, res.Workload, k)
		if err != nil {
			return RecoveryResult{}, err
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// prepare validates the params and builds the workload instance and the
// result shell.
func (p RecoveryParams) prepare() (RecoveryResult, workload.Instance, error) {
	if p.Trials < 1 || p.Rows < 1 || p.Pcell <= 0 || p.Pcell >= 1 {
		return RecoveryResult{}, nil, fmt.Errorf("exp: bad recovery params %+v", p)
	}
	if p.TransientRate < 0 || p.TransientRate >= 1 {
		return RecoveryResult{}, nil, fmt.Errorf("exp: recovery transient rate %g outside [0, 1)", p.TransientRate)
	}
	if p.Retries < 0 || p.SafeWords < 0 {
		return RecoveryResult{}, nil, fmt.Errorf("exp: negative recovery budget (retries %d, safewords %d)", p.Retries, p.SafeWords)
	}
	name := p.Workload
	if name == "" {
		name = "cgsolve"
	}
	id, err := workload.Parse(name)
	if err != nil {
		return RecoveryResult{}, nil, fmt.Errorf("exp: recovery params: %w", err)
	}
	inst, err := workload.PrepareShared(id, workload.Params{
		Seed:             p.Seed,
		MadelonPaperSize: p.MadelonPaperSize,
		Keys:             p.Keys,
		Dim:              p.Dim,
		Iters:            p.Iters,
		Checkpoint:       p.Checkpoint,
		Restarts:         p.Restarts,
	})
	if err != nil {
		return RecoveryResult{}, nil, err
	}
	return RecoveryResult{
		Params:   p,
		Workload: id.String(),
		Display:  id.Display(),
		Metric:   inst.Metric(),
		Clean:    inst.Clean(),
	}, inst, nil
}

// runPolicy runs the quality engine for one policy over all arms.
func (p RecoveryParams) runPolicy(env mc.Env, inst workload.Instance, name string, k workload.PolicyKind) (RecoveryPolicyRun, error) {
	arms, stats, err := runQualityArms(env, inst, qualityConfig{
		name:      name,
		arms:      AllProtections(),
		rows:      p.Rows,
		pcell:     p.Pcell,
		trials:    p.Trials,
		workers:   p.Workers,
		seed:      p.Seed,
		policy:    p.policyFor(k),
		transient: p.TransientRate,
	})
	if err != nil {
		return RecoveryPolicyRun{}, err
	}
	return RecoveryPolicyRun{Policy: k.String(), Arms: arms, Stats: stats}, nil
}

// MeanQualityTable tabulates mean quality per arm (rows) and policy
// (columns) — the campaign's headline arms x policies grid.
func (r RecoveryResult) MeanQualityTable() *Table {
	header := []string{"scheme"}
	for _, run := range r.Runs {
		header = append(header, run.Policy)
	}
	t := &Table{
		Title: fmt.Sprintf("Recovery - %s mean quality by arm and policy (%dKB, Pcell=%.0e, transient=%.0e)",
			r.Display, r.Params.Rows*4/1024, r.Params.Pcell, r.Params.TransientRate),
		Header: header,
		Notes: []string{
			fmt.Sprintf("fault-free %s = %.4g (quality 1.0); %d paired Monte-Carlo trials per policy",
				r.Metric, r.Clean, r.Params.Trials),
			fmt.Sprintf("retry budget %d re-reads/word; saferestore budget %s safe words/trial",
				r.Params.Retries, safeWordsLabel(r.Params.SafeWords)),
		},
	}
	for ai, arm := range AllProtections() {
		row := []string{arm.String()}
		for _, run := range r.Runs {
			row = append(row, fmt.Sprintf("%.4f", run.Arms[ai].Mean()))
		}
		t.AddRow(row...)
	}
	return t
}

// YieldTable tabulates the quality each arm delivers at a fixed 90%
// yield under every policy — the paper's quality-vs-yield lens on the
// same grid.
func (r RecoveryResult) YieldTable() *Table {
	header := []string{"scheme"}
	for _, run := range r.Runs {
		header = append(header, run.Policy)
	}
	t := &Table{
		Title:  fmt.Sprintf("Recovery - %s quality at 90%% yield by arm and policy", r.Display),
		Header: header,
	}
	for ai, arm := range AllProtections() {
		row := []string{arm.String()}
		for _, run := range r.Runs {
			row = append(row, fmt.Sprintf("%.4f", run.Arms[ai].QualityAtYield(0.90)))
		}
		t.AddRow(row...)
	}
	return t
}

// StatsTable tabulates one policy's per-arm recovery counters summed
// over the campaign (nil for the "none" policy).
func (r RecoveryResult) StatsTable(run RecoveryPolicyRun) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Recovery counters - policy %s (%d trials)", run.Policy, r.Params.Trials),
		Header: []string{"scheme", "flagged", "retries", "recovered", "restored", "budget denied"},
	}
	for ai, arm := range AllProtections() {
		s := run.Stats[ai]
		t.AddRow(arm.String(),
			fmt.Sprintf("%d", s.Flagged),
			fmt.Sprintf("%d", s.Retries),
			fmt.Sprintf("%d", s.Recovered),
			fmt.Sprintf("%d", s.Restored),
			fmt.Sprintf("%d", s.BudgetDenied))
	}
	return t
}

func safeWordsLabel(n int) string {
	if n == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d", n)
}

// recoveryExperiment adapts the campaign to the registry.
type recoveryExperiment struct{}

func (recoveryExperiment) Name() string { return "recovery" }
func (recoveryExperiment) Description() string {
	return "detect-and-recover policy comparison: quality-vs-yield per arm under retry and safe-restore"
}
func (recoveryExperiment) DefaultParams() any { return DefaultRecoveryParams() }

func (e recoveryExperiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[RecoveryParams](r, e)
	if err != nil {
		return nil, err
	}
	p.Seed = r.seedOr(p.Seed)
	p.Workers = r.workersOr(p.Workers)
	if r.quick() && p.Trials > QuickRecoveryTrials {
		p.Trials = QuickRecoveryTrials
	}
	kinds, err := p.resolvePolicies()
	if err != nil {
		return nil, err
	}
	out, inst, err := p.prepare()
	if err != nil {
		return nil, err
	}
	res := &Result{Experiment: e.Name(), Params: p}
	for i, k := range kinds {
		stage := k.String()
		run, err := p.runPolicy(r.env(ctx, e.Name(), stage), inst, out.Workload, k)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, run)
		if run.Stats != nil {
			res.Tables = append(res.Tables, out.StatsTable(run))
		}
		r.note(e.Name(), "policies", i+1, len(kinds))
	}
	// The headline grids come first; the per-policy counter tables were
	// appended as each policy finished.
	res.Tables = append([]*Table{out.MeanQualityTable(), out.YieldTable()}, res.Tables...)
	return res, nil
}
