package exp

import (
	"context"
	"math"
	"testing"

	"faultmem/internal/workload"
)

// recoveryTestParams is the small shared geometry: every row of the
// 512-word macro is in play (cgsolve at dim 32 pages 1056 words through
// it), so persistent double faults reliably hit live data.
func recoveryTestParams() RecoveryParams {
	return RecoveryParams{
		Workload: "cgsolve",
		Policies: []string{"none"},
		Rows:     512,
		Pcell:    2e-3,
		Trials:   6,
		Seed:     7,
		Dim:      32,
	}
}

// TestRecoveryParamsValidation pins the campaign's input contract.
func TestRecoveryParamsValidation(t *testing.T) {
	for name, mutate := range map[string]func(*RecoveryParams){
		"zero trials":      func(p *RecoveryParams) { p.Trials = 0 },
		"bad pcell":        func(p *RecoveryParams) { p.Pcell = 1 },
		"bad transient":    func(p *RecoveryParams) { p.TransientRate = 1 },
		"negative retries": func(p *RecoveryParams) { p.Retries = -1 },
		"negative budget":  func(p *RecoveryParams) { p.SafeWords = -2 },
		"unknown workload": func(p *RecoveryParams) { p.Workload = "bogus" },
		"unknown policy":   func(p *RecoveryParams) { p.Policies = []string{"bogus"} },
		"duplicate policy": func(p *RecoveryParams) { p.Policies = []string{"retry", "retry"} },
	} {
		p := recoveryTestParams()
		mutate(&p)
		if _, err := Recovery(p); err == nil {
			t.Errorf("%s: params accepted", name)
		}
	}
}

// TestRecoveryNoneMatchesWorkloadsGolden pins the acceptance criterion:
// the "none" policy takes the plain cached round-trip path, so the
// recovery campaign's per-arm qualities are float-bit identical to the
// workloads campaign on the same geometry — at every worker count, with
// no recovery counters recorded.
func TestRecoveryNoneMatchesWorkloadsGolden(t *testing.T) {
	p := recoveryTestParams()
	wk, err := Workloads(WorkloadsParams{
		Workloads: []string{p.Workload},
		Rows:      p.Rows,
		Pcell:     p.Pcell,
		Trials:    p.Trials,
		Seed:      p.Seed,
		Dim:       p.Dim,
		Workers:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := wk.Runs[0].Arms

	for _, workers := range []int{1, 4, 7} {
		q := p
		q.Workers = workers
		out, err := Recovery(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Runs) != 1 || out.Runs[0].Policy != "none" {
			t.Fatalf("workers=%d: runs %+v", workers, out.Runs)
		}
		run := out.Runs[0]
		if run.Stats != nil {
			t.Fatalf("workers=%d: the none policy recorded recovery stats", workers)
		}
		if len(run.Arms) != len(want) {
			t.Fatalf("workers=%d: %d arms, want %d", workers, len(run.Arms), len(want))
		}
		for ai := range want {
			if run.Arms[ai].Scheme != want[ai].Scheme {
				t.Fatalf("workers=%d: arm %d is %v, want %v", workers, ai, run.Arms[ai].Scheme, want[ai].Scheme)
			}
			for qi := range want[ai].Qualities {
				g, w := run.Arms[ai].Qualities[qi], want[ai].Qualities[qi]
				if math.Float64bits(g) != math.Float64bits(w) {
					t.Fatalf("workers=%d: arm %v sample %d: %v, want %v (bit-identical)",
						workers, run.Arms[ai].Scheme, qi, g, w)
				}
			}
		}
	}
}

// TestSafeRestoreBeatsNoneOnSECDED pins the campaign's reason to exist:
// under a heavy persistent fault load, the saferestore policy must lift
// mean quality strictly above the none baseline on at least one SECDED
// arm while actually restoring words — the paired common-random-numbers
// design means the lift can only come from recovery itself.
func TestSafeRestoreBeatsNoneOnSECDED(t *testing.T) {
	p := recoveryTestParams()
	p.Policies = []string{"none", "saferestore"}
	p.Pcell = 5e-3 // heavy load: double faults land in most dies
	p.Trials = 12
	out, err := Recovery(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 2 {
		t.Fatalf("%d runs", len(out.Runs))
	}
	none, sr := out.Runs[0], out.Runs[1]
	if len(sr.Stats) != len(AllProtections()) {
		t.Fatalf("saferestore stats cover %d arms", len(sr.Stats))
	}
	improved := false
	for ai, arm := range AllProtections() {
		nm, sm := none.Arms[ai].Mean(), sr.Arms[ai].Mean()
		if sm < nm {
			t.Errorf("%v: saferestore mean %v below none %v — restores made quality worse", arm, sm, nm)
		}
		if sm > nm && sr.Stats[ai].Restored > 0 {
			improved = true
		}
	}
	if !improved {
		t.Error("no arm improved with restores recorded; the policy is inert")
	}
	// The SECDED arms detect; the codeless arms have nothing to flag, so
	// their qualities must be untouched by the policy (bit-identical).
	for qi := range none.Arms[0].Qualities {
		g, w := sr.Arms[0].Qualities[qi], none.Arms[0].Qualities[qi]
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("unprotected arm sample %d moved under saferestore: %v vs %v", qi, g, w)
		}
	}
	if sr.Stats[0].Flagged != 0 {
		t.Errorf("unprotected arm flagged %d words", sr.Stats[0].Flagged)
	}
}

// TestRecoveryRetryRecoversTransients pins the retry column: with soft
// errors enabled and a light persistent load, the bounded re-reads
// recover flagged words on the detecting arms.
func TestRecoveryRetryRecoversTransients(t *testing.T) {
	p := recoveryTestParams()
	p.Policies = []string{"retry"}
	p.Pcell = 5e-4
	p.TransientRate = 2e-3
	p.Retries = 8
	out, err := Recovery(p)
	if err != nil {
		t.Fatal(err)
	}
	run := out.Runs[0]
	var flagged, recovered uint64
	for _, s := range run.Stats {
		flagged += s.Flagged
		recovered += s.Recovered
	}
	if flagged == 0 {
		t.Fatal("soft errors flagged nothing — the campaign exercises no recovery")
	}
	if recovered == 0 {
		t.Error("retries recovered nothing")
	}
}

// TestRecoveryExperimentRegistry drives the registry adapter: stage
// tables per policy, the headline grids first, and a bounded -quick
// budget.
func TestRecoveryExperimentRegistry(t *testing.T) {
	p := DefaultRecoveryParams()
	p.Rows = 512
	p.Dim = 32
	p.Trials = 100 // quick tier must clamp this
	res, err := Run(context.Background(), "recovery", &Runner{Quick: true, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.Params.(RecoveryParams)
	if !ok || got.Trials != QuickRecoveryTrials {
		t.Fatalf("quick tier did not clamp trials: %+v", res.Params)
	}
	// Two headline grids plus one counters table per active policy
	// (retry, saferestore).
	if len(res.Tables) != 4 {
		t.Fatalf("%d tables", len(res.Tables))
	}
	policies := len(workload.PolicyNames())
	if cols := len(res.Tables[0].Header); cols != 1+policies {
		t.Fatalf("mean grid has %d columns, want %d", cols, 1+policies)
	}
}
