package exp

import (
	"math"
	"runtime"
	"testing"
)

// TestFig5DeterministicAcrossWorkerCounts is the engine's determinism
// regression test: the same seed must produce a byte-identical Fig. 5
// CDF — quantiles, total weight, and sample count — whether the
// Monte Carlo runs on 1 worker, 2 workers, or every core.
func TestFig5DeterministicAcrossWorkerCounts(t *testing.T) {
	p := DefaultFig5Params()
	p.CDF.Trun = 1e4 // budget is irrelevant to the contract; keep it quick
	run := func(workers int) Fig5Result {
		q := p
		q.CDF.Workers = workers
		return Fig5(q)
	}
	ref := run(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		got := run(w)
		for j := range ref.CDFs {
			a, b := ref.CDFs[j], got.CDFs[j]
			if a.Samples != b.Samples {
				t.Fatalf("workers=%d %s: %d samples != %d", w, a.Scheme, b.Samples, a.Samples)
			}
			if math.Float64bits(a.CDF.TotalWeight()) != math.Float64bits(b.CDF.TotalWeight()) {
				t.Fatalf("workers=%d %s: total weight differs", w, a.Scheme)
			}
			ax, ap := a.CDF.Points()
			bx, bp := b.CDF.Points()
			if len(ax) != len(bx) {
				t.Fatalf("workers=%d %s: CDF length %d != %d", w, a.Scheme, len(bx), len(ax))
			}
			for i := range ax {
				if math.Float64bits(ax[i]) != math.Float64bits(bx[i]) ||
					math.Float64bits(ap[i]) != math.Float64bits(bp[i]) {
					t.Fatalf("workers=%d %s: CDF point %d differs", w, a.Scheme, i)
				}
			}
			for _, q := range p.YieldTargets {
				if math.Float64bits(a.MSEAtYield(q)) != math.Float64bits(b.MSEAtYield(q)) {
					t.Fatalf("workers=%d %s: MSE@yield %g differs", w, a.Scheme, q)
				}
			}
		}
	}
}

// TestEnergyStudyWorkerCountInvariance extends the contract to the
// voltage-scaling sweep: per-die qualification counts merge in shard
// order, so the minimum viable VDD per arm cannot depend on parallelism.
func TestEnergyStudyWorkerCountInvariance(t *testing.T) {
	p := DefaultEnergyParams()
	p.Dies = 80
	run := func(workers int) []EnergyRow {
		q := p
		q.Workers = workers
		return EnergyStudy(q)
	}
	ref := run(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		got := run(w)
		for i := range ref {
			same := ref[i].MinVDD == got[i].MinVDD ||
				(math.IsNaN(ref[i].MinVDD) && math.IsNaN(got[i].MinVDD))
			if !same {
				t.Fatalf("workers=%d arm %s: MinVDD %v != %v",
					w, ref[i].Name, got[i].MinVDD, ref[i].MinVDD)
			}
		}
	}
}

// TestFig7WorkerCountInvariance extends the contract to the
// application-quality Monte Carlo: one trial per shard, so the quality
// samples are identical for any worker count.
func TestFig7WorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 7 Monte Carlo is slow")
	}
	p := DefaultFig7Params(AppKNN)
	p.Trials = 4
	run := func(workers int) Fig7Result {
		q := p
		q.Workers = workers
		res, err := Fig7(q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	got := run(runtime.GOMAXPROCS(0))
	for i := range ref.Arms {
		for j := range ref.Arms[i].Qualities {
			if ref.Arms[i].Qualities[j] != got.Arms[i].Qualities[j] {
				t.Fatalf("arm %v trial-order quality %d differs", ref.Arms[i].Scheme, j)
			}
		}
	}
}
