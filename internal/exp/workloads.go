package exp

import (
	"context"
	"fmt"
	"strings"

	"faultmem/internal/mc"
	"faultmem/internal/workload"
)

// WorkloadsParams configures the workloads campaign: fig7-style
// quality-vs-yield CDFs for any subset of the workload registry, run
// through all eight protection arms.
type WorkloadsParams struct {
	// Workloads are the canonical workload names to run, in order
	// (workload.Names()). Empty means every registered workload.
	Workloads []string
	// Rows is the memory macro depth (4096 = 16 KB).
	Rows int
	// Pcell is the bit-cell failure probability.
	Pcell float64
	// Trials is the Monte-Carlo budget per workload (each trial runs all
	// eight arms on one die).
	Trials int
	// Seed drives problem generation and fault maps; the same seed gives
	// every workload the same die sequence (common random numbers).
	Seed int64
	// Keys is the resilient-sort key count (0 = the workload default).
	Keys int
	// Dim is the CG system dimension (0 = the workload default).
	Dim int
	// Iters is the CG iteration budget (0 = Dim).
	Iters int
	// MadelonPaperSize switches the PCA workload to the full 500-feature
	// geometry.
	MadelonPaperSize bool
	// Workers is the goroutine count (0 = GOMAXPROCS); results are
	// identical for every worker count.
	Workers int
}

// DefaultWorkloadsParams returns the campaign defaults: every
// registered workload at the fig7 memory geometry, with a 200-trial
// budget (the 8-arm sweep costs 2x a 4-arm fig7 trial).
func DefaultWorkloadsParams() WorkloadsParams {
	return WorkloadsParams{
		Workloads: workload.Names(),
		Rows:      4096,
		Pcell:     1e-3,
		Trials:    200,
		Seed:      7,
	}
}

// QuickWorkloadsTrials is the reduced -quick budget for CI smokes.
const QuickWorkloadsTrials = 8

// WorkloadRun is one workload's quality-vs-yield result.
type WorkloadRun struct {
	// Workload is the canonical name; Display the figure-facing one.
	Workload string
	Display  string
	// Metric names the quality metric before normalization.
	Metric string
	// Clean is the fault-free reference value of the metric.
	Clean float64
	// Arms holds one sorted quality sample per protection arm, in
	// AllProtections order.
	Arms []Fig7Arm
}

// WorkloadsResult bundles the campaign run.
type WorkloadsResult struct {
	Params WorkloadsParams
	Runs   []WorkloadRun
}

// resolveWorkloads maps the params' name subset to IDs (all registered
// workloads when empty), rejecting unknown names and duplicates.
func (p WorkloadsParams) resolveWorkloads() ([]workload.ID, error) {
	if len(p.Workloads) == 0 {
		return workload.All(), nil
	}
	ids := make([]workload.ID, 0, len(p.Workloads))
	seen := map[workload.ID]bool{}
	for _, name := range p.Workloads {
		id, err := workload.Parse(name)
		if err != nil {
			return nil, fmt.Errorf("exp: workloads params: %w", err)
		}
		if seen[id] {
			return nil, fmt.Errorf("exp: workloads params: duplicate workload %q", name)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	return ids, nil
}

// Workloads runs the campaign on the parallel engine.
func Workloads(p WorkloadsParams) (WorkloadsResult, error) {
	return WorkloadsEnv(mc.Env{}, p)
}

// WorkloadsEnv is Workloads under an execution environment: each
// selected workload runs the shared quality engine (one RNG stream per
// trial, bit-identical at any worker count) through all eight
// protection arms. The same (seed, trial) stream drives every
// workload's dies, so the per-workload CDFs are compared on common
// random numbers.
func WorkloadsEnv(env mc.Env, p WorkloadsParams) (WorkloadsResult, error) {
	if p.Trials < 1 || p.Rows < 1 || p.Pcell <= 0 || p.Pcell >= 1 {
		return WorkloadsResult{}, fmt.Errorf("exp: bad workloads params %+v", p)
	}
	ids, err := p.resolveWorkloads()
	if err != nil {
		return WorkloadsResult{}, err
	}
	res := WorkloadsResult{Params: p}
	for _, id := range ids {
		if err := env.Context().Err(); err != nil {
			return WorkloadsResult{}, err
		}
		run, err := p.runOne(env, id)
		if err != nil {
			return WorkloadsResult{}, err
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// runOne prepares one workload's instance and runs the quality engine
// over all protection arms.
func (p WorkloadsParams) runOne(env mc.Env, id workload.ID) (WorkloadRun, error) {
	inst, err := workload.PrepareShared(id, workload.Params{
		Seed:             p.Seed,
		MadelonPaperSize: p.MadelonPaperSize,
		Keys:             p.Keys,
		Dim:              p.Dim,
		Iters:            p.Iters,
	})
	if err != nil {
		return WorkloadRun{}, err
	}
	arms, _, err := runQualityArms(env, inst, qualityConfig{
		name:    id.String(),
		arms:    AllProtections(),
		rows:    p.Rows,
		pcell:   p.Pcell,
		trials:  p.Trials,
		workers: p.Workers,
		seed:    p.Seed,
	})
	if err != nil {
		return WorkloadRun{}, err
	}
	return WorkloadRun{
		Workload: id.String(),
		Display:  id.Display(),
		Metric:   inst.Metric(),
		Clean:    inst.Clean(),
		Arms:     arms,
	}, nil
}

// QualityCDFTable tabulates one workload's per-arm quality CDF over a
// fixed grid — a Fig. 7-style curve set over all eight arms.
func (r WorkloadsResult) QualityCDFTable(run WorkloadRun) *Table {
	header := []string{"normalized " + run.Metric}
	for _, a := range run.Arms {
		header = append(header, a.Scheme.String())
	}
	t := &Table{
		Title: fmt.Sprintf("Workload %s - CDF of quality under memory failures (16KB, Pcell=%.0e)",
			run.Display, r.Params.Pcell),
		Header: header,
		Notes: []string{
			fmt.Sprintf("fault-free %s = %.4g (quality 1.0); %d Monte-Carlo trials per arm",
				run.Metric, run.Clean, r.Params.Trials),
		},
	}
	for q := 0.0; q <= 1.0001; q += 0.05 {
		row := []string{fmt.Sprintf("%.2f", q)}
		for _, a := range run.Arms {
			row = append(row, fmt.Sprintf("%.3f", a.CDFAt(q)))
		}
		t.AddRow(row...)
	}
	return t
}

// SummaryTable reports mean quality and low quantiles per arm for one
// workload.
func (r WorkloadsResult) SummaryTable(run WorkloadRun) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Workload summary - %s (%s)", run.Display, run.Metric),
		Header: []string{"scheme", "mean quality", "q10", "q50", "min"},
	}
	for _, a := range run.Arms {
		t.AddRow(a.Scheme.String(),
			fmt.Sprintf("%.4f", a.Mean()),
			fmt.Sprintf("%.4f", a.QualityAtYield(0.10)),
			fmt.Sprintf("%.4f", a.QualityAtYield(0.50)),
			fmt.Sprintf("%.4f", a.Qualities[0]))
	}
	return t
}

// workloadsExperiment adapts the campaign to the registry.
type workloadsExperiment struct{}

func (workloadsExperiment) Name() string { return "workloads" }
func (workloadsExperiment) Description() string {
	return "quality-vs-yield CDFs for the resilient-workload family, all 8 arms"
}
func (workloadsExperiment) DefaultParams() any { return DefaultWorkloadsParams() }

func (e workloadsExperiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[WorkloadsParams](r, e)
	if err != nil {
		return nil, err
	}
	p.Seed = r.seedOr(p.Seed)
	p.Workers = r.workersOr(p.Workers)
	if r.quick() && p.Trials > QuickWorkloadsTrials {
		p.Trials = QuickWorkloadsTrials
	}
	ids, err := p.resolveWorkloads()
	if err != nil {
		return nil, err
	}
	res := &Result{Experiment: e.Name(), Params: p}
	out := WorkloadsResult{Params: p}
	for i, id := range ids {
		stage := strings.ToLower(id.String())
		run, err := p.runOne(r.env(ctx, e.Name(), stage), id)
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs, run)
		res.Tables = append(res.Tables, out.QualityCDFTable(run), out.SummaryTable(run))
		r.note(e.Name(), "workloads", i+1, len(ids))
	}
	return res, nil
}
