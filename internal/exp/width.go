package exp

import (
	"context"
	"fmt"

	"faultmem/internal/core"
	"faultmem/internal/ecc"
	"faultmem/internal/hw"
)

// WidthParams configures the word-width generalization exhibit.
type WidthParams struct {
	// Rows is the macro depth.
	Rows int
}

// DefaultWidthParams uses the 16 KB macro depth.
func DefaultWidthParams() WidthParams { return WidthParams{Rows: 4096} }

// WidthRow compares the bit-shuffling scheme against full SECDED at one
// word width: the finest-granularity shuffle (nFM = log2 W) and the
// half-word shuffle (nFM = 1) relative to the width's SECDED code.
type WidthRow struct {
	Width      int
	ECCName    string
	ECCColumns int
	// Finest / Coarsest are the relative overheads (power, delay, area)
	// of nFM = log2(W) and nFM = 1 against the width's SECDED.
	Finest, Coarsest [3]float64
	// MaxErrFinest / MaxErrCoarsest are the single-fault error-magnitude
	// bounds 2^(S-1).
	MaxErrFinest, MaxErrCoarsest uint64
}

// WidthAblation evaluates the scheme across word widths. For 64-bit
// words — beyond the single-codeword SECDED constructor — the customary
// two-way interleaving of H(39,32) is used (two independent codes over
// the word halves, decoded in parallel: columns add, delay is the max).
func WidthAblation(rows int) []WidthRow {
	lib := hw.Lib28nm()
	macro := hw.Macro28nm(rows)
	var out []WidthRow
	for _, w := range []int{16, 32, 64} {
		var eccOv hw.Overhead
		var eccName string
		switch w {
		case 64:
			// Interleaved 2 x H(39,32): parity columns double, decoder
			// logic doubles, critical path stays one decoder deep.
			single := hw.ECCOverhead(lib, macro, ecc.H39_32())
			eccOv = hw.Overhead{
				Name:       "2xH(39,32) ECC",
				ReadEnergy: 2 * single.ReadEnergy,
				ReadDelay:  single.ReadDelay,
				Area:       2 * single.Area,
				Columns:    2 * single.Columns,
				LogicGates: 2 * single.LogicGates,
			}
			eccName = eccOv.Name
		default:
			code := ecc.MustNew(w)
			eccOv = hw.ECCOverhead(lib, macro, code)
			eccName = code.Name() + " ECC"
		}

		logW := 0
		for 1<<uint(logW) < w {
			logW++
		}
		fine := hw.ShuffleOverhead(lib, macro, core.Config{Width: w, NFM: logW})
		coarse := hw.ShuffleOverhead(lib, macro, core.Config{Width: w, NFM: 1})
		rel := func(o hw.Overhead) [3]float64 {
			return [3]float64{
				o.ReadEnergy / eccOv.ReadEnergy,
				o.ReadDelay / eccOv.ReadDelay,
				o.Area / eccOv.Area,
			}
		}
		out = append(out, WidthRow{
			Width:          w,
			ECCName:        eccName,
			ECCColumns:     eccOv.Columns,
			Finest:         rel(fine),
			Coarsest:       rel(coarse),
			MaxErrFinest:   core.Config{Width: w, NFM: logW}.MaxErrorMagnitude(),
			MaxErrCoarsest: core.Config{Width: w, NFM: 1}.MaxErrorMagnitude(),
		})
	}
	return out
}

// WidthTable renders the width ablation.
func WidthTable(rows []WidthRow) *Table {
	t := &Table{
		Title: "Ablation - word-width generalization: shuffle vs full SECDED per width",
		Header: []string{"W", "SECDED ref", "parity cols",
			"nFM=1 rel (P/D/A)", "nFM=log2W rel (P/D/A)", "max err nFM=1", "max err nFM=log2W"},
		Notes: []string{
			"the 64-bit SECDED reference is the customary 2-way interleaved H(39,32);",
			"relative overhead = (power, delay, area) vs that width's SECDED",
			"wider words amortize parity columns better, yet the shuffle advantage persists",
			"because the shifter grows linearly while decoders grow with code size",
		},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Width),
			r.ECCName,
			fmt.Sprintf("%d", r.ECCColumns),
			fmt.Sprintf("%.2f/%.2f/%.2f", r.Coarsest[0], r.Coarsest[1], r.Coarsest[2]),
			fmt.Sprintf("%.2f/%.2f/%.2f", r.Finest[0], r.Finest[1], r.Finest[2]),
			fmt.Sprintf("2^%d", log2u(r.MaxErrCoarsest)),
			fmt.Sprintf("2^%d", log2u(r.MaxErrFinest)),
		)
	}
	return t
}

func log2u(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// widthExperiment adapts the width generalization to the registry.
type widthExperiment struct{}

func (widthExperiment) Name() string { return "width" }
func (widthExperiment) Description() string {
	return "word-width generalization: shuffle vs SECDED at W=16/32/64"
}
func (widthExperiment) DefaultParams() any { return DefaultWidthParams() }

func (e widthExperiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[WidthParams](r, e)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: p, Tables: []*Table{WidthTable(WidthAblation(p.Rows))}}, nil
}
