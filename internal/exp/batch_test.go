package exp

import (
	"testing"

	"faultmem/internal/dataset"
	"faultmem/internal/fault"
	"faultmem/internal/mat"
	"faultmem/internal/mem"
	"faultmem/internal/memstore"
	"faultmem/internal/sram"
	"faultmem/internal/stats"
)

// mixedFaultMap builds a deterministic fault map cycling through all
// three failure modes, one fault per row so the cells never collide.
func mixedFaultMap(rows int) fault.Map {
	kinds := []fault.Kind{fault.Flip, fault.StuckAt0, fault.StuckAt1}
	fm := make(fault.Map, 0, rows)
	for i := 0; i < rows; i++ {
		fm = append(fm, fault.Fault{Row: i, Col: (i * 11) % 32, Kind: kinds[i%3]})
	}
	return fm
}

// testWords fills a deterministic word pattern hitting every bit.
func testWords(n int) []uint32 {
	w := make([]uint32, n)
	x := uint32(0x9e3779b9)
	for i := range w {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		w[i] = x
	}
	return w
}

type statser interface{ Stats() mem.Stats }

type arrayer interface{ Array() *sram.Array }

// twinMemories builds two identical memories of one arm over the same
// fault map.
func twinMemories(t *testing.T, arm Protection, rows int, fm fault.Map) (scalar, batch mem.Word32) {
	t.Helper()
	a, err := arm.Build(rows, fm)
	if err != nil {
		t.Fatalf("%v: build: %v", arm, err)
	}
	b, err := arm.Build(rows, fm)
	if err != nil {
		t.Fatalf("%v: build: %v", arm, err)
	}
	return a, b
}

// checkTwinsAgree compares the observable state the batch paths promise
// to preserve: every readable word, decode statistics, and the raw
// array access counters.
func checkTwinsAgree(t *testing.T, arm Protection, scalar, batch mem.Word32, what string) {
	t.Helper()
	for addr := 0; addr < scalar.Words(); addr++ {
		if s, b := scalar.Read(addr), batch.Read(addr); s != b {
			t.Fatalf("%v: %s: word %d reads %#08x scalar vs %#08x batch", arm, what, addr, s, b)
		}
	}
	ss, sok := scalar.(statser)
	bs, bok := batch.(statser)
	if sok != bok {
		t.Fatalf("%v: twins disagree on Stats() support", arm)
	}
	if sok && ss.Stats() != bs.Stats() {
		t.Fatalf("%v: %s: decode stats %+v scalar vs %+v batch", arm, what, ss.Stats(), bs.Stats())
	}
	sa, sok := scalar.(arrayer)
	ba, bok := batch.(arrayer)
	if sok != bok {
		t.Fatalf("%v: twins disagree on Array() support", arm)
	}
	if sok {
		sr, sw := sa.Array().AccessCounts()
		br, bw := ba.Array().AccessCounts()
		if sr != br || sw != bw {
			t.Fatalf("%v: %s: access counts (r=%d,w=%d) scalar vs (r=%d,w=%d) batch",
				arm, what, sr, sw, br, bw)
		}
	}
}

// TestBatchMatchesScalarOracle pins the bulk-transfer contract on every
// protection arm: WriteBatch/ReadBatch are bit-identical to the
// word-at-a-time oracle loop under mixed stuck-at and flip faults, with
// the same decode statistics and access accounting — including batches
// that start mid-array.
func TestBatchMatchesScalarOracle(t *testing.T) {
	const rows = 96
	fm := mixedFaultMap(rows)
	words := testWords(rows)
	for _, arm := range AllProtections() {
		scalar, batch := twinMemories(t, arm, rows, fm)
		bm, ok := batch.(mem.BatchMemory)
		if !ok {
			t.Fatalf("%v: memory does not implement mem.BatchMemory", arm)
		}

		for i, w := range words {
			scalar.Write(i, w)
		}
		bm.WriteBatch(0, words)
		got := make([]uint32, rows)
		bm.ReadBatch(0, got)
		for i := range got {
			if want := scalar.Read(i); got[i] != want {
				t.Fatalf("%v: word %d: scalar %#08x vs batch %#08x", arm, i, want, got[i])
			}
		}
		checkTwinsAgree(t, arm, scalar, batch, "full-range batch")

		// A batch that starts mid-array must hit the same rows' fault
		// masks as the oracle loop at the same addresses.
		const off, n = 17, 41
		for i := 0; i < n; i++ {
			scalar.Write(off+i, words[i])
		}
		bm.WriteBatch(off, words[:n])
		bm.ReadBatch(off, got[:n])
		for i := 0; i < n; i++ {
			if want := scalar.Read(off + i); got[i] != want {
				t.Fatalf("%v: offset word %d: scalar %#08x vs batch %#08x", arm, off+i, want, got[i])
			}
		}
		checkTwinsAgree(t, arm, scalar, batch, "offset batch")
	}
}

// TestImageWriteMatchesScalarOracle pins the codeword-image fast path:
// EncodeImage+WriteImage must leave a memory in exactly the state a
// scalar write of the source data would, on every arm that supports
// imaging.
func TestImageWriteMatchesScalarOracle(t *testing.T) {
	const rows = 96
	fm := mixedFaultMap(rows)
	words := testWords(rows)
	for _, arm := range AllProtections() {
		scalar, batch := twinMemories(t, arm, rows, fm)
		iw, ok := batch.(mem.ImageWriter)
		if !ok {
			t.Fatalf("%v: memory does not implement mem.ImageWriter", arm)
		}
		key := iw.ImageKey()
		if key == "" {
			t.Fatalf("%v: empty image key", arm)
		}
		if other := scalar.(mem.ImageWriter).ImageKey(); other != key {
			t.Fatalf("%v: twins report different image keys %q vs %q", arm, key, other)
		}

		img := make([]uint64, rows)
		iw.EncodeImage(img, words)
		iw.WriteImage(0, img)
		for i, w := range words {
			scalar.Write(i, w)
		}
		checkTwinsAgree(t, arm, scalar, batch, "image write")
	}
}

// TestWarmImageStatsMatchScalarOracle pins the decode-statistics
// contract across the image-write fast path under sustained reuse: a
// warm loop of WriteImage + batch reads must leave exactly the Stats
// tallies (and access counters) a word-at-a-time oracle accumulates, on
// every arm. This is the accounting the recovery campaign's counter
// tables are reconciled against.
func TestWarmImageStatsMatchScalarOracle(t *testing.T) {
	const rows = 96
	fm := mixedFaultMap(rows)
	words := testWords(rows)
	for _, arm := range AllProtections() {
		scalar, batch := twinMemories(t, arm, rows, fm)
		iw, ok := batch.(mem.ImageWriter)
		if !ok {
			t.Fatalf("%v: memory does not implement mem.ImageWriter", arm)
		}
		bm := batch.(mem.BatchMemory)
		img := make([]uint64, rows)
		iw.EncodeImage(img, words)
		got := make([]uint32, rows)
		for round := 0; round < 3; round++ {
			iw.WriteImage(0, img)
			bm.ReadBatch(0, got)
			for i, w := range words {
				scalar.Write(i, w)
			}
			for i := range words {
				if want := scalar.Read(i); got[i] != want {
					t.Fatalf("%v: round %d word %d: scalar %#08x vs batch %#08x", arm, round, i, want, got[i])
				}
			}
		}
		checkTwinsAgree(t, arm, scalar, batch, "warm image rounds")
	}
}

// TestBatchTransientMatchesScalar pins the transient-mode fallback:
// with soft errors enabled, ReadBatch must draw the per-read RNG in
// exactly the scalar order, so same-seeded twins return identical
// corrupted words.
func TestBatchTransientMatchesScalar(t *testing.T) {
	const rows = 128
	fm := mixedFaultMap(rows)
	words := testWords(rows)
	scalarM, batchM := twinMemories(t, ProtNone, rows, fm)
	scalar, batch := scalarM.(*mem.Raw), batchM.(*mem.Raw)
	scalar.Array().SetTransient(0.2, stats.NewRand(11))
	batch.Array().SetTransient(0.2, stats.NewRand(11))

	for i, w := range words {
		scalar.Write(i, w)
	}
	batch.WriteBatch(0, words)
	got := make([]uint32, rows)
	batch.ReadBatch(0, got)
	for i := range got {
		if want := scalar.Read(i); got[i] != want {
			t.Fatalf("transient word %d: scalar %#08x vs batch %#08x — RNG draw order diverged", i, want, got[i])
		}
	}
}

// batchTestDataset builds a small deterministic dataset whose word
// count exceeds the memory size, so the round trip pages.
func batchTestDataset() (*mat.Dense, []float64) {
	const rows, cols = 40, 8
	rng := stats.NewRand(5)
	x := mat.NewDense(rows, cols)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			x.Set(i, j, rng.NormFloat64()*3)
		}
		y[i] = rng.NormFloat64()
	}
	return x, y
}

// TestRoundTripCachedMatchesUncachedPerArm pins the three-tier dispatch
// end to end: the cached round trip (image or batch path, depending on
// the arm) must be float-bit identical to the word-at-a-time
// RoundTripDatasetInto on every protection arm, across page boundaries.
func TestRoundTripCachedMatchesUncachedPerArm(t *testing.T) {
	const memRows = 64 // < dataset words, so the trip pages
	x, y := batchTestDataset()
	codec := memstore.DefaultCodec()
	fm := mixedFaultMap(memRows)
	for _, arm := range AllProtections() {
		m, err := arm.Build(memRows, fm)
		if err != nil {
			t.Fatalf("%v: build: %v", arm, err)
		}
		var wsScalar, wsCached memstore.Workspace
		xs, ys := codec.RoundTripDatasetInto(&wsScalar, m, x, y)
		codec.EncodeDatasetInto(&wsCached, x, y)
		xc, yc := codec.RoundTripCachedInto(&wsCached, m)

		r, c := xs.Dims()
		if rc, cc := xc.Dims(); rc != r || cc != c {
			t.Fatalf("%v: cached shape %dx%d vs %dx%d", arm, rc, cc, r, c)
		}
		for i := 0; i < r; i++ {
			rowS, rowC := xs.RawRow(i), xc.RawRow(i)
			for j := range rowS {
				if rowS[j] != rowC[j] {
					t.Fatalf("%v: X[%d,%d] = %v scalar vs %v cached", arm, i, j, rowS[j], rowC[j])
				}
			}
		}
		for i := range ys {
			if ys[i] != yc[i] {
				t.Fatalf("%v: Y[%d] = %v scalar vs %v cached", arm, i, ys[i], yc[i])
			}
		}
	}
}

// BenchmarkFig7RoundTrip measures the warm cached dataset round trip —
// the memory half of a Fig. 7 trial — per protection arm at the
// engine's real geometry (4096-word macro, Ionosphere-sized training
// set). This is the path the codeword-image cache accelerates; CI
// records it next to the whole-trial benches.
func BenchmarkFig7RoundTrip(b *testing.B) {
	p := DefaultFig7Params(AppElasticnet)
	train, _ := dataset.Wine(p.Seed).Split(0.8, p.Seed+1)
	codec := memstore.DefaultCodec()
	rng := stats.NewRand(42)
	fm := fault.GeneratePcell(rng, p.Rows, 32, p.Pcell, fault.Flip)
	for _, arm := range AllProtections() {
		b.Run(arm.ID().String(), func(b *testing.B) {
			m, err := arm.Build(p.Rows, fm)
			if err != nil {
				b.Fatal(err)
			}
			var ws memstore.Workspace
			codec.EncodeDatasetInto(&ws, train.X, train.Y)
			codec.RoundTripCachedInto(&ws, m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				codec.RoundTripCachedInto(&ws, m)
			}
		})
	}
}

// TestRoundTripCachedWarmAllocs pins the perf contract the Fig. 7
// engine relies on: once the workspace and the per-scheme codeword
// image are warm, a cached round trip allocates nothing, on every arm.
func TestRoundTripCachedWarmAllocs(t *testing.T) {
	const memRows = 64
	x, y := batchTestDataset()
	codec := memstore.DefaultCodec()
	fm := mixedFaultMap(memRows)
	for _, arm := range AllProtections() {
		m, err := arm.Build(memRows, fm)
		if err != nil {
			t.Fatalf("%v: build: %v", arm, err)
		}
		var ws memstore.Workspace
		codec.EncodeDatasetInto(&ws, x, y)
		codec.RoundTripCachedInto(&ws, m) // warm buffers + image cache
		if allocs := testing.AllocsPerRun(10, func() {
			codec.RoundTripCachedInto(&ws, m)
		}); allocs != 0 {
			t.Errorf("%v: warm cached round trip allocates %v times, want 0", arm, allocs)
		}
	}
}
