package exp

import (
	"bytes"
	"testing"
)

func TestAblationMultiFaultInvariants(t *testing.T) {
	rows := AblationMultiFault(3, 2000)
	if len(rows) != 15 { // 5 nFM x 3 fault counts
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The exhaustive search can never lose to the paper rule.
		if r.PaperPenalty < 1-1e-9 {
			t.Errorf("nFM=%d k=%d: penalty %.3f < 1 (BestX lost?)",
				r.NFM, r.FaultsPerRow, r.PaperPenalty)
		}
		if r.MeanMSEBest <= 0 || r.MeanMSEPaper <= 0 {
			t.Errorf("nFM=%d k=%d: non-positive MSE", r.NFM, r.FaultsPerRow)
		}
	}
	// At nFM=1 the two policies coincide for 32-bit words only when the
	// MSB fault dominates; but at nFM=5 (single-bit segments) the search
	// must strictly beat the paper rule on average for k>=2.
	for _, r := range rows {
		if r.NFM == 5 && r.FaultsPerRow >= 2 && r.PaperPenalty <= 1 {
			t.Errorf("nFM=5 k=%d: expected a strict penalty, got %.3f",
				r.FaultsPerRow, r.PaperPenalty)
		}
	}
	var buf bytes.Buffer
	if err := AblationMultiFaultTable(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblationLUTTableRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationLUTTable(4096).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

func TestAblationTransientBoundary(t *testing.T) {
	rates := []float64{0, 1e-4}
	rows, err := AblationTransient(7, 512, 2e-3, rates, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*len(rates) {
		t.Fatalf("%d rows", len(rows))
	}
	get := func(p Protection, rate float64) float64 {
		for _, r := range rows {
			if r.Scheme == p && r.TransientRate == rate {
				return r.MeanMSE
			}
		}
		t.Fatalf("missing row %v %g", p, rate)
		return 0
	}
	// With persistent faults only: shuffling crushes the MSE, ECC zeroes
	// it (single faults per word at this Pcell, almost surely).
	if !(get(ProtShuffle5, 0) < get(ProtNone, 0)/1e6) {
		t.Errorf("nFM=5 persistent MSE %g not far below unprotected %g",
			get(ProtShuffle5, 0), get(ProtNone, 0))
	}
	// Transients leak through the shuffler at full magnitude: the
	// transient-on MSE must dwarf the mitigated persistent-only MSE.
	sn := get(ProtShuffle5, 1e-4)
	s0 := get(ProtShuffle5, 0)
	if sn < 1e6*(s0+1) {
		t.Errorf("shuffling appears to mitigate transients: %g vs persistent-only %g", sn, s0)
	}
}

func TestAblationTransientPureSoftErrors(t *testing.T) {
	// Without persistent faults, SECDED corrects essentially every soft
	// error (multi-flip words are ~1e-6 rare) while shuffling provides no
	// mitigation at all — the clean statement of the boundary.
	rows, err := AblationTransient(11, 512, 0, []float64{1e-4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	get := func(p Protection) float64 {
		for _, r := range rows {
			if r.Scheme == p {
				return r.MeanMSE
			}
		}
		t.Fatalf("missing row %v", p)
		return 0
	}
	un := get(ProtNone)
	sh := get(ProtShuffle5)
	ec := get(ProtECC)
	if un == 0 {
		t.Fatal("no transient errors observed at rate 1e-4")
	}
	if sh < un/100 {
		t.Errorf("shuffling mitigated pure transients: %g vs %g", sh, un)
	}
	if ec > un/1e3 {
		t.Errorf("ECC failed on pure transients: %g vs unprotected %g", ec, un)
	}
	var buf bytes.Buffer
	if err := AblationTransientTable(rows, 1e-4).Render(&buf); err != nil {
		t.Fatal(err)
	}
}
