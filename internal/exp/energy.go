package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"faultmem/internal/core"
	"faultmem/internal/ecc"
	"faultmem/internal/fault"
	"faultmem/internal/hw"
	"faultmem/internal/mc"
	"faultmem/internal/redund"
	"faultmem/internal/sram"
	"faultmem/internal/stats"
	"faultmem/internal/yield"
)

// EnergyParams configures the voltage-scaling payoff study: how far each
// protection scheme lets VDD scale under a fixed quality-yield
// requirement, and what that is worth in read energy. This quantifies
// the paper's conclusion — the scheme exists "for allowing operation at
// scaled voltages" (§6).
type EnergyParams struct {
	// Rows is the macro depth (4096 = 16 KB).
	Rows int
	// MSETarget is the §4 quality criterion (die qualifies if MSE < it).
	MSETarget float64
	// YieldTarget is the required fraction of qualifying dies.
	YieldTarget float64
	// Dies is the Monte-Carlo die count per (scheme, VDD) point.
	Dies int
	// VMin, VMax, Step define the swept supply range.
	VMin, VMax, Step float64
	// RedundancyBudget sizes the spare-line arm.
	RedundancyBudget redund.Budget
	// Seed drives the die sampling.
	Seed int64
	// Workers is the goroutine count used to evaluate the dies of each
	// voltage point (0 = GOMAXPROCS); results are worker-count-invariant.
	Workers int
}

// DefaultEnergyParams returns the 16 KB setup with the Section 4 quality
// criterion.
func DefaultEnergyParams() EnergyParams {
	return EnergyParams{
		Rows: 4096, MSETarget: 1e6, YieldTarget: 0.999, Dies: 400,
		VMin: 0.60, VMax: 0.90, Step: 0.02,
		RedundancyBudget: redund.Budget{SpareRows: 8, SpareCols: 8},
		Seed:             13,
	}
}

// EnergyRow is one scheme's outcome: the minimum viable supply voltage
// and the resulting read energy (baseline array + scheme overhead,
// scaled quadratically with VDD from the nominal characterization).
type EnergyRow struct {
	Name string
	// MinVDD is the lowest swept voltage meeting the yield requirement
	// (NaN if none does).
	MinVDD float64
	// ReadEnergy is the per-read energy at MinVDD in fJ.
	ReadEnergy float64
	// RelativeToECC is ReadEnergy over the H(39,32) arm's energy at its
	// own minimum voltage.
	RelativeToECC float64
}

// energyArm abstracts "does one die qualify" per scheme. Scheme arms
// judge the die straight off the sampler's row masks (no allocation);
// the spare-line arm is the one consumer that needs explicit fault
// coordinates for the repair allocator.
type energyArm struct {
	name string
	// scheme is the residual-error model; nil selects the redundancy arm.
	scheme yield.Scheme
	// overheadEnergy is the scheme's extra read energy at nominal VDD.
	overheadEnergy float64
}

// qualifies reports whether the sampler's current die meets the MSE
// target after this arm's mitigation.
func (a energyArm) qualifies(s *yield.RowSampler, budget redund.Budget, target float64) bool {
	if a.scheme != nil {
		return s.MSE(a.scheme) < target
	}
	// A repaired die is fault-free; an unrepairable die is rejected
	// (fails the criterion outright).
	_, ok := redund.Allocate(s.Faults(fault.Flip), budget)
	return ok
}

// EnergyStudy sweeps VDD for every arm and returns the minimum viable
// voltage and read energy per scheme.
func EnergyStudy(p EnergyParams) []EnergyRow {
	rows, err := EnergyStudyEnv(mc.Env{}, p)
	if err != nil {
		// Unreachable: the zero Env's background context never cancels.
		panic(err)
	}
	return rows
}

// EnergyStudyEnv is EnergyStudy under an execution environment:
// bit-identical rows when the context stays live, ctx.Err() when it is
// cancelled or deadlined mid-sweep. The environment's OnShard counts
// completed voltage points (the sweep's outer unit of work).
func EnergyStudyEnv(env mc.Env, p EnergyParams) ([]EnergyRow, error) {
	if p.Dies < 1 || p.Step <= 0 || p.VMax < p.VMin {
		panic(fmt.Sprintf("exp: bad energy params %+v", p))
	}
	lib := hw.Lib28nm()
	macro := hw.Macro28nm(p.Rows)
	model := sram.Default28nm()
	baseline := float64(32) * macro.ColReadEnergy // data columns of the raw array

	schemeArm := func(prot Protection) energyArm {
		s := prot.YieldScheme()
		var ov float64
		switch prot {
		case ProtNone:
			ov = 0
		case ProtECC:
			ov = hw.ECCOverhead(lib, macro, ecc.H39_32()).ReadEnergy
		case ProtPECC:
			ov = hw.PECCOverhead(lib, macro).ReadEnergy
		default:
			ov = hw.ShuffleOverhead(lib, macro, core.Config{Width: 32, NFM: prot.NFM()}).ReadEnergy
		}
		return energyArm{name: prot.String(), scheme: s, overheadEnergy: ov}
	}

	arms := []energyArm{
		schemeArm(ProtNone),
		{
			name: fmt.Sprintf("redundancy %d+%d", p.RedundancyBudget.SpareRows, p.RedundancyBudget.SpareCols),
			// Spare columns add read energy like parity columns would;
			// spare rows are inactive on normal reads.
			overheadEnergy: float64(p.RedundancyBudget.SpareCols) * macro.ColReadEnergy,
		},
		schemeArm(ProtShuffle1),
		schemeArm(ProtShuffle2),
		schemeArm(ProtShuffle5),
		schemeArm(ProtPECC),
		schemeArm(ProtECC),
	}

	// Common random numbers: every arm judges the *same* die samples at
	// each voltage, so structural dominance between schemes (e.g. nFM=2
	// never worse than nFM=1) survives the Monte-Carlo noise.
	minVDD := make([]float64, len(arms))
	alive := make([]bool, len(arms))
	for i := range arms {
		minVDD[i] = math.NaN()
		alive[i] = true
	}
	nPoints := int((p.VMax-p.VMin+1e-9)/p.Step) + 1
	inner := mc.Env{Ctx: env.Ctx} // points report progress; die shards stay quiet
	reported := 0
	vIdx := 0
	for v := p.VMax; v >= p.VMin-1e-9; v -= p.Step {
		vIdx++
		anyAlive := false
		for _, a := range alive {
			anyAlive = anyAlive || a
		}
		if !anyAlive {
			break
		}
		pcell := model.Pcell(v)
		// Evaluate the voltage point's dies on the mc engine: each shard
		// draws its dies from a stream derived from (seed, vIdx, shard)
		// and reports per-arm qualification counts, which sum in shard
		// order — identical for any worker count. Scheme arms are judged
		// allocation-free off the sampler's row masks.
		spans := mc.Split(p.Dies, 0)
		counts, err := mc.RunEnv(inner, p.Workers, len(spans), stats.DeriveSeed(p.Seed, int64(vIdx)),
			func(shard int, rng *rand.Rand) []int {
				sampler := yield.NewRowSampler(p.Rows, 32)
				ok := make([]int, len(arms))
				for d := spans[shard].Start; d < spans[shard].End; d++ {
					n := stats.SampleBinomial(rng, p.Rows*32, pcell)
					sampler.Reset()
					if n > 0 {
						sampler.Draw(rng, n)
					}
					for i, arm := range arms {
						if alive[i] && arm.qualifies(sampler, p.RedundancyBudget, p.MSETarget) {
							ok[i]++
						}
					}
				}
				return ok
			})
		if err != nil {
			return nil, err
		}
		if env.OnShard != nil {
			env.OnShard(vIdx, nPoints)
			reported = vIdx
		}
		ok := make([]int, len(arms))
		for _, shard := range counts {
			for i, c := range shard {
				ok[i] += c
			}
		}
		for i := range arms {
			if !alive[i] {
				continue
			}
			if float64(ok[i])/float64(p.Dies) >= p.YieldTarget {
				minVDD[i] = v
			} else {
				alive[i] = false // yield is monotone in VDD
			}
		}
	}

	// The sweep may end early once every arm has failed; progress
	// consumers still see a terminating done == total event.
	if env.OnShard != nil && reported < nPoints {
		env.OnShard(nPoints, nPoints)
	}

	rows := make([]EnergyRow, len(arms))
	for i, arm := range arms {
		row := EnergyRow{Name: arm.name, MinVDD: minVDD[i]}
		if !math.IsNaN(minVDD[i]) {
			scale := minVDD[i] * minVDD[i] // E ~ V^2 relative to the 1 V characterization
			row.ReadEnergy = (baseline + arm.overheadEnergy) * scale
		} else {
			row.ReadEnergy = math.NaN()
		}
		rows[i] = row
	}

	// Normalize to the ECC arm (last).
	eccEnergy := rows[len(rows)-1].ReadEnergy
	for i := range rows {
		rows[i].RelativeToECC = rows[i].ReadEnergy / eccEnergy
	}
	return rows, nil
}

// energyExperiment adapts the voltage-scaling payoff study to the
// registry.
type energyExperiment struct{}

func (energyExperiment) Name() string { return "energy" }
func (energyExperiment) Description() string {
	return "min viable VDD and read energy per scheme (the paper's payoff)"
}
func (energyExperiment) DefaultParams() any { return DefaultEnergyParams() }

func (e energyExperiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[EnergyParams](r, e)
	if err != nil {
		return nil, err
	}
	p.Seed = r.seedOr(p.Seed)
	p.Workers = r.workersOr(p.Workers)
	if r.quick() && p.Dies > 120 {
		p.Dies = 120
	}
	rows, err := EnergyStudyEnv(r.env(ctx, e.Name(), ""), p)
	if err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: p, Tables: []*Table{EnergyTable(rows, p)}}, nil
}

// EnergyTable renders the study.
func EnergyTable(rows []EnergyRow, p EnergyParams) *Table {
	t := &Table{
		Title: fmt.Sprintf("Voltage-scaling payoff - min VDD and read energy at yield >= %.3f, MSE < %.0e",
			p.YieldTarget, p.MSETarget),
		Header: []string{"scheme", "min VDD [V]", "read energy [fJ]", "vs H(39,32) ECC"},
		Notes: []string{
			fmt.Sprintf("%d Monte-Carlo dies per (scheme, VDD) point; E ~ V^2 from the 28nm-class characterization", p.Dies),
			"this is the paper's conclusion quantified: mitigation that tolerates more faults lets VDD scale deeper, and the energy win compounds with the lower scheme overhead",
		},
	}
	for _, r := range rows {
		vdd := "-"
		energy := "-"
		rel := "-"
		if !math.IsNaN(r.MinVDD) {
			vdd = fmt.Sprintf("%.2f", r.MinVDD)
			energy = fmt.Sprintf("%.0f", r.ReadEnergy)
			rel = fmt.Sprintf("%.2f", r.RelativeToECC)
		}
		t.AddRow(r.Name, vdd, energy, rel)
	}
	return t
}
