package exp

import (
	"context"
	"encoding/json"
	"io"

	"faultmem/internal/mc"
	"faultmem/internal/yield"
)

// Progress is one experiment progress event: Done of Total units of the
// named stage have completed. For engine-backed experiments a unit is one
// Monte-Carlo shard; sweep-style experiments count their outer points
// (voltage steps, benchmark apps) instead.
type Progress struct {
	Experiment string `json:"experiment"`
	// Stage distinguishes phases inside one experiment (a Fig. 7
	// benchmark app, an energy-study voltage point); empty for
	// single-phase experiments.
	Stage string `json:"stage,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// ProgressFunc receives progress events. Calls are serialized per engine
// run but may come from worker goroutines; keep the callback cheap.
type ProgressFunc func(Progress)

// Runner carries the shared execution environment of an experiment run:
// engine parallelism, seed and accumulator policy, the quick-budget tier,
// a progress sink, and an optional parameter override. A nil *Runner is
// valid and means "experiment defaults".
type Runner struct {
	// Workers is the Monte-Carlo worker goroutine count (0 keeps the
	// experiment default, which is all cores). Results are bit-identical
	// for every value.
	Workers int
	// Seed overrides the experiment's default base seed when non-nil.
	Seed *int64
	// Accum selects the CDF accumulator for experiments that build CDFs
	// (AccumAuto keeps each experiment's default policy).
	Accum yield.AccumMode
	// Bins is the log-histogram bin count (0 = default).
	Bins int
	// Quick selects each experiment's reduced smoke budget — the CLI's
	// -quick tier.
	Quick bool
	// Progress, when non-nil, receives shard/stage completion events.
	Progress ProgressFunc
	// Params overrides the experiment's DefaultParams. It accepts either
	// the experiment's concrete params type or a json.RawMessage that is
	// unmarshalled over the defaults — the wire form remote sweep
	// services use.
	Params any
	// Exec, when non-nil, takes over engine shard execution (mc.Env.Exec):
	// the hook the multi-host sweep service uses, on the coordinator to
	// fan shards out to remote workers and on a worker to compute exactly
	// one requested shard of a replayed campaign. Leave nil for ordinary
	// local runs.
	Exec mc.ExecFunc
}

// workersOr returns the runner's worker count, falling back to the
// experiment's own default.
func (r *Runner) workersOr(def int) int {
	if r == nil || r.Workers == 0 {
		return def
	}
	return r.Workers
}

// seedOr returns the runner's seed override, falling back to the
// experiment's own default.
func (r *Runner) seedOr(def int64) int64 {
	if r == nil || r.Seed == nil {
		return def
	}
	return *r.Seed
}

// accumOr returns the runner's accumulator mode, falling back to the
// experiment's own default.
func (r *Runner) accumOr(def yield.AccumMode) yield.AccumMode {
	if r == nil || r.Accum == yield.AccumAuto {
		return def
	}
	return r.Accum
}

// binsOr returns the runner's histogram bin count, falling back to the
// experiment's own default.
func (r *Runner) binsOr(def int) int {
	if r == nil || r.Bins == 0 {
		return def
	}
	return r.Bins
}

// quick reports whether the reduced smoke budgets are selected.
func (r *Runner) quick() bool { return r != nil && r.Quick }

// env builds the engine environment for one stage of the named
// experiment: the caller's context, a shard-completion bridge into the
// runner's progress sink, and — for remote execution — the runner's shard
// executor under a tag that names this engine run uniquely within the
// campaign ("experiment" or "experiment/stage").
func (r *Runner) env(ctx context.Context, experiment, stage string) mc.Env {
	e := mc.Env{Ctx: ctx, Tag: experiment}
	if stage != "" {
		e.Tag = experiment + "/" + stage
	}
	if r != nil {
		e.Exec = r.Exec
	}
	if r != nil && r.Progress != nil {
		sink := r.Progress
		e.OnShard = func(done, total int) {
			sink(Progress{Experiment: experiment, Stage: stage, Done: done, Total: total})
		}
	}
	return e
}

// note emits one progress event directly — for experiments that track
// coarse units (sweep points, apps) themselves instead of riding an
// engine run.
func (r *Runner) note(experiment, stage string, done, total int) {
	if r != nil && r.Progress != nil {
		r.Progress(Progress{Experiment: experiment, Stage: stage, Done: done, Total: total})
	}
}

// Result is the uniform outcome of one experiment run: the effective
// parameters it ran with and the rendered exhibits. It serializes to JSON
// (the registry's wire contract) and renders the same text/CSV tables the
// CLI always printed.
type Result struct {
	Experiment string   `json:"experiment"`
	Params     any      `json:"params,omitempty"`
	Tables     []*Table `json:"tables"`
}

// Render writes every table as aligned text, blank-line separated.
func (r *Result) Render(w io.Writer) error {
	for i, t := range r.Tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes every table as CSV records (titles become comment
// records when includeMeta).
func (r *Result) RenderCSV(w io.Writer, includeMeta bool) error {
	for i, t := range r.Tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := t.RenderCSV(w, includeMeta); err != nil {
			return err
		}
	}
	return nil
}

// JSON returns the indented JSON encoding of the result.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
