package exp

import (
	"context"
	"fmt"

	"faultmem/internal/core"
	"faultmem/internal/ecc"
	"faultmem/internal/hw"
	"faultmem/internal/mc"
	"faultmem/internal/yield"
)

// ParetoParams configures the quality-vs-overhead frontier exhibit: the
// §3 claim that "by modifying the number of bits that comprise a shifted
// segment, the designer can trade-off quality for power, delay, and
// area", extended with a P-ECC protected-fraction sweep so both knobs
// are visible in one table.
type ParetoParams struct {
	CDF yield.CDFParams
	// YieldTarget is the CDF level at which the tolerated MSE is read.
	YieldTarget float64
	// PECCSplits are the protected-MSB counts of the P-ECC arms.
	PECCSplits []int
}

// DefaultParetoParams uses the Fig. 5 memory configuration.
func DefaultParetoParams() ParetoParams {
	cdf := yield.DefaultCDFParams()
	cdf.Trun = 5e4
	return ParetoParams{CDF: cdf, YieldTarget: 0.99, PECCSplits: []int{8, 16, 24}}
}

// ParetoRow is one scheme's position in the quality/cost space.
type ParetoRow struct {
	Name       string
	MSEAtYield float64 // tolerated MSE at the yield target (lower = better)
	RelPower   float64 // read power overhead / H(39,32) overhead
	RelDelay   float64
	RelArea    float64
}

// Pareto evaluates every arm's quality (Fig. 5 machinery) and hardware
// cost (Fig. 6 machinery) on a common scale.
func Pareto(p ParetoParams) []ParetoRow {
	rows, err := ParetoEnv(mc.Env{}, p)
	if err != nil {
		// Unreachable: the zero Env's background context never cancels.
		panic(err)
	}
	return rows
}

// ParetoEnv is Pareto under an execution environment: bit-identical rows
// when the context stays live, ctx.Err() when cancelled mid-campaign.
func ParetoEnv(env mc.Env, p ParetoParams) ([]ParetoRow, error) {
	lib := hw.Lib28nm()
	macro := hw.Macro28nm(p.CDF.Rows)
	eccOv := hw.ECCOverhead(lib, macro, ecc.H39_32())
	rel := func(o hw.Overhead) (float64, float64, float64) {
		return o.ReadEnergy / eccOv.ReadEnergy,
			o.ReadDelay / eccOv.ReadDelay,
			o.Area / eccOv.Area
	}

	type arm struct {
		scheme yield.Scheme
		oh     hw.Overhead
	}
	var arms []arm
	arms = append(arms, arm{yield.Unprotected{}, hw.Overhead{Name: "No Correction"}})
	for nfm := 1; nfm <= 5; nfm++ {
		arms = append(arms, arm{
			yield.NewShuffled(nfm),
			hw.ShuffleOverhead(lib, macro, core.Config{Width: 32, NFM: nfm}),
		})
	}
	for _, split := range p.PECCSplits {
		arms = append(arms, arm{
			yield.PriorityECC{Protected: split},
			hw.PartialECCOverhead(lib, macro, split),
		})
	}
	arms = append(arms, arm{yield.FullECC{}, eccOv})

	// One engine pass with common random numbers across every arm: the
	// frontier's quality axis is read off identical fault-map samples, so
	// the monotonicity the table claims (in nFM and in the P-ECC split)
	// cannot be scrambled by between-arm Monte-Carlo noise.
	schemes := make([]yield.Scheme, len(arms))
	for i, a := range arms {
		schemes[i] = a.scheme
	}
	results, err := yield.MSECDFAllEnv(env, p.CDF, schemes)
	if err != nil {
		return nil, err
	}

	rows := make([]ParetoRow, 0, len(arms))
	for i, a := range arms {
		pw, dl, ar := rel(a.oh)
		rows = append(rows, ParetoRow{
			Name:       a.scheme.Name(),
			MSEAtYield: results[i].MSEAtYield(p.YieldTarget),
			RelPower:   pw,
			RelDelay:   dl,
			RelArea:    ar,
		})
	}
	return rows, nil
}

// paretoExperiment adapts the quality/overhead frontier to the registry.
type paretoExperiment struct{}

func (paretoExperiment) Name() string { return "pareto" }
func (paretoExperiment) Description() string {
	return "quality vs hardware-cost frontier across both design knobs"
}
func (paretoExperiment) DefaultParams() any { return DefaultParetoParams() }

func (e paretoExperiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[ParetoParams](r, e)
	if err != nil {
		return nil, err
	}
	p.CDF.Seed = r.seedOr(p.CDF.Seed)
	p.CDF.Workers = r.workersOr(p.CDF.Workers)
	p.CDF.Accum = r.accumOr(p.CDF.Accum)
	p.CDF.Bins = r.binsOr(p.CDF.Bins)
	if r.quick() && p.CDF.Trun > 1e4 {
		p.CDF.Trun = 1e4
	}
	rows, err := ParetoEnv(r.env(ctx, e.Name(), ""), p)
	if err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: p, Tables: []*Table{ParetoTable(rows, p)}}, nil
}

// ParetoTable renders the frontier.
func ParetoTable(rows []ParetoRow, p ParetoParams) *Table {
	t := &Table{
		Title: fmt.Sprintf("Quality-overhead trade-off: MSE tolerated at %.2f yield vs relative hardware cost",
			p.YieldTarget),
		Header: []string{"scheme", fmt.Sprintf("MSE@yield %.2f", p.YieldTarget),
			"rel power", "rel delay", "rel area"},
		Notes: []string{
			"both knobs of the design space in one table: the shuffling segment size (nFM) and",
			"the P-ECC protected fraction; relative costs are normalized to H(39,32) SECDED",
			"Section 3's claim quantified: nFM trades quality for power/delay/area smoothly;",
			"nFM=2 matches P-ECC top-24's quality bound (both cap single faults at 2^7) at a",
			"third of its power/delay/area, and strictly dominates the top-8/top-16 splits",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%.3e", r.MSEAtYield),
			fmt.Sprintf("%.3f", r.RelPower),
			fmt.Sprintf("%.3f", r.RelDelay),
			fmt.Sprintf("%.3f", r.RelArea))
	}
	return t
}
