package exp

import (
	"context"
	"fmt"

	"faultmem/internal/bist"
	"faultmem/internal/fault"
	"faultmem/internal/sram"
	"faultmem/internal/stats"
)

// BISTCoverageParams configures the March-algorithm coverage study: how
// reliably each test locates stuck-at/flip faults and — where the
// classic cost hierarchy earns its keep — idempotent coupling faults.
type BISTCoverageParams struct {
	Rows, Width int
	// StaticFaults is the number of flip/stuck-at faults per trial.
	StaticFaults int
	// Couplings is the number of CFid faults per trial.
	Couplings int
	// Trials is the Monte-Carlo repetition count.
	Trials int
	Seed   int64
}

// DefaultBISTCoverageParams uses a small array so many trials stay fast.
func DefaultBISTCoverageParams() BISTCoverageParams {
	return BISTCoverageParams{Rows: 128, Width: 32, StaticFaults: 8, Couplings: 12, Trials: 40, Seed: 23}
}

// BISTCoverageRow is one algorithm's measured coverage.
type BISTCoverageRow struct {
	Algorithm      string
	OpsPerCell     int
	StaticCoverage float64 // fraction of static faults located
	VictimCoverage float64 // fraction of coupling victims located
}

// BISTCoverage measures detection coverage per algorithm: static faults
// must always be found (all algorithms read both backgrounds everywhere);
// coupling-fault coverage separates the cheap tests from the thorough
// ones, since detection requires a read of the victim between the
// aggressor's disturbing write and the victim's next rewrite.
func BISTCoverage(p BISTCoverageParams) []BISTCoverageRow {
	rows, err := BISTCoverageCtx(context.Background(), p)
	if err != nil {
		// Unreachable: the background context never cancels.
		panic(err)
	}
	return rows
}

// BISTCoverageCtx is BISTCoverage with cooperative cancellation, polled
// between Monte-Carlo trials.
func BISTCoverageCtx(ctx context.Context, p BISTCoverageParams) ([]BISTCoverageRow, error) {
	algs := []bist.Algorithm{bist.ZeroOne(), bist.MATSPlus(), bist.MarchCMinus(), bist.MarchB()}
	rows := make([]BISTCoverageRow, len(algs))
	for ai, alg := range algs {
		rng := stats.Derive(p.Seed, int64(ai))
		staticFound, staticTotal := 0, 0
		victimFound, victimTotal := 0, 0
		for trial := 0; trial < p.Trials; trial++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			static := fault.RandomKinds(rng,
				fault.GenerateCount(rng, p.Rows, p.Width, p.StaticFaults, fault.Flip),
				[]fault.Kind{fault.Flip, fault.StuckAt0, fault.StuckAt1})
			couplings := fault.GenerateCouplings(rng, p.Rows, p.Width, p.Couplings)
			// Keep coupling victims clear of static faults so coverage
			// attribution is unambiguous.
			staticCells := map[[2]int]bool{}
			for _, f := range static {
				staticCells[[2]int{f.Row, f.Col}] = true
			}
			arr := sram.NewArray(p.Rows, p.Width)
			if err := arr.SetFaults(static); err != nil {
				panic(err)
			}
			if err := arr.SetCouplings(couplings); err != nil {
				panic(err)
			}
			rep := bist.Run(alg, arr)
			detected := map[[2]int]bool{}
			for _, f := range rep.Detected {
				detected[[2]int{f.Row, f.Col}] = true
			}
			for _, f := range static {
				staticTotal++
				if detected[[2]int{f.Row, f.Col}] {
					staticFound++
				}
			}
			for _, c := range couplings {
				key := [2]int{c.VicRow, c.VicCol}
				if staticCells[key] {
					continue
				}
				victimTotal++
				if detected[key] {
					victimFound++
				}
			}
		}
		rows[ai] = BISTCoverageRow{
			Algorithm:      alg.Name,
			OpsPerCell:     alg.Complexity(),
			StaticCoverage: float64(staticFound) / float64(staticTotal),
			VictimCoverage: float64(victimFound) / float64(victimTotal),
		}
	}
	return rows, nil
}

// bistcovExperiment adapts the March coverage study to the registry.
type bistcovExperiment struct{}

func (bistcovExperiment) Name() string { return "bistcov" }
func (bistcovExperiment) Description() string {
	return "March-algorithm fault coverage: static vs coupling faults"
}
func (bistcovExperiment) DefaultParams() any { return DefaultBISTCoverageParams() }

func (e bistcovExperiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[BISTCoverageParams](r, e)
	if err != nil {
		return nil, err
	}
	p.Seed = r.seedOr(p.Seed)
	if r.quick() && p.Trials > 10 {
		p.Trials = 10
	}
	rows, err := BISTCoverageCtx(ctx, p)
	if err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: p, Tables: []*Table{BISTCoverageTable(rows, p)}}, nil
}

// BISTCoverageTable renders the study.
func BISTCoverageTable(rows []BISTCoverageRow, p BISTCoverageParams) *Table {
	t := &Table{
		Title:  "BIST algorithm coverage - static faults vs idempotent coupling faults (CFid)",
		Header: []string{"algorithm", "ops/cell", "static coverage", "coupling-victim coverage"},
		Notes: []string{
			fmt.Sprintf("%d trials x (%d static + %d coupling) faults on a %dx%d array",
				p.Trials, p.StaticFaults, p.Couplings, p.Rows, p.Width),
			"all algorithms read both backgrounds at every cell, so static faults are always",
			"located; coupling faults separate the tests - detecting one requires reading the",
			"victim between the aggressor's disturbing write and the victim's next rewrite,",
			"which the longer Marches' extra read-write pairs provide",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Algorithm,
			fmt.Sprintf("%d", r.OpsPerCell),
			fmt.Sprintf("%.3f", r.StaticCoverage),
			fmt.Sprintf("%.3f", r.VictimCoverage))
	}
	return t
}
