package exp

import (
	"math"
	"testing"
)

// fig7Golden holds the quality samples the PRE-refactor fig7 engine
// produced at DefaultFig7Params with Trials=5 (Rows=4096, Pcell=1e-3,
// Seed=7), captured as float64 bit patterns before the trial pipeline
// moved into internal/workload. Arm order follows Fig7Arms(): No
// Correction, H(22,16) P-ECC, nFM=1-Bit, nFM=2-Bit; each arm's
// qualities are sorted ascending as the engine returns them.
var fig7Golden = map[App]struct {
	cleanBits uint64
	arms      [4][5]uint64
}{
	AppElasticnet: {
		cleanBits: 0x3fd05fa52490794e,
		arms: [4][5]uint64{
			{0x0, 0x0, 0x0, 0x0, 0x0},
			{0x0000000000000000, 0x3fefea8f886d0a2f, 0x3feff12c7750c278, 0x3feff134e5a47305, 0x3feff2bffc5739ed},
			{0x0000000000000000, 0x3fe01b4f965f41fe, 0x3fec3fc6ed428d3f, 0x3feff06b96a1b710, 0x3feff49d47c4b6a4},
			{0x3feff25060884bac, 0x3fefff39a1d55993, 0x3fefffedaf3b3a98, 0x3ff0000000000000, 0x3ff0000000000000},
		},
	},
	AppPCA: {
		cleanBits: 0x3fea99277525cddd,
		arms: [4][5]uint64{
			{0x3f99b80062799467, 0x3fc7c11cca02a9d0, 0x3fcee068f46d178c, 0x3fd134a3f8da502c, 0x3fd9bae9b2f68a18},
			{0x3f5d71840e62d691, 0x3fefffeb725fe2e2, 0x3ff0000000000000, 0x3ff0000000000000, 0x3ff0000000000000},
			{0x3fa631d1def47b61, 0x3fbc103a4f138b97, 0x3feff3e52081b431, 0x3fefffee2eb6fdaf, 0x3ff0000000000000},
			{0x3feffff17541292b, 0x3feffff86a60ee1e, 0x3fefffff9a7c1098, 0x3ff0000000000000, 0x3ff0000000000000},
		},
	},
	AppKNN: {
		cleanBits: 0x3fec0da740da740e,
		arms: [4][5]uint64{
			{0x3fee6b127e8a3875, 0x3fee8a3874ce5b7f, 0x3feee7aa579ac49f, 0x3fef06d04ddee7aa, 0x3fef836826ef73d4},
			{0x3fefa28e1d3396e0, 0x3fefa28e1d3396e0, 0x3fefc1b41377b9ea, 0x3fefe0da09bbdcf5, 0x3fefe0da09bbdcf5},
			{0x3fef451c3a672dc0, 0x3fef836826ef73d4, 0x3fef836826ef73d4, 0x3fef836826ef73d4, 0x3ff0000000000000},
			{0x3fefa28e1d3396e0, 0x3fefa28e1d3396e0, 0x3fefc1b41377b9ea, 0x3fefc1b41377b9ea, 0x3fefe0da09bbdcf5},
		},
	},
}

// TestFig7GoldenEquivalence pins the workload-layer refactor as
// provably behavior-preserving: the post-refactor engine must
// reproduce the pre-refactor quality samples bit for bit, at every
// worker count that exercises a different shard split (1, 4, 7).
func TestFig7GoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 7 Monte Carlo is slow")
	}
	for app, want := range fig7Golden {
		p := DefaultFig7Params(app)
		p.Trials = 5
		for _, workers := range []int{1, 4, 7} {
			p.Workers = workers
			res, err := Fig7(p)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", app, workers, err)
			}
			if got := math.Float64bits(res.CleanMetric); got != want.cleanBits {
				t.Errorf("%v workers=%d: clean metric bits %#x, want %#x",
					app, workers, got, want.cleanBits)
			}
			if len(res.Arms) != len(want.arms) {
				t.Fatalf("%v workers=%d: %d arms, want %d", app, workers, len(res.Arms), len(want.arms))
			}
			for ai, arm := range res.Arms {
				if len(arm.Qualities) != len(want.arms[ai]) {
					t.Fatalf("%v workers=%d arm %v: %d qualities, want %d",
						app, workers, arm.Scheme, len(arm.Qualities), len(want.arms[ai]))
				}
				for qi, q := range arm.Qualities {
					if got := math.Float64bits(q); got != want.arms[ai][qi] {
						t.Errorf("%v workers=%d arm %v sample %d: bits %#x (%.17g), want %#x",
							app, workers, arm.Scheme, qi, got, q, want.arms[ai][qi])
					}
				}
			}
		}
	}
}
