package exp

import (
	"bytes"
	"testing"
)

func TestWidthAblationShape(t *testing.T) {
	rows := WidthAblation(4096)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	widths := []int{16, 32, 64}
	for i, r := range rows {
		if r.Width != widths[i] {
			t.Errorf("row %d width %d", i, r.Width)
		}
		// The shuffle must beat its width's SECDED in every metric at
		// nFM=1 and in delay at the finest granularity.
		for m := 0; m < 3; m++ {
			if r.Coarsest[m] >= 1 {
				t.Errorf("W=%d: nFM=1 rel metric %d = %.2f >= 1", r.Width, m, r.Coarsest[m])
			}
		}
		if r.Finest[1] >= 1 {
			t.Errorf("W=%d: finest shuffle delay ratio %.2f >= 1", r.Width, r.Finest[1])
		}
		// Error bounds: finest is always 2^0 = 1; coarsest is 2^(W/2-1).
		if r.MaxErrFinest != 1 {
			t.Errorf("W=%d: finest max error %d", r.Width, r.MaxErrFinest)
		}
		if r.MaxErrCoarsest != uint64(1)<<uint(r.Width/2-1) {
			t.Errorf("W=%d: coarsest max error %d", r.Width, r.MaxErrCoarsest)
		}
	}
	// 64-bit reference: interleaved, 14 parity columns.
	if rows[2].ECCColumns != 14 || rows[2].ECCName != "2xH(39,32) ECC" {
		t.Errorf("64-bit reference wrong: %+v", rows[2])
	}
	// 16-bit reference: H(22,16), 6 columns.
	if rows[0].ECCColumns != 6 {
		t.Errorf("16-bit reference columns %d", rows[0].ECCColumns)
	}
	var buf bytes.Buffer
	if err := WidthTable(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
}
