package exp

import (
	"errors"
	"math/rand"
	"sort"

	"faultmem/internal/mc"
	"faultmem/internal/memstore"
	"faultmem/internal/stats"
	"faultmem/internal/workload"
)

// qualityConfig fixes one quality-vs-yield engine run: a prepared
// workload instance pushed through a set of protection arms at a fixed
// memory geometry and trial budget, optionally under a detect-and-
// recover policy and a per-read transient fault rate.
type qualityConfig struct {
	name      string // canonical workload name, labels trial errors
	arms      []Protection
	rows      int
	pcell     float64
	trials    int
	workers   int
	seed      int64
	policy    workload.RecoveryPolicy
	transient float64
}

// workloadArms adapts protection arms to the workload layer's Arm
// interface (Protection satisfies it structurally; the indirection
// avoids an import cycle).
func workloadArms(arms []Protection) []workload.Arm {
	out := make([]workload.Arm, len(arms))
	for i, a := range arms {
		out[i] = a
	}
	return out
}

// runQualityArms is the shared Monte-Carlo engine behind fig7 and the
// workloads/recovery campaigns: it splits the trial budget into
// contiguous spans, runs each span's trials on a per-shard
// workload.TrialRunner (one RNG stream per trial derived from
// (seed, trial), so the samples are bit-identical at any worker or
// shard count), and returns one ascending-sorted quality sample per arm
// plus the per-arm recovery counters merged across shards (nil when the
// policy is None — merging is order-free field sums, so the counters
// are worker-count deterministic too).
func runQualityArms(env mc.Env, inst workload.Instance, cfg qualityConfig) ([]Fig7Arm, []memstore.RecoveryStats, error) {
	narms := len(cfg.arms)
	rcfg := workload.Config{
		Name:          cfg.name,
		Rows:          cfg.rows,
		Pcell:         cfg.pcell,
		Arms:          workloadArms(cfg.arms),
		Policy:        cfg.policy,
		TransientRate: cfg.transient,
	}
	seedBase := stats.DeriveSeed(cfg.seed, 1000)
	spans := mc.Split(cfg.trials, mc.Workers(cfg.workers))
	cancel := env.Done()

	outs, err := mc.RunEnv(env, cfg.workers, len(spans), seedBase,
		func(shard int, _ *rand.Rand) workload.ShardOut {
			span := spans[shard]
			out := workload.ShardOut{Qs: make([]float64, 0, (span.End-span.Start)*narms)}
			runner := workload.NewTrialRunner(inst, rcfg)
			for trial := span.Start; trial < span.End; trial++ {
				select {
				case <-cancel:
					// Abandon the shard; the engine reports ctx.Err() and
					// the partial samples are discarded with it.
					return out
				default:
				}
				qs, err := runner.RunTrial(seedBase, trial, out.Qs)
				out.Qs = qs
				if err != nil {
					out.Err = err.Error()
					return out
				}
			}
			out.Recovery = runner.RecoveryStats()
			return out
		})
	if err != nil {
		return nil, nil, err
	}

	for _, o := range outs {
		if o.Err != "" {
			return nil, nil, errors.New(o.Err)
		}
	}
	var recovery []memstore.RecoveryStats
	if cfg.policy.Active() {
		recovery = make([]memstore.RecoveryStats, narms)
		for _, o := range outs {
			for ai, s := range o.Recovery {
				recovery[ai].Merge(s)
			}
		}
	}
	res := make([]Fig7Arm, 0, narms)
	for ai, arm := range cfg.arms {
		qualities := make([]float64, 0, cfg.trials)
		for _, o := range outs {
			for t := 0; t*narms < len(o.Qs); t++ {
				qualities = append(qualities, o.Qs[t*narms+ai])
			}
		}
		sort.Float64s(qualities)
		res = append(res, Fig7Arm{Scheme: arm, Qualities: qualities})
	}
	return res, recovery, nil
}
