package exp

import (
	"context"
	"fmt"
	"math"

	"faultmem/internal/mc"
	"faultmem/internal/yield"
)

// Fig5Params configures the MSE-CDF experiment.
type Fig5Params struct {
	CDF yield.CDFParams
	// MSEGrid lists the MSE abscissas at which each scheme's CDF is
	// tabulated (the log-spaced x-axis of Fig. 5).
	MSEGrid []float64
	// YieldTargets lists CDF levels for the MSE-at-yield comparison.
	YieldTargets []float64
	// MSETarget is the yield criterion of the Section 4 discussion
	// (MSE < 1e6).
	MSETarget float64
}

// DefaultFig5Params mirrors the published setup: 16 KB memory at
// Pcell = 5e-6.
func DefaultFig5Params() Fig5Params {
	var grid []float64
	for e := -4.0; e <= 8.0; e += 0.5 {
		grid = append(grid, math.Pow(10, e))
	}
	return Fig5Params{
		CDF:          yield.DefaultCDFParams(),
		MSEGrid:      grid,
		YieldTargets: []float64{0.8, 0.9, 0.99, 0.999},
		MSETarget:    1e6,
	}
}

// Fig5Arms returns the schemes plotted in Fig. 5: no protection, the five
// shuffling configurations, and P-ECC.
func Fig5Arms() []Protection {
	return []Protection{ProtNone, ProtShuffle1, ProtShuffle2, ProtShuffle3,
		ProtShuffle4, ProtShuffle5, ProtPECC}
}

// Fig5Result bundles the per-arm CDFs.
type Fig5Result struct {
	Params Fig5Params
	Arms   []Protection
	CDFs   []yield.CDFResult
}

// Fig5 runs the Monte-Carlo MSE CDF for every arm in one pass of the
// parallel engine: every fault map is drawn once and scored by all seven
// schemes (common random numbers), so the fault-generation cost is paid
// once instead of seven times and the between-arm reduction factors of
// YieldTable see the same samples on both sides. p.CDF.Workers sets the
// engine's parallelism; results are identical for every worker count.
func Fig5(p Fig5Params) Fig5Result {
	res, err := Fig5Env(mc.Env{}, p)
	if err != nil {
		// Unreachable: the zero Env's background context never cancels.
		panic(err)
	}
	return res
}

// Fig5Env is Fig5 under an execution environment: bit-identical CDFs when
// the context stays live, ctx.Err() when it is cancelled or deadlined
// mid-campaign. Shard completions reach the environment's OnShard.
func Fig5Env(env mc.Env, p Fig5Params) (Fig5Result, error) {
	arms := Fig5Arms()
	schemes := make([]yield.Scheme, len(arms))
	for i, arm := range arms {
		schemes[i] = arm.YieldScheme()
	}
	cdfs, err := yield.MSECDFAllEnv(env, p.CDF, schemes)
	if err != nil {
		return Fig5Result{}, err
	}
	return Fig5Result{Params: p, Arms: arms, CDFs: cdfs}, nil
}

// fig5Experiment adapts the MSE-CDF campaign to the registry.
type fig5Experiment struct{}

func (fig5Experiment) Name() string { return "fig5" }
func (fig5Experiment) Description() string {
	return "CDF of memory MSE per protection scheme, 16KB at Pcell=5e-6 (Fig. 5)"
}
func (fig5Experiment) DefaultParams() any { return DefaultFig5Params() }

func (e fig5Experiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[Fig5Params](r, e)
	if err != nil {
		return nil, err
	}
	p.CDF.Seed = r.seedOr(p.CDF.Seed)
	p.CDF.Workers = r.workersOr(p.CDF.Workers)
	p.CDF.Accum = r.accumOr(p.CDF.Accum)
	p.CDF.Bins = r.binsOr(p.CDF.Bins)
	if r.quick() && p.CDF.Trun > 2e4 {
		p.CDF.Trun = 2e4
	}
	res, err := Fig5Env(r.env(ctx, e.Name(), ""), p)
	if err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: p,
		Tables: []*Table{res.CDFTable(), res.YieldTable()}}, nil
}

// CDFTable tabulates Pr(MSE <= x | N >= 1) for every arm over the grid —
// the curves of Fig. 5.
func (r Fig5Result) CDFTable() *Table {
	header := []string{"MSE"}
	for _, a := range r.Arms {
		header = append(header, a.String())
	}
	acc := "exact observation store"
	if r.CDFs[0].Histogram {
		acc = "O(1)-memory log10-MSE histogram"
	}
	t := &Table{
		Title:  "Fig. 5 - CDF of memory MSE (16KB, Pcell=5e-6), conditioned on N>=1 failures",
		Header: header,
		Notes: []string{
			fmt.Sprintf("Pr(N=0) = %.4f (fault-free dies, MSE = 0, excluded from the curves as in Eq. 5's sum from i=1)", r.CDFs[0].PZeroFailures),
			fmt.Sprintf("Monte-Carlo samples per arm: %d (Trun=%.0g; the paper uses 1e7); accumulator: %s",
				r.CDFs[0].Samples, r.Params.CDF.Trun, acc),
		},
	}
	for _, x := range r.Params.MSEGrid {
		row := []string{fmt.Sprintf("%.1e", x)}
		for _, c := range r.CDFs {
			row = append(row, fmt.Sprintf("%.4f", c.CDF.P(x)))
		}
		t.AddRow(row...)
	}
	return t
}

// YieldTable tabulates the MSE each arm must tolerate at the requested
// yield targets, the headline reduction factors, and the quality-aware
// yield at the Section 4 criterion MSE < MSETarget.
func (r Fig5Result) YieldTable() *Table {
	header := []string{"scheme"}
	for _, q := range r.Params.YieldTargets {
		header = append(header, fmt.Sprintf("MSE@yield %.3g", q))
	}
	header = append(header,
		fmt.Sprintf("reduction vs none @%.3g", r.Params.YieldTargets[0]),
		fmt.Sprintf("yield@MSE<%.0e", r.Params.MSETarget))
	t := &Table{
		Title:  "Fig. 5 derived - MSE tolerated at yield targets and quality-aware yield",
		Header: header,
		Notes: []string{
			"Section 4 claims: >=30x MSE reduction at fixed yield even for nFM=1; 99.9999% yield at MSE<1e6 for nFM=1",
		},
	}
	var none yield.CDFResult
	for i, a := range r.Arms {
		if a == ProtNone {
			none = r.CDFs[i]
		}
	}
	for i, a := range r.Arms {
		row := []string{a.String()}
		for _, q := range r.Params.YieldTargets {
			row = append(row, fmt.Sprintf("%.3e", r.CDFs[i].MSEAtYield(q)))
		}
		red := yield.ReductionAtYield(r.CDFs[i], none, r.Params.YieldTargets[0])
		if a == ProtNone {
			row = append(row, "1.0x")
		} else {
			row = append(row, fmt.Sprintf("%.1fx", red))
		}
		row = append(row, fmt.Sprintf("%.6f", r.CDFs[i].YieldAtMSE(r.Params.MSETarget)))
		t.AddRow(row...)
	}
	return t
}
