// Package exp contains one runner per exhibit of the paper's evaluation —
// Fig. 2 (cell failure vs VDD), Fig. 4 (error magnitude per fault
// position), Fig. 5 (MSE CDF), Fig. 6 (hardware overhead), Fig. 7a-c
// (application quality CDFs), and Table 1 (applications summary) — plus
// the table rendering shared by cmd/faultmem, the root benchmarks, and
// EXPERIMENTS.md.
package exp

import (
	"fmt"

	"faultmem/internal/core"
	"faultmem/internal/fault"
	"faultmem/internal/mem"
	"faultmem/internal/yield"
)

// Protection enumerates the memory protection arms compared throughout
// the evaluation.
type Protection int

const (
	// ProtNone is the unprotected faulty memory.
	ProtNone Protection = iota
	// ProtECC is full-word H(39,32) SECDED.
	ProtECC
	// ProtPECC is H(22,16) priority ECC on the 16 MSBs.
	ProtPECC
	// ProtShuffle1..ProtShuffle5 are the bit-shuffling configurations.
	ProtShuffle1
	ProtShuffle2
	ProtShuffle3
	ProtShuffle4
	ProtShuffle5
)

// AllProtections returns every arm in presentation order.
func AllProtections() []Protection {
	return []Protection{
		ProtNone,
		ProtShuffle1, ProtShuffle2, ProtShuffle3, ProtShuffle4, ProtShuffle5,
		ProtPECC, ProtECC,
	}
}

// String returns the scheme name used in figures.
func (p Protection) String() string {
	switch p {
	case ProtNone:
		return "No Correction"
	case ProtECC:
		return "H(39,32) ECC"
	case ProtPECC:
		return "H(22,16) P-ECC"
	case ProtShuffle1, ProtShuffle2, ProtShuffle3, ProtShuffle4, ProtShuffle5:
		return fmt.Sprintf("nFM=%d-Bit", p.NFM())
	default:
		return fmt.Sprintf("protection(%d)", int(p))
	}
}

// NFM returns the FM-LUT width of a shuffling arm (0 for non-shuffling
// arms).
func (p Protection) NFM() int {
	if p >= ProtShuffle1 && p <= ProtShuffle5 {
		return int(p-ProtShuffle1) + 1
	}
	return 0
}

// Build constructs the functional memory of this arm over rows words
// with the given data-geometry fault map.
func (p Protection) Build(rows int, fm fault.Map) (mem.Word32, error) {
	switch p {
	case ProtNone:
		return mem.NewRaw(rows, fm)
	case ProtECC:
		return mem.NewECC(rows, fm, nil)
	case ProtPECC:
		return mem.NewPECC(rows, fm, nil)
	default:
		if n := p.NFM(); n > 0 {
			return core.NewShuffled(core.Config{Width: 32, NFM: n}, rows, fm)
		}
		return nil, fmt.Errorf("exp: unknown protection %d", int(p))
	}
}

// ID returns the typed scheme identifier of this arm — the canonical
// currency shared by the CLIs, the registry, and the public facade.
func (p Protection) ID() yield.SchemeID {
	switch p {
	case ProtNone:
		return yield.SchemeNone
	case ProtECC:
		return yield.SchemeECC
	case ProtPECC:
		return yield.SchemePECC
	default:
		if n := p.NFM(); n > 0 {
			return yield.SchemeNFM1 + yield.SchemeID(n-1)
		}
		panic(fmt.Sprintf("exp: unknown protection %d", int(p)))
	}
}

// ProtectionOf maps a scheme identifier to the protection arm.
func ProtectionOf(id yield.SchemeID) (Protection, error) {
	switch id {
	case yield.SchemeNone:
		return ProtNone, nil
	case yield.SchemeECC:
		return ProtECC, nil
	case yield.SchemePECC:
		return ProtPECC, nil
	default:
		if n := id.NFM(); n > 0 {
			return ProtShuffle1 + Protection(n-1), nil
		}
		return 0, fmt.Errorf("exp: invalid scheme id %d", int(id))
	}
}

// YieldScheme returns the residual-error model of this arm for the
// Eq. (6) MSE analysis.
func (p Protection) YieldScheme() yield.Scheme { return p.ID().Scheme() }

// ParseProtection maps a canonical scheme name ("none", "ecc", "pecc",
// "nfm1".."nfm5") to the arm, riding yield.ParseScheme.
func ParseProtection(s string) (Protection, error) {
	id, err := yield.ParseScheme(s)
	if err != nil {
		return 0, err
	}
	return ProtectionOf(id)
}
