// Package exp contains one runner per exhibit of the paper's evaluation —
// Fig. 2 (cell failure vs VDD), Fig. 4 (error magnitude per fault
// position), Fig. 5 (MSE CDF), Fig. 6 (hardware overhead), Fig. 7a-c
// (application quality CDFs), and Table 1 (applications summary) — plus
// the table rendering shared by cmd/faultmem, the root benchmarks, and
// EXPERIMENTS.md.
package exp

import (
	"fmt"

	"faultmem/internal/core"
	"faultmem/internal/fault"
	"faultmem/internal/mem"
	"faultmem/internal/yield"
)

// Protection enumerates the memory protection arms compared throughout
// the evaluation.
type Protection int

const (
	// ProtNone is the unprotected faulty memory.
	ProtNone Protection = iota
	// ProtECC is full-word H(39,32) SECDED.
	ProtECC
	// ProtPECC is H(22,16) priority ECC on the 16 MSBs.
	ProtPECC
	// ProtShuffle1..ProtShuffle5 are the bit-shuffling configurations.
	ProtShuffle1
	ProtShuffle2
	ProtShuffle3
	ProtShuffle4
	ProtShuffle5
)

// AllProtections returns every arm in presentation order.
func AllProtections() []Protection {
	return []Protection{
		ProtNone,
		ProtShuffle1, ProtShuffle2, ProtShuffle3, ProtShuffle4, ProtShuffle5,
		ProtPECC, ProtECC,
	}
}

// String returns the scheme name used in figures.
func (p Protection) String() string {
	switch p {
	case ProtNone:
		return "No Correction"
	case ProtECC:
		return "H(39,32) ECC"
	case ProtPECC:
		return "H(22,16) P-ECC"
	case ProtShuffle1, ProtShuffle2, ProtShuffle3, ProtShuffle4, ProtShuffle5:
		return fmt.Sprintf("nFM=%d-Bit", p.NFM())
	default:
		return fmt.Sprintf("protection(%d)", int(p))
	}
}

// NFM returns the FM-LUT width of a shuffling arm (0 for non-shuffling
// arms).
func (p Protection) NFM() int {
	if p >= ProtShuffle1 && p <= ProtShuffle5 {
		return int(p-ProtShuffle1) + 1
	}
	return 0
}

// Build constructs the functional memory of this arm over rows words
// with the given data-geometry fault map.
func (p Protection) Build(rows int, fm fault.Map) (mem.Word32, error) {
	switch p {
	case ProtNone:
		return mem.NewRaw(rows, fm)
	case ProtECC:
		return mem.NewECC(rows, fm, nil)
	case ProtPECC:
		return mem.NewPECC(rows, fm, nil)
	default:
		if n := p.NFM(); n > 0 {
			return core.NewShuffled(core.Config{Width: 32, NFM: n}, rows, fm)
		}
		return nil, fmt.Errorf("exp: unknown protection %d", int(p))
	}
}

// YieldScheme returns the residual-error model of this arm for the
// Eq. (6) MSE analysis.
func (p Protection) YieldScheme() yield.Scheme {
	switch p {
	case ProtNone:
		return yield.Unprotected{}
	case ProtECC:
		return yield.FullECC{}
	case ProtPECC:
		return yield.PriorityECC{}
	default:
		if n := p.NFM(); n > 0 {
			return yield.NewShuffled(n)
		}
		panic(fmt.Sprintf("exp: unknown protection %d", int(p)))
	}
}

// ParseProtection maps a CLI name ("none", "ecc", "pecc", "nfm1".."nfm5")
// to the arm.
func ParseProtection(s string) (Protection, error) {
	switch s {
	case "none":
		return ProtNone, nil
	case "ecc":
		return ProtECC, nil
	case "pecc":
		return ProtPECC, nil
	case "nfm1", "nfm2", "nfm3", "nfm4", "nfm5":
		return ProtShuffle1 + Protection(s[3]-'1'), nil
	default:
		return 0, fmt.Errorf("exp: unknown protection %q (want none|ecc|pecc|nfm1..nfm5)", s)
	}
}
