package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"faultmem/internal/core"
	"faultmem/internal/fault"
	"faultmem/internal/hw"
	"faultmem/internal/mc"
	"faultmem/internal/mem"
	"faultmem/internal/sram"
	"faultmem/internal/stats"
)

// This file holds the ablation studies of DESIGN.md §6 — experiments
// beyond the paper's evaluation that quantify its design decisions:
// the multi-fault FM-LUT policy, the FM-LUT realization trade-off
// (§5.1's remark), and the scheme's behaviour under transient faults it
// was never designed to mitigate.

// AblationMultiFaultRow compares the FM-LUT selection policies on rows
// holding k faults: the exhaustive BestX search versus the paper's
// single-fault rule applied to the most significant fault.
type AblationMultiFaultRow struct {
	NFM          int
	FaultsPerRow int
	MeanMSEBest  float64 // mean per-row squared-error sum, BestX
	MeanMSEPaper float64 // same under the paper-rule extension
	PaperPenalty float64 // MeanMSEPaper / MeanMSEBest
}

// MultiFaultParams configures the FM-LUT multi-fault policy study.
type MultiFaultParams struct {
	// Seed drives the per-(nFM, k) RNG streams.
	Seed int64
	// Trials is the Monte-Carlo row count per (nFM, faults-per-row) point.
	Trials int
}

// DefaultMultiFaultParams matches the CLI's historical defaults.
func DefaultMultiFaultParams() MultiFaultParams { return MultiFaultParams{Seed: 5, Trials: 5000} }

// AblationMultiFault runs the policy comparison: for each nFM and
// faults-per-row count, Monte-Carlo rows with k distinct faulty columns
// are scored under both policies. Every (nFM, k) point is one shard of
// the mc engine — its own deterministic RNG stream, evaluated in
// parallel, assembled in sweep order.
func AblationMultiFault(seed int64, trials int) []AblationMultiFaultRow {
	rows, err := AblationMultiFaultEnv(mc.Env{}, MultiFaultParams{Seed: seed, Trials: trials})
	if err != nil {
		// Unreachable: the zero Env's background context never cancels.
		panic(err)
	}
	return rows
}

// AblationMultiFaultEnv is AblationMultiFault under an execution
// environment: identical rows when the context stays live, ctx.Err()
// when cancelled mid-study.
func AblationMultiFaultEnv(env mc.Env, p MultiFaultParams) ([]AblationMultiFaultRow, error) {
	if p.Trials < 1 {
		panic("exp: non-positive trial count")
	}
	trials := p.Trials
	type combo struct{ nfm, k int }
	var combos []combo
	for nfm := 1; nfm <= 5; nfm++ {
		for _, k := range []int{2, 3, 4} {
			combos = append(combos, combo{nfm, k})
		}
	}
	return mc.RunEnv(env, 0, len(combos), p.Seed, func(i int, rng *rand.Rand) AblationMultiFaultRow {
		c := combos[i]
		cfg := core.Config{Width: 32, NFM: c.nfm}
		sumBest, sumPaper := 0.0, 0.0
		for t := 0; t < trials; t++ {
			cols := stats.SampleDistinct(rng, 32, c.k)
			sumBest += rowMSE(cfg.ResidualPositions(cols))
			sumPaper += rowMSE(cfg.ResidualPositionsPaperRule(cols))
		}
		return AblationMultiFaultRow{
			NFM:          c.nfm,
			FaultsPerRow: c.k,
			MeanMSEBest:  sumBest / float64(trials),
			MeanMSEPaper: sumPaper / float64(trials),
			PaperPenalty: sumPaper / sumBest,
		}
	})
}

func rowMSE(positions []int) float64 {
	s := 0.0
	for _, b := range positions {
		m := math.Ldexp(1, b)
		s += m * m
	}
	return s
}

// AblationMultiFaultTable renders the policy comparison.
func AblationMultiFaultTable(rows []AblationMultiFaultRow) *Table {
	t := &Table{
		Title:  "Ablation - FM-LUT policy on multi-fault rows (BestX search vs paper single-fault rule)",
		Header: []string{"nFM", "faults/row", "mean sq.err (BestX)", "mean sq.err (paper rule)", "penalty"},
		Notes: []string{
			"the paper assumes one fault per word; this quantifies how much the exhaustive",
			"2^nFM-entry search buys when that assumption breaks (penalty = paper/best)",
		},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.NFM),
			fmt.Sprintf("%d", r.FaultsPerRow),
			fmt.Sprintf("%.4g", r.MeanMSEBest),
			fmt.Sprintf("%.4g", r.MeanMSEPaper),
			fmt.Sprintf("%.2fx", r.PaperPenalty),
		)
	}
	return t
}

// AblationLUTTable renders the §5.1 FM-LUT realization trade-off: SRAM
// columns (read-before-write on the write path) versus a register file
// (no write penalty, flop area).
func AblationLUTTable(rows int) *Table {
	lib := hw.Lib28nm()
	macro := hw.Macro28nm(rows)
	t := &Table{
		Title: fmt.Sprintf("Ablation - FM-LUT realization (%d-row macro): columns vs register file", rows),
		Header: []string{"nFM", "LUT area cols [um^2]", "LUT area regfile [um^2]",
			"write delay cols [ps]", "write delay regfile [ps]", "read delay [ps]"},
		Notes: []string{
			"SRAM-column LUT serializes a LUT read before every write (paper Section 5.1);",
			"a register file removes that penalty at a large flop-area cost for deep macros",
		},
	}
	for _, r := range hw.LUTAblation(lib, macro) {
		t.AddRow(
			fmt.Sprintf("%d", r.NFM),
			fmt.Sprintf("%.0f", r.ColumnArea),
			fmt.Sprintf("%.0f", r.RegFileArea),
			fmt.Sprintf("%.0f", r.ColumnWriteDelay),
			fmt.Sprintf("%.0f", r.RegFileWriteDelay),
			fmt.Sprintf("%.0f", r.ReadDelay),
		)
	}
	return t
}

// AblationTransientRow measures one scheme's mean observed read MSE under
// combined persistent and transient (soft-error) faults.
type AblationTransientRow struct {
	Scheme        Protection
	TransientRate float64
	MeanMSE       float64
}

// AblationTransient runs the functional soft-error study: memories carry
// a persistent fault map at pcell plus per-read transient flips at each
// rate; all-zero data is written and re-read, and the observed flip
// pattern is scored like Eq. (6). Bit-shuffling mitigates only the
// persistent part (the FM-LUT cannot know where a soft error will
// strike), while SECDED corrects any single error per word regardless of
// origin — the boundary of the paper's approach.
func AblationTransient(seed int64, rows int, pcell float64, rates []float64, readsPerCell int) ([]AblationTransientRow, error) {
	return AblationTransientEnv(mc.Env{}, TransientParams{
		Seed: seed, Rows: rows, Pcell: pcell, Rates: rates, Reads: readsPerCell,
	})
}

// TransientParams configures the soft-error boundary study.
type TransientParams struct {
	// Seed drives the persistent fault map and the per-point streams.
	Seed int64
	// Rows is the macro depth.
	Rows int
	// Pcell is the persistent fault probability.
	Pcell float64
	// Rates are the per-read transient flip rates swept (0 = none).
	Rates []float64
	// Reads is the number of read passes per row.
	Reads int
}

// DefaultTransientParams matches the CLI's historical defaults.
func DefaultTransientParams() TransientParams {
	return TransientParams{Seed: 5, Rows: 1024, Pcell: 1e-4, Rates: []float64{0, 1e-5, 1e-4}, Reads: 8}
}

// AblationTransientEnv is AblationTransient under an execution
// environment: identical rows when the context stays live, ctx.Err()
// when cancelled mid-study.
func AblationTransientEnv(env mc.Env, p TransientParams) ([]AblationTransientRow, error) {
	seed, rows, pcell, rates, readsPerCell := p.Seed, p.Rows, p.Pcell, p.Rates, p.Reads
	if rows < 1 || readsPerCell < 1 {
		return nil, fmt.Errorf("exp: bad transient ablation params")
	}
	arms := []Protection{ProtNone, ProtShuffle5, ProtPECC, ProtECC}
	// One persistent fault map shared by every arm and rate, so the rows
	// differ only in the scheme and the soft-error intensity. Each
	// (arm, rate) point then runs as its own shard of the mc engine —
	// independent functional memories, evaluated in parallel.
	persistent := fault.GeneratePcell(stats.Derive(seed, 0), rows, 32, pcell, fault.Flip)
	type pointOut struct {
		row AblationTransientRow
		err error
	}
	outs, runErr := mc.RunEnv(env, 0, len(arms)*len(rates), stats.DeriveSeed(seed, 1000),
		func(i int, rng *rand.Rand) pointOut {
			arm, rate := arms[i/len(rates)], rates[i%len(rates)]
			m, err := arm.Build(rows, persistent)
			if err != nil {
				return pointOut{err: err}
			}
			if rate > 0 {
				arrayOf(m).SetTransient(rate, rng)
			}
			for r := 0; r < rows; r++ {
				m.Write(r, 0)
			}
			sum := 0.0
			for pass := 0; pass < readsPerCell; pass++ {
				for r := 0; r < rows; r++ {
					got := uint64(m.Read(r))
					for v := got; v != 0; v &= v - 1 {
						b := trailingZeros64(v)
						e := math.Ldexp(1, b)
						sum += e * e
					}
				}
			}
			return pointOut{row: AblationTransientRow{
				Scheme:        arm,
				TransientRate: rate,
				MeanMSE:       sum / float64(rows*readsPerCell),
			}}
		})
	if runErr != nil {
		return nil, runErr
	}
	out := make([]AblationTransientRow, 0, len(outs))
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		out = append(out, o.row)
	}
	return out, nil
}

// arrayOf reaches the underlying bit-cell array of any protection arm.
func arrayOf(m mem.Word32) *sram.Array {
	switch v := m.(type) {
	case *mem.Raw:
		return v.Array()
	case *mem.ECC:
		return v.Array()
	case *mem.PECC:
		return v.Array()
	case *core.Shuffled:
		return v.Array()
	default:
		panic(fmt.Sprintf("exp: no array access for %T", m))
	}
}

func trailingZeros64(v uint64) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// AblationTransientTable renders the soft-error study.
func AblationTransientTable(rows []AblationTransientRow, pcell float64) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation - transient (soft) errors on top of persistent faults (Pcell=%.0e)", pcell),
		Header: []string{"scheme", "transient rate", "mean observed MSE per read"},
		Notes: []string{
			"bit-shuffling mitigates only persistent faults (the BIST-programmed FM-LUT cannot",
			"target soft errors); SECDED corrects one error per word regardless of origin -",
			"the boundary of the paper's approach, made explicit",
			"interaction: a persistent fault consumes SECDED's single-error budget, so a",
			"transient striking an already-faulty word becomes uncorrectable - ECC's advantage",
			"erodes exactly where the fault density is highest",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Scheme.String(),
			fmt.Sprintf("%.0e", r.TransientRate),
			fmt.Sprintf("%.4g", r.MeanMSE))
	}
	return t
}

// LUTParams configures the FM-LUT realization trade-off exhibit.
type LUTParams struct {
	// Rows is the macro depth the LUT serves.
	Rows int
}

// DefaultLUTParams uses the 16 KB macro.
func DefaultLUTParams() LUTParams { return LUTParams{Rows: 4096} }

// multiFaultExperiment adapts the FM-LUT policy study to the registry.
type multiFaultExperiment struct{}

func (multiFaultExperiment) Name() string { return "ablate-multifault" }
func (multiFaultExperiment) Description() string {
	return "FM-LUT policy on multi-fault rows: BestX vs paper rule"
}
func (multiFaultExperiment) DefaultParams() any { return DefaultMultiFaultParams() }

func (e multiFaultExperiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[MultiFaultParams](r, e)
	if err != nil {
		return nil, err
	}
	p.Seed = r.seedOr(p.Seed)
	if r.quick() && p.Trials > 1000 {
		p.Trials = 1000
	}
	rows, err := AblationMultiFaultEnv(r.env(ctx, e.Name(), ""), p)
	if err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: p, Tables: []*Table{AblationMultiFaultTable(rows)}}, nil
}

// lutExperiment adapts the LUT realization trade-off to the registry.
type lutExperiment struct{}

func (lutExperiment) Name() string { return "ablate-lut" }
func (lutExperiment) Description() string {
	return "FM-LUT realization trade-off: SRAM columns vs register file"
}
func (lutExperiment) DefaultParams() any { return DefaultLUTParams() }

func (e lutExperiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[LUTParams](r, e)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: p, Tables: []*Table{AblationLUTTable(p.Rows)}}, nil
}

// transientExperiment adapts the soft-error boundary study to the
// registry.
type transientExperiment struct{}

func (transientExperiment) Name() string { return "ablate-transient" }
func (transientExperiment) Description() string {
	return "soft errors on top of persistent faults (scheme boundary)"
}
func (transientExperiment) DefaultParams() any { return DefaultTransientParams() }

func (e transientExperiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[TransientParams](r, e)
	if err != nil {
		return nil, err
	}
	p.Seed = r.seedOr(p.Seed)
	if r.quick() && p.Rows > 256 {
		p.Rows = 256
	}
	rows, err := AblationTransientEnv(r.env(ctx, e.Name(), ""), p)
	if err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: p, Tables: []*Table{AblationTransientTable(rows, p.Pcell)}}, nil
}
