package exp

import (
	"context"
	"fmt"

	"faultmem/internal/dataset"
	"faultmem/internal/ml"
)

// Table1Params configures the applications-and-datasets summary.
type Table1Params struct {
	// Seed drives the synthetic dataset generation.
	Seed int64
}

// DefaultTable1Params uses the harness's published seed.
func DefaultTable1Params() Table1Params { return Table1Params{Seed: 3} }

// Table1Row is one benchmark of the paper's Table 1, extended with the
// synthetic stand-in's shape and measured fault-free metric.
type Table1Row struct {
	Class       string
	Algorithm   string
	Dataset     string
	Metric      string
	Samples     int
	Features    int
	CleanMetric float64
}

// Table1 regenerates the applications-and-datasets summary, measuring
// the fault-free metric of each benchmark on its synthetic dataset.
func Table1(seed int64) ([]Table1Row, error) {
	rows := []Table1Row{
		{Class: "Regression", Algorithm: "Elasticnet", Dataset: "Wine Quality [18] (synthetic)", Metric: "R^2"},
		{Class: "Dim. Reduction", Algorithm: "PCA", Dataset: "Madelon [19] (synthetic)", Metric: "Explained Variance"},
		{Class: "Classification", Algorithm: "KNN", Dataset: "Activity Recognition [20] (synthetic)", Metric: "Score"},
	}

	wine := dataset.Wine(seed)
	trainW, testW := wine.Split(0.8, seed+1)
	en := ml.NewElasticNet()
	if err := en.Fit(trainW.X, trainW.Y); err != nil {
		return nil, err
	}
	rows[0].Samples, rows[0].Features = wine.Samples(), wine.Features()
	rows[0].CleanMetric = en.Score(testW.X, testW.Y)

	mad := dataset.Madelon(seed, dataset.DefaultMadelon())
	trainM, testM := mad.Split(0.8, seed+1)
	pca := ml.NewPCA(10)
	if err := pca.Fit(trainM.X); err != nil {
		return nil, err
	}
	rows[1].Samples, rows[1].Features = mad.Samples(), mad.Features()
	rows[1].CleanMetric = pca.ExplainedVarianceOn(testM.X)

	har := dataset.HAR(seed, dataset.DefaultHAR())
	trainH, testH := har.Split(0.8, seed+1)
	knn := ml.NewKNN(5)
	if err := knn.Fit(trainH.X, trainH.Y); err != nil {
		return nil, err
	}
	rows[2].Samples, rows[2].Features = har.Samples(), har.Features()
	rows[2].CleanMetric = knn.Score(testH.X, testH.Y)

	return rows, nil
}

// Table1Table renders the summary.
func Table1Table(rows []Table1Row) *Table {
	t := &Table{
		Title:  "Table 1 - evaluation applications and datasets",
		Header: []string{"class", "algorithm", "dataset", "metric", "samples", "features", "fault-free metric"},
		Notes: []string{
			"datasets are seeded synthetic stand-ins matching the UCI originals' dimensionality and character (DESIGN.md substitution table)",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Class, r.Algorithm, r.Dataset, r.Metric,
			fmt.Sprintf("%d", r.Samples),
			fmt.Sprintf("%d", r.Features),
			fmt.Sprintf("%.4f", r.CleanMetric))
	}
	return t
}

// table1Experiment adapts the summary to the registry.
type table1Experiment struct{}

func (table1Experiment) Name() string { return "table1" }
func (table1Experiment) Description() string {
	return "evaluation applications and datasets (Table 1)"
}
func (table1Experiment) DefaultParams() any { return DefaultTable1Params() }

func (e table1Experiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	p, err := runnerParams[Table1Params](r, e)
	if err != nil {
		return nil, err
	}
	p.Seed = r.seedOr(p.Seed)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows, err := Table1(p.Seed)
	if err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name(), Params: p, Tables: []*Table{Table1Table(rows)}}, nil
}
