package exp

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"faultmem/internal/fault"
	"faultmem/internal/memstore"
	"faultmem/internal/stats"
	"faultmem/internal/workload"
)

// newFig7TestRunner builds the per-shard trial runner the Fig. 7 engine
// uses, for white-box perf tests.
func newFig7TestRunner(p Fig7Params, inst workload.Instance) *workload.TrialRunner {
	return workload.NewTrialRunner(inst, workload.Config{
		Name:  strings.ToLower(p.App.String()),
		Rows:  p.Rows,
		Pcell: p.Pcell,
		Arms:  workloadArms(Fig7Arms()),
	})
}

// TestQualityAtYieldQuantileConvention pins the ceil(level*n)-1
// empirical-quantile fix: the level-quantile is the smallest sample with
// Pr(quality <= q) >= level, matching stats.WeightedCDF.Quantile — not
// the sample one position above it.
func TestQualityAtYieldQuantileConvention(t *testing.T) {
	arm := Fig7Arm{Qualities: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}}
	cases := []struct {
		level, want float64
	}{
		{0.10, 0.1}, // the old int(level*n) indexing read 0.2 here
		{0.50, 0.5},
		{0.55, 0.6},
		{1.00, 1.0},
	}
	for _, c := range cases {
		if got := arm.QualityAtYield(c.level); got != c.want {
			t.Errorf("QualityAtYield(%g) = %g, want %g", c.level, got, c.want)
		}
	}

	// The 60-trial case from the bug report: q10 must be the 6th-smallest
	// sample (index 5), not the 7th.
	qs := make([]float64, 60)
	for i := range qs {
		qs[i] = float64(i + 1)
	}
	arm60 := Fig7Arm{Qualities: qs}
	if got := arm60.QualityAtYield(0.10); got != 6 {
		t.Errorf("q10 of 60 trials = sample %g, want 6 (index 5)", got)
	}

	// Cross-check the convention against stats.WeightedCDF on random
	// samples and levels.
	rng := rand.New(rand.NewSource(9))
	for rep := 0; rep < 20; rep++ {
		n := 1 + rng.Intn(40)
		sample := make([]float64, n)
		var cdf stats.WeightedCDF
		for i := range sample {
			sample[i] = rng.Float64()
			cdf.Add(sample[i], 1)
		}
		a := Fig7Arm{Qualities: append([]float64(nil), sample...)}
		sortFloats(a.Qualities)
		level := rng.Float64()
		if level == 0 {
			level = 0.5
		}
		if got, want := a.QualityAtYield(level), cdf.Quantile(level); got != want {
			t.Fatalf("n=%d level=%g: QualityAtYield %g != WeightedCDF.Quantile %g", n, level, got, want)
		}
	}
}

func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestCDFAtEmptyArm pins the 0/0 fix: an empty arm has no mass below any
// threshold, so CDFAt reports 0 instead of NaN (QualityAtYield keeps its
// panic-on-empty contract).
func TestCDFAtEmptyArm(t *testing.T) {
	var arm Fig7Arm
	if got := arm.CDFAt(0.5); got != 0 || math.IsNaN(got) {
		t.Errorf("CDFAt on empty arm = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("QualityAtYield on empty arm did not panic")
		}
	}()
	arm.QualityAtYield(0.5)
}

// TestFig7TrialWarmAllocs pins the workspace payoff end to end: a warm
// Fig. 7 trial (fault map + 4 arms + round-trip + retrain + score) must
// run with ~10 allocations, down from several hundred before the
// reusable memories and ml fit workspaces (>90% fewer).
func TestFig7TrialWarmAllocs(t *testing.T) {
	p := DefaultFig7Params(AppElasticnet)
	w, err := p.prepare()
	if err != nil {
		t.Fatal(err)
	}
	seedBase := stats.DeriveSeed(p.Seed, 1000)
	runner := newFig7TestRunner(p, w)
	var buf []float64
	for trial := 0; trial < 3; trial++ { // warm up every arm's scratch
		if buf, err = runner.RunTrial(seedBase, trial, buf[:0]); err != nil {
			t.Fatal(err)
		}
	}
	trial := 3
	allocs := testing.AllocsPerRun(5, func() {
		var err error
		buf, err = runner.RunTrial(seedBase, trial, buf[:0])
		if err != nil {
			t.Error(err)
		}
		trial++
	})
	if allocs > 40 {
		t.Errorf("warm Fig7 trial allocates %v times, want <= 40 (was ~680 before workspaces)", allocs)
	}
}

// benchFig7Trial measures ONE Monte-Carlo trial (fault map + all four
// protection arms + round-trip + model retrain + score), the unit the
// Trials budget scales by. warm=true runs the engine's actual per-shard
// path (workload.TrialRunner: reused memories, round-trip scratch, and
// ML fit workspaces); warm=false rebuilds the memories, the quantized
// word cache, and the fit buffers every trial — the pre-workspace
// behaviour — for the before/after allocation comparison.
func benchFig7Trial(b *testing.B, app App, warm bool) {
	p := DefaultFig7Params(app)
	w, err := p.prepare()
	if err != nil {
		b.Fatal(err)
	}
	seedBase := stats.DeriveSeed(p.Seed, 1000)
	b.ReportAllocs()
	if warm {
		runner := newFig7TestRunner(p, w)
		var buf []float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if buf, err = runner.RunTrial(seedBase, i, buf[:0]); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	cells := p.Rows * 32
	arms := Fig7Arms()
	sink := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := stats.Derive(seedBase, int64(i))
		n := 0
		for n == 0 {
			n = stats.SampleBinomial(rng, cells, p.Pcell)
		}
		fm := fault.GenerateCount(rng, p.Rows, 32, n, fault.Flip)
		for _, arm := range arms {
			m, err := arm.Build(p.Rows, fm)
			if err != nil {
				b.Fatal(err)
			}
			ws := workload.Workspace{Codec: memstore.DefaultCodec(), Mem: m}
			w.StoreOn(&ws)
			q, err := w.RunTrial(&ws, nil)
			if err != nil {
				b.Fatal(err)
			}
			sink += q
		}
	}
	_ = sink
}

// BenchmarkFig7Trial* pin the per-trial cost of the Fig. 7 engine with
// warm per-shard workspaces; the *Fresh variants rebuild memories and
// ml fit buffers per trial for comparison.
func BenchmarkFig7TrialElasticnet(b *testing.B) { benchFig7Trial(b, AppElasticnet, true) }
func BenchmarkFig7TrialPCA(b *testing.B)        { benchFig7Trial(b, AppPCA, true) }
func BenchmarkFig7TrialKNN(b *testing.B)        { benchFig7Trial(b, AppKNN, true) }

// BenchmarkFig7TrialPCAPaper runs the warm PCA trial at the paper's
// full 500-feature Madelon geometry — the workload whose O(d^3) Jacobi
// sweeps motivated the top-k subspace eigensolver.
func BenchmarkFig7TrialPCAPaper(b *testing.B) {
	p := DefaultFig7Params(AppPCA)
	p.MadelonPaperSize = true
	w, err := p.prepare()
	if err != nil {
		b.Fatal(err)
	}
	seedBase := stats.DeriveSeed(p.Seed, 1000)
	runner := newFig7TestRunner(p, w)
	var buf []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf, err = runner.RunTrial(seedBase, i, buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7TrialElasticnetFresh(b *testing.B) { benchFig7Trial(b, AppElasticnet, false) }
func BenchmarkFig7TrialPCAFresh(b *testing.B)        { benchFig7Trial(b, AppPCA, false) }
func BenchmarkFig7TrialKNNFresh(b *testing.B)        { benchFig7Trial(b, AppKNN, false) }
