package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment exhibit: a titled grid of cells shared
// by the text, CSV, and JSON outputs of cmd/faultmem and the benchmarks.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Notes are free-text lines printed under the table (conventions,
	// sample counts, paper references).
	Notes []string `json:"notes,omitempty"`
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", max(total-2, 1))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the header and rows as CSV (title and notes become
// comment-style leading records only if includeMeta).
func (t *Table) RenderCSV(w io.Writer, includeMeta bool) error {
	cw := csv.NewWriter(w)
	if includeMeta && t.Title != "" {
		if err := cw.Write([]string{"# " + t.Title}); err != nil {
			return err
		}
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
