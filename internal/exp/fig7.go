package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"faultmem/internal/dataset"
	"faultmem/internal/fault"
	"faultmem/internal/mat"
	"faultmem/internal/mc"
	"faultmem/internal/memstore"
	"faultmem/internal/ml"
	"faultmem/internal/stats"
)

// App selects a Fig. 7 benchmark application (Table 1).
type App int

const (
	// AppElasticnet is the wine-quality regression benchmark (Fig. 7a).
	AppElasticnet App = iota
	// AppPCA is the Madelon dimensionality-reduction benchmark (Fig. 7b).
	AppPCA
	// AppKNN is the activity-recognition classification benchmark
	// (Fig. 7c).
	AppKNN
)

// String returns the benchmark name.
func (a App) String() string {
	switch a {
	case AppElasticnet:
		return "Elasticnet"
	case AppPCA:
		return "PCA"
	case AppKNN:
		return "KNN"
	default:
		return fmt.Sprintf("app(%d)", int(a))
	}
}

// Metric returns the Table 1 quality metric name of the benchmark.
func (a App) Metric() string {
	switch a {
	case AppElasticnet:
		return "R^2"
	case AppPCA:
		return "Explained Variance"
	case AppKNN:
		return "Score"
	default:
		return "?"
	}
}

// ParseApp maps a CLI name to the benchmark.
func ParseApp(s string) (App, error) {
	switch s {
	case "elasticnet":
		return AppElasticnet, nil
	case "pca":
		return AppPCA, nil
	case "knn":
		return AppKNN, nil
	default:
		return 0, fmt.Errorf("exp: unknown app %q (want elasticnet|pca|knn)", s)
	}
}

// Fig7Params configures the application-quality Monte Carlo.
type Fig7Params struct {
	App App
	// Rows is the memory macro depth (4096 = 16 KB); the training set is
	// paged through this single macro, so its fault map touches every
	// page (§5.2's "functional model of a 16KB memory").
	Rows int
	// Pcell is the bit-cell failure probability (the paper uses 1e-3 for
	// Fig. 7).
	Pcell float64
	// Trials is the Monte-Carlo sample count per protection arm. The
	// paper uses 500 samples per failure count; here each trial draws its
	// failure count from the Binomial prior directly (equal-weight
	// samples of the same mixture), so Trials plays the role of the total
	// budget.
	Trials int
	// Seed drives everything: dataset generation, split, fault maps.
	Seed int64
	// MadelonPaperSize switches the PCA benchmark to the full 500-feature
	// geometry (slow; default false uses 100 features).
	MadelonPaperSize bool
	// Workers is the goroutine count the trials run on (0 = GOMAXPROCS).
	// Each trial is its own deterministic RNG stream, so results are
	// identical for every worker count.
	Workers int
}

// DefaultFig7Params returns the published memory setup with a
// laptop-scale trial budget.
func DefaultFig7Params(app App) Fig7Params {
	return Fig7Params{App: app, Rows: 4096, Pcell: 1e-3, Trials: 60, Seed: 7}
}

// Fig7Arm is one protection scheme's quality sample.
type Fig7Arm struct {
	Scheme    Protection
	Qualities []float64 // normalized to the fault-free metric, sorted ascending
}

// CDFAt returns the empirical Pr(quality <= q): an upper-bound binary
// search for the first quality above q, so duplicate-heavy samples (many
// trials at quality 1.0) cost O(log n) instead of a linear walk.
func (a Fig7Arm) CDFAt(q float64) float64 {
	i := sort.Search(len(a.Qualities), func(i int) bool { return a.Qualities[i] > q })
	return float64(i) / float64(len(a.Qualities))
}

// QualityAtYield returns the quality floor guaranteed with probability
// 1-level: the level-quantile of the quality sample.
func (a Fig7Arm) QualityAtYield(level float64) float64 {
	if len(a.Qualities) == 0 {
		panic("exp: empty arm")
	}
	idx := int(level * float64(len(a.Qualities)))
	if idx >= len(a.Qualities) {
		idx = len(a.Qualities) - 1
	}
	return a.Qualities[idx]
}

// Mean returns the average normalized quality.
func (a Fig7Arm) Mean() float64 { return stats.Mean(a.Qualities) }

// Fig7Result bundles the benchmark run.
type Fig7Result struct {
	Params      Fig7Params
	CleanMetric float64
	Arms        []Fig7Arm
	// ECCReference notes that H(39,32) ECC is the quality-1.0 reference
	// line (§5.2: samples with more than one error per word are
	// discarded so ECC is error-free).
	ECCReference float64
}

// fig7Workload holds the prepared data and model-evaluation closure.
type fig7Workload struct {
	train, test *dataset.Dataset
	clean       float64
	evaluate    func(x *mat.Dense, y []float64) float64
}

// prepare builds the dataset, the 0.8:0.2 split, and the fault-free
// reference metric for the benchmark.
func (p Fig7Params) prepare() (*fig7Workload, error) {
	var ds *dataset.Dataset
	switch p.App {
	case AppElasticnet:
		ds = dataset.Wine(p.Seed)
	case AppPCA:
		mp := dataset.DefaultMadelon()
		if p.MadelonPaperSize {
			mp = dataset.PaperMadelon()
		}
		ds = dataset.Madelon(p.Seed, mp)
	case AppKNN:
		ds = dataset.HAR(p.Seed, dataset.DefaultHAR())
	default:
		return nil, fmt.Errorf("exp: unknown app %v", p.App)
	}
	train, test := ds.Split(0.8, p.Seed+1)

	w := &fig7Workload{train: train, test: test}
	switch p.App {
	case AppElasticnet:
		w.evaluate = func(x *mat.Dense, y []float64) float64 {
			en := ml.NewElasticNet()
			if err := en.Fit(x, y); err != nil {
				return 0
			}
			return en.Score(test.X, test.Y)
		}
	case AppPCA:
		k := 10
		w.evaluate = func(x *mat.Dense, _ []float64) float64 {
			pca := ml.NewPCA(k)
			if err := pca.Fit(x); err != nil {
				return 0
			}
			return pca.ExplainedVarianceOn(test.X)
		}
	case AppKNN:
		w.evaluate = func(x *mat.Dense, y []float64) float64 {
			knn := ml.NewKNN(5)
			if err := knn.Fit(x, y); err != nil {
				return 0
			}
			return knn.Score(test.X, test.Y)
		}
	}
	w.clean = w.evaluate(train.X, train.Y)
	if w.clean <= 0 {
		return nil, fmt.Errorf("exp: fault-free %v metric %g is not positive", p.App, w.clean)
	}
	return w, nil
}

// Fig7Arms returns the protection arms plotted in Fig. 7: no protection,
// P-ECC, and bit-shuffling with nFM=1 and nFM=2 (higher nFM curves sit on
// top of nFM=2, §5.2).
func Fig7Arms() []Protection {
	return []Protection{ProtNone, ProtPECC, ProtShuffle1, ProtShuffle2}
}

// Fig7 runs the Monte-Carlo quality experiment on the parallel engine.
// Trials are split into contiguous spans, one span per worker-sized
// shard; within a span every trial draws from its own RNG stream derived
// from (seed, trial index), so the quality samples are bit-identical for
// any worker or shard count. Each trial draws its die's fault map once
// and pushes the training set through every protection arm's memory
// (common random numbers), so the arms' quality CDFs are compared on
// identical dies and each trial pays fault generation once instead of
// once per arm. Trials sharing a shard reuse one memstore.Workspace, so
// the dataset round-trip (a dataset-sized matrix plus two flat copies
// per arm) stops dominating the per-trial allocation churn — what's left
// is model training itself.
func Fig7(p Fig7Params) (Fig7Result, error) {
	if p.Trials < 1 || p.Rows < 1 || p.Pcell <= 0 || p.Pcell >= 1 {
		return Fig7Result{}, fmt.Errorf("exp: bad Fig7 params %+v", p)
	}
	w, err := p.prepare()
	if err != nil {
		return Fig7Result{}, err
	}
	res := Fig7Result{Params: p, CleanMetric: w.clean, ECCReference: 1.0}
	codec := memstore.DefaultCodec()
	cells := p.Rows * 32
	arms := Fig7Arms()
	seedBase := stats.DeriveSeed(p.Seed, 1000)
	spans := mc.Split(p.Trials, mc.Workers(p.Workers))

	type shardOut struct {
		qs  [][]float64 // [trial in span][arm] normalized quality
		err error
	}
	outs := mc.Run(p.Workers, len(spans), seedBase,
		func(shard int, _ *rand.Rand) shardOut {
			span := spans[shard]
			out := shardOut{qs: make([][]float64, 0, span.End-span.Start)}
			var ws memstore.Workspace
			for trial := span.Start; trial < span.End; trial++ {
				rng := stats.Derive(seedBase, int64(trial))
				// Draw the die's failure count from the Eq. (4) prior,
				// conditioned on at least one failure (fault-free dies
				// have quality 1 by construction and are excluded from
				// the CDF, matching Fig. 7's curves).
				n := 0
				for n == 0 {
					n = stats.SampleBinomial(rng, cells, p.Pcell)
				}
				fm := fault.GenerateCount(rng, p.Rows, 32, n, fault.Flip)
				qs := make([]float64, len(arms))
				for ai, arm := range arms {
					m, err := arm.Build(p.Rows, fm)
					if err != nil {
						out.err = err
						return out
					}
					// xc/yc alias the shard workspace; evaluate consumes
					// them fully before the next arm refills it.
					xc, yc := codec.RoundTripDatasetInto(&ws, m, w.train.X, w.train.Y)
					qs[ai] = ml.NormalizeQuality(w.evaluate(xc, yc), w.clean)
				}
				out.qs = append(out.qs, qs)
			}
			return out
		})

	for ai, arm := range arms {
		qualities := make([]float64, 0, p.Trials)
		for _, o := range outs {
			if o.err != nil {
				return Fig7Result{}, o.err
			}
			for _, qs := range o.qs {
				qualities = append(qualities, qs[ai])
			}
		}
		sort.Float64s(qualities)
		res.Arms = append(res.Arms, Fig7Arm{Scheme: arm, Qualities: qualities})
	}
	return res, nil
}

// QualityCDFTable tabulates the per-arm quality CDF over a fixed grid —
// the curves of Fig. 7a/b/c.
func (r Fig7Result) QualityCDFTable() *Table {
	header := []string{"normalized " + r.Params.App.Metric()}
	for _, a := range r.Arms {
		header = append(header, a.Scheme.String())
	}
	header = append(header, "H(39,32) ECC")
	t := &Table{
		Title: fmt.Sprintf("Fig. 7%s - CDF of %s quality under memory failures (16KB, Pcell=%.0e)",
			map[App]string{AppElasticnet: "a", AppPCA: "b", AppKNN: "c"}[r.Params.App],
			r.Params.App, r.Params.Pcell),
		Header: header,
		Notes: []string{
			fmt.Sprintf("fault-free %s = %.4f (quality 1.0); %d Monte-Carlo trials per arm",
				r.Params.App.Metric(), r.CleanMetric, r.Params.Trials),
			"H(39,32) ECC column is the error-free reference (samples with >1 error/word discarded, Section 5.2)",
		},
	}
	for q := 0.0; q <= 1.0001; q += 0.05 {
		row := []string{fmt.Sprintf("%.2f", q)}
		for _, a := range r.Arms {
			row = append(row, fmt.Sprintf("%.3f", a.CDFAt(q)))
		}
		// ECC: all mass at quality 1.0.
		if q >= 1 {
			row = append(row, "1.000")
		} else {
			row = append(row, "0.000")
		}
		t.AddRow(row...)
	}
	return t
}

// SummaryTable reports mean quality and low quantiles per arm.
func (r Fig7Result) SummaryTable() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig. 7 summary - %s (%s)", r.Params.App, r.Params.App.Metric()),
		Header: []string{"scheme", "mean quality", "q10", "q50", "min"},
	}
	for _, a := range r.Arms {
		t.AddRow(a.Scheme.String(),
			fmt.Sprintf("%.4f", a.Mean()),
			fmt.Sprintf("%.4f", a.QualityAtYield(0.10)),
			fmt.Sprintf("%.4f", a.QualityAtYield(0.50)),
			fmt.Sprintf("%.4f", a.Qualities[0]))
	}
	t.AddRow("H(39,32) ECC", "1.0000", "1.0000", "1.0000", "1.0000")
	return t
}
