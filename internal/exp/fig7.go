package exp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"faultmem/internal/mc"
	"faultmem/internal/stats"
	"faultmem/internal/workload"
)

// App selects a Fig. 7 benchmark application (Table 1). Its values
// coincide with the first three workload.ID entries, so existing JSON
// params keep their meaning; the per-app trial logic itself lives in
// internal/workload.
type App int

const (
	// AppElasticnet is the wine-quality regression benchmark (Fig. 7a).
	AppElasticnet App = App(workload.ElasticNet)
	// AppPCA is the Madelon dimensionality-reduction benchmark (Fig. 7b).
	AppPCA App = App(workload.PCA)
	// AppKNN is the activity-recognition classification benchmark
	// (Fig. 7c).
	AppKNN App = App(workload.KNN)
)

// valid reports whether a names a Fig. 7 benchmark (the experiment runs
// only the paper's three apps; the wider workload family runs under the
// `workloads` campaign).
func (a App) valid() bool { return a >= AppElasticnet && a <= AppKNN }

// String returns the benchmark name.
func (a App) String() string {
	if !a.valid() {
		return fmt.Sprintf("app(%d)", int(a))
	}
	return workload.ID(a).Display()
}

// Metric returns the Table 1 quality metric name of the benchmark.
func (a App) Metric() string {
	if !a.valid() {
		return "?"
	}
	return workload.ID(a).Metric()
}

// ParseApp maps a CLI name to the benchmark.
func ParseApp(s string) (App, error) {
	switch s {
	case "elasticnet":
		return AppElasticnet, nil
	case "pca":
		return AppPCA, nil
	case "knn":
		return AppKNN, nil
	default:
		return 0, fmt.Errorf("exp: unknown app %q (want elasticnet|pca|knn)", s)
	}
}

// Fig7Params configures the application-quality Monte Carlo.
type Fig7Params struct {
	App App
	// Rows is the memory macro depth (4096 = 16 KB); the training set is
	// paged through this single macro, so its fault map touches every
	// page (§5.2's "functional model of a 16KB memory").
	Rows int
	// Pcell is the bit-cell failure probability (the paper uses 1e-3 for
	// Fig. 7).
	Pcell float64
	// Trials is the Monte-Carlo sample count per protection arm. The
	// paper uses 500 samples per failure count; here each trial draws its
	// failure count from the Binomial prior directly (equal-weight
	// samples of the same mixture), so Trials plays the role of the total
	// budget.
	Trials int
	// Seed drives everything: dataset generation, split, fault maps.
	Seed int64
	// MadelonPaperSize switches the PCA benchmark to the full 500-feature
	// geometry (slow; default false uses 100 features).
	MadelonPaperSize bool
	// Workers is the goroutine count the trials run on (0 = GOMAXPROCS).
	// Each trial is its own deterministic RNG stream, so results are
	// identical for every worker count.
	Workers int
}

// DefaultFig7Params returns the published memory setup at the paper's
// trial budget (500 samples per arm, §5.2). The top-k PCA eigensolver,
// Gram/active-set elastic net, and pruned KNN made warm trials cheap
// enough that the paper budget replaced the old laptop-scale default
// of 60 (`faultmem fig7 -quick` restores the fast tier).
func DefaultFig7Params(app App) Fig7Params {
	return Fig7Params{App: app, Rows: 4096, Pcell: 1e-3, Trials: 500, Seed: 7}
}

// QuickFig7Trials is the reduced -quick budget: the pre-PR default,
// kept as the fast smoke tier.
const QuickFig7Trials = 60

// Fig7Arm is one protection scheme's quality sample.
type Fig7Arm struct {
	Scheme    Protection
	Qualities []float64 // normalized to the fault-free metric, sorted ascending
}

// CDFAt returns the empirical Pr(quality <= q): an upper-bound binary
// search for the first quality above q, so duplicate-heavy samples (many
// trials at quality 1.0) cost O(log n) instead of a linear walk. An
// empty arm has no mass anywhere, so CDFAt returns 0 (not NaN).
func (a Fig7Arm) CDFAt(q float64) float64 {
	if len(a.Qualities) == 0 {
		return 0
	}
	i := sort.Search(len(a.Qualities), func(i int) bool { return a.Qualities[i] > q })
	return float64(i) / float64(len(a.Qualities))
}

// QualityAtYield returns the quality floor guaranteed with probability
// 1-level: the level-quantile of the quality sample — the smallest
// sample q with Pr(quality <= q) >= level, i.e. index ceil(level*n)-1,
// the same empirical-quantile convention (and relative tolerance) as
// stats.WeightedCDF.Quantile. It panics on an empty arm.
func (a Fig7Arm) QualityAtYield(level float64) float64 {
	n := len(a.Qualities)
	if n == 0 {
		panic("exp: empty arm")
	}
	nf := float64(n)
	idx := int(math.Ceil(level*nf-1e-12*nf)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return a.Qualities[idx]
}

// Mean returns the average normalized quality.
func (a Fig7Arm) Mean() float64 { return stats.Mean(a.Qualities) }

// Fig7Result bundles the benchmark run.
type Fig7Result struct {
	Params      Fig7Params
	CleanMetric float64
	Arms        []Fig7Arm
	// ECCReference notes that H(39,32) ECC is the quality-1.0 reference
	// line (§5.2: samples with more than one error per word are
	// discarded so ECC is error-free).
	ECCReference float64
}

// prepare resolves the benchmark's workload and builds its instance:
// dataset, 0.8:0.2 split, and the fault-free reference metric.
func (p Fig7Params) prepare() (workload.Instance, error) {
	if !p.App.valid() {
		return nil, fmt.Errorf("exp: unknown app %v", p.App)
	}
	return workload.PrepareShared(workload.ID(p.App),
		workload.Params{Seed: p.Seed, MadelonPaperSize: p.MadelonPaperSize})
}

// Fig7Arms returns the protection arms plotted in Fig. 7: no protection,
// P-ECC, and bit-shuffling with nFM=1 and nFM=2 (higher nFM curves sit on
// top of nFM=2, §5.2).
func Fig7Arms() []Protection {
	return []Protection{ProtNone, ProtPECC, ProtShuffle1, ProtShuffle2}
}

// Fig7 runs the Monte-Carlo quality experiment on the parallel engine.
// Trials are split into contiguous spans, one span per worker-sized
// shard; within a span every trial draws from its own RNG stream derived
// from (seed, trial index), so the quality samples are bit-identical for
// any worker or shard count. Each trial draws its die's fault map once
// and pushes the training set through every protection arm's memory
// (common random numbers), so the arms' quality CDFs are compared on
// identical dies and each trial pays fault generation once instead of
// once per arm. Trials sharing a shard reuse one workload.Workspace
// (dataset round-trip scratch, ML fit buffers, per-arm memories), so a
// warm trial allocates almost nothing — the generic trial loop lives in
// workload.TrialRunner.
func Fig7(p Fig7Params) (Fig7Result, error) {
	return Fig7Env(mc.Env{}, p)
}

// Fig7Env is Fig7 under an execution environment: bit-identical quality
// samples when the context stays live, ctx.Err() when it is cancelled or
// deadlined. Cancellation is polled before the (expensive) dataset
// preparation and between trials inside each shard, so even a one-shard
// run returns promptly; shard completions reach the environment's
// OnShard.
func Fig7Env(env mc.Env, p Fig7Params) (Fig7Result, error) {
	if p.Trials < 1 || p.Rows < 1 || p.Pcell <= 0 || p.Pcell >= 1 {
		return Fig7Result{}, fmt.Errorf("exp: bad Fig7 params %+v", p)
	}
	if err := env.Context().Err(); err != nil {
		return Fig7Result{}, err
	}
	inst, err := p.prepare()
	if err != nil {
		return Fig7Result{}, err
	}
	arms, _, err := runQualityArms(env, inst, qualityConfig{
		name:    strings.ToLower(p.App.String()),
		arms:    Fig7Arms(),
		rows:    p.Rows,
		pcell:   p.Pcell,
		trials:  p.Trials,
		workers: p.Workers,
		seed:    p.Seed,
	})
	if err != nil {
		return Fig7Result{}, err
	}
	return Fig7Result{Params: p, CleanMetric: inst.Clean(), ECCReference: 1.0, Arms: arms}, nil
}

// QualityCDFTable tabulates the per-arm quality CDF over a fixed grid —
// the curves of Fig. 7a/b/c.
func (r Fig7Result) QualityCDFTable() *Table {
	header := []string{"normalized " + r.Params.App.Metric()}
	for _, a := range r.Arms {
		header = append(header, a.Scheme.String())
	}
	header = append(header, "H(39,32) ECC")
	t := &Table{
		Title: fmt.Sprintf("Fig. 7%s - CDF of %s quality under memory failures (16KB, Pcell=%.0e)",
			map[App]string{AppElasticnet: "a", AppPCA: "b", AppKNN: "c"}[r.Params.App],
			r.Params.App, r.Params.Pcell),
		Header: header,
		Notes: []string{
			fmt.Sprintf("fault-free %s = %.4f (quality 1.0); %d Monte-Carlo trials per arm",
				r.Params.App.Metric(), r.CleanMetric, r.Params.Trials),
			"H(39,32) ECC column is the error-free reference (samples with >1 error/word discarded, Section 5.2)",
		},
	}
	for q := 0.0; q <= 1.0001; q += 0.05 {
		row := []string{fmt.Sprintf("%.2f", q)}
		for _, a := range r.Arms {
			row = append(row, fmt.Sprintf("%.3f", a.CDFAt(q)))
		}
		// ECC: all mass at quality 1.0.
		if q >= 1 {
			row = append(row, "1.000")
		} else {
			row = append(row, "0.000")
		}
		t.AddRow(row...)
	}
	return t
}

// SummaryTable reports mean quality and low quantiles per arm.
func (r Fig7Result) SummaryTable() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig. 7 summary - %s (%s)", r.Params.App, r.Params.App.Metric()),
		Header: []string{"scheme", "mean quality", "q10", "q50", "min"},
	}
	for _, a := range r.Arms {
		t.AddRow(a.Scheme.String(),
			fmt.Sprintf("%.4f", a.Mean()),
			fmt.Sprintf("%.4f", a.QualityAtYield(0.10)),
			fmt.Sprintf("%.4f", a.QualityAtYield(0.50)),
			fmt.Sprintf("%.4f", a.Qualities[0]))
	}
	t.AddRow("H(39,32) ECC", "1.0000", "1.0000", "1.0000", "1.0000")
	return t
}

// Fig7Apps returns the benchmark applications in paper order (7a/b/c).
func Fig7Apps() []App { return []App{AppElasticnet, AppPCA, AppKNN} }

// DefaultFig7Suite returns the registry's fig7 parameter set: one
// Fig7Params per benchmark application, in paper order.
func DefaultFig7Suite() []Fig7Params {
	apps := Fig7Apps()
	ps := make([]Fig7Params, len(apps))
	for i, a := range apps {
		ps[i] = DefaultFig7Params(a)
	}
	return ps
}

// fig7Experiment adapts the application-quality suite to the registry:
// one run covers every configured benchmark (the old `fig7 -app all`).
type fig7Experiment struct{}

func (fig7Experiment) Name() string { return "fig7" }
func (fig7Experiment) Description() string {
	return "application quality CDFs: elasticnet, PCA, KNN (Fig. 7a-c)"
}
func (fig7Experiment) DefaultParams() any { return DefaultFig7Suite() }

func (e fig7Experiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	ps, err := runnerParams[[]Fig7Params](r, e)
	if err != nil {
		return nil, err
	}
	// The override path hands back the caller's own slice; copy it so the
	// effective-params rewrite below cannot mutate caller state or let a
	// later caller mutation corrupt the returned Result.Params.
	ps = append([]Fig7Params(nil), ps...)
	res := &Result{Experiment: e.Name()}
	for i := range ps {
		ps[i].Seed = r.seedOr(ps[i].Seed)
		ps[i].Workers = r.workersOr(ps[i].Workers)
		if r.quick() && ps[i].Trials > QuickFig7Trials {
			ps[i].Trials = QuickFig7Trials
		}
	}
	res.Params = ps
	for i, p := range ps {
		stage := strings.ToLower(p.App.String())
		out, err := Fig7Env(r.env(ctx, e.Name(), stage), p)
		if err != nil {
			return nil, err
		}
		res.Tables = append(res.Tables, out.QualityCDFTable(), out.SummaryTable())
		r.note(e.Name(), "apps", i+1, len(ps))
	}
	return res, nil
}
