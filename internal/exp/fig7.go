package exp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"faultmem/internal/dataset"
	"faultmem/internal/fault"
	"faultmem/internal/mat"
	"faultmem/internal/mc"
	"faultmem/internal/mem"
	"faultmem/internal/memstore"
	"faultmem/internal/ml"
	"faultmem/internal/stats"
)

// App selects a Fig. 7 benchmark application (Table 1).
type App int

const (
	// AppElasticnet is the wine-quality regression benchmark (Fig. 7a).
	AppElasticnet App = iota
	// AppPCA is the Madelon dimensionality-reduction benchmark (Fig. 7b).
	AppPCA
	// AppKNN is the activity-recognition classification benchmark
	// (Fig. 7c).
	AppKNN
)

// String returns the benchmark name.
func (a App) String() string {
	switch a {
	case AppElasticnet:
		return "Elasticnet"
	case AppPCA:
		return "PCA"
	case AppKNN:
		return "KNN"
	default:
		return fmt.Sprintf("app(%d)", int(a))
	}
}

// Metric returns the Table 1 quality metric name of the benchmark.
func (a App) Metric() string {
	switch a {
	case AppElasticnet:
		return "R^2"
	case AppPCA:
		return "Explained Variance"
	case AppKNN:
		return "Score"
	default:
		return "?"
	}
}

// ParseApp maps a CLI name to the benchmark.
func ParseApp(s string) (App, error) {
	switch s {
	case "elasticnet":
		return AppElasticnet, nil
	case "pca":
		return AppPCA, nil
	case "knn":
		return AppKNN, nil
	default:
		return 0, fmt.Errorf("exp: unknown app %q (want elasticnet|pca|knn)", s)
	}
}

// Fig7Params configures the application-quality Monte Carlo.
type Fig7Params struct {
	App App
	// Rows is the memory macro depth (4096 = 16 KB); the training set is
	// paged through this single macro, so its fault map touches every
	// page (§5.2's "functional model of a 16KB memory").
	Rows int
	// Pcell is the bit-cell failure probability (the paper uses 1e-3 for
	// Fig. 7).
	Pcell float64
	// Trials is the Monte-Carlo sample count per protection arm. The
	// paper uses 500 samples per failure count; here each trial draws its
	// failure count from the Binomial prior directly (equal-weight
	// samples of the same mixture), so Trials plays the role of the total
	// budget.
	Trials int
	// Seed drives everything: dataset generation, split, fault maps.
	Seed int64
	// MadelonPaperSize switches the PCA benchmark to the full 500-feature
	// geometry (slow; default false uses 100 features).
	MadelonPaperSize bool
	// Workers is the goroutine count the trials run on (0 = GOMAXPROCS).
	// Each trial is its own deterministic RNG stream, so results are
	// identical for every worker count.
	Workers int
}

// DefaultFig7Params returns the published memory setup at the paper's
// trial budget (500 samples per arm, §5.2). The top-k PCA eigensolver,
// Gram/active-set elastic net, and pruned KNN made warm trials cheap
// enough that the paper budget replaced the old laptop-scale default
// of 60 (`faultmem fig7 -quick` restores the fast tier).
func DefaultFig7Params(app App) Fig7Params {
	return Fig7Params{App: app, Rows: 4096, Pcell: 1e-3, Trials: 500, Seed: 7}
}

// QuickFig7Trials is the reduced -quick budget: the pre-PR default,
// kept as the fast smoke tier.
const QuickFig7Trials = 60

// Fig7Arm is one protection scheme's quality sample.
type Fig7Arm struct {
	Scheme    Protection
	Qualities []float64 // normalized to the fault-free metric, sorted ascending
}

// CDFAt returns the empirical Pr(quality <= q): an upper-bound binary
// search for the first quality above q, so duplicate-heavy samples (many
// trials at quality 1.0) cost O(log n) instead of a linear walk. An
// empty arm has no mass anywhere, so CDFAt returns 0 (not NaN).
func (a Fig7Arm) CDFAt(q float64) float64 {
	if len(a.Qualities) == 0 {
		return 0
	}
	i := sort.Search(len(a.Qualities), func(i int) bool { return a.Qualities[i] > q })
	return float64(i) / float64(len(a.Qualities))
}

// QualityAtYield returns the quality floor guaranteed with probability
// 1-level: the level-quantile of the quality sample — the smallest
// sample q with Pr(quality <= q) >= level, i.e. index ceil(level*n)-1,
// the same empirical-quantile convention (and relative tolerance) as
// stats.WeightedCDF.Quantile. It panics on an empty arm.
func (a Fig7Arm) QualityAtYield(level float64) float64 {
	n := len(a.Qualities)
	if n == 0 {
		panic("exp: empty arm")
	}
	nf := float64(n)
	idx := int(math.Ceil(level*nf-1e-12*nf)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return a.Qualities[idx]
}

// Mean returns the average normalized quality.
func (a Fig7Arm) Mean() float64 { return stats.Mean(a.Qualities) }

// Fig7Result bundles the benchmark run.
type Fig7Result struct {
	Params      Fig7Params
	CleanMetric float64
	Arms        []Fig7Arm
	// ECCReference notes that H(39,32) ECC is the quality-1.0 reference
	// line (§5.2: samples with more than one error per word are
	// discarded so ECC is error-free).
	ECCReference float64
}

// fig7Workload holds the prepared data and model-evaluation closure.
// evaluate trains the benchmark model on (x, y) using the caller's
// ml.Workspace scratch (nil allocates fresh) and scores it on the clean
// test split. A fit error is a programming error (dimension mismatch,
// n < 2) — never fault-induced — so it propagates instead of being
// folded into the quality CDF as a silent 0.
type fig7Workload struct {
	train, test *dataset.Dataset
	clean       float64
	evaluate    func(ws *ml.Workspace, x *mat.Dense, y []float64) (float64, error)
}

// prepare builds the dataset, the 0.8:0.2 split, and the fault-free
// reference metric for the benchmark.
func (p Fig7Params) prepare() (*fig7Workload, error) {
	var ds *dataset.Dataset
	switch p.App {
	case AppElasticnet:
		ds = dataset.Wine(p.Seed)
	case AppPCA:
		mp := dataset.DefaultMadelon()
		if p.MadelonPaperSize {
			mp = dataset.PaperMadelon()
		}
		ds = dataset.Madelon(p.Seed, mp)
	case AppKNN:
		ds = dataset.HAR(p.Seed, dataset.DefaultHAR())
	default:
		return nil, fmt.Errorf("exp: unknown app %v", p.App)
	}
	train, test := ds.Split(0.8, p.Seed+1)

	w := &fig7Workload{train: train, test: test}
	switch p.App {
	case AppElasticnet:
		w.evaluate = func(ws *ml.Workspace, x *mat.Dense, y []float64) (float64, error) {
			en := ml.NewElasticNet()
			if err := en.FitIn(ws, x, y); err != nil {
				return 0, err
			}
			return en.ScoreIn(ws, test.X, test.Y), nil
		}
	case AppPCA:
		k := 10
		// One fit on the clean training set seeds the eigensolver for
		// every trial fit: the converged clean-data subspace is a pure
		// function of the workload — independent of worker count and
		// trial order — so warm-started trial fits keep bit-identical
		// sharding while the subspace iteration only has to track the
		// fault-induced covariance perturbation instead of reconverging
		// from the fixed pseudo-random basis. Shared read-only across
		// shards.
		var warm *mat.Dense
		{
			var cws ml.Workspace
			warmFit := ml.NewPCA(k)
			if err := warmFit.FitIn(&cws, train.X); err == nil {
				warm = cws.EigenSubspace()
			}
		}
		w.evaluate = func(ws *ml.Workspace, x *mat.Dense, _ []float64) (float64, error) {
			pca := ml.NewPCA(k)
			pca.Warm = warm
			if err := pca.FitIn(ws, x); err != nil {
				return 0, err
			}
			return pca.ExplainedVarianceOnIn(ws, test.X), nil
		}
	case AppKNN:
		w.evaluate = func(ws *ml.Workspace, x *mat.Dense, y []float64) (float64, error) {
			knn := ml.NewKNN(5)
			if err := knn.FitIn(ws, x, y); err != nil {
				return 0, err
			}
			return knn.ScoreIn(ws, test.X, test.Y), nil
		}
	}
	clean, err := w.evaluate(nil, train.X, train.Y)
	if err != nil {
		return nil, fmt.Errorf("exp: fault-free %v fit: %w", p.App, err)
	}
	w.clean = clean
	if w.clean <= 0 {
		return nil, fmt.Errorf("exp: fault-free %v metric %g is not positive", p.App, w.clean)
	}
	return w, nil
}

// Fig7Arms returns the protection arms plotted in Fig. 7: no protection,
// P-ECC, and bit-shuffling with nFM=1 and nFM=2 (higher nFM curves sit on
// top of nFM=2, §5.2).
func Fig7Arms() []Protection {
	return []Protection{ProtNone, ProtPECC, ProtShuffle1, ProtShuffle2}
}

// fig7TrialRunner executes warm Fig. 7 trials for one shard: it owns
// the per-shard scratch (one functional memory per arm reinstalled in
// place via mem.Resetter, the dataset round-trip workspace, and the ML
// fit workspace), so after the first trial the whole
// fault-map -> memory -> round-trip -> retrain -> score pipeline runs
// allocation-free except for fault-map generation itself.
type fig7TrialRunner struct {
	p     Fig7Params
	w     *fig7Workload
	codec memstore.Codec
	cells int
	arms  []Protection
	mems  []mem.Word32
	ws    memstore.Workspace
	mws   ml.Workspace
}

func newFig7TrialRunner(p Fig7Params, w *fig7Workload) *fig7TrialRunner {
	arms := Fig7Arms()
	r := &fig7TrialRunner{
		p:     p,
		w:     w,
		codec: memstore.DefaultCodec(),
		cells: p.Rows * 32,
		arms:  arms,
		mems:  make([]mem.Word32, len(arms)),
	}
	// The clean training set is identical across every (trial, arm) the
	// shard runs: quantize and flatten it once, so each round trip pays
	// only the fault-dependent work (writes, reads, decode).
	r.codec.EncodeDatasetInto(&r.ws, w.train.X, w.train.Y)
	return r
}

// runTrial executes one Monte-Carlo trial: it draws the die's fault map
// from the trial's own RNG stream and appends one normalized quality
// per arm to out.
func (r *fig7TrialRunner) runTrial(seedBase int64, trial int, out []float64) ([]float64, error) {
	rng := stats.Derive(seedBase, int64(trial))
	// Draw the die's failure count from the Eq. (4) prior, conditioned
	// on at least one failure (fault-free dies have quality 1 by
	// construction and are excluded from the CDF, matching Fig. 7's
	// curves).
	n := 0
	for n == 0 {
		n = stats.SampleBinomial(rng, r.cells, r.p.Pcell)
	}
	fm := fault.GenerateCount(rng, r.p.Rows, 32, n, fault.Flip)
	for ai, arm := range r.arms {
		var m mem.Word32
		var err error
		if rs, ok := r.mems[ai].(mem.Resetter); ok {
			m, err = r.mems[ai], rs.Reset(fm)
		} else {
			m, err = arm.Build(r.p.Rows, fm)
			r.mems[ai] = m
		}
		if err != nil {
			return out, fmt.Errorf("exp: %v trial %d arm %v: %w", r.p.App, trial, arm, err)
		}
		// xc/yc alias the shard workspace; evaluate consumes them fully
		// before the next arm refills it.
		xc, yc := r.codec.RoundTripCachedInto(&r.ws, m)
		q, err := r.w.evaluate(&r.mws, xc, yc)
		if err != nil {
			return out, fmt.Errorf("exp: %v trial %d arm %v: %w", r.p.App, trial, arm, err)
		}
		out = append(out, ml.NormalizeQuality(q, r.w.clean))
	}
	return out, nil
}

// Fig7 runs the Monte-Carlo quality experiment on the parallel engine.
// Trials are split into contiguous spans, one span per worker-sized
// shard; within a span every trial draws from its own RNG stream derived
// from (seed, trial index), so the quality samples are bit-identical for
// any worker or shard count. Each trial draws its die's fault map once
// and pushes the training set through every protection arm's memory
// (common random numbers), so the arms' quality CDFs are compared on
// identical dies and each trial pays fault generation once instead of
// once per arm. Trials sharing a shard reuse one memstore.Workspace for
// the dataset round-trip and one ml.Workspace for model training, so a
// warm trial allocates almost nothing: fault generation, the round-trip
// scratch, and every fit/score buffer (standardized copies, residuals,
// covariance + Jacobi scratch, KNN neighbors) are all reused across the
// shard's trials.
func Fig7(p Fig7Params) (Fig7Result, error) {
	return Fig7Env(mc.Env{}, p)
}

// Fig7Env is Fig7 under an execution environment: bit-identical quality
// samples when the context stays live, ctx.Err() when it is cancelled or
// deadlined. Cancellation is polled before the (expensive) dataset
// preparation and between trials inside each shard, so even a one-shard
// run returns promptly; shard completions reach the environment's
// OnShard.
func Fig7Env(env mc.Env, p Fig7Params) (Fig7Result, error) {
	if p.Trials < 1 || p.Rows < 1 || p.Pcell <= 0 || p.Pcell >= 1 {
		return Fig7Result{}, fmt.Errorf("exp: bad Fig7 params %+v", p)
	}
	if err := env.Context().Err(); err != nil {
		return Fig7Result{}, err
	}
	w, err := p.prepare()
	if err != nil {
		return Fig7Result{}, err
	}
	res := Fig7Result{Params: p, CleanMetric: w.clean, ECCReference: 1.0}
	arms := Fig7Arms()
	narms := len(arms)
	seedBase := stats.DeriveSeed(p.Seed, 1000)
	spans := mc.Split(p.Trials, mc.Workers(p.Workers))
	cancel := env.Done()

	outs, err := mc.RunEnv(env, p.Workers, len(spans), seedBase,
		func(shard int, _ *rand.Rand) fig7ShardOut {
			span := spans[shard]
			out := fig7ShardOut{Qs: make([]float64, 0, (span.End-span.Start)*narms)}
			runner := newFig7TrialRunner(p, w)
			for trial := span.Start; trial < span.End; trial++ {
				select {
				case <-cancel:
					// Abandon the shard; the engine reports ctx.Err() and
					// the partial samples are discarded with it.
					return out
				default:
				}
				qs, err := runner.runTrial(seedBase, trial, out.Qs)
				out.Qs = qs
				if err != nil {
					out.Err = err.Error()
					return out
				}
			}
			return out
		})
	if err != nil {
		return Fig7Result{}, err
	}

	for _, o := range outs {
		if o.Err != "" {
			return Fig7Result{}, errors.New(o.Err)
		}
	}
	for ai, arm := range arms {
		qualities := make([]float64, 0, p.Trials)
		for _, o := range outs {
			for t := 0; t*narms < len(o.Qs); t++ {
				qualities = append(qualities, o.Qs[t*narms+ai])
			}
		}
		sort.Float64s(qualities)
		res.Arms = append(res.Arms, Fig7Arm{Scheme: arm, Qualities: qualities})
	}
	return res, nil
}

// fig7ShardOut is one engine shard's result: the span's trial-major,
// arm-minor normalized qualities, plus any trial error as text. The
// fields are exported (and the error travels as a string) so the value
// gob-encodes: the sweep service can ship Fig. 7 shards to remote
// workers instead of degrading the stage to local compute via JobError
// tag-poisoning.
type fig7ShardOut struct {
	Qs  []float64
	Err string
}

// QualityCDFTable tabulates the per-arm quality CDF over a fixed grid —
// the curves of Fig. 7a/b/c.
func (r Fig7Result) QualityCDFTable() *Table {
	header := []string{"normalized " + r.Params.App.Metric()}
	for _, a := range r.Arms {
		header = append(header, a.Scheme.String())
	}
	header = append(header, "H(39,32) ECC")
	t := &Table{
		Title: fmt.Sprintf("Fig. 7%s - CDF of %s quality under memory failures (16KB, Pcell=%.0e)",
			map[App]string{AppElasticnet: "a", AppPCA: "b", AppKNN: "c"}[r.Params.App],
			r.Params.App, r.Params.Pcell),
		Header: header,
		Notes: []string{
			fmt.Sprintf("fault-free %s = %.4f (quality 1.0); %d Monte-Carlo trials per arm",
				r.Params.App.Metric(), r.CleanMetric, r.Params.Trials),
			"H(39,32) ECC column is the error-free reference (samples with >1 error/word discarded, Section 5.2)",
		},
	}
	for q := 0.0; q <= 1.0001; q += 0.05 {
		row := []string{fmt.Sprintf("%.2f", q)}
		for _, a := range r.Arms {
			row = append(row, fmt.Sprintf("%.3f", a.CDFAt(q)))
		}
		// ECC: all mass at quality 1.0.
		if q >= 1 {
			row = append(row, "1.000")
		} else {
			row = append(row, "0.000")
		}
		t.AddRow(row...)
	}
	return t
}

// SummaryTable reports mean quality and low quantiles per arm.
func (r Fig7Result) SummaryTable() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig. 7 summary - %s (%s)", r.Params.App, r.Params.App.Metric()),
		Header: []string{"scheme", "mean quality", "q10", "q50", "min"},
	}
	for _, a := range r.Arms {
		t.AddRow(a.Scheme.String(),
			fmt.Sprintf("%.4f", a.Mean()),
			fmt.Sprintf("%.4f", a.QualityAtYield(0.10)),
			fmt.Sprintf("%.4f", a.QualityAtYield(0.50)),
			fmt.Sprintf("%.4f", a.Qualities[0]))
	}
	t.AddRow("H(39,32) ECC", "1.0000", "1.0000", "1.0000", "1.0000")
	return t
}

// Fig7Apps returns the benchmark applications in paper order (7a/b/c).
func Fig7Apps() []App { return []App{AppElasticnet, AppPCA, AppKNN} }

// DefaultFig7Suite returns the registry's fig7 parameter set: one
// Fig7Params per benchmark application, in paper order.
func DefaultFig7Suite() []Fig7Params {
	apps := Fig7Apps()
	ps := make([]Fig7Params, len(apps))
	for i, a := range apps {
		ps[i] = DefaultFig7Params(a)
	}
	return ps
}

// fig7Experiment adapts the application-quality suite to the registry:
// one run covers every configured benchmark (the old `fig7 -app all`).
type fig7Experiment struct{}

func (fig7Experiment) Name() string       { return "fig7" }
func (fig7Experiment) DefaultParams() any { return DefaultFig7Suite() }

func (e fig7Experiment) Run(ctx context.Context, r *Runner) (*Result, error) {
	ps, err := runnerParams[[]Fig7Params](r, e)
	if err != nil {
		return nil, err
	}
	// The override path hands back the caller's own slice; copy it so the
	// effective-params rewrite below cannot mutate caller state or let a
	// later caller mutation corrupt the returned Result.Params.
	ps = append([]Fig7Params(nil), ps...)
	res := &Result{Experiment: e.Name()}
	for i := range ps {
		ps[i].Seed = r.seedOr(ps[i].Seed)
		ps[i].Workers = r.workersOr(ps[i].Workers)
		if r.quick() && ps[i].Trials > QuickFig7Trials {
			ps[i].Trials = QuickFig7Trials
		}
	}
	res.Params = ps
	for i, p := range ps {
		stage := strings.ToLower(p.App.String())
		out, err := Fig7Env(r.env(ctx, e.Name(), stage), p)
		if err != nil {
			return nil, err
		}
		res.Tables = append(res.Tables, out.QualityCDFTable(), out.SummaryTable())
		r.note(e.Name(), "apps", i+1, len(ps))
	}
	return res, nil
}
