package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// smokeParams returns a tiny-budget params override per experiment so the
// golden smoke test can iterate the whole registry in seconds. Names
// missing from the map run at their registered defaults (already cheap).
func smokeParams() map[string]any {
	fig2 := DefaultFig2Params()
	fig2.ISDirections = 200
	fig5 := DefaultFig5Params()
	fig5.CDF.Trun = 2e3
	fig7 := []Fig7Params{}
	for _, p := range DefaultFig7Suite() {
		p.Trials = 2
		fig7 = append(fig7, p)
	}
	energy := DefaultEnergyParams()
	energy.Dies = 20
	pareto := DefaultParetoParams()
	pareto.CDF.Trun = 2e3
	redundancy := DefaultRedundancyParams()
	redundancy.Dies = 20
	bist := DefaultBISTCoverageParams()
	bist.Trials = 4
	mf := DefaultMultiFaultParams()
	mf.Trials = 100
	tr := DefaultTransientParams()
	tr.Rows = 128
	tr.Reads = 2
	wk := DefaultWorkloadsParams()
	wk.Trials = 2
	wk.Rows = 1024
	wk.Keys = 2048
	wk.Dim = 32
	rec := DefaultRecoveryParams()
	rec.Trials = 2
	rec.Rows = 1024
	rec.Dim = 32
	return map[string]any{
		"fig2":              fig2,
		"fig5":              fig5,
		"fig7":              fig7,
		"workloads":         wk,
		"recovery":          rec,
		"energy":            energy,
		"pareto":            pareto,
		"redundancy":        redundancy,
		"bistcov":           bist,
		"ablate-multifault": mf,
		"ablate-transient":  tr,
	}
}

// TestRegistrySmokeAllExperiments is the golden smoke test of the
// experiment API: every registered experiment must run at a tiny budget,
// render at least one non-empty table, and round-trip its Result through
// JSON deterministically.
func TestRegistrySmokeAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("registry smoke runs every Monte Carlo")
	}
	overrides := smokeParams()
	names := Experiments()
	if len(names) < 16 {
		t.Fatalf("registry holds only %d experiments: %v", len(names), names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			if _, ok := Describe(name); !ok {
				t.Fatalf("no description registered for %q", name)
			}
			r := &Runner{Quick: true}
			if p, ok := overrides[name]; ok {
				r.Params = p
			}
			res, err := Run(context.Background(), name, r)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Experiment != name {
				t.Fatalf("result names %q", res.Experiment)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			var buf bytes.Buffer
			if err := res.Render(&buf); err != nil {
				t.Fatalf("render: %v", err)
			}
			if buf.Len() == 0 || !strings.Contains(buf.String(), res.Tables[0].Title) {
				t.Fatalf("text rendering empty or missing title:\n%s", buf.String())
			}
			buf.Reset()
			if err := res.RenderCSV(&buf, true); err != nil {
				t.Fatalf("render CSV: %v", err)
			}

			// JSON round trip: encode, decode into the generic Result
			// (params become maps), re-encode twice — the re-encodings
			// must be byte-identical, the deterministic wire contract of
			// the sweep service.
			first, err := res.JSON()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var decoded Result
			if err := json.Unmarshal(first, &decoded); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if decoded.Experiment != name || len(decoded.Tables) != len(res.Tables) {
				t.Fatalf("decoded result lost shape: %+v", decoded)
			}
			second, err := decoded.JSON()
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			var decoded2 Result
			if err := json.Unmarshal(second, &decoded2); err != nil {
				t.Fatalf("re-unmarshal: %v", err)
			}
			third, err := decoded2.JSON()
			if err != nil {
				t.Fatalf("third marshal: %v", err)
			}
			if !bytes.Equal(second, third) {
				t.Fatal("JSON round trip is not deterministic")
			}
		})
	}
}

// TestRegistryMatchesDirectFig5 pins the acceptance criterion: the
// registry entrypoint must produce bit-identical samples to the
// pre-redesign direct path, at any worker count and under the Runner's
// seed override.
func TestRegistryMatchesDirectFig5(t *testing.T) {
	p := DefaultFig5Params()
	p.CDF.Trun = 5e3
	direct := Fig5(p)
	wantCDF, wantYield := new(bytes.Buffer), new(bytes.Buffer)
	if err := direct.CDFTable().Render(wantCDF); err != nil {
		t.Fatal(err)
	}
	if err := direct.YieldTable().Render(wantYield); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 1, 3} {
		res, err := Run(context.Background(), "fig5", &Runner{Params: p, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tables) != 2 {
			t.Fatalf("workers=%d: %d tables", workers, len(res.Tables))
		}
		got := new(bytes.Buffer)
		if err := res.Tables[0].Render(got); err != nil {
			t.Fatal(err)
		}
		if got.String() != wantCDF.String() {
			t.Fatalf("workers=%d: registry CDF table differs from direct path", workers)
		}
		got.Reset()
		if err := res.Tables[1].Render(got); err != nil {
			t.Fatal(err)
		}
		if got.String() != wantYield.String() {
			t.Fatalf("workers=%d: registry yield table differs from direct path", workers)
		}
	}

	// The Runner's seed override must land exactly where the params seed
	// would.
	seed := int64(42)
	q := p
	q.CDF.Seed = seed
	wantSeeded := Fig5(q)
	res, err := Run(context.Background(), "fig5", &Runner{Params: p, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	want := new(bytes.Buffer)
	if err := wantSeeded.CDFTable().Render(want); err != nil {
		t.Fatal(err)
	}
	got := new(bytes.Buffer)
	if err := res.Tables[0].Render(got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("seed override via Runner differs from seed via params")
	}
}

// TestRegistryMatchesDirectFig7 extends the bit-identical contract to the
// application-quality campaign through the registry.
func TestRegistryMatchesDirectFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 7 Monte Carlo is slow")
	}
	p := DefaultFig7Params(AppKNN)
	p.Trials = 3
	direct, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	want := new(bytes.Buffer)
	if err := direct.SummaryTable().Render(want); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		res, err := Run(context.Background(), "fig7", &Runner{Params: []Fig7Params{p}, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tables) != 2 {
			t.Fatalf("%d tables", len(res.Tables))
		}
		got := new(bytes.Buffer)
		if err := res.Tables[1].Render(got); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("workers=%d: registry fig7 summary differs from direct path", workers)
		}
	}
}

// TestRegistryJSONParamsOverride exercises the wire form of parameter
// overrides: raw JSON merged over the defaults.
func TestRegistryJSONParamsOverride(t *testing.T) {
	res, err := Run(context.Background(), "width",
		&Runner{Params: json.RawMessage(`{"Rows": 1024}`)})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := res.Params.(WidthParams)
	if !ok || p.Rows != 1024 {
		t.Fatalf("params override did not apply: %+v", res.Params)
	}
	if _, err := Run(context.Background(), "width",
		&Runner{Params: json.RawMessage(`{"Rows": `)}); err == nil {
		t.Fatal("malformed params JSON accepted")
	}
	if _, err := Run(context.Background(), "width",
		&Runner{Params: Fig6Params{}}); err == nil {
		t.Fatal("mistyped params accepted")
	}
}

func TestRegistryUnknownExperiment(t *testing.T) {
	_, err := Run(context.Background(), "bogus", nil)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	var unknown *ErrUnknownExperiment
	if !errors.As(err, &unknown) {
		t.Fatalf("error type %T", err)
	}
	for _, name := range []string{"fig5", "fig7", "table1"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list %q: %v", name, err)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup accepted unknown name")
	}
}

// TestRegistryProgress asserts shard completions flow through the Runner
// into the caller's callback, ending exactly at done == total.
func TestRegistryProgress(t *testing.T) {
	p := DefaultFig5Params()
	p.CDF.Trun = 2e3
	var mu sync.Mutex
	var events []Progress
	r := &Runner{Params: p, Progress: func(ev Progress) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}}
	if _, err := Run(context.Background(), "fig5", r); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	last := events[len(events)-1]
	if last.Done != last.Total || last.Experiment != "fig5" {
		t.Fatalf("last event %+v", last)
	}
}

// TestRunAllStreamsEveryExperiment drives the registry's streaming
// iteration at smoke budgets (exercised fully by the CLI's `run all`).
func TestRunAllStreamsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every Monte Carlo")
	}
	// RunAll cannot take per-experiment overrides, so this uses the Quick
	// tier as the CLI does; keep it to a count check.
	var got []string
	err := RunAll(context.Background(), &Runner{Quick: true}, func(res *Result) error {
		got = append(got, res.Experiment)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Experiments()
	if len(got) != len(want) {
		t.Fatalf("streamed %d of %d experiments", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order differs at %d: %q != %q", i, got[i], want[i])
		}
	}
	if err := RunAll(context.Background(), &Runner{Params: Fig4Params{}}, nil); err == nil {
		t.Fatal("RunAll accepted a params override")
	}
}

// TestFig7CallerSliceUntouched guards the params-override aliasing edge:
// the fig7 adapter must copy a caller-supplied suite before applying the
// Runner's effective settings, so neither the caller's slice nor the
// returned Result.Params can be mutated through the other.
func TestFig7CallerSliceUntouched(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 7 Monte Carlo is slow")
	}
	suite := []Fig7Params{DefaultFig7Params(AppKNN)}
	res, err := Run(context.Background(), "fig7", &Runner{Quick: true, Params: suite})
	if err != nil {
		t.Fatal(err)
	}
	if suite[0].Trials != 500 {
		t.Fatalf("caller slice mutated: Trials=%d", suite[0].Trials)
	}
	if got := res.Params.([]Fig7Params)[0].Trials; got != QuickFig7Trials {
		t.Fatalf("effective params not recorded: %d", got)
	}
	suite[0].Trials = 7
	if res.Params.([]Fig7Params)[0].Trials == 7 {
		t.Fatal("Result.Params aliases the caller slice")
	}
}
