package exp

import (
	"bytes"
	"strings"
	"testing"

	"faultmem/internal/fault"
	"faultmem/internal/yield"
)

func TestProtectionNamesAndParse(t *testing.T) {
	cases := map[string]Protection{
		"none": ProtNone, "ecc": ProtECC, "pecc": ProtPECC,
		"nfm1": ProtShuffle1, "nfm3": ProtShuffle3, "nfm5": ProtShuffle5,
	}
	for s, want := range cases {
		got, err := ParseProtection(s)
		if err != nil || got != want {
			t.Errorf("ParseProtection(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseProtection("nfm9"); err == nil {
		t.Error("nfm9 accepted")
	}
	if ProtShuffle3.String() != "nFM=3-Bit" || ProtShuffle3.NFM() != 3 {
		t.Error("shuffle naming wrong")
	}
	if ProtECC.NFM() != 0 {
		t.Error("non-shuffle NFM should be 0")
	}
}

func TestProtectionBuildAllArms(t *testing.T) {
	fm := fault.Map{{Row: 0, Col: 31, Kind: fault.Flip}}
	for _, p := range AllProtections() {
		m, err := p.Build(8, fm)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		m.Write(0, 0xABCD1234)
		_ = m.Read(0)
		if m.Words() != 8 {
			t.Errorf("%v: words %d", p, m.Words())
		}
	}
}

func TestProtectionYieldSchemeConsistentNames(t *testing.T) {
	for _, p := range AllProtections() {
		if got := p.YieldScheme().Name(); got != p.String() {
			t.Errorf("%v: yield scheme name %q != %q", p, got, p.String())
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Notes:  []string{"n1"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T\n=", "a", "bb", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.RenderCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "333,4") {
		t.Errorf("CSV missing row: %s", buf.String())
	}
}

func TestFig2ShapeAndAnchors(t *testing.T) {
	p := DefaultFig2Params()
	p.ISDirections = 4000 // keep the test quick
	rows := Fig2(p)
	if len(rows) < 15 {
		t.Fatalf("only %d sweep points", len(rows))
	}
	// VDD descending, Pcell ascending.
	for i := 1; i < len(rows); i++ {
		if rows[i].VDD >= rows[i-1].VDD {
			t.Fatal("VDD not descending")
		}
		if rows[i].PcellAnalytic <= rows[i-1].PcellAnalytic {
			t.Fatal("Pcell not increasing as VDD drops")
		}
	}
	// Yield collapse near 0.73 V (§2).
	for _, r := range rows {
		if r.VDD <= 0.731 && r.VDD >= 0.729 && r.ZeroFailYield > 1e-4 {
			t.Errorf("yield at 0.73V = %g, want ~0", r.ZeroFailYield)
		}
	}
	// IS estimates present and within an order of magnitude of analytic
	// at low voltage.
	last := rows[len(rows)-1] // lowest VDD
	if last.PcellIS <= 0 {
		t.Fatal("IS estimate missing")
	}
	ratio := last.PcellIS / last.PcellAnalytic
	if ratio < 0.3 || ratio > 3.5 {
		t.Errorf("IS/analytic ratio %.2f at VDD=%.2f", ratio, last.VDD)
	}
	var buf bytes.Buffer
	if err := Fig2Table(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig4MatchesPaperProfile(t *testing.T) {
	rows := Fig4()
	if len(rows) != 32 {
		t.Fatalf("%d rows, want 32", len(rows))
	}
	// nFM=5: flat zero; nFM=1: sawtooth b mod 16; no-correction: b.
	for _, r := range rows {
		if r.NoCorrection != r.BitPosition {
			t.Errorf("bit %d: no-correction %d", r.BitPosition, r.NoCorrection)
		}
		if r.Shuffled[4] != 0 {
			t.Errorf("bit %d: nFM=5 exponent %d", r.BitPosition, r.Shuffled[4])
		}
		if r.Shuffled[0] != r.BitPosition%16 {
			t.Errorf("bit %d: nFM=1 exponent %d", r.BitPosition, r.Shuffled[0])
		}
		// Monotone improvement with nFM at the MSB.
		if r.BitPosition == 31 {
			for i := 1; i < 5; i++ {
				if r.Shuffled[i] > r.Shuffled[i-1] {
					t.Error("MSB exponent not improving with nFM")
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := Fig4Table(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig5EndToEnd(t *testing.T) {
	p := DefaultFig5Params()
	p.CDF.Trun = 1e4 // quick
	res := Fig5(p)
	if len(res.CDFs) != len(Fig5Arms()) {
		t.Fatalf("%d CDFs", len(res.CDFs))
	}
	// Orderings at a yield target: none worst, nFM=5 best among shuffles.
	var none, s1, s5 yield.CDFResult
	for i, a := range res.Arms {
		switch a {
		case ProtNone:
			none = res.CDFs[i]
		case ProtShuffle1:
			s1 = res.CDFs[i]
		case ProtShuffle5:
			s5 = res.CDFs[i]
		}
	}
	q := 0.9
	if !(s5.MSEAtYield(q) <= s1.MSEAtYield(q) && s1.MSEAtYield(q) < none.MSEAtYield(q)) {
		t.Errorf("MSE ordering violated: none %g, nFM1 %g, nFM5 %g",
			none.MSEAtYield(q), s1.MSEAtYield(q), s5.MSEAtYield(q))
	}
	var buf bytes.Buffer
	if err := res.CDFTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := res.YieldTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No Correction") {
		t.Error("yield table missing arms")
	}
}

func TestFig6EndToEnd(t *testing.T) {
	res := Fig6(DefaultFig6Params())
	if len(res.Relative) != 7 || len(res.Absolute) != 7 {
		t.Fatalf("table sizes %d/%d", len(res.Relative), len(res.Absolute))
	}
	// Best shuffle must beat P-ECC in all metrics (positive reductions).
	for i, v := range res.PECCBest {
		if v <= 0 {
			t.Errorf("PECCBest[%d] = %.1f%%, want positive", i, v)
		}
	}
	var buf bytes.Buffer
	if err := res.Fig6RelativeTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.AbsoluteTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig7SmallRunAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 7 Monte Carlo is slow")
	}
	for _, app := range []App{AppElasticnet, AppPCA, AppKNN} {
		p := DefaultFig7Params(app)
		p.Trials = 6
		res, err := Fig7(p)
		if err != nil {
			t.Fatalf("%v: %v", app, err)
		}
		if res.CleanMetric <= 0 {
			t.Fatalf("%v: clean metric %g", app, res.CleanMetric)
		}
		if len(res.Arms) != len(Fig7Arms()) {
			t.Fatalf("%v: %d arms", app, len(res.Arms))
		}
		for _, arm := range res.Arms {
			if len(arm.Qualities) != p.Trials {
				t.Fatalf("%v %v: %d qualities", app, arm.Scheme, len(arm.Qualities))
			}
			for _, q := range arm.Qualities {
				if q < 0 || q > 1 {
					t.Fatalf("%v %v: quality %g outside [0,1]", app, arm.Scheme, q)
				}
			}
		}
		var buf bytes.Buffer
		if err := res.QualityCDFTable().Render(&buf); err != nil {
			t.Fatal(err)
		}
		if err := res.SummaryTable().Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFig7ShuffleBeatsNoProtection(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 7 Monte Carlo is slow")
	}
	// The KNN benchmark is the cheapest: verify the central qualitative
	// claim of Fig. 7 — bit-shuffling preserves far more quality than no
	// protection under the same fault prior.
	p := DefaultFig7Params(AppKNN)
	p.Trials = 12
	res, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[Protection]Fig7Arm{}
	for _, a := range res.Arms {
		byScheme[a.Scheme] = a
	}
	none := byScheme[ProtNone].Mean()
	s1 := byScheme[ProtShuffle1].Mean()
	s2 := byScheme[ProtShuffle2].Mean()
	if s1 <= none {
		t.Errorf("nFM=1 mean quality %.3f not above unprotected %.3f", s1, none)
	}
	if s2 < 0.95 {
		t.Errorf("nFM=2 mean quality %.3f, want near 1", s2)
	}
}

func TestFig7Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 7 Monte Carlo is slow")
	}
	p := DefaultFig7Params(AppKNN)
	p.Trials = 4
	a, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Arms {
		for j := range a.Arms[i].Qualities {
			if a.Arms[i].Qualities[j] != b.Arms[i].Qualities[j] {
				t.Fatal("Fig7 not deterministic")
			}
		}
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.CleanMetric <= 0 || r.CleanMetric > 1 {
			t.Errorf("%s: clean metric %g", r.Algorithm, r.CleanMetric)
		}
		if r.Samples == 0 || r.Features == 0 {
			t.Errorf("%s: shape %dx%d", r.Algorithm, r.Samples, r.Features)
		}
	}
	var buf bytes.Buffer
	if err := Table1Table(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Elasticnet") {
		t.Error("table missing Elasticnet row")
	}
}

func TestAppParsing(t *testing.T) {
	for s, want := range map[string]App{"elasticnet": AppElasticnet, "pca": AppPCA, "knn": AppKNN} {
		got, err := ParseApp(s)
		if err != nil || got != want {
			t.Errorf("ParseApp(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseApp("svm"); err == nil {
		t.Error("svm accepted")
	}
	if AppPCA.Metric() != "Explained Variance" {
		t.Error("metric name wrong")
	}
}
