package exp

import (
	"bytes"
	"testing"

	"faultmem/internal/yield"
)

func TestParetoFrontier(t *testing.T) {
	p := DefaultParetoParams()
	p.CDF.Trun = 1e4 // test-scale
	rows := Pareto(p)
	if len(rows) != 1+5+3+1 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]ParetoRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}

	// Quality monotone in nFM.
	prev := byName["nFM=1-Bit"].MSEAtYield
	for _, n := range []string{"nFM=2-Bit", "nFM=3-Bit", "nFM=4-Bit", "nFM=5-Bit"} {
		cur := byName[n].MSEAtYield
		if cur > prev*1.0000001 {
			t.Errorf("%s MSE %g above previous %g", n, cur, prev)
		}
		prev = cur
	}
	// Quality monotone in the P-ECC protected fraction.
	if !(byName["P-ECC top-24"].MSEAtYield <= byName["H(22,16) P-ECC"].MSEAtYield &&
		byName["H(22,16) P-ECC"].MSEAtYield <= byName["P-ECC top-8"].MSEAtYield) {
		t.Error("P-ECC quality not monotone in protected fraction")
	}
	// Dominance: nFM=2 strictly beats the top-8 and top-16 splits in
	// quality and all three cost metrics; against top-24 (whose single-
	// fault bound coincides with nFM=2's 2^7) it ties on quality within
	// MC noise while costing a third as much.
	s2 := byName["nFM=2-Bit"]
	for _, n := range []string{"P-ECC top-8", "H(22,16) P-ECC"} {
		pe := byName[n]
		if !(s2.MSEAtYield <= pe.MSEAtYield && s2.RelPower < pe.RelPower &&
			s2.RelDelay < pe.RelDelay && s2.RelArea < pe.RelArea) {
			t.Errorf("nFM=2 does not dominate %s: %+v vs %+v", n, s2, pe)
		}
	}
	top24 := byName["P-ECC top-24"]
	if s2.MSEAtYield > 2*top24.MSEAtYield {
		t.Errorf("nFM=2 quality %g far above top-24 %g", s2.MSEAtYield, top24.MSEAtYield)
	}
	if !(s2.RelPower < top24.RelPower && s2.RelDelay < top24.RelDelay && s2.RelArea < top24.RelArea) {
		t.Error("nFM=2 not cheaper than P-ECC top-24")
	}
	// ECC: perfect quality (MSE 0 at this Pcell regime), unit cost.
	eccRow := byName["H(39,32) ECC"]
	if eccRow.RelPower != 1 || eccRow.RelArea != 1 || eccRow.RelDelay != 1 {
		t.Errorf("ECC not normalized: %+v", eccRow)
	}
	// No-correction: zero cost, worst quality.
	nc := byName["No Correction"]
	if nc.RelPower != 0 || nc.MSEAtYield <= byName["nFM=1-Bit"].MSEAtYield {
		t.Errorf("no-correction row malformed: %+v", nc)
	}

	var buf bytes.Buffer
	if err := ParetoTable(rows, p).Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPartialECCSplitSemantics(t *testing.T) {
	// Residual semantics across splits: a single fault at bit 20 is
	// corrected by top-16 and top-24 protection but leaks through top-8
	// protection (bit 20 < 32-8 = 24).
	cols := []int{20}
	if got := (yield.PriorityECC{Protected: 8}).Residual(cols); len(got) != 1 || got[0] != 20 {
		t.Errorf("top-8: %v", got)
	}
	if got := (yield.PriorityECC{Protected: 16}).Residual(cols); len(got) != 0 {
		t.Errorf("top-16: %v", got)
	}
	if got := (yield.PriorityECC{Protected: 24}).Residual(cols); len(got) != 0 {
		t.Errorf("top-24: %v", got)
	}
	// Names.
	if (yield.PriorityECC{}).Name() != "H(22,16) P-ECC" {
		t.Error("default split name wrong")
	}
	if (yield.PriorityECC{Protected: 8}).Name() != "P-ECC top-8" {
		t.Error("top-8 name wrong")
	}
}
