// Package yield implements the paper's redefined, quality-aware yield
// criterion (§4): instead of rejecting every die with one or more failing
// bit-cells, a die qualifies if its application-level quality metric —
// approximated by the memory-local mean-square error of Eq. (6) — meets a
// target. The package evaluates Eqs. (3)-(6): the binomial failure-count
// prior, the per-scheme residual error after mitigation, the MSE quality
// function, and the Monte-Carlo CDF of Fig. 5.
package yield

import (
	"fmt"
	"math"
	mbits "math/bits"
	"sync"

	"faultmem/internal/core"
)

// Scheme describes how a protection scheme transforms the faulty physical
// columns of one row into residual logical error positions: the bit
// significances that can still be corrupted after mitigation. Eq. (6)
// charges each residual position b an error of 2^b.
type Scheme interface {
	// Name identifies the scheme in tables and figures.
	Name() string
	// Residual maps the faulty physical columns of one row (data
	// geometry, sorted or not) to the residual logical fault positions.
	Residual(cols []int) []int
	// RowMSE returns the summed squared residual error magnitude of one
	// row whose faulty physical columns are the set bits of mask (bit c
	// set = column c faulty; Width <= 64 so a row fits one word). It is
	// the allocation-free equivalent of summing (2^b)^2 over
	// Residual(cols) and is the Monte-Carlo engine's per-row hot path.
	RowMSE(mask uint64) float64
}

// maskMSE sums (2^b)^2 = 4^b over the set bits of mask — Eq. (6)'s inner
// sum when every masked column leaks through unmitigated.
func maskMSE(mask uint64) float64 {
	sum := 0.0
	for m := mask; m != 0; m &= m - 1 {
		sum += math.Ldexp(1, 2*mbits.TrailingZeros64(m))
	}
	return sum
}

// Unprotected is the "No Correction" arm: every fault hits its own bit.
type Unprotected struct{}

// Name implements Scheme.
func (Unprotected) Name() string { return "No Correction" }

// Residual implements Scheme: faults pass through untouched.
func (Unprotected) Residual(cols []int) []int {
	return append([]int(nil), cols...)
}

// RowMSE implements Scheme: every masked column leaks through.
func (Unprotected) RowMSE(mask uint64) float64 { return maskMSE(mask) }

// Shuffled is the paper's bit-shuffling scheme at a given configuration.
// Construct it with NewShuffled (or NewShuffledConfig), which precomputes
// the per-configuration memo table the RowMSE hot path reads; a zero or
// hand-built value still works, falling back to the core search.
type Shuffled struct {
	Cfg  core.Config
	memo *shuffleMemo
}

// shuffleMemo caches, per shuffling configuration, everything RowMSE
// needs: the candidate write rotations and the best achievable row MSE
// for every single-fault column — the overwhelmingly common case under
// memory-scale Pcell, where multi-fault rows are rare enough to search
// directly.
type shuffleMemo struct {
	width     int
	widthMask uint64
	shifts    []int       // ShiftForX(x) per FM-LUT entry x
	single    [64]float64 // best row MSE for a lone fault at column c
}

func newShuffleMemo(cfg core.Config) *shuffleMemo {
	m := &shuffleMemo{width: cfg.Width}
	if cfg.Width == 64 {
		m.widthMask = ^uint64(0)
	} else {
		m.widthMask = (uint64(1) << uint(cfg.Width)) - 1
	}
	m.shifts = make([]int, cfg.NumSegments())
	for x := range m.shifts {
		m.shifts[x] = cfg.ShiftForX(x)
	}
	for c := 0; c < cfg.Width; c++ {
		m.single[c] = m.best(uint64(1) << uint(c))
	}
	return m
}

// best searches every FM-LUT entry for the rotation minimizing the row's
// summed squared error — the mask-space equivalent of core.Config.BestX
// (same ascending-x tie-breaking, so the two paths agree exactly).
func (m *shuffleMemo) best(mask uint64) float64 {
	best := math.Inf(1)
	for _, t := range m.shifts {
		// A write rotation of T places physical column f at logical
		// position (f + T) mod W: rotate the mask left by T within W.
		rot := ((mask << uint(t)) | (mask >> uint(m.width-t))) & m.widthMask
		if cost := maskMSE(rot); cost < best {
			best = cost
		}
	}
	return best
}

// NewShuffled returns the scheme for a 32-bit word at the given nFM.
func NewShuffled(nfm int) Shuffled {
	return NewShuffledConfig(core.Config{Width: 32, NFM: nfm})
}

// memoCache shares the RowMSE memo tables across every Shuffled built
// in the process, keyed by configuration. The tables are immutable
// after construction and depend only on the Config, so sharing is
// always sound; the key space is tiny (width × nFM). This is the
// scheme-level half of the serve mode's cross-request cache: a repeat
// campaign's schemes skip the memo rebuild entirely.
var memoCache sync.Map // core.Config -> *shuffleMemo

// NewShuffledConfig returns the scheme for an arbitrary configuration
// (Width a power of two in [2, 64]), with the RowMSE memo table built —
// or fetched from the process-wide per-configuration cache when any
// prior scheme already built it.
func NewShuffledConfig(cfg core.Config) Shuffled {
	if m, ok := memoCache.Load(cfg); ok {
		return Shuffled{Cfg: cfg, memo: m.(*shuffleMemo)}
	}
	m, _ := memoCache.LoadOrStore(cfg, newShuffleMemo(cfg))
	return Shuffled{Cfg: cfg, memo: m.(*shuffleMemo)}
}

// Name implements Scheme.
func (s Shuffled) Name() string { return fmt.Sprintf("nFM=%d-Bit", s.Cfg.NFM) }

// Residual implements Scheme via the FM-LUT best-entry rule.
func (s Shuffled) Residual(cols []int) []int {
	return s.Cfg.ResidualPositions(cols)
}

// RowMSE implements Scheme: single-fault rows hit the memo table, rarer
// multi-fault rows run the full 2^nFM-entry search on the mask.
func (s Shuffled) RowMSE(mask uint64) float64 {
	if mask == 0 {
		return 0
	}
	memo := s.memo
	if memo == nil {
		memo = newShuffleMemo(s.Cfg) // hand-built value; correctness over speed
	}
	if mask&(mask-1) == 0 {
		return memo.single[mbits.TrailingZeros64(mask)]
	}
	return memo.best(mask)
}

// FullECC is H(39,32) SECDED: a single fault per word is corrected; two
// or more faults in a word are detected but uncorrectable, so the raw
// faulty bits come back (SECDED returns the unmodified payload).
type FullECC struct{}

// Name implements Scheme.
func (FullECC) Name() string { return "H(39,32) ECC" }

// Residual implements Scheme.
func (FullECC) Residual(cols []int) []int {
	if len(cols) <= 1 {
		return nil
	}
	return append([]int(nil), cols...)
}

// RowMSE implements Scheme.
func (FullECC) RowMSE(mask uint64) float64 {
	if mask&(mask-1) == 0 { // zero or one fault: corrected
		return 0
	}
	return maskMSE(mask)
}

// PriorityECC is priority-based ECC: the top Protected bits (16 in the
// paper's H(22,16) configuration) are covered by SECDED — a single
// upper fault is corrected, two or more are uncorrectable — while the
// low-order bits are stored raw and always leak through. The zero value
// defaults to the paper's 16-bit split.
type PriorityECC struct {
	// Protected is the number of protected most significant bits
	// (0 means 16, the paper's configuration).
	Protected int
}

func (p PriorityECC) split() int {
	if p.Protected == 0 {
		return 16
	}
	return p.Protected
}

// Name implements Scheme.
func (p PriorityECC) Name() string {
	k := p.split()
	if k == 16 {
		return "H(22,16) P-ECC"
	}
	return fmt.Sprintf("P-ECC top-%d", k)
}

// Residual implements Scheme.
func (p PriorityECC) Residual(cols []int) []int {
	low := 32 - p.split()
	var lower, upper []int
	for _, c := range cols {
		if c < low {
			lower = append(lower, c)
		} else {
			upper = append(upper, c)
		}
	}
	if len(upper) <= 1 {
		return lower
	}
	return append(lower, upper...)
}

// RowMSE implements Scheme.
func (p PriorityECC) RowMSE(mask uint64) float64 {
	low := uint(32 - p.split())
	upper := mask >> low << low
	if upper&(upper-1) == 0 { // zero or one upper fault: corrected
		return maskMSE(mask &^ upper)
	}
	return maskMSE(mask)
}

// MSEFromRowFaults evaluates Eq. (6) for one memory sample: given the
// per-row faulty columns (data geometry) of a memory with rows words, it
// returns (1/R) * sum over residual failures of (2^b)^2 after the scheme's
// mitigation.
func MSEFromRowFaults(rowFaults map[int][]int, rows int, s Scheme) float64 {
	if rows <= 0 {
		panic("yield: non-positive row count")
	}
	sum := 0.0
	for _, cols := range rowFaults {
		for _, b := range s.Residual(cols) {
			m := math.Ldexp(1, b) // 2^b
			sum += m * m
		}
	}
	return sum / float64(rows)
}
