// Package yield implements the paper's redefined, quality-aware yield
// criterion (§4): instead of rejecting every die with one or more failing
// bit-cells, a die qualifies if its application-level quality metric —
// approximated by the memory-local mean-square error of Eq. (6) — meets a
// target. The package evaluates Eqs. (3)-(6): the binomial failure-count
// prior, the per-scheme residual error after mitigation, the MSE quality
// function, and the Monte-Carlo CDF of Fig. 5.
package yield

import (
	"fmt"
	"math"

	"faultmem/internal/core"
)

// Scheme describes how a protection scheme transforms the faulty physical
// columns of one row into residual logical error positions: the bit
// significances that can still be corrupted after mitigation. Eq. (6)
// charges each residual position b an error of 2^b.
type Scheme interface {
	// Name identifies the scheme in tables and figures.
	Name() string
	// Residual maps the faulty physical columns of one row (data
	// geometry, sorted or not) to the residual logical fault positions.
	Residual(cols []int) []int
}

// Unprotected is the "No Correction" arm: every fault hits its own bit.
type Unprotected struct{}

// Name implements Scheme.
func (Unprotected) Name() string { return "No Correction" }

// Residual implements Scheme: faults pass through untouched.
func (Unprotected) Residual(cols []int) []int {
	return append([]int(nil), cols...)
}

// Shuffled is the paper's bit-shuffling scheme at a given configuration.
type Shuffled struct {
	Cfg core.Config
}

// NewShuffled returns the scheme for a 32-bit word at the given nFM.
func NewShuffled(nfm int) Shuffled {
	return Shuffled{Cfg: core.Config{Width: 32, NFM: nfm}}
}

// Name implements Scheme.
func (s Shuffled) Name() string { return fmt.Sprintf("nFM=%d-Bit", s.Cfg.NFM) }

// Residual implements Scheme via the FM-LUT best-entry rule.
func (s Shuffled) Residual(cols []int) []int {
	return s.Cfg.ResidualPositions(cols)
}

// FullECC is H(39,32) SECDED: a single fault per word is corrected; two
// or more faults in a word are detected but uncorrectable, so the raw
// faulty bits come back (SECDED returns the unmodified payload).
type FullECC struct{}

// Name implements Scheme.
func (FullECC) Name() string { return "H(39,32) ECC" }

// Residual implements Scheme.
func (FullECC) Residual(cols []int) []int {
	if len(cols) <= 1 {
		return nil
	}
	return append([]int(nil), cols...)
}

// PriorityECC is priority-based ECC: the top Protected bits (16 in the
// paper's H(22,16) configuration) are covered by SECDED — a single
// upper fault is corrected, two or more are uncorrectable — while the
// low-order bits are stored raw and always leak through. The zero value
// defaults to the paper's 16-bit split.
type PriorityECC struct {
	// Protected is the number of protected most significant bits
	// (0 means 16, the paper's configuration).
	Protected int
}

func (p PriorityECC) split() int {
	if p.Protected == 0 {
		return 16
	}
	return p.Protected
}

// Name implements Scheme.
func (p PriorityECC) Name() string {
	k := p.split()
	if k == 16 {
		return "H(22,16) P-ECC"
	}
	return fmt.Sprintf("P-ECC top-%d", k)
}

// Residual implements Scheme.
func (p PriorityECC) Residual(cols []int) []int {
	low := 32 - p.split()
	var lower, upper []int
	for _, c := range cols {
		if c < low {
			lower = append(lower, c)
		} else {
			upper = append(upper, c)
		}
	}
	if len(upper) <= 1 {
		return lower
	}
	return append(lower, upper...)
}

// MSEFromRowFaults evaluates Eq. (6) for one memory sample: given the
// per-row faulty columns (data geometry) of a memory with rows words, it
// returns (1/R) * sum over residual failures of (2^b)^2 after the scheme's
// mitigation.
func MSEFromRowFaults(rowFaults map[int][]int, rows int, s Scheme) float64 {
	if rows <= 0 {
		panic("yield: non-positive row count")
	}
	sum := 0.0
	for _, cols := range rowFaults {
		for _, b := range s.Residual(cols) {
			m := math.Ldexp(1, b) // 2^b
			sum += m * m
		}
	}
	return sum / float64(rows)
}
