package yield

import "testing"

func TestSchemeIDRoundTrip(t *testing.T) {
	ids := AllSchemeIDs()
	if len(ids) != int(numSchemeIDs) {
		t.Fatalf("AllSchemeIDs lists %d of %d schemes", len(ids), numSchemeIDs)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if !id.Valid() {
			t.Fatalf("%v not valid", id)
		}
		name := id.String()
		if seen[name] {
			t.Fatalf("duplicate canonical name %q", name)
		}
		seen[name] = true
		back, err := ParseScheme(name)
		if err != nil || back != id {
			t.Fatalf("ParseScheme(%q) = %v, %v; want %v", name, back, err, id)
		}
		if id.Display() != id.Scheme().Name() {
			t.Fatalf("%v: display %q != scheme name %q", id, id.Display(), id.Scheme().Name())
		}
	}
}

func TestSchemeIDNFM(t *testing.T) {
	if SchemeNFM3.NFM() != 3 || SchemeNone.NFM() != 0 || SchemeECC.NFM() != 0 {
		t.Error("NFM mapping wrong")
	}
	id, err := ParseScheme("nfm4")
	if err != nil || id != SchemeNFM4 {
		t.Fatalf("ParseScheme(nfm4) = %v, %v", id, err)
	}
}

func TestParseSchemeRejectsUnknown(t *testing.T) {
	for _, bad := range []string{"", "nfm0", "nfm6", "secded", "NONE"} {
		if _, err := ParseScheme(bad); err == nil {
			t.Errorf("ParseScheme(%q) accepted", bad)
		}
	}
	if SchemeID(99).Valid() {
		t.Error("out-of-range id valid")
	}
}
