package yield

import (
	"fmt"

	"faultmem/internal/fault"
	"faultmem/internal/stats"
)

// CDFParams configures the Fig. 5 Monte-Carlo experiment: the CDF of the
// memory MSE under the failure-count prior Pr(N = n) of Eq. (4).
type CDFParams struct {
	// Rows and Width define the memory (16 KB of 32-bit words: 4096 x 32).
	Rows, Width int
	// Pcell is the bit-cell failure probability (Fig. 5 uses 5e-6).
	Pcell float64
	// Trun scales how many Monte-Carlo samples each failure count
	// receives: samples(n) ~ Pr(N=n) * Trun (the paper uses 1e7; the
	// default harness uses a smaller value — the CDF shape converges far
	// earlier — and records the value used).
	Trun float64
	// MaxPerCount caps the samples of any single failure count so the
	// dominant counts cannot exhaust the budget (0 = no cap).
	MaxPerCount int
	// MaxFailures bounds the failure-count sweep; 0 selects the count
	// covering 99.99% of the prior mass, mirroring the paper's Nmax
	// convention (§5.2 uses the 99% point; Fig. 5 sweeps 1..150).
	MaxFailures int
	// Seed drives all randomness.
	Seed int64
}

// DefaultCDFParams returns the Fig. 5 configuration with a laptop-scale
// sample budget.
func DefaultCDFParams() CDFParams {
	return CDFParams{
		Rows:        4096,
		Width:       32,
		Pcell:       5e-6,
		Trun:        2e5,
		MaxPerCount: 20000,
		Seed:        1,
	}
}

// Cells returns the bit-cell count M of the configured memory.
func (p CDFParams) Cells() int { return p.Rows * p.Width }

// CDFResult is the outcome of one scheme's Monte-Carlo sweep.
type CDFResult struct {
	Scheme string
	// CDF is the distribution of the MSE conditioned on N >= 1 failures
	// (weights follow Pr(N=n), matching Eq. 5's sum from i=1).
	CDF *stats.WeightedCDF
	// PZeroFailures is Pr(N=0), the prior mass of fault-free dies (whose
	// MSE is exactly 0).
	PZeroFailures float64
	// Samples is the number of Monte-Carlo memories evaluated.
	Samples int
	// MaxFailuresSwept is the largest failure count simulated.
	MaxFailuresSwept int
}

// MSECDF runs the Fig. 5 Monte Carlo for one scheme: for every failure
// count n = 1..Nmax, it draws samples(n) ~ Pr(N=n)*Trun random fault maps
// (Eq. 4 prior, uniform fault placement), computes the post-mitigation
// MSE of Eq. (6), and accumulates the weighted CDF of Eq. (5).
func MSECDF(p CDFParams, s Scheme) CDFResult {
	if p.Rows <= 0 || p.Width <= 0 || p.Trun <= 0 {
		panic(fmt.Sprintf("yield: bad CDF params %+v", p))
	}
	m := p.Cells()
	nmax := p.MaxFailures
	if nmax == 0 {
		nmax = stats.BinomialQuantile(m, p.Pcell, 0.9999)
		if nmax < 1 {
			nmax = 1
		}
	}
	rng := stats.Derive(p.Seed, hashName(s.Name()))
	cdf := &stats.WeightedCDF{}
	samples := 0
	for n := 1; n <= nmax; n++ {
		w := stats.BinomialPMF(m, p.Pcell, n)
		if w <= 0 {
			continue
		}
		k := int(w*p.Trun + 0.5)
		if k < 1 {
			k = 1
		}
		if p.MaxPerCount > 0 && k > p.MaxPerCount {
			k = p.MaxPerCount
		}
		per := w / float64(k)
		for i := 0; i < k; i++ {
			fm := fault.GenerateCount(rng, p.Rows, p.Width, n, fault.Flip)
			mse := MSEFromRowFaults(fm.ByRow(), p.Rows, s)
			cdf.Add(mse, per)
			samples++
		}
	}
	return CDFResult{
		Scheme:           s.Name(),
		CDF:              cdf,
		PZeroFailures:    stats.BinomialPMF(m, p.Pcell, 0),
		Samples:          samples,
		MaxFailuresSwept: nmax,
	}
}

// YieldAtMSE returns the quality-aware yield at a target MSE: the
// probability that a manufactured die satisfies MSE < target, including
// the fault-free mass Pr(N=0) (Eq. 5 evaluated as a yield criterion, §4).
func (r CDFResult) YieldAtMSE(target float64) float64 {
	p0 := r.PZeroFailures
	if r.CDF.Len() == 0 {
		return p0
	}
	// CDF is conditioned on N>=1 and its total weight approximates
	// Pr(N>=1); use the actual accumulated mass for consistency.
	return p0 + r.CDF.TotalWeight()*r.CDF.P(target)
}

// MSEAtYield returns the smallest MSE target that achieves the requested
// yield q (the x-axis reading of Fig. 5 at CDF level q). If the fault-free
// mass alone reaches q it returns 0.
func (r CDFResult) MSEAtYield(q float64) float64 {
	if q <= r.PZeroFailures {
		return 0
	}
	if r.CDF.Len() == 0 {
		panic("yield: empty CDF cannot reach requested yield")
	}
	cond := (q - r.PZeroFailures) / r.CDF.TotalWeight()
	if cond >= 1 {
		cond = 1
	}
	return r.CDF.Quantile(cond)
}

// ReductionAtYield returns the factor by which scheme a reduces the MSE
// that must be tolerated at yield level q compared with scheme b:
// MSE_b(q) / MSE_a(q). The paper reports a minimum 30x reduction for
// nFM=1 versus no protection (§4).
func ReductionAtYield(a, b CDFResult, q float64) float64 {
	ma := a.MSEAtYield(q)
	mb := b.MSEAtYield(q)
	if ma == 0 {
		if mb == 0 {
			return 1
		}
		return inf
	}
	return mb / ma
}

const inf = 1e308

// hashName maps a scheme name to a deterministic RNG stream index.
func hashName(name string) int64 {
	var h int64 = 1469598103
	for _, c := range name {
		h = (h ^ int64(c)) * 16777619
	}
	if h < 0 {
		h = -h
	}
	return h
}
