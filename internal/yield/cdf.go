package yield

import (
	"fmt"
	"math"
	"math/rand"

	"faultmem/internal/mc"
	"faultmem/internal/stats"
)

// AccumMode selects the statistics accumulator MSECDFAll builds its CDFs
// on.
type AccumMode int

const (
	// AccumAuto (the default) retains exact observations below
	// HistAutoSamples planned samples and switches to the O(1)-memory
	// log-histogram above — small budgets stay exact, paper-scale
	// budgets (Trun=1e7+) run in a flat memory envelope.
	AccumAuto AccumMode = iota
	// AccumExact forces the exact observation store (stats.WeightedCDF).
	AccumExact
	// AccumHist forces the log-histogram (stats.LogHistogram).
	AccumHist
)

// String returns the CLI spelling of the mode.
func (m AccumMode) String() string {
	switch m {
	case AccumAuto:
		return "auto"
	case AccumExact:
		return "exact"
	case AccumHist:
		return "hist"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseAccumMode maps a CLI name to the accumulator mode.
func ParseAccumMode(s string) (AccumMode, error) {
	switch s {
	case "auto", "":
		return AccumAuto, nil
	case "exact":
		return AccumExact, nil
	case "hist":
		return AccumHist, nil
	default:
		return 0, fmt.Errorf("yield: unknown accumulator mode %q (want auto|exact|hist)", s)
	}
}

// HistAutoSamples is the planned-sample count at which AccumAuto stops
// retaining exact observations and switches to the log-histogram. Below
// it the exact store's footprint is at most ~16 MB per arm; above it the
// histogram's fixed few-KB-per-arm footprint wins and its one-bin CDF
// resolution (~3% in MSE) is far below the Monte-Carlo noise.
const HistAutoSamples = 1 << 20

// The histogram's log10-MSE domain. The smallest positive MSE any 32-bit
// scheme can produce is 2^0/rows (~2.4e-4 at 4096 rows), so -8 leaves
// the underflow bin holding exactly the zero-MSE mass; 20 decades up
// covers the worst case of every high bit faulty across thousands of
// rows before the overflow bin takes over.
const (
	mseLogMin = -8
	mseLogMax = 20
)

// CDFParams configures the Fig. 5 Monte-Carlo experiment: the CDF of the
// memory MSE under the failure-count prior Pr(N = n) of Eq. (4).
type CDFParams struct {
	// Rows and Width define the memory (16 KB of 32-bit words: 4096 x 32).
	Rows, Width int
	// Pcell is the bit-cell failure probability (Fig. 5 uses 5e-6).
	Pcell float64
	// Trun scales how many Monte-Carlo samples each failure count
	// receives: samples(n) ~ Pr(N=n) * Trun (the paper uses 1e7; the
	// default harness uses a smaller value — the CDF shape converges far
	// earlier — and records the value used).
	Trun float64
	// MaxPerCount caps the samples of any single failure count so the
	// dominant counts cannot exhaust the budget (0 = no cap).
	MaxPerCount int
	// MaxFailures bounds the failure-count sweep; 0 selects the count
	// covering 99.99% of the prior mass, mirroring the paper's Nmax
	// convention (§5.2 uses the 99% point; Fig. 5 sweeps 1..150).
	MaxFailures int
	// Seed drives all randomness.
	Seed int64
	// Workers is the goroutine count of the Monte-Carlo engine
	// (0 = GOMAXPROCS). Results are bit-identical for every value.
	Workers int
	// Shards is the number of deterministic RNG streams the sample budget
	// is split into (0 = mc.DefaultShards). Changing it changes which
	// stream draws which sample — results are identical across worker
	// counts only at a fixed shard count.
	Shards int
	// Accum selects the CDF accumulator (exact store vs O(1)-memory
	// log-histogram); the AccumAuto zero value decides by budget.
	Accum AccumMode
	// Bins is the log-histogram interior bin count
	// (0 = stats.DefaultLogHistBins).
	Bins int
}

// DefaultCDFParams returns the Fig. 5 configuration with a laptop-scale
// sample budget.
func DefaultCDFParams() CDFParams {
	return CDFParams{
		Rows:        4096,
		Width:       32,
		Pcell:       5e-6,
		Trun:        2e5,
		MaxPerCount: 20000,
		Seed:        1,
	}
}

// Cells returns the bit-cell count M of the configured memory.
func (p CDFParams) Cells() int { return p.Rows * p.Width }

// CDFResult is the outcome of one scheme's Monte-Carlo sweep.
type CDFResult struct {
	Scheme string
	// CDF is the distribution of the MSE conditioned on N >= 1 failures
	// (weights follow Pr(N=n), matching Eq. 5's sum from i=1). It is an
	// exact stats.WeightedCDF or an O(1)-memory stats.LogHistogram,
	// depending on the params' accumulator mode and budget.
	CDF stats.Accumulator
	// Histogram reports whether CDF is the log-histogram accumulator
	// rather than the exact observation store.
	Histogram bool
	// PZeroFailures is Pr(N=0), the prior mass of fault-free dies (whose
	// MSE is exactly 0).
	PZeroFailures float64
	// Samples is the number of Monte-Carlo memories evaluated.
	Samples int
	// MaxFailuresSwept is the largest failure count simulated.
	MaxFailuresSwept int
}

// countPlan is one failure count's slice of the sample budget.
type countPlan struct {
	n   int     // failure count
	k   int     // Monte-Carlo samples assigned to it
	per float64 // weight per sample: Pr(N=n)/k
}

// plan lays out the Eq. (4)/(5) sample budget: for every failure count
// n = 1..Nmax with positive prior mass, k(n) ~ Pr(N=n)*Trun samples of
// weight Pr(N=n)/k(n). The flat global sample order (count-major) is what
// the engine shards, so the layout is independent of workers and shards.
func (p CDFParams) plan() (plans []countPlan, total, nmax int) {
	m := p.Cells()
	nmax = p.MaxFailures
	if nmax == 0 {
		nmax = stats.BinomialQuantile(m, p.Pcell, 0.9999)
		if nmax < 1 {
			nmax = 1
		}
	}
	for n := 1; n <= nmax; n++ {
		w := stats.BinomialPMF(m, p.Pcell, n)
		if w <= 0 {
			continue
		}
		k := int(w*p.Trun + 0.5)
		if k < 1 {
			k = 1
		}
		if p.MaxPerCount > 0 && k > p.MaxPerCount {
			k = p.MaxPerCount
		}
		plans = append(plans, countPlan{n: n, k: k, per: w / float64(k)})
		total += k
	}
	return plans, total, nmax
}

// cancelPollMask gates how often the per-sample hot loop polls the run's
// done channel: every 4096 samples, cheap against the per-sample work yet
// prompt against any realistic budget (a shard holds thousands of samples).
const cancelPollMask = 1<<12 - 1

// MSECDFAll runs the Fig. 5 Monte Carlo for every scheme at once on the
// parallel engine, with common random numbers across the arms: each fault
// map is drawn once (per-row bitmasks, no allocations) and scored by all
// schemes, so fault-map generation is paid once instead of once per arm
// and between-arm comparisons such as ReductionAtYield see the same
// samples on both sides (variance reduction by positive correlation).
//
// The sample budget is split into p.Shards deterministic RNG streams
// executed by p.Workers goroutines; shard outputs merge in shard order,
// so every result is bit-identical for any worker count.
func MSECDFAll(p CDFParams, schemes []Scheme) []CDFResult {
	rs, err := MSECDFAllEnv(mc.Env{}, p, schemes)
	if err != nil {
		// Unreachable: the zero Env's background context never cancels.
		panic(fmt.Sprintf("yield: background CDF run failed: %v", err))
	}
	return rs
}

// MSECDFAllEnv is MSECDFAll under an execution environment: identical
// samples and accumulators when the context stays live (the campaign is
// bit-identical to MSECDFAll for any worker count), ctx.Err() without
// results when it is cancelled or deadlined mid-flight. Cancellation is
// polled between shards by the engine and every few thousand samples
// inside each shard, so even single-shard budgets return promptly. The
// environment's OnShard callback sees each completed shard.
func MSECDFAllEnv(env mc.Env, p CDFParams, schemes []Scheme) ([]CDFResult, error) {
	if p.Rows <= 0 || p.Width <= 0 || p.Width > 64 || p.Trun <= 0 {
		panic(fmt.Sprintf("yield: bad CDF params %+v", p))
	}
	if len(schemes) == 0 {
		panic("yield: no schemes")
	}
	plans, total, nmax := p.plan()
	spans := mc.Split(total, p.Shards)
	cancel := env.Done()

	// Accumulator factory: exact retention for small budgets (and as the
	// test oracle), the fixed-bin log-histogram above the auto threshold
	// or on request — O(bins) per shard regardless of the sample count.
	useHist := p.Accum == AccumHist || (p.Accum == AccumAuto && total >= HistAutoSamples)
	newAcc := func(reserve int) stats.Accumulator {
		if useHist {
			return stats.NewLogHistogram(p.Bins, mseLogMin, mseLogMax)
		}
		c := &stats.WeightedCDF{}
		c.Reserve(reserve)
		return c
	}

	outs, err := mc.RunEnv(env, p.Workers, len(spans), p.Seed, func(shard int, rng *rand.Rand) []stats.Accumulator {
		span := spans[shard]
		accs := make([]stats.Accumulator, len(schemes))
		for j := range accs {
			accs[j] = newAcc(span.End - span.Start)
		}
		sampler := NewRowSampler(p.Rows, p.Width)
		// Locate the span's first (count, sample) pair, then stream
		// through the count-major global order. Everything below Add is
		// allocation-free: the sampler reuses its masks and each
		// accumulator is either pre-reserved to the span size or
		// fixed-size bins.
		idx, off := 0, span.Start
		for idx < len(plans) && off >= plans[idx].k {
			off -= plans[idx].k
			idx++
		}
		for g := span.Start; g < span.End; g++ {
			if g&cancelPollMask == 0 {
				select {
				case <-cancel:
					// Abandon the shard; the engine reports ctx.Err() and
					// the partial accumulators are discarded with it.
					return accs
				default:
				}
			}
			for off >= plans[idx].k {
				off = 0
				idx++
			}
			sampler.Draw(rng, plans[idx].n)
			for j, s := range schemes {
				accs[j].Add(sampler.MSE(s), plans[idx].per)
			}
			off++
		}
		return accs
	})
	if err != nil {
		return nil, err
	}

	p0 := stats.BinomialPMF(p.Cells(), p.Pcell, 0)
	results := make([]CDFResult, len(schemes))
	for j, s := range schemes {
		acc := newAcc(total)
		for _, shard := range outs {
			acc.Merge(shard[j])
		}
		results[j] = CDFResult{
			Scheme:           s.Name(),
			CDF:              acc,
			Histogram:        useHist,
			PZeroFailures:    p0,
			Samples:          total,
			MaxFailuresSwept: nmax,
		}
	}
	return results, nil
}

// MSECDF runs the Fig. 5 Monte Carlo for one scheme: for every failure
// count n = 1..Nmax, it draws samples(n) ~ Pr(N=n)*Trun random fault maps
// (Eq. 4 prior, uniform fault placement), computes the post-mitigation
// MSE of Eq. (6), and accumulates the weighted CDF of Eq. (5).
func MSECDF(p CDFParams, s Scheme) CDFResult {
	return MSECDFAll(p, []Scheme{s})[0]
}

// YieldAtMSE returns the quality-aware yield at a target MSE: the
// probability that a manufactured die satisfies MSE < target, including
// the fault-free mass Pr(N=0) (Eq. 5 evaluated as a yield criterion, §4).
func (r CDFResult) YieldAtMSE(target float64) float64 {
	p0 := r.PZeroFailures
	if r.CDF.TotalWeight() == 0 {
		return p0
	}
	// CDF is conditioned on N>=1 and its total weight approximates
	// Pr(N>=1); use the actual accumulated mass for consistency.
	return p0 + r.CDF.TotalWeight()*r.CDF.P(target)
}

// MSEAtYield returns the smallest MSE target that achieves the requested
// yield q (the x-axis reading of Fig. 5 at CDF level q). If the fault-free
// mass alone reaches q it returns 0.
func (r CDFResult) MSEAtYield(q float64) float64 {
	if q <= r.PZeroFailures {
		return 0
	}
	if r.CDF.TotalWeight() == 0 {
		panic("yield: empty CDF cannot reach requested yield")
	}
	cond := (q - r.PZeroFailures) / r.CDF.TotalWeight()
	if cond >= 1 {
		cond = 1
	}
	return r.CDF.Quantile(cond)
}

// ReductionAtYield returns the factor by which scheme a reduces the MSE
// that must be tolerated at yield level q compared with scheme b:
// MSE_b(q) / MSE_a(q). The paper reports a minimum 30x reduction for
// nFM=1 versus no protection (§4).
func ReductionAtYield(a, b CDFResult, q float64) float64 {
	ma := a.MSEAtYield(q)
	mb := b.MSEAtYield(q)
	if ma == 0 {
		if mb == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return mb / ma
}
