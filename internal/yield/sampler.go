package yield

import (
	"fmt"
	"math/rand"

	"faultmem/internal/fault"
)

// RowSampler draws uniform distinct-cell fault maps for a rows x width
// array directly into per-row column bitmasks, replacing the allocating
// fault.Map + ByRow() pipeline in the Monte-Carlo inner loop. One sampler
// is reused across samples: Draw resets only the rows the previous sample
// touched, so a draw of n faults costs O(n) with zero allocations.
//
// Width must be at most 64 so that a row's faulty columns fit one word —
// the representation Scheme.RowMSE consumes.
type RowSampler struct {
	rows, width int
	cells       int
	masks       []uint64 // per-row fault mask, maintained sparse
	touched     []int    // rows with >= 1 fault, in first-touch order
}

// NewRowSampler returns a sampler for a rows x width array.
func NewRowSampler(rows, width int) *RowSampler {
	if rows <= 0 || width <= 0 || width > 64 {
		panic(fmt.Sprintf("yield: bad sampler geometry %dx%d", rows, width))
	}
	return &RowSampler{
		rows:  rows,
		width: width,
		cells: rows * width,
		masks: make([]uint64, rows),
		// Worst case every fault lands on its own row; sized lazily by
		// Draw so typical fault counts never regrow it.
		touched: make([]int, 0, 256),
	}
}

// Draw replaces the sampler's contents with n faults placed uniformly at
// random over distinct cells — the same distribution as
// fault.GenerateCount — using duplicate rejection against the row masks
// themselves. It performs no allocations once touched has grown to the
// largest row count seen (pre-sized to 256 rows).
func (s *RowSampler) Draw(rng *rand.Rand, n int) {
	if n > s.cells {
		panic(fmt.Sprintf("yield: %d faults exceed %d cells", n, s.cells))
	}
	s.Reset()
	for placed := 0; placed < n; {
		cell := rng.Intn(s.cells)
		row := cell / s.width
		bit := uint64(1) << uint(cell%s.width)
		if s.masks[row]&bit != 0 {
			continue // duplicate cell: redraw
		}
		if s.masks[row] == 0 {
			s.touched = append(s.touched, row)
		}
		s.masks[row] |= bit
		placed++
	}
}

// Reset clears the sampler by zeroing only the touched rows.
func (s *RowSampler) Reset() {
	for _, r := range s.touched {
		s.masks[r] = 0
	}
	s.touched = s.touched[:0]
}

// Rows returns the faulty row indices of the current sample in
// first-touch order. The slice is owned by the sampler and valid until
// the next Draw or Reset.
func (s *RowSampler) Rows() []int { return s.touched }

// Mask returns the faulty-column bitmask of one row.
func (s *RowSampler) Mask(row int) uint64 { return s.masks[row] }

// MSE evaluates Eq. (6) for the current sample under the given scheme:
// (1/R) * sum over faulty rows of RowMSE(mask). This is the
// allocation-free equivalent of MSEFromRowFaults(fm.ByRow(), rows, s).
func (s *RowSampler) MSE(sch Scheme) float64 {
	sum := 0.0
	for _, r := range s.touched {
		sum += sch.RowMSE(s.masks[r])
	}
	return sum / float64(s.rows)
}

// Faults exports the current sample as a fault.Map with the given kind,
// for interop with consumers that need explicit fault coordinates (e.g.
// the redundancy-repair allocator). It allocates; the Monte-Carlo hot
// path never calls it.
func (s *RowSampler) Faults(kind fault.Kind) fault.Map {
	n := 0
	for _, r := range s.touched {
		for m := s.masks[r]; m != 0; m &= m - 1 {
			n++
		}
	}
	out := make(fault.Map, 0, n)
	for _, r := range s.touched {
		for c := 0; c < s.width; c++ {
			if s.masks[r]&(uint64(1)<<uint(c)) != 0 {
				out = append(out, fault.Fault{Row: r, Col: c, Kind: kind})
			}
		}
	}
	return out
}
