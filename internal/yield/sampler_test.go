package yield

import (
	"testing"

	"faultmem/internal/fault"
	"faultmem/internal/stats"
)

func TestRowSamplerDrawExactCount(t *testing.T) {
	s := NewRowSampler(64, 32)
	rng := stats.NewRand(3)
	for _, n := range []int{0, 1, 5, 40, 200} {
		s.Draw(rng, n)
		total := 0
		for _, r := range s.Rows() {
			mask := s.Mask(r)
			if mask == 0 {
				t.Fatalf("n=%d: touched row %d has empty mask", n, r)
			}
			for m := mask; m != 0; m &= m - 1 {
				total++
			}
		}
		if total != n {
			t.Fatalf("n=%d: sampler holds %d faults", n, total)
		}
	}
}

func TestRowSamplerResetBetweenDraws(t *testing.T) {
	s := NewRowSampler(32, 32)
	rng := stats.NewRand(1)
	s.Draw(rng, 100)
	s.Draw(rng, 1)
	if len(s.Rows()) != 1 {
		t.Fatalf("stale rows after redraw: %v", s.Rows())
	}
	seen := 0
	for r := 0; r < 32; r++ {
		if s.Mask(r) != 0 {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("%d rows carry stale masks", seen)
	}
}

func TestRowSamplerUniformOverCells(t *testing.T) {
	// Chi-square-style sanity check: each of the 512 cells of a 16x32
	// array should receive ~ draws*4/512 hits.
	s := NewRowSampler(16, 32)
	rng := stats.NewRand(7)
	hits := make([]int, 512)
	const draws = 20000
	for i := 0; i < draws; i++ {
		s.Draw(rng, 4)
		for _, r := range s.Rows() {
			for m := s.Mask(r); m != 0; m &= m - 1 {
				c := 0
				for v := m & (-m); v > 1; v >>= 1 {
					c++
				}
				hits[r*32+c]++
			}
		}
	}
	want := float64(draws) * 4 / 512
	for i, h := range hits {
		if float64(h) < want*0.7 || float64(h) > want*1.3 {
			t.Fatalf("cell %d: %d hits, want ~%.0f", i, h, want)
		}
	}
}

func TestRowSamplerFaultsExport(t *testing.T) {
	s := NewRowSampler(64, 32)
	rng := stats.NewRand(11)
	s.Draw(rng, 23)
	fm := s.Faults(fault.Flip)
	if len(fm) != 23 {
		t.Fatalf("exported %d faults", len(fm))
	}
	if err := fm.Validate(64, 32); err != nil {
		t.Fatal(err)
	}
	// The export must agree with the masks.
	for _, f := range fm {
		if s.Mask(f.Row)&(1<<uint(f.Col)) == 0 {
			t.Fatalf("exported fault (%d,%d) not in mask", f.Row, f.Col)
		}
	}
}

func TestRowSamplerMSEMatchesResidualPath(t *testing.T) {
	// The mask path must agree exactly with the legacy Residual-slice
	// path for every scheme on the same fault sets.
	rng := stats.NewRand(99)
	schemes := []Scheme{
		Unprotected{}, NewShuffled(1), NewShuffled(2), NewShuffled(5),
		FullECC{}, PriorityECC{}, PriorityECC{Protected: 8}, PriorityECC{Protected: 24},
	}
	s := NewRowSampler(64, 32)
	for trial := 0; trial < 2000; trial++ {
		fm := fault.GenerateCount(rng, 64, 32, rng.Intn(12)+1, fault.Flip)
		s.Reset()
		for _, f := range fm {
			if s.masks[f.Row] == 0 {
				s.touched = append(s.touched, f.Row)
			}
			s.masks[f.Row] |= 1 << uint(f.Col)
		}
		for _, sch := range schemes {
			want := MSEFromRowFaults(fm.ByRow(), 64, sch)
			got := s.MSE(sch)
			diff := want - got
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-9*(want+1) {
				t.Fatalf("scheme %s: mask MSE %g != residual MSE %g (map %v)",
					sch.Name(), got, want, fm)
			}
		}
	}
}

func TestShuffledRowMSEWithoutMemo(t *testing.T) {
	// A hand-built Shuffled value (no memo) must agree with NewShuffled.
	fast := NewShuffled(3)
	slow := Shuffled{Cfg: fast.Cfg}
	for c := 0; c < 32; c++ {
		m := uint64(1) << uint(c)
		if fast.RowMSE(m) != slow.RowMSE(m) {
			t.Fatalf("col %d: memo %g != direct %g", c, fast.RowMSE(m), slow.RowMSE(m))
		}
	}
	if fast.RowMSE(0b1010010) != slow.RowMSE(0b1010010) {
		t.Fatal("multi-fault mask disagrees")
	}
}
