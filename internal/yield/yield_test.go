package yield

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"faultmem/internal/core"
)

func TestUnprotectedResidual(t *testing.T) {
	cols := []int{3, 17, 31}
	got := Unprotected{}.Residual(cols)
	if len(got) != 3 {
		t.Fatalf("residual count %d", len(got))
	}
	for i := range cols {
		if got[i] != cols[i] {
			t.Errorf("residual[%d] = %d", i, got[i])
		}
	}
	// Must be a copy, not an alias.
	got[0] = 99
	if cols[0] == 99 {
		t.Error("Residual aliased its input")
	}
}

func TestFullECCResidual(t *testing.T) {
	e := FullECC{}
	if got := e.Residual([]int{31}); len(got) != 0 {
		t.Errorf("single fault not corrected: %v", got)
	}
	if got := e.Residual(nil); len(got) != 0 {
		t.Errorf("no faults: %v", got)
	}
	if got := e.Residual([]int{3, 31}); len(got) != 2 {
		t.Errorf("double fault residual %v", got)
	}
}

func TestPriorityECCResidual(t *testing.T) {
	p := PriorityECC{}
	// Single upper fault: corrected.
	if got := p.Residual([]int{25}); len(got) != 0 {
		t.Errorf("single upper fault: %v", got)
	}
	// Lower fault: always residual.
	if got := p.Residual([]int{5}); len(got) != 1 || got[0] != 5 {
		t.Errorf("lower fault: %v", got)
	}
	// Two upper: uncorrectable, both residual.
	got := p.Residual([]int{20, 30})
	sort.Ints(got)
	if len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Errorf("two upper faults: %v", got)
	}
	// Mixed: lower persists, single upper corrected.
	if got := p.Residual([]int{5, 25}); len(got) != 1 || got[0] != 5 {
		t.Errorf("mixed faults: %v", got)
	}
}

func TestShuffledResidualBound(t *testing.T) {
	// Single-fault residual must respect b mod S for every nFM.
	for nfm := 1; nfm <= 5; nfm++ {
		s := NewShuffled(nfm)
		segSize := core.Config{Width: 32, NFM: nfm}.SegmentSize()
		for f := 0; f < 32; f++ {
			got := s.Residual([]int{f})
			if len(got) != 1 || got[0] != f%segSize {
				t.Errorf("nFM=%d f=%d: residual %v", nfm, f, got)
			}
		}
	}
}

func TestSchemeNames(t *testing.T) {
	if (Unprotected{}).Name() != "No Correction" ||
		NewShuffled(2).Name() != "nFM=2-Bit" ||
		(FullECC{}).Name() != "H(39,32) ECC" ||
		(PriorityECC{}).Name() != "H(22,16) P-ECC" {
		t.Error("scheme names wrong")
	}
}

func TestMSEEq6SingleFault(t *testing.T) {
	// Eq. (6): one failure at bit b in an R-row memory gives (2^b)^2 / R.
	rows := 4096
	for _, b := range []int{0, 15, 31} {
		got := MSEFromRowFaults(map[int][]int{7: {b}}, rows, Unprotected{})
		want := math.Ldexp(1, 2*b) / float64(rows)
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("b=%d: MSE %g, want %g", b, got, want)
		}
	}
}

func TestMSEAdditiveOverFailures(t *testing.T) {
	rows := 64
	a := MSEFromRowFaults(map[int][]int{1: {5}}, rows, Unprotected{})
	b := MSEFromRowFaults(map[int][]int{2: {9}}, rows, Unprotected{})
	both := MSEFromRowFaults(map[int][]int{1: {5}, 2: {9}}, rows, Unprotected{})
	if math.Abs(both-(a+b)) > 1e-12 {
		t.Errorf("MSE not additive: %g vs %g", both, a+b)
	}
}

func TestMSEOrderingAcrossSchemes(t *testing.T) {
	// For any single fault, MSE obeys: shuffled(5) <= shuffled(1) <=
	// unprotected, and ECC = 0.
	f := func(colRaw uint8) bool {
		col := int(colRaw) % 32
		rf := map[int][]int{0: {col}}
		rows := 16
		un := MSEFromRowFaults(rf, rows, Unprotected{})
		s1 := MSEFromRowFaults(rf, rows, NewShuffled(1))
		s5 := MSEFromRowFaults(rf, rows, NewShuffled(5))
		eccv := MSEFromRowFaults(rf, rows, FullECC{})
		return s5 <= s1 && s1 <= un && eccv == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMSECDFOrderingFig5(t *testing.T) {
	// The Fig. 5 shape: at the median yield level, the tolerated MSE
	// must be ordered No-Correction >> nFM=1 >= nFM=2 >= ... >= nFM=5.
	p := DefaultCDFParams()
	p.Trun = 3e4 // keep the test fast; ordering is robust
	un := MSECDF(p, Unprotected{})
	results := []CDFResult{un}
	for nfm := 1; nfm <= 5; nfm++ {
		results = append(results, MSECDF(p, NewShuffled(nfm)))
	}
	q := 0.9
	prev := math.Inf(1)
	for i, r := range results {
		mse := r.MSEAtYield(q)
		if mse > prev*1.0000001 {
			t.Errorf("arm %d (%s): MSE at yield %.2f = %g not decreasing (prev %g)",
				i, r.Scheme, q, mse, prev)
		}
		prev = mse
	}
}

func TestMSECDF30xReductionClaim(t *testing.T) {
	// §4: "a minimum 30x reduction in MSE that must be tolerated to
	// achieve a given target yield, even for the nFM=1 case".
	p := DefaultCDFParams()
	p.Trun = 3e4
	un := MSECDF(p, Unprotected{})
	s1 := MSECDF(p, NewShuffled(1))
	for _, q := range []float64{0.8, 0.9, 0.99} {
		red := ReductionAtYield(s1, un, q)
		if red < 30 {
			t.Errorf("yield %.2f: reduction %.1fx < 30x", q, red)
		}
	}
}

func TestYieldAtMSETargetNFM1(t *testing.T) {
	// §4: with target MSE < 1e6, nFM=1 achieves near-perfect yield. A
	// single fault under nFM=1 costs at most (2^15)^2/4096 = 2.6e5, so
	// only improbable many-fault samples (chiefly rare same-row pairs)
	// can violate the target. The converged tail mass is ~2.7e-5, i.e.
	// ~5 tail hits per 1e5 samples — discrete enough that the estimate
	// needs a 10x budget (with the per-count cap lifted accordingly) to
	// sit stably below the 1e-4 bound. The engine makes this cheap.
	p := DefaultCDFParams()
	p.Trun = 2e6
	p.MaxPerCount = 200000
	s1 := MSECDF(p, NewShuffled(1))
	if y := s1.YieldAtMSE(1e6); y < 0.9999 {
		t.Errorf("nFM=1 yield at MSE<1e6 = %.6f, want ~1", y)
	}
	un := MSECDF(p, Unprotected{})
	yU := un.YieldAtMSE(1e6)
	yS := s1.YieldAtMSE(1e6)
	if yS <= yU {
		t.Errorf("shuffling did not improve yield: %.4f vs %.4f", yS, yU)
	}
}

func TestPECCBetweenUnprotectedAndNFM2(t *testing.T) {
	// Fig. 5: P-ECC clearly beats no protection; nFM=2..5 beat P-ECC.
	p := DefaultCDFParams()
	p.Trun = 3e4
	un := MSECDF(p, Unprotected{})
	pecc := MSECDF(p, PriorityECC{})
	s2 := MSECDF(p, NewShuffled(2))
	q := 0.9
	if !(pecc.MSEAtYield(q) < un.MSEAtYield(q)) {
		t.Error("P-ECC does not beat no-correction")
	}
	if !(s2.MSEAtYield(q) <= pecc.MSEAtYield(q)) {
		t.Error("nFM=2 does not beat P-ECC")
	}
}

func TestCDFResultBasics(t *testing.T) {
	p := DefaultCDFParams()
	p.Trun = 1e4
	r := MSECDF(p, Unprotected{})
	if r.Samples == 0 {
		t.Fatal("no samples drawn")
	}
	if r.PZeroFailures <= 0 || r.PZeroFailures >= 1 {
		t.Errorf("Pr(N=0) = %g", r.PZeroFailures)
	}
	// Total CDF weight approximates Pr(N>=1).
	if w := r.CDF.TotalWeight(); math.Abs(w-(1-r.PZeroFailures)) > 0.01 {
		t.Errorf("CDF mass %g vs 1-P0 %g", w, 1-r.PZeroFailures)
	}
	// Yield at an absurd target is ~1; at 0 it is the fault-free mass.
	if y := r.YieldAtMSE(1e300); y < 0.999 {
		t.Errorf("yield at huge target %g", y)
	}
	if y := r.YieldAtMSE(0); math.Abs(y-r.PZeroFailures) > 1e-6 {
		t.Errorf("yield at 0 = %g, want P0 %g", y, r.PZeroFailures)
	}
}

func TestMSEAtYieldBelowP0IsZero(t *testing.T) {
	p := DefaultCDFParams()
	p.Trun = 1e4
	r := MSECDF(p, NewShuffled(5))
	if got := r.MSEAtYield(r.PZeroFailures / 2); got != 0 {
		t.Errorf("MSE at yield below P0 = %g, want 0", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := DefaultCDFParams()
	p.Trun = 5e3
	a := MSECDF(p, NewShuffled(3))
	b := MSECDF(p, NewShuffled(3))
	if a.Samples != b.Samples {
		t.Fatal("sample counts differ")
	}
	if a.MSEAtYield(0.9) != b.MSEAtYield(0.9) {
		t.Error("results not deterministic")
	}
}

func TestCommonRandomNumbersAcrossArms(t *testing.T) {
	// MSECDFAll evaluates every scheme on the same fault maps (common
	// random numbers), so running a scheme alongside others must give
	// exactly the result of running it alone at the same params.
	p := DefaultCDFParams()
	p.Trun = 5e3
	alone := MSECDF(p, NewShuffled(2))
	together := MSECDFAll(p, []Scheme{Unprotected{}, NewShuffled(2), FullECC{}})[1]
	if alone.Samples != together.Samples {
		t.Fatal("sample counts differ")
	}
	ax, ap := alone.CDF.Points()
	bx, bp := together.CDF.Points()
	if len(ax) != len(bx) {
		t.Fatalf("CDF sizes differ: %d vs %d", len(ax), len(bx))
	}
	for i := range ax {
		if ax[i] != bx[i] || ap[i] != bp[i] {
			t.Fatalf("CDF point %d differs: (%g,%g) vs (%g,%g)", i, ax[i], ap[i], bx[i], bp[i])
		}
	}
}
