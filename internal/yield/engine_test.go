package yield

import (
	"math"
	"runtime"
	"testing"

	"faultmem/internal/stats"
)

// fig5Schemes mirrors the seven arms of Fig. 5.
func fig5Schemes() []Scheme {
	return []Scheme{
		Unprotected{}, NewShuffled(1), NewShuffled(2), NewShuffled(3),
		NewShuffled(4), NewShuffled(5), PriorityECC{},
	}
}

func TestMSECDFAllWorkerCountInvariance(t *testing.T) {
	// The determinism contract: same seed => byte-identical CDFs for any
	// worker count. Compared via Float64bits so even a ULP of drift
	// (e.g. from a reordered merge) fails.
	p := DefaultCDFParams()
	p.Trun = 2e4
	run := func(workers int) []CDFResult {
		q := p
		q.Workers = workers
		return MSECDFAll(q, fig5Schemes())
	}
	ref := run(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0), 13} {
		got := run(w)
		for j := range ref {
			a, b := ref[j], got[j]
			if a.Samples != b.Samples || a.MaxFailuresSwept != b.MaxFailuresSwept {
				t.Fatalf("workers=%d %s: sample counts differ", w, a.Scheme)
			}
			if a.CDF.TotalWeight() != b.CDF.TotalWeight() {
				t.Fatalf("workers=%d %s: total weight %v != %v",
					w, a.Scheme, a.CDF.TotalWeight(), b.CDF.TotalWeight())
			}
			ax, ap := a.CDF.Points()
			bx, bp := b.CDF.Points()
			if len(ax) != len(bx) {
				t.Fatalf("workers=%d %s: CDF sizes differ", w, a.Scheme)
			}
			for i := range ax {
				if math.Float64bits(ax[i]) != math.Float64bits(bx[i]) ||
					math.Float64bits(ap[i]) != math.Float64bits(bp[i]) {
					t.Fatalf("workers=%d %s: CDF point %d differs", w, a.Scheme, i)
				}
			}
			for _, q := range []float64{0.6, 0.9, 0.99, 0.999} {
				qa, qb := a.MSEAtYield(q), b.MSEAtYield(q)
				if math.Float64bits(qa) != math.Float64bits(qb) {
					t.Fatalf("workers=%d %s: quantile at %g differs: %v != %v",
						w, a.Scheme, q, qa, qb)
				}
			}
		}
	}
}

func TestMSECDFAllShardCountChangesStreamsOnly(t *testing.T) {
	// Shard count selects the stream layout: results legitimately differ
	// across shard counts but each must be internally deterministic and
	// carry the same sample plan.
	p := DefaultCDFParams()
	p.Trun = 1e4
	a := MSECDFAll(p, fig5Schemes()[:1])[0]
	p.Shards = 7
	b1 := MSECDFAll(p, fig5Schemes()[:1])[0]
	b2 := MSECDFAll(p, fig5Schemes()[:1])[0]
	if a.Samples != b1.Samples {
		t.Fatal("shard count changed the sample plan")
	}
	if b1.MSEAtYield(0.9) != b2.MSEAtYield(0.9) {
		t.Fatal("fixed shard count not deterministic")
	}
}

func TestHotPathZeroAllocs(t *testing.T) {
	// The per-sample hot path — fault-map draw, residual evaluation for
	// every Fig. 5 arm, accumulation — must not allocate, in both
	// accumulator modes. This is the regression gate for the
	// allocation-free engine rewrite and its histogram extension.
	schemes := fig5Schemes()
	const rounds = 200
	for _, mode := range []string{"exact", "hist"} {
		accs := make([]stats.Accumulator, len(schemes))
		for j := range accs {
			if mode == "hist" {
				accs[j] = stats.NewLogHistogram(0, -8, 20)
			} else {
				c := &stats.WeightedCDF{}
				c.Reserve(rounds + 1)
				accs[j] = c
			}
		}
		sampler := NewRowSampler(4096, 32)
		rng := stats.NewRand(1)
		n := 1
		avg := testing.AllocsPerRun(rounds, func() {
			sampler.Draw(rng, n)
			for j, s := range schemes {
				accs[j].Add(sampler.MSE(s), 1e-6)
			}
			n = n%6 + 1 // cycle realistic failure counts
		})
		if avg != 0 {
			t.Fatalf("%s mode: per-sample hot path allocates %.1f times", mode, avg)
		}
	}
}

func TestMSECDFAllHistWorkerCountInvariance(t *testing.T) {
	// The determinism contract holds in histogram mode too: shard
	// histograms merge bin-wise in shard order, so every query is
	// bit-identical for any worker count.
	p := DefaultCDFParams()
	p.Trun = 2e4
	p.Accum = AccumHist
	run := func(workers int) []CDFResult {
		q := p
		q.Workers = workers
		return MSECDFAll(q, fig5Schemes())
	}
	ref := run(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0), 13} {
		got := run(w)
		for j := range ref {
			a, b := ref[j], got[j]
			if !a.Histogram || !b.Histogram {
				t.Fatalf("workers=%d %s: expected histogram mode", w, a.Scheme)
			}
			if math.Float64bits(a.CDF.TotalWeight()) != math.Float64bits(b.CDF.TotalWeight()) {
				t.Fatalf("workers=%d %s: total weight differs", w, a.Scheme)
			}
			ax, ap := a.CDF.Points()
			bx, bp := b.CDF.Points()
			if len(ax) != len(bx) {
				t.Fatalf("workers=%d %s: point counts differ", w, a.Scheme)
			}
			for i := range ax {
				if math.Float64bits(ax[i]) != math.Float64bits(bx[i]) ||
					math.Float64bits(ap[i]) != math.Float64bits(bp[i]) {
					t.Fatalf("workers=%d %s: point %d differs", w, a.Scheme, i)
				}
			}
			for _, q := range []float64{0.6, 0.9, 0.99, 0.999} {
				qa, qb := a.MSEAtYield(q), b.MSEAtYield(q)
				if math.Float64bits(qa) != math.Float64bits(qb) {
					t.Fatalf("workers=%d %s: quantile at %g differs: %v != %v",
						w, a.Scheme, q, qa, qb)
				}
			}
		}
	}
}

func TestHistogramAgreesWithExactOracle(t *testing.T) {
	// The exact WeightedCDF is the oracle: across every Fig. 5 arm the
	// histogram's CDF must agree within the straddling bin's mass at
	// each grid point, and its quantiles within one bin width in log
	// space.
	p := DefaultCDFParams()
	p.Trun = 2e4
	schemes := fig5Schemes()

	pe := p
	pe.Accum = AccumExact
	exact := MSECDFAll(pe, schemes)

	ph := p
	ph.Accum = AccumHist
	hist := MSECDFAll(ph, schemes)

	for j := range schemes {
		e, h := exact[j], hist[j]
		if e.Histogram || !h.Histogram {
			t.Fatal("mode selection wrong")
		}
		lh := h.CDF.(*stats.LogHistogram)
		width := lh.BinWidth()
		if math.Abs(e.CDF.TotalWeight()-h.CDF.TotalWeight()) > 1e-12 {
			t.Fatalf("%s: total weight %g vs %g", e.Scheme, h.CDF.TotalWeight(), e.CDF.TotalWeight())
		}
		for exp := -4.0; exp <= 8.0; exp += 0.5 {
			x := math.Pow(10, exp)
			binMass := h.CDF.P(x*math.Pow(10, width)) - h.CDF.P(x*math.Pow(10, -width))
			if diff := math.Abs(h.CDF.P(x) - e.CDF.P(x)); diff > binMass+1e-9 {
				t.Errorf("%s P(%g): hist %g vs exact %g (allowed %g)",
					e.Scheme, x, h.CDF.P(x), e.CDF.P(x), binMass)
			}
		}
		for _, q := range []float64{0.5, 0.8, 0.9, 0.99} {
			he, ee := h.MSEAtYield(q), e.MSEAtYield(q)
			if he == 0 && ee == 0 {
				continue
			}
			if he <= 0 || ee <= 0 {
				t.Errorf("%s MSE@%g: hist %g vs exact %g (one is zero)", e.Scheme, q, he, ee)
				continue
			}
			if math.Abs(math.Log10(he)-math.Log10(ee)) > width+1e-9 {
				t.Errorf("%s MSE@%g: hist %g vs exact %g (> one bin width)", e.Scheme, q, he, ee)
			}
		}
	}
}

func TestHistogramModeFlatMemoryAtPaperBudget(t *testing.T) {
	// The acceptance gate for the O(1)-memory path: a Trun=1e7 run must
	// not retain per-sample state — the accumulator's footprint is the
	// fixed bin array no matter how many samples stream through it.
	p := DefaultCDFParams()
	p.Trun = 1e7
	p.MaxPerCount = 0 // the paper's full per-count budget
	p.Accum = AccumAuto
	schemes := fig5Schemes()
	results := MSECDFAll(p, schemes)

	small := DefaultCDFParams()
	small.Trun = 1e5
	small.Accum = AccumHist
	smallRes := MSECDFAll(small, schemes[:1])[0]
	smallHist := smallRes.CDF.(*stats.LogHistogram)

	for _, r := range results {
		if !r.Histogram {
			t.Fatalf("%s: auto mode did not select the histogram at Trun=1e7 (%d samples)",
				r.Scheme, r.Samples)
		}
		lh := r.CDF.(*stats.LogHistogram)
		if got := int(lh.Count()); got != r.Samples {
			t.Fatalf("%s: histogram streamed %d of %d samples", r.Scheme, got, r.Samples)
		}
		// Retained state is bounded by the bin geometry, not the budget:
		// the 100x-larger run reports the same fixed capacity as the
		// small one.
		if lh.Bins() != smallHist.Bins() {
			t.Fatalf("%s: bin capacity scaled with the budget (%d vs %d)",
				r.Scheme, lh.Bins(), smallHist.Bins())
		}
		xs, _ := r.CDF.Points()
		if len(xs) > lh.Bins()+2 {
			t.Fatalf("%s: %d retained points exceed the %d-bin envelope",
				r.Scheme, len(xs), lh.Bins()+2)
		}
	}
}

func TestAccumAutoStaysExactBelowThreshold(t *testing.T) {
	p := DefaultCDFParams()
	p.Trun = 1e4
	r := MSECDFAll(p, fig5Schemes()[:1])[0]
	if r.Histogram {
		t.Fatalf("auto mode picked the histogram at %d samples", r.Samples)
	}
	if _, ok := r.CDF.(*stats.WeightedCDF); !ok {
		t.Fatalf("exact mode result is %T", r.CDF)
	}
}

// --- microbenchmarks of the engine datapaths (run with -benchmem) ---

func BenchmarkRowSamplerDraw(b *testing.B) {
	sampler := NewRowSampler(4096, 32)
	rng := stats.NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sampler.Draw(rng, 4)
	}
}

func benchmarkRowMSE(b *testing.B, s Scheme) {
	sampler := NewRowSampler(4096, 32)
	rng := stats.NewRand(1)
	sampler.Draw(rng, 6)
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += sampler.MSE(s)
	}
	_ = acc
}

func BenchmarkRowMSEUnprotected(b *testing.B) { benchmarkRowMSE(b, Unprotected{}) }
func BenchmarkRowMSEShuffled1(b *testing.B)   { benchmarkRowMSE(b, NewShuffled(1)) }
func BenchmarkRowMSEShuffled5(b *testing.B)   { benchmarkRowMSE(b, NewShuffled(5)) }
func BenchmarkRowMSEPriorityECC(b *testing.B) {
	benchmarkRowMSE(b, PriorityECC{})
}

// BenchmarkMSECDFAllFig5 is the engine-level benchmark at the Fig. 5
// bench budget: all seven arms, one common-random-numbers pass.
func BenchmarkMSECDFAllFig5(b *testing.B) {
	p := DefaultCDFParams()
	p.Trun = 2e4
	schemes := fig5Schemes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MSECDFAll(p, schemes)
	}
}

// BenchmarkMSECDFAllFig5Serial pins the engine to one worker, isolating
// the algorithmic (allocation-free + common-random-numbers) speedup from
// the parallel speedup.
func BenchmarkMSECDFAllFig5Serial(b *testing.B) {
	p := DefaultCDFParams()
	p.Trun = 2e4
	p.Workers = 1
	schemes := fig5Schemes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MSECDFAll(p, schemes)
	}
}
