package yield

import (
	"math"
	"runtime"
	"testing"

	"faultmem/internal/stats"
)

// fig5Schemes mirrors the seven arms of Fig. 5.
func fig5Schemes() []Scheme {
	return []Scheme{
		Unprotected{}, NewShuffled(1), NewShuffled(2), NewShuffled(3),
		NewShuffled(4), NewShuffled(5), PriorityECC{},
	}
}

func TestMSECDFAllWorkerCountInvariance(t *testing.T) {
	// The determinism contract: same seed => byte-identical CDFs for any
	// worker count. Compared via Float64bits so even a ULP of drift
	// (e.g. from a reordered merge) fails.
	p := DefaultCDFParams()
	p.Trun = 2e4
	run := func(workers int) []CDFResult {
		q := p
		q.Workers = workers
		return MSECDFAll(q, fig5Schemes())
	}
	ref := run(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0), 13} {
		got := run(w)
		for j := range ref {
			a, b := ref[j], got[j]
			if a.Samples != b.Samples || a.MaxFailuresSwept != b.MaxFailuresSwept {
				t.Fatalf("workers=%d %s: sample counts differ", w, a.Scheme)
			}
			if a.CDF.TotalWeight() != b.CDF.TotalWeight() {
				t.Fatalf("workers=%d %s: total weight %v != %v",
					w, a.Scheme, a.CDF.TotalWeight(), b.CDF.TotalWeight())
			}
			ax, ap := a.CDF.Points()
			bx, bp := b.CDF.Points()
			if len(ax) != len(bx) {
				t.Fatalf("workers=%d %s: CDF sizes differ", w, a.Scheme)
			}
			for i := range ax {
				if math.Float64bits(ax[i]) != math.Float64bits(bx[i]) ||
					math.Float64bits(ap[i]) != math.Float64bits(bp[i]) {
					t.Fatalf("workers=%d %s: CDF point %d differs", w, a.Scheme, i)
				}
			}
			for _, q := range []float64{0.6, 0.9, 0.99, 0.999} {
				qa, qb := a.MSEAtYield(q), b.MSEAtYield(q)
				if math.Float64bits(qa) != math.Float64bits(qb) {
					t.Fatalf("workers=%d %s: quantile at %g differs: %v != %v",
						w, a.Scheme, q, qa, qb)
				}
			}
		}
	}
}

func TestMSECDFAllShardCountChangesStreamsOnly(t *testing.T) {
	// Shard count selects the stream layout: results legitimately differ
	// across shard counts but each must be internally deterministic and
	// carry the same sample plan.
	p := DefaultCDFParams()
	p.Trun = 1e4
	a := MSECDFAll(p, fig5Schemes()[:1])[0]
	p.Shards = 7
	b1 := MSECDFAll(p, fig5Schemes()[:1])[0]
	b2 := MSECDFAll(p, fig5Schemes()[:1])[0]
	if a.Samples != b1.Samples {
		t.Fatal("shard count changed the sample plan")
	}
	if b1.MSEAtYield(0.9) != b2.MSEAtYield(0.9) {
		t.Fatal("fixed shard count not deterministic")
	}
}

func TestHotPathZeroAllocs(t *testing.T) {
	// The per-sample hot path — fault-map draw, residual evaluation for
	// every Fig. 5 arm, CDF accumulation — must not allocate. This is the
	// regression gate for the allocation-free engine rewrite.
	schemes := fig5Schemes()
	sampler := NewRowSampler(4096, 32)
	cdfs := make([]stats.WeightedCDF, len(schemes))
	const rounds = 200
	for j := range cdfs {
		cdfs[j].Reserve(rounds + 1)
	}
	rng := stats.NewRand(1)
	n := 1
	avg := testing.AllocsPerRun(rounds, func() {
		sampler.Draw(rng, n)
		for j, s := range schemes {
			cdfs[j].Add(sampler.MSE(s), 1e-6)
		}
		n = n%6 + 1 // cycle realistic failure counts
	})
	if avg != 0 {
		t.Fatalf("per-sample hot path allocates %.1f times", avg)
	}
}

// --- microbenchmarks of the engine datapaths (run with -benchmem) ---

func BenchmarkRowSamplerDraw(b *testing.B) {
	sampler := NewRowSampler(4096, 32)
	rng := stats.NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sampler.Draw(rng, 4)
	}
}

func benchmarkRowMSE(b *testing.B, s Scheme) {
	sampler := NewRowSampler(4096, 32)
	rng := stats.NewRand(1)
	sampler.Draw(rng, 6)
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += sampler.MSE(s)
	}
	_ = acc
}

func BenchmarkRowMSEUnprotected(b *testing.B) { benchmarkRowMSE(b, Unprotected{}) }
func BenchmarkRowMSEShuffled1(b *testing.B)   { benchmarkRowMSE(b, NewShuffled(1)) }
func BenchmarkRowMSEShuffled5(b *testing.B)   { benchmarkRowMSE(b, NewShuffled(5)) }
func BenchmarkRowMSEPriorityECC(b *testing.B) {
	benchmarkRowMSE(b, PriorityECC{})
}

// BenchmarkMSECDFAllFig5 is the engine-level benchmark at the Fig. 5
// bench budget: all seven arms, one common-random-numbers pass.
func BenchmarkMSECDFAllFig5(b *testing.B) {
	p := DefaultCDFParams()
	p.Trun = 2e4
	schemes := fig5Schemes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MSECDFAll(p, schemes)
	}
}

// BenchmarkMSECDFAllFig5Serial pins the engine to one worker, isolating
// the algorithmic (allocation-free + common-random-numbers) speedup from
// the parallel speedup.
func BenchmarkMSECDFAllFig5Serial(b *testing.B) {
	p := DefaultCDFParams()
	p.Trun = 2e4
	p.Workers = 1
	schemes := fig5Schemes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MSECDFAll(p, schemes)
	}
}
