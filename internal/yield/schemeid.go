package yield

import "fmt"

// SchemeID identifies a protection scheme by its canonical CLI name. It
// replaces the stringly-typed scheme switches that used to live in the
// public facade and both CLIs: parse once with ParseScheme, then carry the
// typed ID through tables, flags, and the experiment registry.
type SchemeID int

const (
	// SchemeNone is the unprotected baseline ("none").
	SchemeNone SchemeID = iota
	// SchemeNFM1..SchemeNFM5 are the bit-shuffling configurations
	// ("nfm1".."nfm5").
	SchemeNFM1
	SchemeNFM2
	SchemeNFM3
	SchemeNFM4
	SchemeNFM5
	// SchemePECC is H(22,16) priority ECC on the 16 MSBs ("pecc").
	SchemePECC
	// SchemeECC is full-word H(39,32) SECDED ("ecc").
	SchemeECC

	numSchemeIDs
)

// AllSchemeIDs returns every scheme in presentation order (the Fig. 5
// column order: unprotected, the five shuffles, P-ECC, full ECC).
func AllSchemeIDs() []SchemeID {
	return []SchemeID{SchemeNone, SchemeNFM1, SchemeNFM2, SchemeNFM3,
		SchemeNFM4, SchemeNFM5, SchemePECC, SchemeECC}
}

// ParseScheme maps a canonical CLI name to the scheme ID.
func ParseScheme(s string) (SchemeID, error) {
	switch s {
	case "none":
		return SchemeNone, nil
	case "ecc":
		return SchemeECC, nil
	case "pecc":
		return SchemePECC, nil
	case "nfm1", "nfm2", "nfm3", "nfm4", "nfm5":
		return SchemeNFM1 + SchemeID(s[3]-'1'), nil
	default:
		return 0, fmt.Errorf("yield: unknown scheme %q (want none|ecc|pecc|nfm1..nfm5)", s)
	}
}

// Valid reports whether the ID names a real scheme.
func (id SchemeID) Valid() bool { return id >= 0 && id < numSchemeIDs }

// String returns the canonical CLI spelling — the inverse of ParseScheme.
func (id SchemeID) String() string {
	switch id {
	case SchemeNone:
		return "none"
	case SchemeECC:
		return "ecc"
	case SchemePECC:
		return "pecc"
	case SchemeNFM1, SchemeNFM2, SchemeNFM3, SchemeNFM4, SchemeNFM5:
		return fmt.Sprintf("nfm%d", id.NFM())
	default:
		return fmt.Sprintf("scheme(%d)", int(id))
	}
}

// Display returns the figure label of the scheme — identical to the name
// its residual-error model reports.
func (id SchemeID) Display() string { return id.Scheme().Name() }

// NFM returns the FM-LUT entry width of a shuffling scheme (0 for the
// non-shuffling schemes).
func (id SchemeID) NFM() int {
	if id >= SchemeNFM1 && id <= SchemeNFM5 {
		return int(id-SchemeNFM1) + 1
	}
	return 0
}

// Scheme returns the residual-error model of the scheme for the Eq. (6)
// MSE analysis. It panics on an invalid ID.
func (id SchemeID) Scheme() Scheme {
	switch id {
	case SchemeNone:
		return Unprotected{}
	case SchemeECC:
		return FullECC{}
	case SchemePECC:
		return PriorityECC{}
	default:
		if n := id.NFM(); n > 0 {
			return NewShuffled(n)
		}
		panic(fmt.Sprintf("yield: invalid scheme id %d", int(id)))
	}
}
