package yield

import (
	"math"
	"runtime"
	"testing"
)

// TestMSECDFSweepMatchesSerial is the contract the yieldcalc -sweep CLI
// rides on: evaluating the voltage points concurrently on the engine
// must give bit-identical results to the serial per-point loop at the
// same seed.
func TestMSECDFSweepMatchesSerial(t *testing.T) {
	base := DefaultCDFParams()
	base.Trun = 5e3
	base.MaxPerCount = 2000
	schemes := fig5Schemes()[:3]
	pcells := []float64{5e-6, 1e-4, 1e-3, 5e-3}

	sweep := MSECDFSweep(base, pcells, schemes)
	if len(sweep) != len(pcells) {
		t.Fatalf("%d sweep points, want %d", len(sweep), len(pcells))
	}
	for i, pc := range pcells {
		q := base
		q.Pcell = pc
		serial := MSECDFAll(q, schemes)
		for j := range schemes {
			a, b := serial[j], sweep[i][j]
			if a.Samples != b.Samples {
				t.Fatalf("pcell %g %s: samples %d != %d", pc, a.Scheme, b.Samples, a.Samples)
			}
			if math.Float64bits(a.CDF.TotalWeight()) != math.Float64bits(b.CDF.TotalWeight()) {
				t.Fatalf("pcell %g %s: total weight differs", pc, a.Scheme)
			}
			for _, target := range []float64{1e2, 1e4, 1e6, 1e8} {
				ya, yb := a.YieldAtMSE(target), b.YieldAtMSE(target)
				if math.Float64bits(ya) != math.Float64bits(yb) {
					t.Fatalf("pcell %g %s: yield@%g %v != %v", pc, a.Scheme, target, yb, ya)
				}
			}
		}
	}
}

// TestMSECDFSweepWorkerCountInvariance extends the determinism contract
// to the sweep: the outer engine's worker count cannot change any
// point's result.
func TestMSECDFSweepWorkerCountInvariance(t *testing.T) {
	base := DefaultCDFParams()
	base.Trun = 5e3
	base.MaxPerCount = 2000
	schemes := fig5Schemes()[:2]
	pcells := []float64{5e-6, 5e-4, 5e-3}

	run := func(workers int) [][]CDFResult {
		b := base
		b.Workers = workers
		return MSECDFSweep(b, pcells, schemes)
	}
	ref := run(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		got := run(w)
		for i := range ref {
			for j := range ref[i] {
				qa := ref[i][j].MSEAtYield(0.9)
				qb := got[i][j].MSEAtYield(0.9)
				if math.Float64bits(qa) != math.Float64bits(qb) {
					t.Fatalf("workers=%d point %d %s: MSE@0.9 %v != %v",
						w, i, ref[i][j].Scheme, qb, qa)
				}
			}
		}
	}
}
