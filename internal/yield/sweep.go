package yield

import (
	"fmt"
	"math/rand"
	"sync"

	"faultmem/internal/mc"
)

// MSECDFSweep evaluates the Fig. 5 Monte Carlo at every operating point
// (bit-cell failure probability) concurrently and returns the full
// results indexed [point][scheme], in pcells order. Every point uses
// base's seed and budget — exactly what a serial loop over
// MSECDFAll(base with Pcell=pcells[i]) would do — and MSECDFAll's
// results are bit-identical for any worker count, so the sweep's output
// equals the serial loop's no matter how the points are scheduled.
//
// Retaining every point's accumulator is fine at histogram-mode or
// test-scale budgets; callers that only need a few numbers per point
// (like the yieldcalc CLI) should reduce each point as it completes
// with MSECDFSweepMap instead.
func MSECDFSweep(base CDFParams, pcells []float64, schemes []Scheme) [][]CDFResult {
	return MSECDFSweepMap(base, pcells, schemes,
		func(_ int, rs []CDFResult) []CDFResult { return rs })
}

// MSECDFSweepMap runs the sweep and maps each operating point's results
// through reduce as soon as that point completes, retaining only the
// reduced values — so a long exact-mode sweep never holds more than the
// in-flight points' accumulators. Each point is one shard of an outer
// mc.Run whose pass keeps base's inner worker budget: the skewed
// low-voltage points (which hold most of the sweep's samples) still
// fan out across all cores instead of serializing on one goroutine,
// while the cheap points overlap around them. The Go scheduler
// time-slices the oversubscribed goroutines; determinism is unaffected
// because every engine result is worker-count-invariant.
func MSECDFSweepMap[T any](base CDFParams, pcells []float64, schemes []Scheme,
	reduce func(point int, rs []CDFResult) T) []T {
	out, err := MSECDFSweepMapEnv(mc.Env{}, base, pcells, schemes, reduce)
	if err != nil {
		// Unreachable: the zero Env's background context never cancels.
		panic(fmt.Sprintf("yield: background sweep failed: %v", err))
	}
	return out
}

// MSECDFSweepMapEnv is MSECDFSweepMap under an execution environment:
// identical output when the context stays live, ctx.Err() when it is
// cancelled or deadlined mid-sweep. The environment's OnShard callback
// counts completed operating points (not the inner engine shards, which
// would interleave across concurrent points); the context reaches the
// inner per-point campaigns, so cancellation is prompt even inside a
// single expensive point.
func MSECDFSweepMapEnv[T any](env mc.Env, base CDFParams, pcells []float64, schemes []Scheme,
	reduce func(point int, rs []CDFResult) T) ([]T, error) {
	if len(pcells) == 0 {
		return nil, env.Context().Err()
	}
	inner := mc.Env{Ctx: env.Ctx} // points report progress; shards stay quiet
	var mu sync.Mutex
	var firstErr error
	out, err := mc.RunEnv(env, base.Workers, len(pcells), base.Seed,
		func(i int, _ *rand.Rand) T {
			q := base
			q.Pcell = pcells[i]
			// All randomness comes from q.Seed inside MSECDFAllEnv, not
			// the shard RNG.
			rs, err := MSECDFAllEnv(inner, q, schemes)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				var zero T
				return zero
			}
			return reduce(i, rs)
		})
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
