package ecc

import "testing"

// FuzzDecodeStatusConsistency pins the three decode entrypoints to each
// other on arbitrary (mostly corrupt) codewords: for every preset code,
// Decode's status must agree word-for-word with DecodeBatchStatus and
// with DecodeBatch's aggregate counts, the recovered data must match,
// and a Corrected result must re-encode to a valid codeword (SECDED
// repaired exactly one bit, so the repaired word is a true codeword).
func FuzzDecodeStatusConsistency(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(^uint64(0))
	f.Add(uint64(0xdeadbeefcafe))
	f.Add(H39_32().Encode(0x12345678))
	f.Add(H39_32().Encode(0x12345678) ^ 1<<7)
	f.Add(H39_32().Encode(0x12345678) ^ 1<<7 ^ 1<<21)
	codes := []*Code{H39_32(), H22_16(), H13_8()}
	f.Fuzz(func(t *testing.T, cw uint64) {
		for _, c := range codes {
			data, st, fixedPos := c.Decode(cw)

			var dst [1]uint64
			var sts [1]Status
			corrected, uncorrectable := c.DecodeBatchStatus(dst[:], []uint64{cw}, sts[:])
			if sts[0] != st || dst[0] != data {
				t.Fatalf("%s: DecodeBatchStatus(%#x) = (%#x, %v), Decode = (%#x, %v)",
					c.Name(), cw, dst[0], sts[0], data, st)
			}
			wantCorr, wantUnc := uint64(0), uint64(0)
			switch st {
			case Corrected:
				wantCorr = 1
			case DetectedUncorrectable:
				wantUnc = 1
			}
			if corrected != wantCorr || uncorrectable != wantUnc {
				t.Fatalf("%s: DecodeBatchStatus(%#x) counts (%d, %d), Decode status %v",
					c.Name(), cw, corrected, uncorrectable, st)
			}
			corrected, uncorrectable = c.DecodeBatch(dst[:], []uint64{cw})
			if dst[0] != data || corrected != wantCorr || uncorrectable != wantUnc {
				t.Fatalf("%s: DecodeBatch(%#x) = (%#x, %d, %d), Decode = (%#x, %v)",
					c.Name(), cw, dst[0], corrected, uncorrectable, data, st)
			}

			switch st {
			case OK:
				// An error-free word is a codeword of its own data.
				if got := c.Encode(data); got != cw&((uint64(1)<<uint(c.n))-1) {
					t.Fatalf("%s: OK word %#x != Encode(%#x) = %#x", c.Name(), cw, data, got)
				}
				if fixedPos != -1 {
					t.Fatalf("%s: OK decode reported repaired bit %d", c.Name(), fixedPos)
				}
			case Corrected:
				// The repaired word (one bit flipped back) must be the
				// valid codeword of the recovered data.
				if fixedPos < 0 || fixedPos >= c.n {
					t.Fatalf("%s: corrected decode repaired bit %d outside [0,%d)", c.Name(), fixedPos, c.n)
				}
				repaired := (cw & ((uint64(1) << uint(c.n)) - 1)) ^ uint64(1)<<uint(fixedPos)
				if got := c.Encode(data); got != repaired {
					t.Fatalf("%s: corrected %#x repaired to %#x, Encode(%#x) = %#x",
						c.Name(), cw, repaired, data, got)
				}
				if d2, st2, _ := c.Decode(repaired); d2 != data || st2 != OK {
					t.Fatalf("%s: repaired word %#x re-decodes to (%#x, %v)", c.Name(), repaired, d2, st2)
				}
			case DetectedUncorrectable:
				if fixedPos != -1 {
					t.Fatalf("%s: uncorrectable decode reported repaired bit %d", c.Name(), fixedPos)
				}
			}
		}
	})
}
