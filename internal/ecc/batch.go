package ecc

import (
	"fmt"
	"math/bits"
)

// EncodeBatch encodes src[i] into dst[i] for every element. It is
// bit-identical to calling Encode per word, but hoists the scatter-run
// and coverage-mask table walks out of the per-call prologue so the
// encoder stays in registers across the batch — the bulk write path of
// an ECC-protected memory. dst and src must have equal length; they may
// be the same slice (each element is read before it is written).
func (c *Code) EncodeBatch(dst, src []uint64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("ecc: encode batch dst %d vs src %d", len(dst), len(src)))
	}
	kMask := (uint64(1) << uint(c.k)) - 1
	runs := c.runs
	covMasks := c.covMasks
	parityPos := c.parityPos
	for i, data := range src {
		data &= kMask
		var cw uint64
		for _, run := range runs {
			cw |= (data << run.shift) & run.mask
		}
		for j, pp := range parityPos {
			cw |= uint64(bits.OnesCount64(cw&covMasks[j])&1) << uint(pp)
		}
		cw |= uint64(bits.OnesCount64(cw) & 1)
		dst[i] = cw
	}
}

// DecodeBatch decodes cw[i] into dst[i] for every element, returning how
// many words were corrected and how many carried detected-uncorrectable
// errors. The recovered data, correction decisions, and the two counts
// are bit-identical to calling Decode per word and tallying its Status —
// the bulk read path of an ECC-protected memory. dst and cw must have
// equal length; they may be the same slice.
func (c *Code) DecodeBatch(dst, cw []uint64) (corrected, uncorrectable uint64) {
	if len(dst) != len(cw) {
		panic(fmt.Sprintf("ecc: decode batch dst %d vs cw %d", len(dst), len(cw)))
	}
	nMask := (uint64(1) << uint(c.n)) - 1
	runs := c.runs
	covMasks := c.covMasks
	maxPos := c.k + c.r
	for i, w := range cw {
		w &= nMask
		syn := 0
		for j, mask := range covMasks {
			syn |= (bits.OnesCount64(w&mask) & 1) << uint(j)
		}
		overall := bits.OnesCount64(w) & 1
		switch {
		case syn == 0 && overall == 0:
		case syn == 0 && overall == 1:
			w ^= 1
			corrected++
		case syn != 0 && overall == 1:
			if syn > maxPos {
				uncorrectable++
			} else {
				w ^= uint64(1) << uint(syn)
				corrected++
			}
		default: // syn != 0 && overall == 0
			uncorrectable++
		}
		var data uint64
		for _, run := range runs {
			data |= (w & run.mask) >> run.shift
		}
		dst[i] = data
	}
	return corrected, uncorrectable
}

// DecodeBatchStatus is DecodeBatch with per-word outcome reporting: it
// additionally records each word's decode Status in sts[i], so callers
// that must know *which* words carried detected-uncorrectable errors
// (the mem.Detector read paths) get the flags in the same pass that
// recovers the data. The recovered data, correction decisions, counts,
// and per-word statuses are bit-identical to calling Decode per word.
// dst, cw, and sts must have equal length; dst and cw may be the same
// slice.
func (c *Code) DecodeBatchStatus(dst, cw []uint64, sts []Status) (corrected, uncorrectable uint64) {
	if len(dst) != len(cw) || len(sts) != len(cw) {
		panic(fmt.Sprintf("ecc: decode batch dst %d vs cw %d vs sts %d", len(dst), len(cw), len(sts)))
	}
	nMask := (uint64(1) << uint(c.n)) - 1
	runs := c.runs
	covMasks := c.covMasks
	maxPos := c.k + c.r
	for i, w := range cw {
		w &= nMask
		syn := 0
		for j, mask := range covMasks {
			syn |= (bits.OnesCount64(w&mask) & 1) << uint(j)
		}
		overall := bits.OnesCount64(w) & 1
		st := OK
		switch {
		case syn == 0 && overall == 0:
		case syn == 0 && overall == 1:
			w ^= 1
			corrected++
			st = Corrected
		case syn != 0 && overall == 1:
			if syn > maxPos {
				uncorrectable++
				st = DetectedUncorrectable
			} else {
				w ^= uint64(1) << uint(syn)
				corrected++
				st = Corrected
			}
		default: // syn != 0 && overall == 0
			uncorrectable++
			st = DetectedUncorrectable
		}
		sts[i] = st
		var data uint64
		for _, run := range runs {
			data |= (w & run.mask) >> run.shift
		}
		dst[i] = data
	}
	return corrected, uncorrectable
}
