// Package ecc implements single-error-correction / double-error-detection
// (SECDED) extended Hamming codes for arbitrary data widths up to 57 bits,
// including the two codes the paper evaluates: H(39,32) for full-word ECC
// and H(22,16) for priority-based ECC on the 16 most significant bits.
//
// Codewords are uint64 values. Bit 0 of a codeword is the overall parity
// bit; bits 1..k+r follow the classic Hamming layout in which parity bits
// occupy the power-of-two positions and data bits fill the remaining
// positions in ascending order (data bit 0 = LSB of the datum at the first
// non-power-of-two position).
package ecc

import (
	"fmt"
	"math/bits"
)

// Status classifies the outcome of a decode.
type Status uint8

const (
	// OK means the codeword was error-free.
	OK Status = iota
	// Corrected means exactly one bit error was detected and corrected
	// (it may have been a parity bit, in which case the data was already
	// intact).
	Corrected
	// DetectedUncorrectable means a double (or detectable multi-bit) error
	// was found; the returned data is the raw, possibly corrupted payload.
	DetectedUncorrectable
)

// String returns a short name for the decode status.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case DetectedUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Code is a SECDED extended Hamming code for k data bits.
type Code struct {
	k, r, n   int   // data bits, Hamming parity bits, total bits (k+r+1)
	dataPos   []int // codeword position of each data bit, LSB-first
	parityPos []int // codeword position of Hamming parity bit i (= 1<<i)

	// Precomputed encode/decode tables. Data bits occupy the runs of
	// consecutive non-power-of-two positions between parity bits, so
	// scattering a datum into a codeword (and gathering it back) is a
	// handful of shift-and-mask moves instead of one shift per bit; and
	// each parity bit covers a fixed position set, so its value is one
	// masked popcount instead of a walk over every position. Encode
	// drops from ~8 ops per codeword bit to ~1.
	runs     []scatterRun
	covMasks []uint64 // position-coverage mask of Hamming parity bit i
}

// scatterRun moves one contiguous block of data bits to its contiguous
// block of codeword positions: cw |= (data << shift) & mask.
type scatterRun struct {
	shift uint
	mask  uint64 // the run's bits, at codeword positions
}

// New constructs the SECDED code for k data bits: r parity bits with
// 2^r >= k+r+1, plus one overall parity bit, for a total of k+r+1 bits.
// k must be in [1, 57] so the codeword fits a uint64.
func New(k int) (*Code, error) {
	if k < 1 || k > 57 {
		return nil, fmt.Errorf("ecc: data width %d outside [1,57]", k)
	}
	r := 0
	for (1 << uint(r)) < k+r+1 {
		r++
	}
	c := &Code{k: k, r: r, n: k + r + 1}
	for i := 0; i < r; i++ {
		c.parityPos = append(c.parityPos, 1<<uint(i))
	}
	for p := 1; p <= k+r; p++ {
		if p&(p-1) != 0 { // not a power of two -> data position
			c.dataPos = append(c.dataPos, p)
		}
	}
	if len(c.dataPos) != k {
		return nil, fmt.Errorf("ecc: internal layout error for k=%d", k)
	}
	// Group the ascending data positions into contiguous scatter runs
	// (data bit i sits at dataPos[i], so a run of consecutive positions
	// is also a run of consecutive data bits).
	for i := 0; i < k; {
		j := i
		for j+1 < k && c.dataPos[j+1] == c.dataPos[j]+1 {
			j++
		}
		width := j - i + 1
		var mask uint64 = ((1 << uint(width)) - 1) << uint(c.dataPos[i])
		c.runs = append(c.runs, scatterRun{shift: uint(c.dataPos[i] - i), mask: mask})
		i = j + 1
	}
	// Coverage mask of Hamming parity bit i: every position 1..k+r whose
	// index has bit i set (this includes the parity position 1<<i
	// itself, which encoding leaves zero and decoding must fold in).
	c.covMasks = make([]uint64, r)
	for i := 0; i < r; i++ {
		var mask uint64
		for p := 1; p <= k+r; p++ {
			if p&(1<<uint(i)) != 0 {
				mask |= 1 << uint(p)
			}
		}
		c.covMasks[i] = mask
	}
	return c, nil
}

// MustNew is New but panics on error; for the package presets.
func MustNew(k int) *Code {
	c, err := New(k)
	if err != nil {
		panic(err)
	}
	return c
}

// H39_32 returns the H(39,32) SECDED code used for full 32-bit words
// (7 check bits: 6 Hamming + 1 overall parity).
func H39_32() *Code { return MustNew(32) }

// H22_16 returns the H(22,16) SECDED code used by priority-based ECC on
// the upper 16 bits of a word (6 check bits: 5 Hamming + 1 overall).
func H22_16() *Code { return MustNew(16) }

// H13_8 returns the H(13,8) SECDED code for byte-wide data.
func H13_8() *Code { return MustNew(8) }

// DataBits returns k, the payload width.
func (c *Code) DataBits() int { return c.k }

// ParityBits returns the total number of check bits (r Hamming + 1
// overall), i.e. the storage overhead per word.
func (c *Code) ParityBits() int { return c.r + 1 }

// CodewordBits returns n = k + r + 1.
func (c *Code) CodewordBits() int { return c.n }

// Name returns the conventional H(n,k) name, e.g. "H(39,32)".
func (c *Code) Name() string { return fmt.Sprintf("H(%d,%d)", c.n, c.k) }

// Encode maps a k-bit datum to its n-bit codeword.
func (c *Code) Encode(data uint64) uint64 {
	data &= (uint64(1) << uint(c.k)) - 1
	var cw uint64
	for _, run := range c.runs {
		cw |= (data << run.shift) & run.mask
	}
	// Hamming parity bits: parity over all covered positions (the
	// parity position itself is still zero here, so including it in the
	// mask is harmless).
	for i, pp := range c.parityPos {
		cw |= uint64(bits.OnesCount64(cw&c.covMasks[i])&1) << uint(pp)
	}
	// Overall parity over bits 1..k+r, stored at bit 0 so the whole
	// codeword has even parity.
	cw |= uint64(bits.OnesCount64(cw)&1) << 0
	return cw
}

// Decode checks and corrects an n-bit codeword, returning the recovered
// datum, the decode status, and for Corrected the codeword bit position
// that was repaired (-1 otherwise).
func (c *Code) Decode(cw uint64) (data uint64, st Status, fixedPos int) {
	cw &= (uint64(1) << uint(c.n)) - 1
	// Syndrome: XOR of the positions of all set bits in the Hamming
	// part. Bit i of that XOR is the parity of the set bits at covered
	// positions, i.e. one masked popcount per syndrome bit.
	syn := 0
	for i, mask := range c.covMasks {
		syn |= (bits.OnesCount64(cw&mask) & 1) << uint(i)
	}
	overall := bits.OnesCount64(cw) & 1 // 0 if even parity holds

	fixedPos = -1
	switch {
	case syn == 0 && overall == 0:
		st = OK
	case syn == 0 && overall == 1:
		// The overall parity bit itself flipped.
		cw ^= 1
		st, fixedPos = Corrected, 0
	case syn != 0 && overall == 1:
		if syn > c.k+c.r {
			// Syndrome points outside the codeword: multi-bit error.
			st = DetectedUncorrectable
		} else {
			cw ^= uint64(1) << uint(syn)
			st, fixedPos = Corrected, syn
		}
	default: // syn != 0 && overall == 0
		st = DetectedUncorrectable
	}

	return c.ExtractData(cw), st, fixedPos
}

// ExtractData returns the raw payload bits of a codeword without any
// checking, used to model the no-time-to-correct bypass path and
// uncorrectable-error fallback.
func (c *Code) ExtractData(cw uint64) uint64 {
	var data uint64
	for _, run := range c.runs {
		data |= (cw & run.mask) >> run.shift
	}
	return data
}

// DataPositions returns a copy of the codeword positions of the data bits
// (index = data bit, value = codeword position). The hardware overhead
// model uses this to size the encoder XOR trees.
func (c *Code) DataPositions() []int {
	return append([]int(nil), c.dataPos...)
}

// ParityFanIn returns, for each of the r Hamming parity bits, the number
// of data bits it covers, and the fan-in of the overall parity (all
// k+r bits). These set the XOR-tree sizes in the synthesis model.
func (c *Code) ParityFanIn() (hamming []int, overall int) {
	hamming = make([]int, c.r)
	for i := range hamming {
		for _, p := range c.dataPos {
			if p&(1<<uint(i)) != 0 {
				hamming[i]++
			}
		}
	}
	return hamming, c.k + c.r
}
