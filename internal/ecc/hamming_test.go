package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodeParameters(t *testing.T) {
	cases := []struct {
		k, n, parity int
		name         string
	}{
		{32, 39, 7, "H(39,32)"}, // the paper's full-word SECDED
		{16, 22, 6, "H(22,16)"}, // the paper's P-ECC code
		{8, 13, 5, "H(13,8)"},
		{4, 8, 4, "H(8,4)"},
		{1, 4, 3, "H(4,1)"},
		{57, 64, 7, "H(64,57)"},
	}
	for _, c := range cases {
		code := MustNew(c.k)
		if code.CodewordBits() != c.n {
			t.Errorf("k=%d: n=%d, want %d", c.k, code.CodewordBits(), c.n)
		}
		if code.ParityBits() != c.parity {
			t.Errorf("k=%d: parity=%d, want %d", c.k, code.ParityBits(), c.parity)
		}
		if code.Name() != c.name {
			t.Errorf("k=%d: name=%q, want %q", c.k, code.Name(), c.name)
		}
		if code.DataBits() != c.k {
			t.Errorf("k=%d: DataBits=%d", c.k, code.DataBits())
		}
	}
}

func TestNewRejectsBadWidths(t *testing.T) {
	for _, k := range []int{0, -1, 58, 64} {
		if _, err := New(k); err == nil {
			t.Errorf("New(%d) accepted", k)
		}
	}
}

func TestPresets(t *testing.T) {
	if H39_32().Name() != "H(39,32)" || H22_16().Name() != "H(22,16)" || H13_8().Name() != "H(13,8)" {
		t.Error("preset names wrong")
	}
}

func TestEncodeDecodeCleanRoundTrip(t *testing.T) {
	for _, k := range []int{8, 16, 32, 57} {
		code := MustNew(k)
		mask := (uint64(1) << uint(k)) - 1
		f := func(v uint64) bool {
			v &= mask
			cw := code.Encode(v)
			data, st, _ := code.Decode(cw)
			return data == v && st == OK
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestCodewordHasEvenParity(t *testing.T) {
	code := H39_32()
	f := func(v uint64) bool {
		cw := code.Encode(v)
		pop := 0
		for x := cw; x != 0; x &= x - 1 {
			pop++
		}
		return pop%2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllSingleErrorsCorrected(t *testing.T) {
	// Exhaustive over all error positions for both paper codes and a set
	// of random payloads: every single-bit error must be corrected to the
	// original datum.
	rng := rand.New(rand.NewSource(2))
	for _, code := range []*Code{H39_32(), H22_16(), H13_8()} {
		mask := (uint64(1) << uint(code.DataBits())) - 1
		for trial := 0; trial < 50; trial++ {
			v := rng.Uint64() & mask
			cw := code.Encode(v)
			for pos := 0; pos < code.CodewordBits(); pos++ {
				bad := cw ^ (uint64(1) << uint(pos))
				data, st, fixed := code.Decode(bad)
				if st != Corrected {
					t.Fatalf("%s: single error at %d -> status %v", code.Name(), pos, st)
				}
				if data != v {
					t.Fatalf("%s: single error at %d not corrected: got %#x want %#x",
						code.Name(), pos, data, v)
				}
				if fixed != pos {
					t.Fatalf("%s: fixed position %d, want %d", code.Name(), fixed, pos)
				}
			}
		}
	}
}

func TestAllDoubleErrorsDetected(t *testing.T) {
	// Exhaustive over all C(n,2) double errors for both paper codes:
	// SECDED must flag them as uncorrectable, never miscorrect silently.
	rng := rand.New(rand.NewSource(3))
	for _, code := range []*Code{H39_32(), H22_16()} {
		mask := (uint64(1) << uint(code.DataBits())) - 1
		n := code.CodewordBits()
		for trial := 0; trial < 10; trial++ {
			v := rng.Uint64() & mask
			cw := code.Encode(v)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					bad := cw ^ (uint64(1) << uint(i)) ^ (uint64(1) << uint(j))
					_, st, _ := code.Decode(bad)
					if st != DetectedUncorrectable {
						t.Fatalf("%s: double error (%d,%d) -> status %v",
							code.Name(), i, j, st)
					}
				}
			}
		}
	}
}

func TestDecodeStatusString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" ||
		DetectedUncorrectable.String() != "uncorrectable" {
		t.Error("status names wrong")
	}
	if Status(99).String() == "" {
		t.Error("unknown status empty")
	}
}

func TestExtractData(t *testing.T) {
	code := H39_32()
	f := func(v uint64) bool {
		v &= 0xFFFFFFFF
		return code.ExtractData(code.Encode(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeMasksHighBits(t *testing.T) {
	code := H22_16()
	a := code.Encode(0x12345) // 17 bits; bit 16 must be ignored
	b := code.Encode(0x2345)  // low 16 bits only
	if a != b {
		t.Errorf("Encode did not mask payload: %#x vs %#x", a, b)
	}
}

func TestParityFanIn(t *testing.T) {
	code := H39_32()
	hamming, overall := code.ParityFanIn()
	if len(hamming) != 6 {
		t.Fatalf("H(39,32) has %d Hamming parities, want 6", len(hamming))
	}
	if overall != 38 {
		t.Errorf("overall fan-in %d, want 38", overall)
	}
	total := 0
	for i, f := range hamming {
		if f <= 0 {
			t.Errorf("parity %d covers %d data bits", i, f)
		}
		total += f
	}
	// Every data position p contributes popcount(p) parity memberships;
	// the sum over parities must equal the sum of popcounts of the 32
	// data positions.
	wantTotal := 0
	for _, p := range code.DataPositions() {
		for x := p; x != 0; x &= x - 1 {
			wantTotal++
		}
	}
	if total != wantTotal {
		t.Errorf("fan-in total %d, want %d", total, wantTotal)
	}
}

func TestDataPositionsAreNonPowersOfTwo(t *testing.T) {
	for _, code := range []*Code{H39_32(), H22_16(), H13_8()} {
		seen := map[int]bool{}
		for _, p := range code.DataPositions() {
			if p <= 0 || p&(p-1) == 0 {
				t.Errorf("%s: data position %d is a parity slot", code.Name(), p)
			}
			if seen[p] {
				t.Errorf("%s: duplicate data position %d", code.Name(), p)
			}
			seen[p] = true
		}
	}
}

func TestTripleErrorsNeverReportOK(t *testing.T) {
	// SECDED cannot reliably classify triple errors (some alias to
	// "Corrected" at the wrong position), but it must never report a
	// corrupted codeword as pristine OK.
	rng := rand.New(rand.NewSource(4))
	code := H39_32()
	n := code.CodewordBits()
	for trial := 0; trial < 3000; trial++ {
		v := rng.Uint64() & 0xFFFFFFFF
		cw := code.Encode(v)
		i, j, k := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		if i == j || j == k || i == k {
			continue
		}
		bad := cw ^ (uint64(1) << uint(i)) ^ (uint64(1) << uint(j)) ^ (uint64(1) << uint(k))
		if _, st, _ := code.Decode(bad); st == OK {
			t.Fatalf("triple error (%d,%d,%d) decoded as OK", i, j, k)
		}
	}
}

func BenchmarkEncode39_32(b *testing.B) {
	code := H39_32()
	for i := 0; i < b.N; i++ {
		_ = code.Encode(uint64(i))
	}
}

func BenchmarkDecode39_32(b *testing.B) {
	code := H39_32()
	cw := code.Encode(0xDEADBEEF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = code.Decode(cw ^ uint64(1)<<uint(i%39))
	}
}

// bitwiseEncode is the original one-bit-at-a-time encoder, kept as the
// oracle for the mask-based scatter/popcount implementation.
func bitwiseEncode(c *Code, data uint64) uint64 {
	data &= (uint64(1) << uint(c.k)) - 1
	var cw uint64
	for i, p := range c.dataPos {
		cw |= ((data >> uint(i)) & 1) << uint(p)
	}
	for i, pp := range c.parityPos {
		var par uint64
		for p := 1; p <= c.k+c.r; p++ {
			if p&(1<<uint(i)) != 0 {
				par ^= (cw >> uint(p)) & 1
			}
		}
		cw |= par << uint(pp)
	}
	var ones uint64
	for b := 0; b < 64; b++ {
		ones += (cw >> uint(b)) & 1
	}
	cw |= ones & 1
	return cw
}

// bitwiseSyndrome is the original per-position syndrome walk.
func bitwiseSyndrome(c *Code, cw uint64) int {
	syn := 0
	for p := 1; p <= c.k+c.r; p++ {
		if (cw>>uint(p))&1 != 0 {
			syn ^= p
		}
	}
	return syn
}

// TestMaskEncodeMatchesBitwise pins the mask-based Encode, syndrome,
// and ExtractData against the bit-loop originals for every supported
// width on random data — the scatter runs and coverage masks must
// reproduce the classic Hamming layout exactly.
func TestMaskEncodeMatchesBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for k := 1; k <= 57; k++ {
		code := MustNew(k)
		for trial := 0; trial < 50; trial++ {
			v := rng.Uint64()
			got := code.Encode(v)
			want := bitwiseEncode(code, v)
			if got != want {
				t.Fatalf("k=%d Encode(%#x) = %#x, want %#x", k, v, got, want)
			}
			if ext := code.ExtractData(got); ext != v&((uint64(1)<<uint(k))-1) {
				t.Fatalf("k=%d ExtractData(%#x) = %#x", k, got, ext)
			}
			// Corrupt up to 2 random bits; syndrome must match the walk.
			cw := got
			for f := 0; f < trial%3; f++ {
				cw ^= 1 << uint(rng.Intn(code.n))
			}
			syn := 0
			for i, mask := range code.covMasks {
				syn |= (popcount(cw&mask) & 1) << uint(i)
			}
			if want := bitwiseSyndrome(code, cw); syn != want {
				t.Fatalf("k=%d syndrome of %#x = %d, want %d", k, cw, syn, want)
			}
		}
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
