package mem

import (
	"fmt"
	"math/bits"

	"faultmem/internal/ecc"
)

// DUESet is a reusable bitset of word indices whose read-back carried a
// detected-uncorrectable error. The checked round trips flag flat data
// indices into it (one bit per word of the transfer, not per memory
// row), so recovery policies can locate exactly the words the SECDED
// decoder proved corrupt. The zero value is ready to use; Reset grows
// it in place.
type DUESet struct {
	bits []uint64
	n    int
}

// Reset clears the set and sizes it for n indices.
func (s *DUESet) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("mem: DUESet size %d", n))
	}
	words := (n + 63) / 64
	if cap(s.bits) < words {
		s.bits = make([]uint64, words)
	} else {
		s.bits = s.bits[:words]
		clear(s.bits)
	}
	s.n = n
}

// Len returns the index capacity set by the last Reset.
func (s *DUESet) Len() int { return s.n }

// Set flags index i.
func (s *DUESet) Set(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("mem: DUESet index %d outside [0,%d)", i, s.n))
	}
	s.bits[i/64] |= uint64(1) << uint(i%64)
}

// Clear unflags index i.
func (s *DUESet) Clear(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("mem: DUESet index %d outside [0,%d)", i, s.n))
	}
	s.bits[i/64] &^= uint64(1) << uint(i%64)
}

// Get reports whether index i is flagged (false outside the range).
func (s *DUESet) Get(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.bits[i/64]&(uint64(1)<<uint(i%64)) != 0
}

// Any reports whether any index is flagged.
func (s *DUESet) Any() bool {
	for _, w := range s.bits {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of flagged indices.
func (s *DUESet) Count() int {
	c := 0
	for _, w := range s.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// NextSet returns the first flagged index >= i, or -1 when none remains
// — the iteration primitive of the recovery loops.
func (s *DUESet) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	for i < s.n {
		w := s.bits[i/64] >> uint(i%64)
		if w != 0 {
			j := i + bits.TrailingZeros64(w)
			if j >= s.n {
				return -1
			}
			return j
		}
		i = (i/64 + 1) * 64
	}
	return -1
}

// Detector is a Word32 whose reads report detected-uncorrectable errors
// per word — the SECDED double-error signal the paper's arms compute and
// the plain Read path throws away. ReadChecked and ReadBatchChecked
// return exactly the data (and tally exactly the Stats) of Read and
// ReadBatch; the only addition is the flag. Memories without a detecting
// code (Raw, bit-shuffling) implement the interface but never flag, so
// "no recovery possible" and "no recovery needed" share the degenerate
// policy: existing behavior.
type Detector interface {
	Word32
	// ReadChecked is Read plus the word's DUE flag.
	ReadChecked(addr int) (v uint32, due bool)
	// ReadBatchChecked is ReadBatch plus flags: for every i with a
	// detected-uncorrectable word at addr+i it sets due bit base+i.
	// Already-set bits are left alone (the caller resets the set), so one
	// set accumulates flags across the pages of a larger transfer.
	ReadBatchChecked(addr int, dst []uint32, due *DUESet, base int)
}

// --- Perfect ---

// ReadChecked is Read; a fault-free memory never flags.
func (p *Perfect) ReadChecked(addr int) (uint32, bool) { return p.Read(addr), false }

// ReadBatchChecked is ReadBatch; a fault-free memory never flags.
func (p *Perfect) ReadBatchChecked(addr int, dst []uint32, _ *DUESet, _ int) {
	p.ReadBatch(addr, dst)
}

// --- Raw ---

// ReadChecked is Read; an unprotected memory has no code and cannot
// detect, so it never flags.
func (r *Raw) ReadChecked(addr int) (uint32, bool) { return r.Read(addr), false }

// ReadBatchChecked is ReadBatch with no flags (see ReadChecked).
func (r *Raw) ReadBatchChecked(addr int, dst []uint32, _ *DUESet, _ int) {
	r.ReadBatch(addr, dst)
}

// --- ECC ---

// SetScrub enables scrub-on-correct on the checked read paths: when a
// checked read corrects a single error, the corrected codeword is
// written back through the array (stuck-at masks reapply, so a
// persistent fault re-corrupts and only transient or write-path
// corruption is actually cleaned). The plain Read/ReadBatch paths never
// scrub, so existing campaigns stay bit-identical with scrubbing off or
// on.
func (e *ECC) SetScrub(on bool) { e.scrub = on }

// ReadChecked is Read plus the decoder's double-error flag.
func (e *ECC) ReadChecked(addr int) (uint32, bool) {
	e.stats.Reads++
	data, st, _ := e.code.Decode(e.arr.Read(addr))
	switch st {
	case ecc.Corrected:
		e.stats.Corrected++
		if e.scrub {
			e.Write(addr, uint32(data))
		}
	case ecc.DetectedUncorrectable:
		e.stats.Uncorrectable++
	}
	return uint32(data), st == ecc.DetectedUncorrectable
}

// ReadBatchChecked is ReadBatch plus per-word double-error flags.
func (e *ECC) ReadBatchChecked(addr int, dst []uint32, due *DUESet, base int) {
	e.buf = growBuf(e.buf, len(dst))
	e.arr.ReadBatch(addr, e.buf)
	e.sts = growStatusBuf(e.sts, len(dst))
	corrected, uncorrectable := e.code.DecodeBatchStatus(e.buf, e.buf, e.sts)
	e.stats.Reads += uint64(len(dst))
	e.stats.Corrected += corrected
	e.stats.Uncorrectable += uncorrectable
	for i, w := range e.buf {
		dst[i] = uint32(w)
	}
	for i, st := range e.sts {
		switch st {
		case ecc.DetectedUncorrectable:
			due.Set(base + i)
		case ecc.Corrected:
			if e.scrub {
				e.Write(addr+i, dst[i])
			}
		}
	}
}

// --- PECC ---

// SetScrub enables scrub-on-correct on the checked read paths (see
// ECC.SetScrub; the full row — raw low half plus re-encoded high half —
// is written back).
func (p *PECC) SetScrub(on bool) { p.scrub = on }

// ReadChecked is Read plus the upper-half decoder's double-error flag
// (the unprotected low bits carry no detection capability).
func (p *PECC) ReadChecked(addr int) (uint32, bool) {
	p.stats.Reads++
	raw := p.arr.Read(addr)
	lowMask := (uint64(1) << uint(p.lowBits)) - 1
	low := uint32(raw & lowMask)
	hi, st, _ := p.code.Decode(raw >> uint(p.lowBits))
	v := low | uint32(hi)<<uint(p.lowBits)
	switch st {
	case ecc.Corrected:
		p.stats.Corrected++
		if p.scrub {
			p.Write(addr, v)
		}
	case ecc.DetectedUncorrectable:
		p.stats.Uncorrectable++
	}
	return v, st == ecc.DetectedUncorrectable
}

// ReadBatchChecked is ReadBatch plus per-word double-error flags from
// the upper-half decode.
func (p *PECC) ReadBatchChecked(addr int, dst []uint32, due *DUESet, base int) {
	p.buf = growBuf(p.buf, len(dst))
	p.arr.ReadBatch(addr, p.buf)
	lb := uint(p.lowBits)
	lowMask := uint64(1)<<lb - 1
	for i, w := range p.buf {
		dst[i] = uint32(w & lowMask)
		p.buf[i] = w >> lb
	}
	p.sts = growStatusBuf(p.sts, len(dst))
	corrected, uncorrectable := p.code.DecodeBatchStatus(p.buf, p.buf, p.sts)
	p.stats.Reads += uint64(len(dst))
	p.stats.Corrected += corrected
	p.stats.Uncorrectable += uncorrectable
	for i, hi := range p.buf {
		dst[i] |= uint32(hi) << lb
	}
	for i, st := range p.sts {
		switch st {
		case ecc.DetectedUncorrectable:
			due.Set(base + i)
		case ecc.Corrected:
			if p.scrub {
				p.Write(addr+i, dst[i])
			}
		}
	}
}

// --- Banked ---

// ReadChecked delegates to the owning bank's checked read; banks without
// detection read unflagged.
func (b *Banked) ReadChecked(addr int) (uint32, bool) {
	bank := b.banks[addr/b.perBank]
	if d, ok := bank.(Detector); ok {
		return d.ReadChecked(addr % b.perBank)
	}
	return bank.Read(addr % b.perBank), false
}

// ReadBatchChecked delegates each bank-aligned chunk to the bank's
// checked batch read, offsetting the flag base by the chunk's position;
// banks without detection fall back to their plain (batch or scalar)
// read and contribute no flags.
func (b *Banked) ReadBatchChecked(addr int, dst []uint32, due *DUESet, base int) {
	b.eachBankRange(addr, len(dst), func(bank Word32, off, start, chunk int) {
		part := dst[start : start+chunk]
		if d, ok := bank.(Detector); ok {
			d.ReadBatchChecked(off, part, due, base+start)
			return
		}
		if bm, ok := bank.(BatchMemory); ok {
			bm.ReadBatch(off, part)
			return
		}
		for i := range part {
			part[i] = bank.Read(off + i)
		}
	})
}

// growStatusBuf returns a length-n status scratch slice, reusing buf's
// storage when it is large enough.
func growStatusBuf(buf []ecc.Status, n int) []ecc.Status {
	if cap(buf) < n {
		return make([]ecc.Status, n)
	}
	return buf[:n]
}

// Compile-time interface checks.
var (
	_ Detector = (*Perfect)(nil)
	_ Detector = (*Raw)(nil)
	_ Detector = (*ECC)(nil)
	_ Detector = (*PECC)(nil)
	_ Detector = (*Banked)(nil)
)
