package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"faultmem/internal/fault"
	"faultmem/internal/stats"
)

func TestPerfectRoundTrip(t *testing.T) {
	p := NewPerfect(64)
	if p.Words() != 64 {
		t.Fatalf("Words = %d", p.Words())
	}
	f := func(addr uint8, v uint32) bool {
		a := int(addr) % 64
		p.Write(a, v)
		return p.Read(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRawExposesFaults(t *testing.T) {
	m := fault.Map{{Row: 1, Col: 31, Kind: fault.Flip}}
	r, err := NewRaw(4, m)
	if err != nil {
		t.Fatal(err)
	}
	r.Write(1, 0)
	if got := r.Read(1); got != 1<<31 {
		t.Errorf("raw read = %#x, want MSB flip", got)
	}
	if r.Words() != 4 {
		t.Errorf("Words = %d", r.Words())
	}
}

func TestRawRejectsBadMap(t *testing.T) {
	if _, err := NewRaw(4, fault.Map{{Row: 0, Col: 40}}); err == nil {
		t.Error("col 40 accepted for 32-bit data geometry")
	}
}

func TestECCCorrectsSingleFaultPerWord(t *testing.T) {
	// One fault in every word, at every possible data column: full ECC
	// must always return pristine data.
	for col := 0; col < 32; col++ {
		m := fault.Map{{Row: 0, Col: col, Kind: fault.Flip}}
		e, err := NewECC(1, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []uint32{0, 0xFFFFFFFF, 0xDEADBEEF, 1 << uint(col)} {
			e.Write(0, v)
			if got := e.Read(0); got != v {
				t.Fatalf("col %d v=%#x: ECC read %#x", col, v, got)
			}
		}
	}
}

func TestECCStatsCounting(t *testing.T) {
	m := fault.Map{{Row: 0, Col: 5, Kind: fault.Flip}}
	e, err := NewECC(2, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Write(0, 42)
	e.Write(1, 43)
	_ = e.Read(0) // corrected
	_ = e.Read(1) // clean
	st := e.Stats()
	if st.Reads != 2 || st.Corrected != 1 || st.Uncorrectable != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestECCDoubleFaultDetectedNotSilent(t *testing.T) {
	m := fault.Map{
		{Row: 0, Col: 3, Kind: fault.Flip},
		{Row: 0, Col: 27, Kind: fault.Flip},
	}
	e, err := NewECC(1, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Write(0, 0)
	got := e.Read(0)
	// SECDED cannot correct: raw payload with both flips comes back.
	want := uint32(1<<3 | 1<<27)
	if got != want {
		t.Errorf("double-fault read %#x, want %#x", got, want)
	}
	if e.Stats().Uncorrectable != 1 {
		t.Errorf("uncorrectable count %d", e.Stats().Uncorrectable)
	}
}

func TestECCCheckBitFaultTolerated(t *testing.T) {
	// A single fault in a check-bit cell must not corrupt data.
	for c := 0; c < 7; c++ {
		cf := fault.Map{{Row: 0, Col: c, Kind: fault.Flip}}
		e, err := NewECC(1, nil, cf)
		if err != nil {
			t.Fatal(err)
		}
		e.Write(0, 0xA5A5A5A5)
		if got := e.Read(0); got != 0xA5A5A5A5 {
			t.Errorf("check-bit fault %d corrupted data: %#x", c, got)
		}
	}
}

func TestECCCheckPlusDataFaultUncorrectable(t *testing.T) {
	// One data fault + one check fault in the same word = double error.
	e, err := NewECC(1,
		fault.Map{{Row: 0, Col: 10, Kind: fault.Flip}},
		fault.Map{{Row: 0, Col: 2, Kind: fault.Flip}})
	if err != nil {
		t.Fatal(err)
	}
	e.Write(0, 0)
	_ = e.Read(0)
	if e.Stats().Uncorrectable != 1 {
		t.Error("data+check double fault not flagged")
	}
}

func TestPECCUpperHalfProtected(t *testing.T) {
	// Single fault in the MSB half: P-ECC corrects it.
	for col := 16; col < 32; col++ {
		m := fault.Map{{Row: 0, Col: col, Kind: fault.Flip}}
		p, err := NewPECC(1, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		p.Write(0, 0xFFFF0000)
		if got := p.Read(0); got != 0xFFFF0000 {
			t.Fatalf("upper fault at %d not corrected: %#x", col, got)
		}
	}
}

func TestPECCLowerHalfUnprotected(t *testing.T) {
	// Faults in the 16 LSBs pass straight through (the P-ECC weakness the
	// paper exploits in its comparison).
	for col := 0; col < 16; col++ {
		m := fault.Map{{Row: 0, Col: col, Kind: fault.Flip}}
		p, err := NewPECC(1, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		p.Write(0, 0)
		if got := p.Read(0); got != 1<<uint(col) {
			t.Fatalf("lower fault at %d: read %#x, want %#x", col, got, 1<<uint(col))
		}
	}
}

func TestPECCTwoUpperFaultsUncorrectable(t *testing.T) {
	m := fault.Map{
		{Row: 0, Col: 20, Kind: fault.Flip},
		{Row: 0, Col: 30, Kind: fault.Flip},
	}
	p, err := NewPECC(1, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(0, 0)
	got := p.Read(0)
	want := uint32(1<<20 | 1<<30)
	if got != want {
		t.Errorf("double upper fault read %#x, want %#x", got, want)
	}
	if p.Stats().Uncorrectable != 1 {
		t.Error("uncorrectable not counted")
	}
}

func TestPECCMixedFaults(t *testing.T) {
	// One lower + one upper fault: upper corrected, lower persists.
	m := fault.Map{
		{Row: 0, Col: 2, Kind: fault.Flip},
		{Row: 0, Col: 29, Kind: fault.Flip},
	}
	p, err := NewPECC(1, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(0, 0)
	if got := p.Read(0); got != 1<<2 {
		t.Errorf("mixed faults read %#x, want %#x", got, uint32(1<<2))
	}
}

func TestPECCMaxErrorBoundedByLowerHalf(t *testing.T) {
	// Any single fault under P-ECC costs at most 2^15 (the worst
	// unprotected LSB), versus 2^31 for raw.
	f := func(colRaw uint8, v uint32) bool {
		col := int(colRaw) % 32
		p, err := NewPECC(1, fault.Map{{Row: 0, Col: col, Kind: fault.Flip}}, nil)
		if err != nil {
			return false
		}
		p.Write(0, v)
		got := p.Read(0)
		diff := uint64(v ^ got)
		return diff <= 1<<15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBankedAddressing(t *testing.T) {
	b0 := NewPerfect(8)
	b1 := NewPerfect(8)
	bk, err := NewBanked(b0, b1)
	if err != nil {
		t.Fatal(err)
	}
	if bk.Words() != 16 {
		t.Fatalf("Words = %d", bk.Words())
	}
	bk.Write(3, 33)
	bk.Write(11, 1111)
	if b0.Read(3) != 33 {
		t.Error("bank 0 addressing wrong")
	}
	if b1.Read(3) != 1111 {
		t.Error("bank 1 addressing wrong")
	}
	if bk.Read(3) != 33 || bk.Read(11) != 1111 {
		t.Error("banked reads wrong")
	}
	if len(bk.Banks()) != 2 {
		t.Error("Banks() wrong")
	}
}

func TestBankedRejectsUneven(t *testing.T) {
	if _, err := NewBanked(NewPerfect(8), NewPerfect(4)); err == nil {
		t.Error("uneven banks accepted")
	}
	if _, err := NewBanked(); err == nil {
		t.Error("empty bank list accepted")
	}
}

func TestAllSchemesAgreeWhenFaultFree(t *testing.T) {
	raw, err := NewRaw(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	eccm, err := NewECC(16, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pecc, err := NewPECC(16, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mems := []Word32{NewPerfect(16), raw, eccm, pecc}
	rng := stats.NewRand(9)
	for trial := 0; trial < 200; trial++ {
		a := rng.Intn(16)
		v := uint32(rng.Uint64())
		for _, m := range mems {
			m.Write(a, v)
			if got := m.Read(a); got != v {
				t.Fatalf("%T fault-free mismatch: %#x != %#x", m, got, v)
			}
		}
	}
}

// TestResetMatchesFreshBuild pins the mem.Resetter contract: a memory
// carried across Monte-Carlo trials and Reset with a new fault map must
// behave exactly like one freshly built with that map.
func TestResetMatchesFreshBuild(t *testing.T) {
	const rows = 64
	rng := rand.New(rand.NewSource(41))
	randomMap := func(n int) fault.Map {
		m := make(fault.Map, 0, n)
		seen := map[[2]int]bool{}
		kinds := []fault.Kind{fault.Flip, fault.StuckAt0, fault.StuckAt1}
		for len(m) < n {
			r, c := rng.Intn(rows), rng.Intn(32)
			if seen[[2]int{r, c}] {
				continue
			}
			seen[[2]int{r, c}] = true
			m = append(m, fault.Fault{Row: r, Col: c, Kind: kinds[rng.Intn(len(kinds))]})
		}
		return m
	}
	builders := []struct {
		name  string
		build func(fm fault.Map) (Word32, error)
	}{
		{"Raw", func(fm fault.Map) (Word32, error) { return NewRaw(rows, fm) }},
		{"ECC", func(fm fault.Map) (Word32, error) { return NewECC(rows, fm, nil) }},
		{"PECC", func(fm fault.Map) (Word32, error) { return NewPECC(rows, fm, nil) }},
	}
	for _, bld := range builders {
		fm1, fm2 := randomMap(10), randomMap(14)
		reused, err := bld.build(fm1)
		if err != nil {
			t.Fatalf("%s: %v", bld.name, err)
		}
		// Dirty the stored data under the first fault map.
		for a := 0; a < rows; a++ {
			reused.Write(a, rng.Uint32())
		}
		if err := reused.(Resetter).Reset(fm2); err != nil {
			t.Fatalf("%s: Reset: %v", bld.name, err)
		}
		fresh, err := bld.build(fm2)
		if err != nil {
			t.Fatalf("%s: %v", bld.name, err)
		}
		for a := 0; a < rows; a++ {
			v := rng.Uint32()
			reused.Write(a, v)
			fresh.Write(a, v)
			if g, w := reused.Read(a), fresh.Read(a); g != w {
				t.Fatalf("%s: addr %d after Reset reads %#x, fresh build reads %#x", bld.name, a, g, w)
			}
		}
	}
}

// TestResetWarmZeroAlloc pins the hot-loop property the Fig. 7 engine
// relies on: reinstalling a same-sized fault map in a warm memory does
// not touch the allocator.
func TestResetWarmZeroAlloc(t *testing.T) {
	const rows = 64
	fm := fault.Map{{Row: 3, Col: 7, Kind: fault.Flip}, {Row: 9, Col: 30, Kind: fault.Flip}}
	for _, tc := range []struct {
		name string
		m    Resetter
	}{
		{"Raw", mustRaw(rows, fm)},
		{"ECC", mustECC(rows, fm)},
		{"PECC", mustPECC(rows, fm)},
	} {
		if err := tc.m.Reset(fm); err != nil { // warm up scratch
			t.Fatal(err)
		}
		if a := testing.AllocsPerRun(10, func() {
			if err := tc.m.Reset(fm); err != nil {
				t.Error(err)
			}
		}); a != 0 {
			t.Errorf("%s: warm Reset allocates %v/run, want 0", tc.name, a)
		}
	}
}

func mustRaw(rows int, fm fault.Map) *Raw {
	m, err := NewRaw(rows, fm)
	if err != nil {
		panic(err)
	}
	return m
}

func mustECC(rows int, fm fault.Map) *ECC {
	m, err := NewECC(rows, fm, nil)
	if err != nil {
		panic(err)
	}
	return m
}

func mustPECC(rows int, fm fault.Map) *PECC {
	m, err := NewPECC(rows, fm, nil)
	if err != nil {
		panic(err)
	}
	return m
}
