// Package mem defines the word-addressable memory abstraction shared by
// all protection schemes, and the reference implementations the paper
// compares against: an unprotected faulty memory, full-word H(39,32)
// SECDED ECC, and H(22,16) priority-based ECC (P-ECC) on the 16 most
// significant bits. The paper's own scheme (bit-shuffling) lives in
// internal/core and implements the same interface.
//
// Fault geometry convention: fault maps passed to the constructors are in
// *data geometry* — rows x 32 data bits — regardless of how many physical
// columns the scheme adds for check bits. Check-bit columns are modeled
// fault-free by default, matching the paper's Eq. (6) analysis where every
// failure sits at a data bit position b in [0, W); see DESIGN.md decision
// notes. ECC and P-ECC accept optional extra check-bit faults for ablation
// studies.
package mem

import (
	"fmt"

	"faultmem/internal/fault"
	"faultmem/internal/sram"
)

// Word32 is a 32-bit word-addressable memory.
type Word32 interface {
	// Read returns the word at addr (faults and mitigation applied).
	Read(addr int) uint32
	// Write stores v at addr.
	Write(addr int, v uint32)
	// Words returns the address space size.
	Words() int
}

// DataWidth is the logical word width of every memory in this package.
const DataWidth = 32

// Resetter is implemented by memories that can reinstall a new
// data-geometry fault map in place, reusing their internal storage —
// the per-trial path of Monte-Carlo loops that rebuild one memory per
// (trial, arm) instead of constructing fresh ones. Reset models check
// bits fault-free (the paper's Eq. 6 default), zeroes any decode
// statistics, and leaves previously stored words in place: a subsequent
// write-then-read cycle behaves exactly like a freshly built memory.
type Resetter interface {
	Reset(dataFaults fault.Map) error
}

// Perfect is an ideal fault-free memory, the golden reference.
type Perfect struct {
	data []uint32
}

// NewPerfect returns a fault-free memory with the given word count.
func NewPerfect(words int) *Perfect {
	if words <= 0 {
		panic(fmt.Sprintf("mem: invalid word count %d", words))
	}
	return &Perfect{data: make([]uint32, words)}
}

// Read returns the word at addr.
func (p *Perfect) Read(addr int) uint32 { return p.data[addr] }

// Write stores v at addr.
func (p *Perfect) Write(addr int, v uint32) { p.data[addr] = v }

// Words returns the address space size.
func (p *Perfect) Words() int { return len(p.data) }

// Raw is an unprotected faulty memory: the "No Correction" arm of the
// paper's comparisons. Faults corrupt data with nothing in the way.
type Raw struct {
	arr *sram.Array
	buf []uint64 // batch-transfer staging scratch
}

// NewRaw builds an unprotected memory over rows words with the given
// data-geometry fault map.
func NewRaw(rows int, faults fault.Map) (*Raw, error) {
	arr := sram.NewArray(rows, DataWidth)
	if err := arr.SetFaults(faults); err != nil {
		return nil, err
	}
	return &Raw{arr: arr}, nil
}

// Reset reinstalls a new data-geometry fault map in place (see
// Resetter).
func (r *Raw) Reset(dataFaults fault.Map) error { return r.arr.SetFaults(dataFaults) }

// Read returns the (possibly corrupted) word at addr.
func (r *Raw) Read(addr int) uint32 { return uint32(r.arr.Read(addr)) }

// Write stores v at addr.
func (r *Raw) Write(addr int, v uint32) { r.arr.Write(addr, uint64(v)) }

// Words returns the address space size.
func (r *Raw) Words() int { return r.arr.Rows() }

// Array exposes the underlying bit-cell array (for BIST and tests).
func (r *Raw) Array() *sram.Array { return r.arr }

// Stats counts decode outcomes of an ECC-protected memory.
type Stats struct {
	Reads         uint64 // total read accesses
	Corrected     uint64 // reads where a single error was repaired
	Uncorrectable uint64 // reads returning detected-uncorrectable data
}
