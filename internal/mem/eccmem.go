package mem

import (
	"fmt"

	"faultmem/internal/ecc"
	"faultmem/internal/fault"
	"faultmem/internal/sram"
)

// ECC is a memory protected by a full-word H(39,32) SECDED code, as in
// Fig. 1 of the paper: every 32-bit write is expanded to a 39-bit
// codeword; every read decodes, correcting single errors and flagging
// double errors. On an uncorrectable error the raw payload is returned
// (there is nothing better to do at the memory level).
type ECC struct {
	arr   *sram.Array
	code  *ecc.Code
	stats Stats
	key   string // precomputed ImageKey
	buf   []uint64
	sts   []ecc.Status // checked-read per-word status scratch
	scrub bool         // scrub-on-correct on the checked read paths
	// Reset scratch: cached data-bit codeword positions and a reusable
	// translated-fault buffer.
	dataPos []int
	physBuf fault.Map
}

// NewECC builds an H(39,32)-protected memory over rows words. dataFaults
// is in data geometry (cols in [0,32)); those faults are placed at the
// codeword positions holding the corresponding data bits. checkFaults
// (optional, may be nil) injects additional faults into check-bit cells:
// cols in [0, ParityBits) index the overall-parity bit (0) followed by the
// Hamming parity bits in position order.
func NewECC(rows int, dataFaults, checkFaults fault.Map) (*ECC, error) {
	code := ecc.H39_32()
	arr := sram.NewArray(rows, code.CodewordBits())
	translated, err := translateCodewordFaults(code, rows, dataFaults, checkFaults)
	if err != nil {
		return nil, err
	}
	if err := arr.SetFaults(translated); err != nil {
		return nil, err
	}
	return &ECC{arr: arr, code: code, key: "ecc:" + code.Name(), dataPos: code.DataPositions()}, nil
}

// Reset reinstalls a new data-geometry fault map in place with
// fault-free check bits and zeroed decode stats (see Resetter).
func (e *ECC) Reset(dataFaults fault.Map) error {
	if err := dataFaults.Validate(e.arr.Rows(), e.code.DataBits()); err != nil {
		return fmt.Errorf("mem: bad data fault map: %w", err)
	}
	if cap(e.physBuf) < len(dataFaults) {
		e.physBuf = make(fault.Map, 0, len(dataFaults))
	}
	phys := e.physBuf[:0]
	for _, f := range dataFaults {
		phys = append(phys, fault.Fault{Row: f.Row, Col: e.dataPos[f.Col], Kind: f.Kind})
	}
	e.physBuf = phys
	e.stats = Stats{}
	return e.arr.SetFaults(phys)
}

// translateCodewordFaults maps data-geometry and check-bit-geometry fault
// maps onto the physical codeword columns of code.
func translateCodewordFaults(code *ecc.Code, rows int, dataFaults, checkFaults fault.Map) (fault.Map, error) {
	if err := dataFaults.Validate(rows, code.DataBits()); err != nil {
		return nil, fmt.Errorf("mem: bad data fault map: %w", err)
	}
	dataPos := code.DataPositions()
	out := make(fault.Map, 0, len(dataFaults)+len(checkFaults))
	for _, f := range dataFaults {
		out = append(out, fault.Fault{Row: f.Row, Col: dataPos[f.Col], Kind: f.Kind})
	}
	if len(checkFaults) > 0 {
		if err := checkFaults.Validate(rows, code.ParityBits()); err != nil {
			return nil, fmt.Errorf("mem: bad check-bit fault map: %w", err)
		}
		// Check-bit columns: index 0 = overall parity (codeword bit 0),
		// then the Hamming parity bits at power-of-two positions.
		checkPos := make([]int, 0, code.ParityBits())
		checkPos = append(checkPos, 0)
		for i := 0; i < code.ParityBits()-1; i++ {
			checkPos = append(checkPos, 1<<uint(i))
		}
		for _, f := range checkFaults {
			out = append(out, fault.Fault{Row: f.Row, Col: checkPos[f.Col], Kind: f.Kind})
		}
	}
	return out, nil
}

// Read decodes the word at addr.
func (e *ECC) Read(addr int) uint32 {
	e.stats.Reads++
	data, st, _ := e.code.Decode(e.arr.Read(addr))
	switch st {
	case ecc.Corrected:
		e.stats.Corrected++
	case ecc.DetectedUncorrectable:
		e.stats.Uncorrectable++
	}
	return uint32(data)
}

// Write encodes and stores v at addr.
func (e *ECC) Write(addr int, v uint32) {
	e.arr.Write(addr, e.code.Encode(uint64(v)))
}

// Words returns the address space size.
func (e *ECC) Words() int { return e.arr.Rows() }

// Stats returns the decode outcome counters.
func (e *ECC) Stats() Stats { return e.stats }

// Code returns the SECDED code in use.
func (e *ECC) Code() *ecc.Code { return e.code }

// Array exposes the underlying codeword array (39 columns) for fault
// studies.
func (e *ECC) Array() *sram.Array { return e.arr }

// PECC is a priority-based-ECC memory [Lee et al.; Emre et al.]: only
// the most significant bits of each word are protected by a SECDED code,
// while the low-order bits are stored unprotected. The paper's
// configuration protects the 16 MSBs with H(22,16); NewPartialECC
// generalizes the split. Physical layout per row: the unprotected low
// bits first, then the codeword of the protected high bits.
type PECC struct {
	arr     *sram.Array
	code    *ecc.Code
	lowBits int
	stats   Stats
	key     string // precomputed ImageKey
	buf     []uint64
	sts     []ecc.Status // checked-read per-word status scratch
	scrub   bool         // scrub-on-correct on the checked read paths
	// Reset scratch: cached data-bit codeword positions and a reusable
	// translated-fault buffer.
	dataPos []int
	physBuf fault.Map
}

// NewPECC builds the paper's H(22,16)-on-16-MSBs priority-ECC memory.
// dataFaults is in data geometry; faults at cols 0..15 land in the raw
// lower half, faults at cols 16..31 land at the codeword positions of the
// corresponding upper-half data bits. checkFaults (optional) indexes the
// 6 check-bit cells of the upper-half code as in NewECC.
func NewPECC(rows int, dataFaults, checkFaults fault.Map) (*PECC, error) {
	return NewPartialECC(rows, 16, dataFaults, checkFaults)
}

// NewPartialECC builds a priority-ECC memory protecting the
// protectedMSBs most significant bits of each 32-bit word (1..31) with
// the matching SECDED code.
func NewPartialECC(rows, protectedMSBs int, dataFaults, checkFaults fault.Map) (*PECC, error) {
	if protectedMSBs < 1 || protectedMSBs > 31 {
		return nil, fmt.Errorf("mem: protected MSB count %d outside [1,31]", protectedMSBs)
	}
	code, err := ecc.New(protectedMSBs)
	if err != nil {
		return nil, err
	}
	lowBits := DataWidth - protectedMSBs
	if err := dataFaults.Validate(rows, DataWidth); err != nil {
		return nil, fmt.Errorf("mem: bad data fault map: %w", err)
	}
	arr := sram.NewArray(rows, lowBits+code.CodewordBits())
	dataPos := code.DataPositions()
	phys := make(fault.Map, 0, len(dataFaults)+len(checkFaults))
	for _, f := range dataFaults {
		col := f.Col
		if col >= lowBits {
			col = lowBits + dataPos[f.Col-lowBits]
		}
		phys = append(phys, fault.Fault{Row: f.Row, Col: col, Kind: f.Kind})
	}
	if len(checkFaults) > 0 {
		if err := checkFaults.Validate(rows, code.ParityBits()); err != nil {
			return nil, fmt.Errorf("mem: bad check-bit fault map: %w", err)
		}
		checkPos := []int{0}
		for i := 0; i < code.ParityBits()-1; i++ {
			checkPos = append(checkPos, 1<<uint(i))
		}
		for _, f := range checkFaults {
			phys = append(phys, fault.Fault{Row: f.Row, Col: lowBits + checkPos[f.Col], Kind: f.Kind})
		}
	}
	if err := arr.SetFaults(phys); err != nil {
		return nil, err
	}
	return &PECC{arr: arr, code: code, lowBits: lowBits, key: "pecc:" + code.Name(), dataPos: dataPos}, nil
}

// Reset reinstalls a new data-geometry fault map in place with
// fault-free check bits and zeroed decode stats (see Resetter).
func (p *PECC) Reset(dataFaults fault.Map) error {
	if err := dataFaults.Validate(p.arr.Rows(), DataWidth); err != nil {
		return fmt.Errorf("mem: bad data fault map: %w", err)
	}
	if cap(p.physBuf) < len(dataFaults) {
		p.physBuf = make(fault.Map, 0, len(dataFaults))
	}
	phys := p.physBuf[:0]
	for _, f := range dataFaults {
		col := f.Col
		if col >= p.lowBits {
			col = p.lowBits + p.dataPos[f.Col-p.lowBits]
		}
		phys = append(phys, fault.Fault{Row: f.Row, Col: col, Kind: f.Kind})
	}
	p.physBuf = phys
	p.stats = Stats{}
	return p.arr.SetFaults(phys)
}

// Read returns the word at addr: raw low bits, decoded high bits.
func (p *PECC) Read(addr int) uint32 {
	p.stats.Reads++
	raw := p.arr.Read(addr)
	lowMask := (uint64(1) << uint(p.lowBits)) - 1
	low := uint32(raw & lowMask)
	hi, st, _ := p.code.Decode(raw >> uint(p.lowBits))
	switch st {
	case ecc.Corrected:
		p.stats.Corrected++
	case ecc.DetectedUncorrectable:
		p.stats.Uncorrectable++
	}
	return low | uint32(hi)<<uint(p.lowBits)
}

// Write stores v at addr, encoding only the protected high bits.
func (p *PECC) Write(addr int, v uint32) {
	lowMask := (uint32(1) << uint(p.lowBits)) - 1
	cw := p.code.Encode(uint64(v >> uint(p.lowBits)))
	p.arr.Write(addr, uint64(v&lowMask)|cw<<uint(p.lowBits))
}

// ProtectedBits returns the number of protected most significant bits.
func (p *PECC) ProtectedBits() int { return DataWidth - p.lowBits }

// Words returns the address space size.
func (p *PECC) Words() int { return p.arr.Rows() }

// Stats returns the decode outcome counters.
func (p *PECC) Stats() Stats { return p.stats }

// Code returns the SECDED code protecting the upper half.
func (p *PECC) Code() *ecc.Code { return p.code }

// Array exposes the underlying physical array (38 columns) for fault
// studies.
func (p *PECC) Array() *sram.Array { return p.arr }

// Banked glues several equally sized Word32 banks into one address space.
// The Fig. 7 experiments use it when a training set exceeds one 16 KB
// macro: each bank is an independent die sample with its own fault map.
type Banked struct {
	banks   []Word32
	perBank int
}

// NewBanked combines banks into a single memory. All banks must have the
// same word count.
func NewBanked(banks ...Word32) (*Banked, error) {
	if len(banks) == 0 {
		return nil, fmt.Errorf("mem: NewBanked with no banks")
	}
	per := banks[0].Words()
	for i, b := range banks {
		if b.Words() != per {
			return nil, fmt.Errorf("mem: bank %d has %d words, want %d", i, b.Words(), per)
		}
	}
	return &Banked{banks: banks, perBank: per}, nil
}

// Read returns the word at the global address addr.
func (b *Banked) Read(addr int) uint32 {
	return b.banks[addr/b.perBank].Read(addr % b.perBank)
}

// Write stores v at the global address addr.
func (b *Banked) Write(addr int, v uint32) {
	b.banks[addr/b.perBank].Write(addr%b.perBank, v)
}

// Words returns the total address space across banks.
func (b *Banked) Words() int { return b.perBank * len(b.banks) }

// Banks returns the underlying banks.
func (b *Banked) Banks() []Word32 { return b.banks }

// Compile-time interface checks.
var (
	_ Word32 = (*Perfect)(nil)
	_ Word32 = (*Raw)(nil)
	_ Word32 = (*ECC)(nil)
	_ Word32 = (*PECC)(nil)
	_ Word32 = (*Banked)(nil)

	_ Resetter = (*Raw)(nil)
	_ Resetter = (*ECC)(nil)
	_ Resetter = (*PECC)(nil)
)
