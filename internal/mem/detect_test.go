package mem

import (
	"testing"

	"faultmem/internal/fault"
	"faultmem/internal/sram"
	"faultmem/internal/stats"
)

func TestDUESetBasics(t *testing.T) {
	var s DUESet
	s.Reset(130) // crosses two word boundaries
	if s.Len() != 130 || s.Any() || s.Count() != 0 {
		t.Fatalf("fresh set: len %d any %v count %d", s.Len(), s.Any(), s.Count())
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		s.Set(i)
	}
	if !s.Any() || s.Count() != 5 {
		t.Fatalf("count %d, want 5", s.Count())
	}
	if s.Get(1) || !s.Get(63) || !s.Get(129) || s.Get(-1) || s.Get(130) {
		t.Fatal("Get disagrees with Set")
	}
	got := []int{}
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	want := []int{0, 63, 64, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk %v, want %v", got, want)
		}
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 4 {
		t.Fatal("Clear did not unflag")
	}
	// Reset to a smaller size clears every bit.
	s.Reset(10)
	if s.Any() || s.Len() != 10 {
		t.Fatal("Reset left stale flags")
	}
	if s.NextSet(0) != -1 {
		t.Fatal("NextSet on empty set")
	}
}

func TestDUESetBoundsPanic(t *testing.T) {
	var s DUESet
	s.Reset(5)
	for _, f := range []func(){func() { s.Set(5) }, func() { s.Set(-1) }, func() { s.Clear(5) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range index accepted")
				}
			}()
			f()
		}()
	}
}

// checkedMem is the facet the scalar/batch agreement test exercises
// (Raw has no decode Stats; the comparison picks those up via an
// optional assertion).
type checkedMem interface {
	Detector
	Array() *sram.Array
}

type statser interface{ Stats() Stats }

// detectTestWords fills a deterministic pattern hitting every bit.
func detectTestWords(n int) []uint32 {
	w := make([]uint32, n)
	x := uint32(0x9e3779b9)
	for i := range w {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		w[i] = x
	}
	return w
}

// TestCheckedScalarBatchAgree pins the Detector contract on the SECDED
// arms: ReadChecked (word at a time) and ReadBatchChecked must return
// identical data, identical per-word DUE flags, and identical Stats
// tallies — under mixed persistent faults, double faults, check-bit
// faults, coupling faults, and transient read noise. This is the
// satellite verification of the PECC upper-half decode in particular:
// its batch path splits the row into raw low half and decoded high
// half, and any divergence from the scalar decode shows up here.
func TestCheckedScalarBatchAgree(t *testing.T) {
	const rows = 64
	singles := func() fault.Map {
		kinds := []fault.Kind{fault.Flip, fault.StuckAt0, fault.StuckAt1}
		fm := make(fault.Map, 0, rows)
		for i := 0; i < rows; i++ {
			fm = append(fm, fault.Fault{Row: i, Col: (i * 11) % 32, Kind: kinds[i%3]})
		}
		return fm
	}()
	// Double faults per word, both halves: rows 0..15 pair upper-half
	// columns (PECC DUE territory), rows 16..31 pair lower+upper (PECC
	// sees one decode error + raw corruption).
	doubles := func() fault.Map {
		kinds := []fault.Kind{fault.Flip, fault.StuckAt0, fault.StuckAt1}
		var fm fault.Map
		for i := 0; i < 16; i++ {
			fm = append(fm, fault.Fault{Row: i, Col: 16 + i, Kind: kinds[i%3]})
			fm = append(fm, fault.Fault{Row: i, Col: 16 + (i+5)%16, Kind: kinds[(i+1)%3]})
		}
		for i := 16; i < 32; i++ {
			fm = append(fm, fault.Fault{Row: i, Col: i % 16, Kind: kinds[i%3]})
			fm = append(fm, fault.Fault{Row: i, Col: 16 + i%16, Kind: kinds[(i+2)%3]})
		}
		return fm
	}()
	checkFaults := fault.Map{
		{Row: 2, Col: 0, Kind: fault.Flip},
		{Row: 3, Col: 1, Kind: fault.Flip},
		{Row: 3, Col: 4, Kind: fault.StuckAt1},
	}

	type build func() (checkedMem, error)
	cases := []struct {
		name      string
		scalar    build
		batch     build
		couplings bool
		transient float64
	}{
		{
			name:   "ECC/singles",
			scalar: func() (checkedMem, error) { return NewECC(rows, singles, nil) },
			batch:  func() (checkedMem, error) { return NewECC(rows, singles, nil) },
		},
		{
			name:   "ECC/doubles+check",
			scalar: func() (checkedMem, error) { return NewECC(rows, doubles, checkFaults) },
			batch:  func() (checkedMem, error) { return NewECC(rows, doubles, checkFaults) },
		},
		{
			name:      "ECC/couplings",
			scalar:    func() (checkedMem, error) { return NewECC(rows, singles, nil) },
			batch:     func() (checkedMem, error) { return NewECC(rows, singles, nil) },
			couplings: true,
		},
		{
			name:      "ECC/transient",
			scalar:    func() (checkedMem, error) { return NewECC(rows, singles, nil) },
			batch:     func() (checkedMem, error) { return NewECC(rows, singles, nil) },
			transient: 0.05,
		},
		{
			name:   "PECC/singles",
			scalar: func() (checkedMem, error) { return NewPECC(rows, singles, nil) },
			batch:  func() (checkedMem, error) { return NewPECC(rows, singles, nil) },
		},
		{
			name:   "PECC/doubles+check",
			scalar: func() (checkedMem, error) { return NewPECC(rows, doubles, checkFaults) },
			batch:  func() (checkedMem, error) { return NewPECC(rows, doubles, checkFaults) },
		},
		{
			name:      "PECC/couplings",
			scalar:    func() (checkedMem, error) { return NewPECC(rows, singles, nil) },
			batch:     func() (checkedMem, error) { return NewPECC(rows, singles, nil) },
			couplings: true,
		},
		{
			name:      "PECC/transient",
			scalar:    func() (checkedMem, error) { return NewPECC(rows, singles, nil) },
			batch:     func() (checkedMem, error) { return NewPECC(rows, singles, nil) },
			transient: 0.05,
		},
		{
			name:   "Raw/never-flags",
			scalar: func() (checkedMem, error) { return NewRaw(rows, doubles) },
			batch:  func() (checkedMem, error) { return NewRaw(rows, doubles) },
		},
	}

	words := detectTestWords(rows)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scalar, err := tc.scalar()
			if err != nil {
				t.Fatal(err)
			}
			batch, err := tc.batch()
			if err != nil {
				t.Fatal(err)
			}
			if tc.couplings {
				// Physical coordinates inside every arm's array width; the
				// victims sit in other rows so writes corrupt cells outside
				// the fault map — corruption only detection can see.
				cs := []fault.Coupling{
					{AggRow: 5, AggCol: 3, VicRow: 6, VicCol: 20, Trigger: fault.Rise},
					{AggRow: 5, AggCol: 4, VicRow: 6, VicCol: 25, Trigger: fault.Rise},
					{AggRow: 9, AggCol: 1, VicRow: 40, VicCol: 7, Trigger: fault.Fall},
				}
				for _, m := range []checkedMem{scalar, batch} {
					if err := m.Array().SetCouplings(cs); err != nil {
						t.Fatal(err)
					}
				}
			}
			if tc.transient > 0 {
				scalar.Array().SetTransient(tc.transient, stats.NewRand(17))
				batch.Array().SetTransient(tc.transient, stats.NewRand(17))
			}

			// Identical stored state via the same scalar write order.
			for i, w := range words {
				scalar.Write(i, w)
				batch.Write(i, w)
			}

			scalarVals := make([]uint32, rows)
			scalarDue := make([]bool, rows)
			for i := range scalarVals {
				scalarVals[i], scalarDue[i] = scalar.ReadChecked(i)
			}
			var due DUESet
			due.Reset(rows)
			batchVals := make([]uint32, rows)
			batch.ReadBatchChecked(0, batchVals, &due, 0)

			flagged := 0
			for i := range scalarVals {
				if scalarVals[i] != batchVals[i] {
					t.Fatalf("word %d: scalar %#08x vs batch %#08x", i, scalarVals[i], batchVals[i])
				}
				if scalarDue[i] != due.Get(i) {
					t.Fatalf("word %d: scalar due %v vs batch due %v", i, scalarDue[i], due.Get(i))
				}
				if scalarDue[i] {
					flagged++
				}
			}
			if st, ok := scalar.(statser); ok {
				ss, bs := st.Stats(), batch.(statser).Stats()
				if ss != bs {
					t.Fatalf("stats diverge: scalar %+v vs batch %+v", ss, bs)
				}
				if got := int(ss.Uncorrectable); got != flagged {
					t.Fatalf("flagged %d words but tallied %d uncorrectable", flagged, got)
				}
			} else if flagged != 0 {
				t.Fatalf("codeless memory flagged %d words", flagged)
			}

			// An offset batch with a non-zero flag base must land flags at
			// base+i and accumulate over already-set bits.
			const off, n, base = 17, 30, 100
			var due2 DUESet
			due2.Reset(base + n)
			due2.Set(base) // pre-set: checked reads must never clear
			batch.ReadBatchChecked(off, batchVals[:n], &due2, base)
			for i := 0; i < n; i++ {
				v, d := scalar.ReadChecked(off + i)
				if tc.transient > 0 {
					// Fresh noise draws: values may differ, flags still only
					// come from the decoder, so just confirm no panic and
					// move on.
					_ = v
					continue
				}
				if v != batchVals[i] {
					t.Fatalf("offset word %d: scalar %#08x vs batch %#08x", off+i, v, batchVals[i])
				}
				if i != 0 && d != due2.Get(base+i) {
					t.Fatalf("offset word %d: scalar due %v vs batch due %v", off+i, d, due2.Get(base+i))
				}
			}
			if !due2.Get(base) {
				t.Fatal("checked batch read cleared a pre-set flag")
			}
		})
	}
}

// TestECCScrubCleansCoupledVictim pins scrub-on-correct against the one
// corruption class it can actually clean: stored-state corruption that
// is not re-applied by a fault mask. A coupling fault toggles a victim
// cell in another row; the victim row then decodes Corrected, and with
// scrubbing on, the checked read writes the repaired codeword back so
// the next read is clean. With scrubbing off the corruption persists and
// every read pays another correction.
func TestECCScrubCleansCoupledVictim(t *testing.T) {
	corrupt := func(e *ECC) {
		pos := e.code.DataPositions()[7]
		if err := e.arr.SetCouplings([]fault.Coupling{
			{AggRow: 0, AggCol: pos, VicRow: 1, VicCol: pos, Trigger: fault.Rise},
		}); err != nil {
			t.Fatal(err)
		}
		e.Write(1, 0xCAFEBABE)
		e.Write(0, 0)
		e.Write(0, 1<<7) // aggressor data bit 7 rises -> victim cell toggles
	}

	scrubbed := mustECC(2, nil)
	scrubbed.SetScrub(true)
	corrupt(scrubbed)
	if v, due := scrubbed.ReadChecked(1); v != 0xCAFEBABE || due {
		t.Fatalf("victim read %#x due %v, want corrected data", v, due)
	}
	if st := scrubbed.Stats(); st.Corrected != 1 {
		t.Fatalf("stats %+v after first read", st)
	}
	if v := scrubbed.Read(1); v != 0xCAFEBABE {
		t.Fatalf("post-scrub read %#x", v)
	}
	if st := scrubbed.Stats(); st.Corrected != 1 {
		t.Fatalf("scrub did not clean the stored word: %+v", st)
	}

	plain := mustECC(2, nil)
	corrupt(plain)
	if v, _ := plain.ReadChecked(1); v != 0xCAFEBABE {
		t.Fatalf("victim read %#x", v)
	}
	_ = plain.Read(1)
	if st := plain.Stats(); st.Corrected != 2 {
		t.Fatalf("without scrub both reads should correct: %+v", st)
	}

	// The batch checked path scrubs the same way.
	batched := mustECC(2, nil)
	batched.SetScrub(true)
	corrupt(batched)
	var due DUESet
	due.Reset(2)
	dst := make([]uint32, 2)
	batched.ReadBatchChecked(0, dst, &due, 0)
	if dst[1] != 0xCAFEBABE || due.Any() {
		t.Fatalf("batch read %#x due %v", dst[1], due.Any())
	}
	_ = batched.Read(1)
	if st := batched.Stats(); st.Corrected != 1 {
		t.Fatalf("batch scrub did not clean the stored word: %+v", st)
	}
}

// TestBankedCheckedDelegation pins the Banked detector: flags from a
// detecting bank land at the right global indices (chunk base offsets),
// and codeless banks contribute data but never flags.
func TestBankedCheckedDelegation(t *testing.T) {
	eccBank := mustECC(8, fault.Map{
		{Row: 2, Col: 3, Kind: fault.Flip},
		{Row: 2, Col: 9, Kind: fault.Flip},
	})
	rawBank := mustRaw(8, fault.Map{{Row: 1, Col: 31, Kind: fault.Flip}})
	bk, err := NewBanked(eccBank, rawBank)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		bk.Write(i, uint32(i)*0x01010101)
	}

	if _, due := bk.ReadChecked(2); !due {
		t.Fatal("double fault in ECC bank not flagged through Banked")
	}
	if _, due := bk.ReadChecked(9); due {
		t.Fatal("raw bank flagged")
	}

	const base = 40
	var due DUESet
	due.Reset(base + 16)
	dst := make([]uint32, 16)
	bk.ReadBatchChecked(0, dst, &due, base)
	for i := 0; i < 16; i++ {
		want := i == 2
		if due.Get(base+i) != want {
			t.Fatalf("global word %d: flag %v, want %v", i, due.Get(base+i), want)
		}
		if sv := bk.Read(i); sv != dst[i] {
			t.Fatalf("global word %d: batch %#x vs scalar %#x", i, dst[i], sv)
		}
	}
}
