package mem

import (
	"fmt"
)

// BatchMemory is a Word32 with bulk-transfer paths. WriteBatch and
// ReadBatch are semantically identical to the equivalent per-word
// Write/Read loop in ascending address order — the same fault
// application, decode statistics, and access accounting — but amortize
// the per-word interface call and apply fault masks (and SECDED
// encode/decode) over whole row ranges. The word-at-a-time methods
// remain the oracle the batch paths are tested against.
type BatchMemory interface {
	Word32
	// WriteBatch stores src[i] at addr+i for every element.
	WriteBatch(addr int, src []uint32)
	// ReadBatch reads the word at addr+i into dst[i] for every element.
	ReadBatch(addr int, dst []uint32)
}

// ImageWriter is a Word32 that can precompute the fault-independent
// physical image of a block of words — for an ECC memory, the clean
// codewords — so that repeated writes of the same data (the per-trial
// dataset load of a Monte-Carlo campaign) skip the encode entirely and
// reduce to a masked copy.
//
// EncodeImage is position-independent: img[i] depends only on src[i],
// never on the address it will be stored at, so one image serves any
// paging of the data. Anything address- or fault-dependent (stuck-at
// masks, the FM-LUT shuffle rotation) is applied by WriteImage at store
// time, which is why images stay valid across Reset/Reprogram.
type ImageWriter interface {
	Word32
	// ImageKey identifies the encode transform: two memories with equal
	// non-empty keys produce identical images for identical data, so the
	// image can be cached per key and shared across instances. An empty
	// key means imaging is unsupported (EncodeImage/WriteImage must not
	// be called).
	ImageKey() string
	// EncodeImage fills img with the physical words a fault-free write
	// of src would store. len(img) must equal len(src).
	EncodeImage(img []uint64, src []uint32)
	// WriteImage stores a precomputed image at addr+i, applying the same
	// fault effects and access accounting as a WriteBatch of the source
	// data. img is not modified.
	WriteImage(addr int, img []uint64)
}

// ImageKeyRaw32 is the image key of memories whose physical word equals
// the 32-bit datum (no check bits added by the encode transform).
const ImageKeyRaw32 = "raw32"

// growBuf returns a length-n scratch slice, reusing buf's storage when
// it is large enough.
func growBuf(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

// checkImageLen panics unless img and src pair up one-to-one.
func checkImageLen(img []uint64, src []uint32) {
	if len(img) != len(src) {
		panic(fmt.Sprintf("mem: image length %d vs data length %d", len(img), len(src)))
	}
}

// --- Perfect ---

// WriteBatch stores src[i] at addr+i.
func (p *Perfect) WriteBatch(addr int, src []uint32) {
	copy(p.data[addr:addr+len(src)], src)
}

// ReadBatch reads addr+i into dst[i].
func (p *Perfect) ReadBatch(addr int, dst []uint32) {
	copy(dst, p.data[addr:addr+len(dst)])
}

// ImageKey identifies the (identity) encode transform.
func (p *Perfect) ImageKey() string { return ImageKeyRaw32 }

// EncodeImage widens src into img (the physical word is the datum).
func (p *Perfect) EncodeImage(img []uint64, src []uint32) {
	checkImageLen(img, src)
	for i, v := range src {
		img[i] = uint64(v)
	}
}

// WriteImage stores a precomputed image at addr+i.
func (p *Perfect) WriteImage(addr int, img []uint64) {
	dst := p.data[addr : addr+len(img)]
	for i, w := range img {
		dst[i] = uint32(w)
	}
}

// --- Raw ---

// WriteBatch stores src[i] at addr+i.
func (r *Raw) WriteBatch(addr int, src []uint32) {
	r.buf = growBuf(r.buf, len(src))
	for i, v := range src {
		r.buf[i] = uint64(v)
	}
	r.arr.WriteBatch(addr, r.buf)
}

// ReadBatch reads addr+i into dst[i].
func (r *Raw) ReadBatch(addr int, dst []uint32) {
	r.buf = growBuf(r.buf, len(dst))
	r.arr.ReadBatch(addr, r.buf)
	for i, w := range r.buf {
		dst[i] = uint32(w)
	}
}

// ImageKey identifies the (identity) encode transform.
func (r *Raw) ImageKey() string { return ImageKeyRaw32 }

// EncodeImage widens src into img (the physical word is the datum).
func (r *Raw) EncodeImage(img []uint64, src []uint32) {
	checkImageLen(img, src)
	for i, v := range src {
		img[i] = uint64(v)
	}
}

// WriteImage stores a precomputed image at addr+i, subject to the
// array's stuck-at masks.
func (r *Raw) WriteImage(addr int, img []uint64) {
	r.arr.WriteBatch(addr, img)
}

// --- ECC ---

// WriteBatch encodes and stores src[i] at addr+i.
func (e *ECC) WriteBatch(addr int, src []uint32) {
	e.buf = growBuf(e.buf, len(src))
	for i, v := range src {
		e.buf[i] = uint64(v)
	}
	e.code.EncodeBatch(e.buf, e.buf)
	e.arr.WriteBatch(addr, e.buf)
}

// ReadBatch decodes the words at addr+i into dst[i], tallying decode
// outcomes exactly as per-word Read does.
func (e *ECC) ReadBatch(addr int, dst []uint32) {
	e.buf = growBuf(e.buf, len(dst))
	e.arr.ReadBatch(addr, e.buf)
	corrected, uncorrectable := e.code.DecodeBatch(e.buf, e.buf)
	e.stats.Reads += uint64(len(dst))
	e.stats.Corrected += corrected
	e.stats.Uncorrectable += uncorrectable
	for i, w := range e.buf {
		dst[i] = uint32(w)
	}
}

// ImageKey identifies the SECDED encode transform.
func (e *ECC) ImageKey() string { return e.key }

// EncodeImage fills img with the clean codewords of src.
func (e *ECC) EncodeImage(img []uint64, src []uint32) {
	checkImageLen(img, src)
	for i, v := range src {
		img[i] = uint64(v)
	}
	e.code.EncodeBatch(img, img)
}

// WriteImage stores precomputed codewords at addr+i, subject to the
// array's stuck-at masks.
func (e *ECC) WriteImage(addr int, img []uint64) {
	e.arr.WriteBatch(addr, img)
}

// --- PECC ---

// encodeImageInto fills img with the physical row images of src: raw
// low bits, codeword of the protected high bits shifted above them.
func (p *PECC) encodeImageInto(img []uint64, src []uint32) {
	lb := uint(p.lowBits)
	for i, v := range src {
		img[i] = uint64(v >> lb)
	}
	p.code.EncodeBatch(img, img)
	lowMask := uint64(1)<<lb - 1
	for i, v := range src {
		img[i] = uint64(v)&lowMask | img[i]<<lb
	}
}

// WriteBatch stores src[i] at addr+i, encoding the protected high bits.
func (p *PECC) WriteBatch(addr int, src []uint32) {
	p.buf = growBuf(p.buf, len(src))
	p.encodeImageInto(p.buf, src)
	p.arr.WriteBatch(addr, p.buf)
}

// ReadBatch reads addr+i into dst[i]: raw low bits, decoded high bits,
// tallying decode outcomes exactly as per-word Read does.
func (p *PECC) ReadBatch(addr int, dst []uint32) {
	p.buf = growBuf(p.buf, len(dst))
	p.arr.ReadBatch(addr, p.buf)
	lb := uint(p.lowBits)
	lowMask := uint64(1)<<lb - 1
	// Park the raw low halves in dst while the codewords decode in
	// place, then weave the recovered high halves back in.
	for i, w := range p.buf {
		dst[i] = uint32(w & lowMask)
		p.buf[i] = w >> lb
	}
	corrected, uncorrectable := p.code.DecodeBatch(p.buf, p.buf)
	p.stats.Reads += uint64(len(dst))
	p.stats.Corrected += corrected
	p.stats.Uncorrectable += uncorrectable
	for i, hi := range p.buf {
		dst[i] |= uint32(hi) << lb
	}
}

// ImageKey identifies the split raw/SECDED encode transform.
func (p *PECC) ImageKey() string { return p.key }

// EncodeImage fills img with the clean physical row images of src.
func (p *PECC) EncodeImage(img []uint64, src []uint32) {
	checkImageLen(img, src)
	p.encodeImageInto(img, src)
}

// WriteImage stores precomputed row images at addr+i, subject to the
// array's stuck-at masks.
func (p *PECC) WriteImage(addr int, img []uint64) {
	p.arr.WriteBatch(addr, img)
}

// --- Banked ---

// eachBankRange walks the bank-aligned chunks of the global address
// range [addr, addr+n), calling fn with the bank, its local offset, and
// the chunk's position within the range.
func (b *Banked) eachBankRange(addr, n int, fn func(bank Word32, off, start, chunk int)) {
	for start := 0; start < n; {
		bank := addr / b.perBank
		off := addr % b.perBank
		chunk := b.perBank - off
		if rest := n - start; chunk > rest {
			chunk = rest
		}
		fn(b.banks[bank], off, start, chunk)
		addr += chunk
		start += chunk
	}
}

// WriteBatch stores src[i] at the global address addr+i, delegating to
// each bank's batch path (or its scalar path when a bank lacks one).
func (b *Banked) WriteBatch(addr int, src []uint32) {
	b.eachBankRange(addr, len(src), func(bank Word32, off, start, chunk int) {
		part := src[start : start+chunk]
		if bm, ok := bank.(BatchMemory); ok {
			bm.WriteBatch(off, part)
			return
		}
		for i, v := range part {
			bank.Write(off+i, v)
		}
	})
}

// ReadBatch reads the global address addr+i into dst[i].
func (b *Banked) ReadBatch(addr int, dst []uint32) {
	b.eachBankRange(addr, len(dst), func(bank Word32, off, start, chunk int) {
		part := dst[start : start+chunk]
		if bm, ok := bank.(BatchMemory); ok {
			bm.ReadBatch(off, part)
			return
		}
		for i := range part {
			part[i] = bank.Read(off + i)
		}
	})
}

// ImageKey returns the banks' common image key, or "" when any bank
// does not support imaging or the keys disagree (mixed-scheme banks
// have no single encode transform).
func (b *Banked) ImageKey() string {
	first, ok := b.banks[0].(ImageWriter)
	if !ok {
		return ""
	}
	key := first.ImageKey()
	if key == "" {
		return ""
	}
	for _, bank := range b.banks[1:] {
		iw, ok := bank.(ImageWriter)
		if !ok || iw.ImageKey() != key {
			return ""
		}
	}
	return key
}

// EncodeImage fills img with the banks' common physical image of src.
// Valid only when ImageKey is non-empty (all banks share the encode
// transform, which is position-independent, so bank 0 images for all).
func (b *Banked) EncodeImage(img []uint64, src []uint32) {
	checkImageLen(img, src)
	b.banks[0].(ImageWriter).EncodeImage(img, src)
}

// WriteImage stores a precomputed image at the global address addr+i.
// Valid only when ImageKey is non-empty.
func (b *Banked) WriteImage(addr int, img []uint64) {
	b.eachBankRange(addr, len(img), func(bank Word32, off, start, chunk int) {
		bank.(ImageWriter).WriteImage(off, img[start:start+chunk])
	})
}

// Compile-time interface checks.
var (
	_ BatchMemory = (*Perfect)(nil)
	_ BatchMemory = (*Raw)(nil)
	_ BatchMemory = (*ECC)(nil)
	_ BatchMemory = (*PECC)(nil)
	_ BatchMemory = (*Banked)(nil)

	_ ImageWriter = (*Perfect)(nil)
	_ ImageWriter = (*Raw)(nil)
	_ ImageWriter = (*ECC)(nil)
	_ ImageWriter = (*PECC)(nil)
	_ ImageWriter = (*Banked)(nil)
)
