package sram

import (
	"testing"
	"testing/quick"

	"faultmem/internal/fault"
	"faultmem/internal/stats"
)

func TestNewArrayDims(t *testing.T) {
	a := NewArray(8, 32)
	if a.Rows() != 8 || a.Width() != 32 || a.Cells() != 256 {
		t.Fatalf("dims: rows=%d width=%d cells=%d", a.Rows(), a.Width(), a.Cells())
	}
}

func Test16KBPreset(t *testing.T) {
	a := New16KB()
	if a.Rows() != 4096 || a.Width() != 32 {
		t.Fatalf("16KB macro is %dx%d", a.Rows(), a.Width())
	}
	if Rows16KB(32) != 4096 || Rows16KB(16) != 8192 || Rows16KB(64) != 2048 {
		t.Error("Rows16KB wrong")
	}
}

func TestFaultFreeRoundTrip(t *testing.T) {
	a := NewArray(16, 32)
	f := func(row uint8, v uint64) bool {
		r := int(row) % 16
		v &= 0xFFFFFFFF
		a.Write(r, v)
		return a.Read(r) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWidthMasking(t *testing.T) {
	a := NewArray(2, 8)
	a.Write(0, 0x1FF) // 9 bits; top bit must be dropped
	if got := a.Read(0); got != 0xFF {
		t.Errorf("width mask violated: %#x", got)
	}
}

func TestFlipFault(t *testing.T) {
	a := NewArray(4, 32)
	m := fault.Map{{Row: 1, Col: 31, Kind: fault.Flip}}
	if err := a.SetFaults(m); err != nil {
		t.Fatal(err)
	}
	a.Write(1, 0)
	if got := a.Read(1); got != 1<<31 {
		t.Errorf("flip at MSB: read %#x, want %#x", got, uint64(1)<<31)
	}
	a.Write(1, 1<<31)
	if got := a.Read(1); got != 0 {
		t.Errorf("flip of stored 1: read %#x, want 0", got)
	}
	// Other rows untouched.
	a.Write(0, 0xDEADBEEF)
	if a.Read(0) != 0xDEADBEEF {
		t.Error("fault leaked to clean row")
	}
}

func TestStuckAtFaults(t *testing.T) {
	a := NewArray(2, 8)
	m := fault.Map{
		{Row: 0, Col: 0, Kind: fault.StuckAt0},
		{Row: 0, Col: 7, Kind: fault.StuckAt1},
	}
	if err := a.SetFaults(m); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 0x01) // try to store 1 in the SA0 cell, 0 in the SA1 cell
	got := a.Read(0)
	if got&1 != 0 {
		t.Errorf("SA0 cell read 1: %#x", got)
	}
	if got&0x80 == 0 {
		t.Errorf("SA1 cell read 0: %#x", got)
	}
	// Agreeing data passes through unharmed.
	a.Write(0, 0x80)
	if a.Read(0) != 0x80 {
		t.Errorf("agreeing datum corrupted: %#x", a.Read(0))
	}
}

func TestSetFaultsAppliesToExistingData(t *testing.T) {
	a := NewArray(1, 8)
	a.Write(0, 0xFF)
	if err := a.SetFaults(fault.Map{{Row: 0, Col: 3, Kind: fault.StuckAt0}}); err != nil {
		t.Fatal(err)
	}
	if got := a.Peek(0); got&(1<<3) != 0 {
		t.Errorf("stuck-at-0 did not corrupt stored data: %#x", got)
	}
}

func TestSetFaultsReplacesPrevious(t *testing.T) {
	a := NewArray(2, 8)
	if err := a.SetFaults(fault.Map{{Row: 0, Col: 0, Kind: fault.Flip}}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetFaults(fault.Map{{Row: 1, Col: 1, Kind: fault.Flip}}); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 0)
	if a.Read(0) != 0 {
		t.Error("old fault survived SetFaults")
	}
	if len(a.Faults()) != 1 {
		t.Error("Faults() not replaced")
	}
}

func TestSetFaultsRejectsInvalid(t *testing.T) {
	a := NewArray(2, 8)
	if err := a.SetFaults(fault.Map{{Row: 5, Col: 0}}); err == nil {
		t.Error("out-of-range fault accepted")
	}
	if err := a.SetFaults(fault.Map{{Row: 0, Col: 0, Kind: fault.Kind(42)}}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestAccessCounters(t *testing.T) {
	a := NewArray(4, 32)
	a.Write(0, 1)
	a.Write(1, 2)
	_ = a.Read(0)
	r, w := a.AccessCounts()
	if r != 1 || w != 2 {
		t.Errorf("counts r=%d w=%d", r, w)
	}
	a.ResetAccessCounts()
	r, w = a.AccessCounts()
	if r != 0 || w != 0 {
		t.Error("reset failed")
	}
}

func TestFillAndFaultCountInvariant(t *testing.T) {
	// Property: with n flip faults and all-zero data, the total number of
	// set bits across all reads equals n.
	f := func(seed int64, nRaw uint8) bool {
		rng := stats.NewRand(seed)
		n := int(nRaw) % 64
		a := NewArray(32, 32)
		m := fault.GenerateCount(rng, 32, 32, n, fault.Flip)
		if err := a.SetFaults(m); err != nil {
			return false
		}
		a.Fill(0)
		total := 0
		for r := 0; r < 32; r++ {
			v := a.Read(r)
			for v != 0 {
				v &= v - 1
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
