// Package sram provides the bit-accurate functional model of an SRAM
// macro with persistent bit-cell faults, together with the statistical
// 28 nm 6T cell-failure model that drives the paper's voltage-scaling
// analysis (Fig. 2).
//
// An Array behaves like the raw bit-cell matrix of Fig. 1: R rows of
// W-bit words, where individual cells can be faulty (flip or stuck-at).
// Protection schemes (ECC, P-ECC, bit-shuffling) wrap an Array and
// implement their datapaths on top of its raw Read/Write.
package sram

import (
	"fmt"
	"math/rand"

	"faultmem/internal/bits"
	"faultmem/internal/fault"
)

// Array is a functional R x W SRAM bit-cell array with persistent faults.
//
// Fault semantics:
//   - Flip: the cell reads back the inverse of what was stored.
//   - StuckAt0/StuckAt1: the cell stores the stuck value regardless of the
//     datum; reads return the stuck value.
//
// Faults are persistent: they corrupt every access until the map changes,
// matching variation-induced failures fixed at manufacturing (§2).
type Array struct {
	rows, width int
	data        []uint64
	flip        []uint64 // per-row XOR mask applied on read
	sa0         []uint64 // per-row mask of cells stuck at 0
	sa1         []uint64 // per-row mask of cells stuck at 1
	faults      fault.Map

	transientRate float64 // per-cell soft-error probability per read
	transientRNG  *rand.Rand

	// couplings holds CFid faults bucketed by aggressor row for the
	// write path.
	couplings map[int][]fault.Coupling

	reads, writes uint64 // access counters for energy accounting
}

// NewArray creates a fault-free rows x width array. Width must be within
// (0, 64]; rows positive.
func NewArray(rows, width int) *Array {
	if rows <= 0 {
		panic(fmt.Sprintf("sram: invalid row count %d", rows))
	}
	bits.CheckWidth(width)
	return &Array{
		rows:  rows,
		width: width,
		data:  make([]uint64, rows),
		flip:  make([]uint64, rows),
		sa0:   make([]uint64, rows),
		sa1:   make([]uint64, rows),
	}
}

// Rows16KB returns the row count of a 16 KB macro with the given word
// width (the paper's evaluation memory: 16 KB => 4096 words of 32 bits).
func Rows16KB(width int) int {
	const bits16KB = 16 * 1024 * 8
	return bits16KB / width
}

// New16KB creates a fault-free 16 KB array of 32-bit words.
func New16KB() *Array { return NewArray(Rows16KB(32), 32) }

// Rows returns the number of rows (words).
func (a *Array) Rows() int { return a.rows }

// Width returns the word width in bits.
func (a *Array) Width() int { return a.width }

// Cells returns the total bit-cell count M = R x W.
func (a *Array) Cells() int { return a.rows * a.width }

// SetFaults installs a fault map, replacing any previous one. The stored
// data is preserved, but stuck-at faults immediately overwrite the
// affected stored bits (the cell physically cannot hold the datum).
func (a *Array) SetFaults(m fault.Map) error {
	if err := m.Validate(a.rows, a.width); err != nil {
		return err
	}
	for r := range a.flip {
		a.flip[r], a.sa0[r], a.sa1[r] = 0, 0, 0
	}
	for _, f := range m {
		b := uint64(1) << uint(f.Col)
		switch f.Kind {
		case fault.Flip:
			a.flip[f.Row] |= b
		case fault.StuckAt0:
			a.sa0[f.Row] |= b
		case fault.StuckAt1:
			a.sa1[f.Row] |= b
		default:
			return fmt.Errorf("sram: unknown fault kind %v", f.Kind)
		}
	}
	// Keep a private copy of the map, reusing the previous copy's
	// storage: repeated SetFaults on one array (the per-trial
	// Monte-Carlo path) stay allocation-free once warm.
	a.faults = append(a.faults[:0], m...)
	for r := range a.data {
		a.data[r] = a.storeEffect(r, a.data[r])
	}
	return nil
}

// Faults returns a copy of the installed fault map.
func (a *Array) Faults() fault.Map { return a.faults.Clone() }

// SetCouplings installs idempotent coupling faults (replacing any
// previous set). Coupling faults fire on writes: when the aggressor
// cell's stored value undergoes the trigger transition, the victim
// cell's stored value toggles.
func (a *Array) SetCouplings(cs []fault.Coupling) error {
	for i, c := range cs {
		if err := c.Validate(a.rows, a.width); err != nil {
			return fmt.Errorf("sram: coupling %d: %w", i, err)
		}
	}
	if len(cs) == 0 {
		a.couplings = nil
		return nil
	}
	a.couplings = make(map[int][]fault.Coupling)
	for _, c := range cs {
		a.couplings[c.AggRow] = append(a.couplings[c.AggRow], c)
	}
	return nil
}

// storeEffect applies the stuck-at behaviour to a value being stored in
// row r.
func (a *Array) storeEffect(r int, v uint64) uint64 {
	return (v &^ a.sa0[r]) | a.sa1[r]
}

// Write stores the low W bits of v into row r, subject to stuck-at
// faults. Coupling faults whose aggressor cell transitions during this
// write toggle their victims' stored bits.
func (a *Array) Write(r int, v uint64) {
	if r < 0 || r >= a.rows {
		panic(fmt.Sprintf("sram: write row %d out of %d", r, a.rows))
	}
	a.writes++
	old := a.data[r]
	a.data[r] = a.storeEffect(r, v&bits.Mask(a.width))
	if len(a.couplings) == 0 {
		return
	}
	cur := a.data[r]
	for _, c := range a.couplings[r] {
		oldBit := (old >> uint(c.AggCol)) & 1
		newBit := (cur >> uint(c.AggCol)) & 1
		fired := (c.Trigger == fault.Rise && oldBit == 0 && newBit == 1) ||
			(c.Trigger == fault.Fall && oldBit == 1 && newBit == 0)
		if !fired {
			continue
		}
		// Toggle the victim's stored value (no cascade: CFid is a
		// single-level disturbance, and stuck-at victims cannot move).
		flipped := a.data[c.VicRow] ^ (uint64(1) << uint(c.VicCol))
		a.data[c.VicRow] = a.storeEffect(c.VicRow, flipped)
		if c.VicRow == r {
			cur = a.data[r]
		}
	}
}

// Read returns the W-bit word at row r, subject to flip faults (stuck-at
// faults already corrupted the stored value) and, when enabled, transient
// soft errors.
func (a *Array) Read(r int) uint64 {
	if r < 0 || r >= a.rows {
		panic(fmt.Sprintf("sram: read row %d out of %d", r, a.rows))
	}
	a.reads++
	return (a.data[r] ^ a.flip[r] ^ a.transientMask()) & bits.Mask(a.width)
}

// Peek returns the stored word of row r without fault application or
// access accounting. It models a design-for-test backdoor and is used by
// tests to distinguish storage corruption from read corruption.
func (a *Array) Peek(r int) uint64 { return a.data[r] }

// AccessCounts returns the cumulative numbers of reads and writes.
func (a *Array) AccessCounts() (reads, writes uint64) { return a.reads, a.writes }

// ResetAccessCounts zeroes the access counters.
func (a *Array) ResetAccessCounts() { a.reads, a.writes = 0, 0 }

// Fill writes v to every row.
func (a *Array) Fill(v uint64) {
	for r := 0; r < a.rows; r++ {
		a.Write(r, v)
	}
}
