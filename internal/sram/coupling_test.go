package sram

import (
	"testing"

	"faultmem/internal/fault"
	"faultmem/internal/stats"
)

func TestCouplingRiseTrigger(t *testing.T) {
	a := NewArray(4, 8)
	c := fault.Coupling{AggRow: 0, AggCol: 0, VicRow: 2, VicCol: 3, Trigger: fault.Rise}
	if err := a.SetCouplings([]fault.Coupling{c}); err != nil {
		t.Fatal(err)
	}
	a.Write(2, 0) // victim row holds 0
	a.Write(0, 1) // aggressor 0 -> 1: fires
	if got := a.Read(2); got != 1<<3 {
		t.Errorf("victim not toggled: %#x", got)
	}
	a.Write(0, 1) // no transition: must not fire again
	if got := a.Read(2); got != 1<<3 {
		t.Errorf("coupling fired without transition: %#x", got)
	}
	a.Write(0, 0) // fall: rise-triggered coupling must not fire
	if got := a.Read(2); got != 1<<3 {
		t.Errorf("rise coupling fired on fall: %#x", got)
	}
	a.Write(0, 1) // rise again: toggles back
	if got := a.Read(2); got != 0 {
		t.Errorf("second toggle failed: %#x", got)
	}
}

func TestCouplingFallTrigger(t *testing.T) {
	a := NewArray(2, 8)
	c := fault.Coupling{AggRow: 0, AggCol: 7, VicRow: 1, VicCol: 0, Trigger: fault.Fall}
	if err := a.SetCouplings([]fault.Coupling{c}); err != nil {
		t.Fatal(err)
	}
	a.Write(1, 0)
	a.Write(0, 0x80) // aggressor to 1: no fall
	if a.Read(1) != 0 {
		t.Error("fall coupling fired on rise")
	}
	a.Write(0, 0) // 1 -> 0: fires
	if a.Read(1) != 1 {
		t.Error("fall coupling did not fire")
	}
}

func TestCouplingSameRow(t *testing.T) {
	// Aggressor and victim within one word: the disturbance applies to
	// the freshly written data.
	a := NewArray(1, 8)
	c := fault.Coupling{AggRow: 0, AggCol: 0, VicRow: 0, VicCol: 5, Trigger: fault.Rise}
	if err := a.SetCouplings([]fault.Coupling{c}); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 0x00)
	a.Write(0, 0x01) // aggressor rises; victim bit 5 (just written 0) toggles
	if got := a.Read(0); got != 0x21 {
		t.Errorf("same-row coupling: %#x, want 0x21", got)
	}
}

func TestCouplingStuckVictimImmune(t *testing.T) {
	// A stuck-at victim cannot be toggled by the disturbance.
	a := NewArray(2, 8)
	if err := a.SetFaults(fault.Map{{Row: 1, Col: 0, Kind: fault.StuckAt0}}); err != nil {
		t.Fatal(err)
	}
	c := fault.Coupling{AggRow: 0, AggCol: 0, VicRow: 1, VicCol: 0, Trigger: fault.Rise}
	if err := a.SetCouplings([]fault.Coupling{c}); err != nil {
		t.Fatal(err)
	}
	a.Write(1, 0)
	a.Write(0, 1)
	if a.Read(1) != 0 {
		t.Error("stuck-at-0 victim toggled")
	}
}

func TestCouplingValidation(t *testing.T) {
	a := NewArray(2, 8)
	bad := []fault.Coupling{
		{AggRow: 0, AggCol: 0, VicRow: 0, VicCol: 0, Trigger: fault.Rise},          // same cell
		{AggRow: 5, AggCol: 0, VicRow: 0, VicCol: 1, Trigger: fault.Rise},          // out of range
		{AggRow: 0, AggCol: 0, VicRow: 0, VicCol: 1, Trigger: fault.Transition(7)}, // bad trigger
	}
	for i, c := range bad {
		if err := a.SetCouplings([]fault.Coupling{c}); err == nil {
			t.Errorf("bad coupling %d accepted", i)
		}
	}
	// Clearing works.
	good := fault.Coupling{AggRow: 0, AggCol: 0, VicRow: 0, VicCol: 1, Trigger: fault.Rise}
	if err := a.SetCouplings([]fault.Coupling{good}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetCouplings(nil); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 0)
	a.Write(0, 1)
	if a.Read(0) != 1 {
		t.Error("cleared coupling still firing")
	}
}

func TestGenerateCouplingsDistinctVictims(t *testing.T) {
	rng := stats.NewRand(2)
	cs := fault.GenerateCouplings(rng, 16, 16, 30)
	if len(cs) != 30 {
		t.Fatalf("%d couplings", len(cs))
	}
	victims := map[[2]int]bool{}
	for _, c := range cs {
		if err := c.Validate(16, 16); err != nil {
			t.Fatal(err)
		}
		key := [2]int{c.VicRow, c.VicCol}
		if victims[key] {
			t.Fatalf("duplicate victim %v", key)
		}
		victims[key] = true
	}
}

func TestTransitionNames(t *testing.T) {
	if fault.Rise.String() != "up" || fault.Fall.String() != "down" {
		t.Error("transition names wrong")
	}
}
