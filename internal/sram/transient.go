package sram

import (
	"fmt"
	"math/rand"
)

// SetTransient enables per-read transient bit flips (soft errors):
// independently of the persistent fault map, every cell of a word being
// read flips with probability rate. A rate of 0 (the default) disables
// the mechanism.
//
// Transient faults are *not* part of the paper's model — its BIST-driven
// FM-LUT can only target persistent fault locations — but the extension
// lets the ablation benches show where the scheme's protection ends:
// ECC corrects a single soft error per word, bit-shuffling does not
// reduce its magnitude (the flip lands on a random logical bit either
// way).
func (a *Array) SetTransient(rate float64, rng *rand.Rand) {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("sram: transient rate %g outside [0,1)", rate))
	}
	if rate > 0 && rng == nil {
		panic("sram: transient faults need an RNG")
	}
	a.transientRate = rate
	a.transientRNG = rng
}

// transientMask draws the soft-error flip mask for one read.
func (a *Array) transientMask() uint64 {
	if a.transientRate == 0 {
		return 0
	}
	var mask uint64
	for b := 0; b < a.width; b++ {
		if a.transientRNG.Float64() < a.transientRate {
			mask |= uint64(1) << uint(b)
		}
	}
	return mask
}
