package sram

import (
	"fmt"
	"math"
	"math/rand"

	"faultmem/internal/stats"
)

// CellModel is the calibrated statistical failure model of a 6T SRAM
// bit-cell in a 28 nm process under supply-voltage scaling. It reproduces
// the Pcell-vs-VDD characteristic of Fig. 2: failure probability rises
// rapidly as VDD scales down, from ~1e-9 near nominal (1.0 V) to ~1e-2
// at 0.6 V.
//
// The model treats cell failure as a Gaussian margin crossing: the cell's
// composite noise margin at supply voltage V is beta(V) standard
// deviations of threshold-voltage variation, with beta affine in V:
//
//	Pcell(V) = Phi(-beta(V)),  beta(V) = Beta0 + BetaSlope*(V - VRef)
//
// This is the standard first-order yield model for parametric SRAM
// failures [Mukhopadhyay et al., IEEE TCAD 2005] and substitutes for the
// paper's in-house SPICE + hypersphere-sampling framework (see DESIGN.md,
// substitution table).
type CellModel struct {
	// VRef is the reference voltage at which beta = Beta0.
	VRef float64
	// Beta0 is the margin (in sigmas) at VRef.
	Beta0 float64
	// BetaSlope is the margin gain per volt of supply increase.
	BetaSlope float64
}

// Default28nm returns the cell model calibrated so that the published
// curve shape holds:
//
//	VDD 1.00 V -> Pcell ~ 2e-10
//	VDD 0.80 V -> Pcell ~ 1.5e-5
//	VDD 0.73 V -> Pcell ~ 2e-4   (16 KB yield ~ 0, as in §2)
//	VDD 0.60 V -> Pcell ~ 1e-2
func Default28nm() *CellModel {
	return &CellModel{VRef: 0.6, Beta0: 2.33, BetaSlope: 9.2}
}

// beta returns the margin in sigmas at the given supply voltage.
func (m *CellModel) beta(vdd float64) float64 {
	return m.Beta0 + m.BetaSlope*(vdd-m.VRef)
}

// Pcell returns the bit-cell failure probability at supply voltage vdd.
func (m *CellModel) Pcell(vdd float64) float64 {
	return stats.NormalCDF(-m.beta(vdd), 0, 1)
}

// VDDForPcell returns the supply voltage at which the failure probability
// equals p. It is the inverse of Pcell and panics for p outside (0, 1).
func (m *CellModel) VDDForPcell(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("sram: Pcell target %g outside (0,1)", p))
	}
	beta := -stats.NormalQuantile(p, 0, 1)
	return m.VRef + (beta-m.Beta0)/m.BetaSlope
}

// CriticalVDD returns the supply voltage below which a cell at failure
// quantile u fails (smaller u = weaker cell). Together with
// fault.SampleCriticalVoltages this realizes the fault-inclusion property:
// Pr(cell fails at V) = Pr(CriticalVDD(U) >= V) = Pcell(V) for U~Uniform.
func (m *CellModel) CriticalVDD(u float64) float64 {
	if u <= 0 || u >= 1 {
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		} else {
			u = 1 - 1e-16
		}
	}
	beta := -stats.NormalQuantile(u, 0, 1)
	return m.VRef + (beta-m.Beta0)/m.BetaSlope
}

// Yield returns the traditional zero-failure yield (1-Pcell)^cells of a
// memory with the given cell count at supply voltage vdd (§2).
func (m *CellModel) Yield(vdd float64, cells int) float64 {
	p := m.Pcell(vdd)
	return math.Exp(float64(cells) * math.Log1p(-p))
}

// ExpectedFailures returns cells * Pcell(vdd).
func (m *CellModel) ExpectedFailures(vdd float64, cells int) float64 {
	return float64(cells) * m.Pcell(vdd)
}

// SixT is a transistor-level statistical stability model of a 6T SRAM
// cell used by the spherical importance-sampling estimator. Each of the
// six transistors carries an independent standard-normal threshold-voltage
// deviation x[0..5] (in units of sigma-Vth); the cell fails when any of
// the failure mechanisms' margins is exhausted:
//
//	read-stability:  margins[0] - <readDir, x>  <= 0
//	write-margin:    margins[1] - <writeDir, x> <= 0
//	access-time:     margins[2] - <accessDir, x> <= 0
//
// Margins shrink affinely as VDD scales down. The linearized limit-state
// form is the standard abstraction for SRAM yield estimation and is what
// hypersphere-based importance sampling methods exploit [Date et al.,
// ISQED].
type SixT struct {
	// Margin per mechanism at VRef, in sigmas, and its slope per volt.
	Margin0 [3]float64
	Slope   [3]float64
	VRef    float64
	// Unit sensitivity direction of each mechanism in Vth-deviation space.
	Dir [3][6]float64
}

// NewSixT returns a 6T cell model whose dominant mechanism (read
// stability) matches the calibrated margin curve of Default28nm, with
// write margin and access time as weaker secondary mechanisms.
func NewSixT() *SixT {
	s := &SixT{
		Margin0: [3]float64{2.33, 3.1, 3.4},
		Slope:   [3]float64{9.2, 7.5, 11.0},
		VRef:    0.6,
		Dir: [3][6]float64{
			// Read stability: dominated by the pull-down / pass-gate pair.
			{0.62, 0.62, 0.33, 0.33, 0.10, 0.10},
			// Write margin: pull-up vs pass-gate contention.
			{0.15, 0.15, 0.55, 0.55, 0.40, 0.40},
			// Access time: pass-gate current.
			{0.10, 0.10, 0.70, 0.70, 0.05, 0.05},
		},
	}
	for i := range s.Dir {
		n := 0.0
		for _, v := range s.Dir[i] {
			n += v * v
		}
		n = math.Sqrt(n)
		for j := range s.Dir[i] {
			s.Dir[i][j] /= n
		}
	}
	return s
}

// Fails reports whether a cell with Vth deviations x (sigmas) fails at
// supply voltage vdd.
func (s *SixT) Fails(x [6]float64, vdd float64) bool {
	for i := 0; i < 3; i++ {
		margin := s.Margin0[i] + s.Slope[i]*(vdd-s.VRef)
		dot := 0.0
		for j := 0; j < 6; j++ {
			dot += s.Dir[i][j] * x[j]
		}
		if dot >= margin {
			return true
		}
	}
	return false
}

// chi6Survival returns Pr(R > r) for R the norm of a 6-dimensional
// standard normal vector (chi distribution with 6 degrees of freedom):
// S(r) = exp(-r^2/2) * (1 + r^2/2 + r^4/8).
func chi6Survival(r float64) float64 {
	if r <= 0 {
		return 1
	}
	x := r * r / 2
	return math.Exp(-x) * (1 + x + x*x/2)
}

// EstimatePcellIS estimates the cell failure probability of the 6T model
// at supply voltage vdd using spherical (hypersphere) importance
// sampling: directions are drawn uniformly on the 6-sphere, the minimal
// failure radius along each direction is found, and the exact chi-6 tail
// beyond that radius is accumulated. For a failure region that is a union
// of half-spaces this estimator is unbiased and needs orders of magnitude
// fewer samples than plain Monte Carlo at the tail probabilities of
// Fig. 2.
//
// directions is the number of sampled directions (e.g. 20000).
func (s *SixT) EstimatePcellIS(rng *rand.Rand, vdd float64, directions int) float64 {
	if directions <= 0 {
		panic("sram: non-positive direction count")
	}
	sum := 0.0
	for d := 0; d < directions; d++ {
		var dir [6]float64
		n := 0.0
		for j := 0; j < 6; j++ {
			dir[j] = rng.NormFloat64()
			n += dir[j] * dir[j]
		}
		n = math.Sqrt(n)
		if n == 0 {
			continue
		}
		for j := range dir {
			dir[j] /= n
		}
		// Minimal failure radius along dir: the failure region is a union
		// of half-spaces {<a_i, x> >= m_i}, so r*(dir) = min over
		// mechanisms with positive projection of m_i / <a_i, dir>.
		rStar := math.Inf(1)
		for i := 0; i < 3; i++ {
			margin := s.Margin0[i] + s.Slope[i]*(vdd-s.VRef)
			proj := 0.0
			for j := 0; j < 6; j++ {
				proj += s.Dir[i][j] * dir[j]
			}
			if proj > 0 && margin > 0 {
				if r := margin / proj; r < rStar {
					rStar = r
				}
			} else if margin <= 0 {
				rStar = 0
			}
		}
		if !math.IsInf(rStar, 1) {
			sum += chi6Survival(rStar)
		}
	}
	return sum / float64(directions)
}

// EstimatePcellMC estimates the same probability by plain Monte Carlo
// (for cross-validation at voltages where the probability is not too
// small).
func (s *SixT) EstimatePcellMC(rng *rand.Rand, vdd float64, samples int) float64 {
	if samples <= 0 {
		panic("sram: non-positive sample count")
	}
	fails := 0
	for i := 0; i < samples; i++ {
		var x [6]float64
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if s.Fails(x, vdd) {
			fails++
		}
	}
	return float64(fails) / float64(samples)
}
