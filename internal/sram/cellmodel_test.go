package sram

import (
	"math"
	"testing"

	"faultmem/internal/stats"
)

func TestPcellMonotoneDecreasingInVDD(t *testing.T) {
	m := Default28nm()
	prev := math.Inf(1)
	for v := 0.55; v <= 1.05; v += 0.01 {
		p := m.Pcell(v)
		if p >= prev {
			t.Fatalf("Pcell not strictly decreasing at V=%.2f: %g >= %g", v, p, prev)
		}
		if p <= 0 || p >= 1 {
			t.Fatalf("Pcell(%.2f) = %g outside (0,1)", v, p)
		}
		prev = p
	}
}

func TestPcellCalibrationAnchors(t *testing.T) {
	// The calibrated curve must reproduce the Fig. 2 shape within an
	// order of magnitude at the anchor voltages.
	m := Default28nm()
	anchors := []struct {
		vdd    float64
		lo, hi float64
	}{
		{1.00, 1e-11, 1e-8},
		{0.80, 1e-6, 1e-4},
		{0.73, 5e-5, 1e-3},
		{0.60, 3e-3, 5e-2},
	}
	for _, a := range anchors {
		p := m.Pcell(a.vdd)
		if p < a.lo || p > a.hi {
			t.Errorf("Pcell(%.2f) = %.3g outside [%g, %g]", a.vdd, p, a.lo, a.hi)
		}
	}
}

func TestYieldCollapsesAt073V(t *testing.T) {
	// §2: "the yield approaches zero for a 16KB memory operating at 0.73V".
	m := Default28nm()
	cells := Rows16KB(32) * 32
	if y := m.Yield(0.73, cells); y > 1e-6 {
		t.Errorf("16KB yield at 0.73V = %g, want ~0", y)
	}
	// And is essentially 1 at nominal voltage.
	if y := m.Yield(1.0, cells); y < 0.99 {
		t.Errorf("16KB yield at 1.0V = %g, want ~1", y)
	}
}

func TestVDDForPcellInverse(t *testing.T) {
	m := Default28nm()
	for _, p := range []float64{1e-8, 5e-6, 1e-4, 1e-3, 1e-2} {
		v := m.VDDForPcell(p)
		back := m.Pcell(v)
		if math.Abs(math.Log10(back)-math.Log10(p)) > 1e-6 {
			t.Errorf("VDDForPcell(%g) -> V=%.4f -> Pcell %g", p, v, back)
		}
	}
}

func TestCriticalVDDQuantileConsistency(t *testing.T) {
	// Pr(CriticalVDD(U) >= V) must equal Pcell(V): check by quantile
	// inversion at a few levels.
	m := Default28nm()
	for _, v := range []float64{0.65, 0.7, 0.8} {
		p := m.Pcell(v)
		// A cell exactly at quantile u = p has critical voltage v.
		vc := m.CriticalVDD(p)
		if math.Abs(vc-v) > 1e-9 {
			t.Errorf("CriticalVDD(Pcell(%.2f)) = %.6f, want %.2f", v, vc, v)
		}
	}
	// Extreme quantiles are clamped, not NaN.
	if math.IsNaN(m.CriticalVDD(0)) || math.IsNaN(m.CriticalVDD(1)) {
		t.Error("CriticalVDD NaN at extreme quantiles")
	}
}

func TestExpectedFailures(t *testing.T) {
	m := Default28nm()
	cells := 131072
	v := m.VDDForPcell(1e-3)
	got := m.ExpectedFailures(v, cells)
	if math.Abs(got-131.072) > 0.01 {
		t.Errorf("expected failures = %g, want ~131.07", got)
	}
}

func TestSixTDominantMechanismMatchesAnalytic(t *testing.T) {
	// At voltages where the read-stability mechanism dominates, the 6T IS
	// estimate should be close to the analytic margin model (within the
	// union-bound slack of the secondary mechanisms).
	cm := Default28nm()
	s := NewSixT()
	rng := stats.NewRand(1234)
	for _, vdd := range []float64{0.65, 0.7, 0.75} {
		want := cm.Pcell(vdd)
		got := s.EstimatePcellIS(rng, vdd, 20000)
		ratio := got / want
		if ratio < 0.8 || ratio > 3.0 {
			t.Errorf("V=%.2f: IS estimate %.3g vs analytic %.3g (ratio %.2f)",
				vdd, got, want, ratio)
		}
	}
}

func TestSixTISAgreesWithPlainMC(t *testing.T) {
	// At a voltage where plain MC is feasible, IS and MC must agree.
	s := NewSixT()
	vdd := 0.62 // Pcell ~ 1e-2: MC resolvable with 2e5 samples
	is := s.EstimatePcellIS(stats.NewRand(5), vdd, 20000)
	mc := s.EstimatePcellMC(stats.NewRand(6), vdd, 200000)
	if mc == 0 {
		t.Fatal("MC found no failures; pick a lower voltage")
	}
	ratio := is / mc
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("IS %.4g vs MC %.4g (ratio %.3f)", is, mc, ratio)
	}
}

func TestSixTISMonotoneInVDD(t *testing.T) {
	s := NewSixT()
	rng := stats.NewRand(99)
	prev := math.Inf(1)
	for _, vdd := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
		p := s.EstimatePcellIS(rng, vdd, 8000)
		if p >= prev {
			t.Fatalf("IS estimate not decreasing at V=%.2f: %g >= %g", vdd, p, prev)
		}
		prev = p
	}
}

func TestSixTFailsDeterministic(t *testing.T) {
	s := NewSixT()
	// Zero deviation never fails at positive margin.
	if s.Fails([6]float64{}, 0.8) {
		t.Error("nominal cell fails at 0.8V")
	}
	// A huge deviation along the read direction always fails.
	var x [6]float64
	for j := range x {
		x[j] = 20 * s.Dir[0][j]
	}
	if !s.Fails(x, 1.0) {
		t.Error("extreme deviation does not fail")
	}
}

func TestChi6Survival(t *testing.T) {
	// S(0) = 1; S decreasing; spot value: for chi^2_6, Pr(X > 12.592) = 0.05
	// => Pr(R > sqrt(12.592)) = 0.05.
	if chi6Survival(0) != 1 {
		t.Error("S(0) != 1")
	}
	if got := chi6Survival(math.Sqrt(12.591587243743977)); math.Abs(got-0.05) > 1e-4 {
		t.Errorf("chi6 5%% quantile: got %g", got)
	}
	if chi6Survival(1) <= chi6Survival(2) {
		t.Error("survival not decreasing")
	}
}
