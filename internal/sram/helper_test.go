package sram

import "faultmem/internal/fault"

func faultAt(row, col int) fault.Map {
	return fault.Map{{Row: row, Col: col, Kind: fault.Flip}}
}
