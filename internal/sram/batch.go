package sram

import (
	"fmt"

	"faultmem/internal/bits"
)

// WriteBatch stores vals[i] into row r+i for every element. It is
// semantically identical to calling Write per row — the same stuck-at
// store effect, coupling behaviour, and access accounting — but applies
// the per-row fault masks in one tight loop over the row range. Arrays
// with coupling faults fall back to the scalar path, whose
// transition-ordering semantics a vectorized store cannot reproduce.
func (a *Array) WriteBatch(r int, vals []uint64) {
	if r < 0 || len(vals) > a.rows-r {
		panic(fmt.Sprintf("sram: write batch [%d,%d) out of %d", r, r+len(vals), a.rows))
	}
	if len(a.couplings) != 0 {
		for i, v := range vals {
			a.Write(r+i, v)
		}
		return
	}
	a.writes += uint64(len(vals))
	m := bits.Mask(a.width)
	data := a.data[r : r+len(vals)]
	sa0 := a.sa0[r : r+len(vals)]
	sa1 := a.sa1[r : r+len(vals)]
	for i, v := range vals {
		data[i] = (v & m &^ sa0[i]) | sa1[i]
	}
}

// ReadBatch reads rows r+i into out[i] for every element, semantically
// identical to calling Read per row in ascending order: the same flip
// masks and access accounting. Arrays with transient soft errors enabled
// fall back to the scalar path so the per-read RNG draw order — and thus
// every downstream sample — is preserved exactly.
func (a *Array) ReadBatch(r int, out []uint64) {
	if r < 0 || len(out) > a.rows-r {
		panic(fmt.Sprintf("sram: read batch [%d,%d) out of %d", r, r+len(out), a.rows))
	}
	if a.transientRate > 0 {
		for i := range out {
			out[i] = a.Read(r + i)
		}
		return
	}
	a.reads += uint64(len(out))
	m := bits.Mask(a.width)
	data := a.data[r : r+len(out)]
	flip := a.flip[r : r+len(out)]
	for i := range out {
		out[i] = (data[i] ^ flip[i]) & m
	}
}
