package sram

import (
	"math"
	"testing"

	"faultmem/internal/stats"
)

func TestTransientDisabledByDefault(t *testing.T) {
	a := NewArray(4, 32)
	a.Write(0, 0xDEADBEEF)
	for i := 0; i < 100; i++ {
		if a.Read(0) != 0xDEADBEEF {
			t.Fatal("transient flips with rate 0")
		}
	}
}

func TestTransientRateStatistics(t *testing.T) {
	a := NewArray(1, 32)
	a.SetTransient(0.25, stats.NewRand(3))
	a.Write(0, 0)
	flips := 0
	const reads = 2000
	for i := 0; i < reads; i++ {
		v := a.Read(0)
		for ; v != 0; v &= v - 1 {
			flips++
		}
	}
	got := float64(flips) / float64(reads*32)
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("observed flip rate %.4f, want ~0.25", got)
	}
}

func TestTransientDoesNotCorruptStorage(t *testing.T) {
	// Soft errors are read disturbances in this model: the stored value
	// must stay intact underneath.
	a := NewArray(1, 32)
	a.SetTransient(0.5, stats.NewRand(4))
	a.Write(0, 0xA5A5A5A5)
	for i := 0; i < 50; i++ {
		_ = a.Read(0)
	}
	if a.Peek(0) != 0xA5A5A5A5 {
		t.Error("transient reads corrupted storage")
	}
	// Disabling restores clean reads.
	a.SetTransient(0, nil)
	if a.Read(0) != 0xA5A5A5A5 {
		t.Error("disable did not restore clean reads")
	}
}

func TestTransientValidation(t *testing.T) {
	a := NewArray(1, 8)
	for _, bad := range []float64{-0.1, 1.0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %g accepted", bad)
				}
			}()
			a.SetTransient(bad, stats.NewRand(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil RNG accepted with positive rate")
			}
		}()
		a.SetTransient(0.1, nil)
	}()
}

func TestTransientComposesWithPersistentFaults(t *testing.T) {
	// A persistent flip fault and transients combine by XOR: over many
	// reads of zero data, the persistently faulty bit must read 1 far
	// more often than any clean bit.
	a := NewArray(1, 32)
	if err := a.SetFaults(faultAt(0, 7)); err != nil {
		t.Fatal(err)
	}
	a.SetTransient(0.05, stats.NewRand(9))
	a.Write(0, 0)
	countFaulty, countClean := 0, 0
	const reads = 1000
	for i := 0; i < reads; i++ {
		v := a.Read(0)
		if v&(1<<7) != 0 {
			countFaulty++
		}
		if v&(1<<8) != 0 {
			countClean++
		}
	}
	if countFaulty < reads*8/10 {
		t.Errorf("persistent bit read 1 only %d/%d times", countFaulty, reads)
	}
	if countClean > reads/5 {
		t.Errorf("clean bit read 1 %d/%d times at rate 0.05", countClean, reads)
	}
}
