package dataset

import (
	"math"
	"testing"

	"faultmem/internal/mat"
)

func TestWineShapeAndRanges(t *testing.T) {
	d := Wine(1)
	if d.Samples() != 1599 || d.Features() != 11 {
		t.Fatalf("wine is %dx%d, want 1599x11", d.Samples(), d.Features())
	}
	if d.Task != Regression {
		t.Error("wine should be regression")
	}
	for i := 0; i < d.Samples(); i++ {
		q := d.Y[i]
		if q < 3 || q > 8 || q != math.Trunc(q) {
			t.Fatalf("sample %d quality %g outside integer [3,8]", i, q)
		}
	}
	// Alcohol column (10) must stay within physical limits.
	for _, v := range d.X.Col(10) {
		if v < 8 || v > 15 {
			t.Fatalf("alcohol %g out of range", v)
		}
	}
}

func TestWineQualityCorrelatesWithAlcohol(t *testing.T) {
	// The generator builds in a positive alcohol-quality relation (as in
	// the real dataset); a destroyed relation would invalidate Fig. 7a.
	d := Wine(2)
	alcohol := d.X.Col(10)
	corr := pearson(alcohol, d.Y)
	if corr < 0.2 {
		t.Errorf("alcohol-quality correlation %.3f, want clearly positive", corr)
	}
	// And volatile acidity (col 1) negative.
	if c := pearson(d.X.Col(1), d.Y); c > -0.1 {
		t.Errorf("volatile-quality correlation %.3f, want negative", c)
	}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	return cov / math.Sqrt(va*vb)
}

func TestMadelonShape(t *testing.T) {
	p := DefaultMadelon()
	d := Madelon(3, p)
	if d.Samples() != 2000 || d.Features() != 100 {
		t.Fatalf("madelon is %dx%d, want 2000x100", d.Samples(), d.Features())
	}
	if d.Task != Classification {
		t.Error("madelon should be classification")
	}
	pos, neg := 0, 0
	for _, y := range d.Y {
		switch y {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatalf("label %g not in {-1,+1}", y)
		}
	}
	// Balanced classes within sampling noise.
	if math.Abs(float64(pos-neg)) > 0.15*float64(pos+neg) {
		t.Errorf("class balance %d/%d", pos, neg)
	}
}

func TestMadelonPaperGeometry(t *testing.T) {
	d := Madelon(3, PaperMadelon())
	if d.Features() != 500 {
		t.Fatalf("paper madelon has %d features, want 500", d.Features())
	}
}

func TestMadelonInformativeVarianceDominatesProbes(t *testing.T) {
	// The informative/redundant block carries structured variance; the
	// probes are unit noise. Column variances must reflect that, or PCA's
	// explained variance (Fig. 7b) has no signal to lose.
	d := Madelon(5, DefaultMadelon())
	sd := mat.ColStds(d.X)
	for j := 0; j < 5; j++ {
		if sd[j] < 1.2 {
			t.Errorf("informative col %d std %.2f, want > 1.2", j, sd[j])
		}
	}
	for j := 20; j < 100; j++ {
		if sd[j] > 1.3 {
			t.Errorf("probe col %d std %.2f, want ~1", j, sd[j])
		}
	}
}

func TestHARShapeAndLabels(t *testing.T) {
	d := HAR(7, DefaultHAR())
	if d.Samples() != 1500 || d.Features() != harFeatures {
		t.Fatalf("har is %dx%d, want 1500x%d", d.Samples(), d.Features(), harFeatures)
	}
	counts := map[float64]int{}
	for _, y := range d.Y {
		counts[y]++
	}
	if len(counts) != numActivities {
		t.Fatalf("%d classes, want %d", len(counts), numActivities)
	}
	for label, c := range counts {
		if c != 300 {
			t.Errorf("class %g has %d windows, want 300", label, c)
		}
	}
}

func TestHARClassesSeparable(t *testing.T) {
	// Standing and stairs-down must differ strongly in dynamic intensity
	// (std features) or KNN cannot reach its clean score.
	d := HAR(7, DefaultHAR())
	meanStd := func(label float64) float64 {
		s, n := 0.0, 0
		for i := 0; i < d.Samples(); i++ {
			if d.Y[i] == label {
				s += d.X.At(i, 4) // std of y-axis
				n++
			}
		}
		return s / float64(n)
	}
	still := meanStd(float64(ActStanding))
	stairs := meanStd(float64(ActStairsDown))
	if stairs < 3*still {
		t.Errorf("stairs std %.2f not well above standing %.2f", stairs, still)
	}
}

func TestActivityNames(t *testing.T) {
	if ActivityName(ActWalking) != "walking" || ActivityName(99) != "unknown" {
		t.Error("activity names wrong")
	}
}

func TestSplitProperties(t *testing.T) {
	d := Wine(1)
	train, test := d.Split(0.8, 42)
	if train.Samples()+test.Samples() != d.Samples() {
		t.Fatal("split loses samples")
	}
	want := int(0.8 * float64(d.Samples()))
	if train.Samples() != want {
		t.Errorf("train size %d, want %d", train.Samples(), want)
	}
	if train.Features() != d.Features() || test.Features() != d.Features() {
		t.Error("split changed feature count")
	}
	// Determinism.
	tr2, _ := d.Split(0.8, 42)
	for i := 0; i < 10; i++ {
		if tr2.Y[i] != train.Y[i] {
			t.Fatal("split not deterministic")
		}
	}
	// Different seed shuffles differently.
	tr3, _ := d.Split(0.8, 43)
	same := 0
	for i := 0; i < 50; i++ {
		if tr3.Y[i] == train.Y[i] {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical splits")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := Wine(9), Wine(9)
	for i := 0; i < 20; i++ {
		if a.Y[i] != b.Y[i] || a.X.At(i, 0) != b.X.At(i, 0) {
			t.Fatal("Wine not deterministic")
		}
	}
	ha, hb := HAR(9, DefaultHAR()), HAR(9, DefaultHAR())
	for i := 0; i < 20; i++ {
		if ha.X.At(i, 3) != hb.X.At(i, 3) {
			t.Fatal("HAR not deterministic")
		}
	}
	ma, mb := Madelon(9, DefaultMadelon()), Madelon(9, DefaultMadelon())
	for i := 0; i < 20; i++ {
		if ma.Y[i] != mb.Y[i] {
			t.Fatal("Madelon not deterministic")
		}
	}
}

func TestWithData(t *testing.T) {
	d := Wine(1)
	x2 := mat.NewDense(4, 11)
	y2 := []float64{5, 6, 5, 7}
	nd := d.WithData(x2, y2)
	if nd.Samples() != 4 || nd.Task != Regression || nd.Name != d.Name {
		t.Error("WithData metadata wrong")
	}
}
