package dataset

import (
	"math"

	"faultmem/internal/mat"
	"faultmem/internal/stats"
)

// Activity labels of the HAR-like generator, mirroring the wearable
// accelerometer dataset of Casale et al. [20].
const (
	ActWalking = iota
	ActStanding
	ActSitting
	ActStairsUp
	ActStairsDown
	numActivities
)

// ActivityName returns the human-readable class name.
func ActivityName(label int) string {
	switch label {
	case ActWalking:
		return "walking"
	case ActStanding:
		return "standing"
	case ActSitting:
		return "sitting"
	case ActStairsUp:
		return "stairs-up"
	case ActStairsDown:
		return "stairs-down"
	default:
		return "unknown"
	}
}

// harClass describes the synthetic tri-axial accelerometer signature of
// one activity: gravity orientation, periodic gait component, and noise.
type harClass struct {
	gravity [3]float64 // static orientation (m/s^2 per axis)
	freq    float64    // gait frequency (Hz)
	amp     [3]float64 // gait amplitude per axis
	noise   float64    // sensor + body noise sigma
}

func harClasses() [numActivities]harClass {
	// Signatures deliberately overlap (walking vs stairs, standing vs
	// sitting) so the clean KNN score sits near 0.95 rather than 1.0 —
	// the regime of Fig. 7c, whose x-axis spans 0.88..1.0.
	return [numActivities]harClass{
		ActWalking:    {gravity: [3]float64{0.8, 9.4, 2.2}, freq: 1.8, amp: [3]float64{3.0, 3.8, 2.0}, noise: 1.1},
		ActStanding:   {gravity: [3]float64{0.4, 9.8, 0.8}, freq: 0.3, amp: [3]float64{0.2, 0.15, 0.2}, noise: 0.4},
		ActSitting:    {gravity: [3]float64{2.4, 9.2, 2.3}, freq: 0.2, amp: [3]float64{0.15, 0.1, 0.15}, noise: 0.38},
		ActStairsUp:   {gravity: [3]float64{1.3, 9.1, 2.8}, freq: 1.45, amp: [3]float64{3.2, 4.3, 2.4}, noise: 1.5},
		ActStairsDown: {gravity: [3]float64{1.1, 9.2, 2.5}, freq: 1.7, amp: [3]float64{4.0, 5.1, 2.9}, noise: 1.7},
	}
}

// harFeatures is the number of features extracted per window: per-axis
// mean, standard deviation, and zero-crossing rate of the dynamic
// component, root-mean-square magnitude, plus the three pairwise axis
// correlations (3*3 + 3 + 3 = 15), matching the feature count class of
// the original dataset.
const harFeatures = 15

// HARParams sizes the activity-recognition generator.
type HARParams struct {
	WindowsPerClass int
	WindowLen       int     // samples per window
	SampleRate      float64 // Hz
}

// DefaultHAR returns 300 windows per class of 128 samples at 32 Hz
// (1500 windows x 15 features).
func DefaultHAR() HARParams {
	return HARParams{WindowsPerClass: 300, WindowLen: 128, SampleRate: 32}
}

// HAR generates the activity-recognition classification set: synthetic
// tri-axial accelerometer windows per activity, reduced to 15 statistical
// features per window. KNN on the clean data scores well above 0.9, like
// the personalization results of [20]; Fig. 7c measures how the score
// degrades when the training features round-trip a faulty memory.
func HAR(seed int64, p HARParams) *Dataset {
	if p.WindowsPerClass < 1 || p.WindowLen < 8 || p.SampleRate <= 0 {
		panic("dataset: bad HAR params")
	}
	rng := stats.NewRand(seed)
	classes := harClasses()
	n := p.WindowsPerClass * numActivities
	d := &Dataset{
		Name: "har",
		Task: Classification,
		X:    mat.NewDense(n, harFeatures),
		Y:    make([]float64, n),
	}
	row := 0
	signal := make([][3]float64, p.WindowLen)
	for label := 0; label < numActivities; label++ {
		c := classes[label]
		for w := 0; w < p.WindowsPerClass; w++ {
			phase := rng.Float64() * 2 * math.Pi
			fjit := c.freq * (1 + 0.15*rng.NormFloat64())
			ampJit := 1 + 0.25*rng.NormFloat64()
			// Per-window orientation wobble: the device sits differently
			// on the body each time, overlapping the static classes.
			var wobble [3]float64
			for ax := range wobble {
				wobble[ax] = rng.NormFloat64() * 0.35
			}
			for t := 0; t < p.WindowLen; t++ {
				tt := float64(t) / p.SampleRate
				base := 2 * math.Pi * fjit * tt
				for ax := 0; ax < 3; ax++ {
					gait := ampJit * c.amp[ax] * math.Sin(base+phase+float64(ax)*2.1)
					harmonic := 0.3 * ampJit * c.amp[ax] * math.Sin(2*base+phase)
					signal[t][ax] = c.gravity[ax] + wobble[ax] + gait + harmonic + rng.NormFloat64()*c.noise
				}
			}
			feats := windowFeatures(signal)
			for j, v := range feats {
				d.X.Set(row, j, v)
			}
			d.Y[row] = float64(label)
			row++
		}
	}
	return d
}

// windowFeatures reduces one accelerometer window to the 15-feature
// vector described at harFeatures.
func windowFeatures(sig [][3]float64) []float64 {
	n := float64(len(sig))
	var mean, sq [3]float64
	for _, s := range sig {
		for ax := 0; ax < 3; ax++ {
			mean[ax] += s[ax]
			sq[ax] += s[ax] * s[ax]
		}
	}
	for ax := 0; ax < 3; ax++ {
		mean[ax] /= n
	}
	var std [3]float64
	for ax := 0; ax < 3; ax++ {
		v := sq[ax]/n - mean[ax]*mean[ax]
		if v < 0 {
			v = 0
		}
		std[ax] = math.Sqrt(v)
	}
	// Zero-crossing rate of the dynamic (mean-removed) component.
	var zcr [3]float64
	for t := 1; t < len(sig); t++ {
		for ax := 0; ax < 3; ax++ {
			a := sig[t-1][ax] - mean[ax]
			b := sig[t][ax] - mean[ax]
			if (a < 0) != (b < 0) {
				zcr[ax]++
			}
		}
	}
	for ax := 0; ax < 3; ax++ {
		zcr[ax] /= n - 1
	}
	// RMS magnitude of the total acceleration vector.
	rms := 0.0
	for _, s := range sig {
		rms += s[0]*s[0] + s[1]*s[1] + s[2]*s[2]
	}
	rms = math.Sqrt(rms / n)
	// Pairwise correlations.
	corr := func(a, b int) float64 {
		if std[a] == 0 || std[b] == 0 {
			return 0
		}
		c := 0.0
		for _, s := range sig {
			c += (s[a] - mean[a]) * (s[b] - mean[b])
		}
		return c / (n * std[a] * std[b])
	}
	return []float64{
		mean[0], mean[1], mean[2],
		std[0], std[1], std[2],
		zcr[0], zcr[1], zcr[2],
		rms, rms * rms / 100, // magnitude and scaled energy
		math.Max(std[0], math.Max(std[1], std[2])),
		corr(0, 1), corr(0, 2), corr(1, 2),
	}
}
