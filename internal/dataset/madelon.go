package dataset

import (
	"fmt"

	"faultmem/internal/mat"
	"faultmem/internal/stats"
)

// MadelonParams sizes the Madelon-like generator. The NIPS 2003 original
// [19] has 5 informative dimensions forming 32 Gaussian clusters on the
// vertices of a 5-dimensional hypercube, 15 redundant features (random
// linear combinations of the informative ones), and 480 useless "probe"
// features, for 500 features over 2000 training samples.
type MadelonParams struct {
	Samples     int
	Informative int
	Redundant   int
	Probes      int
	ClusterStd  float64
}

// DefaultMadelon returns the laptop-scale default: the full informative
// and redundant structure with 80 probes (100 features total). Pass
// PaperMadelon for the original 500-feature geometry.
func DefaultMadelon() MadelonParams {
	return MadelonParams{Samples: 2000, Informative: 5, Redundant: 15, Probes: 80, ClusterStd: 1.0}
}

// PaperMadelon returns the original NIPS 2003 dimensions (500 features).
func PaperMadelon() MadelonParams {
	p := DefaultMadelon()
	p.Probes = 480
	return p
}

// Madelon generates the feature-selection dataset: binary labels (+1/-1)
// assigned to hypercube clusters in the informative subspace (an
// XOR-like, non-linearly-separable problem), plus redundant and probe
// features. PCA's explained variance on this set concentrates in the
// informative+redundant subspace, which is what Fig. 7b measures under
// memory faults.
func Madelon(seed int64, p MadelonParams) *Dataset {
	if p.Informative < 1 || p.Samples < 4 || p.Redundant < 0 || p.Probes < 0 {
		panic(fmt.Sprintf("dataset: bad Madelon params %+v", p))
	}
	rng := stats.NewRand(seed)
	dims := p.Informative + p.Redundant + p.Probes
	d := &Dataset{
		Name: "madelon",
		Task: Classification,
		X:    mat.NewDense(p.Samples, dims),
		Y:    make([]float64, p.Samples),
	}

	// Hypercube cluster centers and their class assignment (balanced).
	nClusters := 1 << uint(p.Informative)
	labels := make([]float64, nClusters)
	for i := range labels {
		if i%2 == 0 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
	}
	rng.Shuffle(nClusters, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })

	// Random mixing matrix for the redundant features.
	mix := mat.NewDense(maxInt(p.Redundant, 1), p.Informative)
	for i := 0; i < p.Redundant; i++ {
		for j := 0; j < p.Informative; j++ {
			mix.Set(i, j, rng.NormFloat64())
		}
	}

	const centerScale = 2.0
	for s := 0; s < p.Samples; s++ {
		cl := rng.Intn(nClusters)
		d.Y[s] = labels[cl]
		inf := make([]float64, p.Informative)
		for j := 0; j < p.Informative; j++ {
			sign := -1.0
			if cl&(1<<uint(j)) != 0 {
				sign = 1.0
			}
			inf[j] = sign*centerScale + rng.NormFloat64()*p.ClusterStd
			d.X.Set(s, j, inf[j])
		}
		for r := 0; r < p.Redundant; r++ {
			v := 0.0
			for j := 0; j < p.Informative; j++ {
				v += mix.At(r, j) * inf[j]
			}
			d.X.Set(s, p.Informative+r, v+rng.NormFloat64()*0.1)
		}
		for q := 0; q < p.Probes; q++ {
			d.X.Set(s, p.Informative+p.Redundant+q, rng.NormFloat64())
		}
	}
	return d
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
