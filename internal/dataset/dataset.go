// Package dataset provides seeded synthetic stand-ins for the three UCI
// datasets of Table 1 (see the substitution table in DESIGN.md): a
// wine-quality-like regression set, a Madelon-like feature-selection set,
// and an accelerometer activity-recognition set. Each generator matches
// the dimensionality, size class, and statistical character of its
// original, so the protection-scheme comparisons of Fig. 7 exercise the
// same code paths and exhibit the same orderings.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"faultmem/internal/mat"
	"faultmem/internal/stats"
)

// Task labels what the target column means.
type Task uint8

const (
	// Regression targets are real-valued.
	Regression Task = iota
	// Classification targets are integer class labels stored as float64.
	Classification
)

// Dataset is a feature matrix with a target vector.
type Dataset struct {
	Name string
	Task Task
	// X is the n x d feature matrix.
	X *mat.Dense
	// Y holds n targets (quality score, class label, ...).
	Y []float64
}

// Samples returns the number of rows.
func (d *Dataset) Samples() int {
	n, _ := d.X.Dims()
	return n
}

// Features returns the number of feature columns.
func (d *Dataset) Features() int {
	_, f := d.X.Dims()
	return f
}

// Split partitions the dataset into train and test subsets by a shuffled
// index split (the paper uses a 0.8:0.2 ratio, §5.2).
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("dataset: train fraction %g outside (0,1)", trainFrac))
	}
	n := d.Samples()
	idx := stats.NewRand(seed).Perm(n)
	nTrain := int(float64(n) * trainFrac)
	if nTrain < 1 || nTrain >= n {
		panic("dataset: degenerate split")
	}
	return d.subset(idx[:nTrain], "/train"), d.subset(idx[nTrain:], "/test")
}

func (d *Dataset) subset(idx []int, suffix string) *Dataset {
	sub := &Dataset{
		Name: d.Name + suffix,
		Task: d.Task,
		X:    mat.NewDense(len(idx), d.Features()),
		Y:    make([]float64, len(idx)),
	}
	for i, src := range idx {
		row := d.X.RawRow(src)
		for j, v := range row {
			sub.X.Set(i, j, v)
		}
		sub.Y[i] = d.Y[src]
	}
	return sub
}

// WithData returns a copy of the dataset metadata around replacement
// feature/target data (used after a faulty-memory round trip).
func (d *Dataset) WithData(x *mat.Dense, y []float64) *Dataset {
	xr, _ := x.Dims()
	if xr != len(y) {
		panic("dataset: X/Y length mismatch")
	}
	return &Dataset{Name: d.Name, Task: d.Task, X: x, Y: y}
}

// clamp limits v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Wine generates the wine-quality-like regression set: 1599 samples of 11
// physicochemical features with an integer taste-preference score in
// [3, 8], mirroring the red-wine dataset of Cortez et al. [18]. The score
// depends linearly on a few features (alcohol up, volatile acidity down,
// sulphates up) plus taster noise, giving a clean-data linear-model R²
// around 0.3-0.4 like the original.
func Wine(seed int64) *Dataset {
	const n = 1599
	rng := stats.NewRand(seed)
	d := &Dataset{Name: "wine", Task: Regression, X: mat.NewDense(n, 11), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		alcohol := clamp(rng.NormFloat64()*1.07+10.42, 8.4, 14.9)
		volatile := clamp(rng.NormFloat64()*0.18+0.53, 0.12, 1.58)
		sulphates := clamp(rng.NormFloat64()*0.17+0.66, 0.33, 2.0)
		citric := clamp(rng.NormFloat64()*0.19+0.27, 0, 1)
		fixedAcid := clamp(rng.NormFloat64()*1.74+8.32, 4.6, 15.9)
		residSugar := clamp(expish(rng, 2.54, 1.4), 0.9, 15.5)
		chlorides := clamp(expish(rng, 0.087, 0.047), 0.012, 0.61)
		freeSO2 := clamp(expish(rng, 15.9, 10.5), 1, 72)
		totalSO2 := clamp(freeSO2*2.1+expish(rng, 13, 15), 6, 289)
		density := clamp(0.9967+0.0004*(fixedAcid-8.32)/1.74-0.0005*(alcohol-10.42)/1.07+rng.NormFloat64()*0.0012, 0.990, 1.004)
		ph := clamp(3.31-0.06*(fixedAcid-8.32)/1.74+rng.NormFloat64()*0.13, 2.74, 4.01)

		d.X.Set(i, 0, fixedAcid)
		d.X.Set(i, 1, volatile)
		d.X.Set(i, 2, citric)
		d.X.Set(i, 3, residSugar)
		d.X.Set(i, 4, chlorides)
		d.X.Set(i, 5, freeSO2)
		d.X.Set(i, 6, totalSO2)
		d.X.Set(i, 7, density)
		d.X.Set(i, 8, ph)
		d.X.Set(i, 9, sulphates)
		d.X.Set(i, 10, alcohol)

		latent := 0.34*(alcohol-10.42)/1.07 -
			0.30*(volatile-0.53)/0.18 +
			0.18*(sulphates-0.66)/0.17 -
			0.10*(totalSO2-46)/33 +
			0.06*(citric-0.27)/0.19 +
			0.62*rng.NormFloat64()
		d.Y[i] = clamp(roundHalf(5.64+0.85*latent), 3, 8)
	}
	return d
}

// expish draws a positively skewed value with the given mean and spread
// (lognormal-flavoured: mean + spread*(exp(N(0,0.6^2)) - 1)).
func expish(rng *rand.Rand, mean, spread float64) float64 {
	return mean + spread*(math.Exp(rng.NormFloat64()*0.6)-1)
}

func roundHalf(v float64) float64 {
	return math.Round(v)
}
