package stats

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
)

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// fillAccumulator adds a deterministic stream of weighted observations,
// including a zero and some extreme magnitudes.
func fillAccumulator(a Accumulator, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	a.Add(0, 1e-9)
	for i := 0; i < n; i++ {
		a.Add(math.Exp(20*rng.NormFloat64()), rng.Float64()*1e-3)
	}
}

// TestWeightedCDFGobRoundTrip: a decoded CDF must answer every query with
// the same bits as the original, and keep accepting Adds and Merges.
func TestWeightedCDFGobRoundTrip(t *testing.T) {
	orig := &WeightedCDF{}
	fillAccumulator(orig, 7, 500)
	var back WeightedCDF
	gobRoundTrip(t, orig, &back)
	if back.Len() != orig.Len() || back.TotalWeight() != orig.TotalWeight() {
		t.Fatalf("len/total diverged: %d/%g vs %d/%g", back.Len(), back.TotalWeight(), orig.Len(), orig.TotalWeight())
	}
	for _, q := range []float64{0.001, 0.25, 0.5, 0.9, 0.999, 1} {
		if got, want := back.Quantile(q), orig.Quantile(q); got != want {
			t.Fatalf("Quantile(%g) = %v, want %v", q, got, want)
		}
	}
	for _, x := range []float64{0, 1, 1e6} {
		if got, want := back.P(x), orig.P(x); got != want {
			t.Fatalf("P(%g) = %v, want %v", x, got, want)
		}
	}
	back.Add(2, 0.5) // still usable after decode
	if back.Len() != orig.Len()+1 {
		t.Fatal("decoded CDF rejected a new observation")
	}
}

// TestLogHistogramGobRoundTrip mirrors the CDF round trip for the
// histogram accumulator.
func TestLogHistogramGobRoundTrip(t *testing.T) {
	orig := NewLogHistogram(256, -8, 20)
	fillAccumulator(orig, 11, 500)
	var back LogHistogram
	gobRoundTrip(t, orig, &back)
	if back.Count() != orig.Count() || back.TotalWeight() != orig.TotalWeight() ||
		back.Bins() != orig.Bins() || back.Min() != orig.Min() || back.Max() != orig.Max() {
		t.Fatal("histogram summary state diverged after round trip")
	}
	for _, q := range []float64{0.001, 0.25, 0.5, 0.9, 0.999, 1} {
		if got, want := back.Quantile(q), orig.Quantile(q); got != want {
			t.Fatalf("Quantile(%g) = %v, want %v", q, got, want)
		}
	}
	back.Add(1, 1) // still usable after decode
	back.Merge(orig)
}

// TestMergeOfDecodedShardsIsBitIdentical locks in the property the sweep
// service is built on: merging shard accumulators that crossed a gob
// boundary yields exactly the merge of the originals, for both kinds —
// transported as []Accumulator, the engine's shard shape.
func TestMergeOfDecodedShardsIsBitIdentical(t *testing.T) {
	for _, kind := range []string{"exact", "hist"} {
		newAcc := func() Accumulator {
			if kind == "hist" {
				return NewLogHistogram(0, -8, 20)
			}
			return &WeightedCDF{}
		}
		shards := make([]Accumulator, 5)
		for i := range shards {
			shards[i] = newAcc()
			fillAccumulator(shards[i], int64(100+i), 200)
		}
		var back []Accumulator
		gobRoundTrip(t, shards, &back)

		direct, wired := newAcc(), newAcc()
		for i := range shards {
			direct.Merge(shards[i])
			wired.Merge(back[i])
		}
		for _, q := range []float64{0.01, 0.5, 0.99, 1} {
			if got, want := wired.Quantile(q), direct.Quantile(q); got != want {
				t.Fatalf("%s: Quantile(%g) = %v, want %v", kind, q, got, want)
			}
		}
		if wired.TotalWeight() != direct.TotalWeight() {
			t.Fatalf("%s: total weight diverged", kind)
		}
	}
}

// TestGobDecodeRejectsCorruptState: hand-rolled inconsistent wire structs
// must fail decode instead of building a lying accumulator.
func TestGobDecodeRejectsCorruptState(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wcdfWire{Xs: []float64{1, 2}, Ws: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	var c WeightedCDF
	if err := c.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("mismatched xs/ws lengths decoded without error")
	}

	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(histWire{NBins: 4, LogMin: 0, LogMax: 1, W: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	var h LogHistogram
	if err := h.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("histogram with wrong bin-weight count decoded without error")
	}
}
