package stats

// Accumulator is the streaming-distribution abstraction the Monte-Carlo
// stack is built on: weighted observations go in through Add, per-shard
// accumulators combine through Merge (in shard order, so the combined
// result is independent of how many workers produced the shards), and
// the distribution is read back through P / Quantile / Points.
//
// Two implementations exist:
//
//   - WeightedCDF retains every observation exactly. It is the test
//     oracle and the right choice for small sample budgets.
//   - LogHistogram bins observations into a fixed log10-domain grid with
//     underflow/overflow bins and running moments: O(bins) memory
//     regardless of the sample count, so paper-scale budgets (Trun=1e7+)
//     run in a flat memory envelope. Its shards are small fixed-size
//     value messages — the shape a multi-host sweep service can stream
//     over RPC.
//
// Merge panics when the two accumulators are of different kinds (or, for
// histograms, different bin geometries): mixing them silently would
// corrupt the distribution.
type Accumulator interface {
	// Add records an observation x with non-negative finite weight w
	// (zero-weight observations are dropped).
	Add(x, w float64)
	// Merge folds another accumulator of the same kind into this one.
	// Folding shard accumulators in shard order yields results that are
	// bit-identical for any worker count.
	Merge(o Accumulator)
	// TotalWeight returns the sum of all observation weights (0 when
	// empty).
	TotalWeight() float64
	// P returns Pr(X <= x); an empty accumulator returns 0.
	P(x float64) float64
	// Quantile returns an x with Pr(X <= x) >= q, up to the
	// implementation's resolution: WeightedCDF returns the smallest such
	// observed value exactly, LogHistogram a point within one bin width
	// of it (not necessarily an observed value, and P(x) may fall short
	// of q by up to the bin's interpolation error). It panics on an
	// empty accumulator or q outside (0, 1].
	Quantile(q float64) float64
	// Points returns the distribution evaluated over its support as
	// parallel slices (x ascending, cumulative probability ending at 1).
	Points() (xs, ps []float64)
}

var (
	_ Accumulator = (*WeightedCDF)(nil)
	_ Accumulator = (*LogHistogram)(nil)
)
