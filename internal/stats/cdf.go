package stats

import (
	"fmt"
	"math"
	"sort"
)

// WeightedCDF is an empirical cumulative distribution built from weighted
// observations. The yield model uses it to combine Monte-Carlo samples
// whose weights come from the fault-count prior Pr(N = n) (Eq. 5).
//
// The zero value is empty; Add observations and then query. Queries sort
// lazily and are safe to interleave with further Adds.
type WeightedCDF struct {
	xs    []float64
	ws    []float64
	total float64
	// cum caches prefix sums of ws in sorted order (cum[i] = ws[0]+...+
	// ws[i]), rebuilt by sort(), so P and Quantile are a binary search
	// instead of an O(n) cumulative walk per query.
	cum    []float64
	sorted bool
}

// Add records an observation x with weight w (w must be non-negative and
// finite; zero-weight observations are dropped).
func (c *WeightedCDF) Add(x, w float64) {
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic("stats: invalid CDF weight")
	}
	if math.IsNaN(x) {
		panic("stats: NaN CDF observation")
	}
	if w == 0 {
		return
	}
	c.xs = append(c.xs, x)
	c.ws = append(c.ws, w)
	c.total += w
	c.sorted = false
}

// Reserve pre-allocates capacity for n additional observations, so that a
// hot loop of Adds performs no further allocations (the Monte-Carlo
// engine's shard accumulators rely on this for the 0 allocs/op per-sample
// path).
func (c *WeightedCDF) Reserve(n int) {
	if n <= 0 {
		return
	}
	if free := cap(c.xs) - len(c.xs); free < n {
		xs := make([]float64, len(c.xs), len(c.xs)+n)
		copy(xs, c.xs)
		c.xs = xs
		ws := make([]float64, len(c.ws), len(c.ws)+n)
		copy(ws, c.ws)
		c.ws = ws
	}
}

// Merge appends every observation of o (which must be a *WeightedCDF) to
// c in o's insertion order. The Monte-Carlo engine merges per-shard CDFs
// in shard order, which keeps the combined observation sequence — and
// therefore every query — independent of how many workers produced the
// shards.
func (c *WeightedCDF) Merge(o Accumulator) {
	if o == nil {
		return
	}
	oc, ok := o.(*WeightedCDF)
	if !ok {
		panic(fmt.Sprintf("stats: cannot merge %T into *WeightedCDF", o))
	}
	if oc == nil || len(oc.xs) == 0 {
		return
	}
	c.Reserve(len(oc.xs))
	c.xs = append(c.xs, oc.xs...)
	c.ws = append(c.ws, oc.ws...)
	c.total += oc.total
	c.sorted = false
}

// Len returns the number of retained observations.
func (c *WeightedCDF) Len() int { return len(c.xs) }

// TotalWeight returns the sum of all observation weights.
func (c *WeightedCDF) TotalWeight() float64 { return c.total }

func (c *WeightedCDF) sort() {
	if c.sorted {
		return
	}
	idx := make([]int, len(c.xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return c.xs[idx[i]] < c.xs[idx[j]] })
	xs := make([]float64, len(c.xs))
	ws := make([]float64, len(c.ws))
	for k, i := range idx {
		xs[k] = c.xs[i]
		ws[k] = c.ws[i]
	}
	c.xs, c.ws = xs, ws
	if cap(c.cum) < len(ws) {
		c.cum = make([]float64, len(ws))
	}
	c.cum = c.cum[:len(ws)]
	run := 0.0
	for i, w := range ws {
		run += w
		c.cum[i] = run
	}
	c.sorted = true
}

// P returns the empirical Pr(X <= x). An empty CDF returns 0.
func (c *WeightedCDF) P(x float64) float64 {
	if c.total == 0 {
		return 0
	}
	c.sort()
	// Find the first index with xs[i] > x; cum[i-1] is the mass at or
	// below x.
	i := sort.Search(len(c.xs), func(i int) bool { return c.xs[i] > x })
	if i == 0 {
		return 0
	}
	return c.cum[i-1] / c.total
}

// Quantile returns the smallest observed x with Pr(X <= x) >= q.
// It panics on an empty CDF or q outside (0, 1].
func (c *WeightedCDF) Quantile(q float64) float64 {
	if c.total == 0 {
		panic("stats: quantile of empty CDF")
	}
	if q <= 0 || q > 1 {
		panic("stats: quantile level out of (0,1]")
	}
	c.sort()
	// cum is non-decreasing: binary-search the first prefix sum reaching
	// the target (same tolerance the former linear walk used).
	target := q*c.total - 1e-12*c.total
	i := sort.Search(len(c.cum), func(i int) bool { return c.cum[i] >= target })
	if i == len(c.cum) {
		i = len(c.cum) - 1
	}
	return c.xs[i]
}

// Points returns the CDF evaluated at each distinct observation, as
// parallel slices (x ascending, cumulative probability). Useful for
// plotting/rendering the paper's CDF figures.
func (c *WeightedCDF) Points() (xs, ps []float64) {
	if c.total == 0 {
		return nil, nil
	}
	c.sort()
	for i := 0; i < len(c.xs); i++ {
		if i+1 < len(c.xs) && c.xs[i+1] == c.xs[i] {
			continue
		}
		xs = append(xs, c.xs[i])
		ps = append(ps, c.cum[i]/c.total)
	}
	return xs, ps
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes descriptive statistics of xs. It panics on an empty
// input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = 0.5 * (sorted[mid-1] + sorted[mid])
	}
	return s
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for n < 2).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}
