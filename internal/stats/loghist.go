package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultLogHistBins is the interior bin count callers get when they pass
// 0. At the yield model's 28-decade MSE domain it gives ~73 bins per
// decade (~3% relative resolution), far below the Monte-Carlo noise of
// any realistic budget.
const DefaultLogHistBins = 2048

// LogHistogram is a fixed-bin log10-domain histogram of weighted
// observations: the O(1)-memory Accumulator for paper-scale Monte-Carlo
// budgets. The domain [10^logMin, 10^logMax) is divided into bins equal
// bins in log space; observations below the domain (including x <= 0)
// land in an underflow bin, observations at or above 10^logMax in an
// overflow bin. Running total weight, count, weighted moments, and the
// exact observed min/max ride along, so queries can answer exactly at
// the support's edges.
//
// Two histograms of identical geometry Merge by bin-wise addition — a
// small fixed-size operation, which is what makes shard outputs cheap to
// combine (and, later, to stream between hosts). Merging in shard order
// keeps results bit-identical for any worker count, exactly like
// WeightedCDF.
type LogHistogram struct {
	logMin, logMax float64
	nbins          int
	scale          float64 // nbins / (logMax - logMin)
	// w holds nbins+2 weights: w[0] underflow, w[1..nbins] interior,
	// w[nbins+1] overflow.
	w []float64
	// cum lazily caches prefix sums of w for binary-searched queries.
	cum   []float64
	dirty bool

	total       float64
	count       int64
	sumX, sumXX float64
	min, max    float64
}

// NewLogHistogram returns an empty histogram with the given interior bin
// count over the log10 domain [logMin, logMax). bins <= 0 selects
// DefaultLogHistBins.
func NewLogHistogram(bins int, logMin, logMax float64) *LogHistogram {
	if bins <= 0 {
		bins = DefaultLogHistBins
	}
	if !(logMax > logMin) || math.IsNaN(logMin) || math.IsInf(logMin, 0) || math.IsInf(logMax, 0) {
		panic(fmt.Sprintf("stats: bad histogram domain [%g, %g)", logMin, logMax))
	}
	return &LogHistogram{
		logMin: logMin,
		logMax: logMax,
		nbins:  bins,
		scale:  float64(bins) / (logMax - logMin),
		w:      make([]float64, bins+2),
		dirty:  true,
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Bins returns the interior bin count.
func (h *LogHistogram) Bins() int { return h.nbins }

// BinWidth returns one bin's width in log10 decades — the resolution
// bound of every quantile the histogram reports.
func (h *LogHistogram) BinWidth() float64 { return 1 / h.scale }

// Count returns the number of (non-zero-weight) observations added.
func (h *LogHistogram) Count() int64 { return h.count }

// TotalWeight returns the sum of all observation weights.
func (h *LogHistogram) TotalWeight() float64 { return h.total }

// Mean returns the weighted mean observation (0 when empty).
func (h *LogHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sumX / h.total
}

// Min returns the smallest observation added; it panics when empty.
func (h *LogHistogram) Min() float64 {
	if h.total == 0 {
		panic("stats: Min of empty histogram")
	}
	return h.min
}

// Max returns the largest observation added; it panics when empty.
func (h *LogHistogram) Max() float64 {
	if h.total == 0 {
		panic("stats: Max of empty histogram")
	}
	return h.max
}

// bucket maps an observation to its bin index in w.
func (h *LogHistogram) bucket(x float64) int {
	if x <= 0 {
		return 0
	}
	lx := math.Log10(x)
	if lx < h.logMin {
		return 0
	}
	if lx >= h.logMax {
		return h.nbins + 1
	}
	b := int((lx-h.logMin)*h.scale) + 1
	if b > h.nbins { // guard float rounding at the top edge
		b = h.nbins
	}
	return b
}

// Add records an observation x with weight w. The weight rules match
// WeightedCDF: w must be non-negative and finite, zero-weight
// observations are dropped, NaN observations panic. Observations at or
// below zero land in the underflow bin (the MSE domain's exact-zero
// mass).
func (h *LogHistogram) Add(x, w float64) {
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic("stats: invalid histogram weight")
	}
	if math.IsNaN(x) {
		panic("stats: NaN histogram observation")
	}
	if w == 0 {
		return
	}
	h.w[h.bucket(x)] += w
	h.total += w
	h.count++
	h.sumX += w * x
	h.sumXX += w * x * x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
	h.dirty = true
}

// Merge folds o (which must be a *LogHistogram of identical geometry)
// into h by bin-wise addition.
func (h *LogHistogram) Merge(o Accumulator) {
	if o == nil {
		return
	}
	oh, ok := o.(*LogHistogram)
	if !ok {
		panic(fmt.Sprintf("stats: cannot merge %T into *LogHistogram", o))
	}
	if oh == nil || oh.count == 0 {
		return
	}
	if oh.nbins != h.nbins || oh.logMin != h.logMin || oh.logMax != h.logMax {
		panic(fmt.Sprintf("stats: histogram geometry mismatch: %d@[%g,%g) vs %d@[%g,%g)",
			h.nbins, h.logMin, h.logMax, oh.nbins, oh.logMin, oh.logMax))
	}
	for i, wi := range oh.w {
		h.w[i] += wi
	}
	h.total += oh.total
	h.count += oh.count
	h.sumX += oh.sumX
	h.sumXX += oh.sumXX
	if oh.min < h.min {
		h.min = oh.min
	}
	if oh.max > h.max {
		h.max = oh.max
	}
	h.dirty = true
}

// prefix rebuilds the cached prefix sums if any Add or Merge invalidated
// them.
func (h *LogHistogram) prefix() {
	if !h.dirty {
		return
	}
	if cap(h.cum) < len(h.w) {
		h.cum = make([]float64, len(h.w))
	}
	h.cum = h.cum[:len(h.w)]
	run := 0.0
	for i, wi := range h.w {
		run += wi
		h.cum[i] = run
	}
	h.dirty = false
}

// edge returns the lower log10 edge of interior bin b (1-based).
func (h *LogHistogram) edge(b int) float64 {
	return h.logMin + float64(b-1)/h.scale
}

// P returns Pr(X <= x), interpolating linearly in log space within the
// bin straddling x, so the reported CDF never deviates from the exact
// empirical CDF by more than that single bin's mass. Outside the
// observed support it answers exactly (0 below min, 1 at or above max).
func (h *LogHistogram) P(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	if x < h.min {
		return 0
	}
	if x >= h.max {
		return 1
	}
	h.prefix()
	b := h.bucket(x)
	cumBelow := 0.0
	if b > 0 {
		cumBelow = h.cum[b-1]
	}
	mass := h.w[b]
	p := 0.0
	if b == 0 || b == h.nbins+1 {
		// Underflow/overflow have no interior geometry: attribute the
		// bin's full mass at or below x.
		p = (cumBelow + mass) / h.total
	} else {
		frac := (math.Log10(x) - h.edge(b)) * h.scale
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		p = (cumBelow + frac*mass) / h.total
	}
	if p > 1 {
		p = 1
	}
	return p
}

// Quantile returns an x with Pr(X <= x) >= q, interpolated in log space
// within the bin the target mass falls in — within one bin width of the
// exact empirical quantile — and clamped to the observed [min, max]. It
// panics on an empty histogram or q outside (0, 1].
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.total == 0 {
		panic("stats: quantile of empty histogram")
	}
	if q <= 0 || q > 1 {
		panic("stats: quantile level out of (0,1]")
	}
	h.prefix()
	target := q*h.total - 1e-12*h.total
	b := sort.Search(len(h.cum), func(i int) bool { return h.cum[i] >= target })
	if b >= len(h.cum) {
		b = len(h.cum) - 1
	}
	if b == 0 {
		return h.min
	}
	if b == h.nbins+1 {
		return h.max
	}
	frac := (target - h.cum[b-1]) / h.w[b]
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	x := math.Pow(10, h.edge(b)+frac/h.scale)
	if x < h.min {
		x = h.min
	}
	if x > h.max {
		x = h.max
	}
	return x
}

// Points returns the cumulative distribution over the non-empty bins:
// each bin contributes its upper edge (the underflow bin contributes the
// observed min, the overflow bin the observed max) and the cumulative
// probability through it. The slices are freshly allocated, ascending in
// x, and end at probability 1.
func (h *LogHistogram) Points() (xs, ps []float64) {
	if h.total == 0 {
		return nil, nil
	}
	h.prefix()
	for i, wi := range h.w {
		if wi == 0 {
			continue
		}
		var x float64
		switch i {
		case 0:
			x = h.min
		case h.nbins + 1:
			x = h.max
		default:
			x = math.Pow(10, h.edge(i)+1/h.scale)
		}
		xs = append(xs, x)
		ps = append(ps, h.cum[i]/h.total)
	}
	return xs, ps
}
