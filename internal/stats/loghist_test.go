package stats

import (
	"math"
	"testing"
)

func newTestHist() *LogHistogram {
	return NewLogHistogram(400, -4, 4)
}

func TestLogHistogramBasic(t *testing.T) {
	h := newTestHist()
	h.Add(1, 1)
	h.Add(10, 1)
	h.Add(100, 2)
	if got := h.TotalWeight(); got != 4 {
		t.Fatalf("total weight %g", got)
	}
	if got := h.Count(); got != 3 {
		t.Fatalf("count %d", got)
	}
	if got := h.P(0.5); got != 0 {
		t.Errorf("P(0.5) = %g, want 0", got)
	}
	if got := h.P(1e6); got != 1 {
		t.Errorf("P(1e6) = %g, want 1", got)
	}
	// Between the observations the CDF must sit at the step values (up
	// to one bin of interpolation).
	if got := h.P(3); math.Abs(got-0.25) > 0.01 {
		t.Errorf("P(3) = %g, want ~0.25", got)
	}
	if got := h.P(50); math.Abs(got-0.5) > 0.01 {
		t.Errorf("P(50) = %g, want ~0.5", got)
	}
	// Quantiles within one bin width (log10/400 bins over 8 decades =
	// 0.02 decades => 4.7% relative) of the exact values.
	for _, c := range []struct{ q, want float64 }{{0.2, 1}, {0.5, 10}, {1.0, 100}} {
		got := h.Quantile(c.q)
		if math.Abs(math.Log10(got)-math.Log10(c.want)) > h.BinWidth()+1e-12 {
			t.Errorf("Quantile(%g) = %g, want within one bin of %g", c.q, got, c.want)
		}
	}
	if got := h.Mean(); math.Abs(got-(1+10+200)/4.0) > 1e-12 {
		t.Errorf("mean %g", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max %g/%g", h.Min(), h.Max())
	}
}

func TestLogHistogramUnderOverflow(t *testing.T) {
	h := newTestHist()
	h.Add(0, 1)    // exact zero: underflow
	h.Add(1e-9, 1) // below 10^-4: underflow
	h.Add(1, 1)
	h.Add(1e9, 1) // above 10^4: overflow
	if got := h.P(1e-5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P in underflow region = %g, want 0.5", got)
	}
	if got := h.P(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(0) = %g, want 0.5 (underflow mass)", got)
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("Quantile in underflow = %g, want observed min 0", got)
	}
	if got := h.Quantile(1); got != 1e9 {
		t.Errorf("Quantile(1) = %g, want observed max 1e9", got)
	}
	xs, ps := h.Points()
	if len(xs) != 3 { // underflow, one interior bin, overflow
		t.Fatalf("points: %v", xs)
	}
	if xs[0] != 0 || xs[len(xs)-1] != 1e9 || ps[len(ps)-1] != 1 {
		t.Errorf("points endpoints: xs %v ps %v", xs, ps)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] || ps[i] < ps[i-1] {
			t.Fatalf("points not monotone: %v %v", xs, ps)
		}
	}
}

func TestLogHistogramWeightRules(t *testing.T) {
	h := newTestHist()
	h.Add(1, 0)
	if h.Count() != 0 || h.TotalWeight() != 0 {
		t.Error("zero-weight observation retained")
	}
	if got := h.P(10); got != 0 {
		t.Errorf("empty P = %g", got)
	}
	mustPanic(t, func() { h.Add(1, -1) })
	mustPanic(t, func() { h.Add(math.NaN(), 1) })
	mustPanic(t, func() { h.Quantile(0.5) })
	h.Add(1, 1)
	mustPanic(t, func() { h.Quantile(0) })
	mustPanic(t, func() { h.Quantile(1.1) })
}

func TestLogHistogramMergeMatchesSequential(t *testing.T) {
	// Merging shard histograms in shard order must equal adding every
	// observation into one histogram in the same global order, bin by
	// bin (the worker-count-invariance property the engine relies on).
	rng := NewRand(3)
	xs := make([]float64, 3000)
	ws := make([]float64, len(xs))
	for i := range xs {
		xs[i] = math.Pow(10, rng.Float64()*10-5)
		ws[i] = rng.Float64() + 0.1
	}
	all := newTestHist()
	shards := []*LogHistogram{newTestHist(), newTestHist(), newTestHist()}
	for i := range xs {
		all.Add(xs[i], ws[i])
		shards[i*len(shards)/len(xs)].Add(xs[i], ws[i])
	}
	merged := newTestHist()
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != all.Count() {
		t.Fatalf("count %d != %d", merged.Count(), all.Count())
	}
	if math.Abs(merged.TotalWeight()-all.TotalWeight()) > 1e-9 {
		t.Fatalf("total %g != %g", merged.TotalWeight(), all.TotalWeight())
	}
	if merged.Min() != all.Min() || merged.Max() != all.Max() {
		t.Fatal("min/max differ")
	}
	mx, mp := merged.Points()
	ax, ap := all.Points()
	if len(mx) != len(ax) {
		t.Fatalf("point counts differ: %d vs %d", len(mx), len(ax))
	}
	for i := range mx {
		if mx[i] != ax[i] || math.Abs(mp[i]-ap[i]) > 1e-12 {
			t.Fatalf("point %d differs: (%g,%g) vs (%g,%g)", i, mx[i], mp[i], ax[i], ap[i])
		}
	}
}

func TestLogHistogramMergeAssociative(t *testing.T) {
	// (a + b) + c == a + (b + c) up to float round-off: bin weights are
	// plain sums, so any association agrees to ~ULP precision.
	build := func(seed int64) *LogHistogram {
		h := newTestHist()
		rng := NewRand(seed)
		for i := 0; i < 500; i++ {
			h.Add(math.Pow(10, rng.Float64()*8-4), rng.Float64())
		}
		return h
	}
	a, b, c := build(1), build(2), build(3)

	left := newTestHist()
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)

	bc := newTestHist()
	bc.Merge(b)
	bc.Merge(c)
	right := newTestHist()
	right.Merge(a)
	right.Merge(bc)

	if left.Count() != right.Count() {
		t.Fatal("counts differ")
	}
	lx, lp := left.Points()
	rx, rp := right.Points()
	if len(lx) != len(rx) {
		t.Fatalf("point counts differ: %d vs %d", len(lx), len(rx))
	}
	for i := range lx {
		if lx[i] != rx[i] || math.Abs(lp[i]-rp[i]) > 1e-12 {
			t.Fatalf("association changed point %d: (%g,%g) vs (%g,%g)",
				i, lx[i], lp[i], rx[i], rp[i])
		}
	}
}

func TestLogHistogramMergeRejectsMismatch(t *testing.T) {
	h := newTestHist()
	mustPanic(t, func() { h.Merge(&WeightedCDF{}) })
	other := NewLogHistogram(100, -4, 4)
	other.Add(1, 1)
	mustPanic(t, func() { h.Merge(other) })
}

func TestLogHistogramTracksExactCDF(t *testing.T) {
	// Against the exact oracle: P agrees within the mass of the bin
	// straddling the query and quantiles within one bin width.
	rng := NewRand(11)
	h := NewLogHistogram(1024, -4, 8)
	var exact WeightedCDF
	for i := 0; i < 20000; i++ {
		x := math.Exp(rng.NormFloat64()*3 + 2)
		w := rng.Float64() + 0.5
		h.Add(x, w)
		exact.Add(x, w)
	}
	width := h.BinWidth()
	for e := -3.0; e <= 7.0; e += 0.25 {
		x := math.Pow(10, e)
		// The straddling bin's mass, read off the histogram itself.
		binMass := h.P(math.Pow(10, e+width)) - h.P(math.Pow(10, e-width))
		if diff := math.Abs(h.P(x) - exact.P(x)); diff > binMass+1e-9 {
			t.Errorf("P(%g): hist %g vs exact %g (allowed %g)",
				x, h.P(x), exact.P(x), binMass)
		}
	}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		hq, eq := h.Quantile(q), exact.Quantile(q)
		if math.Abs(math.Log10(hq)-math.Log10(eq)) > width+1e-9 {
			t.Errorf("Quantile(%g): hist %g vs exact %g (> one bin width)", q, hq, eq)
		}
	}
}

func TestLogHistogramAddZeroAllocs(t *testing.T) {
	h := NewLogHistogram(0, -8, 20)
	rng := NewRand(1)
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = math.Pow(10, rng.Float64()*20-6)
	}
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		h.Add(xs[i%len(xs)], 1e-6)
		i++
	})
	if avg != 0 {
		t.Fatalf("Add allocates %.1f times per call", avg)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
