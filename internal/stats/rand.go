// Package stats provides the statistical plumbing shared by the fault
// injectors, the yield model, and the experiment harness: seeded RNG
// helpers, discrete distributions in log space, empirical (weighted) CDFs,
// and basic descriptive statistics.
//
// Everything is deterministic given an explicit seed so that every paper
// exhibit regenerates bit-for-bit.
package stats

import "math/rand"

// NewRand returns a rand.Rand seeded with the given seed. It is a tiny
// convenience wrapper that pins the source type in one place.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Derive returns a child RNG deterministically derived from parent seed and
// a stream index, so that independent experiment arms draw from
// non-overlapping, reproducible streams.
func Derive(seed int64, stream int64) *rand.Rand {
	return NewRand(DeriveSeed(seed, stream))
}

// DeriveSeed mixes (seed, stream) into a child seed with SplitMix64-style
// finalization. Nested sweeps use it to give every (outer point, shard)
// pair its own reproducible stream: DeriveSeed the outer index, then hand
// the child seed to the mc engine, which Derives per-shard streams.
func DeriveSeed(seed int64, stream int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// SampleDistinct draws k distinct integers from [0, n) uniformly at random.
// It panics if k > n or either is negative. The result order is random.
//
// For k much smaller than n it uses rejection from a set; otherwise it
// performs a partial Fisher-Yates shuffle.
func SampleDistinct(rng *rand.Rand, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("stats: SampleDistinct requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if k*8 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := rng.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return append([]int(nil), perm[:k]...)
}
