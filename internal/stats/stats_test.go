package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogBinomialPMFSumsToOne(t *testing.T) {
	for _, c := range []struct {
		m int
		p float64
	}{
		{10, 0.3},
		{100, 0.01},
		{131072, 5e-6}, // 16 KB memory at the paper's Fig. 5 Pcell
	} {
		sum := 0.0
		for n := 0; n <= c.m && n <= 2000; n++ {
			sum += BinomialPMF(c.m, c.p, n)
			if sum > 1-1e-12 {
				break
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("m=%d p=%g: pmf sums to %.12f", c.m, c.p, sum)
		}
	}
}

func TestBinomialSmallCases(t *testing.T) {
	// Binomial(2, 0.5): 1/4, 1/2, 1/4.
	want := []float64{0.25, 0.5, 0.25}
	for n, w := range want {
		if got := BinomialPMF(2, 0.5, n); math.Abs(got-w) > 1e-12 {
			t.Errorf("Binomial(2,0.5,%d) = %g, want %g", n, got, w)
		}
	}
	if got := BinomialPMF(5, 0.2, -1); got != 0 {
		t.Errorf("pmf(-1) = %g", got)
	}
	if got := BinomialPMF(5, 0.2, 6); got != 0 {
		t.Errorf("pmf(n>m) = %g", got)
	}
}

func TestBinomialDegenerate(t *testing.T) {
	if got := BinomialPMF(10, 0, 0); got != 1 {
		t.Errorf("p=0, n=0: %g", got)
	}
	if got := BinomialPMF(10, 0, 1); got != 0 {
		t.Errorf("p=0, n=1: %g", got)
	}
	if got := BinomialPMF(10, 1, 10); got != 1 {
		t.Errorf("p=1, n=m: %g", got)
	}
}

func TestBinomialMatchesPoissonLimit(t *testing.T) {
	// For large m and tiny p, binomial ~ Poisson(mp).
	m, p := 131072, 1e-5
	lambda := float64(m) * p
	for n := 0; n <= 8; n++ {
		b := BinomialPMF(m, p, n)
		q := PoissonPMF(lambda, n)
		if math.Abs(b-q) > 1e-4*math.Max(b, 1e-12) && math.Abs(b-q) > 1e-7 {
			t.Errorf("n=%d: binomial %g vs poisson %g", n, b, q)
		}
	}
}

func TestBinomialQuantile(t *testing.T) {
	// Median of Binomial(100, 0.5) is 50.
	if got := BinomialQuantile(100, 0.5, 0.5); got != 50 {
		t.Errorf("median = %d, want 50", got)
	}
	// q -> 1 must not exceed m.
	if got := BinomialQuantile(20, 0.3, 0.999999999); got > 20 {
		t.Errorf("quantile %d > m", got)
	}
	if got := BinomialQuantile(100, 0.01, 0); got != 0 {
		t.Errorf("q=0 should give 0, got %d", got)
	}
}

func TestSampleBinomialMoments(t *testing.T) {
	rng := NewRand(42)
	m, p := 131072, 1e-4 // mean ~13.1: exercises the inversion path
	const trials = 4000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(SampleBinomial(rng, m, p))
	}
	mean := sum / trials
	want := float64(m) * p
	if math.Abs(mean-want) > 0.35 {
		t.Errorf("sample mean %.3f, want %.3f", mean, want)
	}
}

func TestSampleBinomialLargeMean(t *testing.T) {
	rng := NewRand(7)
	m, p := 10000, 0.3 // mean 3000: exercises the normal path
	const trials = 2000
	sum := 0.0
	for i := 0; i < trials; i++ {
		v := SampleBinomial(rng, m, p)
		if v < 0 || v > m {
			t.Fatalf("sample %d out of range", v)
		}
		sum += float64(v)
	}
	mean := sum / trials
	if math.Abs(mean-3000) > 10 {
		t.Errorf("sample mean %.1f, want ~3000", mean)
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1 - 1e-6} {
		x := NormalQuantile(p, 0, 1)
		back := NormalCDF(x, 0, 1)
		if math.Abs(back-p) > 1e-9*math.Max(p, 1e-3) && math.Abs(back-p) > 1e-12 {
			t.Errorf("p=%g: quantile %g maps back to %g", p, x, back)
		}
	}
	// Location/scale handling.
	if x := NormalQuantile(0.5, 3, 2); math.Abs(x-3) > 1e-9 {
		t.Errorf("median of N(3,4) = %g", x)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	if got := NormalCDF(0, 0, 1); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("Phi(0) = %g", got)
	}
	if got := NormalCDF(1.959963984540054, 0, 1); math.Abs(got-0.975) > 1e-9 {
		t.Errorf("Phi(1.96) = %g", got)
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := NewRand(1)
	for _, c := range []struct{ n, k int }{{10, 10}, {100, 3}, {131072, 150}, {5, 0}} {
		got := SampleDistinct(rng, c.n, c.k)
		if len(got) != c.k {
			t.Fatalf("n=%d k=%d: got %d values", c.n, c.k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= c.n {
				t.Fatalf("value %d out of range [0,%d)", v, c.n)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctUniform(t *testing.T) {
	// Each element of [0,10) should appear ~equally often when drawing 5.
	rng := NewRand(99)
	counts := make([]int, 10)
	const trials = 6000
	for i := 0; i < trials; i++ {
		for _, v := range SampleDistinct(rng, 10, 5) {
			counts[v]++
		}
	}
	want := float64(trials) * 5 / 10
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	a := Derive(42, 0)
	b := Derive(42, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("derived streams coincide on %d/100 draws", same)
	}
	// Determinism.
	c := Derive(42, 0)
	d := Derive(42, 0)
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("Derive not deterministic")
		}
	}
}

func TestWeightedCDFBasic(t *testing.T) {
	var c WeightedCDF
	c.Add(1, 1)
	c.Add(2, 1)
	c.Add(3, 2)
	if got := c.P(0.5); got != 0 {
		t.Errorf("P(0.5) = %g", got)
	}
	if got := c.P(1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("P(1) = %g, want 0.25", got)
	}
	if got := c.P(2.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(2.5) = %g, want 0.5", got)
	}
	if got := c.P(3); math.Abs(got-1) > 1e-12 {
		t.Errorf("P(3) = %g, want 1", got)
	}
	if q := c.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %g, want 2", q)
	}
	if q := c.Quantile(1.0); q != 3 {
		t.Errorf("Quantile(1) = %g, want 3", q)
	}
}

func TestWeightedCDFInterleavedAdd(t *testing.T) {
	var c WeightedCDF
	c.Add(5, 1)
	_ = c.P(5)  // force a sort
	c.Add(1, 1) // then add a smaller value
	if got := c.P(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(1) after interleaved add = %g", got)
	}
}

func TestWeightedCDFZeroWeightDropped(t *testing.T) {
	var c WeightedCDF
	c.Add(1, 0)
	if c.Len() != 0 || c.TotalWeight() != 0 {
		t.Error("zero-weight observation retained")
	}
}

func TestWeightedCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var c WeightedCDF
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			c.Add(x, float64(i%3)+0.5)
		}
		if c.Len() == 0 {
			return true
		}
		xs, ps := c.Points()
		for i := 1; i < len(xs); i++ {
			if xs[i] < xs[i-1] || ps[i] < ps[i-1] {
				return false
			}
		}
		return len(ps) == 0 || math.Abs(ps[len(ps)-1]-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("bad summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %g", s.Std)
	}
	s = Summarize([]float64{1, 2})
	if s.Median != 1.5 {
		t.Errorf("even-length median = %g", s.Median)
	}
}

func TestMeanStdEmpty(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Error("empty-input conventions violated")
	}
}
