package stats

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file makes both Accumulator implementations gob-transportable, so
// a Monte-Carlo shard's accumulators — including []Accumulator values,
// via the Register calls below — can cross a host boundary and merge on
// the coordinator bit-identically to a single-host run. Only the state
// that defines the distribution is encoded; lazily built query caches
// (sorted order, prefix sums) are rebuilt on first query after decode, so
// a decoded accumulator answers every query exactly like the original.

func init() {
	gob.Register(&WeightedCDF{})
	gob.Register(&LogHistogram{})
}

// wcdfWire is the wire form of WeightedCDF: observations in insertion
// order (the order Merge preserves and every query result depends on).
type wcdfWire struct {
	Xs, Ws []float64
	Total  float64
}

// GobEncode encodes the CDF's observations in insertion order.
func (c *WeightedCDF) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(wcdfWire{Xs: c.xs, Ws: c.ws, Total: c.total})
	return buf.Bytes(), err
}

// GobDecode replaces the CDF with the encoded observations.
func (c *WeightedCDF) GobDecode(b []byte) error {
	var w wcdfWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	if len(w.Xs) != len(w.Ws) {
		return fmt.Errorf("stats: corrupt WeightedCDF encoding: %d observations, %d weights", len(w.Xs), len(w.Ws))
	}
	*c = WeightedCDF{xs: w.Xs, ws: w.Ws, total: w.Total}
	return nil
}

// histWire is the wire form of LogHistogram: the bin geometry, the bin
// weights, and the running moments/extrema.
type histWire struct {
	LogMin, LogMax float64
	NBins          int
	W              []float64
	Total          float64
	Count          int64
	SumX, SumXX    float64
	Min, Max       float64
}

// GobEncode encodes the histogram's geometry, bins, and moments.
func (h *LogHistogram) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(histWire{
		LogMin: h.logMin, LogMax: h.logMax, NBins: h.nbins, W: h.w,
		Total: h.total, Count: h.count, SumX: h.sumX, SumXX: h.sumXX,
		Min: h.min, Max: h.max,
	})
	return buf.Bytes(), err
}

// GobDecode replaces the histogram with the encoded state.
func (h *LogHistogram) GobDecode(b []byte) error {
	var w histWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	if w.NBins < 1 || !(w.LogMax > w.LogMin) || len(w.W) != w.NBins+2 {
		return fmt.Errorf("stats: corrupt LogHistogram encoding: %d bins over [%g, %g) with %d weights",
			w.NBins, w.LogMin, w.LogMax, len(w.W))
	}
	*h = LogHistogram{
		logMin: w.LogMin, logMax: w.LogMax, nbins: w.NBins,
		scale: float64(w.NBins) / (w.LogMax - w.LogMin),
		w:     w.W, dirty: true,
		total: w.Total, count: w.Count, sumX: w.SumX, sumXX: w.SumXX,
		min: w.Min, max: w.Max,
	}
	return nil
}
