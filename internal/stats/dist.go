package stats

import (
	"math"
	"math/rand"
)

// LogBinomialPMF returns log Pr(N = n) for a Binomial(m, p) variable,
// computed in log space so that memory-scale m (e.g. 131072 cells) and
// tiny p (e.g. 5e-6) remain accurate. It returns -Inf for impossible n.
//
// This is Eq. (4) of the paper: Pr(N=n) = C(M,n) p^n (1-p)^(M-n).
func LogBinomialPMF(m int, p float64, n int) float64 {
	if n < 0 || n > m {
		return math.Inf(-1)
	}
	if p < 0 || p > 1 {
		panic("stats: probability out of [0,1]")
	}
	if p == 0 {
		if n == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p == 1 {
		if n == m {
			return 0
		}
		return math.Inf(-1)
	}
	lgM, _ := math.Lgamma(float64(m) + 1)
	lgN, _ := math.Lgamma(float64(n) + 1)
	lgMN, _ := math.Lgamma(float64(m-n) + 1)
	return lgM - lgN - lgMN + float64(n)*math.Log(p) + float64(m-n)*math.Log1p(-p)
}

// BinomialPMF returns Pr(N = n) for a Binomial(m, p) variable.
func BinomialPMF(m int, p float64, n int) float64 {
	return math.Exp(LogBinomialPMF(m, p, n))
}

// BinomialQuantile returns the smallest n such that Pr(N <= n) >= q for a
// Binomial(m, p) variable. The paper uses the 99th percentile of the
// failure count (Nmax, §5.2) to bound Monte-Carlo sweeps.
func BinomialQuantile(m int, p float64, q float64) int {
	if q <= 0 {
		return 0
	}
	if q > 1 {
		panic("stats: quantile level > 1")
	}
	cum := 0.0
	for n := 0; n <= m; n++ {
		cum += BinomialPMF(m, p, n)
		if cum >= q {
			return n
		}
	}
	return m
}

// BinomialMean returns m*p, the expected failure count.
func BinomialMean(m int, p float64) float64 { return float64(m) * p }

// SampleBinomial draws from Binomial(m, p). For the small means used in
// memory fault injection it uses Poisson-style inversion on the exact
// binomial pmf; for large means it falls back to a normal approximation
// with continuity correction, clamped to [0, m].
func SampleBinomial(rng *rand.Rand, m int, p float64) int {
	if p <= 0 || m == 0 {
		return 0
	}
	if p >= 1 {
		return m
	}
	mean := float64(m) * p
	if mean <= 50 {
		// Inversion by sequential search from the mode-0 side.
		u := rng.Float64()
		cum := 0.0
		for n := 0; n <= m; n++ {
			cum += BinomialPMF(m, p, n)
			if u <= cum {
				return n
			}
		}
		return m
	}
	sd := math.Sqrt(mean * (1 - p))
	v := math.Round(rng.NormFloat64()*sd + mean)
	if v < 0 {
		v = 0
	}
	if v > float64(m) {
		v = float64(m)
	}
	return int(v)
}

// PoissonPMF returns Pr(N = n) for a Poisson(lambda) variable, the standard
// rare-event limit of the binomial fault-count distribution.
func PoissonPMF(lambda float64, n int) float64 {
	if n < 0 {
		return 0
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return math.Exp(float64(n)*math.Log(lambda) - lambda - lg)
}

// NormalCDF returns Pr(X <= x) for X ~ N(mu, sigma^2).
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		panic("stats: sigma must be positive")
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalQuantile returns the x such that NormalCDF(x, mu, sigma) = p,
// using the Acklam rational approximation refined by one Halley step.
func NormalQuantile(p, mu, sigma float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: quantile level must be in (0,1)")
	}
	z := acklam(p)
	// One Halley refinement against the exact CDF.
	e := 0.5*math.Erfc(-z/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(z*z/2)
	z = z - u/(1+z*u/2)
	return mu + sigma*z
}

// acklam implements Peter Acklam's inverse-normal approximation
// (relative error < 1.15e-9 over the full open interval).
func acklam(p float64) float64 {
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
