// Package bits provides word-level bit manipulation helpers shared by the
// memory models, the bit-shuffling datapath, and the ECC codecs.
//
// All routines operate on W-bit words stored in the low bits of a uint64,
// with bit 0 the least-significant bit. Words up to 64 bits wide are
// supported; the paper's experiments use W = 32.
package bits

import "fmt"

// MaxWidth is the widest word the helpers accept.
const MaxWidth = 64

// Mask returns a mask with the low w bits set. It panics if w is outside
// [0, MaxWidth].
func Mask(w int) uint64 {
	if w < 0 || w > MaxWidth {
		panic(fmt.Sprintf("bits: width %d out of range [0,%d]", w, MaxWidth))
	}
	if w == MaxWidth {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// CheckWidth panics unless w is a supported word width (1..MaxWidth).
func CheckWidth(w int) {
	if w < 1 || w > MaxWidth {
		panic(fmt.Sprintf("bits: unsupported word width %d", w))
	}
}

// RotateRight circularly shifts the low w bits of v right by n positions.
// Bit i of the input appears at position (i - n) mod w of the output.
// n may be any non-negative value; it is reduced modulo w.
func RotateRight(v uint64, w, n int) uint64 {
	CheckWidth(w)
	if n < 0 {
		panic("bits: negative rotate amount")
	}
	n %= w
	if n == 0 {
		return v & Mask(w)
	}
	v &= Mask(w)
	return ((v >> uint(n)) | (v << uint(w-n))) & Mask(w)
}

// RotateLeft circularly shifts the low w bits of v left by n positions.
// Bit i of the input appears at position (i + n) mod w of the output.
// RotateLeft(RotateRight(v, w, n), w, n) == v for any v within width w.
func RotateLeft(v uint64, w, n int) uint64 {
	CheckWidth(w)
	if n < 0 {
		panic("bits: negative rotate amount")
	}
	n %= w
	return RotateRight(v, w, w-n)
}

// Bit returns bit i of v as 0 or 1.
func Bit(v uint64, i int) uint64 {
	if i < 0 || i >= MaxWidth {
		panic(fmt.Sprintf("bits: bit index %d out of range", i))
	}
	return (v >> uint(i)) & 1
}

// SetBit returns v with bit i set to b (b must be 0 or 1).
func SetBit(v uint64, i int, b uint64) uint64 {
	if i < 0 || i >= MaxWidth {
		panic(fmt.Sprintf("bits: bit index %d out of range", i))
	}
	if b > 1 {
		panic("bits: bit value must be 0 or 1")
	}
	return (v &^ (uint64(1) << uint(i))) | (b << uint(i))
}

// FlipBit returns v with bit i inverted.
func FlipBit(v uint64, i int) uint64 {
	if i < 0 || i >= MaxWidth {
		panic(fmt.Sprintf("bits: bit index %d out of range", i))
	}
	return v ^ (uint64(1) << uint(i))
}

// Segment extracts the seg-th S-bit segment of a w-bit word
// (segment 0 holds bits [0, S), the least significant).
func Segment(v uint64, w, segSize, seg int) uint64 {
	CheckWidth(w)
	if segSize <= 0 || w%segSize != 0 {
		panic(fmt.Sprintf("bits: segment size %d does not divide width %d", segSize, w))
	}
	n := w / segSize
	if seg < 0 || seg >= n {
		panic(fmt.Sprintf("bits: segment %d out of range [0,%d)", seg, n))
	}
	return (v >> uint(seg*segSize)) & Mask(segSize)
}

// ErrorMagnitude2c returns |decode(v ^ e) - decode(v)| interpreted as
// w-bit two's complement integers, where e is an error pattern
// (XOR mask). This is the output error magnitude a set of bit flips
// inflicts on a stored two's-complement value.
func ErrorMagnitude2c(v, e uint64, w int) uint64 {
	CheckWidth(w)
	a := SignExtend(v&Mask(w), w)
	b := SignExtend((v^e)&Mask(w), w)
	d := b - a
	if d < 0 {
		d = -d
	}
	return uint64(d)
}

// FlipMagnitude2c returns the error magnitude that a single bit flip at
// position b inflicts on a w-bit two's complement value: 2^b. Per Eq. (6)
// of the paper, this is independent of the stored datum.
func FlipMagnitude2c(b, w int) uint64 {
	CheckWidth(w)
	if b < 0 || b >= w {
		panic(fmt.Sprintf("bits: bit position %d out of range [0,%d)", b, w))
	}
	return uint64(1) << uint(b)
}

// SignExtend interprets the low w bits of v as a two's complement integer
// and returns its value as an int64.
func SignExtend(v uint64, w int) int64 {
	CheckWidth(w)
	v &= Mask(w)
	if w == 64 {
		return int64(v)
	}
	sign := uint64(1) << uint(w-1)
	if v&sign != 0 {
		return int64(v | ^Mask(w))
	}
	return int64(v)
}

// OnesCount returns the number of set bits in the low w bits of v.
func OnesCount(v uint64, w int) int {
	CheckWidth(w)
	v &= Mask(w)
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// Parity returns the XOR of the low w bits of v (0 or 1).
func Parity(v uint64, w int) uint64 {
	return uint64(OnesCount(v, w) & 1)
}

// Reverse returns the low w bits of v in reversed order (bit 0 swaps with
// bit w-1, and so on).
func Reverse(v uint64, w int) uint64 {
	CheckWidth(w)
	var r uint64
	for i := 0; i < w; i++ {
		r = (r << 1) | ((v >> uint(i)) & 1)
	}
	return r
}
