package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		w    int
		want uint64
	}{
		{0, 0},
		{1, 1},
		{4, 0xF},
		{8, 0xFF},
		{16, 0xFFFF},
		{32, 0xFFFFFFFF},
		{63, 0x7FFFFFFFFFFFFFFF},
		{64, 0xFFFFFFFFFFFFFFFF},
	}
	for _, c := range cases {
		if got := Mask(c.w); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.w, got, c.want)
		}
	}
}

func TestMaskPanics(t *testing.T) {
	for _, w := range []int{-1, 65, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Mask(%d) did not panic", w)
				}
			}()
			Mask(w)
		}()
	}
}

func TestRotateRightBasic(t *testing.T) {
	// 32-bit rotate: bit 0 moves to position 31 under a rotate by 1.
	if got := RotateRight(1, 32, 1); got != 1<<31 {
		t.Errorf("RotateRight(1, 32, 1) = %#x, want %#x", got, uint64(1)<<31)
	}
	// Paper example (Fig. 3 bottom word): W=32, T=29 moves the LSB to
	// physical position 3 (the faulty cell).
	if got := RotateRight(1, 32, 29); got != 1<<3 {
		t.Errorf("RotateRight(1, 32, 29) = %#x, want bit 3 set", got)
	}
	// Rotation by the word width is the identity.
	if got := RotateRight(0xDEADBEEF, 32, 32); got != 0xDEADBEEF {
		t.Errorf("RotateRight by W changed the value: %#x", got)
	}
	// Rotation of zero is zero.
	if got := RotateRight(0, 32, 7); got != 0 {
		t.Errorf("RotateRight(0) = %#x", got)
	}
}

func TestRotateLeftBasic(t *testing.T) {
	if got := RotateLeft(1<<31, 32, 1); got != 1 {
		t.Errorf("RotateLeft(1<<31, 32, 1) = %#x, want 1", got)
	}
	if got := RotateLeft(0xF, 16, 4); got != 0xF0 {
		t.Errorf("RotateLeft(0xF, 16, 4) = %#x, want 0xF0", got)
	}
}

func TestRotateInverseProperty(t *testing.T) {
	f := func(v uint64, wRaw uint8, nRaw uint16) bool {
		w := int(wRaw)%64 + 1
		n := int(nRaw)
		v &= Mask(w)
		return RotateLeft(RotateRight(v, w, n), w, n) == v &&
			RotateRight(RotateLeft(v, w, n), w, n) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRotatePreservesPopcount(t *testing.T) {
	f := func(v uint64, wRaw uint8, nRaw uint16) bool {
		w := int(wRaw)%64 + 1
		v &= Mask(w)
		return OnesCount(RotateRight(v, w, int(nRaw)), w) == OnesCount(v, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRotateBitMapping(t *testing.T) {
	// Bit i of the input must appear at (i - n) mod w after RotateRight.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		w := rng.Intn(64) + 1
		i := rng.Intn(w)
		n := rng.Intn(3 * w)
		v := uint64(1) << uint(i)
		got := RotateRight(v, w, n)
		wantPos := ((i-n)%w + w) % w
		if got != uint64(1)<<uint(wantPos) {
			t.Fatalf("w=%d i=%d n=%d: got %#x, want bit %d", w, i, n, got, wantPos)
		}
	}
}

func TestBitSetFlip(t *testing.T) {
	v := uint64(0)
	v = SetBit(v, 5, 1)
	if Bit(v, 5) != 1 {
		t.Error("SetBit(5,1) then Bit(5) != 1")
	}
	v = SetBit(v, 5, 0)
	if v != 0 {
		t.Errorf("SetBit(5,0) left %#x", v)
	}
	v = FlipBit(v, 63)
	if Bit(v, 63) != 1 {
		t.Error("FlipBit(63) did not set bit 63")
	}
	v = FlipBit(v, 63)
	if v != 0 {
		t.Error("double FlipBit not identity")
	}
}

func TestSegment(t *testing.T) {
	v := uint64(0xAABBCCDD)
	if got := Segment(v, 32, 8, 0); got != 0xDD {
		t.Errorf("segment 0 = %#x, want 0xDD", got)
	}
	if got := Segment(v, 32, 8, 3); got != 0xAA {
		t.Errorf("segment 3 = %#x, want 0xAA", got)
	}
	if got := Segment(v, 32, 16, 1); got != 0xAABB {
		t.Errorf("high half = %#x, want 0xAABB", got)
	}
	if got := Segment(v, 32, 32, 0); got != v {
		t.Errorf("whole word segment = %#x", got)
	}
}

func TestSegmentReassembly(t *testing.T) {
	f := func(v uint64) bool {
		v &= Mask(32)
		var r uint64
		for s := 0; s < 4; s++ {
			r |= Segment(v, 32, 8, s) << uint(8*s)
		}
		return r == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint64
		w    int
		want int64
	}{
		{0, 32, 0},
		{1, 32, 1},
		{0x7FFFFFFF, 32, 2147483647},
		{0x80000000, 32, -2147483648},
		{0xFFFFFFFF, 32, -1},
		{0x8000, 16, -32768},
		{0x7FFF, 16, 32767},
		{0xFF, 8, -1},
		{0x80, 8, -128},
		{0xFFFFFFFFFFFFFFFF, 64, -1},
	}
	for _, c := range cases {
		if got := SignExtend(c.v, c.w); got != c.want {
			t.Errorf("SignExtend(%#x, %d) = %d, want %d", c.v, c.w, got, c.want)
		}
	}
}

func TestFlipMagnitude2c(t *testing.T) {
	// Per Eq. (6): a flip at bit b costs 2^b regardless of the datum.
	for b := 0; b < 32; b++ {
		if got := FlipMagnitude2c(b, 32); got != uint64(1)<<uint(b) {
			t.Errorf("FlipMagnitude2c(%d) = %d", b, got)
		}
	}
}

func TestErrorMagnitudeMatchesFlipMagnitude(t *testing.T) {
	// For a single-bit error pattern, the two's-complement error magnitude
	// equals 2^b for every stored datum, including across the sign bit.
	f := func(v uint64, bRaw uint8) bool {
		b := int(bRaw) % 32
		e := uint64(1) << uint(b)
		return ErrorMagnitude2c(v, e, 32) == FlipMagnitude2c(b, 32)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorMagnitudeZeroPattern(t *testing.T) {
	f := func(v uint64) bool { return ErrorMagnitude2c(v, 0, 32) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnesCountAndParity(t *testing.T) {
	if got := OnesCount(0xFF, 8); got != 8 {
		t.Errorf("OnesCount(0xFF,8) = %d", got)
	}
	if got := OnesCount(0xFF00, 8); got != 0 {
		t.Errorf("OnesCount masks width: got %d", got)
	}
	if Parity(0b101, 3) != 0 {
		t.Error("Parity(0b101) != 0")
	}
	if Parity(0b100, 3) != 1 {
		t.Error("Parity(0b100) != 1")
	}
}

func TestReverse(t *testing.T) {
	if got := Reverse(0b001, 3); got != 0b100 {
		t.Errorf("Reverse(0b001,3) = %#b", got)
	}
	f := func(v uint64, wRaw uint8) bool {
		w := int(wRaw)%64 + 1
		v &= Mask(w)
		return Reverse(Reverse(v, w), w) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRotateRight32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RotateRight(0xDEADBEEF, 32, i&31)
	}
}
