// Package mc is the deterministic parallel Monte-Carlo engine shared by
// the experiment layer: work is split into a fixed number of shards, each
// shard draws from its own RNG stream derived from (seed, shard) via
// stats.Derive, and shard results are returned in shard order. Because
// the shard count and per-shard streams are independent of how many
// worker goroutines execute them, the merged output is bit-identical for
// any worker count — the property the Fig. 5 determinism regression test
// locks in.
package mc

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"faultmem/internal/stats"
)

// DefaultShards is the shard count used when a caller passes 0. It is a
// fixed constant — never derived from the worker count — so that results
// do not depend on the machine's parallelism. 64 shards keep every core
// of typical runners busy while bounding per-shard merge overhead.
const DefaultShards = 64

// Workers normalizes a worker-count parameter: n < 1 selects
// runtime.GOMAXPROCS(0), anything else passes through.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Env carries the cross-cutting execution controls of one engine run:
// cooperative cancellation and shard-completion progress. The zero value
// is a background context with no progress reporting, making RunEnv
// behave exactly like Run.
type Env struct {
	// Ctx, when non-nil, cancels the run: workers stop claiming shards as
	// soon as the context is done and RunEnv returns ctx.Err(). Shard
	// functions that run long should additionally poll Done() themselves.
	Ctx context.Context
	// OnShard, when non-nil, is invoked after every completed shard with
	// the number of shards finished so far and the total. Calls are
	// serialized, so the callback needs no locking of its own, but it runs
	// on worker goroutines and must be cheap.
	OnShard func(done, total int)
}

// Context returns the run's context, defaulting to context.Background().
func (e Env) Context() context.Context {
	if e.Ctx == nil {
		return context.Background()
	}
	return e.Ctx
}

// Done returns the context's done channel (nil — never ready — for the
// zero Env), for cheap polling inside hot shard loops.
func (e Env) Done() <-chan struct{} {
	if e.Ctx == nil {
		return nil
	}
	return e.Ctx.Done()
}

// Run executes fn for every shard in [0, shards) on a pool of workers and
// returns the per-shard results indexed by shard. Each shard receives an
// RNG derived deterministically from (seed, shard), so the result slice —
// and anything merged from it in shard order — is identical for every
// worker count, including workers == 1.
//
// fn must not share mutable state across shards; everything it needs
// should live in its closure or be allocated per call.
func Run[T any](workers, shards int, seed int64, fn func(shard int, rng *rand.Rand) T) []T {
	out, err := RunEnv(Env{}, workers, shards, seed, fn)
	if err != nil {
		// Unreachable: the zero Env's background context never cancels.
		panic(fmt.Sprintf("mc: background run failed: %v", err))
	}
	return out
}

// RunEnv is Run under an execution environment: the same deterministic
// sharded schedule — per-shard streams derived from (seed, shard), results
// in shard order, bit-identical for any worker count — plus cooperative
// cancellation and per-shard progress notification. When the environment's
// context is cancelled, workers stop claiming new shards, every in-flight
// shard is allowed to return (so no goroutine leaks), and RunEnv returns
// nil results with ctx.Err(). An uncancelled RunEnv returns exactly what
// Run would.
func RunEnv[T any](env Env, workers, shards int, seed int64, fn func(shard int, rng *rand.Rand) T) ([]T, error) {
	if shards < 0 {
		panic(fmt.Sprintf("mc: negative shard count %d", shards))
	}
	ctx := env.Context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if shards == 0 {
		return nil, nil
	}
	done := env.Done()
	out := make([]T, shards)
	var completed atomic.Int64
	var noteMu sync.Mutex
	note := func() {
		n := int(completed.Add(1))
		if env.OnShard != nil {
			noteMu.Lock()
			env.OnShard(n, shards)
			noteMu.Unlock()
		}
	}
	w := Workers(workers)
	if w > shards {
		w = shards
	}
	if w == 1 {
		// Fast path: no goroutines, no atomics beyond the progress
		// counter. Bit-identical to the parallel path by construction
		// (same per-shard streams).
		for s := 0; s < shards; s++ {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
			out[s] = fn(s, stats.Derive(seed, int64(s)))
			note()
		}
		// A cancellation during the final shard must not surface as a
		// clean result: shard functions may have bailed out early with
		// partial output.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				out[s] = fn(s, stats.Derive(seed, int64(s)))
				note()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Span is a contiguous half-open range [Start, End) of global sample
// indices owned by one shard.
type Span struct{ Start, End int }

// Split partitions total samples into shards contiguous spans whose sizes
// differ by at most one. It returns fewer spans than requested when total
// < shards (every span non-empty). shards == 0 selects DefaultShards.
func Split(total, shards int) []Span {
	if total < 0 {
		panic(fmt.Sprintf("mc: negative total %d", total))
	}
	if shards == 0 {
		shards = DefaultShards
	}
	if shards < 0 {
		panic(fmt.Sprintf("mc: negative shard count %d", shards))
	}
	if shards > total {
		shards = total
	}
	spans := make([]Span, shards)
	for s := 0; s < shards; s++ {
		spans[s] = Span{Start: s * total / shards, End: (s + 1) * total / shards}
	}
	return spans
}
