// Package mc is the deterministic parallel Monte-Carlo engine shared by
// the experiment layer: work is split into a fixed number of shards, each
// shard draws from its own RNG stream derived from (seed, shard) via
// stats.Derive, and shard results are returned in shard order. Because
// the shard count and per-shard streams are independent of how many
// worker goroutines execute them, the merged output is bit-identical for
// any worker count — the property the Fig. 5 determinism regression test
// locks in.
package mc

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"faultmem/internal/stats"
)

// DefaultShards is the shard count used when a caller passes 0. It is a
// fixed constant — never derived from the worker count — so that results
// do not depend on the machine's parallelism. 64 shards keep every core
// of typical runners busy while bounding per-shard merge overhead.
const DefaultShards = 64

// Workers normalizes a worker-count parameter: n < 1 selects
// runtime.GOMAXPROCS(0), anything else passes through.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Env carries the cross-cutting execution controls of one engine run:
// cooperative cancellation, shard-completion progress, and (optionally)
// an external shard executor. The zero value is a background context with
// no progress reporting, making RunEnv behave exactly like Run.
type Env struct {
	// Ctx, when non-nil, cancels the run: workers stop claiming shards as
	// soon as the context is done and RunEnv returns ctx.Err(). Shard
	// functions that run long should additionally poll Done() themselves.
	Ctx context.Context
	// OnShard, when non-nil, is invoked after every completed shard with
	// the number of shards finished so far and the total. Calls are
	// serialized, so the callback needs no locking of its own, but it runs
	// on worker goroutines and must be cheap.
	OnShard func(done, total int)
	// Tag identifies this engine run to an external executor — typically
	// "experiment" or "experiment/stage". Two RunEnv calls of the same
	// campaign must carry distinct tags so shard indices do not collide on
	// the wire. Ignored when Exec is nil.
	Tag string
	// Exec, when non-nil, takes over shard execution: the engine calls it
	// once per shard instead of running the shard function directly, and
	// the claiming goroutine count is lifted to the shard count (Exec is
	// expected to block on I/O or gate its own compute). See ExecFunc for
	// the contract. The shard-level work export of the multi-host sweep
	// service hangs off this hook.
	Exec ExecFunc
}

// Context returns the run's context, defaulting to context.Background().
func (e Env) Context() context.Context {
	if e.Ctx == nil {
		return context.Background()
	}
	return e.Ctx
}

// Done returns the context's done channel (nil — never ready — for the
// zero Env), for cheap polling inside hot shard loops.
func (e Env) Done() <-chan struct{} {
	if e.Ctx == nil {
		return nil
	}
	return e.Ctx.Done()
}

// ShardJob is one unit of exported shard work: everything an external
// executor needs to run the shard locally, ship it to a remote host, or
// decode a remotely computed result back into the engine's shard type.
// The (seed, shard) RNG derivation is baked into Run, so a shard computes
// the same bits no matter which host executes it.
type ShardJob struct {
	// Ctx is the engine run's context; executors that block (on a queue,
	// a network round trip, a semaphore) must honor it.
	Ctx context.Context
	// Tag identifies the engine run (Env.Tag), Shard this job's index in
	// [0, Shards). A remote replay must verify Shards matches before
	// trusting Shard to mean the same slice of work.
	Tag           string
	Shard, Shards int
	// Run computes the shard locally and returns its value (the engine's
	// shard type T).
	Run func() any
	// Encode serializes a value produced by Run for the wire; it fails
	// when the shard type is not serializable, which executors should
	// treat as "this shard must run on this host".
	Encode func(v any) ([]byte, error)
	// Decode reverses Encode into the engine's shard type.
	Decode func(b []byte) (any, error)
}

// ExecFunc executes one exported shard on behalf of the engine. It
// returns the shard's value (obtained from job.Run or job.Decode), or
// ErrShardSkipped to leave the shard uncomputed (the run then fails with
// ErrPartialRun so the holes can never be merged as results), or any
// other error to abort the run.
type ExecFunc func(job ShardJob) (any, error)

// ErrShardSkipped is returned by an ExecFunc to decline a shard without
// aborting the run — the selection mechanism of a replay harness that
// wants exactly one shard of a campaign.
var ErrShardSkipped = errors.New("mc: shard skipped by executor")

// ErrPartialRun reports that an executor skipped at least one shard: the
// output slice has holes and was withheld, so partial state can never be
// merged as a complete result.
var ErrPartialRun = errors.New("mc: executor skipped shards")

// Run executes fn for every shard in [0, shards) on a pool of workers and
// returns the per-shard results indexed by shard. Each shard receives an
// RNG derived deterministically from (seed, shard), so the result slice —
// and anything merged from it in shard order — is identical for every
// worker count, including workers == 1.
//
// fn must not share mutable state across shards; everything it needs
// should live in its closure or be allocated per call.
func Run[T any](workers, shards int, seed int64, fn func(shard int, rng *rand.Rand) T) []T {
	out, err := RunEnv(Env{}, workers, shards, seed, fn)
	if err != nil {
		// Unreachable: the zero Env's background context never cancels.
		panic(fmt.Sprintf("mc: background run failed: %v", err))
	}
	return out
}

// RunEnv is Run under an execution environment: the same deterministic
// sharded schedule — per-shard streams derived from (seed, shard), results
// in shard order, bit-identical for any worker count — plus cooperative
// cancellation and per-shard progress notification. When the environment's
// context is cancelled, workers stop claiming new shards, every in-flight
// shard is allowed to return (so no goroutine leaks), and RunEnv returns
// nil results with ctx.Err(). An uncancelled RunEnv returns exactly what
// Run would.
func RunEnv[T any](env Env, workers, shards int, seed int64, fn func(shard int, rng *rand.Rand) T) ([]T, error) {
	if shards < 0 {
		panic(fmt.Sprintf("mc: negative shard count %d", shards))
	}
	ctx := env.Context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if shards == 0 {
		return nil, nil
	}
	done := env.Done()
	out := make([]T, shards)
	var completed atomic.Int64
	var noteMu sync.Mutex
	note := func() {
		n := int(completed.Add(1))
		if env.OnShard != nil {
			noteMu.Lock()
			env.OnShard(n, shards)
			noteMu.Unlock()
		}
	}
	if env.Exec != nil {
		return runExec(env, ctx, shards, seed, fn, out, note)
	}
	w := Workers(workers)
	if w > shards {
		w = shards
	}
	if w == 1 {
		// Fast path: no goroutines, no atomics beyond the progress
		// counter. Bit-identical to the parallel path by construction
		// (same per-shard streams).
		for s := 0; s < shards; s++ {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
			out[s] = fn(s, stats.Derive(seed, int64(s)))
			note()
		}
		// A cancellation during the final shard must not surface as a
		// clean result: shard functions may have bailed out early with
		// partial output.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				out[s] = fn(s, stats.Derive(seed, int64(s)))
				note()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// runExec is the exported-shard execution path of RunEnv: every shard is
// handed to env.Exec as a ShardJob. One goroutine is spawned per shard —
// executors block on I/O (a remote round trip) or gate their own local
// compute, so lifting the claiming parallelism to the shard count keeps a
// remote fleet saturated without changing which values any shard yields.
func runExec[T any](env Env, ctx context.Context, shards int, seed int64,
	fn func(shard int, rng *rand.Rand) T, out []T, note func()) ([]T, error) {
	done := env.Done()
	var next, skipped atomic.Int64
	var failed atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	var wg sync.WaitGroup
	wg.Add(shards)
	for i := 0; i < shards; i++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				job := ShardJob{
					Ctx:    ctx,
					Tag:    env.Tag,
					Shard:  s,
					Shards: shards,
					Run:    func() any { return fn(s, stats.Derive(seed, int64(s))) },
					Encode: func(v any) ([]byte, error) {
						var buf bytes.Buffer
						if err := gob.NewEncoder(&buf).Encode(v); err != nil {
							return nil, fmt.Errorf("mc: encode shard %d of %q: %w", s, env.Tag, err)
						}
						return buf.Bytes(), nil
					},
					Decode: func(b []byte) (any, error) {
						var v T
						if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
							return nil, fmt.Errorf("mc: decode shard %d of %q: %w", s, env.Tag, err)
						}
						return v, nil
					},
				}
				v, err := env.Exec(job)
				switch {
				case err == nil:
					t, ok := v.(T)
					if !ok {
						fail(fmt.Errorf("mc: executor returned %T for shard %d of %q, want %T", v, s, env.Tag, t))
						return
					}
					out[s] = t
					note()
				case errors.Is(err, ErrShardSkipped):
					skipped.Add(1)
				default:
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if n := skipped.Load(); n > 0 {
		return nil, fmt.Errorf("%w: %d of %d", ErrPartialRun, n, shards)
	}
	return out, nil
}

// Span is a contiguous half-open range [Start, End) of global sample
// indices owned by one shard.
type Span struct{ Start, End int }

// Split partitions total samples into shards contiguous spans whose sizes
// differ by at most one. It returns fewer spans than requested when total
// < shards (every span non-empty). shards == 0 selects DefaultShards.
func Split(total, shards int) []Span {
	if total < 0 {
		panic(fmt.Sprintf("mc: negative total %d", total))
	}
	if shards == 0 {
		shards = DefaultShards
	}
	if shards < 0 {
		panic(fmt.Sprintf("mc: negative shard count %d", shards))
	}
	if shards > total {
		shards = total
	}
	spans := make([]Span, shards)
	for s := 0; s < shards; s++ {
		spans[s] = Span{Start: s * total / shards, End: (s + 1) * total / shards}
	}
	return spans
}
