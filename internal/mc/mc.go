// Package mc is the deterministic parallel Monte-Carlo engine shared by
// the experiment layer: work is split into a fixed number of shards, each
// shard draws from its own RNG stream derived from (seed, shard) via
// stats.Derive, and shard results are returned in shard order. Because
// the shard count and per-shard streams are independent of how many
// worker goroutines execute them, the merged output is bit-identical for
// any worker count — the property the Fig. 5 determinism regression test
// locks in.
package mc

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"faultmem/internal/stats"
)

// DefaultShards is the shard count used when a caller passes 0. It is a
// fixed constant — never derived from the worker count — so that results
// do not depend on the machine's parallelism. 64 shards keep every core
// of typical runners busy while bounding per-shard merge overhead.
const DefaultShards = 64

// Workers normalizes a worker-count parameter: n < 1 selects
// runtime.GOMAXPROCS(0), anything else passes through.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes fn for every shard in [0, shards) on a pool of workers and
// returns the per-shard results indexed by shard. Each shard receives an
// RNG derived deterministically from (seed, shard), so the result slice —
// and anything merged from it in shard order — is identical for every
// worker count, including workers == 1.
//
// fn must not share mutable state across shards; everything it needs
// should live in its closure or be allocated per call.
func Run[T any](workers, shards int, seed int64, fn func(shard int, rng *rand.Rand) T) []T {
	if shards < 0 {
		panic(fmt.Sprintf("mc: negative shard count %d", shards))
	}
	if shards == 0 {
		return nil
	}
	out := make([]T, shards)
	w := Workers(workers)
	if w > shards {
		w = shards
	}
	if w == 1 {
		// Fast path: no goroutines, no atomics. Bit-identical to the
		// parallel path by construction (same per-shard streams).
		for s := 0; s < shards; s++ {
			out[s] = fn(s, stats.Derive(seed, int64(s)))
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				out[s] = fn(s, stats.Derive(seed, int64(s)))
			}
		}()
	}
	wg.Wait()
	return out
}

// Span is a contiguous half-open range [Start, End) of global sample
// indices owned by one shard.
type Span struct{ Start, End int }

// Split partitions total samples into shards contiguous spans whose sizes
// differ by at most one. It returns fewer spans than requested when total
// < shards (every span non-empty). shards == 0 selects DefaultShards.
func Split(total, shards int) []Span {
	if total < 0 {
		panic(fmt.Sprintf("mc: negative total %d", total))
	}
	if shards == 0 {
		shards = DefaultShards
	}
	if shards < 0 {
		panic(fmt.Sprintf("mc: negative shard count %d", shards))
	}
	if shards > total {
		shards = total
	}
	spans := make([]Span, shards)
	for s := 0; s < shards; s++ {
		spans[s] = Span{Start: s * total / shards, End: (s + 1) * total / shards}
	}
	return spans
}
