package mc

import (
	"math/rand"
	"runtime"
	"testing"
)

func TestRunShardOrderAndDeterminism(t *testing.T) {
	// Each shard reports its first RNG draw; the result must be identical
	// for every worker count and indexed by shard.
	run := func(workers int) []float64 {
		return Run(workers, 32, 7, func(shard int, rng *rand.Rand) float64 {
			return float64(shard) + rng.Float64()
		})
	}
	ref := run(1)
	if len(ref) != 32 {
		t.Fatalf("got %d results", len(ref))
	}
	for i, v := range ref {
		if int(v) != i {
			t.Fatalf("result %d out of shard order: %g", i, v)
		}
	}
	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0), 100} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d shard %d: %g != %g", w, i, got[i], ref[i])
			}
		}
	}
}

func TestRunStreamsIndependent(t *testing.T) {
	// Different shards must draw from different streams.
	out := Run(1, 8, 1, func(_ int, rng *rand.Rand) float64 { return rng.Float64() })
	seen := map[float64]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate first draw %g across shards", v)
		}
		seen[v] = true
	}
}

func TestRunZeroShards(t *testing.T) {
	if out := Run[int](4, 0, 1, nil); out != nil {
		t.Fatalf("zero shards returned %v", out)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Error("non-positive workers should select GOMAXPROCS")
	}
	if Workers(5) != 5 {
		t.Error("positive workers should pass through")
	}
}

func TestSplitCoversEverySample(t *testing.T) {
	for _, tc := range []struct{ total, shards int }{
		{0, 64}, {1, 64}, {63, 64}, {64, 64}, {1000, 64}, {1000, 7}, {5, 0},
	} {
		spans := Split(tc.total, tc.shards)
		next := 0
		for _, sp := range spans {
			if sp.Start != next {
				t.Fatalf("total=%d shards=%d: gap at %d", tc.total, tc.shards, next)
			}
			if sp.End < sp.Start {
				t.Fatalf("negative span %+v", sp)
			}
			next = sp.End
		}
		if next != tc.total {
			t.Fatalf("total=%d shards=%d: covered %d", tc.total, tc.shards, next)
		}
		if tc.total > 0 && tc.total < 64 {
			for _, sp := range spans {
				if sp.End == sp.Start {
					t.Fatalf("empty span with total=%d", tc.total)
				}
			}
		}
	}
}
