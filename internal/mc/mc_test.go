package mc

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunShardOrderAndDeterminism(t *testing.T) {
	// Each shard reports its first RNG draw; the result must be identical
	// for every worker count and indexed by shard.
	run := func(workers int) []float64 {
		return Run(workers, 32, 7, func(shard int, rng *rand.Rand) float64 {
			return float64(shard) + rng.Float64()
		})
	}
	ref := run(1)
	if len(ref) != 32 {
		t.Fatalf("got %d results", len(ref))
	}
	for i, v := range ref {
		if int(v) != i {
			t.Fatalf("result %d out of shard order: %g", i, v)
		}
	}
	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0), 100} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d shard %d: %g != %g", w, i, got[i], ref[i])
			}
		}
	}
}

func TestRunStreamsIndependent(t *testing.T) {
	// Different shards must draw from different streams.
	out := Run(1, 8, 1, func(_ int, rng *rand.Rand) float64 { return rng.Float64() })
	seen := map[float64]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate first draw %g across shards", v)
		}
		seen[v] = true
	}
}

func TestRunZeroShards(t *testing.T) {
	if out := Run[int](4, 0, 1, nil); out != nil {
		t.Fatalf("zero shards returned %v", out)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Error("non-positive workers should select GOMAXPROCS")
	}
	if Workers(5) != 5 {
		t.Error("positive workers should pass through")
	}
}

func TestSplitCoversEverySample(t *testing.T) {
	for _, tc := range []struct{ total, shards int }{
		{0, 64}, {1, 64}, {63, 64}, {64, 64}, {1000, 64}, {1000, 7}, {5, 0},
	} {
		spans := Split(tc.total, tc.shards)
		next := 0
		for _, sp := range spans {
			if sp.Start != next {
				t.Fatalf("total=%d shards=%d: gap at %d", tc.total, tc.shards, next)
			}
			if sp.End < sp.Start {
				t.Fatalf("negative span %+v", sp)
			}
			next = sp.End
		}
		if next != tc.total {
			t.Fatalf("total=%d shards=%d: covered %d", tc.total, tc.shards, next)
		}
		if tc.total > 0 && tc.total < 64 {
			for _, sp := range spans {
				if sp.End == sp.Start {
					t.Fatalf("empty span with total=%d", tc.total)
				}
			}
		}
	}
}

func TestRunEnvMatchesRun(t *testing.T) {
	// The zero Env must reproduce Run bit-for-bit: same shard streams,
	// same shard order, nil error.
	fn := func(shard int, rng *rand.Rand) float64 { return float64(shard) + rng.Float64() }
	want := Run(3, 32, 11, fn)
	got, err := RunEnv(Env{}, 3, 32, 11, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard %d: RunEnv %g != Run %g", i, got[i], want[i])
		}
	}
}

func TestRunEnvCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	out, err := RunEnv(Env{Ctx: ctx}, 4, 16, 1, func(int, *rand.Rand) int {
		calls.Add(1)
		return 0
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("cancelled run returned results: %v", out)
	}
	if calls.Load() != 0 {
		t.Fatalf("cancelled run executed %d shards", calls.Load())
	}
}

func TestRunEnvCancelMidRunNoLeak(t *testing.T) {
	// Cancel from the progress callback after the first completed shard:
	// the run must return ctx.Err() promptly — long before all shards
	// could have executed — and every worker goroutine must exit.
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int64
	const shards = 1024
	env := Env{Ctx: ctx, OnShard: func(done, total int) {
		if done == 1 {
			cancel()
		}
	}}
	_, err := RunEnv(env, 2, shards, 1, func(int, *rand.Rand) int {
		executed.Add(1)
		time.Sleep(time.Millisecond)
		return 0
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// With 2 workers and cancellation after the first completion, only the
	// shards already claimed may finish — nowhere near the full 1024.
	if n := executed.Load(); n >= shards/2 {
		t.Fatalf("cancel was not prompt: %d of %d shards ran", n, shards)
	}
	// Workers must be gone (RunEnv waits on them before returning), so the
	// goroutine count settles back to the baseline.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= base {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunEnvProgress(t *testing.T) {
	var events [][2]int
	env := Env{OnShard: func(done, total int) { events = append(events, [2]int{done, total}) }}
	if _, err := RunEnv(env, 4, 32, 1, func(int, *rand.Rand) int { return 0 }); err != nil {
		t.Fatal(err)
	}
	if len(events) != 32 {
		t.Fatalf("%d progress events, want 32", len(events))
	}
	for i, e := range events {
		if e[0] != i+1 || e[1] != 32 {
			t.Fatalf("event %d = %v, want [%d 32]", i, e, i+1)
		}
	}
}
