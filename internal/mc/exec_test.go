package mc

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// execShard is a representative shard value: a struct with exported
// fields, so the job's gob Encode/Decode thunks can round-trip it.
type execShard struct {
	Shard int
	Sum   float64
}

func execFn(shard int, rng *rand.Rand) execShard {
	s := execShard{Shard: shard}
	for i := 0; i < 100; i++ {
		s.Sum += rng.Float64()
	}
	return s
}

// TestExecLocalPassthroughIsBitIdentical: an executor that runs every
// shard through Run (the coordinator's local-fallback path) must yield
// exactly what the plain engine yields.
func TestExecLocalPassthroughIsBitIdentical(t *testing.T) {
	want := Run(4, 16, 42, execFn)
	env := Env{Tag: "t", Exec: func(job ShardJob) (any, error) { return job.Run(), nil }}
	got, err := RunEnv(env, 4, 16, 42, execFn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("executor passthrough diverged from plain Run")
	}
}

// TestExecEncodeDecodeRoundTrip: routing every shard through the wire
// codec (Encode then Decode, the remote path without a network) must be
// bit-identical to the plain engine.
func TestExecEncodeDecodeRoundTrip(t *testing.T) {
	want := Run(4, 16, 42, execFn)
	env := Env{Tag: "t", Exec: func(job ShardJob) (any, error) {
		b, err := job.Encode(job.Run())
		if err != nil {
			return nil, err
		}
		return job.Decode(b)
	}}
	got, err := RunEnv(env, 4, 16, 42, execFn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("wire round trip diverged from plain Run")
	}
}

// TestExecJobMetadata: every job must carry the run's tag, a unique shard
// index, and the total shard count.
func TestExecJobMetadata(t *testing.T) {
	seen := make([]int32, 8)
	env := Env{Tag: "fig5", Exec: func(job ShardJob) (any, error) {
		if job.Tag != "fig5" || job.Shards != 8 || job.Shard < 0 || job.Shard >= 8 {
			t.Errorf("bad job metadata: %+v", job)
		}
		atomic.AddInt32(&seen[job.Shard], 1)
		return job.Run(), nil
	}}
	if _, err := RunEnv(env, 2, 8, 1, execFn); err != nil {
		t.Fatal(err)
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("shard %d executed %d times, want 1", s, n)
		}
	}
}

// TestExecSkipReturnsPartialRun: an executor that declines shards leaves
// holes, and the engine must refuse to hand back the partial slice.
func TestExecSkipReturnsPartialRun(t *testing.T) {
	var captured atomic.Int32
	env := Env{Exec: func(job ShardJob) (any, error) {
		if job.Shard != 3 {
			return nil, ErrShardSkipped
		}
		captured.Add(1)
		return job.Run(), nil
	}}
	out, err := RunEnv(env, 4, 8, 1, execFn)
	if !errors.Is(err, ErrPartialRun) {
		t.Fatalf("err = %v, want ErrPartialRun", err)
	}
	if out != nil {
		t.Fatal("partial run returned a result slice")
	}
	if captured.Load() != 1 {
		t.Fatalf("selected shard executed %d times, want 1", captured.Load())
	}
}

// TestExecErrorAbortsRun: a non-skip executor error must fail the run and
// stop further claims.
func TestExecErrorAbortsRun(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	env := Env{Exec: func(job ShardJob) (any, error) {
		calls.Add(1)
		return nil, boom
	}}
	if _, err := RunEnv(env, 1, 64, 1, execFn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// 64 goroutines race one claim each at worst; the abort must prevent
	// a second round of claims per goroutine.
	if calls.Load() > 64 {
		t.Fatalf("%d executor calls after abort, want <= 64", calls.Load())
	}
}

// TestExecWrongTypeFails: an executor returning the wrong dynamic type is
// a run failure, not a panic.
func TestExecWrongTypeFails(t *testing.T) {
	env := Env{Exec: func(job ShardJob) (any, error) { return "nope", nil }}
	if _, err := RunEnv(env, 1, 4, 1, execFn); err == nil {
		t.Fatal("wrong-typed executor result was accepted")
	}
}

// TestExecHonorsCancellation: a blocked executor must not wedge the run
// when the context dies.
func TestExecHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	env := Env{Ctx: ctx, Exec: func(job ShardJob) (any, error) {
		<-job.Ctx.Done()
		return nil, job.Ctx.Err()
	}}
	go cancel()
	if _, err := RunEnv(env, 1, 8, 1, execFn); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExecProgressCountsComputedShards: OnShard fires for executor-backed
// shards exactly as for local ones.
func TestExecProgressCountsComputedShards(t *testing.T) {
	var last atomic.Int32
	env := Env{
		OnShard: func(done, total int) { last.Store(int32(done)) },
		Exec:    func(job ShardJob) (any, error) { return job.Run(), nil },
	}
	if _, err := RunEnv(env, 2, 16, 1, execFn); err != nil {
		t.Fatal(err)
	}
	if last.Load() != 16 {
		t.Fatalf("last progress = %d, want 16", last.Load())
	}
}
