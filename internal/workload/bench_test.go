package workload_test

import (
	"testing"

	"faultmem/internal/exp"
	"faultmem/internal/stats"
	"faultmem/internal/workload"
)

// BenchmarkWorkloadTrial measures one warm Monte-Carlo trial per
// registered workload — fault map plus all eight protection arms
// (round-trip + run + score), the unit the workloads campaign's Trials
// budget scales by. CI records it via benchreport -filter.
func BenchmarkWorkloadTrial(b *testing.B) {
	prots := exp.AllProtections()
	arms := make([]workload.Arm, len(prots))
	for i, p := range prots {
		arms[i] = p
	}
	for _, id := range workload.All() {
		b.Run(id.String(), func(b *testing.B) {
			wl, err := id.Workload()
			if err != nil {
				b.Fatal(err)
			}
			inst, err := wl.Prepare(workload.Params{Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			runner := workload.NewTrialRunner(inst, workload.Config{
				Name:  id.String(),
				Rows:  4096,
				Pcell: 1e-3,
				Arms:  arms,
			})
			seedBase := stats.DeriveSeed(7, 1000)
			var buf []float64
			if buf, err = runner.RunTrial(seedBase, 0, buf[:0]); err != nil {
				b.Fatal(err) // warm every arm's scratch before timing
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if buf, err = runner.RunTrial(seedBase, i+1, buf[:0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecoveryTrial measures one warm cgsolve trial across all
// eight arms per recovery policy, with soft errors enabled so the
// detect-and-recover machinery actually engages — the overhead of the
// checked round trips over the plain cached baseline ("none"). CI
// records it via benchreport -filter.
func BenchmarkRecoveryTrial(b *testing.B) {
	prots := exp.AllProtections()
	arms := make([]workload.Arm, len(prots))
	for i, p := range prots {
		arms[i] = p
	}
	wl, err := workload.CGSolve.Workload()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := wl.Prepare(workload.Params{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range workload.AllPolicies() {
		b.Run(kind.String(), func(b *testing.B) {
			runner := workload.NewTrialRunner(inst, workload.Config{
				Name:          "cgsolve",
				Rows:          4096,
				Pcell:         1e-3,
				Arms:          arms,
				Policy:        workload.RecoveryPolicy{Kind: kind, SafeWords: 256},
				TransientRate: 1e-4,
			})
			seedBase := stats.DeriveSeed(7, 1000)
			var buf []float64
			if buf, err = runner.RunTrial(seedBase, 0, buf[:0]); err != nil {
				b.Fatal(err) // warm every arm's scratch before timing
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if buf, err = runner.RunTrial(seedBase, i+1, buf[:0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
