package workload

import (
	"testing"

	"faultmem/internal/fault"
	"faultmem/internal/mem"
)

// eccWithDoubleFault builds a SECDED memory with an uncorrectable
// double fault (two data-geometry flips) in each listed row.
func eccWithDoubleFault(t *testing.T, rows int, faultRows ...int) mem.Word32 {
	t.Helper()
	var fm fault.Map
	for _, r := range faultRows {
		fm = append(fm, fault.Fault{Row: r, Col: 3, Kind: fault.Flip})
		fm = append(fm, fault.Fault{Row: r, Col: 9, Kind: fault.Flip})
	}
	m, err := mem.NewECC(rows, fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func prepareCGRestart(t *testing.T, p Params) Instance {
	t.Helper()
	wl, err := CGRestart.Workload()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := wl.Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestCGRestartPrepareValidation pins the parameter contract.
func TestCGRestartPrepareValidation(t *testing.T) {
	wl, err := CGRestart.Workload()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{
		{Seed: 7, Dim: 1},
		{Seed: 7, Dim: 16, Iters: -1},
		{Seed: 7, Dim: 16, Checkpoint: -1},
	} {
		if _, err := wl.Prepare(p); err == nil {
			t.Errorf("Prepare(%+v) accepted invalid params", p)
		}
	}
	inst := prepareCGRestart(t, Params{Seed: 7, Dim: 16})
	if c := inst.Clean(); !(c < 1) {
		t.Errorf("fault-free reference residual %v, want < 1", c)
	}
	if inst.Metric() == "" {
		t.Error("no metric")
	}
}

// TestCGRestartNoFaultDetectorTrialPerfect runs the guarded solver
// against a fault-free SECDED memory: the checksums and DUE flags stay
// quiet, the iterates land on the same fixed-point grid as the
// reference, and the trial scores exactly 1.
func TestCGRestartNoFaultDetectorTrialPerfect(t *testing.T) {
	inst := prepareCGRestart(t, Params{Seed: 7, Dim: 16})
	ws := testWorkspace()
	inst.StoreOn(&ws)
	ws.Mem = eccWithDoubleFault(t, 512) // no fault rows: clean SECDED
	q, err := inst.RunTrial(&ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q != 1 {
		t.Errorf("no-fault guarded trial quality %v, want exactly 1", q)
	}
}

// TestCGRestartRollbackBeatsDegradation is the workload's reason to
// exist: on a die whose iterate window holds an uncorrectable double
// fault, the rollback-and-relocate policy must end closer to the
// fault-free answer than the same solver with its restart budget
// disabled (which trips once, switches the guards off, and absorbs the
// corruption every remaining iteration).
func TestCGRestartRollbackBeatsDegradation(t *testing.T) {
	const rows = 512
	// Row 10 sits inside the first 3-vector window (dim 16 -> rows 0-47),
	// so every store/load cycle of x trips until the window relocates.
	guarded := prepareCGRestart(t, Params{Seed: 7, Dim: 16})
	degraded := prepareCGRestart(t, Params{Seed: 7, Dim: 16, Restarts: -1})

	run := func(inst Instance) float64 {
		ws := testWorkspace()
		inst.StoreOn(&ws)
		ws.Mem = eccWithDoubleFault(t, rows, 10)
		q, err := inst.RunTrial(&ws, nil)
		if err != nil {
			t.Fatal(err)
		}
		if q < 0 || q > 1 {
			t.Fatalf("quality %v outside [0, 1]", q)
		}
		return q
	}
	qG, qD := run(guarded), run(degraded)
	if qG <= qD {
		t.Errorf("rollback quality %v not better than degraded %v", qG, qD)
	}
}

// TestNextWindowWalk pins the relocation arithmetic: windows advance in
// 3*dim strides and wrap to the macro base instead of overflowing.
func TestNextWindowWalk(t *testing.T) {
	const d = 16
	if got := nextWindow(0, 96, d); got != 48 {
		t.Errorf("nextWindow(0, 96) = %d, want 48", got)
	}
	if got := nextWindow(48, 96, d); got != 0 {
		t.Errorf("nextWindow(48, 96) = %d, want wrap to 0", got)
	}
	off := 0
	for i := 0; i < 64; i++ {
		off = nextWindow(off, 512, d)
		if off < 0 || off+3*d > 512 {
			t.Fatalf("window %d overflows: off %d", i, off)
		}
	}
}

// TestCheckedTripPoliciesKeepNoFaultPerfect pins the acceptance
// criterion on the workspace dispatch: with an active recovery policy
// (checked round trips) and a fault-free detecting memory, every
// deterministic workload still scores exactly 1.0.
func TestCheckedTripPoliciesKeepNoFaultPerfect(t *testing.T) {
	for _, kind := range []PolicyKind{PolicyRetry, PolicySafeRestore} {
		for _, id := range []ID{RSort, CGSolve, CGRestart} {
			wl, err := id.Workload()
			if err != nil {
				t.Fatal(err)
			}
			inst, err := wl.Prepare(Params{Seed: 7, Keys: 512, Dim: 24})
			if err != nil {
				t.Fatalf("%v: prepare: %v", id, err)
			}
			ws := testWorkspace()
			inst.StoreOn(&ws)
			ws.Mem = eccWithDoubleFault(t, 256)
			rec := RecoveryPolicy{Kind: kind}.recovery()
			rec.ResetTrial()
			ws.Recovery = &rec
			q, err := inst.RunTrial(&ws, nil)
			if err != nil {
				t.Fatalf("%v/%v: trial: %v", kind, id, err)
			}
			if q != 1 {
				t.Errorf("%v/%v: no-fault checked trial quality %v, want exactly 1", kind, id, q)
			}
			if rec.Stats.Flagged != 0 {
				t.Errorf("%v/%v: fault-free memory flagged %d words", kind, id, rec.Stats.Flagged)
			}
		}
	}
}

// TestRetryPolicyRecoversTransientTrialExactly drives the full
// TrialRunner path: under soft errors on a clean SECDED die, the retry
// policy recovers flagged words and the per-arm counters surface
// through RecoveryStats.
func TestRetryPolicyRecoversTransientTrialExactly(t *testing.T) {
	inst := prepareCGRestart(t, Params{Seed: 7, Dim: 16})
	runner := NewTrialRunner(inst, Config{
		Name:          "cgrestart",
		Rows:          512,
		Pcell:         1e-6, // tiny persistent load; transient dominates
		Arms:          []Arm{eccArm{}},
		Policy:        RecoveryPolicy{Kind: PolicyRetry, Retries: 8},
		TransientRate: 2e-3,
	})
	var qs []float64
	for trial := 0; trial < 4; trial++ {
		var err error
		if qs, err = runner.RunTrial(7, trial, qs); err != nil {
			t.Fatal(err)
		}
	}
	st := runner.RecoveryStats()
	if len(st) != 1 {
		t.Fatalf("RecoveryStats length %d", len(st))
	}
	if st[0].Flagged == 0 {
		t.Fatal("soft errors at 2e-3 flagged nothing — the test exercises no recovery")
	}
	if st[0].Recovered == 0 {
		t.Error("retry policy recovered nothing")
	}
	if st[0].Retries < st[0].Recovered {
		t.Errorf("counters inconsistent: %+v", st[0])
	}
}

// eccArm adapts mem.NewECC to the Arm interface without importing the
// exp package (which would cycle).
type eccArm struct{}

func (eccArm) String() string { return "ECC" }
func (eccArm) Build(rows int, fm fault.Map) (mem.Word32, error) {
	return mem.NewECC(rows, fm, nil)
}
