package workload

import (
	"fmt"
	"math"
	"math/rand"

	"faultmem/internal/memstore"
	"faultmem/internal/stats"
)

// Default CG geometry: a 64x64 SPD system solved with a 64-iteration
// budget (exact-arithmetic CG converges in at most Dim steps).
const defaultCGDim = 64

// cgWorkload is a selective-reliability conjugate-gradient solve
// (Bridges et al.): the system coefficients — the SPD matrix A and the
// right-hand side b — live in the faulty memory, while the solver's
// dynamic state (the solution x, residual r, and direction vectors)
// stays in safe memory. The trial runs a fixed CG iteration budget
// against the corrupted coefficients and is judged by the relative
// residual of its solution under the CLEAN system, so a corrupted
// coefficient hurts exactly as much as it steers the iteration away
// from the true solution. Quality maps the residual onto [0, 1] on a
// log scale: 1 at the fault-free converged residual, 0 at relative
// residual 1 (the zero-vector baseline) or any non-finite breakdown.
type cgWorkload struct{}

func (cgWorkload) Name() string   { return "cgsolve" }
func (cgWorkload) Metric() string { return "Relative Residual" }

// cgInstance is read-only after Prepare: the clean flattened system
// [A row-major | b], its geometry, and the fault-free reference
// residual.
type cgInstance struct {
	flat  []float64 // codec-exact A (dim*dim) then b (dim)
	dim   int
	iters int
	res0  float64 // fault-free relative residual after iters steps
	normB float64
}

// cgScratch is the per-shard safe-memory working set.
type cgScratch struct {
	x, r, p, ap []float64
}

func (w cgWorkload) Prepare(p Params) (Instance, error) {
	dim := p.Dim
	if dim == 0 {
		dim = defaultCGDim
	}
	if dim < 2 {
		return nil, fmt.Errorf("workload: cgsolve needs dimension >= 2, got %d", dim)
	}
	iters := p.Iters
	if iters == 0 {
		iters = dim
	}
	if iters < 1 {
		return nil, fmt.Errorf("workload: cgsolve needs at least 1 iteration, got %d", iters)
	}
	inst := &cgInstance{flat: make([]float64, dim*dim+dim), dim: dim, iters: iters}
	rng := stats.Derive(p.Seed, 78)
	inst.normB = genCGSystem(rng, dim, inst.flat)
	if inst.normB == 0 {
		return nil, fmt.Errorf("workload: cgsolve zero right-hand side")
	}

	// Fault-free reference: CG on the clean coefficients.
	s := &cgScratch{}
	x := runCG(s, inst.flat[:dim*dim], inst.flat[dim*dim:], dim, iters)
	inst.res0 = inst.relResidual(x)
	if !(inst.res0 < 1) {
		return nil, fmt.Errorf("workload: fault-free CG did not converge (relative residual %g)", inst.res0)
	}
	return inst, nil
}

func (inst *cgInstance) Metric() string { return "Relative Residual" }
func (inst *cgInstance) Clean() float64 { return inst.res0 }

func (inst *cgInstance) StoreOn(ws *Workspace) {
	ws.Codec.EncodeValuesInto(&ws.Store, inst.flat)
}

func (inst *cgInstance) RunTrial(ws *Workspace, _ *rand.Rand) (float64, error) {
	vals := ws.TripValues()
	if len(vals) != len(inst.flat) {
		return 0, fmt.Errorf("workload: cgsolve round trip returned %d values for %d coefficients", len(vals), len(inst.flat))
	}
	s, ok := ws.Scratch.(*cgScratch)
	if !ok {
		s = &cgScratch{}
		ws.Scratch = s
	}
	d := inst.dim
	// Iterate against the corrupted coefficients (persistent faults:
	// every read of a cell sees the same corruption, so one snapshot per
	// trial is exact), judge against the clean system.
	x := runCG(s, vals[:d*d], vals[d*d:], d, inst.iters)
	return qualityFromResidual(inst.relResidual(x), inst.res0), nil
}

// genCGSystem fills flat = [A row-major | b] with a codec-snapped SPD
// system drawn from rng and returns ||b||. A = M^T M / dim + I has a
// decent condition number; every coefficient is snapped to the
// fixed-point grid so a fault-free round trip is bit-identical and the
// no-fault trial scores exactly 1.0. (Quantization breaks exact
// symmetry ties never — Encode is a pure function of the value and A
// was symmetric before snapping — so the stored A stays SPD for CG's
// purposes.)
func genCGSystem(rng *rand.Rand, dim int, flat []float64) float64 {
	codec := memstore.DefaultCodec()
	m := make([]float64, dim*dim)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	a := flat[:dim*dim]
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			s := 0.0
			for k := 0; k < dim; k++ {
				s += m[k*dim+i] * m[k*dim+j]
			}
			s /= float64(dim)
			if i == j {
				s++
			}
			a[i*dim+j] = codec.Decode(codec.Encode(s))
		}
	}
	b := flat[dim*dim:]
	for i := range b {
		b[i] = codec.Decode(codec.Encode(rng.NormFloat64() * 10))
	}
	return norm2(b)
}

// qualityFromResidual maps a trial's clean-system relative residual onto
// [0, 1]: 1 at (or below) the fault-free reference residual res0, 0 at
// relative residual 1 (the zero-vector baseline) or any non-finite
// breakdown, log-scale interpolation between.
func qualityFromResidual(res, res0 float64) float64 {
	switch {
	case !(res >= 0) || math.IsInf(res, 0): // NaN or +Inf: solver breakdown
		return 0
	case res <= res0:
		return 1
	case res >= 1:
		return 0
	default:
		return math.Log(res) / math.Log(res0)
	}
}

// relResidual returns ||b - A x|| / ||b|| under the CLEAN system.
func (inst *cgInstance) relResidual(x []float64) float64 {
	return cleanRelResidual(inst.flat, inst.dim, inst.normB, x)
}

// cleanRelResidual returns ||b - A x|| / ||b|| for the clean flattened
// system [A row-major | b] — the judging metric both CG workloads share.
func cleanRelResidual(flat []float64, dim int, normB float64, x []float64) float64 {
	a, b := flat[:dim*dim], flat[dim*dim:]
	var ss float64
	for i := 0; i < dim; i++ {
		ri := b[i]
		row := a[i*dim : (i+1)*dim]
		for j, v := range row {
			ri -= v * x[j]
		}
		ss += ri * ri
	}
	return math.Sqrt(ss) / normB
}

// runCG runs the conjugate-gradient iteration x_0 = 0 on the (possibly
// corrupted) system, reusing the scratch vectors, and returns s.x. It
// stops early only on exact or non-finite residual breakdown; the
// returned x is whatever the iteration reached.
func runCG(s *cgScratch, a, b []float64, dim, iters int) []float64 {
	if cap(s.x) < dim {
		s.x = make([]float64, dim)
		s.r = make([]float64, dim)
		s.p = make([]float64, dim)
		s.ap = make([]float64, dim)
	}
	x, r, p, ap := s.x[:dim], s.r[:dim], s.p[:dim], s.ap[:dim]
	for i := range x {
		x[i] = 0
		r[i] = b[i]
		p[i] = b[i]
	}
	rs := dot(r, r)
	for it := 0; it < iters; it++ {
		if rs == 0 || !isFinite(rs) {
			break
		}
		// ap = A p
		for i := 0; i < dim; i++ {
			row := a[i*dim : (i+1)*dim]
			s := 0.0
			for j, v := range row {
				s += v * p[j]
			}
			ap[i] = s
		}
		pap := dot(p, ap)
		if pap == 0 || !isFinite(pap) {
			break
		}
		alpha := rs / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func norm2(v []float64) float64 { return math.Sqrt(dot(v, v)) }

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
