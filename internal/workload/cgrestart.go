package workload

import (
	"fmt"
	"math/rand"

	"faultmem/internal/mem"
	"faultmem/internal/memstore"
	"faultmem/internal/stats"
)

// Default cgrestart control geometry: checkpoint the solution every 8
// healthy iterations and allow 8 rollback-restarts before the guards
// give up and the solver degrades to absorbing corruption.
const (
	defaultCGCheckpoint = 8
	defaultCGRestarts   = 8
)

// cgrestartWorkload is the checksum-guarded restarted variant of the CG
// solve: unlike cgsolve (which keeps the iterate vectors in safe
// memory), here the solver's dynamic state — x, r, and p — is parked in
// the unreliable memory after every iteration and read back before the
// next one, so iterate corruption compounds unless it is caught. The
// safe memory holds only O(1) guard state per vector (an exact
// element-sum checksum) plus one checkpoint copy of x. A trip — a DUE
// flag from a detecting arm, or a checksum mismatch on read-back, or an
// alpha/beta breakdown — rolls the solver back to the last checkpoint,
// relocates the vector window to fresh rows, and restarts the
// iteration; after the restart budget is exhausted the guards switch
// off and the solver runs open-loop on whatever the memory returns.
// Quality is judged exactly like cgsolve: the clean-system relative
// residual of the final x, log-mapped onto [0, 1] against the
// fault-free reference.
type cgrestartWorkload struct{}

func (cgrestartWorkload) Name() string   { return "cgrestart" }
func (cgrestartWorkload) Metric() string { return "Relative Residual" }

// cgrestartInstance is read-only after Prepare: the clean flattened
// system [A row-major | b], the control-loop geometry, and the
// fault-free reference residual.
type cgrestartInstance struct {
	flat       []float64 // codec-exact A (dim*dim) then b (dim)
	dim        int
	iters      int
	checkpoint int
	restarts   int
	res0       float64 // fault-free relative residual after iters steps
	normB      float64
}

// cgrestartScratch is the per-shard safe-memory working set: the
// iterate vectors (transiently, between the store and the load of each
// step), the matrix-vector product, and the checkpoint copy of x.
type cgrestartScratch struct {
	x, r, p, ap, ck []float64
}

func (w cgrestartWorkload) Prepare(p Params) (Instance, error) {
	dim := p.Dim
	if dim == 0 {
		dim = defaultCGDim
	}
	if dim < 2 {
		return nil, fmt.Errorf("workload: cgrestart needs dimension >= 2, got %d", dim)
	}
	iters := p.Iters
	if iters == 0 {
		iters = dim
	}
	if iters < 1 {
		return nil, fmt.Errorf("workload: cgrestart needs at least 1 iteration, got %d", iters)
	}
	checkpoint := p.Checkpoint
	if checkpoint == 0 {
		checkpoint = defaultCGCheckpoint
	}
	if checkpoint < 1 {
		return nil, fmt.Errorf("workload: cgrestart needs checkpoint interval >= 1, got %d", checkpoint)
	}
	restarts := p.Restarts
	if restarts == 0 {
		restarts = defaultCGRestarts
	}
	if restarts < 0 {
		restarts = 0
	}
	inst := &cgrestartInstance{
		flat:       make([]float64, dim*dim+dim),
		dim:        dim,
		iters:      iters,
		checkpoint: checkpoint,
		restarts:   restarts,
	}
	rng := stats.Derive(p.Seed, 79)
	inst.normB = genCGSystem(rng, dim, inst.flat)
	if inst.normB == 0 {
		return nil, fmt.Errorf("workload: cgrestart zero right-hand side")
	}

	// Fault-free reference: the guarded iteration with no memory attached
	// runs the identical quantized recurrence (every iterate is snapped to
	// the fixed-point grid whether or not a memory holds it), so a trial
	// on a fault-free arm reproduces these iterates bit-for-bit and
	// scores exactly 1.0.
	s := &cgrestartScratch{}
	x := inst.runGuarded(s, inst.flat[:dim*dim], inst.flat[dim*dim:], nil, memstore.DefaultCodec())
	inst.res0 = cleanRelResidual(inst.flat, dim, inst.normB, x)
	if !(inst.res0 < 1) {
		return nil, fmt.Errorf("workload: fault-free guarded CG did not converge (relative residual %g)", inst.res0)
	}
	return inst, nil
}

func (inst *cgrestartInstance) Metric() string { return "Relative Residual" }
func (inst *cgrestartInstance) Clean() float64 { return inst.res0 }

func (inst *cgrestartInstance) StoreOn(ws *Workspace) {
	ws.Codec.EncodeValuesInto(&ws.Store, inst.flat)
}

func (inst *cgrestartInstance) RunTrial(ws *Workspace, _ *rand.Rand) (float64, error) {
	vals := ws.TripValues()
	if len(vals) != len(inst.flat) {
		return 0, fmt.Errorf("workload: cgrestart round trip returned %d values for %d coefficients", len(vals), len(inst.flat))
	}
	s, ok := ws.Scratch.(*cgrestartScratch)
	if !ok {
		s = &cgrestartScratch{}
		ws.Scratch = s
	}
	d := inst.dim
	// The coefficients take the fault toll once (the round trip above);
	// the iterate vectors take it every step via the guarded store/load
	// cycle against the live memory.
	x := inst.runGuarded(s, vals[:d*d], vals[d*d:], ws.Mem, ws.Codec)
	return qualityFromResidual(cleanRelResidual(inst.flat, d, inst.normB, x), inst.res0), nil
}

// runGuarded runs the checksum-guarded CG iteration on the (possibly
// corrupted) system [a | b], parking x/r/p in m after each step and
// reading them back before the next. m == nil runs the identical
// quantized recurrence with no storage — the fault-free reference. A
// memory too small for the 3-vector window (m.Words() < 3*dim) also
// degrades to safe-memory vectors: the guards have nothing to guard.
// Returns s.x.
func (inst *cgrestartInstance) runGuarded(s *cgrestartScratch, a, b []float64, m mem.Word32, codec memstore.Codec) []float64 {
	d := inst.dim
	if cap(s.x) < d {
		s.x = make([]float64, d)
		s.r = make([]float64, d)
		s.p = make([]float64, d)
		s.ap = make([]float64, d)
		s.ck = make([]float64, d)
	}
	x, r, p, ap, ck := s.x[:d], s.r[:d], s.p[:d], s.ap[:d], s.ck[:d]
	for i := range x {
		x[i] = 0
		r[i] = b[i]
		p[i] = b[i]
		ck[i] = 0
	}
	var det mem.Detector
	words, off := 0, 0
	if m != nil {
		words = m.Words()
		if words < 3*d {
			m = nil
		} else {
			det, _ = m.(mem.Detector)
		}
	}
	guards := m != nil
	restarts := 0
	ckStep := 0
	for step := 0; step < inst.iters; step++ {
		// rs is recomputed from the current (stored-and-loaded, hence
		// quantized) residual rather than carried across the iteration:
		// a carried scalar would be stale the moment quantization or a
		// rollback touches r.
		rs := dot(r, r)
		if rs == 0 || !isFinite(rs) {
			break
		}
		for i := 0; i < d; i++ {
			row := a[i*d : (i+1)*d]
			sum := 0.0
			for j, v := range row {
				sum += v * p[j]
			}
			ap[i] = sum
		}
		pap := dot(p, ap)
		if pap == 0 || !isFinite(pap) {
			// Breakdown of the step scalars is itself evidence of corrupted
			// iterate state: under guards it trips the rollback like any
			// checksum mismatch would.
			if guards && restarts < inst.restarts {
				restarts++
				off = nextWindow(off, words, d)
				inst.rollback(x, r, p, ck, a, b, codec)
				ckStep = step
				continue
			}
			break
		}
		alpha := rs / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		// Snap the iterates to the fixed-point grid: the value a
		// fault-free store-and-load returns. Keeping the reference run on
		// the same grid is what makes no-fault trials score exactly 1.0.
		quantVec(codec, x)
		quantVec(codec, r)
		quantVec(codec, p)
		if m == nil {
			continue
		}
		sx := storeVec(m, codec, off, x)
		sr := storeVec(m, codec, off+d, r)
		sp := storeVec(m, codec, off+2*d, p)
		gx, dx := loadVec(m, det, codec, off, x)
		gr, dr := loadVec(m, det, codec, off+d, r)
		gp, dp := loadVec(m, det, codec, off+2*d, p)
		if guards && (dx || dr || dp || gx != sx || gr != sr || gp != sp) {
			if restarts < inst.restarts {
				restarts++
				off = nextWindow(off, words, d)
				inst.rollback(x, r, p, ck, a, b, codec)
				ckStep = step
				continue
			}
			// Budget exhausted: graceful degradation. The guards switch
			// off and the iteration continues on the corrupted read-back
			// values — exactly what the unguarded selective-reliability
			// solver would do.
			guards = false
		}
		if guards && step-ckStep >= inst.checkpoint {
			copy(ck, x)
			ckStep = step
		}
	}
	return x
}

// rollback restores the solver to the last checkpoint: x from the safe
// copy, r recomputed as b - A x against the (corrupted) coefficient
// snapshot, p reset to r — a cold CG restart warm-started at the
// checkpointed solution. The recomputed vectors are grid-snapped like
// every other iterate.
func (inst *cgrestartInstance) rollback(x, r, p, ck, a, b []float64, codec memstore.Codec) {
	d := inst.dim
	copy(x, ck)
	for i := 0; i < d; i++ {
		row := a[i*d : (i+1)*d]
		sum := b[i]
		for j, v := range row {
			sum -= v * x[j]
		}
		r[i] = codec.Decode(codec.Encode(sum))
	}
	copy(p, r)
}

// nextWindow relocates the 3-vector window after a trip so the restart
// does not land on the same faulty rows, wrapping to the macro base
// when the next slot would overflow.
func nextWindow(off, words, d int) int {
	next := off + 3*d
	if next+3*d > words {
		next = 0
	}
	return next
}

// quantVec snaps v onto the fixed-point grid in place — the value a
// fault-free store-and-load of v returns.
func quantVec(codec memstore.Codec, v []float64) {
	for i, f := range v {
		v[i] = codec.Decode(codec.Encode(f))
	}
}

// storeVec writes v into m at off and returns the exact element sum of
// the values written — the safe-memory checksum the read-back is
// checked against. Both sums accumulate the same values in the same
// order, so a clean round trip matches bit-for-bit.
func storeVec(m mem.Word32, codec memstore.Codec, off int, v []float64) float64 {
	sum := 0.0
	for i, f := range v {
		m.Write(off+i, codec.Encode(f))
		sum += f
	}
	return sum
}

// loadVec reads v back from m at off, returning the element sum of the
// decoded values and whether any word raised a DUE flag (detecting arms
// only; det may be nil).
func loadVec(m mem.Word32, det mem.Detector, codec memstore.Codec, off int, v []float64) (sum float64, due bool) {
	for i := range v {
		var w uint32
		if det != nil {
			var flagged bool
			w, flagged = det.ReadChecked(off + i)
			due = due || flagged
		} else {
			w = m.Read(off + i)
		}
		v[i] = codec.Decode(w)
		sum += v[i]
	}
	return sum, due
}
