package workload

import (
	"faultmem/internal/dataset"
	"faultmem/internal/mat"
	"faultmem/internal/ml"
)

// knnWorkload is the activity-recognition classification benchmark
// (Fig. 7c): a 5-NN classifier refit per trial on the corrupted
// training set, scored by accuracy on the clean test split.
type knnWorkload struct{}

func (knnWorkload) Name() string   { return "knn" }
func (knnWorkload) Metric() string { return "Score" }

func (w knnWorkload) Prepare(p Params) (Instance, error) {
	ds := dataset.HAR(p.Seed, dataset.DefaultHAR())
	train, test := ds.Split(0.8, p.Seed+1)
	mi := &mlInstance{metric: w.Metric(), train: train, test: test}
	mi.evaluate = func(ws *ml.Workspace, x *mat.Dense, y []float64) (float64, error) {
		knn := ml.NewKNN(5)
		if err := knn.FitIn(ws, x, y); err != nil {
			return 0, err
		}
		return knn.ScoreIn(ws, test.X, test.Y), nil
	}
	if err := mi.finish(w.Name()); err != nil {
		return nil, err
	}
	return mi, nil
}
