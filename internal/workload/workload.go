// Package workload defines the error-resilient applications that run
// against faulty memories: a Workload prepares an immutable Instance
// (dataset or problem generation plus the fault-free reference), and
// the Instance executes Monte-Carlo trials against whatever protected
// memory the engine installs in its Workspace. The package owns the
// generic per-shard trial loop (TrialRunner) — per-arm memory reset,
// codeword-image caching, workspace reuse — so the warm-trial
// optimizations apply to every current and future workload, and adding
// an application means implementing two small interfaces instead of
// editing the Fig. 7 experiment.
package workload

import (
	"fmt"
	"math/rand"

	"faultmem/internal/fault"
	"faultmem/internal/mat"
	"faultmem/internal/mem"
	"faultmem/internal/memstore"
	"faultmem/internal/ml"
)

// Params configures instance preparation. One flat struct serves every
// workload; each reads only the knobs it understands, and zero values
// select the documented defaults.
type Params struct {
	// Seed drives dataset/problem generation and the train/test split.
	Seed int64
	// MadelonPaperSize switches the PCA workload to the full 500-feature
	// geometry (slow; default false uses 100 features).
	MadelonPaperSize bool
	// Keys is the resilient-sort key count (0 = 8192).
	Keys int
	// Dim is the CG system dimension (0 = 64).
	Dim int
	// Iters is the CG iteration budget (0 = Dim).
	Iters int
	// Checkpoint is the cgrestart checkpoint interval in iterations
	// (0 = 8).
	Checkpoint int
	// Restarts is the cgrestart rollback budget (0 = 8; negative
	// disables rollback, so the first trip switches the guards off and
	// the solver degrades to absorbing corruption).
	Restarts int
}

// Workload is one error-resilient application. Implementations are
// stateless descriptors; all per-run state lives in the Instance.
type Workload interface {
	// Name is the canonical lowercase identifier ("elasticnet", "rsort").
	Name() string
	// Metric names the quality metric before normalization ("R^2").
	Metric() string
	// Prepare generates the problem instance and its fault-free
	// reference. The returned Instance must be safe for concurrent use
	// from many shards: read-only after Prepare, with all mutable trial
	// scratch kept in the per-shard Workspace.
	Prepare(p Params) (Instance, error)
}

// Instance is a prepared problem ready to run trials against faulty
// memories. Instances are shared read-only across engine shards.
type Instance interface {
	// StoreOn quantizes the instance's memory-resident data into the
	// workspace's clean-word cache (once per shard); trials then pay only
	// the fault-dependent round-trip work.
	StoreOn(ws *Workspace)
	// RunTrial runs the application once against ws.Mem (installed by the
	// TrialRunner with the trial's fault map) and returns the normalized
	// quality in [0, 1], where 1 is fault-free behaviour. An error is a
	// programming error — never fault-induced — and aborts the shard.
	// rng is the trial's RNG stream, positioned after the engine's fault
	// draws; deterministic workloads ignore it.
	RunTrial(ws *Workspace, rng *rand.Rand) (quality float64, err error)
	// Metric names the quality metric before normalization.
	Metric() string
	// Clean is the fault-free reference value of the metric (quality 1.0).
	Clean() float64
}

// Workspace is the per-shard mutable state of a trial pipeline: the
// fixed-point codec, the clean-word/codeword-image cache, the ML fit
// scratch, and the memory under test. Instances needing scratch beyond
// these hang it off Scratch, keyed by their own type, so warm trials
// stay allocation-free without the Instance itself becoming mutable.
type Workspace struct {
	Codec memstore.Codec
	Store memstore.Workspace
	ML    ml.Workspace
	// Mem is the protected memory of the current (trial, arm), installed
	// by the TrialRunner before each RunTrial call.
	Mem mem.Word32
	// Recovery is the detect-and-recover state of the current (trial,
	// arm), installed by the TrialRunner alongside Mem; nil means
	// PolicyNone and selects the plain cached round trips (bit-identical
	// to the pre-recovery engine). Instances round-trip through the
	// TripValues/TripDataset helpers so every workload honors the policy
	// without knowing it exists.
	Recovery *memstore.Recovery
	// Scratch is instance-defined per-shard scratch (nil until the
	// instance's first trial on this workspace).
	Scratch any
}

// TripValues round-trips the cached flat values through Mem under the
// active recovery policy (the plain cached trip when none is set). The
// returned slice is workspace scratch with the usual aliasing rules.
func (ws *Workspace) TripValues() []float64 {
	if ws.Recovery != nil {
		return ws.Codec.RoundTripCheckedValues(&ws.Store, ws.Mem, ws.Recovery)
	}
	return ws.Codec.RoundTripCachedValues(&ws.Store, ws.Mem)
}

// TripDataset round-trips the cached dataset through Mem under the
// active recovery policy (see TripValues).
func (ws *Workspace) TripDataset() (*mat.Dense, []float64) {
	if ws.Recovery != nil {
		x, y, _ := ws.Codec.RoundTripCheckedInto(&ws.Store, ws.Mem, ws.Recovery)
		return x, y
	}
	return ws.Codec.RoundTripCachedInto(&ws.Store, ws.Mem)
}

// Arm is a buildable protection scheme. exp.Protection satisfies it;
// the indirection keeps this package free of an import cycle with the
// experiment layer.
type Arm interface {
	fmt.Stringer
	Build(rows int, fm fault.Map) (mem.Word32, error)
}

// ShardOut is one engine shard's result: the span's trial-major,
// arm-minor normalized qualities, the shard's per-arm recovery counters
// (empty under PolicyNone), plus any trial error as text. The fields
// are exported (and the error travels as a string) so the value
// gob-encodes: the sweep service ships workload shards to remote
// workers instead of degrading the stage to local compute via JobError
// tag-poisoning.
type ShardOut struct {
	Qs       []float64
	Recovery []memstore.RecoveryStats
	Err      string
}
