package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"faultmem/internal/memstore"
	"faultmem/internal/stats"
)

// defaultRSortKeys is the default key count: two 4096-word pages of the
// 16 KB macro, so the array experiences the fault map twice.
const defaultRSortKeys = 8192

// rsortWorkload is resilient merge sorting under memory faults in the
// small-safe-memory model (Kopelowitz & Talmon): the key array lives in
// the faulty memory, while the safe memory holds only the algorithm's
// control state — the index permutation and merge scratch, O(n) words
// of indices but zero key values. Every comparison reads the
// (possibly corrupted) key from unreliable storage, so a single faulty
// cell can misplace the keys of a whole merge run; protection arms that
// bound the error magnitude bound the displacement. Quality is the
// fraction of keys placed at their fault-free position.
type rsortWorkload struct{}

func (rsortWorkload) Name() string   { return "rsort" }
func (rsortWorkload) Metric() string { return "Correctly Placed Keys" }

// rsortInstance is read-only after Prepare: the clean keys and the
// position each key occupies in the fault-free sort.
type rsortInstance struct {
	keys  []float64 // clean keys, codec-exact (quantization round-trips bit-identically)
	place []int     // place[j] = fault-free sorted position of keys[j]
}

// rsortScratch is the per-shard safe-memory working set.
type rsortScratch struct {
	idx []int
	tmp []int
}

func (w rsortWorkload) Prepare(p Params) (Instance, error) {
	n := p.Keys
	if n == 0 {
		n = defaultRSortKeys
	}
	if n < 2 {
		return nil, fmt.Errorf("workload: rsort needs at least 2 keys, got %d", n)
	}
	inst := &rsortInstance{keys: make([]float64, n), place: make([]int, n)}
	rng := stats.Derive(p.Seed, 77)
	codec := memstore.DefaultCodec()
	for i := range inst.keys {
		// Snap each key to the fixed-point grid so storing it in a
		// fault-free memory reads back bit-identically: a no-fault trial
		// then scores exactly 1.0.
		inst.keys[i] = codec.Decode(codec.Encode(rng.Float64()*2000 - 1000))
	}
	// The fault-free placement, with index tie-break — the same total
	// order the trial sort uses, so equal keys cannot cost quality.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if inst.keys[ia] != inst.keys[ib] {
			return inst.keys[ia] < inst.keys[ib]
		}
		return ia < ib
	})
	for pos, j := range order {
		inst.place[j] = pos
	}
	return inst, nil
}

func (inst *rsortInstance) Metric() string { return "Correctly Placed Keys" }
func (inst *rsortInstance) Clean() float64 { return 1 }

func (inst *rsortInstance) StoreOn(ws *Workspace) {
	ws.Codec.EncodeValuesInto(&ws.Store, inst.keys)
}

func (inst *rsortInstance) RunTrial(ws *Workspace, _ *rand.Rand) (float64, error) {
	vals := ws.TripValues()
	s, ok := ws.Scratch.(*rsortScratch)
	if !ok {
		s = &rsortScratch{idx: make([]int, len(vals)), tmp: make([]int, len(vals))}
		ws.Scratch = s
	}
	if len(s.idx) != len(vals) {
		return 0, fmt.Errorf("workload: rsort scratch sized %d for %d keys", len(s.idx), len(vals))
	}
	mergeSortByValue(s.idx, s.tmp, vals)
	correct := 0
	for pos, j := range s.idx {
		if inst.place[j] == pos {
			correct++
		}
	}
	return float64(correct) / float64(len(vals)), nil
}

// mergeSortByValue bottom-up merge sorts the identity permutation into
// idx, ordering indices by vals (index tie-break), using tmp as the
// merge buffer. Allocation-free on warm buffers.
func mergeSortByValue(idx, tmp []int, vals []float64) {
	n := len(vals)
	for i := range idx[:n] {
		idx[i] = i
	}
	src, dst := idx[:n], tmp[:n]
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			i, j := lo, mid
			for k := lo; k < hi; k++ {
				switch {
				case i >= mid:
					dst[k] = src[j]
					j++
				case j >= hi:
					dst[k] = src[i]
					i++
				case less(vals, src[j], src[i]):
					dst[k] = src[j]
					j++
				default:
					dst[k] = src[i]
					i++
				}
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &idx[0] {
		copy(idx[:n], src)
	}
}

// less orders indices a-before-b by value with index tie-break: the
// unique total order both the trial sort and the fault-free placement
// use.
func less(vals []float64, a, b int) bool {
	if vals[a] != vals[b] {
		return vals[a] < vals[b]
	}
	return a < b
}
