package workload

import "fmt"

// ID is the typed workload identifier — the registry currency shared by
// the experiment layer, the CLIs, and the public facade, mirroring
// yield.SchemeID. The first three values coincide with the historical
// exp.App enum so existing fig7 JSON params keep their meaning.
type ID int

const (
	// ElasticNet is the wine-quality regression benchmark (Fig. 7a).
	ElasticNet ID = iota
	// PCA is the Madelon dimensionality-reduction benchmark (Fig. 7b).
	PCA
	// KNN is the activity-recognition classification benchmark (Fig. 7c).
	KNN
	// RSort is resilient merge sorting with a small safe-memory budget
	// (Kopelowitz & Talmon): keys live in faulty memory, only the index
	// permutation is safe.
	RSort
	// CGSolve is a selective-reliability conjugate-gradient solve
	// (Bridges et al.): system coefficients live in faulty memory, the
	// solution and direction vectors stay in safe memory.
	CGSolve
	// CGRestart is the checksum-guarded restarted CG solve: the iterate
	// vectors also live in faulty memory, guarded by safe-memory
	// checksums and periodic checkpoints with bounded rollback-restarts.
	CGRestart

	numWorkloads = iota
)

// registry maps each ID to its stateless descriptor; indexed by ID.
var registry = [numWorkloads]Workload{
	ElasticNet: elasticNetWorkload{},
	PCA:        pcaWorkload{},
	KNN:        knnWorkload{},
	RSort:      rsortWorkload{},
	CGSolve:    cgWorkload{},
	CGRestart:  cgrestartWorkload{},
}

// Valid reports whether id names a registered workload.
func (id ID) Valid() bool { return id >= 0 && id < numWorkloads }

// Workload returns the registered descriptor.
func (id ID) Workload() (Workload, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("workload: invalid id %d", int(id))
	}
	return registry[id], nil
}

// String returns the canonical lowercase name.
func (id ID) String() string {
	if !id.Valid() {
		return fmt.Sprintf("workload(%d)", int(id))
	}
	return registry[id].Name()
}

// Metric returns the workload's quality-metric name ("?" for invalid
// ids).
func (id ID) Metric() string {
	if !id.Valid() {
		return "?"
	}
	return registry[id].Metric()
}

// Display returns the figure-facing display name.
func (id ID) Display() string {
	switch id {
	case ElasticNet:
		return "Elasticnet"
	case PCA:
		return "PCA"
	case KNN:
		return "KNN"
	case RSort:
		return "Resilient Sort"
	case CGSolve:
		return "CG Solve"
	case CGRestart:
		return "Restarted CG"
	default:
		return fmt.Sprintf("workload(%d)", int(id))
	}
}

// Parse maps a canonical name to its ID.
func Parse(s string) (ID, error) {
	for id := ID(0); id < numWorkloads; id++ {
		if registry[id].Name() == s {
			return id, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown workload %q (want one of %v)", s, Names())
}

// All returns every registered workload ID in registry order.
func All() []ID {
	ids := make([]ID, numWorkloads)
	for i := range ids {
		ids[i] = ID(i)
	}
	return ids
}

// Names returns every canonical workload name in registry order.
func Names() []string {
	names := make([]string, numWorkloads)
	for i, w := range registry {
		names[i] = w.Name()
	}
	return names
}
