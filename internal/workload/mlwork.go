package workload

import (
	"fmt"
	"math/rand"

	"faultmem/internal/dataset"
	"faultmem/internal/mat"
	"faultmem/internal/ml"
)

// mlInstance is the shared Instance behind the three data-mining
// benchmarks: the training set lives in faulty memory, is round-tripped
// per trial, and the model retrains on the corrupted copy and scores on
// the clean test split. evaluate trains on (x, y) using the caller's
// ml.Workspace scratch (nil allocates fresh). A fit error is a
// programming error (dimension mismatch, n < 2) — never fault-induced —
// so it propagates instead of being folded into the quality CDF as a
// silent 0.
type mlInstance struct {
	metric      string
	train, test *dataset.Dataset
	clean       float64
	evaluate    func(ws *ml.Workspace, x *mat.Dense, y []float64) (float64, error)
}

func (mi *mlInstance) Metric() string { return mi.metric }
func (mi *mlInstance) Clean() float64 { return mi.clean }

func (mi *mlInstance) StoreOn(ws *Workspace) {
	// The clean training set is identical across every (trial, arm) the
	// shard runs: quantize and flatten it once.
	ws.Codec.EncodeDatasetInto(&ws.Store, mi.train.X, mi.train.Y)
}

func (mi *mlInstance) RunTrial(ws *Workspace, _ *rand.Rand) (float64, error) {
	// xc/yc alias the shard workspace; evaluate consumes them fully
	// before the next arm refills it.
	xc, yc := ws.TripDataset()
	q, err := mi.evaluate(&ws.ML, xc, yc)
	if err != nil {
		return 0, err
	}
	return ml.NormalizeQuality(q, mi.clean), nil
}

// finish computes the fault-free reference metric and validates it, the
// last step of every ML workload's Prepare.
func (mi *mlInstance) finish(name string) error {
	clean, err := mi.evaluate(nil, mi.train.X, mi.train.Y)
	if err != nil {
		return fmt.Errorf("workload: fault-free %s fit: %w", name, err)
	}
	mi.clean = clean
	if mi.clean <= 0 {
		return fmt.Errorf("workload: fault-free %s metric %g is not positive", name, mi.clean)
	}
	return nil
}
