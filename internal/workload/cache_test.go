package workload

import "testing"

// TestPrepareSharedCaching verifies the instance cache returns the very
// same Instance for repeated (id, Params) keys when enabled, keeps
// distinct Params distinct, and stops sharing once disabled.
func TestPrepareSharedCaching(t *testing.T) {
	DisableInstanceCache()
	EnableInstanceCache(4)
	defer DisableInstanceCache()

	p := Params{Seed: 7, Keys: 256}
	a, err := PrepareShared(RSort, p)
	if err != nil {
		t.Fatalf("PrepareShared: %v", err)
	}
	b, err := PrepareShared(RSort, p)
	if err != nil {
		t.Fatalf("PrepareShared (repeat): %v", err)
	}
	if a != b {
		t.Fatalf("repeat PrepareShared returned a distinct instance")
	}
	hits, _ := InstanceCacheStats()
	if hits == 0 {
		t.Fatalf("repeat PrepareShared did not register a cache hit")
	}

	c, err := PrepareShared(RSort, Params{Seed: 8, Keys: 256})
	if err != nil {
		t.Fatalf("PrepareShared (other seed): %v", err)
	}
	if c == a {
		t.Fatalf("different Params shared one instance")
	}

	DisableInstanceCache()
	d, err := PrepareShared(RSort, p)
	if err != nil {
		t.Fatalf("PrepareShared (disabled): %v", err)
	}
	if d == a {
		t.Fatalf("disabled cache still shared the old instance")
	}
}

// TestPrepareSharedEviction verifies the LRU bound holds: with capacity
// one, alternating keys always miss.
func TestPrepareSharedEviction(t *testing.T) {
	DisableInstanceCache()
	EnableInstanceCache(1)
	defer DisableInstanceCache()

	p1 := Params{Seed: 1, Keys: 64}
	p2 := Params{Seed: 2, Keys: 64}
	a1, err := PrepareShared(RSort, p1)
	if err != nil {
		t.Fatalf("PrepareShared: %v", err)
	}
	if _, err := PrepareShared(RSort, p2); err != nil {
		t.Fatalf("PrepareShared: %v", err)
	}
	a3, err := PrepareShared(RSort, p1)
	if err != nil {
		t.Fatalf("PrepareShared: %v", err)
	}
	if a1 == a3 {
		t.Fatalf("capacity-1 cache kept both keys alive")
	}

	// Invalid workload errors surface uncached and cached alike.
	if _, err := PrepareShared(ID(99), p1); err == nil {
		t.Fatalf("invalid workload id prepared successfully")
	}
}
