package workload

import (
	"fmt"

	"faultmem/internal/memstore"
)

// PolicyKind enumerates the trial-level recovery policies a TrialRunner
// can apply to every checked round trip.
type PolicyKind int

const (
	// PolicyNone is the historical behavior: the plain cached round trip,
	// no detection, bit-identical qualities to the pre-recovery engine.
	PolicyNone PolicyKind = iota
	// PolicyRetry re-reads each flagged word a bounded number of times;
	// transient read corruption that does not recur is recovered,
	// persistent double faults stay flagged.
	PolicyRetry
	// PolicySafeRestore restores still-flagged words from the safe-memory
	// golden copy (the workspace's clean word cache), charged against a
	// per-trial safe-word budget.
	PolicySafeRestore

	numPolicies = iota
)

// Valid reports whether k names a policy.
func (k PolicyKind) Valid() bool { return k >= 0 && k < numPolicies }

// String returns the canonical lowercase policy name.
func (k PolicyKind) String() string {
	switch k {
	case PolicyNone:
		return "none"
	case PolicyRetry:
		return "retry"
	case PolicySafeRestore:
		return "saferestore"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// ParsePolicy maps a canonical name to its kind.
func ParsePolicy(s string) (PolicyKind, error) {
	for k := PolicyKind(0); k < numPolicies; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown recovery policy %q (want one of %v)", s, PolicyNames())
}

// AllPolicies returns every policy kind in escalation order.
func AllPolicies() []PolicyKind {
	ks := make([]PolicyKind, numPolicies)
	for i := range ks {
		ks[i] = PolicyKind(i)
	}
	return ks
}

// PolicyNames returns every canonical policy name in escalation order.
func PolicyNames() []string {
	names := make([]string, numPolicies)
	for i := range names {
		names[i] = PolicyKind(i).String()
	}
	return names
}

// RecoveryPolicy configures the detect-and-recover behavior of a
// TrialRunner. The zero value is PolicyNone.
type RecoveryPolicy struct {
	// Kind selects the mechanism.
	Kind PolicyKind
	// Retries is PolicyRetry's re-read bound per flagged word (0 = 2).
	// PolicySafeRestore also honors it: retries run first, the restore
	// covers what they could not recover.
	Retries int
	// SafeWords is PolicySafeRestore's per-trial golden-copy budget
	// (0 = unlimited).
	SafeWords int
}

// Active reports whether the policy engages the checked round trips at
// all (PolicyNone keeps the plain cached path, bit-identical to the
// pre-recovery engine).
func (p RecoveryPolicy) Active() bool { return p.Kind != PolicyNone }

// recovery builds the memstore mechanism state for one arm.
func (p RecoveryPolicy) recovery() memstore.Recovery {
	switch p.Kind {
	case PolicyRetry:
		n := p.Retries
		if n == 0 {
			n = 2
		}
		return memstore.Recovery{Retries: n}
	case PolicySafeRestore:
		n := p.Retries
		if n == 0 {
			n = 2
		}
		return memstore.Recovery{Retries: n, Restore: true, Budget: p.SafeWords}
	default:
		return memstore.Recovery{}
	}
}
