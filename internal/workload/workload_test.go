package workload

import (
	"sort"
	"testing"

	"faultmem/internal/fault"
	"faultmem/internal/mat"
	"faultmem/internal/mem"
	"faultmem/internal/memstore"
)

// testWorkspace returns a trial workspace wired the way TrialRunner
// wires it.
func testWorkspace() Workspace {
	return Workspace{Codec: memstore.DefaultCodec()}
}

// perfectMemory builds an unprotected memory with no faults.
func perfectMemory(t testing.TB, rows int) mem.Word32 {
	t.Helper()
	m, err := mem.NewRaw(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mixedFaultMap builds a deterministic fault map cycling through all
// three failure modes, one fault per row.
func mixedFaultMap(rows int) fault.Map {
	kinds := []fault.Kind{fault.Flip, fault.StuckAt0, fault.StuckAt1}
	fm := make(fault.Map, 0, rows)
	for i := 0; i < rows; i++ {
		fm = append(fm, fault.Fault{Row: i, Col: (i * 11) % 32, Kind: kinds[i%3]})
	}
	return fm
}

// TestRegistryRoundTrip pins the ID vocabulary: every registered
// workload parses back from its canonical name, carries a metric and a
// display name, and the first three IDs keep the historical fig7 App
// values.
func TestRegistryRoundTrip(t *testing.T) {
	if got := All(); len(got) != numWorkloads || len(Names()) != numWorkloads {
		t.Fatalf("All()/Names() disagree with registry size %d", numWorkloads)
	}
	for _, id := range All() {
		parsed, err := Parse(id.String())
		if err != nil || parsed != id {
			t.Errorf("Parse(%q) = %v, %v; want %v", id.String(), parsed, err, id)
		}
		if id.Metric() == "" || id.Metric() == "?" {
			t.Errorf("%v: no metric", id)
		}
		if id.Display() == "" {
			t.Errorf("%v: no display name", id)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse accepted unknown name")
	}
	if ElasticNet != 0 || PCA != 1 || KNN != 2 {
		t.Error("ML workload IDs drifted from the fig7 App enum values")
	}
	if ID(-1).Valid() || ID(numWorkloads).Valid() {
		t.Error("Valid accepted an out-of-range id")
	}
}

// TestNoFaultTrialPerfectQuality pins the quantization contract of the
// new workloads: their problem data is snapped to the fixed-point grid
// at Prepare, so a trial against a fault-free memory reproduces the
// clean computation exactly and scores quality 1.0 — not 1-epsilon.
func TestNoFaultTrialPerfectQuality(t *testing.T) {
	for _, id := range []ID{RSort, CGSolve, CGRestart} {
		wl, err := id.Workload()
		if err != nil {
			t.Fatal(err)
		}
		inst, err := wl.Prepare(Params{Seed: 7, Keys: 512, Dim: 24})
		if err != nil {
			t.Fatalf("%v: prepare: %v", id, err)
		}
		ws := testWorkspace()
		inst.StoreOn(&ws)
		ws.Mem = perfectMemory(t, 256)
		q, err := inst.RunTrial(&ws, nil)
		if err != nil {
			t.Fatalf("%v: trial: %v", id, err)
		}
		if q != 1 {
			t.Errorf("%v: no-fault trial quality %v, want exactly 1", id, q)
		}
	}

	// The ML workloads retrain on the quantized round-trip of their
	// training set, so their no-fault quality is near-perfect but not
	// bit-exact; pin the normalization stays sane.
	for _, id := range []ID{ElasticNet, KNN} {
		wl, err := id.Workload()
		if err != nil {
			t.Fatal(err)
		}
		inst, err := wl.Prepare(Params{Seed: 7})
		if err != nil {
			t.Fatalf("%v: prepare: %v", id, err)
		}
		ws := testWorkspace()
		inst.StoreOn(&ws)
		ws.Mem = perfectMemory(t, 256)
		q, err := inst.RunTrial(&ws, nil)
		if err != nil {
			t.Fatalf("%v: trial: %v", id, err)
		}
		if q < 0.95 || q > 1 {
			t.Errorf("%v: no-fault trial quality %v, want within [0.95, 1]", id, q)
		}
	}
}

// TestRSortQualityMatchesNaiveOracle pins the resilient-sort quality to
// an independent recount: sort the corrupted keys with the standard
// library under the same (value, index) total order and count the keys
// that landed on their fault-free position.
func TestRSortQualityMatchesNaiveOracle(t *testing.T) {
	wl, err := RSort.Workload()
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := wl.Prepare(Params{Seed: 11, Keys: 777}) // odd size exercises merge tails
	if err != nil {
		t.Fatal(err)
	}
	inst := prepared.(*rsortInstance)
	const rows = 96
	m, err := mem.NewRaw(rows, mixedFaultMap(rows))
	if err != nil {
		t.Fatal(err)
	}
	ws := testWorkspace()
	inst.StoreOn(&ws)
	ws.Mem = m
	q, err := inst.RunTrial(&ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q >= 1 {
		t.Fatalf("quality %v under a fault-every-row map — the oracle would prove nothing", q)
	}

	// Independent recount: the round trip is deterministic for
	// persistent faults, so a second pass sees the same corruption.
	vals := append([]float64(nil), ws.Codec.RoundTripCachedValues(&ws.Store, ws.Mem)...)
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if vals[idx[a]] != vals[idx[b]] {
			return vals[idx[a]] < vals[idx[b]]
		}
		return idx[a] < idx[b]
	})
	correct := 0
	for pos, j := range idx {
		if inst.place[j] == pos {
			correct++
		}
	}
	if want := float64(correct) / float64(len(vals)); q != want {
		t.Errorf("trial quality %v != naive misplaced-key recount %v", q, want)
	}
}

// TestEvaluatePropagatesFitError pins the swallowed-error fix carried
// over from the fig7 engine: a model-fit failure (always a programming
// error, never fault-induced) surfaces as an error instead of silently
// recording quality 0.
func TestEvaluatePropagatesFitError(t *testing.T) {
	for _, id := range []ID{ElasticNet, PCA, KNN} {
		wl, err := id.Workload()
		if err != nil {
			t.Fatal(err)
		}
		prepared, err := wl.Prepare(Params{Seed: 7})
		if err != nil {
			t.Fatalf("%v: prepare: %v", id, err)
		}
		mi := prepared.(*mlInstance)
		// One training sample breaks every model's fit invariants
		// (n < 2 for elastic net / PCA, n < K for KNN).
		_, d := mi.train.X.Dims()
		bad := mat.NewDense(1, d)
		if _, err := mi.evaluate(nil, bad, []float64{1}); err == nil {
			t.Errorf("%v: evaluate on invalid training set returned no error", id)
		}
	}
}

// TestCGSolveFaultsDegradeQuality sanity-checks the residual-to-quality
// map end to end: a heavily faulted unprotected memory must cost the
// solver quality, and the result must stay inside [0, 1].
func TestCGSolveFaultsDegradeQuality(t *testing.T) {
	wl, err := CGSolve.Workload()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := wl.Prepare(Params{Seed: 7, Dim: 24})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 96
	m, err := mem.NewRaw(rows, mixedFaultMap(rows))
	if err != nil {
		t.Fatal(err)
	}
	ws := testWorkspace()
	inst.StoreOn(&ws)
	ws.Mem = m
	q, err := inst.RunTrial(&ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0 || q >= 1 {
		t.Errorf("fault-every-row CG quality %v, want inside [0, 1)", q)
	}
}

// TestRSortWarmTrialAllocs pins the workspace contract for the
// non-ML workloads: once the scratch is warm, a trial allocates
// nothing beyond what the memory itself does.
func TestRSortWarmTrialAllocs(t *testing.T) {
	wl, err := RSort.Workload()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := wl.Prepare(Params{Seed: 7, Keys: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 256
	m, err := mem.NewRaw(rows, mixedFaultMap(rows))
	if err != nil {
		t.Fatal(err)
	}
	ws := testWorkspace()
	inst.StoreOn(&ws)
	ws.Mem = m
	if _, err := inst.RunTrial(&ws, nil); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := inst.RunTrial(&ws, nil); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Errorf("warm rsort trial allocates %v times, want 0", allocs)
	}
}
