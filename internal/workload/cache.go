package workload

import "sync"

// Instance cache: Instances are read-only after Prepare and already
// shared across every engine shard of one campaign, so sharing them
// across campaigns is equally sound. Preparation — dataset or problem
// generation plus the fault-free reference solve — dominates the cold
// start of small campaigns, so a long-lived server (faultmem serve)
// enables this cache and repeat submissions of the same workload at the
// same Params skip it entirely. The cache is off by default: one-shot
// CLI runs gain nothing from it and tests prefer the uncached path.

// instKey identifies one prepared instance. Params is a flat struct of
// scalars, so the whole key is comparable.
type instKey struct {
	id ID
	p  Params
}

type instEntry struct {
	inst Instance
	err  error
	use  uint64 // lastUse tick, for eviction
}

var instCache struct {
	sync.Mutex
	enabled bool
	cap     int
	tick    uint64
	hits    uint64
	misses  uint64
	entries map[instKey]*instEntry
}

// defaultInstanceCacheCap bounds the cache when EnableInstanceCache is
// called with a non-positive capacity. Instances are at most a few MB
// (the Madelon dataset is the largest), so a couple dozen is cheap.
const defaultInstanceCacheCap = 24

// EnableInstanceCache turns the process-wide instance cache on with at
// most capacity entries (<= 0 selects the default). Existing entries
// survive a capacity change; excess ones are evicted least-recently-used.
func EnableInstanceCache(capacity int) {
	if capacity <= 0 {
		capacity = defaultInstanceCacheCap
	}
	instCache.Lock()
	defer instCache.Unlock()
	instCache.enabled = true
	instCache.cap = capacity
	if instCache.entries == nil {
		instCache.entries = make(map[instKey]*instEntry)
	}
	evictLocked()
}

// DisableInstanceCache turns the cache off and drops every entry.
func DisableInstanceCache() {
	instCache.Lock()
	defer instCache.Unlock()
	instCache.enabled = false
	instCache.entries = nil
}

// InstanceCacheStats returns the cumulative hit/miss counters (misses
// count uncached Prepare calls too, so hits/(hits+misses) is the true
// cross-request reuse rate).
func InstanceCacheStats() (hits, misses uint64) {
	instCache.Lock()
	defer instCache.Unlock()
	return instCache.hits, instCache.misses
}

// evictLocked drops least-recently-used entries until the cache fits
// its capacity. Caller holds the lock.
func evictLocked() {
	for len(instCache.entries) > instCache.cap {
		var oldest instKey
		var oldestUse uint64
		first := true
		for k, e := range instCache.entries {
			if first || e.use < oldestUse {
				oldest, oldestUse, first = k, e.use, false
			}
		}
		delete(instCache.entries, oldest)
	}
}

// PrepareShared resolves id and prepares its instance through the
// process-wide cache when enabled, falling back to a plain Prepare
// otherwise. Failed preparations are cached too (they are deterministic
// in Params), so a bad submission does not re-run generation on every
// retry.
func PrepareShared(id ID, p Params) (Instance, error) {
	key := instKey{id: id, p: p}
	instCache.Lock()
	if instCache.enabled {
		if e, ok := instCache.entries[key]; ok {
			instCache.tick++
			e.use = instCache.tick
			instCache.hits++
			instCache.Unlock()
			return e.inst, e.err
		}
	}
	instCache.misses++
	instCache.Unlock()

	wl, err := id.Workload()
	if err != nil {
		return nil, err
	}
	inst, err := wl.Prepare(p)

	instCache.Lock()
	if instCache.enabled {
		// A racing Prepare of the same key may have landed first; keep
		// the existing entry so concurrent campaigns converge on one
		// shared instance.
		if _, ok := instCache.entries[key]; !ok {
			instCache.tick++
			instCache.entries[key] = &instEntry{inst: inst, err: err, use: instCache.tick}
			evictLocked()
		} else {
			e := instCache.entries[key]
			inst, err = e.inst, e.err
		}
	}
	instCache.Unlock()
	return inst, err
}
