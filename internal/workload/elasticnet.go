package workload

import (
	"faultmem/internal/dataset"
	"faultmem/internal/mat"
	"faultmem/internal/ml"
)

// elasticNetWorkload is the wine-quality regression benchmark
// (Fig. 7a): elastic-net linear regression retrained per trial on the
// corrupted training set, scored by R^2 on the clean test split.
type elasticNetWorkload struct{}

func (elasticNetWorkload) Name() string   { return "elasticnet" }
func (elasticNetWorkload) Metric() string { return "R^2" }

func (w elasticNetWorkload) Prepare(p Params) (Instance, error) {
	ds := dataset.Wine(p.Seed)
	train, test := ds.Split(0.8, p.Seed+1)
	mi := &mlInstance{metric: w.Metric(), train: train, test: test}
	mi.evaluate = func(ws *ml.Workspace, x *mat.Dense, y []float64) (float64, error) {
		en := ml.NewElasticNet()
		if err := en.FitIn(ws, x, y); err != nil {
			return 0, err
		}
		return en.ScoreIn(ws, test.X, test.Y), nil
	}
	if err := mi.finish(w.Name()); err != nil {
		return nil, err
	}
	return mi, nil
}
