package workload

import (
	"fmt"

	"faultmem/internal/fault"
	"faultmem/internal/mem"
	"faultmem/internal/memstore"
	"faultmem/internal/sram"
	"faultmem/internal/stats"
)

// Config fixes the memory geometry and the protection arms a
// TrialRunner pushes every trial through.
type Config struct {
	// Name labels trial errors ("elasticnet").
	Name string
	// Rows is the memory macro depth (4096 = 16 KB).
	Rows int
	// Pcell is the bit-cell failure probability.
	Pcell float64
	// Arms are the protection schemes compared on each trial's die.
	Arms []Arm
	// Policy is the detect-and-recover behavior applied to every
	// checked round trip. The zero value (PolicyNone) keeps the plain
	// cached path — bit-identical qualities to the pre-recovery engine.
	Policy RecoveryPolicy
	// TransientRate enables per-read soft errors at this per-bit rate on
	// arms that expose their bit-cell array (all eight protection arms);
	// 0 disables. The flips draw from the trial's RNG stream, so results
	// stay bit-identical at any worker count.
	TransientRate float64
}

// TrialRunner executes warm Monte-Carlo trials for one shard: it owns
// the per-shard scratch (one functional memory per arm reinstalled in
// place via mem.Resetter, the clean-word/codeword-image cache, the
// per-arm recovery state, and the workload's fit scratch), so after the
// first trial the whole fault-map -> memory -> round-trip -> run ->
// score pipeline runs allocation-free except for fault-map generation
// itself.
type TrialRunner struct {
	cfg   Config
	inst  Instance
	cells int
	mems  []mem.Word32
	recs  []memstore.Recovery // per-arm recovery state; nil under PolicyNone
	ws    Workspace
}

// arrayAccessor is the facet of a memory that exposes its bit-cell
// array (every concrete arm does); the transient-fault injector needs
// it.
type arrayAccessor interface {
	Array() *sram.Array
}

// NewTrialRunner builds a shard runner and quantizes the instance's
// memory-resident data once: each round trip then pays only the
// fault-dependent work (writes, reads, decode).
func NewTrialRunner(inst Instance, cfg Config) *TrialRunner {
	r := &TrialRunner{
		cfg:   cfg,
		inst:  inst,
		cells: cfg.Rows * mem.DataWidth,
		mems:  make([]mem.Word32, len(cfg.Arms)),
	}
	if cfg.Policy.Active() {
		r.recs = make([]memstore.Recovery, len(cfg.Arms))
		for i := range r.recs {
			r.recs[i] = cfg.Policy.recovery()
		}
	}
	r.ws.Codec = memstore.DefaultCodec()
	inst.StoreOn(&r.ws)
	return r
}

// RecoveryStats returns a snapshot of the per-arm recovery counters
// accumulated so far, in arm order (nil when the policy is None).
func (r *TrialRunner) RecoveryStats() []memstore.RecoveryStats {
	if r.recs == nil {
		return nil
	}
	out := make([]memstore.RecoveryStats, len(r.recs))
	for i := range r.recs {
		out[i] = r.recs[i].Stats
	}
	return out
}

// RunTrial executes one Monte-Carlo trial: it draws the die's fault map
// from the trial's own RNG stream (derived from (seedBase, trial), so
// results are bit-identical at any worker or shard count) and appends
// one normalized quality per arm to out. The die's failure count is
// drawn from the Eq. (4) Binomial prior conditioned on at least one
// failure — fault-free dies have quality 1 by construction and are
// excluded from the CDF, matching Fig. 7's curves — and the same fault
// map drives every arm (common random numbers).
func (r *TrialRunner) RunTrial(seedBase int64, trial int, out []float64) ([]float64, error) {
	rng := stats.Derive(seedBase, int64(trial))
	n := 0
	for n == 0 {
		n = stats.SampleBinomial(rng, r.cells, r.cfg.Pcell)
	}
	fm := fault.GenerateCount(rng, r.cfg.Rows, mem.DataWidth, n, fault.Flip)
	for ai, arm := range r.cfg.Arms {
		var m mem.Word32
		var err error
		if rs, ok := r.mems[ai].(mem.Resetter); ok {
			m, err = r.mems[ai], rs.Reset(fm)
		} else {
			m, err = arm.Build(r.cfg.Rows, fm)
			r.mems[ai] = m
		}
		if err != nil {
			return out, fmt.Errorf("workload: %s trial %d arm %v: %w", r.cfg.Name, trial, arm, err)
		}
		if r.cfg.TransientRate > 0 {
			if aa, ok := m.(arrayAccessor); ok {
				// Soft errors draw from the trial's stream: the arms run in
				// fixed order, so the draws are deterministic per trial.
				aa.Array().SetTransient(r.cfg.TransientRate, rng)
			}
		}
		if r.recs != nil {
			rec := &r.recs[ai]
			rec.ResetTrial()
			r.ws.Recovery = rec
		} else {
			r.ws.Recovery = nil
		}
		r.ws.Mem = m
		q, err := r.inst.RunTrial(&r.ws, rng)
		if err != nil {
			return out, fmt.Errorf("workload: %s trial %d arm %v: %w", r.cfg.Name, trial, arm, err)
		}
		out = append(out, q)
	}
	return out, nil
}
