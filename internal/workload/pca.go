package workload

import (
	"faultmem/internal/dataset"
	"faultmem/internal/mat"
	"faultmem/internal/ml"
)

// pcaWorkload is the Madelon dimensionality-reduction benchmark
// (Fig. 7b): a top-10 PCA refit per trial on the corrupted training
// set, scored by the explained variance captured on the clean test
// split.
type pcaWorkload struct{}

func (pcaWorkload) Name() string   { return "pca" }
func (pcaWorkload) Metric() string { return "Explained Variance" }

func (w pcaWorkload) Prepare(p Params) (Instance, error) {
	mp := dataset.DefaultMadelon()
	if p.MadelonPaperSize {
		mp = dataset.PaperMadelon()
	}
	ds := dataset.Madelon(p.Seed, mp)
	train, test := ds.Split(0.8, p.Seed+1)
	mi := &mlInstance{metric: w.Metric(), train: train, test: test}

	k := 10
	// One fit on the clean training set seeds the eigensolver for
	// every trial fit: the converged clean-data subspace is a pure
	// function of the workload — independent of worker count and
	// trial order — so warm-started trial fits keep bit-identical
	// sharding while the subspace iteration only has to track the
	// fault-induced covariance perturbation instead of reconverging
	// from the fixed pseudo-random basis. Shared read-only across
	// shards.
	var warm *mat.Dense
	{
		var cws ml.Workspace
		warmFit := ml.NewPCA(k)
		if err := warmFit.FitIn(&cws, train.X); err == nil {
			warm = cws.EigenSubspace()
		}
	}
	mi.evaluate = func(ws *ml.Workspace, x *mat.Dense, _ []float64) (float64, error) {
		pca := ml.NewPCA(k)
		pca.Warm = warm
		if err := pca.FitIn(ws, x); err != nil {
			return 0, err
		}
		return pca.ExplainedVarianceOnIn(ws, test.X), nil
	}
	if err := mi.finish(w.Name()); err != nil {
		return nil, err
	}
	return mi, nil
}
