package fault

import (
	"fmt"
	"math/rand"
)

// Transition is the aggressor write transition that triggers a coupling
// fault.
type Transition uint8

const (
	// Rise triggers when the aggressor cell's stored value goes 0 -> 1.
	Rise Transition = iota
	// Fall triggers when it goes 1 -> 0.
	Fall
)

// String names the transition in the usual notation.
func (t Transition) String() string {
	switch t {
	case Rise:
		return "up"
	case Fall:
		return "down"
	default:
		return fmt.Sprintf("transition(%d)", uint8(t))
	}
}

// Coupling is an idempotent coupling fault (CFid): when the aggressor
// cell undergoes the trigger transition during a write, the victim
// cell's stored value toggles. Coupling faults are outside the paper's
// persistent-fault model; they extend the BIST substrate so the March
// algorithms' differing coverage becomes measurable.
type Coupling struct {
	AggRow, AggCol int
	VicRow, VicCol int
	Trigger        Transition
}

// Validate checks bounds and that aggressor and victim are distinct
// cells.
func (c Coupling) Validate(rows, width int) error {
	for _, p := range [][2]int{{c.AggRow, c.AggCol}, {c.VicRow, c.VicCol}} {
		if p[0] < 0 || p[0] >= rows || p[1] < 0 || p[1] >= width {
			return fmt.Errorf("fault: coupling cell (%d,%d) outside %dx%d", p[0], p[1], rows, width)
		}
	}
	if c.AggRow == c.VicRow && c.AggCol == c.VicCol {
		return fmt.Errorf("fault: coupling aggressor and victim coincide at (%d,%d)", c.AggRow, c.AggCol)
	}
	if c.Trigger != Rise && c.Trigger != Fall {
		return fmt.Errorf("fault: unknown coupling trigger %d", c.Trigger)
	}
	return nil
}

// GenerateCouplings draws n random coupling faults over a rows x width
// array with distinct victim cells and random triggers.
func GenerateCouplings(rng *rand.Rand, rows, width, n int) []Coupling {
	cells := rows * width
	if n > cells-1 {
		panic(fmt.Sprintf("fault: %d couplings exceed array capacity", n))
	}
	seenVictims := make(map[int]struct{}, n)
	out := make([]Coupling, 0, n)
	for len(out) < n {
		vic := rng.Intn(cells)
		if _, dup := seenVictims[vic]; dup {
			continue
		}
		agg := rng.Intn(cells)
		if agg == vic {
			continue
		}
		seenVictims[vic] = struct{}{}
		c := Coupling{
			AggRow: agg / width, AggCol: agg % width,
			VicRow: vic / width, VicCol: vic % width,
			Trigger: Transition(rng.Intn(2)),
		}
		out = append(out, c)
	}
	return out
}
