package fault

import (
	"encoding/json"
	"fmt"
	"io"
)

// mapFile is the on-disk representation of a fault map: the die geometry
// plus the fault list, so tools can exchange BIST results.
type mapFile struct {
	Rows   int         `json:"rows"`
	Width  int         `json:"width"`
	Faults []jsonFault `json:"faults"`
}

type jsonFault struct {
	Row  int    `json:"row"`
	Col  int    `json:"col"`
	Kind string `json:"kind"`
}

// WriteJSON serializes the map with its geometry to w.
func (m Map) WriteJSON(w io.Writer, rows, width int) error {
	if err := m.Validate(rows, width); err != nil {
		return fmt.Errorf("fault: refusing to serialize invalid map: %w", err)
	}
	f := mapFile{Rows: rows, Width: width, Faults: make([]jsonFault, len(m))}
	for i, fv := range m {
		f.Faults[i] = jsonFault{Row: fv.Row, Col: fv.Col, Kind: fv.Kind.String()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON deserializes a fault map and its geometry from r, validating
// bounds and kinds.
func ReadJSON(r io.Reader) (m Map, rows, width int, err error) {
	var f mapFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, 0, 0, fmt.Errorf("fault: bad JSON: %w", err)
	}
	m = make(Map, len(f.Faults))
	for i, jf := range f.Faults {
		var kind Kind
		switch jf.Kind {
		case "flip":
			kind = Flip
		case "sa0":
			kind = StuckAt0
		case "sa1":
			kind = StuckAt1
		default:
			return nil, 0, 0, fmt.Errorf("fault: unknown kind %q at entry %d", jf.Kind, i)
		}
		m[i] = Fault{Row: jf.Row, Col: jf.Col, Kind: kind}
	}
	if err := m.Validate(f.Rows, f.Width); err != nil {
		return nil, 0, 0, err
	}
	return m, f.Rows, f.Width, nil
}
