package fault

import (
	"fmt"
	"math/rand"
)

// PcellCurve maps a supply voltage to a bit-cell failure probability. The
// sram package provides the calibrated 28 nm 6T curve; it is an interface
// here so the generators need not depend on the cell model.
type PcellCurve interface {
	// Pcell returns the bit-cell failure probability at supply voltage vdd
	// (volts).
	Pcell(vdd float64) float64
	// CriticalVDD returns the supply voltage below which a cell with
	// failure quantile u (u in (0,1), smaller u = weaker cell) fails.
	CriticalVDD(u float64) float64
}

// CriticalVoltages stores, for every cell of a rows x width array, the
// supply voltage at or below which that cell fails. It realizes the
// fault-inclusion property of voltage scaling [Gottscho et al., DAC'14]:
// a cell failing at VDD fails at every lower VDD, because its critical
// voltage is a fixed property of the die.
type CriticalVoltages struct {
	rows, width int
	vcrit       []float64
}

// SampleCriticalVoltages draws one die's worth of per-cell critical
// voltages from the given Pcell curve.
func SampleCriticalVoltages(rng *rand.Rand, rows, width int, curve PcellCurve) *CriticalVoltages {
	cv := &CriticalVoltages{rows: rows, width: width, vcrit: make([]float64, rows*width)}
	for i := range cv.vcrit {
		u := rng.Float64()
		// Guard the open-interval requirement of the quantile transform.
		if u <= 0 {
			u = 1e-300
		}
		cv.vcrit[i] = curve.CriticalVDD(u)
	}
	return cv
}

// Dims returns the array shape.
func (cv *CriticalVoltages) Dims() (rows, width int) { return cv.rows, cv.width }

// VCrit returns the critical voltage of cell (row, col).
func (cv *CriticalVoltages) VCrit(row, col int) float64 {
	if row < 0 || row >= cv.rows || col < 0 || col >= cv.width {
		panic(fmt.Sprintf("fault: cell (%d,%d) outside %dx%d", row, col, cv.rows, cv.width))
	}
	return cv.vcrit[row*cv.width+col]
}

// AtVDD returns the fault map observed when the die operates at vdd:
// every cell whose critical voltage is >= vdd fails, with the given kind.
// Maps at decreasing vdd are supersets of maps at higher vdd.
func (cv *CriticalVoltages) AtVDD(vdd float64, kind Kind) Map {
	var m Map
	for i, vc := range cv.vcrit {
		if vc >= vdd {
			m = append(m, Fault{Row: i / cv.width, Col: i % cv.width, Kind: kind})
		}
	}
	return m
}

// CountAtVDD returns the number of failing cells at vdd without building
// the map.
func (cv *CriticalVoltages) CountAtVDD(vdd float64) int {
	n := 0
	for _, vc := range cv.vcrit {
		if vc >= vdd {
			n++
		}
	}
	return n
}
