package fault

import (
	"bytes"
	"strings"
	"testing"

	"faultmem/internal/stats"
)

func TestJSONRoundTrip(t *testing.T) {
	rng := stats.NewRand(1)
	orig := RandomKinds(rng, GenerateCount(rng, 64, 32, 17, Flip),
		[]Kind{Flip, StuckAt0, StuckAt1})
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf, 64, 32); err != nil {
		t.Fatal(err)
	}
	back, rows, width, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 64 || width != 32 {
		t.Errorf("geometry %dx%d", rows, width)
	}
	if len(back) != len(orig) {
		t.Fatalf("length %d != %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("entry %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	// Out-of-range fault refuses to serialize.
	bad := Map{{Row: 99, Col: 0}}
	if err := bad.WriteJSON(&bytes.Buffer{}, 4, 32); err == nil {
		t.Error("invalid map serialized")
	}
	// Unknown kind refuses to parse.
	_, _, _, err := ReadJSON(strings.NewReader(
		`{"rows":4,"width":32,"faults":[{"row":0,"col":0,"kind":"weird"}]}`))
	if err == nil {
		t.Error("unknown kind accepted")
	}
	// Out-of-range entry refuses to parse.
	_, _, _, err = ReadJSON(strings.NewReader(
		`{"rows":4,"width":32,"faults":[{"row":9,"col":0,"kind":"flip"}]}`))
	if err == nil {
		t.Error("out-of-range entry accepted")
	}
	// Garbage input.
	if _, _, _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestJSONEmptyMap(t *testing.T) {
	var buf bytes.Buffer
	if err := (Map{}).WriteJSON(&buf, 8, 16); err != nil {
		t.Fatal(err)
	}
	m, rows, width, err := ReadJSON(&buf)
	if err != nil || len(m) != 0 || rows != 8 || width != 16 {
		t.Errorf("empty round trip: %v %d %dx%d", err, len(m), rows, width)
	}
}
