// Package fault defines persistent bit-cell fault maps and the random
// fault-map generators used throughout the evaluation: exact failure
// counts, per-cell Bernoulli(Pcell) draws, and voltage-derived maps with
// the fault-inclusion property.
//
// A fault map is the post-manufacturing ground truth of one memory sample:
// once a die is fabricated (or a supply voltage chosen), the number and
// location of its variation-induced bit-cell failures is fixed (§2 of the
// paper).
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"faultmem/internal/stats"
)

// Kind describes the failure mode of a faulty bit-cell.
type Kind uint8

const (
	// Flip reads back the inverse of the stored bit. This is the default
	// model in the paper's analysis: a failure at bit b always costs 2^b
	// (Eq. 6), independent of the datum.
	Flip Kind = iota
	// StuckAt0 forces the cell to store/read 0.
	StuckAt0
	// StuckAt1 forces the cell to store/read 1.
	StuckAt1
)

// String returns a short human-readable name for the fault kind.
func (k Kind) String() string {
	switch k {
	case Flip:
		return "flip"
	case StuckAt0:
		return "sa0"
	case StuckAt1:
		return "sa1"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fault is one faulty bit-cell at (Row, Col) with a failure mode.
type Fault struct {
	Row, Col int
	Kind     Kind
}

// Map is the set of faulty cells of one memory sample.
type Map []Fault

// Validate checks that every fault lies within a rows x width array and
// that no cell is listed twice. It returns a descriptive error otherwise.
func (m Map) Validate(rows, width int) error {
	// Small maps (the per-trial Monte-Carlo path: ~Pcell*cells faults)
	// use a quadratic duplicate scan so validation stays allocation-free
	// in hot loops; large maps fall back to a hash set.
	const smallMap = 512
	if len(m) <= smallMap {
		for j, f := range m {
			if f.Row < 0 || f.Row >= rows || f.Col < 0 || f.Col >= width {
				return fmt.Errorf("fault %d at (%d,%d) outside %dx%d array", j, f.Row, f.Col, rows, width)
			}
			for i := 0; i < j; i++ {
				if m[i].Row == f.Row && m[i].Col == f.Col {
					return fmt.Errorf("duplicate fault at (%d,%d)", f.Row, f.Col)
				}
			}
		}
		return nil
	}
	seen := make(map[[2]int]struct{}, len(m))
	for i, f := range m {
		if f.Row < 0 || f.Row >= rows || f.Col < 0 || f.Col >= width {
			return fmt.Errorf("fault %d at (%d,%d) outside %dx%d array", i, f.Row, f.Col, rows, width)
		}
		key := [2]int{f.Row, f.Col}
		if _, dup := seen[key]; dup {
			return fmt.Errorf("duplicate fault at (%d,%d)", f.Row, f.Col)
		}
		seen[key] = struct{}{}
	}
	return nil
}

// ByRow groups the faulty column indices by row. Rows without faults are
// absent from the result.
func (m Map) ByRow() map[int][]int {
	out := make(map[int][]int)
	for _, f := range m {
		out[f.Row] = append(out[f.Row], f.Col)
	}
	for r := range out {
		sort.Ints(out[r])
	}
	return out
}

// RowsAffected returns the number of distinct rows containing at least one
// fault.
func (m Map) RowsAffected() int {
	rows := make(map[int]struct{})
	for _, f := range m {
		rows[f.Row] = struct{}{}
	}
	return len(rows)
}

// MaxFaultsPerRow returns the largest number of faults sharing one row
// (0 for an empty map).
func (m Map) MaxFaultsPerRow() int {
	counts := make(map[int]int)
	max := 0
	for _, f := range m {
		counts[f.Row]++
		if counts[f.Row] > max {
			max = counts[f.Row]
		}
	}
	return max
}

// Clone returns a deep copy of the map.
func (m Map) Clone() Map {
	return append(Map(nil), m...)
}

// GenerateCount draws a fault map with exactly n faults placed uniformly
// at random over distinct cells of a rows x width array, all with the
// given kind. This matches the paper's fault-injection procedure for a
// fixed failure count (§4: "generating maps of random bit-flip locations
// for each failure count").
func GenerateCount(rng *rand.Rand, rows, width, n int, kind Kind) Map {
	cells := rows * width
	if n > cells {
		panic(fmt.Sprintf("fault: %d faults exceed %d cells", n, cells))
	}
	idx := stats.SampleDistinct(rng, cells, n)
	m := make(Map, n)
	for i, c := range idx {
		m[i] = Fault{Row: c / width, Col: c % width, Kind: kind}
	}
	return m
}

// GeneratePcell draws a fault map where each of the rows x width cells
// fails independently with probability pcell (Eq. 4's Bernoulli model).
// The failure count is sampled from Binomial(rows*width, pcell) and the
// positions placed uniformly, which is the exact joint distribution.
func GeneratePcell(rng *rand.Rand, rows, width int, pcell float64, kind Kind) Map {
	n := stats.SampleBinomial(rng, rows*width, pcell)
	return GenerateCount(rng, rows, width, n, kind)
}

// RandomKinds reassigns each fault in m a kind drawn uniformly from kinds,
// returning a new map. Useful for BIST coverage studies on mixed fault
// populations.
func RandomKinds(rng *rand.Rand, m Map, kinds []Kind) Map {
	if len(kinds) == 0 {
		panic("fault: RandomKinds with no kinds")
	}
	out := m.Clone()
	for i := range out {
		out[i].Kind = kinds[rng.Intn(len(kinds))]
	}
	return out
}
