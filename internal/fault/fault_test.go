package fault

import (
	"math"
	"testing"
	"testing/quick"

	"faultmem/internal/stats"
)

func TestKindString(t *testing.T) {
	if Flip.String() != "flip" || StuckAt0.String() != "sa0" || StuckAt1.String() != "sa1" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestValidate(t *testing.T) {
	m := Map{{Row: 0, Col: 0}, {Row: 3, Col: 31}}
	if err := m.Validate(4, 32); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
	bad := []Map{
		{{Row: -1, Col: 0}},
		{{Row: 4, Col: 0}},
		{{Row: 0, Col: 32}},
		{{Row: 0, Col: -1}},
		{{Row: 1, Col: 1}, {Row: 1, Col: 1}},
	}
	for i, m := range bad {
		if err := m.Validate(4, 32); err == nil {
			t.Errorf("bad map %d accepted", i)
		}
	}
}

func TestByRowAndCounts(t *testing.T) {
	m := Map{{Row: 2, Col: 5}, {Row: 2, Col: 1}, {Row: 0, Col: 7}}
	byRow := m.ByRow()
	if len(byRow) != 2 {
		t.Fatalf("ByRow groups = %d", len(byRow))
	}
	if cols := byRow[2]; len(cols) != 2 || cols[0] != 1 || cols[1] != 5 {
		t.Errorf("row 2 cols = %v (want sorted [1 5])", cols)
	}
	if m.RowsAffected() != 2 {
		t.Errorf("RowsAffected = %d", m.RowsAffected())
	}
	if m.MaxFaultsPerRow() != 2 {
		t.Errorf("MaxFaultsPerRow = %d", m.MaxFaultsPerRow())
	}
	if Map(nil).MaxFaultsPerRow() != 0 {
		t.Error("empty map MaxFaultsPerRow != 0")
	}
}

func TestGenerateCountProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := stats.NewRand(seed)
		n := int(nRaw) % 100
		m := GenerateCount(rng, 64, 32, n, Flip)
		if len(m) != n {
			return false
		}
		return m.Validate(64, 32) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateCountUniformOverCells(t *testing.T) {
	// Column marginal should be uniform across the word.
	rng := stats.NewRand(5)
	counts := make([]int, 32)
	const trials = 3000
	for i := 0; i < trials; i++ {
		for _, f := range GenerateCount(rng, 16, 32, 4, Flip) {
			counts[f.Col]++
		}
	}
	want := float64(trials) * 4 / 32
	for c, n := range counts {
		if math.Abs(float64(n)-want) > 0.25*want {
			t.Errorf("col %d hit %d times, want ~%.0f", c, n, want)
		}
	}
}

func TestGeneratePcellMean(t *testing.T) {
	rng := stats.NewRand(11)
	rows, width := 4096, 32
	p := 1e-4
	const trials = 300
	total := 0
	for i := 0; i < trials; i++ {
		m := GeneratePcell(rng, rows, width, p, Flip)
		if err := m.Validate(rows, width); err != nil {
			t.Fatal(err)
		}
		total += len(m)
	}
	mean := float64(total) / trials
	want := float64(rows*width) * p // ~13.1
	if math.Abs(mean-want) > 1.2 {
		t.Errorf("mean fault count %.2f, want %.2f", mean, want)
	}
}

func TestRandomKinds(t *testing.T) {
	rng := stats.NewRand(3)
	m := GenerateCount(rng, 8, 8, 20, Flip)
	mixed := RandomKinds(rng, m, []Kind{StuckAt0, StuckAt1})
	if len(mixed) != len(m) {
		t.Fatal("length changed")
	}
	for i, f := range mixed {
		if f.Row != m[i].Row || f.Col != m[i].Col {
			t.Fatal("positions changed")
		}
		if f.Kind != StuckAt0 && f.Kind != StuckAt1 {
			t.Fatalf("unexpected kind %v", f.Kind)
		}
	}
	// Original untouched.
	for _, f := range m {
		if f.Kind != Flip {
			t.Fatal("RandomKinds mutated its input")
		}
	}
}

type linearCurve struct{}

func (linearCurve) Pcell(vdd float64) float64 {
	// Pr(fail at V) decreasing from 1 at V=0 to 0 at V=1.
	switch {
	case vdd <= 0:
		return 1
	case vdd >= 1:
		return 0
	default:
		return 1 - vdd
	}
}
func (linearCurve) CriticalVDD(u float64) float64 {
	// Pr(Vcrit >= V) = 1 - V  =>  Vcrit = 1 - U for U uniform.
	return 1 - u
}

func TestCriticalVoltagesInclusion(t *testing.T) {
	rng := stats.NewRand(7)
	cv := SampleCriticalVoltages(rng, 32, 16, linearCurve{})
	r, w := cv.Dims()
	if r != 32 || w != 16 {
		t.Fatalf("dims %dx%d", r, w)
	}
	// Fault-inclusion: every fault at a higher VDD persists at lower VDD.
	hi := cv.AtVDD(0.8, Flip)
	lo := cv.AtVDD(0.5, Flip)
	if len(lo) < len(hi) {
		t.Fatalf("inclusion violated: %d faults at 0.5V < %d at 0.8V", len(lo), len(hi))
	}
	loSet := make(map[[2]int]bool)
	for _, f := range lo {
		loSet[[2]int{f.Row, f.Col}] = true
	}
	for _, f := range hi {
		if !loSet[[2]int{f.Row, f.Col}] {
			t.Fatalf("fault (%d,%d) at 0.8V missing at 0.5V", f.Row, f.Col)
		}
	}
	if cv.CountAtVDD(0.5) != len(lo) {
		t.Error("CountAtVDD disagrees with AtVDD")
	}
}

func TestCriticalVoltagesMarginal(t *testing.T) {
	// The fraction of failing cells at V should be ~ Pcell(V).
	rng := stats.NewRand(13)
	cv := SampleCriticalVoltages(rng, 256, 64, linearCurve{})
	cells := float64(256 * 64)
	for _, v := range []float64{0.25, 0.5, 0.75} {
		frac := float64(cv.CountAtVDD(v)) / cells
		want := 1 - v
		if math.Abs(frac-want) > 0.02 {
			t.Errorf("V=%.2f: failing fraction %.4f, want %.4f", v, frac, want)
		}
	}
}
