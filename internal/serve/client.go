package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"faultmem/internal/sweep"
	"faultmem/internal/yield"
)

// Options configures a client connection.
type Options struct {
	// Token resumes a previous session: its running jobs re-attach and
	// finals buffered while disconnected are redelivered. Empty opens a
	// fresh session.
	Token string
	// Auth is the server's shared secret (empty when the server runs
	// open).
	Auth string
	// OnSnapshot, when non-nil, receives every partial-state push. It is
	// called from the read loop — keep it cheap.
	OnSnapshot func(snap JobSnapshot, seq uint64)
	// Logf, when non-nil, receives one line per connection event.
	Logf func(format string, args ...any)
}

// Campaign is one submission: the experiment name plus the runner knobs
// in exactly the form `faultmem run` accepts.
type Campaign struct {
	Experiment string
	// Label is a free-form annotation echoed in status listings.
	Label string
	// Priority weights the server's fair-share scheduler (0 and 1 mean
	// the default weight; higher gets proportionally more concurrent
	// shards).
	Priority int
	Seed     *int64
	Quick    bool
	Workers  int
	Accum    yield.AccumMode
	Bins     int
	// Params is a strict JSON override of the experiment's defaults
	// (empty = defaults).
	Params []byte
}

// FinalResult is one job's terminal outcome.
type FinalResult struct {
	JobID uint64
	// Err is the server-side failure ("" on success) — experiment
	// errors, cancellation.
	Err string
	// Result is the ExperimentResult JSON, byte-identical to a local
	// `faultmem run -json` of the same campaign.
	Result []byte
}

// Client is one connection to a campaign server.
type Client struct {
	conn     net.Conn
	opts     Options
	token    string
	draining bool

	writeMu sync.Mutex

	mu      sync.Mutex
	nextRef uint64
	replies map[uint64]chan *sweep.SubmitReply
	infos   map[uint64]chan *sweep.JobInfo
	finals  map[uint64]chan *FinalResult
	readErr error

	readDone chan struct{}
}

// Dial connects to a campaign server, authenticates, and opens (or
// resumes) a session.
func Dial(ctx context.Context, addr string, opts Options) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	}
	hello := &sweep.ClientHello{Token: opts.Token, Auth: opts.Auth}
	if err := sweep.WriteMessage(conn, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake write: %w", err)
	}
	t, payload, err := sweep.ReadFrame(conn)
	if err != nil {
		conn.Close()
		// An auth-rejected connection is simply closed by the server, so
		// the handshake read fails; name the likeliest cause.
		return nil, fmt.Errorf("serve: handshake read (connection rejected — bad auth token?): %w", err)
	}
	msg, err := sweep.DecodeMessage(t, payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake decode: %w", err)
	}
	w, ok := msg.(*sweep.ClientWelcome)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake: unexpected %v frame", t)
	}
	conn.SetDeadline(time.Time{})
	c := &Client{
		conn:     conn,
		opts:     opts,
		token:    w.Token,
		draining: w.Draining,
		replies:  map[uint64]chan *sweep.SubmitReply{},
		infos:    map[uint64]chan *sweep.JobInfo{},
		finals:   map[uint64]chan *FinalResult{},
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Token is the session token — present it in Options.Token to resume
// this session after a disconnect.
func (c *Client) Token() string { return c.token }

// Draining reports whether the server announced it is winding down at
// handshake time (running jobs finish; new submissions are rejected).
func (c *Client) Draining() bool { return c.draining }

// Close drops the connection. The server keeps the session resumable
// until its ClientTTL.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readDone
	return err
}

func (c *Client) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// fail ends the read loop: every pending and future wait sees the
// error.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.mu.Unlock()
	close(c.readDone)
}

// readLoop dispatches inbound frames to the pending waits and the
// snapshot callback.
func (c *Client) readLoop() {
	for {
		t, payload, err := sweep.ReadFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("serve: connection lost: %w", err))
			return
		}
		msg, err := sweep.DecodeMessage(t, payload)
		if err != nil {
			c.logf("serve client: corrupt frame, skipped: %v", err)
			continue
		}
		switch m := msg.(type) {
		case *sweep.SubmitReply:
			c.mu.Lock()
			ch := c.replies[m.Ref]
			delete(c.replies, m.Ref)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		case *sweep.JobInfo:
			c.mu.Lock()
			ch := c.infos[m.Ref]
			delete(c.infos, m.Ref)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		case *sweep.Snapshot:
			if c.opts.OnSnapshot == nil {
				continue
			}
			var snap JobSnapshot
			if err := json.Unmarshal(m.Data, &snap); err != nil {
				continue
			}
			c.opts.OnSnapshot(snap, m.Seq)
		case *sweep.Final:
			f := &FinalResult{JobID: m.JobID, Err: m.ErrMsg, Result: m.Result}
			select {
			case c.finalChan(m.JobID) <- f:
			default: // duplicate redelivery; the first copy stands
			}
		default:
			c.logf("serve client: unexpected %v frame, ignored", t)
		}
	}
}

// finalChan returns the job's final channel, creating it on demand —
// finals can arrive for jobs submitted on a previous connection of a
// resumed session, or out of order with the submit reply.
func (c *Client) finalChan(jobID uint64) chan *FinalResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := c.finals[jobID]
	if ch == nil {
		ch = make(chan *FinalResult, 1)
		c.finals[jobID] = ch
	}
	return ch
}

func (c *Client) writeMsg(m sweep.Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return sweep.WriteMessage(c.conn, m)
}

func (c *Client) ref() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextRef++
	return c.nextRef
}

// Submit sends one campaign and returns its admitted job ID.
func (c *Client) Submit(ctx context.Context, spec Campaign) (uint64, error) {
	ref := c.ref()
	ch := make(chan *sweep.SubmitReply, 1)
	c.mu.Lock()
	c.replies[ref] = ch
	c.mu.Unlock()
	m := &sweep.Submit{
		Ref:        ref,
		Experiment: spec.Experiment,
		Label:      spec.Label,
		Priority:   uint32(max(spec.Priority, 0)),
		Quick:      spec.Quick,
		Workers:    spec.Workers,
		Accum:      spec.Accum,
		Bins:       spec.Bins,
		Params:     spec.Params,
	}
	if spec.Seed != nil {
		m.HasSeed, m.Seed = true, *spec.Seed
	}
	if err := c.writeMsg(m); err != nil {
		return 0, fmt.Errorf("serve: submit: %w", err)
	}
	select {
	case r := <-ch:
		if r.ErrMsg != "" {
			return 0, errors.New(r.ErrMsg)
		}
		return r.JobID, nil
	case <-c.readDone:
		return 0, c.readError()
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Wait blocks until the job's final result arrives (pushed by the
// server; redelivered on session resume).
func (c *Client) Wait(ctx context.Context, jobID uint64) (*FinalResult, error) {
	select {
	case f := <-c.finalChan(jobID):
		return f, nil
	case <-c.readDone:
		return nil, c.readError()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *Client) readError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// control runs one JobControl round trip.
func (c *Client) control(ctx context.Context, verb sweep.ControlVerb, jobID uint64) (*sweep.JobInfo, error) {
	ref := c.ref()
	ch := make(chan *sweep.JobInfo, 1)
	c.mu.Lock()
	c.infos[ref] = ch
	c.mu.Unlock()
	if err := c.writeMsg(&sweep.JobControl{Ref: ref, Verb: verb, JobID: jobID}); err != nil {
		return nil, fmt.Errorf("serve: %v: %w", verb, err)
	}
	select {
	case info := <-ch:
		if info.ErrMsg != "" {
			return nil, errors.New(info.ErrMsg)
		}
		return info, nil
	case <-c.readDone:
		return nil, c.readError()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, jobID uint64) (JobStatus, error) {
	info, err := c.control(ctx, sweep.VerbStatus, jobID)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(info.Data, &st); err != nil {
		return JobStatus{}, fmt.Errorf("serve: status JSON: %w", err)
	}
	return st, nil
}

// Cancel cancels one running job (finished jobs are a no-op) and
// returns its status; the job's Final then reports the cancellation.
func (c *Client) Cancel(ctx context.Context, jobID uint64) (JobStatus, error) {
	info, err := c.control(ctx, sweep.VerbCancel, jobID)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(info.Data, &st); err != nil {
		return JobStatus{}, fmt.Errorf("serve: cancel JSON: %w", err)
	}
	return st, nil
}

// List fetches the status of every job the server knows, in submission
// order.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	info, err := c.control(ctx, sweep.VerbList, 0)
	if err != nil {
		return nil, err
	}
	var list []JobStatus
	if err := json.Unmarshal(info.Data, &list); err != nil {
		return nil, fmt.Errorf("serve: list JSON: %w", err)
	}
	return list, nil
}
