// Package serve is the long-lived campaign service: one shared listener
// accepts both sweep workers (contributing shard compute) and clients
// (submitting campaigns), schedules every admitted campaign over the
// one shared pool with fair-share tickets at shard granularity, streams
// periodic partial-state snapshots plus the final result to each
// client, and keeps cross-request caches (scheme memo tables, prepared
// workload instances) warm between submissions. Campaign results are
// bit-identical to a direct exp.Run of the same runner — the engine's
// determinism is independent of scheduling, pool size, and worker
// churn.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"faultmem/internal/exp"
	"faultmem/internal/mc"
	"faultmem/internal/sweep"
	"faultmem/internal/workload"
)

// Config tunes the campaign server. The zero value selects production
// defaults; tests shrink the clocks to milliseconds.
type Config struct {
	// Sweep configures the embedded shard coordinator (worker leases,
	// worker-session TTLs, remote-attempt bounds). Its AuthToken and
	// LocalWorkers are overridden by the server's own; its Logf defaults
	// to the server's.
	Sweep sweep.Config
	// AuthToken, when non-empty, is the shared secret every worker and
	// client must present in its handshake (constant-time compared;
	// failing connections are dropped before any state exists).
	AuthToken string
	// WorkerSlots is how many scheduler tickets each connected worker
	// contributes — the per-worker shard concurrency the fair-share gate
	// assumes (default 4).
	WorkerSlots int
	// LocalWorkers is the capacity floor: the shards the server computes
	// itself when the pool is empty (default GOMAXPROCS).
	LocalWorkers int
	// ClientInflight caps one client's concurrently executing shards
	// across all of its campaigns, so a single client cannot monopolize
	// the pool (default 0 = uncapped; fair-share still applies).
	ClientInflight int
	// SnapshotEvery is the partial-state push period (default 1s).
	SnapshotEvery time.Duration
	// ClientTTL is the resume window of a disconnected client session:
	// within it the session's jobs keep running and final results are
	// buffered for redelivery; past it the session is pruned and its
	// unfinished jobs cancelled (default 30s).
	ClientTTL time.Duration
	// Logf, when non-nil, receives one line per lifecycle event, with a
	// "[job N]" prefix on job-scoped lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.WorkerSlots <= 0 {
		c.WorkerSlots = 4
	}
	c.LocalWorkers = mc.Workers(c.LocalWorkers)
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = time.Second
	}
	if c.ClientTTL <= 0 {
		c.ClientTTL = 30 * time.Second
	}
	return c
}

// client is one client's identity across reconnects, mirroring the
// worker sessions of the sweep coordinator: conn is nil while
// disconnected, and the session (with its running jobs and buffered
// finals) survives until ClientTTL.
type client struct {
	token    string
	conn     net.Conn // guarded by Server.mu
	writeMu  sync.Mutex
	lastSeen time.Time
	lim      *limiter
	jobs     map[uint64]*servJob
	finals   []*sweep.Final // buffered while disconnected, drained on resume
}

// servJob is one admitted campaign.
type servJob struct {
	id         uint64
	owner      *client
	experiment string
	label      string
	priority   int
	ctx        context.Context
	cancel     context.CancelFunc
	entry      *schedEntry
	done       chan struct{} // closed once terminal

	mu         sync.Mutex
	state      string
	errMsg     string
	cancelled  bool
	stages     map[string]*StageProgress
	stageOrder []string
	snapSeq    uint64
}

// note is the job's exp.ProgressFunc: it folds stage events into the
// snapshot state. Events are serialized per engine run but stages of a
// multi-phase experiment may interleave.
func (j *servJob) note(p exp.Progress) {
	key := p.Experiment
	if p.Stage != "" {
		key = p.Experiment + "/" + p.Stage
	}
	j.mu.Lock()
	sp := j.stages[key]
	if sp == nil {
		sp = &StageProgress{Stage: key}
		j.stages[key] = sp
		j.stageOrder = append(j.stageOrder, key)
	}
	sp.Done, sp.Total = p.Done, p.Total
	j.mu.Unlock()
}

// status snapshots the job into its wire form.
func (j *servJob) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		Experiment: j.experiment,
		Label:      j.label,
		State:      j.state,
		Priority:   j.priority,
		Error:      j.errMsg,
	}
	for _, key := range j.stageOrder {
		st.Stages = append(st.Stages, *j.stages[key])
	}
	return st
}

func (j *servJob) markCancelled() {
	j.mu.Lock()
	j.cancelled = true
	j.mu.Unlock()
}

// Server is the campaign service. Start one with NewServer; stop it
// with Drain (graceful) or Close (immediate).
type Server struct {
	cfg   Config
	ln    net.Listener
	pool  *sweep.Coordinator
	sched *scheduler

	mu       sync.Mutex
	clients  map[string]*client
	jobs     map[uint64]*servJob
	nextJob  uint64
	draining bool

	done   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup
}

// NewServer starts a campaign server on ln. The embedded coordinator
// shares the listener: a connection's first frame routes it — a worker
// Hello to the shard pool, a ClientHello to the campaign surface.
// Starting a server also switches on the process-wide cross-request
// caches (workload instances; the scheme memo cache is always on), so
// repeat submissions skip dataset and table construction.
func NewServer(ln net.Listener, cfg Config) *Server {
	cfg = cfg.withDefaults()
	scfg := cfg.Sweep
	scfg.AuthToken = cfg.AuthToken
	scfg.LocalWorkers = cfg.LocalWorkers
	if scfg.Logf == nil {
		scfg.Logf = cfg.Logf
	}
	pool := sweep.NewDetachedCoordinator(scfg)
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		pool:    pool,
		clients: map[string]*client{},
		jobs:    map[uint64]*servJob{},
		done:    make(chan struct{}),
	}
	s.sched = newScheduler(func() int {
		return cfg.LocalWorkers + cfg.WorkerSlots*pool.ConnectedWorkers()
	})
	workload.EnableInstanceCache(0)
	s.wg.Add(2)
	go s.acceptLoop()
	go s.janitor()
	return s
}

// Addr is the listener's address (useful with a ":0" listener).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Workers counts the sweep workers currently connected to the pool.
func (s *Server) Workers() int { return s.pool.ConnectedWorkers() }

// PoolStats returns the embedded coordinator's robustness counters.
func (s *Server) PoolStats() sweep.Stats { return s.pool.Stats() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func clientToken() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: crypto/rand failed: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Close shuts the server down immediately: running jobs are cancelled,
// connections dropped, the pool closed. Prefer Drain for a graceful
// stop.
func (s *Server) Close() error {
	s.closed.Do(func() {
		close(s.done)
		s.ln.Close()
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		conns := make([]net.Conn, 0, len(s.clients))
		for _, cl := range s.clients {
			if cl.conn != nil {
				conns = append(conns, cl.conn)
			}
		}
		s.mu.Unlock()
		for _, conn := range conns {
			conn.Close()
		}
		// Closing the pool drops the worker connections, unblocking the
		// demux goroutines parked in AdmitWorker session loops — they are
		// counted in s.wg, so the pool must die before the Wait below.
		s.pool.Close()
	})
	s.wg.Wait()
	return s.pool.Close()
}

// Drain is the graceful stop: new submissions are rejected from now on,
// running jobs are waited for — ctx bounds the wait; on expiry the
// stragglers are cancelled and their cancellation finals still
// delivered — and the server then shuts down.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	running := make([]*servJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		running = append(running, j)
	}
	s.mu.Unlock()
	s.logf("serve: draining (%d jobs running)", len(running))
	for _, j := range running {
		select {
		case <-j.done:
		case <-ctx.Done():
			s.logf("serve: [job %d] drain deadline reached, cancelling", j.id)
			j.markCancelled()
			j.cancel()
			<-j.done
		}
	}
	return s.Close()
}

// acceptLoop admits connections and demultiplexes by first frame.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.demux(conn)
		}()
	}
}

// demux reads the first frame and routes the connection: a worker Hello
// goes to the shard pool (which owns it until it dies), a ClientHello
// to the campaign surface. Anything else is dropped.
func (s *Server) demux(conn net.Conn) {
	t, flags, payload, err := sweep.ReadFrameFlags(conn)
	if err != nil {
		conn.Close()
		return
	}
	msg, err := sweep.DecodeMessage(t, payload)
	if err != nil {
		conn.Close()
		return
	}
	switch hello := msg.(type) {
	case *sweep.Hello:
		s.pool.AdmitWorker(conn, hello, flags)
		s.sched.poke() // the pool just shrank; re-fit the gate
	case *sweep.ClientHello:
		s.handleClient(conn, hello)
	default:
		conn.Close()
	}
}

// sendMsg writes one frame on a client's current connection.
func (s *Server) sendMsg(cl *client, m sweep.Message) error {
	cl.writeMu.Lock()
	defer cl.writeMu.Unlock()
	s.mu.Lock()
	conn := cl.conn
	s.mu.Unlock()
	if conn == nil {
		return errors.New("serve: client disconnected")
	}
	return sweep.WriteMessage(conn, m)
}

// handleClient runs one client connection: auth, session open/resume,
// buffered-final redelivery, then the submit/control message loop.
func (s *Server) handleClient(conn net.Conn, hello *sweep.ClientHello) {
	defer conn.Close()
	if !sweep.AuthEqual(s.cfg.AuthToken, hello.Auth) {
		s.logf("serve: client from %v failed authentication, dropped", conn.RemoteAddr())
		return
	}
	s.mu.Lock()
	cl := s.clients[hello.Token]
	if cl != nil {
		if cl.conn != nil {
			cl.conn.Close()
		}
		cl.conn = conn
		cl.lastSeen = time.Now()
		s.logf("serve: client %s resumed from %v", cl.token, conn.RemoteAddr())
	} else {
		cl = &client{
			token:    clientToken(),
			conn:     conn,
			lastSeen: time.Now(),
			jobs:     map[uint64]*servJob{},
		}
		if s.cfg.ClientInflight > 0 {
			cl.lim = &limiter{cap: s.cfg.ClientInflight}
		}
		s.clients[cl.token] = cl
		s.logf("serve: client %s connected from %v", cl.token, conn.RemoteAddr())
	}
	draining := s.draining
	finals := cl.finals
	cl.finals = nil
	s.mu.Unlock()

	if err := s.sendMsg(cl, &sweep.ClientWelcome{Token: cl.token, Draining: draining}); err != nil {
		s.detachClient(cl, conn)
		return
	}
	for _, f := range finals {
		s.deliverFinal(cl, f)
	}

	for {
		t, payload, err := sweep.ReadFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("serve: client %s connection dropped: %v", cl.token, err)
			}
			break
		}
		msg, err := sweep.DecodeMessage(t, payload)
		if err != nil {
			s.logf("serve: client %s sent a corrupt frame, rejected: %v", cl.token, err)
			continue
		}
		s.mu.Lock()
		cl.lastSeen = time.Now()
		s.mu.Unlock()
		switch m := msg.(type) {
		case *sweep.Submit:
			s.handleSubmit(cl, m)
		case *sweep.JobControl:
			s.handleControl(cl, m)
		default:
			s.logf("serve: client %s sent unexpected %v frame, ignored", cl.token, t)
		}
	}
	s.detachClient(cl, conn)
}

// detachClient marks a client disconnected if conn is still its current
// connection, leaving the session resumable until ClientTTL.
func (s *Server) detachClient(cl *client, conn net.Conn) {
	s.mu.Lock()
	if cl.conn == conn {
		cl.conn = nil
		cl.lastSeen = time.Now()
	}
	s.mu.Unlock()
}

// handleSubmit admits one campaign (or rejects it: unknown experiment,
// draining server) and answers with a SubmitReply.
func (s *Server) handleSubmit(cl *client, m *sweep.Submit) {
	reply := &sweep.SubmitReply{Ref: m.Ref}
	if _, ok := exp.Lookup(m.Experiment); !ok {
		reply.ErrMsg = (&exp.ErrUnknownExperiment{Name: m.Experiment}).Error()
		s.sendMsg(cl, reply)
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		reply.ErrMsg = "serve: server is draining, not accepting new campaigns"
		s.sendMsg(cl, reply)
		return
	}
	s.nextJob++
	priority := int(m.Priority)
	if priority < 1 {
		priority = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &servJob{
		id:         s.nextJob,
		owner:      cl,
		experiment: m.Experiment,
		label:      m.Label,
		priority:   priority,
		ctx:        ctx,
		cancel:     cancel,
		entry:      s.sched.admit(priority, cl.lim),
		done:       make(chan struct{}),
		state:      StateRunning,
		stages:     map[string]*StageProgress{},
	}
	s.jobs[j.id] = j
	cl.jobs[j.id] = j
	s.mu.Unlock()
	reply.JobID = j.id
	s.logf("serve: [job %d] admitted: %s for client %s (priority %d, label %q)",
		j.id, j.experiment, cl.token, priority, m.Label)
	s.wg.Add(1)
	go s.runJob(j, m)
	s.sendMsg(cl, reply)
}

// runJob executes one campaign over the shared pool, with every shard
// gated through the fair-share scheduler, and delivers the final.
func (s *Server) runJob(j *servJob, m *sweep.Submit) {
	defer s.wg.Done()
	base := &exp.Runner{
		Workers:  m.Workers,
		Quick:    m.Quick,
		Accum:    m.Accum,
		Bins:     m.Bins,
		Progress: j.note,
	}
	if m.HasSeed {
		seed := m.Seed
		base.Seed = &seed
	}
	if len(m.Params) > 0 {
		base.Params = json.RawMessage(m.Params)
	}
	rc, err := s.pool.DistributedRunner(base)
	if err != nil {
		s.finishJob(j, nil, err)
		return
	}
	inner := rc.Exec
	entry := j.entry
	rc.Exec = func(sj mc.ShardJob) (any, error) {
		if err := s.sched.acquire(sj.Ctx, entry); err != nil {
			return nil, err
		}
		defer s.sched.release(entry)
		return inner(sj)
	}
	stop := make(chan struct{})
	s.wg.Add(1)
	go s.snapshotLoop(j, stop)
	res, err := exp.Run(j.ctx, m.Experiment, rc)
	close(stop)
	s.finishJob(j, res, err)
}

// snapshotLoop pushes a JobSnapshot to the job's owner every
// SnapshotEvery until the job ends. Pushes to a disconnected client are
// dropped — snapshots are ephemeral by design.
func (s *Server) snapshotLoop(j *servJob, stop chan struct{}) {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-s.done:
			return
		case <-t.C:
		}
		st := j.status()
		if st.State != StateRunning {
			return
		}
		snap := JobSnapshot{ID: j.id, State: st.State, Stages: st.Stages}
		data, err := json.Marshal(snap)
		if err != nil {
			continue
		}
		j.mu.Lock()
		j.snapSeq++
		seq := j.snapSeq
		j.mu.Unlock()
		s.sendMsg(j.owner, &sweep.Snapshot{JobID: j.id, Seq: seq, Data: data})
	}
}

// finishJob records a job's terminal state and delivers (or buffers)
// its Final frame.
func (s *Server) finishJob(j *servJob, res *exp.Result, err error) {
	f := &sweep.Final{JobID: j.id}
	state := StateDone
	if err != nil {
		state = StateFailed
		j.mu.Lock()
		if j.cancelled && errors.Is(err, context.Canceled) {
			state = StateCancelled
			err = fmt.Errorf("serve: job cancelled")
		}
		j.mu.Unlock()
		f.ErrMsg = err.Error()
	} else if b, jerr := res.JSON(); jerr != nil {
		state = StateFailed
		f.ErrMsg = fmt.Sprintf("serve: encoding result: %v", jerr)
	} else {
		f.Result = b
	}
	j.mu.Lock()
	j.state = state
	j.errMsg = f.ErrMsg
	j.mu.Unlock()
	j.cancel()
	s.logf("serve: [job %d] %s (%s)", j.id, state, j.experiment)
	// Deliver before signalling done: Drain tears the server down as
	// soon as every job's done channel closes, and the final must be on
	// the wire (or buffered) by then.
	s.deliverFinal(j.owner, f)
	close(j.done)
}

// deliverFinal pushes a Final to the client, buffering it on the
// session for redelivery when the client is disconnected.
func (s *Server) deliverFinal(cl *client, f *sweep.Final) {
	if err := s.sendMsg(cl, f); err != nil {
		s.mu.Lock()
		cl.finals = append(cl.finals, f)
		s.mu.Unlock()
	}
}

// handleControl answers one status/cancel/list verb with a JobInfo.
func (s *Server) handleControl(cl *client, m *sweep.JobControl) {
	info := &sweep.JobInfo{Ref: m.Ref}
	switch m.Verb {
	case sweep.VerbList:
		s.mu.Lock()
		jobs := make([]*servJob, 0, len(s.jobs))
		for _, j := range s.jobs {
			jobs = append(jobs, j)
		}
		s.mu.Unlock()
		sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
		list := make([]JobStatus, len(jobs))
		for i, j := range jobs {
			list[i] = j.status()
		}
		info.Data, _ = json.Marshal(list)
	case sweep.VerbStatus, sweep.VerbCancel:
		s.mu.Lock()
		j := s.jobs[m.JobID]
		s.mu.Unlock()
		if j == nil {
			info.ErrMsg = fmt.Sprintf("serve: unknown job %d", m.JobID)
			break
		}
		if m.Verb == sweep.VerbCancel {
			s.logf("serve: [job %d] cancelled by client %s", j.id, cl.token)
			j.markCancelled()
			j.cancel()
		}
		info.Data, _ = json.Marshal(j.status())
	}
	s.sendMsg(cl, info)
}

// janitor prunes client sessions past their resume window — cancelling
// their unfinished jobs and dropping their buffered finals — and
// periodically re-pumps the scheduler against fresh pool capacity.
func (s *Server) janitor() {
	defer s.wg.Done()
	tick := s.cfg.ClientTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		}
		now := time.Now()
		var orphans []*servJob
		s.mu.Lock()
		for token, cl := range s.clients {
			if cl.conn != nil || now.Sub(cl.lastSeen) <= s.cfg.ClientTTL {
				continue
			}
			delete(s.clients, token)
			s.logf("serve: pruned client %s after %v offline", token, now.Sub(cl.lastSeen))
			for id, j := range cl.jobs {
				delete(s.jobs, id)
				j.mu.Lock()
				running := j.state == StateRunning
				j.mu.Unlock()
				if running {
					orphans = append(orphans, j)
				}
			}
		}
		s.mu.Unlock()
		for _, j := range orphans {
			s.logf("serve: [job %d] owner session pruned, cancelling", j.id)
			j.markCancelled()
			j.cancel()
		}
		s.sched.poke()
	}
}
