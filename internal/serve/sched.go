package serve

import (
	"context"
	"sync"
)

// The fair-share gate. Every shard of every admitted campaign must hold
// a ticket while it executes (locally or on a remote worker), and the
// gate hands tickets out by stride scheduling: each campaign carries a
// virtual-time pass that advances by strideScale/weight per grant, and
// the eligible waiter with the smallest pass wins the next ticket. That
// makes grant throughput proportional to priority weight regardless of
// how many tickets the pool has — a huge fig7 run and a -quick smoke
// interleave at shard granularity instead of queueing whole campaigns,
// and a campaign admitted mid-run starts at the current virtual clock
// rather than replaying the head start of its elders. Because the
// Monte-Carlo engine exports all of a run's shards concurrently when an
// executor is installed, every campaign always has waiters parked here,
// so the moment a ticket frees up a starved campaign takes it.

// strideScale is the virtual-time numerator: one grant advances a
// campaign's pass by strideScale/weight.
const strideScale = 1 << 20

// limiter caps one client's concurrently executing shards across all of
// its campaigns. A nil limiter means uncapped.
type limiter struct {
	cap      int
	inflight int // guarded by the owning scheduler's mu
}

// schedEntry is one campaign's standing in the gate. All fields are
// guarded by the scheduler's mu after admit.
type schedEntry struct {
	weight int     // priority weight, >= 1
	seq    uint64  // admission order, the pass tie-break
	stride uint64  // strideScale / weight
	pass   uint64  // virtual time consumed
	lim    *limiter
}

type waiter struct {
	e       *schedEntry
	ready   chan struct{}
	granted bool // guarded by scheduler.mu
}

// scheduler is the ticket gate. Capacity is sampled on every pump so it
// tracks the worker pool live: tickets = local parallelism + slots per
// connected worker.
type scheduler struct {
	capacity func() int

	mu       sync.Mutex
	inflight int
	vtime    uint64 // pass of the most recently granted entry
	waiters  []*waiter
	nextSeq  uint64
}

func newScheduler(capacity func() int) *scheduler {
	return &scheduler{capacity: capacity}
}

// admit registers one campaign with the gate at the given priority
// weight (values < 1 are lifted to 1). The entry joins at the current
// virtual clock, so it competes fairly from now on without inheriting
// or owing history. Entries need no teardown: a finished campaign
// simply stops acquiring.
func (s *scheduler) admit(weight int, lim *limiter) *schedEntry {
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeq++
	return &schedEntry{
		weight: weight,
		seq:    s.nextSeq,
		stride: strideScale / uint64(weight),
		pass:   s.vtime,
		lim:    lim,
	}
}

// acquire blocks until the entry is granted a ticket or ctx dies. Every
// successful acquire must be paired with a release.
func (s *scheduler) acquire(ctx context.Context, e *schedEntry) error {
	w := &waiter{e: e, ready: make(chan struct{})}
	s.mu.Lock()
	s.waiters = append(s.waiters, w)
	s.pumpLocked()
	s.mu.Unlock()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		granted := w.granted
		if !granted {
			for i, o := range s.waiters {
				if o == w {
					s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
					break
				}
			}
		}
		s.mu.Unlock()
		if granted {
			// The grant raced the cancellation; hand the ticket back.
			s.release(e)
		}
		return ctx.Err()
	}
}

// release returns a ticket and re-pumps, so the fairest waiter runs
// immediately.
func (s *scheduler) release(e *schedEntry) {
	s.mu.Lock()
	s.inflight--
	if e.lim != nil {
		e.lim.inflight--
	}
	s.pumpLocked()
	s.mu.Unlock()
}

// poke re-pumps against fresh capacity — called periodically by the
// server's janitor so workers joining mid-run widen the gate without
// waiting for the next release.
func (s *scheduler) poke() {
	s.mu.Lock()
	s.pumpLocked()
	s.mu.Unlock()
}

// pumpLocked grants tickets while capacity remains, each to the
// eligible waiter with the smallest pass (admission order breaks ties).
// Callers hold s.mu.
func (s *scheduler) pumpLocked() {
	for {
		cap := s.capacity()
		if cap < 1 {
			cap = 1
		}
		if s.inflight >= cap || len(s.waiters) == 0 {
			return
		}
		best := -1
		for i, w := range s.waiters {
			if w.e.lim != nil && w.e.lim.inflight >= w.e.lim.cap {
				continue // this client is at its cap
			}
			if best < 0 || fairer(w.e, s.waiters[best].e) {
				best = i
			}
		}
		if best < 0 {
			return // every waiter is client-capped
		}
		w := s.waiters[best]
		s.waiters = append(s.waiters[:best], s.waiters[best+1:]...)
		w.granted = true
		s.inflight++
		s.vtime = w.e.pass
		w.e.pass += w.e.stride
		if w.e.lim != nil {
			w.e.lim.inflight++
		}
		close(w.ready)
	}
}

// fairer reports whether entry a deserves the next ticket over b:
// smaller virtual-time pass first, earlier admission on a tie.
func fairer(a, b *schedEntry) bool {
	if a.pass != b.pass {
		return a.pass < b.pass
	}
	return a.seq < b.seq
}
