package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// parkWaiters waits until n waiters are parked in the gate.
func parkWaiters(t *testing.T, s *scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		parked := len(s.waiters)
		s.mu.Unlock()
		if parked >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters parked", parked, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerStrideWeights: with one ticket and parked waiters from a
// weight-2 and a weight-1 entry, grants follow the stride pattern — the
// heavy entry gets two grants for every one of the light entry's.
func TestSchedulerStrideWeights(t *testing.T) {
	s := newScheduler(func() int { return 1 })
	blocker := s.admit(1, nil)
	if err := s.acquire(context.Background(), blocker); err != nil {
		t.Fatal(err)
	}

	heavy := s.admit(2, nil)
	light := s.admit(1, nil)
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	park := func(name string, e *schedEntry, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.acquire(context.Background(), e); err != nil {
					t.Errorf("acquire %s: %v", name, err)
					return
				}
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				s.release(e)
			}()
		}
	}
	park("heavy", heavy, 6)
	park("light", light, 3)
	parkWaiters(t, s, 9)

	// Releasing the blocker starts the grant chain: each grant records
	// itself then releases, so the whole parked set drains through the
	// single ticket in stride order.
	s.release(blocker)
	wg.Wait()

	heavyFirst6 := 0
	for _, name := range order[:6] {
		if name == "heavy" {
			heavyFirst6++
		}
	}
	if heavyFirst6 != 4 {
		t.Fatalf("weight-2 entry got %d of the first 6 grants, want 4 (order %v)", heavyFirst6, order)
	}
}

// TestSchedulerInterleavesEqualWeights: two equal campaigns alternate
// grants — neither can starve the other regardless of admission order.
func TestSchedulerInterleavesEqualWeights(t *testing.T) {
	s := newScheduler(func() int { return 1 })
	blocker := s.admit(1, nil)
	if err := s.acquire(context.Background(), blocker); err != nil {
		t.Fatal(err)
	}
	a := s.admit(1, nil)
	b := s.admit(1, nil)
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for _, p := range []struct {
		name string
		e    *schedEntry
	}{{"a", a}, {"b", b}} {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.acquire(context.Background(), p.e); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				mu.Lock()
				order = append(order, p.name)
				mu.Unlock()
				s.release(p.e)
			}()
		}
	}
	parkWaiters(t, s, 8)
	s.release(blocker)
	wg.Wait()
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("grants did not alternate: %v", order)
		}
	}
}

// TestSchedulerClientCap: a capped client's second shard stays parked
// even with tickets free, while an uncapped client fills the rest.
func TestSchedulerClientCap(t *testing.T) {
	s := newScheduler(func() int { return 4 })
	lim := &limiter{cap: 1}
	capped := s.admit(1, lim)
	free := s.admit(1, nil)

	granted := make(chan string, 8)
	holdRelease := make(chan struct{})
	var wg sync.WaitGroup
	hold := func(name string, e *schedEntry, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.acquire(context.Background(), e); err != nil {
					return
				}
				granted <- name
				<-holdRelease
				s.release(e)
			}()
		}
	}
	hold("capped", capped, 3)
	hold("free", free, 2)

	counts := map[string]int{}
	deadline := time.After(5 * time.Second)
	for i := 0; i < 3; i++ {
		select {
		case name := <-granted:
			counts[name]++
		case <-deadline:
			t.Fatalf("only %d grants arrived: %v", i, counts)
		}
	}
	// One capped + two free grants fit; the capped client's remaining
	// shards must stay parked despite a ticket being free.
	time.Sleep(50 * time.Millisecond)
	select {
	case name := <-granted:
		t.Fatalf("extra grant to %s past the client cap", name)
	default:
	}
	if counts["capped"] != 1 || counts["free"] != 2 {
		t.Fatalf("grants = %v, want capped:1 free:2", counts)
	}
	close(holdRelease)
	// Draining the holds lets the capped client's remaining shards
	// through one at a time.
	wg.Wait()
}
