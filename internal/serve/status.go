package serve

// Job states as reported in JobStatus.State and JobSnapshot.State.
const (
	// StateRunning: admitted and executing (its shards gate through the
	// fair-share scheduler; "running" does not imply a ticket is held
	// this instant).
	StateRunning = "running"
	// StateDone: finished cleanly; the Final frame carried the result.
	StateDone = "done"
	// StateFailed: the experiment returned an error.
	StateFailed = "failed"
	// StateCancelled: ended by a cancel verb, a pruned client session,
	// or a drain deadline.
	StateCancelled = "cancelled"
)

// StageProgress is the progress of one engine stage of a campaign.
// Stage is the engine-run tag ("experiment" or "experiment/stage").
type StageProgress struct {
	Stage string `json:"stage"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// JobStatus is the server's answer to the status/cancel/list verbs —
// the JSON payload of a JobInfo frame (one object for status/cancel, an
// array in submission order for list).
type JobStatus struct {
	ID         uint64          `json:"id"`
	Experiment string          `json:"experiment"`
	Label      string          `json:"label,omitempty"`
	State      string          `json:"state"`
	Priority   int             `json:"priority"`
	Error      string          `json:"error,omitempty"`
	Stages     []StageProgress `json:"stages,omitempty"`
}

// JobSnapshot is one periodic partial-state push for a running job —
// the JSON payload of a Snapshot frame. Snapshots are ephemeral: a
// disconnected client misses them and simply picks up fresh ones after
// resuming (the Final is what gets buffered and redelivered).
type JobSnapshot struct {
	ID     uint64          `json:"id"`
	State  string          `json:"state"`
	Stages []StageProgress `json:"stages,omitempty"`
}
