package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"faultmem/internal/exp"
	"faultmem/internal/mc"
	"faultmem/internal/serve"
	"faultmem/internal/sweep"
)

// sleepExp is a synthetic registry experiment with a controllable shard
// count and per-shard duration, so scheduling tests don't depend on the
// real campaigns' budgets. Shards ride the engine's executor hook, so
// they gate through the server's fair-share scheduler exactly like real
// campaigns.
type sleepExp struct {
	name   string
	shards int
	delay  time.Duration
}

func (e sleepExp) Name() string        { return e.name }
func (e sleepExp) DefaultParams() any  { return &struct{}{} }
func (e sleepExp) Description() string { return "synthetic test campaign" }

func (e sleepExp) Run(ctx context.Context, r *exp.Runner) (*exp.Result, error) {
	env := mc.Env{Ctx: ctx, Tag: e.name}
	if r != nil {
		env.Exec = r.Exec
		if r.Progress != nil {
			sink := r.Progress
			env.OnShard = func(done, total int) {
				sink(exp.Progress{Experiment: e.name, Done: done, Total: total})
			}
		}
	}
	out, err := mc.RunEnv(env, 0, e.shards, 1, func(shard int, rng *rand.Rand) int {
		select {
		case <-time.After(e.delay):
		case <-ctx.Done():
		}
		return shard
	})
	if err != nil {
		return nil, err
	}
	t := &exp.Table{Title: e.name, Header: []string{"shards"}}
	t.AddRow(fmt.Sprint(len(out)))
	return &exp.Result{Experiment: e.name, Tables: []*exp.Table{t}}, nil
}

func init() {
	exp.Register(sleepExp{name: "sleepy-long", shards: 40, delay: 25 * time.Millisecond})
	exp.Register(sleepExp{name: "sleepy-short", shards: 4, delay: 25 * time.Millisecond})
}

func testConfig(t *testing.T) serve.Config {
	return serve.Config{
		Sweep: sweep.Config{
			Lease:      500 * time.Millisecond,
			SessionTTL: time.Second,
		},
		SnapshotEvery: 10 * time.Millisecond,
		ClientTTL:     time.Second,
		Logf:          t.Logf,
	}
}

func startServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(ln, cfg)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dial(t *testing.T, srv *serve.Server, opts serve.Options) *serve.Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	c, err := serve.Dial(ctx, srv.Addr().String(), opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func goldenJSON(t *testing.T, name string) []byte {
	t.Helper()
	seed := int64(7)
	res, err := exp.Run(context.Background(), name, &exp.Runner{Quick: true, Seed: &seed})
	if err != nil {
		t.Fatalf("local %s: %v", name, err)
	}
	j, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func submitAndWait(t *testing.T, c *serve.Client, spec serve.Campaign) *serve.FinalResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	id, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit %s: %v", spec.Experiment, err)
	}
	f, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", spec.Experiment, err)
	}
	return f
}

// TestServeByteIdenticalToLocal: the core contract — a campaign
// submitted through the server returns exactly the bytes a direct local
// run produces.
func TestServeByteIdenticalToLocal(t *testing.T) {
	srv := startServer(t, testConfig(t))
	c := dial(t, srv, serve.Options{})
	seed := int64(7)
	f := submitAndWait(t, c, serve.Campaign{Experiment: "fig2", Quick: true, Seed: &seed})
	if f.Err != "" {
		t.Fatalf("job failed: %s", f.Err)
	}
	if want := goldenJSON(t, "fig2"); !bytes.Equal(f.Result, want) {
		t.Fatalf("served result differs from local run:\nserved: %s\nlocal:  %s", f.Result, want)
	}
}

// TestServeConcurrentCampaignsWithWorker: two campaigns in flight at
// once over one pool with a sweep worker attached — both results stay
// byte-identical, and the worker demonstrably computed shards.
func TestServeConcurrentCampaignsWithWorker(t *testing.T) {
	cfg := testConfig(t)
	srv := startServer(t, cfg)

	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan struct{})
	go func() {
		defer close(wdone)
		sweep.RunWorker(wctx, srv.Addr().String(), sweep.WorkerConfig{
			Heartbeat:    50 * time.Millisecond,
			ReconnectMin: 10 * time.Millisecond,
			ReconnectMax: 50 * time.Millisecond,
			Logf:         t.Logf,
		})
	}()
	t.Cleanup(func() { wcancel(); <-wdone })
	waitWorkers(t, srv, 1)

	c := dial(t, srv, serve.Options{})
	var wg sync.WaitGroup
	finals := make([]*serve.FinalResult, 2)
	for i, name := range []string{"fig2", "fig5"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seed := int64(7)
			finals[i] = submitAndWait(t, c, serve.Campaign{Experiment: name, Quick: true, Seed: &seed})
		}()
	}
	wg.Wait()
	for i, name := range []string{"fig2", "fig5"} {
		if finals[i].Err != "" {
			t.Fatalf("%s failed: %s", name, finals[i].Err)
		}
		if want := goldenJSON(t, name); !bytes.Equal(finals[i].Result, want) {
			t.Errorf("%s served result differs from local run", name)
		}
	}
	if st := srv.PoolStats(); st.RemoteShards == 0 {
		t.Errorf("worker was connected but computed no shards: %+v", st)
	}
}

func waitWorkers(t *testing.T, srv *serve.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Workers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers joined", srv.Workers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeFairShare: a small campaign submitted after a much larger
// one finishes first, because tickets interleave at shard granularity
// instead of queueing whole campaigns. With a single local ticket a
// FIFO pool would run all 40 long shards before the short job's 4.
func TestServeFairShare(t *testing.T) {
	cfg := testConfig(t)
	cfg.LocalWorkers = 1
	srv := startServer(t, cfg)
	c := dial(t, srv, serve.Options{})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	longID, err := c.Submit(ctx, serve.Campaign{Experiment: "sleepy-long"})
	if err != nil {
		t.Fatal(err)
	}
	shortID, err := c.Submit(ctx, serve.Campaign{Experiment: "sleepy-short"})
	if err != nil {
		t.Fatal(err)
	}

	type arrival struct {
		id uint64
		f  *serve.FinalResult
	}
	order := make(chan arrival, 2)
	for _, id := range []uint64{longID, shortID} {
		go func() {
			f, err := c.Wait(ctx, id)
			if err != nil {
				t.Errorf("wait job %d: %v", id, err)
				order <- arrival{id: id}
				return
			}
			order <- arrival{id: id, f: f}
		}()
	}
	first := <-order
	second := <-order
	if first.f == nil || second.f == nil {
		t.Fatal("a job never finished")
	}
	if first.id != shortID {
		t.Fatalf("short campaign (job %d) should finish before the long one (job %d); got job %d first",
			shortID, longID, first.id)
	}
}

// TestServeCancelAndList: cancelling a running job surfaces as a
// cancelled state and an error final; list sees both jobs.
func TestServeCancelAndList(t *testing.T) {
	cfg := testConfig(t)
	cfg.LocalWorkers = 1
	srv := startServer(t, cfg)
	c := dial(t, srv, serve.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	longID, err := c.Submit(ctx, serve.Campaign{Experiment: "sleepy-long", Label: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Cancel(ctx, longID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if st.ID != longID {
		t.Fatalf("cancel status names job %d, want %d", st.ID, longID)
	}
	f, err := c.Wait(ctx, longID)
	if err != nil {
		t.Fatal(err)
	}
	if f.Err == "" {
		t.Fatal("cancelled job delivered a clean final")
	}
	st, err = c.Status(ctx, longID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateCancelled {
		t.Fatalf("state = %q, want %q", st.State, serve.StateCancelled)
	}
	if st.Label != "doomed" {
		t.Fatalf("label = %q, want %q", st.Label, "doomed")
	}

	shortF := submitAndWait(t, c, serve.Campaign{Experiment: "sleepy-short"})
	if shortF.Err != "" {
		t.Fatalf("short job failed: %s", shortF.Err)
	}
	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list returned %d jobs, want 2", len(list))
	}
	if list[0].ID != longID || list[0].State != serve.StateCancelled {
		t.Fatalf("list[0] = %+v, want cancelled job %d", list[0], longID)
	}
	if list[1].State != serve.StateDone {
		t.Fatalf("list[1].State = %q, want %q", list[1].State, serve.StateDone)
	}

	// Unknown jobs answer with an error, not a hang.
	if _, err := c.Status(ctx, 999); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("status of unknown job: %v", err)
	}
}

// TestServeSnapshots: a running job pushes periodic partial-state
// snapshots with increasing sequence numbers.
func TestServeSnapshots(t *testing.T) {
	cfg := testConfig(t)
	cfg.LocalWorkers = 1
	srv := startServer(t, cfg)

	var mu sync.Mutex
	var snaps []serve.JobSnapshot
	var seqs []uint64
	c := dial(t, srv, serve.Options{OnSnapshot: func(snap serve.JobSnapshot, seq uint64) {
		mu.Lock()
		snaps = append(snaps, snap)
		seqs = append(seqs, seq)
		mu.Unlock()
	}})

	f := submitAndWait(t, c, serve.Campaign{Experiment: "sleepy-long"})
	if f.Err != "" {
		t.Fatalf("job failed: %s", f.Err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no snapshots arrived for a 1s campaign at a 10ms push period")
	}
	for i, snap := range snaps {
		if snap.State != serve.StateRunning {
			t.Errorf("snapshot %d state = %q, want %q", i, snap.State, serve.StateRunning)
		}
		if i > 0 && seqs[i] <= seqs[i-1] {
			t.Errorf("snapshot seqs not increasing: %v", seqs)
		}
	}
	last := snaps[len(snaps)-1]
	if len(last.Stages) == 0 || last.Stages[0].Done == 0 {
		t.Errorf("final snapshot carries no progress: %+v", last)
	}
}

// TestServeResumeDeliversBufferedFinal: a client that disconnects
// mid-run and resumes by token receives the final computed while it was
// away.
func TestServeResumeDeliversBufferedFinal(t *testing.T) {
	cfg := testConfig(t)
	cfg.ClientTTL = 5 * time.Second
	srv := startServer(t, cfg)
	c1 := dial(t, srv, serve.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	id, err := c1.Submit(ctx, serve.Campaign{Experiment: "sleepy-short"})
	if err != nil {
		t.Fatal(err)
	}
	token := c1.Token()
	c1.Close() // drop mid-run; the session (and the job) lives on

	c2 := dial(t, srv, serve.Options{Token: token})
	if c2.Token() != token {
		t.Fatalf("resumed session token = %q, want %q", c2.Token(), token)
	}
	f, err := c2.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if f.Err != "" {
		t.Fatalf("job failed: %s", f.Err)
	}
	if f.JobID != id {
		t.Fatalf("final names job %d, want %d", f.JobID, id)
	}
}

// TestServeDrain: draining lets the running job finish and deliver its
// final while new submissions are rejected.
func TestServeDrain(t *testing.T) {
	cfg := testConfig(t)
	cfg.LocalWorkers = 1
	srv := startServer(t, cfg)
	c := dial(t, srv, serve.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	id, err := c.Submit(ctx, serve.Campaign{Experiment: "sleepy-long"})
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(ctx) }()

	// The draining flag is set synchronously at the head of Drain, but
	// give the goroutine a moment to get there.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Submit(ctx, serve.Campaign{Experiment: "sleepy-short"})
		if err != nil && strings.Contains(err.Error(), "draining") {
			break
		}
		if err != nil {
			t.Fatalf("submit during drain: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions never started being rejected")
		}
		time.Sleep(10 * time.Millisecond)
	}

	f, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if f.Err != "" {
		t.Fatalf("drained job failed: %s", f.Err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServeAuth: wrong shared secrets fail the handshake for both
// clients and workers; the right one connects.
func TestServeAuth(t *testing.T) {
	cfg := testConfig(t)
	cfg.AuthToken = "s3cret"
	srv := startServer(t, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := serve.Dial(ctx, srv.Addr().String(), serve.Options{Auth: "wrong", Logf: t.Logf}); err == nil {
		t.Fatal("dial with a wrong auth token succeeded")
	}
	if _, err := serve.Dial(ctx, srv.Addr().String(), serve.Options{Logf: t.Logf}); err == nil {
		t.Fatal("dial with no auth token succeeded")
	}

	// A worker with the wrong secret is dropped at the handshake and
	// never joins the pool.
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan struct{})
	go func() {
		defer close(wdone)
		sweep.RunWorker(wctx, srv.Addr().String(), sweep.WorkerConfig{
			AuthToken:    "wrong",
			ReconnectMin: 10 * time.Millisecond,
			ReconnectMax: 20 * time.Millisecond,
		})
	}()
	time.Sleep(200 * time.Millisecond)
	if n := srv.Workers(); n != 0 {
		t.Fatalf("unauthenticated worker joined the pool (%d connected)", n)
	}
	wcancel()
	<-wdone

	// The right secret works end to end.
	c := dial(t, srv, serve.Options{Auth: "s3cret"})
	wctx2, wcancel2 := context.WithCancel(context.Background())
	wdone2 := make(chan struct{})
	go func() {
		defer close(wdone2)
		sweep.RunWorker(wctx2, srv.Addr().String(), sweep.WorkerConfig{
			AuthToken:    "s3cret",
			Heartbeat:    50 * time.Millisecond,
			ReconnectMin: 10 * time.Millisecond,
			ReconnectMax: 50 * time.Millisecond,
			Logf:         t.Logf,
		})
	}()
	t.Cleanup(func() { wcancel2(); <-wdone2 })
	waitWorkers(t, srv, 1)
	f := submitAndWait(t, c, serve.Campaign{Experiment: "sleepy-short"})
	if f.Err != "" {
		t.Fatalf("authenticated job failed: %s", f.Err)
	}
}

// TestServeRejectsUnknownExperiment: submissions of unregistered names
// fail loudly with the registry vocabulary.
func TestServeRejectsUnknownExperiment(t *testing.T) {
	srv := startServer(t, testConfig(t))
	c := dial(t, srv, serve.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := c.Submit(ctx, serve.Campaign{Experiment: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("submit of unknown experiment: %v", err)
	}
}

// TestServeCloseWithConnectedWorker: closing (or draining) the server
// while a worker is still attached must terminate — the pool owns the
// worker connections, and Close has to drop them before waiting out the
// demux goroutines parked in their session loops.
func TestServeCloseWithConnectedWorker(t *testing.T) {
	srv := startServer(t, testConfig(t))
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan struct{})
	go func() {
		defer close(wdone)
		sweep.RunWorker(wctx, srv.Addr().String(), sweep.WorkerConfig{
			Heartbeat:    50 * time.Millisecond,
			ReconnectMin: 10 * time.Millisecond,
			ReconnectMax: 50 * time.Millisecond,
			Logf:         t.Logf,
		})
	}()
	defer func() { wcancel(); <-wdone }()
	waitWorkers(t, srv, 1)

	closed := make(chan struct{})
	go func() {
		defer close(closed)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("server shutdown deadlocked with a worker still connected")
	}
}

// TestServeWorkerJoinsMidRun: the byte-identity contract holds when a
// sweep worker joins while a campaign is already in flight — the pool
// widens, remote shards contribute, and the result bytes do not move.
func TestServeWorkerJoinsMidRun(t *testing.T) {
	cfg := testConfig(t)
	// One local ticket keeps the 40×25ms campaign in flight (~1s) long
	// past the worker's join, which lands within milliseconds.
	cfg.LocalWorkers = 1
	srv := startServer(t, cfg)
	c := dial(t, srv, serve.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	seed := int64(7)
	id, err := c.Submit(ctx, serve.Campaign{Experiment: "sleepy-long", Quick: true, Seed: &seed})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan struct{})
	go func() {
		defer close(wdone)
		sweep.RunWorker(wctx, srv.Addr().String(), sweep.WorkerConfig{
			Heartbeat:    50 * time.Millisecond,
			ReconnectMin: 10 * time.Millisecond,
			ReconnectMax: 50 * time.Millisecond,
			Logf:         t.Logf,
		})
	}()
	t.Cleanup(func() { wcancel(); <-wdone })
	waitWorkers(t, srv, 1)

	f, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if f.Err != "" {
		t.Fatalf("job failed: %s", f.Err)
	}
	if want := goldenJSON(t, "sleepy-long"); !bytes.Equal(f.Result, want) {
		t.Fatalf("mid-run worker join changed the result bytes")
	}
	if st := srv.PoolStats(); st.RemoteShards == 0 {
		t.Errorf("worker joined mid-run but computed no shards: %+v", st)
	}
}
