package bist

import (
	"testing"

	"faultmem/internal/core"
	"faultmem/internal/fault"
	"faultmem/internal/sram"
	"faultmem/internal/stats"
)

func TestComplexities(t *testing.T) {
	if ZeroOne().Complexity() != 4 {
		t.Errorf("Zero-One complexity %d, want 4", ZeroOne().Complexity())
	}
	if MATSPlus().Complexity() != 5 {
		t.Errorf("MATS+ complexity %d, want 5", MATSPlus().Complexity())
	}
	if MarchCMinus().Complexity() != 10 {
		t.Errorf("March C- complexity %d, want 10", MarchCMinus().Complexity())
	}
	if MarchB().Complexity() != 17 {
		t.Errorf("March B complexity %d, want 17", MarchB().Complexity())
	}
}

func TestOpStrings(t *testing.T) {
	if W0.String() != "w0" || W1.String() != "w1" || R0.String() != "r0" || R1.String() != "r1" {
		t.Error("op names wrong")
	}
}

func TestCleanArrayNoDetections(t *testing.T) {
	for _, alg := range []Algorithm{ZeroOne(), MATSPlus(), MarchCMinus(), MarchB()} {
		arr := sram.NewArray(64, 32)
		rep := Run(alg, arr)
		if len(rep.Detected) != 0 {
			t.Errorf("%s: %d false positives on a clean array", alg.Name, len(rep.Detected))
		}
		if rep.Operations != alg.Complexity()*64 {
			t.Errorf("%s: %d ops, want %d", alg.Name, rep.Operations, alg.Complexity()*64)
		}
	}
}

func sameCells(a, b fault.Map) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[[2]int]fault.Kind, len(a))
	for _, f := range a {
		set[[2]int{f.Row, f.Col}] = f.Kind
	}
	for _, f := range b {
		k, ok := set[[2]int{f.Row, f.Col}]
		if !ok || k != f.Kind {
			return false
		}
	}
	return true
}

func TestAllAlgorithmsDetectAndClassifyAllFaultKinds(t *testing.T) {
	// Every algorithm reads both backgrounds at every cell, so all three
	// modeled fault kinds must be detected at the exact location AND
	// classified correctly.
	rng := stats.NewRand(21)
	for _, alg := range []Algorithm{ZeroOne(), MATSPlus(), MarchCMinus(), MarchB()} {
		for trial := 0; trial < 20; trial++ {
			injected := fault.RandomKinds(rng,
				fault.GenerateCount(rng, 64, 32, 12, fault.Flip),
				[]fault.Kind{fault.Flip, fault.StuckAt0, fault.StuckAt1})
			arr := sram.NewArray(64, 32)
			if err := arr.SetFaults(injected); err != nil {
				t.Fatal(err)
			}
			rep := Run(alg, arr)
			if !sameCells(rep.Detected, injected) {
				t.Fatalf("%s trial %d: detected %v != injected %v",
					alg.Name, trial, rep.Detected, injected)
			}
		}
	}
}

func TestDetectSingleStuckAt(t *testing.T) {
	arr := sram.NewArray(8, 16)
	if err := arr.SetFaults(fault.Map{{Row: 3, Col: 7, Kind: fault.StuckAt1}}); err != nil {
		t.Fatal(err)
	}
	rep := Run(MarchCMinus(), arr)
	if len(rep.Detected) != 1 {
		t.Fatalf("detected %d faults, want 1", len(rep.Detected))
	}
	f := rep.Detected[0]
	if f.Row != 3 || f.Col != 7 || f.Kind != fault.StuckAt1 {
		t.Errorf("detected %+v", f)
	}
}

func TestProgramFMLUTEndToEnd(t *testing.T) {
	// Full POST flow: inject faults, BIST-scan, program the LUT, attach
	// the shuffling datapath, and verify the single-fault error bound.
	rng := stats.NewRand(8)
	cfg := core.Config{Width: 32, NFM: 5}
	// One fault per distinct row so the single-fault guarantee applies.
	var injected fault.Map
	rows := 32
	for _, r := range stats.SampleDistinct(rng, rows, 10) {
		injected = append(injected, fault.Fault{Row: r, Col: rng.Intn(32), Kind: fault.Flip})
	}
	arr := sram.NewArray(rows, 32)
	if err := arr.SetFaults(injected); err != nil {
		t.Fatal(err)
	}
	lut, rep, err := ProgramFMLUT(MarchCMinus(), arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Detected) != len(injected) {
		t.Fatalf("BIST found %d faults, injected %d", len(rep.Detected), len(injected))
	}
	shuf, err := core.NewShuffledWithLUT(arr, lut)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < rows; a++ {
		v := uint32(rng.Uint64())
		shuf.Write(a, v)
		got := shuf.Read(a)
		diff := uint64(v ^ got)
		if diff > 1 { // nFM=5: error magnitude at most 2^0
			t.Fatalf("row %d: error pattern %#x exceeds nFM=5 bound", a, diff)
		}
	}
}

func TestProgramFMLUTWidthMismatch(t *testing.T) {
	arr := sram.NewArray(4, 16)
	if _, _, err := ProgramFMLUT(MarchCMinus(), arr, core.Config{Width: 32, NFM: 5}); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestRunLeavesDeterministicState(t *testing.T) {
	// After any March test the array holds the last written background
	// (accounting for faults); the test must be repeatable.
	arr := sram.NewArray(16, 32)
	if err := arr.SetFaults(fault.Map{{Row: 2, Col: 9, Kind: fault.Flip}}); err != nil {
		t.Fatal(err)
	}
	rep1 := Run(MarchB(), arr)
	rep2 := Run(MarchB(), arr)
	if !sameCells(rep1.Detected, rep2.Detected) {
		t.Error("BIST not repeatable")
	}
}

func BenchmarkMarchCMinus16KB(b *testing.B) {
	rng := stats.NewRand(1)
	arr := sram.New16KB()
	if err := arr.SetFaults(fault.GenerateCount(rng, arr.Rows(), 32, 131, fault.Flip)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Run(MarchCMinus(), arr)
	}
}
