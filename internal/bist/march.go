// Package bist implements memory built-in self test: March algorithms
// that walk a raw SRAM array to locate and classify faulty bit-cells, and
// the glue that programs a bit-shuffling FM-LUT from the result (§3,
// step 1: "the location of the faulty cell in each row/word is detected
// during BIST and a shifting value is recorded in the FM-LUT").
//
// The March tests operate word-wise with solid backgrounds (all-0 /
// all-1), which detects and fully classifies the fault kinds modeled by
// internal/sram (stuck-at-0, stuck-at-1, and read-flip faults). Coupling
// faults are outside the fault model of this reproduction.
package bist

import (
	"fmt"

	"faultmem/internal/core"
	"faultmem/internal/fault"
	"faultmem/internal/sram"
)

// Op is one March operation applied at each address of an element.
type Op uint8

const (
	// W0 writes the all-zeros background.
	W0 Op = iota
	// W1 writes the all-ones background.
	W1
	// R0 reads and expects the all-zeros background.
	R0
	// R1 reads and expects the all-ones background.
	R1
)

// String returns the conventional March notation of the operation.
func (o Op) String() string {
	switch o {
	case W0:
		return "w0"
	case W1:
		return "w1"
	case R0:
		return "r0"
	case R1:
		return "r1"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Order is the address sweep direction of a March element.
type Order uint8

const (
	// Up sweeps addresses ascending (⇑).
	Up Order = iota
	// Down sweeps addresses descending (⇓).
	Down
	// Any means the direction is irrelevant (⇕); implemented ascending.
	Any
)

// Element is one March element: a sweep order and the operations applied
// at every address before moving on.
type Element struct {
	Order Order
	Ops   []Op
}

// Algorithm is a complete March test.
type Algorithm struct {
	Name     string
	Elements []Element
}

// Complexity returns the operation count per address (the conventional
// "xN" cost of a March test).
func (a Algorithm) Complexity() int {
	n := 0
	for _, e := range a.Elements {
		n += len(e.Ops)
	}
	return n
}

// ZeroOne returns the 4N zero-one (MSCAN) test:
// {⇕(w0); ⇕(r0); ⇕(w1); ⇕(r1)}. It detects stuck-at and read-flip
// faults but has no address-order structure.
func ZeroOne() Algorithm {
	return Algorithm{Name: "Zero-One", Elements: []Element{
		{Any, []Op{W0}},
		{Any, []Op{R0}},
		{Any, []Op{W1}},
		{Any, []Op{R1}},
	}}
}

// MATSPlus returns the 5N MATS+ test: {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}.
func MATSPlus() Algorithm {
	return Algorithm{Name: "MATS+", Elements: []Element{
		{Any, []Op{W0}},
		{Up, []Op{R0, W1}},
		{Down, []Op{R1, W0}},
	}}
}

// MarchCMinus returns the 10N March C- test:
// {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}.
func MarchCMinus() Algorithm {
	return Algorithm{Name: "March C-", Elements: []Element{
		{Any, []Op{W0}},
		{Up, []Op{R0, W1}},
		{Up, []Op{R1, W0}},
		{Down, []Op{R0, W1}},
		{Down, []Op{R1, W0}},
		{Any, []Op{R0}},
	}}
}

// MarchB returns the 17N March B test:
// {⇕(w0); ⇑(r0,w1,r1,w1,r1,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}.
func MarchB() Algorithm {
	return Algorithm{Name: "March B", Elements: []Element{
		{Any, []Op{W0}},
		{Up, []Op{R0, W1, R1, W1, R1, W1}},
		{Up, []Op{R1, W0, W1}},
		{Down, []Op{R1, W0, W1, W0}},
		{Down, []Op{R0, W1, W0}},
	}}
}

// Report is the outcome of a BIST run.
type Report struct {
	Algorithm string
	// Detected is the classified fault map (kinds inferred from the
	// observed misread pattern).
	Detected fault.Map
	// Operations is the total number of word accesses performed.
	Operations int
}

// Run executes the March algorithm on the array and returns the detected,
// classified fault map. The array's contents are destroyed (BIST runs at
// power-on/test time, before the memory holds live data).
func Run(alg Algorithm, arr *sram.Array) Report {
	rows, width := arr.Rows(), arr.Width()
	ones := (uint64(1) << uint(width)) - 1
	// misread[cell] bit0: read 1 where 0 expected; bit1: read 0 where 1
	// expected.
	misread := make([]uint8, rows*width)
	ops := 0

	for _, el := range alg.Elements {
		for i := 0; i < rows; i++ {
			addr := i
			if el.Order == Down {
				addr = rows - 1 - i
			}
			for _, op := range el.Ops {
				ops++
				switch op {
				case W0:
					arr.Write(addr, 0)
				case W1:
					arr.Write(addr, ones)
				case R0:
					got := arr.Read(addr)
					for diff := got; diff != 0; diff &= diff - 1 {
						col := trailingZeros(diff)
						misread[addr*width+col] |= 1
					}
				case R1:
					got := arr.Read(addr)
					for diff := (^got) & ones; diff != 0; diff &= diff - 1 {
						col := trailingZeros(diff)
						misread[addr*width+col] |= 2
					}
				}
			}
		}
	}

	var detected fault.Map
	for cell, m := range misread {
		if m == 0 {
			continue
		}
		var kind fault.Kind
		switch m {
		case 1:
			kind = fault.StuckAt1 // reads 1 when 0 expected, 1s fine
		case 2:
			kind = fault.StuckAt0 // reads 0 when 1 expected, 0s fine
		default:
			kind = fault.Flip // misreads both backgrounds
		}
		detected = append(detected, fault.Fault{
			Row: cell / width, Col: cell % width, Kind: kind,
		})
	}
	return Report{Algorithm: alg.Name, Detected: detected, Operations: ops}
}

func trailingZeros(v uint64) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// ProgramFMLUT runs the algorithm on the array and programs a fresh
// FM-LUT for the given shuffling configuration from the detected faults:
// the full power-on self-test flow of §3. The returned LUT can be paired
// with the array via core.NewShuffledWithLUT.
func ProgramFMLUT(alg Algorithm, arr *sram.Array, cfg core.Config) (*core.FMLUT, Report, error) {
	if arr.Width() != cfg.Width {
		return nil, Report{}, fmt.Errorf("bist: array width %d != config width %d", arr.Width(), cfg.Width)
	}
	rep := Run(alg, arr)
	lut, err := core.BuildFMLUT(cfg, arr.Rows(), rep.Detected)
	if err != nil {
		return nil, rep, err
	}
	return lut, rep, nil
}
