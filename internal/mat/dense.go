// Package mat implements the small dense linear-algebra kernel the
// data-mining benchmarks need: matrices, covariance, standardization, and
// a Jacobi eigensolver for symmetric matrices (used by PCA).
//
// It is deliberately minimal and allocation-transparent; everything is
// float64 and row-major.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense creates an r x c zero matrix. It panics on non-positive
// dimensions.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying the
// data.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows of empty data")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d (len %d, want %d)", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of range")
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i as a slice aliasing the matrix storage; mutations
// write through. Intended for hot loops (KNN distance computation).
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of range")
	}
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// SetRow copies vals into row i. It panics when vals is not exactly one
// row wide. Together with RawRow it lets hot loops refill a scratch
// matrix in place instead of allocating a new one per trial.
func (m *Dense) SetRow(i int, vals []float64) {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of range")
	}
	if len(vals) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d, want %d", len(vals), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], vals)
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic("mat: column index out of range")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	n := NewDense(m.rows, m.cols)
	copy(n.data, m.data)
	return n
}

// Copy overwrites m with src. It panics on dimension mismatch.
func (m *Dense) Copy(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: Copy dimension mismatch %dx%d vs %dx%d",
			m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Reshape returns an r x c zero matrix, reusing m's backing storage when
// its capacity suffices (m may be nil or any prior shape). It is the
// growth primitive behind the reusable fit workspaces: a warm workspace
// matrix is resized and cleared without touching the allocator. The
// clear is deliberate even when callers overwrite every cell — it is a
// single linear memset, negligible next to any fit's compute, and it
// keeps stale-data bugs impossible.
func Reshape(m *Dense, r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	if m == nil || cap(m.data) < r*c {
		return NewDense(r, c)
	}
	m.rows, m.cols = r, c
	m.data = m.data[:r*c]
	clear(m.data)
	return m
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	return TransposeInto(NewDense(m.cols, m.rows), m)
}

// TransposeInto writes the transpose of m into dst (which must be
// cols x rows) and returns dst. dst must not alias m. The walk is
// tiled: a naive transpose strides one full row length between
// consecutive writes, missing cache on every store once the matrix
// outgrows L1; the 32x32 tiles keep both the read and write footprints
// inside a few KB regardless of matrix size.
func TransposeInto(dst, m *Dense) *Dense {
	if dst.rows != m.cols || dst.cols != m.rows {
		panic(fmt.Sprintf("mat: TransposeInto destination %dx%d, want %dx%d",
			dst.rows, dst.cols, m.cols, m.rows))
	}
	const tile = 32
	for ii := 0; ii < m.rows; ii += tile {
		iMax := ii + tile
		if iMax > m.rows {
			iMax = m.rows
		}
		for jj := 0; jj < m.cols; jj += tile {
			jMax := jj + tile
			if jMax > m.cols {
				jMax = m.cols
			}
			for i := ii; i < iMax; i++ {
				row := m.data[i*m.cols : (i+1)*m.cols]
				for j := jj; j < jMax; j++ {
					dst.data[j*dst.cols+i] = row[j]
				}
			}
		}
	}
	return dst
}

// Mul returns a*b. It panics on dimension mismatch.
func Mul(a, b *Dense) *Dense {
	return MulInto(NewDense(a.rows, b.cols), a, b)
}

// MulInto computes a*b into dst (which must be a.rows x b.cols) and
// returns dst. Prior contents of dst are discarded; dst must not alias
// a or b (it is zeroed before the inputs are read). It panics on
// dimension mismatch.
func MulInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto destination %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	out := dst
	clear(out.data)
	bc := b.cols
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		// Process the summation index in blocks of 4: one pass over orow
		// per four contributions instead of four, with the four products
		// combined pairwise so the adds form a short tree instead of a
		// serial dependency chain (the chain's add latency, not flop
		// throughput, bounds the naive loop). Blocks containing a zero
		// multiplier fall back to the per-k loop so exact zeros still
		// skip their row of b (0 * Inf must not inject NaN).
		k := 0
		for ; k+4 <= len(arow); k += 4 {
			av0, av1, av2, av3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if av0 == 0 || av1 == 0 || av2 == 0 || av3 == 0 {
				mulIntoTail(orow, arow[k:k+4], b.data[k*bc:], bc)
				continue
			}
			b0 := b.data[k*bc : k*bc+bc][:len(orow)]
			b1 := b.data[(k+1)*bc : (k+1)*bc+bc][:len(orow)]
			b2 := b.data[(k+2)*bc : (k+2)*bc+bc][:len(orow)]
			b3 := b.data[(k+3)*bc : (k+3)*bc+bc][:len(orow)]
			for j := range orow {
				orow[j] += (av0*b0[j] + av1*b1[j]) + (av2*b2[j] + av3*b3[j])
			}
		}
		mulIntoTail(orow, arow[k:], b.data[k*bc:], bc)
	}
	return out
}

// mulIntoTail accumulates avs[k]*b.row(k) into orow one k at a time —
// the scalar remainder of MulInto's blocked loop. bdata starts at the
// row matching avs[0].
func mulIntoTail(orow, avs, bdata []float64, bc int) {
	for k, av := range avs {
		if av == 0 {
			continue
		}
		brow := bdata[k*bc : k*bc+bc]
		for j, bv := range brow {
			orow[j] += av * bv
		}
	}
}

// MulVec returns a*x as a new vector.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// SqDist returns the squared Euclidean distance between x and y.
func SqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: SqDist length mismatch")
	}
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// SqDistBounded is SqDist with early abandonment: it accumulates the
// squared distance in the same term order as SqDist but gives up as
// soon as the partial sum reaches bound (squared terms only grow the
// sum, so the full distance is guaranteed to be >= bound too). It
// returns (exact distance, true) when the distance is strictly below
// bound, and (a partial sum, false) otherwise. The checks run every
// few terms, so a completed accumulation is bit-identical to SqDist —
// this is what lets KNN prune candidates without changing any kept
// neighbor distance (its blocked scan inlines the same contract four
// rows at a time; the scalar remainder path calls this directly).
func SqDistBounded(x, y []float64, bound float64) (float64, bool) {
	if len(x) != len(y) {
		panic("mat: SqDistBounded length mismatch")
	}
	const block = 8
	s := 0.0
	i := 0
	for ; i+block <= len(x); i += block {
		for j := i; j < i+block; j++ {
			d := x[j] - y[j]
			s += d * d
		}
		if s >= bound {
			return s, false
		}
	}
	for ; i < len(x); i++ {
		d := x[i] - y[i]
		s += d * d
	}
	if s >= bound {
		return s, false
	}
	return s, true
}

// ColMeans returns the per-column means of m.
func ColMeans(m *Dense) []float64 {
	return ColMeansInto(make([]float64, m.cols), m)
}

// ColMeansInto computes the per-column means of m into mu (which must
// have length cols) and returns mu.
func ColMeansInto(mu []float64, m *Dense) []float64 {
	if len(mu) != m.cols {
		panic(fmt.Sprintf("mat: ColMeansInto length %d, want %d", len(mu), m.cols))
	}
	clear(mu)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(m.rows)
	}
	return mu
}

// ColStds returns the per-column sample standard deviations of m
// (ddof = 1; a zero-variance column reports 0).
func ColStds(m *Dense) []float64 {
	return ColStdsInto(make([]float64, m.cols), m, ColMeans(m))
}

// ColStdsInto computes the per-column sample standard deviations of m
// (ddof = 1) into sd, given the precomputed column means mu, and returns
// sd. Both slices must have length cols.
func ColStdsInto(sd []float64, m *Dense, mu []float64) []float64 {
	if len(sd) != m.cols || len(mu) != m.cols {
		panic(fmt.Sprintf("mat: ColStdsInto lengths %d/%d, want %d", len(sd), len(mu), m.cols))
	}
	clear(sd)
	if m.rows < 2 {
		return sd
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			d := v - mu[j]
			sd[j] += d * d
		}
	}
	for j := range sd {
		sd[j] = math.Sqrt(sd[j] / float64(m.rows-1))
	}
	return sd
}

// Standardizer centers and scales columns to zero mean / unit variance,
// remembering the transform so it can be applied to held-out data.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer learns the column transform from m. Columns with zero
// (or non-finite) spread get Std 1 so they pass through centered only.
func FitStandardizer(m *Dense) *Standardizer {
	s := &Standardizer{Mean: ColMeans(m), Std: ColStds(m)}
	for j, sd := range s.Std {
		if sd == 0 || math.IsNaN(sd) || math.IsInf(sd, 0) {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply returns a standardized copy of m using the learned transform.
func (s *Standardizer) Apply(m *Dense) *Dense {
	out := NewDense(m.rows, m.cols)
	return s.ApplyInto(out, m)
}

// ApplyInto writes the standardized transform of m into dst (which must
// have m's dimensions) and returns dst. Prior contents of dst are
// discarded; dst must not alias m unless they are the same matrix.
func (s *Standardizer) ApplyInto(dst, m *Dense) *Dense {
	if m.cols != len(s.Mean) {
		panic("mat: Standardizer dimension mismatch")
	}
	if dst.rows != m.rows || dst.cols != m.cols {
		panic(fmt.Sprintf("mat: ApplyInto destination %dx%d, want %dx%d",
			dst.rows, dst.cols, m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		src := m.data[i*m.cols : (i+1)*m.cols]
		row := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j := range row {
			row[j] = (src[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return dst
}

// Covariance returns the (cols x cols) sample covariance matrix of m
// (ddof = 1). PCA consumes this.
func Covariance(m *Dense) *Dense {
	return CovarianceInto(NewDense(m.cols, m.cols), m, nil)
}

// CovarianceInto computes the sample covariance matrix of m (ddof = 1)
// into dst (which must be cols x cols) and returns dst. mu is an
// optional length-cols scratch slice for the column means (nil
// allocates); prior contents of dst and mu are discarded.
func CovarianceInto(dst *Dense, m *Dense, mu []float64) *Dense {
	if m.rows < 2 {
		panic("mat: Covariance needs at least 2 rows")
	}
	if dst.rows != m.cols || dst.cols != m.cols {
		panic(fmt.Sprintf("mat: CovarianceInto destination %dx%d, want %dx%d",
			dst.rows, dst.cols, m.cols, m.cols))
	}
	if mu == nil {
		mu = make([]float64, m.cols)
	}
	ColMeansInto(mu, m)
	c := dst
	clear(c.data)
	d := m.cols
	// Accumulate the upper triangle four rows at a time: each C element
	// is loaded and stored once per four rank-1 updates instead of once
	// per row, and the four products combine pairwise so the adds form
	// a short tree instead of a serial dependency chain. Roughly halves
	// the wall time of the O(n*d^2) pass at the Fig. 7 PCA geometry.
	i := 0
	for ; i+4 <= m.rows; i += 4 {
		r0 := m.data[i*d : (i+1)*d]
		r1 := m.data[(i+1)*d : (i+2)*d]
		r2 := m.data[(i+2)*d : (i+3)*d]
		r3 := m.data[(i+3)*d : (i+4)*d]
		for a := 0; a < d; a++ {
			ma := mu[a]
			da0, da1, da2, da3 := r0[a]-ma, r1[a]-ma, r2[a]-ma, r3[a]-ma
			crow := c.data[a*d : (a+1)*d]
			for b := a; b < d; b++ {
				mb := mu[b]
				crow[b] += (da0*(r0[b]-mb) + da1*(r1[b]-mb)) +
					(da2*(r2[b]-mb) + da3*(r3[b]-mb))
			}
		}
	}
	for ; i < m.rows; i++ {
		row := m.data[i*d : (i+1)*d]
		for a := 0; a < d; a++ {
			da := row[a] - mu[a]
			if da == 0 {
				continue
			}
			crow := c.data[a*d : (a+1)*d]
			for b := a; b < d; b++ {
				crow[b] += da * (row[b] - mu[b])
			}
		}
	}
	n1 := float64(m.rows - 1)
	for a := 0; a < m.cols; a++ {
		for b := a; b < m.cols; b++ {
			v := c.data[a*c.cols+b] / n1
			c.data[a*c.cols+b] = v
			c.data[b*c.cols+a] = v
		}
	}
	return c
}
