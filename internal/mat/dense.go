// Package mat implements the small dense linear-algebra kernel the
// data-mining benchmarks need: matrices, covariance, standardization, and
// a Jacobi eigensolver for symmetric matrices (used by PCA).
//
// It is deliberately minimal and allocation-transparent; everything is
// float64 and row-major.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense creates an r x c zero matrix. It panics on non-positive
// dimensions.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying the
// data.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows of empty data")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d (len %d, want %d)", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of range")
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i as a slice aliasing the matrix storage; mutations
// write through. Intended for hot loops (KNN distance computation).
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of range")
	}
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// SetRow copies vals into row i. It panics when vals is not exactly one
// row wide. Together with RawRow it lets hot loops refill a scratch
// matrix in place instead of allocating a new one per trial.
func (m *Dense) SetRow(i int, vals []float64) {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of range")
	}
	if len(vals) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d, want %d", len(vals), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], vals)
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic("mat: column index out of range")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	n := NewDense(m.rows, m.cols)
	copy(n.data, m.data)
	return n
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns a*b. It panics on dimension mismatch.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns a*x as a new vector.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// SqDist returns the squared Euclidean distance between x and y.
func SqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: SqDist length mismatch")
	}
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// ColMeans returns the per-column means of m.
func ColMeans(m *Dense) []float64 {
	mu := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(m.rows)
	}
	return mu
}

// ColStds returns the per-column sample standard deviations of m
// (ddof = 1; a zero-variance column reports 0).
func ColStds(m *Dense) []float64 {
	mu := ColMeans(m)
	sd := make([]float64, m.cols)
	if m.rows < 2 {
		return sd
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			d := v - mu[j]
			sd[j] += d * d
		}
	}
	for j := range sd {
		sd[j] = math.Sqrt(sd[j] / float64(m.rows-1))
	}
	return sd
}

// Standardizer centers and scales columns to zero mean / unit variance,
// remembering the transform so it can be applied to held-out data.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer learns the column transform from m. Columns with zero
// (or non-finite) spread get Std 1 so they pass through centered only.
func FitStandardizer(m *Dense) *Standardizer {
	s := &Standardizer{Mean: ColMeans(m), Std: ColStds(m)}
	for j, sd := range s.Std {
		if sd == 0 || math.IsNaN(sd) || math.IsInf(sd, 0) {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply returns a standardized copy of m using the learned transform.
func (s *Standardizer) Apply(m *Dense) *Dense {
	if m.cols != len(s.Mean) {
		panic("mat: Standardizer dimension mismatch")
	}
	out := m.Clone()
	for i := 0; i < out.rows; i++ {
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return out
}

// Covariance returns the (cols x cols) sample covariance matrix of m
// (ddof = 1). PCA consumes this.
func Covariance(m *Dense) *Dense {
	if m.rows < 2 {
		panic("mat: Covariance needs at least 2 rows")
	}
	mu := ColMeans(m)
	c := NewDense(m.cols, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for a := 0; a < m.cols; a++ {
			da := row[a] - mu[a]
			if da == 0 {
				continue
			}
			crow := c.data[a*c.cols : (a+1)*c.cols]
			for b := a; b < m.cols; b++ {
				crow[b] += da * (row[b] - mu[b])
			}
		}
	}
	n1 := float64(m.rows - 1)
	for a := 0; a < m.cols; a++ {
		for b := a; b < m.cols; b++ {
			v := c.data[a*c.cols+b] / n1
			c.data[a*c.cols+b] = v
			c.data[b*c.cols+a] = v
		}
	}
	return c
}
