package mat

import (
	"fmt"
	"math"
)

// EigenScratch holds the working storage of EigenSymIn — the rotated
// matrix copy, the accumulated rotation matrix, and the eigenvalue
// sorting buffers — so repeated decompositions of same-sized matrices
// reuse one allocation set. The zero value is ready to use.
type EigenScratch struct {
	w, v, vecs     *Dense
	values, sorted []float64
	idx            []int
}

// EigenSym computes the full eigendecomposition of a symmetric matrix
// using the cyclic Jacobi rotation method. It returns eigenvalues in
// descending order and the matching eigenvectors as the columns of the
// returned matrix. The input is not modified.
//
// Jacobi is O(n^3) per sweep but unconditionally stable and dependency-free,
// which fits the dimensionalities in the paper's PCA benchmark
// (Madelon: 500 features).
func EigenSym(a *Dense) (values []float64, vectors *Dense) {
	return EigenSymIn(nil, a)
}

// EigenSymIn is EigenSym backed by reusable scratch storage: the
// returned slice and matrix alias s and stay valid only until the next
// EigenSymIn call on the same scratch. A nil s allocates fresh storage
// (equivalent to EigenSym).
func EigenSymIn(s *EigenScratch, a *Dense) (values []float64, vectors *Dense) {
	if s == nil {
		s = &EigenScratch{}
	}
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("mat: EigenSym of non-square %dx%d", n, c))
	}
	const symTol = 1e-8
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Abs(a.At(i, j) - a.At(j, i))
			scale := math.Max(math.Abs(a.At(i, j)), math.Abs(a.At(j, i)))
			if d > symTol*math.Max(scale, 1) {
				panic(fmt.Sprintf("mat: EigenSym input not symmetric at (%d,%d)", i, j))
			}
		}
	}

	s.w = Reshape(s.w, n, n)
	s.w.Copy(a)
	w := s.w
	s.v = Reshape(s.v, n, n)
	v := s.v
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*frobSq(w) || off == 0 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Skip rotations that no longer change the matrix.
				if math.Abs(apq) < 1e-16*(math.Abs(app)+math.Abs(aqq)+1e-300) {
					w.Set(p, q, 0)
					w.Set(q, p, 0)
					continue
				}
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				cth := 1 / math.Sqrt(t*t+1)
				sth := t * cth
				rotate(w, v, p, q, cth, sth)
			}
		}
	}

	s.values = growFloats(s.values, n)
	vals := s.values
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue (insertion sort: it is
	// allocation-free, and with the original-index tie break the
	// permutation is fully deterministic).
	s.idx = growInts(s.idx, n)
	idx := s.idx
	for i := range idx {
		idx[i] = i
	}
	for k := 1; k < n; k++ {
		cur := idx[k]
		j := k
		for j > 0 && eigenBefore(vals, cur, idx[j-1]) {
			idx[j] = idx[j-1]
			j--
		}
		idx[j] = cur
	}
	s.sorted = growFloats(s.sorted, n)
	sorted := s.sorted
	s.vecs = Reshape(s.vecs, n, n)
	vecs := s.vecs
	for k, i := range idx {
		sorted[k] = vals[i]
		for r := 0; r < n; r++ {
			vecs.Set(r, k, v.At(r, i))
		}
	}
	return sorted, vecs
}

// eigenBefore orders eigenpair a before b: larger eigenvalue first,
// original position first among exact ties.
func eigenBefore(vals []float64, a, b int) bool {
	if vals[a] != vals[b] {
		return vals[a] > vals[b]
	}
	return a < b
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// rotate applies the Jacobi rotation J(p,q,theta) to w (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided).
func rotate(w, v *Dense, p, q int, c, s float64) {
	n, _ := w.Dims()
	for i := 0; i < n; i++ {
		wip := w.At(i, p)
		wiq := w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj := w.At(p, j)
		wqj := w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func frobSq(m *Dense) float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	if s == 0 {
		return 1
	}
	return s
}
