package mat

import (
	"fmt"
	"math"
)

// EigenScratch holds the working storage of EigenSymIn and
// EigenSymTopKIn — the rotated matrix copy, the accumulated rotation
// matrix, the eigenvalue sorting buffers, and the subspace-iteration
// blocks — so repeated decompositions of same-sized matrices reuse one
// allocation set. The zero value is ready to use.
type EigenScratch struct {
	w, v, vecs     *Dense
	values, sorted []float64
	idx            []int

	// EigenSymTopKIn: transposed basis / image / rotated blocks (p x d,
	// rows are basis vectors so every hot loop is contiguous), the small
	// projected matrix and its transposed rotation, the Ritz value
	// history, and the returned top-k outputs.
	qt, yt, xt  *Dense
	small, smt  *Dense
	ritz, ritzP []float64
	topVals     []float64
	topVecs     *Dense

	// basisValid records whether xt holds the converged subspace basis
	// of the last top-k decomposition (false when it fell back to the
	// full Jacobi path); see Subspace.
	basisValid bool
}

// Subspace returns a copy of the subspace-iteration basis that produced
// the last EigenSymTopK*In result on this scratch — p rows of d entries
// each, orthonormal, spanning the computed dominant subspace — or nil
// when the last decomposition took the full-Jacobi fallback (or none has
// run). Feeding it back as the warm start of a later decomposition of a
// nearby matrix cuts the iteration count to the few rounds needed to
// track the perturbation.
func (s *EigenScratch) Subspace() *Dense {
	if !s.basisValid {
		return nil
	}
	out := NewDense(s.xt.rows, s.xt.cols)
	out.Copy(s.xt)
	return out
}

// EigenSym computes the full eigendecomposition of a symmetric matrix
// using the cyclic Jacobi rotation method. It returns eigenvalues in
// descending order and the matching eigenvectors as the columns of the
// returned matrix. The input is not modified.
//
// Jacobi is O(n^3) per sweep but unconditionally stable and dependency-free,
// which fits the dimensionalities in the paper's PCA benchmark
// (Madelon: 500 features).
func EigenSym(a *Dense) (values []float64, vectors *Dense) {
	return EigenSymIn(nil, a)
}

// EigenSymIn is EigenSym backed by reusable scratch storage: the
// returned slice and matrix alias s and stay valid only until the next
// EigenSymIn call on the same scratch. A nil s allocates fresh storage
// (equivalent to EigenSym).
func EigenSymIn(s *EigenScratch, a *Dense) (values []float64, vectors *Dense) {
	if s == nil {
		s = &EigenScratch{}
	}
	s.basisValid = false
	n := checkSquareSym(a)

	s.w = Reshape(s.w, n, n)
	s.w.Copy(a)
	w := s.w
	s.v = Reshape(s.v, n, n)
	v := s.v
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			row := w.data[i*n : (i+1)*n]
			for j := i + 1; j < n; j++ {
				off += row[j] * row[j]
			}
		}
		if off < 1e-22*frobSq(w) || off == 0 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.data[p*n+q]
				if apq == 0 {
					continue
				}
				app := w.data[p*n+p]
				aqq := w.data[q*n+q]
				// Skip rotations that no longer change the matrix.
				if math.Abs(apq) < 1e-16*(math.Abs(app)+math.Abs(aqq)+1e-300) {
					w.data[p*n+q] = 0
					w.data[q*n+p] = 0
					continue
				}
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				cth := 1 / math.Sqrt(t*t+1)
				sth := t * cth
				rotate(w, v, p, q, cth, sth)
			}
		}
	}

	s.values = growFloats(s.values, n)
	vals := s.values
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue (insertion sort: it is
	// allocation-free, and with the original-index tie break the
	// permutation is fully deterministic).
	s.idx = growInts(s.idx, n)
	idx := s.idx
	for i := range idx {
		idx[i] = i
	}
	for k := 1; k < n; k++ {
		cur := idx[k]
		j := k
		for j > 0 && eigenBefore(vals, cur, idx[j-1]) {
			idx[j] = idx[j-1]
			j--
		}
		idx[j] = cur
	}
	s.sorted = growFloats(s.sorted, n)
	sorted := s.sorted
	s.vecs = Reshape(s.vecs, n, n)
	vecs := s.vecs
	for k, i := range idx {
		sorted[k] = vals[i]
		for r := 0; r < n; r++ {
			vecs.Set(r, k, v.At(r, i))
		}
	}
	return sorted, vecs
}

// checkSquareSym validates that a is square and numerically symmetric,
// returning its order.
func checkSquareSym(a *Dense) int {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("mat: EigenSym of non-square %dx%d", n, c))
	}
	const symTol = 1e-8
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Abs(a.At(i, j) - a.At(j, i))
			scale := math.Max(math.Abs(a.At(i, j)), math.Abs(a.At(j, i)))
			if d > symTol*math.Max(scale, 1) {
				panic(fmt.Sprintf("mat: EigenSym input not symmetric at (%d,%d)", i, j))
			}
		}
	}
	return n
}

// eigenBefore orders eigenpair a before b: larger eigenvalue first,
// original position first among exact ties.
func eigenBefore(vals []float64, a, b int) bool {
	if vals[a] != vals[b] {
		return vals[a] > vals[b]
	}
	return a < b
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// rotate applies the Jacobi rotation J(p,q,theta) to w (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided). It indexes
// the backing storage directly — the arithmetic is identical to the
// At/Set formulation, element for element, but skips the bounds checks
// that dominated the profile at the paper's 500-feature geometry.
func rotate(w, v *Dense, p, q int, c, s float64) {
	n := w.rows
	wd := w.data
	for i := 0; i < n; i++ {
		base := i * n
		wip := wd[base+p]
		wiq := wd[base+q]
		wd[base+p] = c*wip - s*wiq
		wd[base+q] = s*wip + c*wiq
	}
	wp := wd[p*n : p*n+n]
	wq := wd[q*n : q*n+n]
	for j := 0; j < n; j++ {
		wpj := wp[j]
		wqj := wq[j]
		wp[j] = c*wpj - s*wqj
		wq[j] = s*wpj + c*wqj
	}
	vd := v.data
	for i := 0; i < n; i++ {
		base := i * n
		vip := vd[base+p]
		viq := vd[base+q]
		vd[base+p] = c*vip - s*viq
		vd[base+q] = s*vip + c*viq
	}
}

func frobSq(m *Dense) float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	if s == 0 {
		return 1
	}
	return s
}

// EigenSymTopK computes the k largest eigenvalues (descending) and the
// matching orthonormal eigenvectors (columns of the returned d x k
// matrix) of a symmetric positive-semidefinite matrix — the exact need
// of PCA, which retains a small number of components of a covariance
// matrix. The input is not modified.
//
// The solver is deterministic blocked subspace (orthogonal) iteration:
// a fixed pseudo-random start basis of p = k + 8 vectors is
// repeatedly multiplied by A and re-orthonormalized, with a
// Rayleigh–Ritz projection through the existing Jacobi solver on the
// small p x p problem each step. Total cost is O(d^2 * p * iters)
// instead of Jacobi's O(d^3) per sweep; at the paper's Madelon
// geometry (d=500, k=10) that is a >10x reduction in eigensolver work.
//
// Correctness nets: when p is a large fraction of d the subspace
// iteration saves nothing, so the call falls back to the full Jacobi
// decomposition and returns its leading k pairs; and if the converged
// Ritz spectrum reveals a significantly negative eigenvalue (the input
// was not PSD, so "largest magnitude" — what power iteration finds —
// and "largest value" can disagree), the call also falls back to the
// full decomposition, keeping the by-value contract for every
// symmetric input.
func EigenSymTopK(a *Dense, k int) (values []float64, vectors *Dense) {
	return EigenSymTopKIn(nil, a, k)
}

// EigenSymTopKIn is EigenSymTopK backed by reusable scratch storage:
// the returned slice and matrix alias s and stay valid only until the
// next EigenSym*In call on the same scratch. A warm scratch makes
// repeated decompositions of same-sized problems allocation-free. A
// nil s allocates fresh storage.
func EigenSymTopKIn(s *EigenScratch, a *Dense, k int) (values []float64, vectors *Dense) {
	return EigenSymTopKWarmIn(s, a, k, nil)
}

// EigenSymTopKWarmIn is EigenSymTopKIn with a warm-started basis: the
// rows of warmT (a row-basis as returned by EigenScratch.Subspace — each
// row one d-vector) seed the leading rows of the start basis, and any
// remaining rows are drawn from the same fixed SplitMix64 stream as the
// cold start before the usual orthonormalization. warmT is not modified
// and may be shared (read-only) across goroutines.
//
// The start basis is a pure function of (warmT, d, k): no randomness, no
// dependence on call order — so a warm basis computed once per workload
// preserves run-to-run and worker-count determinism of everything
// downstream. A nil warmT, or one whose column count does not match a
// (it was computed for a different problem), falls back to the cold
// start. Convergence, fallbacks, and results obey the EigenSymTopK
// contract either way; only the iteration count changes.
func EigenSymTopKWarmIn(s *EigenScratch, a *Dense, k int, warmT *Dense) (values []float64, vectors *Dense) {
	if s == nil {
		s = &EigenScratch{}
	}
	s.basisValid = false
	d := checkSquareSym(a)
	if k < 1 || k > d {
		panic(fmt.Sprintf("mat: EigenSymTopK k=%d outside [1,%d]", k, d))
	}
	p := k + 8
	if p > d {
		p = d
	}
	// When the working block approaches the full dimension the subspace
	// iteration costs as much as the direct decomposition; use the
	// oracle.
	if 4*p >= 3*d {
		return eigenTopKViaFull(s, a, k)
	}

	s.qt = Reshape(s.qt, p, d)
	s.yt = Reshape(s.yt, p, d)
	s.xt = Reshape(s.xt, p, d)
	s.small = Reshape(s.small, p, p)
	s.smt = Reshape(s.smt, p, p)
	s.ritz = growFloats(s.ritz, p)
	s.ritzP = growFloats(s.ritzP, p)

	// Deterministic start basis: warm rows first (when provided and
	// shape-compatible), then a fixed SplitMix64 stream for the rest, so
	// the decomposition — and everything downstream (Fig. 7 quality
	// samples) — is identical run to run and worker count to worker
	// count.
	rngState := uint64(0x9e3779b97f4a7c15)
	seeded := 0
	if warmT != nil && warmT.cols == d {
		seeded = min(warmT.rows, p)
		copy(s.qt.data[:seeded*d], warmT.data[:seeded*d])
	}
	for i := seeded * d; i < len(s.qt.data); i++ {
		s.qt.data[i] = splitmixUniform(&rngState)
	}
	orthonormalizeRows(s.qt, &rngState)

	// Stop when two consecutive projections agree on every retained
	// Ritz value to 1e-10 of the dominant eigenvalue. Eigenvalues
	// converge at twice the subspace rate, so this leaves an order of
	// magnitude of margin under the 1e-9 oracle-agreement contract the
	// tests pin, without paying for the last few bulk-spectrum
	// iterations that only polish digits below it.
	const (
		maxIters = 300
		relTol   = 1e-10
	)
	converged := false
	for it := 0; it < maxIters; it++ {
		// Plain power step first: Qt <- orth(Qt * A). Two multiplications
		// per Rayleigh–Ritz projection double the spectral contraction
		// each projection pays for, halving the count of small-Jacobi
		// solves and basis rotations — which the profile shows cost as
		// much as the large multiply itself.
		MulInto(s.yt, s.qt, a)
		s.qt, s.yt = s.yt, s.qt
		orthonormalizeRows(s.qt, &rngState)
		// Projected power step: Yt = Qt * A  (rows of Yt are A*q_j,
		// since A is symmetric).
		MulInto(s.yt, s.qt, a)
		// Projected problem S = Q^T A Q = Qt * Yt^T, built as an exactly
		// symmetric matrix (compute the upper triangle, mirror it).
		for i := 0; i < p; i++ {
			qi := s.qt.RawRow(i)
			for j := i; j < p; j++ {
				v := dotUnchecked(qi, s.yt.RawRow(j))
				s.small.data[i*p+j] = v
				s.small.data[j*p+i] = v
			}
		}
		ritzVals, u := EigenSymIn(s, s.small)
		copy(s.ritz, ritzVals[:p])
		if it > 0 {
			scale := math.Max(math.Abs(s.ritz[0]), 1e-300)
			maxMove := 0.0
			for i := 0; i < k; i++ {
				if m := math.Abs(s.ritz[i] - s.ritzP[i]); m > maxMove {
					maxMove = m
				}
			}
			converged = maxMove <= relTol*scale
		}
		TransposeInto(s.smt, u)
		if converged || it == maxIters-1 {
			// Ritz vectors: X = Q*U, i.e. Xt = U^T * Qt. Q orthonormal and
			// U orthogonal make X orthonormal directly.
			MulInto(s.xt, s.smt, s.qt)
			break
		}
		// Next basis: orthonormalize A*X = Y*U, i.e. U^T * Yt — the
		// power step applied to the current Ritz vectors.
		MulInto(s.xt, s.smt, s.yt)
		s.qt, s.xt = s.xt, s.qt
		orthonormalizeRows(s.qt, &rngState)
		copy(s.ritzP, s.ritz)
	}

	// Indefinite-input net: a markedly negative Ritz value means the
	// dominant subspace contains large-magnitude negative eigenvalues,
	// so the by-value top k may live outside it. Defer to the oracle.
	negScale := math.Max(math.Abs(s.ritz[0]), 1)
	if s.ritz[p-1] < -1e-8*negScale {
		return eigenTopKViaFull(s, a, k)
	}

	s.topVals = growFloats(s.topVals, k)
	copy(s.topVals, s.ritz[:k])
	s.topVecs = Reshape(s.topVecs, d, k)
	for j := 0; j < k; j++ {
		xj := s.xt.RawRow(j)
		for i := 0; i < d; i++ {
			s.topVecs.data[i*k+j] = xj[i]
		}
	}
	s.basisValid = true
	return s.topVals, s.topVecs
}

// eigenTopKViaFull answers EigenSymTopKIn through the full Jacobi
// decomposition (the oracle path).
func eigenTopKViaFull(s *EigenScratch, a *Dense, k int) ([]float64, *Dense) {
	d, _ := a.Dims()
	vals, vecs := EigenSymIn(s, a)
	s.topVals = growFloats(s.topVals, k)
	copy(s.topVals, vals[:k])
	s.topVecs = Reshape(s.topVecs, d, k)
	for i := 0; i < d; i++ {
		vrow := vecs.data[i*d : i*d+d]
		copy(s.topVecs.data[i*k:i*k+k], vrow[:k])
	}
	return s.topVals, s.topVecs
}

// orthonormalizeRows makes the rows of qt orthonormal with modified
// Gram–Schmidt. A row that collapses to (numerical) zero after
// projection — a rank-deficient basis, e.g. iterating on a low-rank
// matrix — is replaced by a fresh direction from the deterministic
// stream and re-projected, so the basis always has full row rank.
func orthonormalizeRows(qt *Dense, rngState *uint64) {
	p, d := qt.Dims()
	for i := 0; i < p; i++ {
		ri := qt.RawRow(i)
		for {
			pre := math.Sqrt(dotUnchecked(ri, ri))
			for j := 0; j < i; j++ {
				rj := qt.RawRow(j)
				proj := dotUnchecked(ri, rj)
				if proj == 0 {
					continue
				}
				for l := range ri {
					ri[l] -= proj * rj[l]
				}
			}
			norm := math.Sqrt(dotUnchecked(ri, ri))
			if norm > 1e-14*pre && norm > 0 {
				inv := 1 / norm
				for l := range ri {
					ri[l] *= inv
				}
				break
			}
			for l := 0; l < d; l++ {
				ri[l] = splitmixUniform(rngState)
			}
		}
	}
}

// dotUnchecked is Dot without the length check, for the solver's inner
// loops (operands come from same-width scratch rows by construction).
func dotUnchecked(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// splitmixUniform draws the next value in [-0.5, 0.5) from a SplitMix64
// stream — the deterministic, dependency-free generator behind the
// subspace iteration's start basis.
func splitmixUniform(state *uint64) float64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) - 0.5
}
