package mat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	r, c := m.Dims()
	if r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("Set/At roundtrip failed")
	}
	if m.At(0, 0) != 0 {
		t.Error("zero init violated")
	}
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if got := m.Row(1); got[0] != 3 || got[1] != 4 {
		t.Errorf("Row(1) = %v", got)
	}
	if got := m.Col(1); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("Col(1) = %v", got)
	}
	// Row returns a copy; RawRow aliases.
	cp := m.Row(0)
	cp[0] = 99
	if m.At(0, 0) == 99 {
		t.Error("Row did not copy")
	}
	rr := m.RawRow(0)
	rr[0] = 42
	if m.At(0, 0) != 42 {
		t.Error("RawRow did not alias")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims %dx%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul mismatch at (%d,%d): %g", i, j, got.At(i, j))
			}
		}
	}
}

func TestMulIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(6) + 1
		a := NewDense(n, n)
		id := NewDense(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		got := Mul(a, id)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.At(i, j) != a.At(i, j) {
					t.Fatalf("A*I != A at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestMulVecDotNorm(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 2}, {1, 1}})
	got := MulVec(a, []float64{3, 4})
	want := []float64{3, 8, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec[%d] = %g", i, got[i])
		}
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Error("Norm2 wrong")
	}
	if SqDist([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Error("SqDist wrong")
	}
}

func TestColMeansStds(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {3, 10}})
	mu := ColMeans(m)
	if mu[0] != 2 || mu[1] != 10 {
		t.Errorf("means %v", mu)
	}
	sd := ColStds(m)
	if !almostEq(sd[0], math.Sqrt2, 1e-12) || sd[1] != 0 {
		t.Errorf("stds %v", sd)
	}
}

func TestStandardizer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewDense(200, 3)
	for i := 0; i < 200; i++ {
		m.Set(i, 0, rng.NormFloat64()*5+3)
		m.Set(i, 1, rng.NormFloat64()*0.1-2)
		m.Set(i, 2, 7) // constant column
	}
	s := FitStandardizer(m)
	z := s.Apply(m)
	mu := ColMeans(z)
	sd := ColStds(z)
	for j := 0; j < 2; j++ {
		if !almostEq(mu[j], 0, 1e-10) {
			t.Errorf("col %d standardized mean %g", j, mu[j])
		}
		if !almostEq(sd[j], 1, 1e-10) {
			t.Errorf("col %d standardized std %g", j, sd[j])
		}
	}
	// Constant column: centered but not blown up.
	if !almostEq(mu[2], 0, 1e-12) || math.IsNaN(sd[2]) {
		t.Errorf("constant column handled badly: mean %g std %g", mu[2], sd[2])
	}
	// Apply with the learned transform is affine: same transform on a
	// single held-out row.
	row := FromRows([][]float64{{3, -2, 7}})
	zr := s.Apply(row)
	if !almostEq(zr.At(0, 0), (3-s.Mean[0])/s.Std[0], 1e-12) {
		t.Error("held-out Apply mismatch")
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns.
	m := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	c := Covariance(m)
	if !almostEq(c.At(0, 0), 1, 1e-12) {
		t.Errorf("var(x) = %g", c.At(0, 0))
	}
	if !almostEq(c.At(1, 1), 4, 1e-12) {
		t.Errorf("var(y) = %g", c.At(1, 1))
	}
	if !almostEq(c.At(0, 1), 2, 1e-12) || !almostEq(c.At(1, 0), 2, 1e-12) {
		t.Errorf("cov = %g / %g", c.At(0, 1), c.At(1, 0))
	}
}

func TestCovarianceSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewDense(20, 5)
		for i := 0; i < 20; i++ {
			for j := 0; j < 5; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		c := Covariance(m)
		for i := 0; i < 5; i++ {
			if c.At(i, i) < 0 {
				return false
			}
			for j := 0; j < 5; j++ {
				if c.At(i, j) != c.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs := EigenSym(a)
	want := []float64{3, 2, 1}
	for i := range want {
		if !almostEq(vals[i], want[i], 1e-12) {
			t.Errorf("eigenvalue %d = %g, want %g", i, vals[i], want[i])
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) unit basis vectors.
	for k := 0; k < 3; k++ {
		col := vecs.Col(k)
		if !almostEq(Norm2(col), 1, 1e-10) {
			t.Errorf("eigenvector %d not unit: %v", k, col)
		}
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := EigenSym(a)
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v", vals)
	}
	// Check A v = lambda v for the top eigenvector.
	v0 := vecs.Col(0)
	av := MulVec(a, v0)
	for i := range av {
		if !almostEq(av[i], 3*v0[i], 1e-9) {
			t.Errorf("A v != 3 v at %d: %g vs %g", i, av[i], 3*v0[i])
		}
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	// Random symmetric matrices: V diag(L) V^T must reconstruct A, trace
	// must equal the eigenvalue sum, and V must be orthonormal.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(8) + 2
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := EigenSym(a)

		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		if !almostEq(trace, sum, 1e-8*float64(n)) {
			t.Fatalf("trial %d: trace %g vs eigen sum %g", trial, trace, sum)
		}

		// Orthonormality: V^T V = I.
		vtv := Mul(vecs.T(), vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(vtv.At(i, j), want, 1e-8) {
					t.Fatalf("trial %d: V^T V (%d,%d) = %g", trial, i, j, vtv.At(i, j))
				}
			}
		}

		// Reconstruction.
		lam := NewDense(n, n)
		for i := 0; i < n; i++ {
			lam.Set(i, i, vals[i])
		}
		rec := Mul(Mul(vecs, lam), vecs.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(rec.At(i, j), a.At(i, j), 1e-8) {
					t.Fatalf("trial %d: reconstruction (%d,%d): %g vs %g",
						trial, i, j, rec.At(i, j), a.At(i, j))
				}
			}
		}

		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("trial %d: eigenvalues not descending: %v", trial, vals)
			}
		}
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("asymmetric input did not panic")
		}
	}()
	EigenSym(FromRows([][]float64{{1, 2}, {0, 1}}))
}

func TestEigenSymPSDCovariance(t *testing.T) {
	// Covariance matrices must have non-negative eigenvalues.
	rng := rand.New(rand.NewSource(23))
	m := NewDense(50, 6)
	for i := 0; i < 50; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	vals, _ := EigenSym(Covariance(m))
	for i, v := range vals {
		if v < -1e-10 {
			t.Errorf("negative eigenvalue %d of covariance: %g", i, v)
		}
	}
}

func BenchmarkEigenSym50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 50
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigenSym(a)
	}
}

// randMat fills an r x c matrix from rng.
func randMat(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func sameDense(a, b *Dense) bool {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		return false
	}
	for i := 0; i < ar; i++ {
		for j := 0; j < ac; j++ {
			if math.Float64bits(a.At(i, j)) != math.Float64bits(b.At(i, j)) {
				return false
			}
		}
	}
	return true
}

func TestReshape(t *testing.T) {
	m := Reshape(nil, 3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Reshape(nil) dims = %dx%d", r, c)
	}
	m.Set(2, 3, 9)
	// Shrinking reuses the storage and clears it.
	n := Reshape(m, 2, 2)
	if n != m {
		t.Error("Reshape did not reuse sufficient capacity")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if n.At(i, j) != 0 {
				t.Errorf("Reshape left stale value at (%d,%d)", i, j)
			}
		}
	}
	// Growing past capacity allocates fresh zeroed storage.
	g := Reshape(n, 5, 5)
	if g == n {
		t.Error("Reshape reused insufficient capacity")
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if g.At(i, j) != 0 {
				t.Errorf("grown Reshape not zero at (%d,%d)", i, j)
			}
		}
	}
	mustPanicMat(t, func() { Reshape(nil, 0, 3) })
}

func TestCopyInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randMat(rng, 4, 3)
	dst := NewDense(4, 3)
	dst.Copy(src)
	if !sameDense(dst, src) {
		t.Error("Copy mismatch")
	}
	mustPanicMat(t, func() { NewDense(3, 4).Copy(src) })
}

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMat(rng, 5, 7)
	b := randMat(rng, 7, 4)
	want := Mul(a, b)
	dst := NewDense(5, 4)
	// Poison dst to verify prior contents are discarded.
	dst.Set(0, 0, 1e9)
	got := MulInto(dst, a, b)
	if got != dst {
		t.Error("MulInto did not return dst")
	}
	if !sameDense(got, want) {
		t.Error("MulInto != Mul")
	}
	mustPanicMat(t, func() { MulInto(NewDense(5, 5), a, b) })
}

func TestApplyIntoMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randMat(rng, 20, 6)
	s := FitStandardizer(m)
	want := s.Apply(m)
	dst := NewDense(20, 6)
	dst.Set(3, 3, 42)
	if got := s.ApplyInto(dst, m); !sameDense(got, want) {
		t.Error("ApplyInto != Apply")
	}
	mustPanicMat(t, func() { s.ApplyInto(NewDense(19, 6), m) })
}

func TestColMeansStdsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := randMat(rng, 30, 5)
	mu := ColMeansInto(make([]float64, 5), m)
	wantMu := ColMeans(m)
	sd := ColStdsInto(make([]float64, 5), m, mu)
	wantSd := ColStds(m)
	for j := 0; j < 5; j++ {
		if math.Float64bits(mu[j]) != math.Float64bits(wantMu[j]) {
			t.Errorf("ColMeansInto[%d] = %g, want %g", j, mu[j], wantMu[j])
		}
		if math.Float64bits(sd[j]) != math.Float64bits(wantSd[j]) {
			t.Errorf("ColStdsInto[%d] = %g, want %g", j, sd[j], wantSd[j])
		}
	}
	mustPanicMat(t, func() { ColMeansInto(make([]float64, 4), m) })
	mustPanicMat(t, func() { ColStdsInto(make([]float64, 4), m, mu) })
}

func TestCovarianceIntoMatchesCovariance(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := randMat(rng, 40, 6)
	want := Covariance(m)
	dst := NewDense(6, 6)
	dst.Set(0, 0, -77)
	if got := CovarianceInto(dst, m, make([]float64, 6)); !sameDense(got, want) {
		t.Error("CovarianceInto != Covariance")
	}
	// nil mu scratch allocates internally.
	if got := CovarianceInto(NewDense(6, 6), m, nil); !sameDense(got, want) {
		t.Error("CovarianceInto(nil mu) != Covariance")
	}
	mustPanicMat(t, func() { CovarianceInto(NewDense(5, 6), m, nil) })
}

// TestEigenSymInMatchesEigenSym verifies the scratch-backed decomposition
// is bit-identical to the fresh one, including across reuses of the same
// scratch at different sizes.
func TestEigenSymInMatchesEigenSym(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	var scratch EigenScratch
	for _, n := range []int{8, 5, 12, 12, 3} {
		a := Covariance(randMat(rng, 3*n, n))
		wantVals, wantVecs := EigenSym(a)
		gotVals, gotVecs := EigenSymIn(&scratch, a)
		for i := range wantVals {
			if math.Float64bits(gotVals[i]) != math.Float64bits(wantVals[i]) {
				t.Fatalf("n=%d: eigenvalue %d differs: %g vs %g", n, i, gotVals[i], wantVals[i])
			}
		}
		if !sameDense(gotVecs, wantVecs) {
			t.Fatalf("n=%d: eigenvectors differ", n)
		}
	}
}

// TestEigenSymInZeroAlloc pins the workspace contract: a warm scratch
// decomposes without touching the allocator.
func TestEigenSymInZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := Covariance(randMat(rng, 60, 10))
	var scratch EigenScratch
	EigenSymIn(&scratch, a) // warm up
	if allocs := testing.AllocsPerRun(10, func() { EigenSymIn(&scratch, a) }); allocs != 0 {
		t.Errorf("warm EigenSymIn allocates %v times per run, want 0", allocs)
	}
}

// TestEigenSymTieOrder pins the deterministic tie break: exactly equal
// eigenvalues keep their diagonal order.
func TestEigenSymTieOrder(t *testing.T) {
	a := FromRows([][]float64{{2, 0, 0}, {0, 2, 0}, {0, 0, 1}})
	vals, vecs := EigenSym(a)
	if vals[0] != 2 || vals[1] != 2 || vals[2] != 1 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// The two tied unit eigenvectors keep original index order: e0, e1.
	if vecs.At(0, 0) == 0 || vecs.At(1, 1) == 0 {
		t.Errorf("tied eigenvectors reordered: %v %v", vecs.Col(0), vecs.Col(1))
	}
}

func mustPanicMat(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// randCovariance builds the covariance of an n x d random matrix — a
// PSD input shaped like the PCA workloads.
func randCovariance(rng *rand.Rand, n, d int) *Dense {
	return Covariance(randMat(rng, n, d))
}

// structuredCovariance builds a covariance with a strong low-rank
// structure over a noise bulk — the Madelon-like spectrum the Fig. 7b
// PCA benchmark decomposes (a few dominant directions, then a
// Marchenko-Pastur-style bulk).
func structuredCovariance(rng *rand.Rand, n, d, strong int) *Dense {
	x := NewDense(n, d)
	for i := 0; i < n; i++ {
		base := make([]float64, strong)
		for j := range base {
			base[j] = rng.NormFloat64() * float64(4+j)
			x.Set(i, j, base[j])
		}
		for j := strong; j < d; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	return Covariance(x)
}

// eigenVecAgree reports whether two unit eigenvector columns span the
// same direction (sign-canonical comparison) within tol.
func eigenVecAgree(a *Dense, aCol int, b *Dense, bCol int, tol float64) bool {
	n, _ := a.Dims()
	// Canonical sign: make the largest-magnitude entry of each positive.
	sa, sb := 1.0, 1.0
	maxA, maxB := 0.0, 0.0
	for i := 0; i < n; i++ {
		if v := math.Abs(a.At(i, aCol)); v > maxA {
			maxA = v
			sa = math.Copysign(1, a.At(i, aCol))
		}
		if v := math.Abs(b.At(i, bCol)); v > maxB {
			maxB = v
			sb = math.Copysign(1, b.At(i, bCol))
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(sa*a.At(i, aCol)-sb*b.At(i, bCol)) > tol {
			return false
		}
	}
	return true
}

// TestEigenSymTopKMatchesFull pins the subspace solver against the
// full Jacobi oracle: on PSD covariance inputs the top-k eigenvalues
// must agree within 1e-9 (relative to the dominant eigenvalue), the
// retained explained-variance mass must match to the same precision,
// and the eigenvectors must satisfy the eigen equation.
func TestEigenSymTopKMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []struct {
		cov *Dense
		k   int
	}{
		{randCovariance(rng, 300, 60), 5},
		{randCovariance(rng, 500, 100), 10},
		{structuredCovariance(rng, 400, 80, 8), 6},
		{structuredCovariance(rng, 800, 120, 10), 10},
		{randCovariance(rng, 100, 12), 3},  // small d: internal Jacobi fallback
		{randCovariance(rng, 100, 20), 15}, // k close to d: fallback
	}
	for ci, c := range cases {
		d, _ := c.cov.Dims()
		wantVals, _ := EigenSym(c.cov)
		gotVals, gotVecs := EigenSymTopK(c.cov, c.k)
		if len(gotVals) != c.k {
			t.Fatalf("case %d: %d values, want %d", ci, len(gotVals), c.k)
		}
		if r, cc := gotVecs.Dims(); r != d || cc != c.k {
			t.Fatalf("case %d: vectors %dx%d, want %dx%d", ci, r, cc, d, c.k)
		}
		scale := math.Max(math.Abs(wantVals[0]), 1)
		topWant, topGot := 0.0, 0.0
		for i := 0; i < c.k; i++ {
			if math.Abs(gotVals[i]-wantVals[i]) > 1e-9*scale {
				t.Errorf("case %d: eigenvalue %d = %.15g, oracle %.15g", ci, i, gotVals[i], wantVals[i])
			}
			topWant += wantVals[i]
			topGot += gotVals[i]
		}
		if math.Abs(topGot-topWant) > 1e-9*scale*float64(c.k) {
			t.Errorf("case %d: explained mass %.15g, oracle %.15g", ci, topGot, topWant)
		}
		// Eigen equation residual per pair. Ritz values converge at
		// twice the subspace rate, so vectors inside a near-degenerate
		// bulk carry ~sqrt(valueTol) of rotation — hence the looser
		// vector tolerance next to the 1e-9 eigenvalue check above.
		for j := 0; j < c.k; j++ {
			col := gotVecs.Col(j)
			av := MulVec(c.cov, col)
			for i := range av {
				if math.Abs(av[i]-gotVals[j]*col[i]) > 1e-5*scale {
					t.Fatalf("case %d: eigenpair %d residual %g at %d", ci, j,
						av[i]-gotVals[j]*col[i], i)
				}
			}
		}
		// Orthonormal columns.
		for a := 0; a < c.k; a++ {
			for b := a; b < c.k; b++ {
				dot := Dot(gotVecs.Col(a), gotVecs.Col(b))
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					t.Fatalf("case %d: V^T V (%d,%d) = %g", ci, a, b, dot)
				}
			}
		}
	}
}

// TestEigenSymTopKSignCanonicalVectors compares eigenvectors
// coordinate-wise against the Jacobi oracle on a well-separated
// spectrum, where each eigendirection is unique up to sign.
func TestEigenSymTopKSignCanonicalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cov := structuredCovariance(rng, 1000, 90, 6)
	k := 4 // well inside the strong, separated part of the spectrum
	_, wantVecs := EigenSym(cov)
	_, gotVecs := EigenSymTopK(cov, k)
	for j := 0; j < k; j++ {
		if !eigenVecAgree(gotVecs, j, wantVecs, j, 1e-6) {
			t.Errorf("eigenvector %d differs from oracle beyond sign", j)
		}
	}
}

// TestEigenSymTopKDeterministic pins run-to-run determinism: the fixed
// start basis must make repeated decompositions bit-identical, scratch
// reuse or not.
func TestEigenSymTopKDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cov := structuredCovariance(rng, 300, 70, 5)
	vals1, vecs1 := EigenSymTopK(cov, 8)
	var scratch EigenScratch
	EigenSymTopKIn(&scratch, randCovariance(rng, 100, 30), 8) // dirty the scratch
	vals2, vecs2 := EigenSymTopKIn(&scratch, cov, 8)
	for i := range vals1 {
		if math.Float64bits(vals1[i]) != math.Float64bits(vals2[i]) {
			t.Fatalf("eigenvalue %d differs across runs: %.17g vs %.17g", i, vals1[i], vals2[i])
		}
	}
	if !sameDense(vecs1, vecs2) {
		t.Fatal("eigenvectors differ across runs")
	}
}

// TestEigenSymTopKIndefiniteFallsBack pins the by-value contract on a
// non-PSD input whose dominant-magnitude eigenvalue is negative: the
// solver must detect the negative Ritz spectrum and defer to the full
// decomposition instead of returning magnitude-ordered pairs.
func TestEigenSymTopKIndefiniteFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	d := 40
	// A = Q D Q^T with D = diag(-50, spread of small positives).
	q := randMat(rng, d, d)
	var s EigenScratch
	_, basis := EigenSymIn(&s, Covariance(q)) // any orthonormal basis
	a := NewDense(d, d)
	for i := 0; i < d; i++ {
		lam := 1.0 + float64(d-i)*0.1
		if i == d-1 {
			lam = -50
		}
		for r := 0; r < d; r++ {
			for c := 0; c < d; c++ {
				a.Set(r, c, a.At(r, c)+lam*basis.At(r, i)*basis.At(c, i))
			}
		}
	}
	// Symmetrize exactly against accumulated rounding.
	for r := 0; r < d; r++ {
		for c := r + 1; c < d; c++ {
			v := (a.At(r, c) + a.At(c, r)) / 2
			a.Set(r, c, v)
			a.Set(c, r, v)
		}
	}
	wantVals, _ := EigenSym(a)
	gotVals, _ := EigenSymTopK(a, 3)
	scale := math.Max(math.Abs(wantVals[0]), math.Abs(wantVals[len(wantVals)-1]))
	for i := 0; i < 3; i++ {
		if math.Abs(gotVals[i]-wantVals[i]) > 1e-9*scale {
			t.Errorf("eigenvalue %d = %g, want by-value %g", i, gotVals[i], wantVals[i])
		}
	}
	if gotVals[0] < 0 {
		t.Errorf("top eigenvalue %g is the negative dominant-magnitude one", gotVals[0])
	}
}

// TestEigenSymTopKZeroAllocWarm pins the scratch contract: a warm
// scratch decomposes without touching the allocator.
func TestEigenSymTopKZeroAllocWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	cov := randCovariance(rng, 300, 60)
	var scratch EigenScratch
	EigenSymTopKIn(&scratch, cov, 5) // warm up
	if allocs := testing.AllocsPerRun(5, func() { EigenSymTopKIn(&scratch, cov, 5) }); allocs != 0 {
		t.Errorf("warm EigenSymTopKIn allocates %v times per run, want 0", allocs)
	}
}

// TestEigenSymTopKValidation covers the panic contracts.
func TestEigenSymTopKValidation(t *testing.T) {
	cov := Covariance(randMat(rand.New(rand.NewSource(1)), 10, 4))
	mustPanicMat(t, func() { EigenSymTopK(cov, 0) })
	mustPanicMat(t, func() { EigenSymTopK(cov, 5) })
	mustPanicMat(t, func() { EigenSymTopK(NewDense(3, 4), 1) })
	mustPanicMat(t, func() { EigenSymTopK(FromRows([][]float64{{1, 2}, {0, 1}}), 1) })
}

// TestTransposeInto pins the blocked transpose against the naive
// element walk, across shapes that exercise full tiles, ragged edges,
// and thin matrices.
func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, dims := range [][2]int{{1, 1}, {3, 7}, {32, 32}, {33, 65}, {100, 23}, {5, 200}} {
		m := randMat(rng, dims[0], dims[1])
		got := TransposeInto(NewDense(dims[1], dims[0]), m)
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				if math.Float64bits(got.At(j, i)) != math.Float64bits(m.At(i, j)) {
					t.Fatalf("%v: mismatch at (%d,%d)", dims, i, j)
				}
			}
		}
		if !sameDense(m.T(), got) {
			t.Fatalf("%v: T() != TransposeInto", dims)
		}
	}
	mustPanicMat(t, func() { TransposeInto(NewDense(2, 2), NewDense(2, 3)) })
}

// TestSqDistBounded pins the early-abandon contract: a completed
// accumulation is bit-identical to SqDist, an abandoned one only
// happens when the true distance is >= bound.
func TestSqDistBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for _, n := range []int{1, 7, 8, 9, 16, 40, 100} {
		for trial := 0; trial < 50; trial++ {
			x := make([]float64, n)
			y := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
				y[i] = rng.NormFloat64()
			}
			full := SqDist(x, y)
			bound := full * (0.25 + 1.5*rng.Float64())
			got, ok := SqDistBounded(x, y, bound)
			if ok {
				if math.Float64bits(got) != math.Float64bits(full) {
					t.Fatalf("n=%d: completed distance %g != SqDist %g", n, got, full)
				}
				if got >= bound {
					t.Fatalf("n=%d: ok with %g >= bound %g", n, got, bound)
				}
			} else {
				if full < bound {
					t.Fatalf("n=%d: abandoned but full %g < bound %g", n, full, bound)
				}
			}
		}
	}
	if d, ok := SqDistBounded([]float64{1, 2}, []float64{1, 2}, math.Inf(1)); !ok || d != 0 {
		t.Errorf("identical vectors: %g, %v", d, ok)
	}
	mustPanicMat(t, func() { SqDistBounded([]float64{1}, []float64{1, 2}, 1) })
}

// benchEigenCov builds the bench covariance once per geometry.
func benchEigenCov(b *testing.B, d int) *Dense {
	b.Helper()
	rng := rand.New(rand.NewSource(71))
	return structuredCovariance(rng, 1600, d, 10)
}

// BenchmarkEigenTopK measures the top-10 subspace solver at the
// default (d=100) and paper (d=500) Madelon geometries; the Full
// variants run the Jacobi oracle on the same inputs — the before/after
// pair of the README's kernel table.
func BenchmarkEigenTopK(b *testing.B) {
	for _, d := range []int{100, 500} {
		cov := benchEigenCov(b, d)
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) {
			var scratch EigenScratch
			EigenSymTopKIn(&scratch, cov, 10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				EigenSymTopKIn(&scratch, cov, 10)
			}
		})
	}
}

// BenchmarkEigenFull is the full-decomposition baseline at the default
// Madelon geometry (the d=500 Jacobi takes ~10s per op; bench the
// paper geometry explicitly via -bench EigenFull500 when needed).
func BenchmarkEigenFull(b *testing.B) {
	cov := benchEigenCov(b, 100)
	var scratch EigenScratch
	EigenSymIn(&scratch, cov)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigenSymIn(&scratch, cov)
	}
}

// BenchmarkEigenFull500 is the paper-geometry Jacobi baseline; slow,
// excluded from -bench=. smokes by its name.
func BenchmarkEigenFull500(b *testing.B) {
	cov := benchEigenCov(b, 500)
	var scratch EigenScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigenSymIn(&scratch, cov)
	}
}

// BenchmarkTranspose compares the naive column-stride walk against the
// tiled TransposeInto at a cache-hostile size.
func BenchmarkTranspose(b *testing.B) {
	rng := rand.New(rand.NewSource(73))
	m := randMat(rng, 1000, 1000)
	dst := NewDense(1000, 1000)
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			TransposeInto(dst, m)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r < 1000; r++ {
				row := m.RawRow(r)
				for c := 0; c < 1000; c++ {
					dst.data[c*1000+r] = row[c]
				}
			}
		}
	})
}
