package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	r, c := m.Dims()
	if r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("Set/At roundtrip failed")
	}
	if m.At(0, 0) != 0 {
		t.Error("zero init violated")
	}
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if got := m.Row(1); got[0] != 3 || got[1] != 4 {
		t.Errorf("Row(1) = %v", got)
	}
	if got := m.Col(1); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("Col(1) = %v", got)
	}
	// Row returns a copy; RawRow aliases.
	cp := m.Row(0)
	cp[0] = 99
	if m.At(0, 0) == 99 {
		t.Error("Row did not copy")
	}
	rr := m.RawRow(0)
	rr[0] = 42
	if m.At(0, 0) != 42 {
		t.Error("RawRow did not alias")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims %dx%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul mismatch at (%d,%d): %g", i, j, got.At(i, j))
			}
		}
	}
}

func TestMulIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(6) + 1
		a := NewDense(n, n)
		id := NewDense(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		got := Mul(a, id)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.At(i, j) != a.At(i, j) {
					t.Fatalf("A*I != A at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestMulVecDotNorm(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 2}, {1, 1}})
	got := MulVec(a, []float64{3, 4})
	want := []float64{3, 8, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec[%d] = %g", i, got[i])
		}
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Error("Norm2 wrong")
	}
	if SqDist([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Error("SqDist wrong")
	}
}

func TestColMeansStds(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {3, 10}})
	mu := ColMeans(m)
	if mu[0] != 2 || mu[1] != 10 {
		t.Errorf("means %v", mu)
	}
	sd := ColStds(m)
	if !almostEq(sd[0], math.Sqrt2, 1e-12) || sd[1] != 0 {
		t.Errorf("stds %v", sd)
	}
}

func TestStandardizer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewDense(200, 3)
	for i := 0; i < 200; i++ {
		m.Set(i, 0, rng.NormFloat64()*5+3)
		m.Set(i, 1, rng.NormFloat64()*0.1-2)
		m.Set(i, 2, 7) // constant column
	}
	s := FitStandardizer(m)
	z := s.Apply(m)
	mu := ColMeans(z)
	sd := ColStds(z)
	for j := 0; j < 2; j++ {
		if !almostEq(mu[j], 0, 1e-10) {
			t.Errorf("col %d standardized mean %g", j, mu[j])
		}
		if !almostEq(sd[j], 1, 1e-10) {
			t.Errorf("col %d standardized std %g", j, sd[j])
		}
	}
	// Constant column: centered but not blown up.
	if !almostEq(mu[2], 0, 1e-12) || math.IsNaN(sd[2]) {
		t.Errorf("constant column handled badly: mean %g std %g", mu[2], sd[2])
	}
	// Apply with the learned transform is affine: same transform on a
	// single held-out row.
	row := FromRows([][]float64{{3, -2, 7}})
	zr := s.Apply(row)
	if !almostEq(zr.At(0, 0), (3-s.Mean[0])/s.Std[0], 1e-12) {
		t.Error("held-out Apply mismatch")
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns.
	m := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	c := Covariance(m)
	if !almostEq(c.At(0, 0), 1, 1e-12) {
		t.Errorf("var(x) = %g", c.At(0, 0))
	}
	if !almostEq(c.At(1, 1), 4, 1e-12) {
		t.Errorf("var(y) = %g", c.At(1, 1))
	}
	if !almostEq(c.At(0, 1), 2, 1e-12) || !almostEq(c.At(1, 0), 2, 1e-12) {
		t.Errorf("cov = %g / %g", c.At(0, 1), c.At(1, 0))
	}
}

func TestCovarianceSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewDense(20, 5)
		for i := 0; i < 20; i++ {
			for j := 0; j < 5; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		c := Covariance(m)
		for i := 0; i < 5; i++ {
			if c.At(i, i) < 0 {
				return false
			}
			for j := 0; j < 5; j++ {
				if c.At(i, j) != c.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs := EigenSym(a)
	want := []float64{3, 2, 1}
	for i := range want {
		if !almostEq(vals[i], want[i], 1e-12) {
			t.Errorf("eigenvalue %d = %g, want %g", i, vals[i], want[i])
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) unit basis vectors.
	for k := 0; k < 3; k++ {
		col := vecs.Col(k)
		if !almostEq(Norm2(col), 1, 1e-10) {
			t.Errorf("eigenvector %d not unit: %v", k, col)
		}
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := EigenSym(a)
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v", vals)
	}
	// Check A v = lambda v for the top eigenvector.
	v0 := vecs.Col(0)
	av := MulVec(a, v0)
	for i := range av {
		if !almostEq(av[i], 3*v0[i], 1e-9) {
			t.Errorf("A v != 3 v at %d: %g vs %g", i, av[i], 3*v0[i])
		}
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	// Random symmetric matrices: V diag(L) V^T must reconstruct A, trace
	// must equal the eigenvalue sum, and V must be orthonormal.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(8) + 2
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := EigenSym(a)

		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		if !almostEq(trace, sum, 1e-8*float64(n)) {
			t.Fatalf("trial %d: trace %g vs eigen sum %g", trial, trace, sum)
		}

		// Orthonormality: V^T V = I.
		vtv := Mul(vecs.T(), vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(vtv.At(i, j), want, 1e-8) {
					t.Fatalf("trial %d: V^T V (%d,%d) = %g", trial, i, j, vtv.At(i, j))
				}
			}
		}

		// Reconstruction.
		lam := NewDense(n, n)
		for i := 0; i < n; i++ {
			lam.Set(i, i, vals[i])
		}
		rec := Mul(Mul(vecs, lam), vecs.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(rec.At(i, j), a.At(i, j), 1e-8) {
					t.Fatalf("trial %d: reconstruction (%d,%d): %g vs %g",
						trial, i, j, rec.At(i, j), a.At(i, j))
				}
			}
		}

		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("trial %d: eigenvalues not descending: %v", trial, vals)
			}
		}
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("asymmetric input did not panic")
		}
	}()
	EigenSym(FromRows([][]float64{{1, 2}, {0, 1}}))
}

func TestEigenSymPSDCovariance(t *testing.T) {
	// Covariance matrices must have non-negative eigenvalues.
	rng := rand.New(rand.NewSource(23))
	m := NewDense(50, 6)
	for i := 0; i < 50; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	vals, _ := EigenSym(Covariance(m))
	for i, v := range vals {
		if v < -1e-10 {
			t.Errorf("negative eigenvalue %d of covariance: %g", i, v)
		}
	}
}

func BenchmarkEigenSym50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 50
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigenSym(a)
	}
}

// randMat fills an r x c matrix from rng.
func randMat(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func sameDense(a, b *Dense) bool {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		return false
	}
	for i := 0; i < ar; i++ {
		for j := 0; j < ac; j++ {
			if math.Float64bits(a.At(i, j)) != math.Float64bits(b.At(i, j)) {
				return false
			}
		}
	}
	return true
}

func TestReshape(t *testing.T) {
	m := Reshape(nil, 3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Reshape(nil) dims = %dx%d", r, c)
	}
	m.Set(2, 3, 9)
	// Shrinking reuses the storage and clears it.
	n := Reshape(m, 2, 2)
	if n != m {
		t.Error("Reshape did not reuse sufficient capacity")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if n.At(i, j) != 0 {
				t.Errorf("Reshape left stale value at (%d,%d)", i, j)
			}
		}
	}
	// Growing past capacity allocates fresh zeroed storage.
	g := Reshape(n, 5, 5)
	if g == n {
		t.Error("Reshape reused insufficient capacity")
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if g.At(i, j) != 0 {
				t.Errorf("grown Reshape not zero at (%d,%d)", i, j)
			}
		}
	}
	mustPanicMat(t, func() { Reshape(nil, 0, 3) })
}

func TestCopyInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randMat(rng, 4, 3)
	dst := NewDense(4, 3)
	dst.Copy(src)
	if !sameDense(dst, src) {
		t.Error("Copy mismatch")
	}
	mustPanicMat(t, func() { NewDense(3, 4).Copy(src) })
}

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMat(rng, 5, 7)
	b := randMat(rng, 7, 4)
	want := Mul(a, b)
	dst := NewDense(5, 4)
	// Poison dst to verify prior contents are discarded.
	dst.Set(0, 0, 1e9)
	got := MulInto(dst, a, b)
	if got != dst {
		t.Error("MulInto did not return dst")
	}
	if !sameDense(got, want) {
		t.Error("MulInto != Mul")
	}
	mustPanicMat(t, func() { MulInto(NewDense(5, 5), a, b) })
}

func TestApplyIntoMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randMat(rng, 20, 6)
	s := FitStandardizer(m)
	want := s.Apply(m)
	dst := NewDense(20, 6)
	dst.Set(3, 3, 42)
	if got := s.ApplyInto(dst, m); !sameDense(got, want) {
		t.Error("ApplyInto != Apply")
	}
	mustPanicMat(t, func() { s.ApplyInto(NewDense(19, 6), m) })
}

func TestColMeansStdsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := randMat(rng, 30, 5)
	mu := ColMeansInto(make([]float64, 5), m)
	wantMu := ColMeans(m)
	sd := ColStdsInto(make([]float64, 5), m, mu)
	wantSd := ColStds(m)
	for j := 0; j < 5; j++ {
		if math.Float64bits(mu[j]) != math.Float64bits(wantMu[j]) {
			t.Errorf("ColMeansInto[%d] = %g, want %g", j, mu[j], wantMu[j])
		}
		if math.Float64bits(sd[j]) != math.Float64bits(wantSd[j]) {
			t.Errorf("ColStdsInto[%d] = %g, want %g", j, sd[j], wantSd[j])
		}
	}
	mustPanicMat(t, func() { ColMeansInto(make([]float64, 4), m) })
	mustPanicMat(t, func() { ColStdsInto(make([]float64, 4), m, mu) })
}

func TestCovarianceIntoMatchesCovariance(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := randMat(rng, 40, 6)
	want := Covariance(m)
	dst := NewDense(6, 6)
	dst.Set(0, 0, -77)
	if got := CovarianceInto(dst, m, make([]float64, 6)); !sameDense(got, want) {
		t.Error("CovarianceInto != Covariance")
	}
	// nil mu scratch allocates internally.
	if got := CovarianceInto(NewDense(6, 6), m, nil); !sameDense(got, want) {
		t.Error("CovarianceInto(nil mu) != Covariance")
	}
	mustPanicMat(t, func() { CovarianceInto(NewDense(5, 6), m, nil) })
}

// TestEigenSymInMatchesEigenSym verifies the scratch-backed decomposition
// is bit-identical to the fresh one, including across reuses of the same
// scratch at different sizes.
func TestEigenSymInMatchesEigenSym(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	var scratch EigenScratch
	for _, n := range []int{8, 5, 12, 12, 3} {
		a := Covariance(randMat(rng, 3*n, n))
		wantVals, wantVecs := EigenSym(a)
		gotVals, gotVecs := EigenSymIn(&scratch, a)
		for i := range wantVals {
			if math.Float64bits(gotVals[i]) != math.Float64bits(wantVals[i]) {
				t.Fatalf("n=%d: eigenvalue %d differs: %g vs %g", n, i, gotVals[i], wantVals[i])
			}
		}
		if !sameDense(gotVecs, wantVecs) {
			t.Fatalf("n=%d: eigenvectors differ", n)
		}
	}
}

// TestEigenSymInZeroAlloc pins the workspace contract: a warm scratch
// decomposes without touching the allocator.
func TestEigenSymInZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := Covariance(randMat(rng, 60, 10))
	var scratch EigenScratch
	EigenSymIn(&scratch, a) // warm up
	if allocs := testing.AllocsPerRun(10, func() { EigenSymIn(&scratch, a) }); allocs != 0 {
		t.Errorf("warm EigenSymIn allocates %v times per run, want 0", allocs)
	}
}

// TestEigenSymTieOrder pins the deterministic tie break: exactly equal
// eigenvalues keep their diagonal order.
func TestEigenSymTieOrder(t *testing.T) {
	a := FromRows([][]float64{{2, 0, 0}, {0, 2, 0}, {0, 0, 1}})
	vals, vecs := EigenSym(a)
	if vals[0] != 2 || vals[1] != 2 || vals[2] != 1 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// The two tied unit eigenvectors keep original index order: e0, e1.
	if vecs.At(0, 0) == 0 || vecs.At(1, 1) == 0 {
		t.Errorf("tied eigenvectors reordered: %v %v", vecs.Col(0), vecs.Col(1))
	}
}

func mustPanicMat(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
