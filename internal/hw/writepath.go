package hw

import (
	"fmt"

	"faultmem/internal/core"
	"faultmem/internal/ecc"
)

// LUTRealization selects how the bit-shuffling fault-map LUT is built —
// the §5.1 trade-off: SRAM columns are the most straightforward
// realization but force a read-before-write (the shift amount must be
// fetched before the rotated word can be stored); a register file holds
// the entries in flops, removing the write-latency penalty at a large
// area cost for deep macros.
type LUTRealization int

const (
	// LUTColumns stores the FM-LUT as nFM extra bit columns of the array
	// (the paper's default realization).
	LUTColumns LUTRealization = iota
	// LUTRegisterFile stores the FM-LUT in a flip-flop register file.
	LUTRegisterFile
)

// String names the realization.
func (r LUTRealization) String() string {
	switch r {
	case LUTColumns:
		return "SRAM columns"
	case LUTRegisterFile:
		return "register file"
	default:
		return fmt.Sprintf("lut(%d)", int(r))
	}
}

// WriteOverhead is the write-path overhead of a scheme over an
// unprotected array write.
type WriteOverhead struct {
	Name string
	// Energy is the extra energy per write access in fJ.
	Energy float64
	// Delay is the extra latency on the write path in ps (including any
	// read-before-write serialization).
	Delay float64
	// LUTArea is the area of the fault-map storage under the chosen
	// realization in µm² (0 for the ECC schemes).
	LUTArea float64
}

// ECCWriteOverhead returns the write-path cost of a SECDED scheme: the
// encoder XOR trees are on the write path, plus the parity-column write
// energy.
func ECCWriteOverhead(l Library, m Macro, c *ecc.Code) WriteOverhead {
	enc := l.SECDEDEncoder(c)
	return WriteOverhead{
		Name:   c.Name() + " ECC",
		Energy: enc.Energy + float64(c.ParityBits())*m.ColReadEnergy,
		Delay:  enc.Delay,
	}
}

// ShuffleWriteOverhead returns the write-path cost of bit-shuffling
// under the chosen LUT realization. With the LUT in SRAM columns, every
// write is preceded by a LUT read — a full array access of
// serialization (the paper's "write latency ... requires a read prior to
// a write", §5.1). With a register file the entry is available
// immediately and only the shifter remains on the path, but the flops
// cost rows*nFM DFF of area.
func ShuffleWriteOverhead(l Library, m Macro, cfg core.Config, real LUTRealization) WriteOverhead {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shifter := l.BarrelShifter(cfg.Width, cfg.NFM)
	amount := l.ShiftAmountLogic(cfg.NFM)
	o := WriteOverhead{
		Name:   fmt.Sprintf("nFM=%d shuffle (%s LUT)", cfg.NFM, real),
		Energy: shifter.Energy + amount.Energy + float64(cfg.NFM)*m.ColReadEnergy,
		Delay:  shifter.Delay + amount.Delay,
	}
	switch real {
	case LUTColumns:
		// Read-before-write: the LUT entry comes from the array itself.
		o.Delay += m.AccessDelay
		o.LUTArea = m.Columns(cfg.NFM).Area
	case LUTRegisterFile:
		o.LUTArea = float64(m.Rows) * float64(cfg.NFM) * l.DFF.Area
	default:
		panic(fmt.Sprintf("hw: unknown LUT realization %d", int(real)))
	}
	return o
}

// LUTAblation compares the two FM-LUT realizations at every nFM for the
// given macro: the §5.1 remark quantified.
type LUTAblationRow struct {
	NFM               int
	ColumnArea        float64 // µm²
	RegFileArea       float64 // µm²
	ColumnWriteDelay  float64 // ps
	RegFileWriteDelay float64 // ps
	ReadDelay         float64 // ps (identical for both realizations)
}

// LUTAblation evaluates the trade-off table.
func LUTAblation(l Library, m Macro) []LUTAblationRow {
	var rows []LUTAblationRow
	for nfm := 1; nfm <= 5; nfm++ {
		cfg := core.Config{Width: 32, NFM: nfm}
		col := ShuffleWriteOverhead(l, m, cfg, LUTColumns)
		reg := ShuffleWriteOverhead(l, m, cfg, LUTRegisterFile)
		read := ShuffleOverhead(l, m, cfg)
		rows = append(rows, LUTAblationRow{
			NFM:               nfm,
			ColumnArea:        col.LUTArea,
			RegFileArea:       reg.LUTArea,
			ColumnWriteDelay:  col.Delay,
			RegFileWriteDelay: reg.Delay,
			ReadDelay:         read.ReadDelay,
		})
	}
	return rows
}
