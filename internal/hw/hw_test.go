package hw

import (
	"testing"

	"faultmem/internal/core"
	"faultmem/internal/ecc"
)

func TestCostCompose(t *testing.T) {
	a := Cost{Area: 1, Delay: 10, Energy: 2, Gates: 3}
	b := Cost{Area: 2, Delay: 5, Energy: 1, Gates: 1}
	s := a.Plus(b)
	if s.Area != 3 || s.Delay != 15 || s.Energy != 3 || s.Gates != 4 {
		t.Errorf("Plus = %+v", s)
	}
	p := a.PlusParallel(b)
	if p.Area != 3 || p.Delay != 10 || p.Energy != 3 || p.Gates != 4 {
		t.Errorf("PlusParallel = %+v", p)
	}
}

func TestTreeDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 32: 5, 39: 6}
	for fanIn, want := range cases {
		if got := treeDepth(fanIn); got != want {
			t.Errorf("treeDepth(%d) = %d, want %d", fanIn, got, want)
		}
	}
}

func TestXORTreeStructure(t *testing.T) {
	l := Lib28nm()
	c := l.XORTree(32)
	if c.Gates != 31 {
		t.Errorf("32-input XOR tree has %d gates, want 31", c.Gates)
	}
	if c.Delay != 5*l.XOR2.Delay {
		t.Errorf("32-input XOR tree delay %g, want %g", c.Delay, 5*l.XOR2.Delay)
	}
	if one := l.XORTree(1); one.Gates != 0 || one.Delay != 0 {
		t.Errorf("1-input tree should be free: %+v", one)
	}
}

func TestDecoderDeeperAndBiggerThanEncoder(t *testing.T) {
	l := Lib28nm()
	code := ecc.H39_32()
	enc := l.SECDEDEncoder(code)
	dec := l.SECDEDDecoder(code)
	if dec.Gates <= enc.Gates {
		t.Errorf("decoder gates %d <= encoder gates %d", dec.Gates, enc.Gates)
	}
	if dec.Delay <= enc.Delay {
		t.Errorf("decoder delay %g <= encoder delay %g", dec.Delay, enc.Delay)
	}
}

func TestDecoderDelayMatchesCitedGateDelays(t *testing.T) {
	// §3 cites ~13 gate delays of added read access for H(39,32) SECDED.
	// With a ~10 ps 28 nm gate delay that is ~130 ps; the structural model
	// must land in the same regime (100-200 ps).
	l := Lib28nm()
	d := l.SECDEDDecoder(ecc.H39_32()).Delay
	if d < 100 || d > 200 {
		t.Errorf("H(39,32) decoder delay %g ps outside the cited regime", d)
	}
}

func TestSmallerCodeSmallerDecoder(t *testing.T) {
	l := Lib28nm()
	d39 := l.SECDEDDecoder(ecc.H39_32())
	d22 := l.SECDEDDecoder(ecc.H22_16())
	if d22.Gates >= d39.Gates || d22.Energy >= d39.Energy || d22.Delay > d39.Delay {
		t.Errorf("H(22,16) decoder not smaller: %+v vs %+v", d22, d39)
	}
}

func TestBarrelShifterScaling(t *testing.T) {
	l := Lib28nm()
	s1 := l.BarrelShifter(32, 1)
	s5 := l.BarrelShifter(32, 5)
	if s1.Gates != 32 || s5.Gates != 160 {
		t.Errorf("shifter gates %d / %d, want 32 / 160", s1.Gates, s5.Gates)
	}
	if s5.Delay != 5*s1.Delay {
		t.Errorf("shifter delay not linear in stages: %g vs %g", s5.Delay, s1.Delay)
	}
}

func TestMacroColumns(t *testing.T) {
	m := Macro28nm(4096)
	c7 := m.Columns(7)
	c1 := m.Columns(1)
	if c7.Area != 7*c1.Area || c7.Energy != 7*c1.Energy {
		t.Error("column costs not linear")
	}
	if c1.Delay != 0 {
		t.Error("extra columns must not add read delay")
	}
	// A 4096-row column is dominated by its cells.
	if c1.Area < 4096*m.CellArea {
		t.Errorf("column area %g below cell area alone", c1.Area)
	}
}

func TestFig6OrderingInvariants(t *testing.T) {
	// The structural shape of Fig. 6 that must hold regardless of library
	// calibration:
	//  1. every bit-shuffling variant beats full ECC in all three metrics;
	//  2. overheads grow monotonically with nFM;
	//  3. P-ECC sits below full ECC in all three metrics;
	//  4. nFM=1 beats P-ECC in all three metrics.
	rows := Fig6Table(Lib28nm(), Macro28nm(4096))
	if len(rows) != 7 {
		t.Fatalf("Fig6Table has %d rows, want 7", len(rows))
	}
	shuffle := rows[:5]
	pecc := rows[5]
	eccRow := rows[6]

	if eccRow.Power != 1 || eccRow.Delay != 1 || eccRow.Area != 1 {
		t.Errorf("ECC row not normalized: %+v", eccRow)
	}
	for i, r := range shuffle {
		if r.Power >= 1 || r.Delay >= 1 || r.Area >= 1 {
			t.Errorf("nFM=%d does not beat ECC: %+v", i+1, r)
		}
		if i > 0 {
			prev := shuffle[i-1]
			if r.Power <= prev.Power || r.Delay <= prev.Delay || r.Area <= prev.Area {
				t.Errorf("overheads not monotone at nFM=%d: %+v vs %+v", i+1, r, prev)
			}
		}
	}
	if pecc.Power >= 1 || pecc.Delay >= 1 || pecc.Area >= 1 {
		t.Errorf("P-ECC does not beat ECC: %+v", pecc)
	}
	if shuffle[0].Power >= pecc.Power || shuffle[0].Delay >= pecc.Delay || shuffle[0].Area >= pecc.Area {
		t.Errorf("nFM=1 does not beat P-ECC: %+v vs %+v", shuffle[0], pecc)
	}
}

func TestFig6MatchesPaperRanges(t *testing.T) {
	// §5.1: bit-shuffling saves 20–83% read power, 41–77% read delay, and
	// 32–89% area versus H(39,32) SECDED. The model must land each range
	// endpoint within ~12 percentage points of the paper.
	s := ShuffleSavingsVsECC(Lib28nm(), Macro28nm(4096))
	check := func(name string, got, want float64) {
		if got < want-12 || got > want+12 {
			t.Errorf("%s saving %.1f%%, paper reports %.0f%%", name, got, want)
		}
	}
	check("min power", s.PowerMin, 20)
	check("max power", s.PowerMax, 83)
	check("min delay", s.DelayMin, 41)
	check("max delay", s.DelayMax, 77)
	check("min area", s.AreaMin, 32)
	check("max area", s.AreaMax, 89)
}

func TestShuffleOverheadColumnsAndGates(t *testing.T) {
	o := ShuffleOverhead(Lib28nm(), Macro28nm(4096), core.Config{Width: 32, NFM: 3})
	if o.Columns != 3 {
		t.Errorf("columns %d, want 3 (the FM-LUT width)", o.Columns)
	}
	if o.LogicGates < 96 { // at least the 3x32 shifter muxes
		t.Errorf("logic gates %d implausibly small", o.LogicGates)
	}
	if o.ReadDelay <= 0 || o.ReadEnergy <= 0 || o.Area <= 0 {
		t.Errorf("non-positive overheads: %+v", o)
	}
}

func TestOverheadScalesWithRows(t *testing.T) {
	// Storage-dominated area must grow with the macro size, logic delay
	// must not.
	small := ECCOverhead(Lib28nm(), Macro28nm(1024), ecc.H39_32())
	large := ECCOverhead(Lib28nm(), Macro28nm(8192), ecc.H39_32())
	if large.Area <= small.Area {
		t.Error("area does not grow with rows")
	}
	if large.ReadDelay != small.ReadDelay {
		t.Error("decoder delay should not depend on row count")
	}
}
