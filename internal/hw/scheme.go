package hw

import (
	"fmt"

	"faultmem/internal/core"
	"faultmem/internal/ecc"
)

// Macro models the SRAM array whose columns the protection schemes
// extend: parity bits for the ECC variants, FM-LUT bits for bit-shuffling
// (the paper's most straightforward realization stores the LUT as entire
// bit columns in the array, §5.1).
type Macro struct {
	// Rows is the word count (4096 for the paper's 16 KB / 32-bit macro).
	Rows int
	// CellArea is the 6T bit-cell area in µm² (≈0.127 µm² high-density
	// 28 nm).
	CellArea float64
	// ColPeriphArea is the per-column periphery (sense amplifier,
	// precharge, write driver, column mux) in µm².
	ColPeriphArea float64
	// ColReadEnergy is the per-column energy of one read access in fJ
	// (bitline swing + sense).
	ColReadEnergy float64
	// AccessDelay is the baseline array read access time in ps (row
	// decode + wordline + bitline + sense), before any scheme logic.
	AccessDelay float64
}

// Macro28nm returns the 28 nm-class macro characterization for the given
// row count.
func Macro28nm(rows int) Macro {
	if rows <= 0 {
		panic(fmt.Sprintf("hw: invalid row count %d", rows))
	}
	return Macro{
		Rows:          rows,
		CellArea:      0.127,
		ColPeriphArea: 16.0,
		ColReadEnergy: 20.0,
		AccessDelay:   450,
	}
}

// Columns returns the cost of n extra bit columns: storage cells plus
// per-column periphery; read energy per access; no added delay (columns
// are read in parallel with the data word).
func (m Macro) Columns(n int) Cost {
	return Cost{
		Area:   float64(n) * (float64(m.Rows)*m.CellArea + m.ColPeriphArea),
		Energy: float64(n) * m.ColReadEnergy,
	}
}

// Overhead is the read-path overhead of one protection scheme over the
// unprotected array, in absolute units.
type Overhead struct {
	// Name identifies the scheme ("H(39,32) ECC", "nFM=3", ...).
	Name string
	// ReadEnergy is the extra energy per read access in fJ.
	ReadEnergy float64
	// ReadDelay is the extra read-path delay in ps.
	ReadDelay float64
	// Area is the extra silicon area in µm² (storage columns + all logic,
	// including the write-path encoder/shifter which occupies area even
	// though it does not load the read path).
	Area float64
	// Columns is the number of extra bit columns.
	Columns int
	// LogicGates is the total equivalent gate count of the added logic.
	LogicGates int
}

// ECCOverhead returns the read-path overhead of full-word SECDED over an
// unprotected array: c.ParityBits() extra columns, the decoder on the
// read path, and the encoder's area.
func ECCOverhead(l Library, m Macro, c *ecc.Code) Overhead {
	cols := m.Columns(c.ParityBits())
	dec := l.SECDEDDecoder(c)
	enc := l.SECDEDEncoder(c)
	return Overhead{
		Name:       c.Name() + " ECC",
		ReadEnergy: cols.Energy + dec.Energy,
		ReadDelay:  dec.Delay,
		Area:       cols.Area + dec.Area + enc.Area,
		Columns:    c.ParityBits(),
		LogicGates: dec.Gates + enc.Gates,
	}
}

// PECCOverhead returns the overhead of the paper's priority-based ECC:
// H(22,16) on the 16 MSBs only. The decoder is smaller and the parity
// storage is 6 columns instead of 7; the 16 LSBs bypass the decoder
// entirely.
func PECCOverhead(l Library, m Macro) Overhead {
	o := ECCOverhead(l, m, ecc.H22_16())
	o.Name = "H(22,16) P-ECC"
	return o
}

// PartialECCOverhead generalizes PECCOverhead to any protected-MSB count:
// the SECDED code for protectedBits data bits supplies the columns and
// decoder; the remaining bits bypass it.
func PartialECCOverhead(l Library, m Macro, protectedBits int) Overhead {
	o := ECCOverhead(l, m, ecc.MustNew(protectedBits))
	o.Name = fmt.Sprintf("P-ECC top-%d", protectedBits)
	return o
}

// ShuffleOverhead returns the overhead of the bit-shuffling scheme at the
// given configuration: nFM FM-LUT columns, the barrel shifter (shared
// between read and write paths via the shift-amount select), and the
// shift-amount logic. Only the shifter's mux stages and the amount-select
// mux load the read path; the FM-LUT columns are read in parallel with
// the data row.
func ShuffleOverhead(l Library, m Macro, cfg core.Config) Overhead {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cols := m.Columns(cfg.NFM)
	shifter := l.BarrelShifter(cfg.Width, cfg.NFM)
	amount := l.ShiftAmountLogic(cfg.NFM)
	return Overhead{
		Name:       fmt.Sprintf("nFM=%d shuffle", cfg.NFM),
		ReadEnergy: cols.Energy + shifter.Energy + amount.Energy,
		ReadDelay:  shifter.Delay + amount.Delay,
		Area:       cols.Area + shifter.Area + amount.Area,
		Columns:    cfg.NFM,
		LogicGates: shifter.Gates + amount.Gates,
	}
}

// Relative is one row of the Fig. 6 comparison: a scheme's overheads
// normalized to the H(39,32) SECDED overheads.
type Relative struct {
	Name  string
	Power float64 // read power overhead / ECC read power overhead
	Delay float64 // read delay overhead / ECC read delay overhead
	Area  float64 // area overhead / ECC area overhead
}

// Fig6Table computes the full Fig. 6 comparison for a 32-bit word macro:
// bit-shuffling at nFM = 1..5 and H(22,16) P-ECC, all relative to
// H(39,32) SECDED (= 1.0 in every metric).
func Fig6Table(l Library, m Macro) []Relative {
	eccOv := ECCOverhead(l, m, ecc.H39_32())
	rel := func(o Overhead) Relative {
		return Relative{
			Name:  o.Name,
			Power: o.ReadEnergy / eccOv.ReadEnergy,
			Delay: o.ReadDelay / eccOv.ReadDelay,
			Area:  o.Area / eccOv.Area,
		}
	}
	var rows []Relative
	for nfm := 1; nfm <= 5; nfm++ {
		rows = append(rows, rel(ShuffleOverhead(l, m, core.Config{Width: 32, NFM: nfm})))
	}
	rows = append(rows, rel(PECCOverhead(l, m)))
	rows = append(rows, Relative{Name: eccOv.Name, Power: 1, Delay: 1, Area: 1})
	return rows
}

// Savings summarizes the §5.1 headline numbers: the min/max percentage
// reduction of the bit-shuffling variants versus a reference overhead.
type Savings struct {
	PowerMin, PowerMax float64 // percent
	DelayMin, DelayMax float64
	AreaMin, AreaMax   float64
}

// ShuffleSavingsVsECC computes the §5.1 ranges ("20%–83% read power,
// 41%–77% read delay, 32%–89% area") from the model.
func ShuffleSavingsVsECC(l Library, m Macro) Savings {
	eccOv := ECCOverhead(l, m, ecc.H39_32())
	s := Savings{PowerMin: 100, DelayMin: 100, AreaMin: 100}
	for nfm := 1; nfm <= 5; nfm++ {
		o := ShuffleOverhead(l, m, core.Config{Width: 32, NFM: nfm})
		upd := func(min, max *float64, saving float64) {
			if saving < *min {
				*min = saving
			}
			if saving > *max {
				*max = saving
			}
		}
		upd(&s.PowerMin, &s.PowerMax, 100*(1-o.ReadEnergy/eccOv.ReadEnergy))
		upd(&s.DelayMin, &s.DelayMax, 100*(1-o.ReadDelay/eccOv.ReadDelay))
		upd(&s.AreaMin, &s.AreaMax, 100*(1-o.Area/eccOv.Area))
	}
	return s
}
