package hw

import (
	"testing"

	"faultmem/internal/core"
	"faultmem/internal/ecc"
)

func TestLUTRealizationNames(t *testing.T) {
	if LUTColumns.String() != "SRAM columns" || LUTRegisterFile.String() != "register file" {
		t.Error("realization names wrong")
	}
	if LUTRealization(9).String() == "" {
		t.Error("unknown realization empty")
	}
}

func TestECCWriteOverheadStructure(t *testing.T) {
	l := Lib28nm()
	m := Macro28nm(4096)
	w39 := ECCWriteOverhead(l, m, ecc.H39_32())
	w22 := ECCWriteOverhead(l, m, ecc.H22_16())
	if w39.Energy <= w22.Energy {
		t.Error("bigger code should cost more write energy")
	}
	if w39.Delay <= 0 || w39.LUTArea != 0 {
		t.Errorf("ECC write overhead malformed: %+v", w39)
	}
}

func TestShuffleWritePathReadBeforeWrite(t *testing.T) {
	// §5.1: the SRAM-column LUT forces a read before every write — its
	// write latency must exceed the register-file variant by the array
	// access time.
	l := Lib28nm()
	m := Macro28nm(4096)
	cfg := core.Config{Width: 32, NFM: 3}
	col := ShuffleWriteOverhead(l, m, cfg, LUTColumns)
	reg := ShuffleWriteOverhead(l, m, cfg, LUTRegisterFile)
	if col.Delay-reg.Delay != m.AccessDelay {
		t.Errorf("read-before-write penalty %g, want %g", col.Delay-reg.Delay, m.AccessDelay)
	}
	// The register file pays in area instead for a deep macro.
	if reg.LUTArea <= col.LUTArea {
		t.Errorf("register file area %g not above column area %g for 4096 rows",
			reg.LUTArea, col.LUTArea)
	}
}

func TestShuffleWriteRegFileAreaScalesWithRows(t *testing.T) {
	l := Lib28nm()
	cfg := core.Config{Width: 32, NFM: 2}
	small := ShuffleWriteOverhead(l, Macro28nm(256), cfg, LUTRegisterFile)
	big := ShuffleWriteOverhead(l, Macro28nm(4096), cfg, LUTRegisterFile)
	if big.LUTArea != 16*small.LUTArea {
		t.Errorf("flop area not linear in rows: %g vs %g", big.LUTArea, small.LUTArea)
	}
}

func TestLUTAblationShape(t *testing.T) {
	rows := LUTAblation(Lib28nm(), Macro28nm(4096))
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.NFM != i+1 {
			t.Errorf("row %d nFM %d", i, r.NFM)
		}
		if r.ColumnWriteDelay <= r.RegFileWriteDelay {
			t.Errorf("nFM=%d: column write delay should exceed regfile", r.NFM)
		}
		if i > 0 && (r.ColumnArea <= rows[i-1].ColumnArea || r.RegFileArea <= rows[i-1].RegFileArea) {
			t.Errorf("areas not monotone at nFM=%d", r.NFM)
		}
		if r.ReadDelay != ShuffleOverhead(Lib28nm(), Macro28nm(4096), core.Config{Width: 32, NFM: r.NFM}).ReadDelay {
			t.Errorf("nFM=%d read delay mismatch", r.NFM)
		}
	}
}
