// Package hw is the structural hardware cost model behind the paper's
// overhead comparison (Fig. 6). It substitutes for the authors' 28 nm
// FD-SOI synthesis flow (Synopsys DC + Cadence SoC Encounter + VCD power)
// with a gate-level model: netlists for the SECDED encoders/decoders and
// the bit-shuffling barrel shifter are sized from the code geometry, and
// an SRAM-macro column model prices the extra storage (parity bits and
// FM-LUT columns).
//
// Absolute numbers are 28 nm-class estimates; the quantities the paper
// reports — overheads *relative to H(39,32) SECDED* — depend only on the
// structure (tree depths, mux stages, column counts) and are what the
// benchmarks regenerate.
package hw

import (
	"fmt"
	"math"

	"faultmem/internal/ecc"
)

// Cost aggregates the three design metrics of a hardware block.
type Cost struct {
	// Area in square micrometers.
	Area float64
	// Delay in picoseconds along the block's critical path.
	Delay float64
	// Energy in femtojoules per access (switching, activity-weighted).
	Energy float64
	// Gates is the equivalent two-input gate count (informational).
	Gates int
}

// Plus returns the series composition: areas, energies, and gate counts
// add; delays add (the blocks are on the same path).
func (c Cost) Plus(o Cost) Cost {
	return Cost{
		Area:   c.Area + o.Area,
		Delay:  c.Delay + o.Delay,
		Energy: c.Energy + o.Energy,
		Gates:  c.Gates + o.Gates,
	}
}

// PlusParallel returns the parallel composition: areas, energies, and
// gate counts add; delay is the maximum of the two paths.
func (c Cost) PlusParallel(o Cost) Cost {
	return Cost{
		Area:   c.Area + o.Area,
		Delay:  math.Max(c.Delay, o.Delay),
		Energy: c.Energy + o.Energy,
		Gates:  c.Gates + o.Gates,
	}
}

// GateSpec is the area/delay/energy characterization of one standard
// cell.
type GateSpec struct {
	Area   float64 // µm²
	Delay  float64 // ps
	Energy float64 // fJ per output toggle
}

// Library is a standard-cell library plus the switching-activity factor
// used to convert per-toggle energies into per-access energies.
type Library struct {
	INV, NAND2, AND2, OR2, XOR2, MUX2, DFF GateSpec
	// Activity is the fraction of gates assumed to toggle per access for
	// random-data datapaths (VCD-equivalent average).
	Activity float64
	// MuxActivity is the toggle fraction of barrel-shifter muxes, which
	// route full-entropy data and so switch more than control logic.
	MuxActivity float64
}

// Lib28nm returns a 28 nm-class standard-cell characterization.
func Lib28nm() Library {
	return Library{
		INV:         GateSpec{Area: 0.49, Delay: 8, Energy: 0.35},
		NAND2:       GateSpec{Area: 0.65, Delay: 10, Energy: 0.50},
		AND2:        GateSpec{Area: 0.90, Delay: 13, Energy: 0.60},
		OR2:         GateSpec{Area: 0.90, Delay: 13, Energy: 0.60},
		XOR2:        GateSpec{Area: 1.60, Delay: 18, Energy: 1.20},
		MUX2:        GateSpec{Area: 1.50, Delay: 15, Energy: 1.00},
		DFF:         GateSpec{Area: 3.60, Delay: 0, Energy: 2.00},
		Activity:    0.25,
		MuxActivity: 0.50,
	}
}

// gates returns the cost of n instances of g arranged depth levels deep,
// with switching activity act.
func gatesCost(g GateSpec, n, depth int, act float64) Cost {
	return Cost{
		Area:   float64(n) * g.Area,
		Delay:  float64(depth) * g.Delay,
		Energy: float64(n) * g.Energy * act,
		Gates:  n,
	}
}

// treeDepth returns ceil(log2(fanIn)) for fanIn >= 1.
func treeDepth(fanIn int) int {
	if fanIn <= 1 {
		return 0
	}
	d := 0
	for (1 << uint(d)) < fanIn {
		d++
	}
	return d
}

// XORTree returns the cost of a balanced XOR reduction tree with the
// given fan-in: fanIn-1 two-input XORs, ceil(log2 fanIn) levels.
func (l Library) XORTree(fanIn int) Cost {
	if fanIn < 1 {
		panic(fmt.Sprintf("hw: XOR tree fan-in %d", fanIn))
	}
	return gatesCost(l.XOR2, fanIn-1, treeDepth(fanIn), l.Activity)
}

// ANDTree returns the cost of a balanced AND reduction tree.
func (l Library) ANDTree(fanIn int) Cost {
	if fanIn < 1 {
		panic(fmt.Sprintf("hw: AND tree fan-in %d", fanIn))
	}
	return gatesCost(l.AND2, fanIn-1, treeDepth(fanIn), l.Activity)
}

// ORTree returns the cost of a balanced OR reduction tree.
func (l Library) ORTree(fanIn int) Cost {
	if fanIn < 1 {
		panic(fmt.Sprintf("hw: OR tree fan-in %d", fanIn))
	}
	return gatesCost(l.OR2, fanIn-1, treeDepth(fanIn), l.Activity)
}

// SECDEDEncoder sizes the write-path encoder of a SECDED code: one XOR
// tree per Hamming parity bit (fan-in = covered data bits) plus the
// overall-parity tree over all k+r bits.
func (l Library) SECDEDEncoder(c *ecc.Code) Cost {
	hamming, overall := c.ParityFanIn()
	cost := Cost{}
	for _, f := range hamming {
		cost = cost.PlusParallel(l.XORTree(f))
	}
	return cost.PlusParallel(l.XORTree(overall))
}

// SECDEDDecoder sizes the read-path decoder: syndrome recomputation
// (one XOR tree per check bit, fan-in = covered bits + the stored check
// bit), overall-parity check over the full codeword, the syndrome-decode
// stage (one r-input AND per codeword position), and the correction XOR
// on each data bit. Critical path: deepest syndrome tree -> syndrome
// decode -> correction XOR. This is the logic that adds roughly 13 gate
// delays to the read access of an H(39,32) memory [Rossi et al., DATE'11],
// which the paper cites in §3.
func (l Library) SECDEDDecoder(c *ecc.Code) Cost {
	hamming, _ := c.ParityFanIn()
	n := c.CodewordBits()
	r := len(hamming)

	syndrome := Cost{}
	for _, f := range hamming {
		syndrome = syndrome.PlusParallel(l.XORTree(f + 1))
	}
	// Overall parity check runs in parallel with the syndrome trees.
	syndrome = syndrome.PlusParallel(l.XORTree(n))

	// Syndrome decode: n position-match ANDs of r inputs each (inverters
	// shared, counted once per syndrome bit).
	decode := gatesCost(l.AND2, n*(r-1), treeDepth(r), l.Activity)
	decode = decode.PlusParallel(gatesCost(l.INV, r, 0, l.Activity))
	// Error-flag reduction (uncorrectable detect) off the critical path.
	flags := l.ORTree(r)
	flags.Delay = 0
	decode = decode.PlusParallel(flags)

	// Correction: one XOR per data bit, single level.
	correct := gatesCost(l.XOR2, c.DataBits(), 1, l.Activity)

	return syndrome.Plus(decode).Plus(correct)
}

// BarrelShifter sizes a mux-based rotator for width-bit words with the
// given number of binary stages (stage i conditionally rotates by
// granularity*2^i). The bit-shuffling read path uses nFM stages at
// segment granularity (§3): width muxes per stage, one mux delay per
// stage. Muxes route full-entropy data, so MuxActivity applies.
func (l Library) BarrelShifter(width, stages int) Cost {
	if width < 1 || stages < 1 {
		panic(fmt.Sprintf("hw: barrel shifter %d bits x %d stages", width, stages))
	}
	return gatesCost(l.MUX2, width*stages, stages, l.MuxActivity)
}

// ShiftAmountLogic sizes the small unit computing T/S = (2^nFM - x) mod
// 2^nFM from the FM-LUT entry (a two's complement negate: inverters plus
// an increment ripple) and the read/write amount select mux. The FM-LUT
// entry is available concurrently with the array access, so this logic is
// off the read critical path; only the select mux contributes delay.
func (l Library) ShiftAmountLogic(nfm int) Cost {
	if nfm < 1 {
		panic(fmt.Sprintf("hw: shift amount width %d", nfm))
	}
	neg := gatesCost(l.INV, nfm, 0, l.Activity)
	inc := gatesCost(l.XOR2, nfm, 0, l.Activity).
		PlusParallel(gatesCost(l.AND2, nfm, 0, l.Activity))
	sel := gatesCost(l.MUX2, nfm, 1, l.Activity)
	return neg.PlusParallel(inc).Plus(sel)
}
