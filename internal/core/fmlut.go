package core

import (
	"fmt"

	"faultmem/internal/fault"
)

// FMLUT is the fault-map look-up table: one nFM-bit entry per memory row
// recording the segment index of the row's faulty cell(s) (Fig. 3). In
// hardware it occupies nFM extra bit columns of the array (or a register
// file / CAM, see §5.1); functionally it is a small array of shift codes
// programmed by BIST.
type FMLUT struct {
	cfg Config
	x   []uint8
	// Reprogram scratch: a sortable fault-map copy and a per-row column
	// buffer, reused so per-trial table rebuilds are allocation-free.
	scratch []fault.Fault
	cols    []int
}

// NewFMLUT returns an all-zero (no shift) FM-LUT for the given row count.
func NewFMLUT(cfg Config, rows int) *FMLUT {
	cfg.mustValidate()
	if rows <= 0 {
		panic(fmt.Sprintf("core: invalid row count %d", rows))
	}
	return &FMLUT{cfg: cfg, x: make([]uint8, rows)}
}

// BuildFMLUT constructs the FM-LUT for a fault map in data geometry
// (rows x Width), choosing the best entry for every faulty row. This is
// the functional equivalent of running BIST and programming the table
// (§3, step 1).
func BuildFMLUT(cfg Config, rows int, faults fault.Map) (*FMLUT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := faults.Validate(rows, cfg.Width); err != nil {
		return nil, fmt.Errorf("core: bad fault map: %w", err)
	}
	l := NewFMLUT(cfg, rows)
	for row, cols := range faults.ByRow() {
		l.x[row] = uint8(cfg.BestXCode(cols))
	}
	return l, nil
}

// Reprogram rebuilds the table in place for a new fault map — the
// per-trial path of Monte-Carlo loops that reuse one memory per arm. It
// produces exactly the entries BuildFMLUT would, but groups faults by
// row with an internal scratch sort instead of allocating per-row maps,
// so warm calls never touch the allocator.
func (l *FMLUT) Reprogram(faults fault.Map) error {
	rows := len(l.x)
	if err := faults.Validate(rows, l.cfg.Width); err != nil {
		return fmt.Errorf("core: bad fault map: %w", err)
	}
	clear(l.x)
	if cap(l.scratch) < len(faults) {
		l.scratch = make([]fault.Fault, len(faults))
	}
	s := l.scratch[:len(faults)]
	copy(s, faults)
	// Insertion sort by (row, col): allocation-free, and ascending cols
	// per row matches the ByRow ordering BuildFMLUT feeds BestXCode.
	for i := 1; i < len(s); i++ {
		f := s[i]
		j := i
		for j > 0 && (s[j-1].Row > f.Row || (s[j-1].Row == f.Row && s[j-1].Col > f.Col)) {
			s[j] = s[j-1]
			j--
		}
		s[j] = f
	}
	l.scratch = s
	cols := l.cols[:0]
	for i := 0; i < len(s); {
		row := s[i].Row
		cols = cols[:0]
		for ; i < len(s) && s[i].Row == row; i++ {
			cols = append(cols, s[i].Col)
		}
		l.x[row] = uint8(l.cfg.BestXCode(cols))
	}
	l.cols = cols
	return nil
}

// Config returns the shuffling configuration of the table.
func (l *FMLUT) Config() Config { return l.cfg }

// Rows returns the number of entries.
func (l *FMLUT) Rows() int { return len(l.x) }

// X returns the entry of the given row.
func (l *FMLUT) X(row int) int {
	l.check(row)
	return int(l.x[row])
}

// SetX programs the entry of the given row; the BIST flow uses this.
func (l *FMLUT) SetX(row, x int) {
	l.check(row)
	if x < 0 || x >= l.cfg.NumSegments() {
		panic(fmt.Sprintf("core: xFM %d outside [0,%d)", x, l.cfg.NumSegments()))
	}
	l.x[row] = uint8(x)
}

// Shift returns the rotation amount T(row) of Eq. (2).
func (l *FMLUT) Shift(row int) int {
	return l.cfg.ShiftForX(l.X(row))
}

func (l *FMLUT) check(row int) {
	if row < 0 || row >= len(l.x) {
		panic(fmt.Sprintf("core: FM-LUT row %d outside [0,%d)", row, len(l.x)))
	}
}

// StorageBits returns the total FM-LUT storage in bits (rows * nFM), the
// quantity the overhead model charges as extra columns.
func (l *FMLUT) StorageBits() int { return len(l.x) * l.cfg.NFM }
