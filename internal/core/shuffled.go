package core

import (
	"fmt"

	"faultmem/internal/fault"
	"faultmem/internal/mem"
	"faultmem/internal/sram"
)

// Shuffled is a faulty memory protected by the bit-shuffling scheme: the
// complete datapath of Fig. 3. It implements mem.Word32 for Width == 32.
//
// The FM-LUT itself is modeled fault-free, matching the paper's analysis
// (the LUT columns can be built from robust cells or a register file,
// §5.1); the overhead model in internal/hw charges for its area, power,
// and the read-path shifter delay.
type Shuffled struct {
	cfg Config
	arr *sram.Array
	lut *FMLUT
	buf []uint64 // batch-transfer staging scratch
}

// NewShuffled builds a bit-shuffling memory over rows words of cfg.Width
// bits with the given data-geometry fault map. The FM-LUT is programmed
// from the fault map as BIST would (§3: fault locations are detected
// during BIST and the shifting value recorded for each row).
func NewShuffled(cfg Config, rows int, faults fault.Map) (*Shuffled, error) {
	lut, err := BuildFMLUT(cfg, rows, faults)
	if err != nil {
		return nil, err
	}
	arr := sram.NewArray(rows, cfg.Width)
	if err := arr.SetFaults(faults); err != nil {
		return nil, err
	}
	return &Shuffled{cfg: cfg, arr: arr, lut: lut}, nil
}

// Reset reinstalls a new data-geometry fault map in place: the array's
// fault masks and the FM-LUT are rebuilt without reallocating, so
// per-trial Monte-Carlo loops can reuse one memory per arm. Previously
// stored words remain (a write-then-read cycle behaves exactly like a
// freshly built memory).
func (s *Shuffled) Reset(faults fault.Map) error {
	if err := s.lut.Reprogram(faults); err != nil {
		return err
	}
	return s.arr.SetFaults(faults)
}

// NewShuffledWithLUT builds the memory with an externally programmed
// FM-LUT (the cmd/bistscan flow: BIST discovers faults, programs the
// table, then the datapath uses it). The array's faults and the LUT are
// the caller's responsibility to keep consistent.
func NewShuffledWithLUT(arr *sram.Array, lut *FMLUT) (*Shuffled, error) {
	cfg := lut.Config()
	if arr.Width() != cfg.Width {
		return nil, fmt.Errorf("core: array width %d != config width %d", arr.Width(), cfg.Width)
	}
	if arr.Rows() != lut.Rows() {
		return nil, fmt.Errorf("core: array rows %d != FM-LUT rows %d", arr.Rows(), lut.Rows())
	}
	return &Shuffled{cfg: cfg, arr: arr, lut: lut}, nil
}

// Read fetches the word at addr: raw read, then left-circular shift by
// T(addr) to restore the original bit order.
func (s *Shuffled) Read(addr int) uint32 {
	t := s.lut.Shift(addr)
	return uint32(s.cfg.RotateRead(s.arr.Read(addr), t))
}

// Write stores v at addr: right-circular shift by T(addr) so the least
// significant segment lands on the faulty cells, then raw write.
func (s *Shuffled) Write(addr int, v uint32) {
	t := s.lut.Shift(addr)
	s.arr.Write(addr, s.cfg.RotateWrite(uint64(v), t))
}

// ReadWide and WriteWide are the width-generic accessors (for Width != 32
// configurations used in the word-width ablation).
func (s *Shuffled) ReadWide(addr int) uint64 {
	t := s.lut.Shift(addr)
	return s.cfg.RotateRead(s.arr.Read(addr), t)
}

// WriteWide stores the low Width bits of v at addr.
func (s *Shuffled) WriteWide(addr int, v uint64) {
	t := s.lut.Shift(addr)
	s.arr.Write(addr, s.cfg.RotateWrite(v, t))
}

// Words returns the address space size.
func (s *Shuffled) Words() int { return s.arr.Rows() }

// LUT returns the fault-map look-up table.
func (s *Shuffled) LUT() *FMLUT { return s.lut }

// Array returns the underlying bit-cell array.
func (s *Shuffled) Array() *sram.Array { return s.arr }

// Config returns the shuffling configuration.
func (s *Shuffled) Config() Config { return s.cfg }

// Faults returns the installed fault map (data geometry).
func (s *Shuffled) Faults() fault.Map { return s.arr.Faults() }

var _ mem.Word32 = (*Shuffled)(nil)
