package core

import (
	"math"
	"testing"
	"testing/quick"

	"faultmem/internal/bits"
	"faultmem/internal/fault"
	"faultmem/internal/stats"
)

func cfg32(nfm int) Config { return Config{Width: 32, NFM: nfm} }

func TestConfigValidate(t *testing.T) {
	good := []Config{{32, 1}, {32, 5}, {16, 4}, {8, 3}, {64, 6}, {2, 1}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", c, err)
		}
	}
	bad := []Config{{32, 0}, {32, 6}, {31, 3}, {0, 1}, {128, 3}, {-8, 2}, {64, 7}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestSegmentSizeEq1(t *testing.T) {
	// Eq. (1): S = W / 2^nFM for the 32-bit word of the paper.
	want := map[int]int{1: 16, 2: 8, 3: 4, 4: 2, 5: 1}
	for nfm, s := range want {
		c := cfg32(nfm)
		if got := c.SegmentSize(); got != s {
			t.Errorf("nFM=%d: S=%d, want %d", nfm, got, s)
		}
		if got := c.NumSegments(); got != 32/s {
			t.Errorf("nFM=%d: segments=%d, want %d", nfm, got, 32/s)
		}
	}
}

func TestMaxErrorMagnitude(t *testing.T) {
	// §3: worst-case error magnitude is bounded by 2^(S-1).
	want := map[int]uint64{1: 1 << 15, 2: 1 << 7, 3: 1 << 3, 4: 1 << 1, 5: 1 << 0}
	for nfm, m := range want {
		if got := cfg32(nfm).MaxErrorMagnitude(); got != m {
			t.Errorf("nFM=%d: max magnitude %d, want %d", nfm, got, m)
		}
	}
}

func TestShiftForXPaperExample(t *testing.T) {
	// Fig. 3 bottom word: W=32, nFM=5, fault in bit 3 => T = 29 (Eq. 2
	// worked example in §3).
	c := cfg32(5)
	x := c.XForSingleFault(3)
	if x != 3 {
		t.Fatalf("xFM = %d, want 3", x)
	}
	if tt := c.ShiftForX(x); tt != 29 {
		t.Fatalf("T = %d, want 29", tt)
	}
	// Fig. 3 top word: fault at the MSB (bit 31), single-bit segments:
	// the LSB must be stored at physical position 31.
	xTop := c.XForSingleFault(31)
	tTop := c.ShiftForX(xTop)
	if got := c.RotateWrite(1, tTop); got != 1<<31 {
		t.Fatalf("top-word LSB stored at %#x, want bit 31", got)
	}
	// x = 0 means no shift.
	if c.ShiftForX(0) != 0 {
		t.Error("x=0 should give T=0")
	}
}

func TestSingleFaultLandsInLowestSegment(t *testing.T) {
	// Core invariant of §3: with the paper's single-fault rule, the fault
	// corrupts logical bit f mod S, so the error is < 2^S.
	for nfm := 1; nfm <= 5; nfm++ {
		c := cfg32(nfm)
		s := c.SegmentSize()
		for f := 0; f < 32; f++ {
			x := c.XForSingleFault(f)
			lp := c.LogicalPosition(f, x)
			if lp != f%s {
				t.Errorf("nFM=%d f=%d: logical position %d, want %d", nfm, f, lp, f%s)
			}
			if uint64(1)<<uint(lp) > c.MaxErrorMagnitude() {
				t.Errorf("nFM=%d f=%d: magnitude exceeds bound", nfm, f)
			}
		}
	}
}

func TestSingleFaultErrorExponentFig4(t *testing.T) {
	// Fig. 4: error magnitude exponent per faulty bit position. Spot-check
	// the characteristic sawtooth: exponent resets at segment boundaries.
	c := cfg32(3) // S = 4
	wantSeq := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for b, want := range wantSeq {
		if got := c.SingleFaultErrorExponent(b); got != want {
			t.Errorf("nFM=3 b=%d: exponent %d, want %d", b, got, want)
		}
	}
	// nFM=5: always 0 (max error 2^0 = 1, §3).
	c5 := cfg32(5)
	for b := 0; b < 32; b++ {
		if c5.SingleFaultErrorExponent(b) != 0 {
			t.Errorf("nFM=5 b=%d: exponent nonzero", b)
		}
	}
	// No-correction reference grows linearly: compare worst case.
	c1 := cfg32(1)
	if c1.SingleFaultErrorExponent(31) != 15 {
		t.Errorf("nFM=1 b=31: exponent %d, want 15", c1.SingleFaultErrorExponent(31))
	}
}

func TestBestXMatchesPaperRuleForSingleFault(t *testing.T) {
	f := func(fRaw uint8, nfmRaw uint8) bool {
		nfm := int(nfmRaw)%5 + 1
		c := cfg32(nfm)
		fpos := int(fRaw) % 32
		x, logical := c.BestX([]int{fpos})
		return x == c.XForSingleFault(fpos) && len(logical) == 1 && logical[0] == fpos%c.SegmentSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBestXEmptyRow(t *testing.T) {
	x, logical := cfg32(3).BestX(nil)
	if x != 0 || logical != nil {
		t.Errorf("empty row: x=%d logical=%v", x, logical)
	}
}

func TestBestXMultiFaultNeverWorseThanAnyFixedShift(t *testing.T) {
	// Optimality: the chosen x must yield cost <= every other x.
	rng := stats.NewRand(31)
	cost := func(c Config, cols []int, x int) float64 {
		s := 0.0
		for _, f := range cols {
			b := c.LogicalPosition(f, x)
			m := math.Ldexp(1, b)
			s += m * m
		}
		return s
	}
	for trial := 0; trial < 300; trial++ {
		nfm := rng.Intn(5) + 1
		c := cfg32(nfm)
		k := rng.Intn(4) + 1
		cols := stats.SampleDistinct(rng, 32, k)
		x, _ := c.BestX(cols)
		best := cost(c, cols, x)
		for cand := 0; cand < c.NumSegments(); cand++ {
			if cc := cost(c, cols, cand); cc < best-1e-9 {
				t.Fatalf("nFM=%d cols=%v: BestX=%d cost %g beaten by x=%d cost %g",
					nfm, cols, x, best, cand, cc)
			}
		}
	}
}

func TestResidualPositionsSingleFaultBound(t *testing.T) {
	// For any single fault the residual magnitude obeys the 2^(S-1) bound.
	for nfm := 1; nfm <= 5; nfm++ {
		c := cfg32(nfm)
		for f := 0; f < 32; f++ {
			res := c.ResidualPositions([]int{f})
			if len(res) != 1 {
				t.Fatalf("nFM=%d: %d residuals for one fault", nfm, len(res))
			}
			if res[0] >= c.SegmentSize() {
				t.Errorf("nFM=%d f=%d: residual position %d >= S", nfm, f, res[0])
			}
		}
	}
}

func TestRotateWriteReadInverse(t *testing.T) {
	f := func(v uint64, xRaw uint8, nfmRaw uint8) bool {
		nfm := int(nfmRaw)%5 + 1
		c := cfg32(nfm)
		x := int(xRaw) % c.NumSegments()
		tt := c.ShiftForX(x)
		v &= bits.Mask(32)
		return c.RotateRead(c.RotateWrite(v, tt), tt) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFMLUTBuildAndProgram(t *testing.T) {
	c := cfg32(5)
	faults := fault.Map{
		{Row: 0, Col: 31, Kind: fault.Flip},
		{Row: 2, Col: 3, Kind: fault.Flip},
	}
	lut, err := BuildFMLUT(c, 4, faults)
	if err != nil {
		t.Fatal(err)
	}
	if lut.X(0) != 31 {
		t.Errorf("row 0 x = %d, want 31", lut.X(0))
	}
	if lut.X(1) != 0 {
		t.Errorf("clean row x = %d, want 0", lut.X(1))
	}
	if lut.X(2) != 3 {
		t.Errorf("row 2 x = %d, want 3", lut.X(2))
	}
	if lut.Shift(2) != 29 {
		t.Errorf("row 2 T = %d, want 29", lut.Shift(2))
	}
	if lut.Shift(1) != 0 {
		t.Errorf("clean row T = %d, want 0", lut.Shift(1))
	}
	lut.SetX(1, 7)
	if lut.X(1) != 7 {
		t.Error("SetX failed")
	}
	if lut.Rows() != 4 || lut.StorageBits() != 4*5 {
		t.Errorf("rows=%d storage=%d", lut.Rows(), lut.StorageBits())
	}
}

func TestBuildFMLUTRejectsBadInput(t *testing.T) {
	if _, err := BuildFMLUT(Config{Width: 31, NFM: 1}, 4, nil); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := BuildFMLUT(cfg32(1), 4, fault.Map{{Row: 9, Col: 0}}); err == nil {
		t.Error("out-of-range fault accepted")
	}
}
