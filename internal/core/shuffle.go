// Package core implements the paper's primary contribution: the
// significance-driven bit-shuffling fault-mitigation scheme (§3).
//
// Instead of correcting faults, the scheme places bits of low significance
// into faulty cells. A per-row fault-map look-up table (FM-LUT) stores,
// in nFM bits, the index xFM of the word segment containing the row's
// faulty cell. On every write the data word is right-circular-shifted by
//
//	T(r) = S * (2^nFM - xFM(r)) mod W        (Eq. 2)
//
// with segment size S = W / 2^nFM (Eq. 1), so the least-significant
// segment lands on the faulty segment; on read the word is rotated back.
// A single fault at physical column f then corrupts logical bit
// (f mod S) < S, bounding the error magnitude by 2^(S-1).
package core

import (
	"fmt"
	"math"
	mbits "math/bits"

	"faultmem/internal/bits"
)

// Config selects the word width and FM-LUT entry width of a bit-shuffling
// instance.
type Config struct {
	// Width is the data word width W in bits. Must be a power of two in
	// [2, 64]. The paper's experiments use 32.
	Width int
	// NFM is the FM-LUT entry width nFM in bits, 1 <= NFM <= log2(Width).
	// Larger NFM means finer shift granularity: NFM = log2(W) shifts at
	// single-bit granularity; NFM = 1 can only swap word halves.
	NFM int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	w := c.Width
	if w < 2 || w > 64 || w&(w-1) != 0 {
		return fmt.Errorf("core: width %d is not a power of two in [2,64]", w)
	}
	max := c.maxNFM()
	if c.NFM < 1 || c.NFM > max {
		return fmt.Errorf("core: nFM %d outside [1,%d] for width %d", c.NFM, max, w)
	}
	return nil
}

func (c Config) maxNFM() int {
	// log2 of the power-of-two width, as integer arithmetic: Validate
	// guards every per-word accessor (SegmentSize, ShiftForX, ...), so
	// a transcendental log here would tax every shuffled memory access.
	return mbits.Len(uint(c.Width)) - 1
}

// mustValidate panics on an invalid configuration (constructor guard).
func (c Config) mustValidate() {
	if err := c.Validate(); err != nil {
		panic(err)
	}
}

// SegmentSize returns S = W / 2^nFM (Eq. 1).
func (c Config) SegmentSize() int {
	c.mustValidate()
	return c.Width >> uint(c.NFM)
}

// NumSegments returns 2^nFM, the number of segments the word is divided
// into (and the number of distinct FM-LUT values).
func (c Config) NumSegments() int {
	c.mustValidate()
	return 1 << uint(c.NFM)
}

// MaxErrorMagnitude returns the worst-case single-fault error magnitude
// 2^(S-1) guaranteed by the scheme (§3).
func (c Config) MaxErrorMagnitude() uint64 {
	return uint64(1) << uint(c.SegmentSize()-1)
}

// ShiftForX returns the rotation amount T = S*(2^nFM - x) mod W applied
// to a word whose FM-LUT entry is x (Eq. 2). x = 0 (no fault recorded in
// a nonzero segment) yields T = 0.
func (c Config) ShiftForX(x int) int {
	n := c.NumSegments()
	if x < 0 || x >= n {
		panic(fmt.Sprintf("core: xFM %d outside [0,%d)", x, n))
	}
	return (c.SegmentSize() * (n - x)) % c.Width
}

// XForSingleFault returns the FM-LUT entry for a row with a single faulty
// cell at physical column f: the index of the segment containing f.
func (c Config) XForSingleFault(f int) int {
	if f < 0 || f >= c.Width {
		panic(fmt.Sprintf("core: fault column %d outside [0,%d)", f, c.Width))
	}
	return f / c.SegmentSize()
}

// LogicalPosition returns the logical bit significance that a fault at
// physical column f corrupts when the row's FM-LUT entry is x: under a
// write rotation of T, physical cell f holds logical bit (f + T) mod W.
func (c Config) LogicalPosition(f, x int) int {
	if f < 0 || f >= c.Width {
		panic(fmt.Sprintf("core: fault column %d outside [0,%d)", f, c.Width))
	}
	return (f + c.ShiftForX(x)) % c.Width
}

// BestX returns the FM-LUT entry minimizing the summed squared error
// magnitude for a row with faulty physical columns cols, together with
// the resulting per-fault logical positions. For a single fault this is
// exactly the paper's rule (the fault's segment index); for multiple
// faults per row — which the paper's single-fault assumption leaves open —
// it picks the best achievable rotation (ties broken toward smaller x).
// An empty cols yields x = 0 (no shift).
func (c Config) BestX(cols []int) (x int, logical []int) {
	x = c.BestXCode(cols)
	if len(cols) == 0 {
		return 0, nil
	}
	logical = make([]int, len(cols))
	for i, f := range cols {
		logical[i] = c.LogicalPosition(f, x)
	}
	return x, logical
}

// BestXCode is BestX without materializing the logical positions — the
// FM-LUT only stores x, so table (re)programming stays allocation-free.
func (c Config) BestXCode(cols []int) int {
	c.mustValidate()
	if len(cols) == 0 {
		return 0
	}
	bestCost := math.Inf(1)
	bestX := 0
	for cand := 0; cand < c.NumSegments(); cand++ {
		cost := 0.0
		for _, f := range cols {
			b := c.LogicalPosition(f, cand)
			m := math.Ldexp(1, b) // 2^b
			cost += m * m
		}
		if cost < bestCost {
			bestCost, bestX = cost, cand
		}
	}
	return bestX
}

// ResidualPositions returns the logical bit positions still corrupted in
// a row with faulty columns cols after bit-shuffling with the best FM-LUT
// entry. This is the quantity Eq. (6) sums over for the shuffled memory.
func (c Config) ResidualPositions(cols []int) []int {
	_, logical := c.BestX(cols)
	return logical
}

// XPaperRule returns the FM-LUT entry under a literal reading of the
// paper's single-fault rule extended to multi-fault rows: record the
// segment of the *most significant* faulty cell (the one that would hurt
// most if left alone), ignoring the others. BestX instead searches all
// 2^nFM entries; the ablation benches quantify the difference. For a
// single fault the two rules coincide.
func (c Config) XPaperRule(cols []int) int {
	if len(cols) == 0 {
		return 0
	}
	msb := cols[0]
	for _, f := range cols[1:] {
		if f > msb {
			msb = f
		}
	}
	return c.XForSingleFault(msb)
}

// ResidualPositionsPaperRule is ResidualPositions under XPaperRule.
func (c Config) ResidualPositionsPaperRule(cols []int) []int {
	x := c.XPaperRule(cols)
	logical := make([]int, len(cols))
	for i, f := range cols {
		logical[i] = c.LogicalPosition(f, x)
	}
	return logical
}

// SingleFaultErrorExponent returns log2 of the error magnitude caused by
// a single fault at physical column b under this configuration: b mod S.
// This is the quantity plotted in Fig. 4 for nFM = 1..5.
func (c Config) SingleFaultErrorExponent(b int) int {
	if b < 0 || b >= c.Width {
		panic(fmt.Sprintf("core: bit position %d outside [0,%d)", b, c.Width))
	}
	return b % c.SegmentSize()
}

// RotateWrite applies the write-path transformation: the right-circular
// shift by T placing the least significant segment on the faulty segment.
func (c Config) RotateWrite(v uint64, t int) uint64 {
	return bits.RotateRight(v, c.Width, t)
}

// RotateRead applies the read-path transformation, restoring the original
// bit order.
func (c Config) RotateRead(v uint64, t int) uint64 {
	return bits.RotateLeft(v, c.Width, t)
}
