package core

import (
	"faultmem/internal/mem"
)

// shiftTable precomputes ShiftForX for every FM-LUT entry value, so the
// batch paths resolve a row's rotation with one table load instead of
// re-deriving Eq. (2) per word. NumSegments is at most Width <= 64.
func (s *Shuffled) shiftTable() (table [64]int) {
	n := s.cfg.NumSegments()
	for x := 0; x < n; x++ {
		table[x] = s.cfg.ShiftForX(x)
	}
	return table
}

// WriteBatch stores src[i] at addr+i, applying each row's write-path
// rotation before one bulk store — semantically identical to per-word
// Write in ascending address order.
func (s *Shuffled) WriteBatch(addr int, src []uint32) {
	s.buf = growBuf(s.buf, len(src))
	shifts := s.shiftTable()
	x := s.lut.x[addr : addr+len(src)]
	for i, v := range src {
		s.buf[i] = s.cfg.RotateWrite(uint64(v), shifts[x[i]])
	}
	s.arr.WriteBatch(addr, s.buf)
}

// ReadBatch reads addr+i into dst[i]: one bulk fetch, then each row's
// read-path rotation restoring the original bit order.
func (s *Shuffled) ReadBatch(addr int, dst []uint32) {
	s.buf = growBuf(s.buf, len(dst))
	s.arr.ReadBatch(addr, s.buf)
	shifts := s.shiftTable()
	x := s.lut.x[addr : addr+len(dst)]
	for i, w := range s.buf {
		dst[i] = uint32(s.cfg.RotateRead(w, shifts[x[i]]))
	}
}

// ImageKey identifies the fault-independent part of the encode
// transform, which for bit-shuffling is the identity: the per-row
// rotation depends on the programmed FM-LUT (i.e. on the fault map), so
// it is applied by WriteImage at store time and images survive Reset.
func (s *Shuffled) ImageKey() string { return mem.ImageKeyRaw32 }

// EncodeImage widens src into img (see ImageKey: the physical image
// before the fault-dependent rotation is the datum itself).
func (s *Shuffled) EncodeImage(img []uint64, src []uint32) {
	if len(img) != len(src) {
		panic("core: image length mismatch")
	}
	for i, v := range src {
		img[i] = uint64(v)
	}
}

// WriteImage stores a precomputed image at addr+i, applying the current
// FM-LUT's per-row rotations and the array's stuck-at masks. img is not
// modified.
func (s *Shuffled) WriteImage(addr int, img []uint64) {
	s.buf = growBuf(s.buf, len(img))
	shifts := s.shiftTable()
	x := s.lut.x[addr : addr+len(img)]
	for i, w := range img {
		s.buf[i] = s.cfg.RotateWrite(w, shifts[x[i]])
	}
	s.arr.WriteBatch(addr, s.buf)
}

// ReadChecked is Read with no flag: bit-shuffling relocates error bits
// to low-significance positions but carries no code, so it cannot
// detect what it absorbs. Implementing mem.Detector anyway lets the
// checked round trips treat the shuffling arms uniformly — they read
// through the shuffle and recover nothing, the degenerate policy.
func (s *Shuffled) ReadChecked(addr int) (uint32, bool) { return s.Read(addr), false }

// ReadBatchChecked is ReadBatch with no flags (see ReadChecked).
func (s *Shuffled) ReadBatchChecked(addr int, dst []uint32, _ *mem.DUESet, _ int) {
	s.ReadBatch(addr, dst)
}

// growBuf returns a length-n scratch slice, reusing buf's storage when
// it is large enough.
func growBuf(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

var (
	_ mem.BatchMemory = (*Shuffled)(nil)
	_ mem.ImageWriter = (*Shuffled)(nil)
	_ mem.Detector    = (*Shuffled)(nil)
)
