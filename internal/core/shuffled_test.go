package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"faultmem/internal/bits"
	"faultmem/internal/fault"
	"faultmem/internal/stats"
)

func TestShuffledFaultFreeRoundTrip(t *testing.T) {
	s, err := NewShuffled(cfg32(3), 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(addr uint8, v uint32) bool {
		a := int(addr) % 16
		s.Write(a, v)
		return s.Read(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffledSingleFaultErrorBound(t *testing.T) {
	// The paper's headline guarantee: with one fault per word, the
	// read-back error magnitude is at most 2^(S-1), for every fault
	// position, every datum, and every nFM.
	rng := stats.NewRand(77)
	for nfm := 1; nfm <= 5; nfm++ {
		c := cfg32(nfm)
		for fpos := 0; fpos < 32; fpos++ {
			m := fault.Map{{Row: 0, Col: fpos, Kind: fault.Flip}}
			s, err := NewShuffled(c, 1, m)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 20; trial++ {
				v := uint32(rng.Uint64())
				s.Write(0, v)
				got := s.Read(0)
				magnitude := bits.ErrorMagnitude2c(uint64(v), uint64(v^got), 32)
				if magnitude > c.MaxErrorMagnitude() {
					t.Fatalf("nFM=%d fault@%d v=%#x: |error| = %d exceeds bound %d",
						nfm, fpos, v, magnitude, c.MaxErrorMagnitude())
				}
			}
		}
	}
}

func TestShuffledVsRawErrorReduction(t *testing.T) {
	// A fault at the MSB: raw memory suffers 2^31, shuffled (nFM=5)
	// suffers exactly 2^0 = 1.
	m := fault.Map{{Row: 0, Col: 31, Kind: fault.Flip}}
	s, err := NewShuffled(cfg32(5), 1, m)
	if err != nil {
		t.Fatal(err)
	}
	s.Write(0, 0)
	if got := s.Read(0); got != 1 {
		t.Errorf("shuffled read of 0 with MSB fault = %#x, want 1", got)
	}
}

func TestShuffledExactlyOneBitCorrupted(t *testing.T) {
	// A single flip fault corrupts exactly one logical bit position —
	// shuffling relocates, never duplicates, the error.
	f := func(v uint32, fRaw uint8, nfmRaw uint8) bool {
		nfm := int(nfmRaw)%5 + 1
		fpos := int(fRaw) % 32
		s, err := NewShuffled(cfg32(nfm), 1, fault.Map{{Row: 0, Col: fpos, Kind: fault.Flip}})
		if err != nil {
			return false
		}
		s.Write(0, v)
		diff := uint64(v ^ s.Read(0))
		return bits.OnesCount(diff, 32) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffledCleanRowsUnaffected(t *testing.T) {
	m := fault.Map{{Row: 3, Col: 31, Kind: fault.Flip}}
	s, err := NewShuffled(cfg32(5), 8, m)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 8; a++ {
		if a == 3 {
			continue
		}
		s.Write(a, 0xCAFEBABE)
		if got := s.Read(a); got != 0xCAFEBABE {
			t.Errorf("clean row %d corrupted: %#x", a, got)
		}
	}
}

func TestShuffledStoresShiftedBits(t *testing.T) {
	// White-box: with a fault at bit 3 and nFM=5 (the Fig. 3 bottom-word
	// example), the stored word must be the original rotated right by 29.
	m := fault.Map{{Row: 0, Col: 3, Kind: fault.Flip}}
	s, err := NewShuffled(cfg32(5), 1, m)
	if err != nil {
		t.Fatal(err)
	}
	v := uint32(0x12345678)
	s.Write(0, v)
	want := bits.RotateRight(uint64(v), 32, 29)
	if got := s.Array().Peek(0); got != want {
		t.Errorf("stored %#x, want %#x", got, want)
	}
}

func TestShuffledMultiFaultStillBestEffort(t *testing.T) {
	// Two faults in one row: the residual error must match the BestX
	// prediction and never exceed the unprotected error.
	rng := stats.NewRand(5)
	for trial := 0; trial < 100; trial++ {
		cols := stats.SampleDistinct(rng, 32, 2)
		c := cfg32(4)
		m := fault.Map{
			{Row: 0, Col: cols[0], Kind: fault.Flip},
			{Row: 0, Col: cols[1], Kind: fault.Flip},
		}
		s, err := NewShuffled(c, 1, m)
		if err != nil {
			t.Fatal(err)
		}
		s.Write(0, 0)
		got := uint64(s.Read(0))
		want := uint64(0)
		for _, lp := range c.ResidualPositions(cols) {
			want |= 1 << uint(lp)
		}
		if got != want {
			t.Fatalf("cols=%v: residual pattern %#x, want %#x", cols, got, want)
		}
	}
}

func TestShuffledWide16(t *testing.T) {
	// Width-16 configuration via the wide accessors.
	c := Config{Width: 16, NFM: 4}
	m := fault.Map{{Row: 0, Col: 15, Kind: fault.Flip}}
	lutc, err := BuildFMLUT(c, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	_ = lutc
	s, err := NewShuffled(c, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	s.WriteWide(0, 0)
	if got := s.ReadWide(0); got != 1 {
		t.Errorf("16-bit MSB fault: read %#x, want 1", got)
	}
}

func TestNewShuffledWithLUTValidation(t *testing.T) {
	c := cfg32(2)
	lut := NewFMLUT(c, 4)
	arrWrongWidth, err := NewShuffled(Config{Width: 16, NFM: 2}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShuffledWithLUT(arrWrongWidth.Array(), lut); err == nil {
		t.Error("width mismatch accepted")
	}
	ok, err := NewShuffled(c, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShuffledWithLUT(ok.Array(), NewFMLUT(c, 8)); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, err := NewShuffledWithLUT(ok.Array(), lut); err != nil {
		t.Errorf("valid combination rejected: %v", err)
	}
}

func BenchmarkShuffledReadWrite(b *testing.B) {
	rng := stats.NewRand(1)
	m := fault.GenerateCount(rng, 4096, 32, 64, fault.Flip)
	s, err := NewShuffled(cfg32(5), 4096, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := i & 4095
		s.Write(a, uint32(i))
		_ = s.Read(a)
	}
}

// TestReprogramMatchesBuildFMLUT pins the in-place rebuild against the
// map-based builder, including rows with multiple faults (where the
// per-row column ordering fed to BestXCode matters).
func TestReprogramMatchesBuildFMLUT(t *testing.T) {
	cfg := cfg32(2)
	const rows = 32
	rng := rand.New(rand.NewSource(51))
	lut := NewFMLUT(cfg, rows)
	for rep := 0; rep < 30; rep++ {
		n := 1 + rng.Intn(20)
		fm := make(fault.Map, 0, n)
		seen := map[[2]int]bool{}
		for len(fm) < n {
			r, c := rng.Intn(rows), rng.Intn(32)
			if seen[[2]int{r, c}] {
				continue
			}
			seen[[2]int{r, c}] = true
			fm = append(fm, fault.Fault{Row: r, Col: c, Kind: fault.Flip})
		}
		want, err := BuildFMLUT(cfg, rows, fm)
		if err != nil {
			t.Fatal(err)
		}
		if err := lut.Reprogram(fm); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rows; r++ {
			if lut.X(r) != want.X(r) {
				t.Fatalf("rep %d row %d: Reprogram x=%d, BuildFMLUT x=%d", rep, r, lut.X(r), want.X(r))
			}
		}
	}
	if err := lut.Reprogram(fault.Map{{Row: 0, Col: 99, Kind: fault.Flip}}); err == nil {
		t.Error("Reprogram accepted out-of-range fault")
	}
}

// TestShuffledResetMatchesFreshBuild pins Shuffled.Reset: a reused
// memory must read and write exactly like a freshly built one.
func TestShuffledResetMatchesFreshBuild(t *testing.T) {
	cfg := cfg32(2)
	const rows = 48
	rng := rand.New(rand.NewSource(52))
	fm1 := fault.Map{{Row: 1, Col: 3, Kind: fault.Flip}, {Row: 7, Col: 31, Kind: fault.StuckAt1}}
	fm2 := fault.Map{
		{Row: 2, Col: 14, Kind: fault.StuckAt0},
		{Row: 2, Col: 29, Kind: fault.Flip},
		{Row: 40, Col: 0, Kind: fault.Flip},
	}
	reused, err := NewShuffled(cfg, rows, fm1)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < rows; a++ {
		reused.Write(a, rng.Uint32())
	}
	if err := reused.Reset(fm2); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewShuffled(cfg, rows, fm2)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < rows; a++ {
		v := rng.Uint32()
		reused.Write(a, v)
		fresh.Write(a, v)
		if g, w := reused.Read(a), fresh.Read(a); g != w {
			t.Fatalf("addr %d after Reset reads %#x, fresh build reads %#x", a, g, w)
		}
	}
}

// TestShuffledResetWarmZeroAlloc pins the hot-loop property.
func TestShuffledResetWarmZeroAlloc(t *testing.T) {
	cfg := cfg32(2)
	fm := fault.Map{{Row: 3, Col: 7, Kind: fault.Flip}, {Row: 3, Col: 19, Kind: fault.Flip}}
	s, err := NewShuffled(cfg, 48, fm)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(fm); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(10, func() {
		if err := s.Reset(fm); err != nil {
			t.Error(err)
		}
	}); a != 0 {
		t.Errorf("warm Shuffled.Reset allocates %v/run, want 0", a)
	}
}
