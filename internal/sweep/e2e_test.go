package sweep_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"faultmem/internal/exp"
	"faultmem/internal/sweep"
	"faultmem/internal/sweep/chaostest"
)

// Churn-clock settings shrunk to test scale: leases expire in hundreds of
// milliseconds, reconnects take tens.
func testConfig(t *testing.T) sweep.Config {
	return sweep.Config{
		Lease:             300 * time.Millisecond,
		SessionTTL:        time.Second,
		MaxRemoteAttempts: 3,
		Logf:              t.Logf,
	}
}

func testWorkerConfig(t *testing.T) sweep.WorkerConfig {
	return sweep.WorkerConfig{
		Heartbeat:    50 * time.Millisecond,
		PongTimeout:  2 * time.Second,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
		Logf:         t.Logf,
	}
}

func startCoordinator(t *testing.T) *sweep.Coordinator {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := sweep.NewCoordinator(ln, testConfig(t))
	t.Cleanup(func() { c.Close() })
	return c
}

// startWorker runs one worker until killed (or test cleanup). The
// returned kill closes its context and waits for it to exit — a hard
// worker death as far as the coordinator can tell.
func startWorker(t *testing.T, addr string) (kill func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		sweep.RunWorker(ctx, addr, testWorkerConfig(t))
	}()
	var once sync.Once
	kill = func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(kill)
	return kill
}

// testRunner is the campaign every e2e test runs: a pinned seed so the
// local golden and the distributed run describe the same draw, quick
// budgets so churn dominates runtime.
func testRunner() *exp.Runner {
	seed := int64(7)
	return &exp.Runner{Quick: true, Seed: &seed}
}

// goldenJSON is the single-host truth the distributed runs must match
// bit for bit.
func goldenJSON(t *testing.T, name string) []byte {
	t.Helper()
	res, err := exp.Run(context.Background(), name, testRunner())
	if err != nil {
		t.Fatalf("local %s: %v", name, err)
	}
	j, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func distributedJSON(t *testing.T, c *sweep.Coordinator, name string) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := c.Run(ctx, name, testRunner())
	if err != nil {
		t.Fatalf("distributed %s: %v", name, err)
	}
	j, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestDistributedRunIsBitIdenticalToLocal: the baseline contract — three
// healthy workers, shards computed remotely, output equal to the
// single-host run byte for byte.
func TestDistributedRunIsBitIdenticalToLocal(t *testing.T) {
	c := startCoordinator(t)
	for i := 0; i < 3; i++ {
		startWorker(t, c.Addr().String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.AwaitWorkers(ctx, 3); err != nil {
		t.Fatal(err)
	}

	got := distributedJSON(t, c, "fig5")
	want := goldenJSON(t, "fig5")
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed output diverged from single-host run\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	st := c.Stats()
	if st.RemoteShards == 0 {
		t.Fatalf("no shards were computed remotely: %+v", st)
	}
	if st.LocalShards != 0 {
		t.Logf("note: %d shards fell back to local", st.LocalShards)
	}
}

// TestWorkerKilledMidCampaign: a worker dying with shards leased must
// not lose, duplicate, or reorder anything — the leases expire, the
// shards reassign, and the output stays bit-identical.
func TestWorkerKilledMidCampaign(t *testing.T) {
	c := startCoordinator(t)
	kill := startWorker(t, c.Addr().String())
	startWorker(t, c.Addr().String())
	startWorker(t, c.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.AwaitWorkers(ctx, 3); err != nil {
		t.Fatal(err)
	}

	// Kill one worker shortly after the campaign starts, while it almost
	// certainly holds leases.
	timer := time.AfterFunc(30*time.Millisecond, kill)
	defer timer.Stop()
	got := distributedJSON(t, c, "fig5")

	if want := goldenJSON(t, "fig5"); !bytes.Equal(got, want) {
		t.Fatal("output diverged after mid-campaign worker death")
	}
	if st := c.Stats(); st.RemoteShards == 0 {
		t.Fatalf("no shards were computed remotely: %+v", st)
	}
}

// TestAllWorkersKilledFallsBackToLocal: when the whole pool dies
// mid-campaign the coordinator must finish the sweep itself, still
// bit-identically.
func TestAllWorkersKilledFallsBackToLocal(t *testing.T) {
	c := startCoordinator(t)
	kills := []func(){
		startWorker(t, c.Addr().String()),
		startWorker(t, c.Addr().String()),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.AwaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	timer := time.AfterFunc(20*time.Millisecond, func() {
		for _, kill := range kills {
			kill()
		}
	})
	defer timer.Stop()
	got := distributedJSON(t, c, "fig5")

	if want := goldenJSON(t, "fig5"); !bytes.Equal(got, want) {
		t.Fatal("output diverged after total pool loss")
	}
	if st := c.Stats(); st.LocalShards == 0 {
		// The pool died 20ms in; at least the tail must have run locally.
		t.Fatalf("expected local fallback shards after pool drain: %+v", st)
	}
}

// TestNoWorkersRunsLocally: a coordinator with an empty pool degrades to
// a plain local run.
func TestNoWorkersRunsLocally(t *testing.T) {
	c := startCoordinator(t)
	got := distributedJSON(t, c, "fig5")
	if want := goldenJSON(t, "fig5"); !bytes.Equal(got, want) {
		t.Fatal("workerless coordinator output diverged from plain local run")
	}
	st := c.Stats()
	if st.RemoteShards != 0 || st.LocalShards == 0 {
		t.Fatalf("expected pure local execution: %+v", st)
	}
}

// TestChaosDropDupCorrupt: workers behind a seeded chaos proxy that
// drops, duplicates, delays, and corrupts frames. Whatever the weather
// does, the output must stay bit-identical — corrupt frames rejected,
// duplicates deduplicated, drops absorbed by lease reassignment.
func TestChaosDropDupCorrupt(t *testing.T) {
	c := startCoordinator(t)
	chaos := &chaostest.RandomChaos{
		Seed:     42,
		PDrop:    0.05,
		PDup:     0.10,
		PCorrupt: 0.10,
		PDelay:   0.20,
		MaxDelay: 5 * time.Millisecond,
	}
	proxy, err := chaostest.New(c.Addr().String(), chaos.Policy())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	startWorker(t, proxy.Addr())
	startWorker(t, proxy.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.AwaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	got := distributedJSON(t, c, "fig5")
	if want := goldenJSON(t, "fig5"); !bytes.Equal(got, want) {
		t.Fatal("output diverged under frame chaos")
	}
	t.Logf("chaos stats: %+v", c.Stats())
}

// TestHardDisconnectResume: the proxy kills the worker's connection by
// desynchronizing the stream every few frames. The worker must reconnect,
// resume its session by token, re-deliver results computed while
// disconnected, and the campaign must still match the golden run.
func TestHardDisconnectResume(t *testing.T) {
	c := startCoordinator(t)
	policy := func(dir chaostest.Dir, n int, frame []byte) chaostest.Verdict {
		// Corrupt the stream toward the worker after a handful of frames
		// on every connection: a rolling sequence of hard disconnects.
		if dir == chaostest.ToClient && n == 6 {
			return chaostest.Verdict{Action: chaostest.CorruptHeader}
		}
		return chaostest.Verdict{}
	}
	proxy, err := chaostest.New(c.Addr().String(), policy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	startWorker(t, proxy.Addr())
	startWorker(t, proxy.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.AwaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	got := distributedJSON(t, c, "fig5")
	if want := goldenJSON(t, "fig5"); !bytes.Equal(got, want) {
		t.Fatal("output diverged across forced reconnects")
	}
	st := c.Stats()
	if st.SessionsResumed == 0 {
		t.Fatalf("expected session resumes under rolling disconnects: %+v", st)
	}
	t.Logf("resume stats: %+v", st)
}

// TestTruncatedMidFrameConnection: a connection cut mid-frame (a crash
// during a write) must not corrupt the campaign.
func TestTruncatedMidFrameConnection(t *testing.T) {
	c := startCoordinator(t)
	policy := func(dir chaostest.Dir, n int, frame []byte) chaostest.Verdict {
		if dir == chaostest.ToServer && n == 4 {
			return chaostest.Verdict{Action: chaostest.Truncate}
		}
		return chaostest.Verdict{}
	}
	proxy, err := chaostest.New(c.Addr().String(), policy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	startWorker(t, proxy.Addr())
	// A second worker on a clean link keeps the campaign from depending
	// entirely on the flaky one.
	startWorker(t, c.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.AwaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	got := distributedJSON(t, c, "fig5")
	if want := goldenJSON(t, "fig5"); !bytes.Equal(got, want) {
		t.Fatal("output diverged across a mid-frame connection cut")
	}
}

// TestDistributedMultiStageExperiment: fig7 runs one engine stage per
// benchmark app with machine-dependent plans. Its shard output carries
// exported fields, so every stage's shards must gob-encode and travel —
// a healthy pool may not degrade a single shard to local compute (that
// used to be fig7's fate back when its shard type was unexported and
// every stage tag got JobError-poisoned). The params override exercises
// the params-on-the-wire plumbing and trims the budget: two apps at a
// handful of trials instead of three at the full quick tier.
func TestDistributedMultiStageExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-stage distributed run is the slowest e2e case")
	}
	params := json.RawMessage(`[{"App": 0, "Trials": 8, "Rows": 256}, {"App": 2, "Trials": 8, "Rows": 256}]`)
	runner := func() *exp.Runner {
		r := testRunner()
		r.Params = params
		return r
	}

	c := startCoordinator(t)
	for i := 0; i < 3; i++ {
		startWorker(t, c.Addr().String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.AwaitWorkers(ctx, 3); err != nil {
		t.Fatal(err)
	}

	res, err := c.Run(ctx, "fig7", runner())
	if err != nil {
		t.Fatalf("distributed fig7: %v", err)
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}

	localRes, err := exp.Run(context.Background(), "fig7", runner())
	if err != nil {
		t.Fatalf("local fig7: %v", err)
	}
	want, err := localRes.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("multi-stage distributed output diverged from single-host run")
	}
	st := c.Stats()
	if st.RemoteShards == 0 {
		t.Fatalf("no fig7 shards were computed remotely: %+v", st)
	}
	if st.JobErrors != 0 || st.LocalShards != 0 {
		t.Fatalf("fig7 stages must distribute fully on a healthy pool, not degrade to local: %+v", st)
	}
}

// TestDistributedWorkloadsCampaign extends the zero-local-fallback
// contract to the workloads campaign from day one: its shard output is
// the gob-encodable workload.ShardOut, so every per-workload stage must
// travel to a healthy pool with no JobError tag-poisoning and no local
// degradation, and the merged result must match the single-host run
// byte for byte.
func TestDistributedWorkloadsCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed workloads run is a slower e2e case")
	}
	params := json.RawMessage(`{"Workloads": ["rsort", "cgsolve"], "Trials": 8, "Rows": 256, "Keys": 1024, "Dim": 24}`)
	runner := func() *exp.Runner {
		r := testRunner()
		r.Params = params
		return r
	}

	c := startCoordinator(t)
	for i := 0; i < 3; i++ {
		startWorker(t, c.Addr().String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.AwaitWorkers(ctx, 3); err != nil {
		t.Fatal(err)
	}

	res, err := c.Run(ctx, "workloads", runner())
	if err != nil {
		t.Fatalf("distributed workloads: %v", err)
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}

	localRes, err := exp.Run(context.Background(), "workloads", runner())
	if err != nil {
		t.Fatalf("local workloads: %v", err)
	}
	want, err := localRes.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("distributed workloads output diverged from single-host run")
	}
	st := c.Stats()
	if st.RemoteShards == 0 {
		t.Fatalf("no workloads shards were computed remotely: %+v", st)
	}
	if st.JobErrors != 0 || st.LocalShards != 0 {
		t.Fatalf("workloads stages must distribute fully on a healthy pool, not degrade to local: %+v", st)
	}
}

// recoveryE2EParams is the small-budget recovery campaign the e2e cases
// run: all three policies with soft errors enabled, so the shard
// outputs carry non-empty per-arm recovery counters over the wire.
var recoveryE2EParams = json.RawMessage(
	`{"Workload": "cgsolve", "Trials": 6, "Rows": 256, "Dim": 24, "TransientRate": 0.001, "SafeWords": 64}`)

func recoveryRunner() *exp.Runner {
	r := testRunner()
	r.Params = recoveryE2EParams
	return r
}

// TestDistributedRecoveryCampaign extends the zero-local-fallback
// contract to the recovery campaign: its shard output is the same
// gob-encodable workload.ShardOut, now carrying per-arm recovery
// counters, so every per-policy stage must travel to a healthy pool
// with no JobError tag-poisoning and no local degradation, and the
// merged result — counter tables included — must match the single-host
// run byte for byte.
func TestDistributedRecoveryCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed recovery run is a slower e2e case")
	}
	c := startCoordinator(t)
	for i := 0; i < 3; i++ {
		startWorker(t, c.Addr().String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.AwaitWorkers(ctx, 3); err != nil {
		t.Fatal(err)
	}

	res, err := c.Run(ctx, "recovery", recoveryRunner())
	if err != nil {
		t.Fatalf("distributed recovery: %v", err)
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}

	localRes, err := exp.Run(context.Background(), "recovery", recoveryRunner())
	if err != nil {
		t.Fatalf("local recovery: %v", err)
	}
	want, err := localRes.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("distributed recovery output diverged from single-host run")
	}
	st := c.Stats()
	if st.RemoteShards == 0 {
		t.Fatalf("no recovery shards were computed remotely: %+v", st)
	}
	if st.JobErrors != 0 || st.LocalShards != 0 {
		t.Fatalf("recovery stages must distribute fully on a healthy pool, not degrade to local: %+v", st)
	}
}

// TestRecoveryWorkerKilledMidCampaign: a worker dying while it holds
// recovery-campaign leases must not lose, duplicate, or reorder
// anything — including the per-arm recovery counters merged from shard
// outputs, which would silently drift if a shard were double-counted.
func TestRecoveryWorkerKilledMidCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed recovery run is a slower e2e case")
	}
	c := startCoordinator(t)
	kill := startWorker(t, c.Addr().String())
	startWorker(t, c.Addr().String())
	startWorker(t, c.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.AwaitWorkers(ctx, 3); err != nil {
		t.Fatal(err)
	}

	timer := time.AfterFunc(30*time.Millisecond, kill)
	defer timer.Stop()
	res, err := c.Run(ctx, "recovery", recoveryRunner())
	if err != nil {
		t.Fatalf("distributed recovery: %v", err)
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}

	localRes, err := exp.Run(context.Background(), "recovery", recoveryRunner())
	if err != nil {
		t.Fatalf("local recovery: %v", err)
	}
	want, err := localRes.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovery output diverged after mid-campaign worker death")
	}
	if st := c.Stats(); st.RemoteShards == 0 {
		t.Fatalf("no recovery shards were computed remotely: %+v", st)
	}
}

// TestJobErrorPoisonsTagToLocal: a protocol-level worker that fails
// every job it is handed drives the JobError → poisoned tag →
// local-compute degradation end to end. (The organic driver went away:
// fig7's shard output is wireable now, so a real worker never refuses
// its stages.) The campaign must still finish bit-identically, with
// zero remote shards merged from the lying worker.
func TestJobErrorPoisonsTagToLocal(t *testing.T) {
	c := startCoordinator(t)
	conn, err := net.Dial("tcp", c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(sweep.EncodeMessage(&sweep.Hello{})); err != nil {
		t.Fatal(err)
	}
	typ, _, err := sweep.ReadFrame(conn)
	if err != nil || typ != sweep.MsgWelcome {
		t.Fatalf("handshake got %v, %v; want welcome", typ, err)
	}
	go func() {
		for {
			typ, payload, err := sweep.ReadFrame(conn)
			if err != nil {
				if sweep.IsFatalFrameError(err) || !isFrameError(err) {
					return
				}
				continue
			}
			m, err := sweep.DecodeMessage(typ, payload)
			if err != nil {
				continue
			}
			if j, ok := m.(*sweep.Job); ok {
				conn.Write(sweep.EncodeMessage(&sweep.JobError{ID: j.ID, Msg: "synthetic failure"}))
			}
		}
	}()

	got := distributedJSON(t, c, "fig5")
	if want := goldenJSON(t, "fig5"); !bytes.Equal(got, want) {
		t.Fatal("output diverged after JobError degradation")
	}
	st := c.Stats()
	if st.JobErrors == 0 || st.LocalShards == 0 {
		t.Fatalf("expected JobError-driven local degradation: %+v", st)
	}
	if st.RemoteShards != 0 {
		t.Fatalf("a worker that failed every job cannot have produced results: %+v", st)
	}
}

func isFrameError(err error) bool {
	var fe *sweep.FrameError
	return errors.As(err, &fe)
}

// TestWorkerLegacyHelloFallback: a coordinator that predates frame
// flags reads a flagged Hello as an unknown frame type and hangs up
// without a Welcome. The worker must downgrade to a plain Hello on its
// next attempt and complete the session.
func TestWorkerLegacyHelloFallback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			// First connection: the flagged Hello an old coordinator
			// cannot parse — it drops the connection.
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			raw, err := sweep.ReadRawFrame(conn)
			if err != nil {
				return fmt.Errorf("first hello: %v", err)
			}
			if raw[3] != byte(sweep.MsgHello)|sweep.FlagGzipOK {
				return fmt.Errorf("first hello type byte = %#02x, want flagged hello %#02x",
					raw[3], byte(sweep.MsgHello)|sweep.FlagGzipOK)
			}
			conn.Close()
			// Second connection: the worker must have downgraded.
			conn, err = ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			raw, err = sweep.ReadRawFrame(conn)
			if err != nil {
				return fmt.Errorf("second hello: %v", err)
			}
			if raw[3] != byte(sweep.MsgHello) {
				return fmt.Errorf("second hello type byte = %#02x, want plain hello %#02x",
					raw[3], byte(sweep.MsgHello))
			}
			if _, err := conn.Write(sweep.EncodeMessage(&sweep.Welcome{Token: "legacy"})); err != nil {
				return err
			}
			_, err = conn.Write(sweep.EncodeMessage(&sweep.Done{}))
			return err
		}()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sweep.RunWorker(ctx, ln.Addr().String(), testWorkerConfig(t)); err != nil {
		t.Fatalf("worker did not finish cleanly against a pre-flags coordinator: %v", err)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
}

// TestCancelledCampaignReleasesPromptly: killing the campaign context
// must unwind the distributed run quickly, not hang on in-flight leases.
func TestCancelledCampaignReleasesPromptly(t *testing.T) {
	c := startCoordinator(t)
	startWorker(t, c.Addr().String())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Run(ctx, "fig5", testRunner())
	if err == nil {
		// The run can legitimately win the race and finish; only a hang
		// is a failure.
		return
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled campaign took %v to unwind", elapsed)
	}
}
