// Package chaostest is the fault-injection harness of the sweep
// transport: a frame-aware TCP proxy that sits between workers and a
// coordinator and mangles traffic on a seeded, deterministic schedule —
// dropping, delaying, duplicating, truncating, and corrupting whole
// frames — so the e2e tests can prove a campaign's results stay
// bit-identical under churn instead of assuming it.
package chaostest

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"faultmem/internal/sweep"
)

// Dir is a traffic direction through the proxy.
type Dir int

const (
	// ToServer is worker→coordinator traffic (hellos, results, heartbeats).
	ToServer Dir = iota
	// ToClient is coordinator→worker traffic (welcomes, jobs, cancels).
	ToClient
)

func (d Dir) String() string {
	if d == ToServer {
		return "→server"
	}
	return "→client"
}

// Action is what the proxy does to one frame.
type Action int

const (
	// Pass forwards the frame untouched.
	Pass Action = iota
	// Drop swallows the frame silently — the lost-packet case the lease
	// and heartbeat machinery must absorb.
	Drop
	// Duplicate forwards the frame twice — the double-delivery case the
	// job-ID dedup must absorb.
	Duplicate
	// CorruptPayload flips a payload bit, leaving the header intact: the
	// receiver sees a well-delimited frame with a bad checksum and must
	// reject it without killing the connection.
	CorruptPayload
	// CorruptHeader flips a magic byte: the receiver loses frame
	// alignment and must drop the connection (and the peer reconnect).
	// The proxy closes the link after sending, since nothing sane can
	// follow a desynchronized stream.
	CorruptHeader
	// Truncate sends only half the frame and closes the connection —
	// the mid-write crash case.
	Truncate
)

// Verdict is a policy's decision for one frame.
type Verdict struct {
	Action Action
	// Delay postpones forwarding — the slow-network case that makes
	// late results race their reassigned replacements.
	Delay time.Duration
}

// Policy decides the fate of the n-th frame (per direction, per
// connection). Policies see the raw frame bytes and must not mutate them.
type Policy func(dir Dir, n int, frame []byte) Verdict

// PassAll forwards everything untouched.
func PassAll(Dir, int, []byte) Verdict { return Verdict{} }

// Proxy is one listening chaos proxy in front of a coordinator. Each
// accepted worker connection gets its own upstream connection and its own
// frame counters, so seeded policies are deterministic per connection.
type Proxy struct {
	ln       net.Listener
	upstream string
	policy   Policy

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New starts a proxy on a fresh localhost port forwarding to upstream.
func New(upstream string, policy Policy) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if policy == nil {
		policy = PassAll
	}
	p := &Proxy{ln: ln, upstream: upstream, policy: policy, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address workers should dial instead of the coordinator.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops the proxy and severs every connection through it — a full
// network partition for all proxied workers.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.upstream)
		if err != nil {
			client.Close()
			continue
		}
		if !p.track(client) || !p.track(server) {
			client.Close()
			server.Close()
			return
		}
		p.wg.Add(2)
		go p.pump(client, server, ToServer)
		go p.pump(server, client, ToClient)
	}
}

// pump forwards frames src→dst under the policy. Any error — including a
// fatal frame error from a stream the policy itself desynchronized —
// closes both directions, which is exactly what a real half-dead link
// does.
func (p *Proxy) pump(src, dst net.Conn, dir Dir) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.untrack(src)
		p.untrack(dst)
	}()
	for n := 0; ; n++ {
		frame, err := sweep.ReadRawFrame(src)
		if err != nil {
			return
		}
		v := p.policy(dir, n, frame)
		if v.Delay > 0 {
			time.Sleep(v.Delay)
		}
		switch v.Action {
		case Drop:
			continue
		case Duplicate:
			if _, err := dst.Write(frame); err != nil {
				return
			}
			if _, err := dst.Write(frame); err != nil {
				return
			}
		case CorruptPayload:
			bad := append([]byte(nil), frame...)
			if len(bad) > 12 {
				bad[12] ^= 0x01 // first payload byte
			} else {
				bad[8] ^= 0x01 // empty payload: flip the checksum instead
			}
			if _, err := dst.Write(bad); err != nil {
				return
			}
		case CorruptHeader:
			bad := append([]byte(nil), frame...)
			bad[0] ^= 0xFF
			dst.Write(bad)
			return
		case Truncate:
			dst.Write(frame[:len(frame)/2+1])
			return
		default:
			if _, err := dst.Write(frame); err != nil {
				return
			}
		}
	}
}

// RandomChaos is a seeded random policy: each frame independently draws
// its fate with the given probabilities (the rest pass). Handshake frames
// (the first in each direction) always pass, so every connection at least
// reaches a session before the weather starts. The same seed gives the
// same schedule on every run.
type RandomChaos struct {
	Seed                          int64
	PDrop, PDup, PCorrupt, PDelay float64
	MaxDelay                      time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// Policy returns the sampling Policy of this chaos configuration.
func (r *RandomChaos) Policy() Policy {
	r.rng = rand.New(rand.NewSource(r.Seed))
	return func(dir Dir, n int, frame []byte) Verdict {
		if n == 0 {
			return Verdict{} // let the handshake through
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		x := r.rng.Float64()
		var v Verdict
		switch {
		case x < r.PDrop:
			v.Action = Drop
		case x < r.PDrop+r.PDup:
			v.Action = Duplicate
		case x < r.PDrop+r.PDup+r.PCorrupt:
			v.Action = CorruptPayload
		}
		if r.PDelay > 0 && r.rng.Float64() < r.PDelay {
			v.Delay = time.Duration(r.rng.Int63n(int64(r.MaxDelay) + 1))
		}
		return v
	}
}
