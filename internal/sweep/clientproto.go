package sweep

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"

	"faultmem/internal/yield"
)

// The client half of the protocol: the campaign-submission messages of
// `faultmem serve`. They ride the same frame layer as the worker
// messages (magic, version, CRC, gzip flags), use the same strict
// length-validated codecs, and share the listening port — the first
// frame's type (Hello vs ClientHello) routes a connection to the worker
// pool or the client surface.

// AuthEqual reports whether a presented shared secret matches the
// configured one, in constant time (both sides are hashed first so the
// comparison leaks neither content nor length). An empty configured
// secret disables authentication entirely.
func AuthEqual(want, got string) bool {
	if want == "" {
		return true
	}
	hw := sha256.Sum256([]byte(want))
	hg := sha256.Sum256([]byte(got))
	return subtle.ConstantTimeCompare(hw[:], hg[:]) == 1
}

// ClientHello opens a client connection. An empty token requests a new
// client session; a token from a previous ClientWelcome resumes that
// session — re-attaching its running jobs and draining any final
// results buffered while the client was disconnected. Auth carries the
// listener's shared secret when one is configured.
type ClientHello struct {
	Token string
	Auth  string
}

func (m *ClientHello) encode() []byte {
	b := appendStr8(nil, MsgClientHello, "token", m.Token)
	return appendStr8(b, MsgClientHello, "auth", m.Auth)
}

func decodeClientHello(p []byte) (*ClientHello, error) {
	r := &reader{t: MsgClientHello, b: p}
	m := &ClientHello{Token: r.str8("token")}
	m.Auth = r.str8("auth")
	return m, r.done()
}

// clientWelcome flag bits.
const welcomeFlagDraining = 1 << 0

// ClientWelcome acknowledges a ClientHello and carries the session
// token the client presents on reconnect. Draining tells the client the
// server is winding down: running jobs will finish, new submissions are
// rejected.
type ClientWelcome struct {
	Token    string
	Draining bool
}

func (m *ClientWelcome) encode() []byte {
	b := appendStr8(nil, MsgClientWelcome, "token", m.Token)
	var flags byte
	if m.Draining {
		flags |= welcomeFlagDraining
	}
	return append(b, flags)
}

func decodeClientWelcome(p []byte) (*ClientWelcome, error) {
	r := &reader{t: MsgClientWelcome, b: p}
	m := &ClientWelcome{Token: r.str8("token")}
	flags := r.u8()
	m.Draining = flags&welcomeFlagDraining != 0
	if r.err == nil && m.Token == "" {
		r.fail("empty session token")
	}
	return m, r.done()
}

// Submit asks the server to admit one campaign: a registry name plus
// the runner knobs, carried in exactly the wire form exp.Runner already
// accepts (Params is a strict JSON override of the experiment's default
// parameter struct). Ref correlates the SubmitReply; Priority weights
// the fair-share scheduler (0 means the default weight 1; higher gets
// proportionally more concurrent shards); Label is a free-form client
// annotation echoed in status listings.
type Submit struct {
	Ref        uint64
	Experiment string
	Label      string
	Priority   uint32
	HasSeed    bool
	Seed       int64
	Quick      bool
	Workers    int
	Accum      yield.AccumMode
	Bins       int
	Params     []byte // JSON override, empty = experiment defaults
}

func (m *Submit) encode() []byte {
	var flags byte
	if m.HasSeed {
		flags |= jobFlagSeed
	}
	if m.Quick {
		flags |= jobFlagQuick
	}
	b := binary.BigEndian.AppendUint64(nil, m.Ref)
	b = appendStr8(b, MsgSubmit, "experiment", m.Experiment)
	b = appendStr8(b, MsgSubmit, "label", m.Label)
	b = binary.BigEndian.AppendUint32(b, m.Priority)
	b = append(b, flags)
	b = binary.BigEndian.AppendUint64(b, uint64(m.Seed))
	b = binary.BigEndian.AppendUint32(b, uint32(m.Workers))
	b = append(b, byte(m.Accum))
	b = binary.BigEndian.AppendUint32(b, uint32(m.Bins))
	return appendBlob32(b, m.Params)
}

func decodeSubmit(p []byte) (*Submit, error) {
	r := &reader{t: MsgSubmit, b: p}
	m := &Submit{}
	m.Ref = r.u64()
	m.Experiment = r.str8("experiment name")
	m.Label = r.str8("label")
	m.Priority = r.u32()
	flags := r.u8()
	m.HasSeed = flags&jobFlagSeed != 0
	m.Quick = flags&jobFlagQuick != 0
	m.Seed = int64(r.u64())
	m.Workers = int(r.u32())
	m.Accum = yield.AccumMode(r.u8())
	m.Bins = int(r.u32())
	m.Params = r.blob32("params")
	if r.err == nil && m.Experiment == "" {
		r.fail("empty experiment name")
	}
	return m, r.done()
}

// SubmitReply answers a Submit: the admitted job ID, or a rejection
// (unknown experiment, server draining) carried in ErrMsg.
type SubmitReply struct {
	Ref    uint64
	JobID  uint64
	ErrMsg string
}

func (m *SubmitReply) encode() []byte {
	b := binary.BigEndian.AppendUint64(nil, m.Ref)
	b = binary.BigEndian.AppendUint64(b, m.JobID)
	return appendBlob32(b, []byte(m.ErrMsg))
}

func decodeSubmitReply(p []byte) (*SubmitReply, error) {
	r := &reader{t: MsgSubmitReply, b: p}
	m := &SubmitReply{}
	m.Ref = r.u64()
	m.JobID = r.u64()
	m.ErrMsg = string(r.blob32("error message"))
	return m, r.done()
}

// ControlVerb enumerates the job-lifecycle verbs of MsgJobControl.
type ControlVerb byte

const (
	// VerbStatus asks for one job's status (JobID selects it).
	VerbStatus ControlVerb = iota + 1
	// VerbCancel cancels one running job (its final message then reports
	// the cancellation); already-finished jobs are a no-op.
	VerbCancel
	// VerbList asks for the status of every job the server knows.
	VerbList
	verbEnd
)

func (v ControlVerb) valid() bool { return v >= VerbStatus && v < verbEnd }

func (v ControlVerb) String() string {
	switch v {
	case VerbStatus:
		return "status"
	case VerbCancel:
		return "cancel"
	case VerbList:
		return "list"
	default:
		return "verb(?)"
	}
}

// JobControl is one status/cancel/list request. JobID is ignored for
// VerbList.
type JobControl struct {
	Ref   uint64
	Verb  ControlVerb
	JobID uint64
}

func (m *JobControl) encode() []byte {
	b := binary.BigEndian.AppendUint64(nil, m.Ref)
	b = append(b, byte(m.Verb))
	return binary.BigEndian.AppendUint64(b, m.JobID)
}

func decodeJobControl(p []byte) (*JobControl, error) {
	r := &reader{t: MsgJobControl, b: p}
	m := &JobControl{}
	m.Ref = r.u64()
	m.Verb = ControlVerb(r.u8())
	m.JobID = r.u64()
	if r.err == nil && !m.Verb.valid() {
		r.fail("unknown verb %d", byte(m.Verb))
	}
	return m, r.done()
}

// JobInfo answers a JobControl: a JSON status blob (one serve.JobStatus
// for status/cancel, an array for list), or an error (unknown job).
type JobInfo struct {
	Ref    uint64
	ErrMsg string
	Data   []byte // JSON
}

func (m *JobInfo) encode() []byte {
	b := binary.BigEndian.AppendUint64(nil, m.Ref)
	b = appendBlob32(b, []byte(m.ErrMsg))
	return appendBlob32(b, m.Data)
}

func decodeJobInfo(p []byte) (*JobInfo, error) {
	r := &reader{t: MsgJobInfo, b: p}
	m := &JobInfo{}
	m.Ref = r.u64()
	m.ErrMsg = string(r.blob32("error message"))
	m.Data = r.blob32("status JSON")
	return m, r.done()
}

// Snapshot is one periodic partial-state push for a running job: Seq
// increments per push so a resumed client can discard stale snapshots,
// and Data is the JSON-encoded serve.JobSnapshot (stage progress and
// merged-sample counts so far).
type Snapshot struct {
	JobID uint64
	Seq   uint64
	Data  []byte // JSON
}

func (m *Snapshot) encode() []byte {
	b := binary.BigEndian.AppendUint64(nil, m.JobID)
	b = binary.BigEndian.AppendUint64(b, m.Seq)
	return appendBlob32(b, m.Data)
}

func decodeSnapshot(p []byte) (*Snapshot, error) {
	r := &reader{t: MsgSnapshot, b: p}
	m := &Snapshot{}
	m.JobID = r.u64()
	m.Seq = r.u64()
	m.Data = r.blob32("snapshot JSON")
	return m, r.done()
}

// Final is one job's terminal push: the full ExperimentResult JSON
// (byte-identical to a local `faultmem run -json` of the same campaign)
// on success, or the error that ended the job. It is buffered for a
// disconnected client and re-delivered on session resume.
type Final struct {
	JobID  uint64
	ErrMsg string
	Result []byte // ExperimentResult JSON
}

func (m *Final) encode() []byte {
	b := binary.BigEndian.AppendUint64(nil, m.JobID)
	b = appendBlob32(b, []byte(m.ErrMsg))
	return appendBlob32(b, m.Result)
}

func decodeFinal(p []byte) (*Final, error) {
	r := &reader{t: MsgFinal, b: p}
	m := &Final{}
	m.JobID = r.u64()
	m.ErrMsg = string(r.blob32("error message"))
	m.Result = r.blob32("result JSON")
	return m, r.done()
}

func (m *ClientHello) msgType() MsgType   { return MsgClientHello }
func (m *ClientHello) payload() []byte    { return m.encode() }
func (m *ClientWelcome) msgType() MsgType { return MsgClientWelcome }
func (m *ClientWelcome) payload() []byte  { return m.encode() }
func (m *Submit) msgType() MsgType        { return MsgSubmit }
func (m *Submit) payload() []byte         { return m.encode() }
func (m *SubmitReply) msgType() MsgType   { return MsgSubmitReply }
func (m *SubmitReply) payload() []byte    { return m.encode() }
func (m *JobControl) msgType() MsgType    { return MsgJobControl }
func (m *JobControl) payload() []byte     { return m.encode() }
func (m *JobInfo) msgType() MsgType       { return MsgJobInfo }
func (m *JobInfo) payload() []byte        { return m.encode() }
func (m *Snapshot) msgType() MsgType      { return MsgSnapshot }
func (m *Snapshot) payload() []byte       { return m.encode() }
func (m *Final) msgType() MsgType         { return MsgFinal }
func (m *Final) payload() []byte          { return m.encode() }
