package sweep

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
)

// TestGzipFrameRoundTrip: a FlagGzip frame must shrink a compressible
// payload on the wire and hand the original bytes back to the reader.
func TestGzipFrameRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("faultmem shard result "), 512)
	plain := AppendFrame(nil, MsgResult, payload)
	flagged := AppendFrameFlags(nil, MsgResult, FlagGzip, payload)
	if len(flagged) >= len(plain) {
		t.Fatalf("gzip frame is %d bytes, plain is %d — compression bought nothing", len(flagged), len(plain))
	}
	typ, flags, got, err := ReadFrameFlags(bytes.NewReader(flagged))
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgResult || flags&FlagGzip == 0 {
		t.Fatalf("got type %v flags %#02x, want result with FlagGzip", typ, flags)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload did not round-trip: %d bytes, want %d", len(got), len(payload))
	}
}

// TestGzipFrameIncompressibleFallsBackToPlain: when compression does
// not shrink the payload the flag clears itself and the wire bytes are
// exactly the plain frame's.
func TestGzipFrameIncompressibleFallsBackToPlain(t *testing.T) {
	payload := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(payload)
	flagged := AppendFrameFlags(nil, MsgResult, FlagGzip, payload)
	plain := AppendFrame(nil, MsgResult, payload)
	if !bytes.Equal(flagged, plain) {
		t.Fatal("incompressible payload must travel as a byte-identical plain frame")
	}
}

// TestFrameFlagsWireCompatibility: zero flags reproduce the pre-flags
// encoding bit for bit; FlagGzipOK touches only the type byte; and a
// flags-blind receiver (ParseFrame, the pre-flags logic) sees a flagged
// frame as a recoverable unknown type, never a dropped connection.
func TestFrameFlagsWireCompatibility(t *testing.T) {
	payload := []byte("hello payload")
	plain := AppendFrame(nil, MsgHello, payload)
	if zero := AppendFrameFlags(nil, MsgHello, 0, payload); !bytes.Equal(zero, plain) {
		t.Fatal("zero-flag frame is not byte-identical to the pre-flags encoding")
	}
	adv := AppendFrameFlags(nil, MsgHello, FlagGzipOK, payload)
	if adv[3] != byte(MsgHello)|FlagGzipOK {
		t.Fatalf("type byte = %#02x, want %#02x", adv[3], byte(MsgHello)|FlagGzipOK)
	}
	if !bytes.Equal(adv[:3], plain[:3]) || !bytes.Equal(adv[4:], plain[4:]) {
		t.Fatal("FlagGzipOK must change only the type byte")
	}
	typ, flags, got, err := ReadFrameFlags(bytes.NewReader(adv))
	if err != nil || typ != MsgHello || flags != FlagGzipOK || !bytes.Equal(got, payload) {
		t.Fatalf("flagged frame read back as %v/%#02x/%q, %v", typ, flags, got, err)
	}
	// The pre-flags receiver's view: an unknown type, recoverable.
	if MsgType(adv[3]).valid() {
		t.Fatal("a flagged type byte must be invalid to a flags-blind receiver")
	}
	if _, _, n, err := ParseFrame(adv); IsFatalFrameError(err) || n != len(adv) {
		t.Fatalf("flags-blind parse must skip the whole frame recoverably, got n=%d err=%v", n, err)
	}
}

// TestGzipFrameCorruptPayloadIsRecoverable: a FlagGzip frame whose
// payload is CRC-valid but not gzip must reject recoverably, leaving
// the stream aligned on the next frame.
func TestGzipFrameCorruptPayloadIsRecoverable(t *testing.T) {
	// The CRC covers the payload only, so flipping the flag bit on a
	// plain frame forges exactly this corruption.
	frame := AppendFrame(nil, MsgResult, []byte("definitely not a gzip stream"))
	frame[3] |= FlagGzip
	stream := append(frame, AppendFrame(nil, MsgDone, nil)...)
	r := bytes.NewReader(stream)
	_, _, _, err := ReadFrameFlags(r)
	if err == nil || IsFatalFrameError(err) {
		t.Fatalf("bad gzip payload: got %v, want recoverable frame error", err)
	}
	if typ, _, err := ReadFrame(r); err != nil || typ != MsgDone {
		t.Fatalf("stream lost alignment after rejected frame: %v, %v", typ, err)
	}
}

// TestGzipFrameBombIsBounded: a payload that inflates past
// MaxFramePayload must reject recoverably instead of allocating what
// the plain length field never could.
func TestGzipFrameBombIsBounded(t *testing.T) {
	z := gzipCompress(make([]byte, MaxFramePayload+1))
	frame := AppendFrame(nil, MsgResult, z)
	frame[3] |= FlagGzip
	_, _, _, err := ReadFrameFlags(bytes.NewReader(frame))
	if err == nil || IsFatalFrameError(err) {
		t.Fatalf("decompression bomb: got %v, want recoverable frame error", err)
	}
}

// TestWorkerSendCompressesLargeResults: on a gzip-negotiated connection
// the worker compresses result blobs past CompressMin and leaves small
// control messages plain.
func TestWorkerSendCompressesLargeResults(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	w := &worker{cfg: WorkerConfig{}.withDefaults()}
	w.conn = c1
	w.gzip = true

	data := bytes.Repeat([]byte("quality sample "), 1024)
	go w.sendMsg(&Result{ID: 1, Shard: 0, Data: data})
	typ, flags, payload, err := ReadFrameFlags(c2)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgResult || flags&FlagGzip == 0 {
		t.Fatalf("large result went out as %v flags %#02x, want gzip-framed result", typ, flags)
	}
	m, err := DecodeMessage(typ, payload)
	if err != nil {
		t.Fatal(err)
	}
	if res := m.(*Result); !bytes.Equal(res.Data, data) {
		t.Fatal("result blob did not survive the compressed round trip")
	}

	go w.sendMsg(&Heartbeat{InFlight: []uint64{1}})
	if _, flags, _, err = ReadFrameFlags(c2); err != nil || flags != 0 {
		t.Fatalf("small message flags = %#02x (%v), want plain", flags, err)
	}
}
