package sweep

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// validFrame builds one well-formed frame for corruption tests.
func validFrame(t MsgType, payload []byte) []byte {
	return AppendFrame(nil, t, payload)
}

// TestFrameRoundTrip: what AppendFrame writes, ReadFrame and ParseFrame
// read back byte-identically.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		raw := validFrame(MsgResult, p)

		typ, got, n, err := ParseFrame(raw)
		if err != nil || typ != MsgResult || !bytes.Equal(got, p) || n != len(raw) {
			t.Fatalf("ParseFrame(%d-byte payload) = %v,%v,%d,%v", len(p), typ, got, n, err)
		}

		typ, got, err = ReadFrame(bytes.NewReader(raw))
		if err != nil || typ != MsgResult || !bytes.Equal(got, p) {
			t.Fatalf("ReadFrame(%d-byte payload) = %v,%v,%v", len(p), typ, got, err)
		}
	}
}

// TestFrameStreamRoundTrip: several frames back to back decode in order,
// ending with a clean io.EOF at the boundary.
func TestFrameStreamRoundTrip(t *testing.T) {
	var stream []byte
	stream = AppendFrame(stream, MsgHello, []byte("a"))
	stream = AppendFrame(stream, MsgHeartbeat, nil)
	stream = AppendFrame(stream, MsgDone, []byte("bb"))
	r := bytes.NewReader(stream)
	want := []MsgType{MsgHello, MsgHeartbeat, MsgDone}
	for i, w := range want {
		typ, _, err := ReadFrame(r)
		if err != nil || typ != w {
			t.Fatalf("frame %d: %v, %v (want %v)", i, typ, err, w)
		}
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
}

// corruptFrameCases is the adversarial catalogue: every way a frame can
// be malformed, with the required classification. Fatal errors force a
// reconnect (stream alignment lost); recoverable ones reject one frame
// and keep the connection.
var corruptFrameCases = []struct {
	name  string
	mut   func([]byte) []byte
	fatal bool
}{
	{"bad magic byte 0", func(b []byte) []byte { b[0] = 0x00; return b }, true},
	{"bad magic byte 1", func(b []byte) []byte { b[1] ^= 0xFF; return b }, true},
	{"swapped magic", func(b []byte) []byte { b[0], b[1] = b[1], b[0]; return b }, true},
	{"future version", func(b []byte) []byte { b[2] = ProtocolVersion + 1; return b }, true},
	{"zero version", func(b []byte) []byte { b[2] = 0; return b }, true},
	{"oversized length", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[4:8], MaxFramePayload+1)
		return b
	}, true},
	{"max length", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b[4:8], 0xFFFFFFFF)
		return b
	}, true},
	{"payload bit flip", func(b []byte) []byte { b[headerSize] ^= 0x01; return b }, false},
	{"checksum bit flip", func(b []byte) []byte { b[8] ^= 0x80; return b }, false},
	{"unknown type", func(b []byte) []byte {
		b[3] = byte(msgTypeEnd) + 7
		// Re-checksum: an unknown-but-intact frame must be skippable.
		return b
	}, false},
	{"zero type", func(b []byte) []byte { b[3] = 0; return b }, false},
}

// TestReadFrameRejectsCorruptFrames drives the catalogue through the
// stream reader and checks both the classification and that a recoverable
// rejection leaves the stream aligned for the next frame.
func TestReadFrameRejectsCorruptFrames(t *testing.T) {
	for _, tc := range corruptFrameCases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mut(validFrame(MsgHeartbeat, []byte("abcd")))
			stream := append(append([]byte{}, bad...), validFrame(MsgDone, nil)...)
			r := bytes.NewReader(stream)

			_, _, err := ReadFrame(r)
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("corrupt frame returned %v, want *FrameError", err)
			}
			if fe.Fatal != tc.fatal {
				t.Fatalf("Fatal = %v, want %v (%v)", fe.Fatal, tc.fatal, fe)
			}
			if !tc.fatal {
				// The rejected frame must have been fully consumed: the
				// following good frame decodes.
				typ, _, err := ReadFrame(r)
				if err != nil || typ != MsgDone {
					t.Fatalf("stream lost alignment after recoverable reject: %v, %v", typ, err)
				}
			}
		})
	}
}

// TestParseFrameRejectsCorruptFrames drives the same catalogue through
// the pure parser, checking the consumed-byte contract: recoverable
// errors report the frame's full size so buffer-based callers can skip
// it; fatal errors report zero.
func TestParseFrameRejectsCorruptFrames(t *testing.T) {
	for _, tc := range corruptFrameCases {
		t.Run(tc.name, func(t *testing.T) {
			good := validFrame(MsgHeartbeat, []byte("abcd"))
			bad := tc.mut(append([]byte{}, good...))
			_, _, n, err := ParseFrame(bad)
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("ParseFrame = %v, want *FrameError", err)
			}
			if fe.Fatal != tc.fatal {
				t.Fatalf("Fatal = %v, want %v (%v)", fe.Fatal, tc.fatal, fe)
			}
			if !tc.fatal && n != len(good) {
				t.Fatalf("recoverable reject consumed %d bytes, want %d", n, len(good))
			}
			if tc.fatal && n != 0 {
				t.Fatalf("fatal reject consumed %d bytes, want 0", n)
			}
		})
	}
}

// TestReadFrameTruncation: a cut mid-header or mid-payload is fatal (the
// peer died or the proxy mangled the stream), but a cut at a frame
// boundary is a clean io.EOF.
func TestReadFrameTruncation(t *testing.T) {
	raw := validFrame(MsgJob, []byte("payload-bytes"))
	for cut := 1; cut < len(raw); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(raw[:cut]))
		var fe *FrameError
		if !errors.As(err, &fe) || !fe.Fatal {
			t.Fatalf("cut at %d/%d bytes: %v, want fatal *FrameError", cut, len(raw), err)
		}
	}
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

// TestParseFrameShortBuffer: an incomplete buffer asks for more bytes
// rather than erroring — streaming callers accumulate and retry.
func TestParseFrameShortBuffer(t *testing.T) {
	raw := validFrame(MsgResult, []byte("abc"))
	for cut := 0; cut < len(raw); cut++ {
		_, _, n, err := ParseFrame(raw[:cut])
		if err != io.ErrUnexpectedEOF || n != 0 {
			t.Fatalf("cut at %d: n=%d err=%v, want 0, io.ErrUnexpectedEOF", cut, n, err)
		}
	}
}

// TestReadRawFrameForwardsCorruptPayloads: the chaos tap must pass
// through checksum-corrupt frames intact (so they reach the victim) but
// still refuse header-level desync.
func TestReadRawFrameForwardsCorruptPayloads(t *testing.T) {
	raw := validFrame(MsgResult, []byte("shard"))
	raw[headerSize] ^= 0xFF // corrupt payload, leave header intact
	got, err := ReadRawFrame(bytes.NewReader(raw))
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("raw read of corrupt-payload frame: %v, %v", got, err)
	}

	raw[0] = 0x00 // now break the magic: the tap itself must bail
	if _, err := ReadRawFrame(bytes.NewReader(raw)); !IsFatalFrameError(err) {
		t.Fatalf("raw read of desynced stream: %v, want fatal", err)
	}
}

// TestAppendFramePanicsOnOversizedPayload: framing an over-limit payload
// is a programming error, caught before it hits the wire.
func TestAppendFramePanicsOnOversizedPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized payload")
		}
	}()
	AppendFrame(nil, MsgResult, make([]byte, MaxFramePayload+1))
}

// FuzzParseFrame: no input may crash the parser, and every accepted
// frame must re-encode to exactly the bytes consumed.
func FuzzParseFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(validFrame(MsgHello, []byte("tok")))
	f.Add(validFrame(MsgHeartbeat, nil))
	f.Add(validFrame(MsgJob, bytes.Repeat([]byte{0x5A}, 64)))
	bad := validFrame(MsgResult, []byte("abcd"))
	bad[9] ^= 0x10
	f.Add(bad)
	f.Add([]byte{magic0, magic1, ProtocolVersion, byte(MsgDone), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		typ, payload, n, err := ParseFrame(b)
		if err != nil {
			if n < 0 || n > len(b) {
				t.Fatalf("consumed %d of %d bytes on error", n, len(b))
			}
			return
		}
		if !typ.valid() {
			t.Fatalf("accepted invalid type %v", typ)
		}
		if re := AppendFrame(nil, typ, payload); !bytes.Equal(re, b[:n]) {
			t.Fatal("accepted frame does not re-encode to its own bytes")
		}
	})
}
